package kspot

// The wire substrate's conformance suite: a federated deployment whose
// shards sit behind real loopback TCP sockets must answer byte-identically
// to the flat simulation and to the in-process federation — snapshot,
// historic and derived-readings queries, with and without frame faults on
// the socket path — and must degrade gracefully (tagged cursor errors, no
// leaks) when shards die or the coordinator closes mid-round.

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"kspot/internal/model"
	"kspot/internal/wire"
)

// startWireShards runs one wire.Server per shard of the scenario on
// loopback listeners (in-process, so the whole protocol runs under the
// race detector) and returns their addresses in shard order.
func startWireShards(t *testing.T, scen *Scenario, parallel int) ([]string, []*wire.Server) {
	return startWireShardsMixed(t, scen, parallel, nil)
}

// startWireShardsMixed is startWireShards with a per-shard protocol
// version: shards where legacy(i) is true withhold the epoch-round
// capability from their welcome, simulating an old server in a
// mixed-version deployment.
func startWireShardsMixed(t *testing.T, scen *Scenario, parallel int, legacy func(i int) bool) ([]string, []*wire.Server) {
	t.Helper()
	shardScens, err := scen.ShardScenarios()
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, len(shardScens))
	servers := make([]*wire.Server, len(shardScens))
	for i := range shardScens {
		srv, err := wire.NewServer(wire.ServerConfig{
			Scenario:          scen,
			Shard:             i,
			Parallel:          parallel,
			DisableEpochRound: legacy != nil && legacy(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(srv.Close)
		addrs[i] = ln.Addr().String()
		servers[i] = srv
	}
	return addrs, servers
}

// answerBytes pins byte-identity: two answer sets are byte-identical iff
// their model-codec encodings are equal bytes.
func answerBytes(answers []Answer) []byte {
	var b []byte
	for _, a := range answers {
		b = model.AppendAnswer(b, a)
	}
	return b
}

func stepEqualByteIdentical(t *testing.T, label string, got, want []StepResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d epochs vs %d", label, len(got), len(want))
	}
	for e := range got {
		if !bytes.Equal(answerBytes(got[e].Answers), answerBytes(want[e].Answers)) {
			t.Fatalf("%s epoch %d: %v != %v", label, e, got[e].Answers, want[e].Answers)
		}
	}
}

// TestWireFederatedConformance: the demo deployment split 2 and 3 ways
// behind loopback sockets answers every snapshot epoch byte-identically
// to the flat run and to the in-process federation, for MINT and TAG; the
// coordinator-tier counters match the in-process federation exactly, and
// the per-shard counters fetched over the wire reconcile message for
// message with the in-process shard networks.
func TestWireFederatedConformance(t *testing.T) {
	const sql = "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid"
	const epochs = 8
	for _, algo := range []Algorithm{AlgoMINT, AlgoTAG} {
		flatSys, err := Open(DemoScenario())
		if err != nil {
			t.Fatal(err)
		}
		flat := runCursor(t, flatSys, sql, algo, false, epochs)
		for _, shards := range []int{2, 3} {
			t.Run(fmt.Sprintf("%s/shards=%d", algo, shards), func(t *testing.T) {
				scen := shardedDemo(t, shards)
				inproc, err := Open(scen)
				if err != nil {
					t.Fatal(err)
				}
				defer inproc.Close()
				inprocRes := runCursor(t, inproc, sql, algo, false, epochs)

				addrs, _ := startWireShards(t, shardedDemo(t, shards), 0)
				remote, err := OpenFederated(shardedDemo(t, shards), addrs)
				if err != nil {
					t.Fatal(err)
				}
				defer remote.Close()
				if !remote.Remote() || remote.Shards() != shards {
					t.Fatalf("remote system misconfigured: remote=%v shards=%d", remote.Remote(), remote.Shards())
				}
				got := runCursor(t, remote, sql, algo, false, epochs)

				stepEqualByteIdentical(t, "remote vs flat", got, flat)
				stepEqualByteIdentical(t, "remote vs in-process", got, inprocRes)
				for e := range got {
					if !got[e].Correct {
						t.Fatalf("epoch %d: remote answers %v diverged from oracle %v", e, got[e].Answers, got[e].Exact)
					}
				}

				// Coordinator tier: the same two-phase merge ran on the same
				// shard answers, so the counters must be equal, not just close.
				if rf, pf := remote.FederationStats(), inproc.FederationStats(); rf != pf {
					t.Fatalf("coordinator tier diverged: remote %+v, in-process %+v", rf, pf)
				}

				// Per-shard counters, fetched over the wire, reconcile with
				// the in-process shard networks message for message.
				remoteRows, err := remote.ShardStats()
				if err != nil {
					t.Fatal(err)
				}
				inprocRows, err := inproc.ShardStats()
				if err != nil {
					t.Fatal(err)
				}
				if len(remoteRows) != len(inprocRows) {
					t.Fatalf("%d remote stat rows vs %d", len(remoteRows), len(inprocRows))
				}
				for i := range remoteRows {
					r, p := remoteRows[i], inprocRows[i]
					if r.Algorithm != p.Algorithm || r.Messages != p.Messages || r.Frames != p.Frames ||
						r.TxBytes != p.TxBytes || r.RxBytes != p.RxBytes || r.EnergyUJ != p.EnergyUJ {
						t.Fatalf("shard %d counters diverged:\nremote     %+v\nin-process %+v", i, r, p)
					}
				}
			})
		}
	}
}

// TestWireFederatedHistoric: historic TOP-K (WITH HISTORY) over loopback
// sockets — each shard ranks its own windows in its own server and the
// coordinator's threshold round fetches targeted sums over the wire —
// stays byte-identical to the flat run for TJA, TPUT and the centralized
// baseline, with the coordinator tier equal to the in-process federation.
func TestWireFederatedHistoric(t *testing.T) {
	const sql = "SELECT TOP 4 epoch, AVG(sound) FROM sensors WITH HISTORY 16"
	for _, algo := range []Algorithm{AlgoTJA, AlgoTPUT, AlgoCentral} {
		t.Run(string(algo), func(t *testing.T) {
			flatSys, err := Open(DemoScenario())
			if err != nil {
				t.Fatal(err)
			}
			flatCur, err := flatSys.PostWith(sql, algo)
			if err != nil {
				t.Fatal(err)
			}
			flat, err := flatCur.Run()
			if err != nil {
				t.Fatal(err)
			}

			inproc, err := Open(shardedDemo(t, 2))
			if err != nil {
				t.Fatal(err)
			}
			defer inproc.Close()
			inprocCur, err := inproc.PostWith(sql, algo)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := inprocCur.Run(); err != nil {
				t.Fatal(err)
			}

			addrs, _ := startWireShards(t, shardedDemo(t, 2), 0)
			remote, err := OpenFederated(shardedDemo(t, 2), addrs)
			if err != nil {
				t.Fatal(err)
			}
			defer remote.Close()
			cur, err := remote.PostWith(sql, algo)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cur.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(answerBytes(got), answerBytes(flat)) {
				t.Fatalf("remote historic %v, flat %v", got, flat)
			}
			if rf, pf := remote.FederationStats(), inproc.FederationStats(); rf != pf {
				t.Fatalf("coordinator tier diverged: remote %+v, in-process %+v", rf, pf)
			}
		})
	}

	// GROUP BY ... WITH HISTORY rides the snapshot pipeline on derived
	// readings; the shard servers derive them locally and ship them back,
	// so the oracle check must hold over the wire too.
	addrs, _ := startWireShards(t, shardedDemo(t, 2), 0)
	remote, err := OpenFederated(shardedDemo(t, 2), addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	cur, err := remote.Post("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid WITH HISTORY 4")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		res, err := cur.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Correct {
			t.Fatalf("epoch %d: %v vs %v", res.Epoch, res.Answers, res.Exact)
		}
	}
}

// TestWireFrameFaultsByteIdentical: deterministic frame faults on the
// socket path — dropped, duplicated and delayed requests, dropped
// responses — must be absorbed entirely by the at-most-once retry layer:
// the answers stay byte-identical to the clean-socket run even while the
// clients demonstrably retried.
func TestWireFrameFaultsByteIdentical(t *testing.T) {
	const sql = "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid"
	const epochs = 6

	run := func(opts ...OpenOption) ([]StepResult, []Answer, *System) {
		addrs, _ := startWireShards(t, shardedDemo(t, 2), 0)
		sys, err := OpenFederated(shardedDemo(t, 2), addrs, opts...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(sys.Close)
		res := runCursor(t, sys, sql, AlgoMINT, false, epochs)
		cur, err := sys.Post("SELECT TOP 3 epoch, AVG(sound) FROM sensors WITH HISTORY 8")
		if err != nil {
			t.Fatal(err)
		}
		hist, err := cur.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, hist, sys
	}

	clean, cleanHist, _ := run()
	faulty, faultyHist, sys := run(
		withWireFaults(wire.Faults{Seed: 7, Drop: 0.15, Dup: 0.15, Delay: 0.2, DropResp: 0.1, MaxDelay: time.Millisecond}),
		WithWireTimeout(250*time.Millisecond),
		WithWireRetry(10, 2*time.Millisecond),
	)
	stepEqualByteIdentical(t, "faulty vs clean sockets", faulty, clean)
	if !bytes.Equal(answerBytes(faultyHist), answerBytes(cleanHist)) {
		t.Fatalf("historic diverged under frame faults: %v vs %v", faultyHist, cleanHist)
	}
	var retried int64
	for _, cl := range sys.remotes {
		retried += cl.Retried()
	}
	if retried == 0 {
		t.Fatal("frame faults armed but no call ever retried — the fault path did not run")
	}
}

// TestWireRadioFaultCrossCheck: a radio fault environment (link loss,
// dup, delay) armed in the shard servers from the scenario's faults block
// must degrade the remote deployment identically to the in-process
// federation under the same seed — same answers epoch for epoch at 10%
// and 30% loss — and keep the PR 2 suite's recall floors.
func TestWireRadioFaultCrossCheck(t *testing.T) {
	const sql = "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid"
	const epochs = 12
	for _, tc := range []struct {
		loss  float64
		floor float64
	}{
		{0.10, 0.80},
		{0.30, 0.75},
	} {
		t.Run(fmt.Sprintf("loss=%.0f%%", tc.loss*100), func(t *testing.T) {
			cfg := &FaultConfig{Seed: 42, Loss: tc.loss, Duplicate: 0.05, Delay: 0.05}

			faultyScen := func() *Scenario {
				scen := shardedDemo(t, 2)
				scen.Faults = cfg
				return scen
			}
			inproc, err := Open(faultyScen())
			if err != nil {
				t.Fatal(err)
			}
			defer inproc.Close()
			want := runCursor(t, inproc, sql, AlgoMINT, false, epochs)

			addrs, _ := startWireShards(t, faultyScen(), 0)
			remote, err := OpenFederated(faultyScen(), addrs)
			if err != nil {
				t.Fatal(err)
			}
			defer remote.Close()
			got := runCursor(t, remote, sql, AlgoMINT, false, epochs)

			stepEqualByteIdentical(t, "remote vs in-process under radio faults", got, want)
			var recall float64
			for e := range got {
				recall += model.Recall(got[e].Answers, got[e].Exact)
			}
			if recall /= float64(epochs); recall < tc.floor {
				t.Errorf("mean recall %.3f below floor %.2f", recall, tc.floor)
			}
		})
	}
}

// TestWireShardLossMidEpoch: killing one shard's server mid-stream
// surfaces as a tagged error on the cursors that step into it — promptly,
// bounded by the retry budget, with no hang — while the surviving shard's
// state machine keeps serving.
func TestWireShardLossMidEpoch(t *testing.T) {
	const sql = "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid"
	addrs, servers := startWireShards(t, shardedDemo(t, 2), 0)
	sys, err := OpenFederated(shardedDemo(t, 2), addrs,
		WithWireTimeout(200*time.Millisecond), WithWireRetry(1, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	curA, err := sys.Post(sql)
	if err != nil {
		t.Fatal(err)
	}
	curB, err := sys.PostWith("SELECT TOP 3 roomid, MAX(sound) FROM sensors GROUP BY roomid", AlgoTAG)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := curA.Step(); err != nil {
			t.Fatal(err)
		}
		if _, err := curB.Step(); err != nil {
			t.Fatal(err)
		}
	}

	servers[1].Close() // the shard process dies mid-deployment

	start := time.Now()
	_, errA := curA.Step()
	if errA == nil {
		t.Fatal("step into a dead shard succeeded")
	}
	if !strings.Contains(errA.Error(), "shard-1") {
		t.Fatalf("error not tagged with the dead shard: %v", errA)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dead-shard step took %v — retry budget not bounding", elapsed)
	}
	// The other cursor surfaces the loss on its own step — an error, not a
	// wedge.
	if _, errB := curB.Step(); errB == nil {
		t.Fatal("second cursor's step into a dead shard succeeded")
	}
	// The surviving shard's server is not wedged: its state machine still
	// answers (stats RPC on the live connection).
	if _, err := sys.remotes[0].Stats(); err != nil {
		t.Fatalf("surviving shard unreachable after peer death: %v", err)
	}
}

// TestWireCloseDuringInFlight: System.Close racing an in-flight socket
// round interrupts it promptly and leaves no goroutine and no fd behind —
// counted against pre-deployment baselines across repeated rounds.
func TestWireCloseDuringInFlight(t *testing.T) {
	countFDs := func() int {
		ents, err := os.ReadDir("/proc/self/fd")
		if err != nil {
			t.Skip("no /proc/self/fd on this platform")
		}
		return len(ents)
	}
	baseGoroutines := runtime.NumGoroutine()
	baseFDs := countFDs()

	for round := 0; round < 6; round++ {
		addrs, servers := startWireShards(t, shardedDemo(t, 2), 0)
		sys, err := OpenFederated(shardedDemo(t, 2), addrs)
		if err != nil {
			t.Fatal(err)
		}
		cur, err := sys.Post("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cur.Step(); err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 50; i++ {
				if _, err := cur.Step(); err != nil {
					return // closed under us — the expected exit
				}
			}
		}()
		sys.Close() // racing the stepping goroutine's socket rounds
		<-done
		if _, err := cur.Step(); err == nil {
			t.Fatalf("round %d: Step after Close succeeded", round)
		}
		for _, srv := range servers {
			srv.Close()
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseGoroutines+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d at start", runtime.NumGoroutine(), baseGoroutines)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for countFDs() > baseFDs+2 {
		if time.Now().After(deadline) {
			t.Fatalf("fds leaked: %d now vs %d at start", countFDs(), baseFDs)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWireOpenRejects: deployment-skew and misuse are caught at Open/Post
// time — wrong address count, node-count mismatch, live/fault options on
// a coordinator-only System.
func TestWireOpenRejects(t *testing.T) {
	addrs, _ := startWireShards(t, shardedDemo(t, 2), 0)

	if _, err := OpenFederated(shardedDemo(t, 2), addrs[:1]); err == nil {
		t.Fatal("address/shard count mismatch accepted")
	}

	// A skewed deployment (different shard split) must fail the handshake.
	if _, err := OpenFederated(shardedDemo(t, 3), []string{addrs[0], addrs[1], addrs[0]}); err == nil {
		t.Fatal("shard-count skew accepted by the handshake")
	}

	sys, err := OpenFederated(shardedDemo(t, 2), addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Network() != nil {
		t.Fatal("remote deployment exposed a local network")
	}
	if _, err := sys.Post("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid", WithLive()); err == nil {
		t.Fatal("WithLive accepted on a remote deployment")
	}
	if _, err := sys.Post("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid",
		WithFaults(FaultConfig{Seed: 1, Loss: 0.1})); err == nil {
		t.Fatal("WithFaults accepted on a remote deployment")
	}
	if _, err := sys.PostWith("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid", Algorithm("bogus")); err == nil {
		t.Fatal("bogus algorithm accepted on a remote deployment")
	}
}

// TestWireMixedProtocolConformance: a deployment where some shard servers
// are old (no epoch-round capability) and some are new must keep answering
// byte-identically — the coordinator batches the rounds of the shards that
// negotiated the capability and walks the per-call protocol for the rest,
// inside the same epoch. Pinned against the all-legacy run (the client
// forced per-call everywhere) and against the default all-batched run,
// with the per-shard wire metrics witnessing which protocol each session
// actually spoke.
func TestWireMixedProtocolConformance(t *testing.T) {
	const sql = "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid"
	const epochs = 6

	run := func(legacyShard func(i int) bool, opts ...OpenOption) ([]StepResult, *System) {
		addrs, _ := startWireShardsMixed(t, shardedDemo(t, 3), 0, legacyShard)
		sys, err := OpenFederated(shardedDemo(t, 3), addrs, opts...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(sys.Close)
		return runCursor(t, sys, sql, AlgoMINT, false, epochs), sys
	}

	batched, batchedSys := run(nil)
	legacy, _ := run(nil, withWireLegacy())
	mixed, mixedSys := run(func(i int) bool { return i == 0 }) // shard 0 is an old server

	stepEqualByteIdentical(t, "all-legacy vs all-batched", legacy, batched)
	stepEqualByteIdentical(t, "mixed vs all-batched", mixed, batched)

	// The metrics witness the negotiated protocols: an epoch on a batched
	// session is ONE call; on a per-call session it is a sense plus one
	// acquire per group — strictly more.
	bm, mm := batchedSys.WireMetrics(), mixedSys.WireMetrics()
	if len(bm) != 3 || len(mm) != 3 {
		t.Fatalf("wire metrics rows: %d / %d", len(bm), len(mm))
	}
	for i, m := range bm {
		if m.Rounds == 0 || m.Calls == 0 {
			t.Fatalf("batched shard %d metrics empty: %+v", i, m)
		}
	}
	if mm[0].Calls <= mm[1].Calls {
		t.Fatalf("legacy shard 0 made %d calls, batched shard 1 made %d — per-call fallback did not run", mm[0].Calls, mm[1].Calls)
	}

	// Mixed deployments keep their protocol under frame faults too.
	faulty, _ := run(func(i int) bool { return i == 0 },
		withWireFaults(wire.Faults{Seed: 5, Drop: 0.1, Dup: 0.1, Delay: 0.15, DropResp: 0.1, MaxDelay: time.Millisecond}),
		WithWireTimeout(250*time.Millisecond),
		WithWireRetry(10, 2*time.Millisecond),
	)
	stepEqualByteIdentical(t, "mixed under faults vs all-batched", faulty, batched)
}
