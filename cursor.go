package kspot

import (
	"context"
	"fmt"
	"sync"

	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/query"
	"kspot/internal/storage"
	"kspot/internal/topk"
	"kspot/internal/topk/fed"
	"kspot/internal/trace"
	"kspot/internal/wire"
)

// Cursor is a prepared query. Snapshot (continuous) queries advance one
// epoch per Step (or StepContext) call; historic queries execute once via
// Run. On a federated deployment a cursor owns one operator instance per
// shard plus the coordinator-tier merger; its answers aggregate across
// every shard.
type Cursor struct {
	sys  *System
	plan *query.Plan
	algo Algorithm
	live bool

	merger *fed.Merger // nil on flat deployments

	// Continuous cursors are seats on a shared lock-step scheduler — the
	// System's deterministic scheduler, its live scheduler, or the remote
	// coordinator's scheduled tier. Cursors whose queries share a sensing
	// signature (groupKey) ride ONE in-network acquisition per epoch; the
	// cursor's own merge and TOP-K cut run above the shared view.
	tps   []engine.Transport
	sched *engine.Scheduler
	sq    *engine.ScheduledQuery
	rq    *engine.RemoteQuery

	// groupKey is the shared-acquisition key this cursor scheduled under
	// (resolved algorithm + the plan's SenseKey); tenant/admitted record
	// the admission slot Close releases.
	groupKey  string
	tenant    string
	admitted  bool
	closeOnce sync.Once
}

// StepResult is one epoch of a continuous query.
type StepResult struct {
	Epoch   Epoch
	Answers []Answer
	// Exact is the oracle answer for the same epoch over the union of
	// every shard's readings (the simulator knows ground truth; a real
	// deployment would not).
	Exact   []Answer
	Correct bool
}

// Plan describes how the router dispatched the query.
func (c *Cursor) Plan() string { return c.plan.Kind.String() }

// Query returns the canonical query text.
func (c *Cursor) Query() string { return c.plan.Query }

// Live reports whether the cursor runs on the concurrent substrate.
func (c *Cursor) Live() bool { return c.live }

// Continuous reports whether the cursor is advanced with Step (snapshot
// and basic queries) rather than executed once with Run.
func (c *Cursor) Continuous() bool {
	return c.plan.Kind != query.PlanHistoricTopK
}

// transports returns the shard substrates this cursor's traffic runs on
// (behind the fault injectors when an environment is armed).
func (c *Cursor) transports() ([]engine.Transport, error) {
	if !c.live {
		if c.tps == nil {
			c.tps = c.sys.detTransports()
		}
		return c.tps, nil
	}
	if c.tps == nil {
		tps, sched := c.sys.liveState()
		if tps == nil {
			return nil, fmt.Errorf("kspot: system is closed")
		}
		c.tps, c.sched = tps, sched
	}
	return c.tps, nil
}

func (c *Cursor) prepare() error {
	switch c.plan.Kind {
	case query.PlanHistoricTopK:
		// Historic TOP-K federates: each shard runs the historic operator
		// over its own windows and the coordinator closes the ranking with
		// a TPUT-style threshold round (fed.HistoricMerger). Run builds the
		// per-shard executions; nothing to prepare beyond the operator.
		if _, err := historicOperator(c.algo); err != nil {
			return err
		}
		return nil
	case query.PlanBasic:
		// Basic queries always run plain acquisition.
		if c.algo != AlgoAuto && c.algo != AlgoTAG {
			return fmt.Errorf("kspot: basic queries run on TAG, not %q", c.algo)
		}
	}
	algo := c.resolvedAlgo()
	if c.sys.Remote() {
		return c.prepareRemote(algo)
	}
	tps, err := c.transports()
	if err != nil {
		return err
	}
	if !c.live {
		// Deterministic snapshot cursors share the System's lock-step
		// scheduler, exactly like live cursors share theirs: the epoch is
		// sensed once however many queries are posted, and same-signature
		// queries share one acquisition.
		c.sched = c.sys.detScheduler()
	}
	if len(tps) > 1 {
		m, err := fed.New(c.plan.Snapshot, fed.Config{}, c.sys.fedStats)
		if err != nil {
			return err
		}
		c.merger = m
	}

	// Schedule under the sensing signature. The first query of a signature
	// attaches the operators; later ones join its in-network acquisition,
	// widening it first when they need a deeper ranking than it was
	// attached at. Group bookkeeping (existence, acquired depth) is
	// serialized across posts and closes by groupMu.
	key := string(algo) + "|" + c.plan.SenseKey
	spec := engine.QuerySpec{Key: key, Merge: c.mergeFunc(), CutK: c.cutK()}
	c.sys.groupMu.Lock()
	defer c.sys.groupMu.Unlock()
	capKey := c.capKeyFor(key)
	if c.sched.GroupSize(key) == 0 || c.plan.Snapshot.K > c.sys.groupCaps[capKey] {
		ops := make([]engine.EpochRunner, len(tps))
		for i, tp := range tps {
			op, err := snapshotOperator(algo)
			if err != nil {
				return err
			}
			if err := op.Attach(tp, c.plan.Snapshot); err != nil {
				return err
			}
			ops[i] = op
		}
		if c.sched.GroupSize(key) == 0 {
			spec.Ops = ops
			if c.plan.Kind == query.PlanHistoricGroupTopK {
				spec.Src = c.source()
			}
		} else if err := c.sched.WidenGroup(key, ops); err != nil {
			return err
		}
		c.sys.groupCaps[capKey] = c.plan.Snapshot.K
	}
	c.sq = c.sched.Schedule(spec)
	c.groupKey = key
	return nil
}

// prepareRemote schedules the cursor on the remote coordinator's lock-step
// tier. Remote shards plan the SQL and instantiate the operator in their
// own process (internal/topk/registry maps the algorithm name to the
// identical implementation); the coordinator attaches ONE wire query per
// sensing signature and every same-signature cursor's epochs acquire it.
func (c *Cursor) prepareRemote(algo Algorithm) error {
	// Validate the name here so a bad algorithm fails the Post, not the
	// first Step.
	if _, err := snapshotOperator(algo); err != nil {
		return err
	}
	key := string(algo) + "|" + c.plan.SenseKey
	c.sys.groupMu.Lock()
	defer c.sys.groupMu.Unlock()
	if len(c.sys.remotes) > 1 {
		m, err := fed.New(c.plan.Snapshot, fed.Config{}, c.sys.fedStats)
		if err != nil {
			return err
		}
		c.merger = m
	}
	st := c.sys.remoteKeys[key]
	if st == nil || c.plan.Snapshot.K > st.cap {
		// First query of the signature, or one needing a deeper ranking
		// than the group was attached at: attach this cursor's own plan on
		// every shard (its K is the new widest) and point the group at it.
		rqid := c.sys.nextQueryID()
		for _, cl := range c.sys.remotes {
			if err := cl.Attach(rqid, string(c.wireAlgo()), c.plan.Query); err != nil {
				return err
			}
		}
		if st == nil {
			st = &remoteKeyState{rqid: rqid, cap: c.plan.Snapshot.K, algo: string(c.wireAlgo()), sql: c.plan.Query}
			c.sys.remoteKeys[key] = st
		} else {
			if err := c.sys.rcoord.WidenGroup(key, rqid); err != nil {
				return err
			}
			st.rqid, st.cap, st.algo, st.sql = rqid, c.plan.Snapshot.K, string(c.wireAlgo()), c.plan.Query
		}
	}
	c.rq = c.sys.rcoord.Schedule(key, st.rqid, c.mergeFunc(), c.cutK())
	c.groupKey = key
	return nil
}

// resolvedAlgo folds the algorithm the query actually runs on: basic
// queries always run TAG, and AlgoAuto resolves to MINT for snapshot plans
// (registry treats "" and "mint" as the same operator) — so equivalent
// posts derive equal acquisition keys.
func (c *Cursor) resolvedAlgo() Algorithm {
	if c.plan.Kind == query.PlanBasic {
		return AlgoTAG
	}
	if c.algo == AlgoAuto {
		return AlgoMINT
	}
	return c.algo
}

// wireAlgo is the algorithm name sent on the wire Attach: the resolved
// name, which every shard's registry maps to the identical operator.
func (c *Cursor) wireAlgo() Algorithm { return c.resolvedAlgo() }

// cutK is this cursor's own TOP-K depth — the per-tenant cut applied above
// the (possibly wider) shared acquisition. 0 for plans without a TOP
// clause: they keep the full ranking.
func (c *Cursor) cutK() int {
	switch c.plan.Kind {
	case query.PlanSnapshotTopK, query.PlanHistoricGroupTopK:
		return c.plan.Snapshot.K
	default:
		return 0
	}
}

// capKeyFor prefixes an acquisition key with the cursor's substrate: the
// det and live schedulers keep separate groups, so their acquired-depth
// bookkeeping must not collide in the System's shared map.
func (c *Cursor) capKeyFor(key string) string {
	if c.live {
		return "live|" + key
	}
	return "det|" + key
}

// Close detaches the cursor from its scheduler seat and releases its
// admission slot. The last cursor of a shared-acquisition group dissolves
// the group (a later same-signature post re-attaches fresh operators).
// Safe to call multiple times; other cursors keep stepping undisturbed.
// Historic (Run) cursors hold no seat — Close just frees admission.
func (c *Cursor) Close() {
	c.closeOnce.Do(func() {
		s := c.sys
		s.groupMu.Lock()
		if c.sq != nil && c.sched != nil {
			c.sched.Remove(c.sq)
			if c.groupKey != "" && c.sched.GroupSize(c.groupKey) == 0 {
				delete(s.groupCaps, c.capKeyFor(c.groupKey))
			}
		}
		if c.rq != nil {
			s.rcoord.Remove(c.rq)
			if c.groupKey != "" && s.rcoord.GroupSize(c.groupKey) == 0 {
				delete(s.remoteKeys, c.groupKey)
			}
		}
		s.groupMu.Unlock()
		if c.admitted {
			s.admission.Release(c.tenant)
		}
	})
}

// mergeFunc adapts the cursor's fed merger to the engine's coordinator
// hook (nil on flat deployments — answers pass through).
func (c *Cursor) mergeFunc() engine.MergeFunc {
	if c.merger == nil {
		return nil
	}
	return c.merger.Merge
}

// Step runs one epoch of a continuous query.
func (c *Cursor) Step() (StepResult, error) {
	return c.StepContext(context.Background())
}

// StepContext is Step with cancellation. On the live substrate a
// cancelled step returns promptly while the in-flight epoch completes on
// the deployment's own goroutines — its outcome is re-buffered, so the
// next Step resumes the epoch stream without a gap and nothing leaks. On
// the deterministic substrate cancellation is observed between epochs.
func (c *Cursor) StepContext(ctx context.Context) (StepResult, error) {
	if !c.Continuous() {
		return StepResult{}, fmt.Errorf("kspot: historic query %q executes with Run, not Step", c.plan.Query)
	}
	if c.live {
		if _, err := c.transports(); err != nil {
			return StepResult{}, err
		}
		out, err := c.sched.StepContext(ctx, c.sq)
		if err != nil {
			return StepResult{}, err
		}
		return c.result(out), nil
	}
	if c.sys.Remote() {
		// Remote cursors advance on the remote coordinator's shared
		// lock-step clock; every shard process senses once per epoch and
		// acquires once per signature group over the wire. A shard loss
		// surfaces here, on this cursor, tagged with the shard's name —
		// other cursors (and the other shards' state machines) continue.
		if err := ctx.Err(); err != nil {
			return StepResult{}, err
		}
		out, err := c.sys.rcoord.Step(c.rq)
		if err != nil {
			return StepResult{}, err
		}
		if out.Err != nil {
			return StepResult{}, out.Err
		}
		return c.result(out), nil
	}
	// Deterministic cursors advance on the System's shared scheduler.
	// Cancellation is observed here, between epochs: once this cursor
	// demands an epoch the deterministic substrate runs it to completion,
	// so the stream can never skip an epoch.
	if err := ctx.Err(); err != nil {
		return StepResult{}, err
	}
	if _, err := c.transports(); err != nil {
		return StepResult{}, err
	}
	out, err := c.sched.Step(c.sq)
	if err != nil {
		return StepResult{}, err
	}
	return c.result(out), nil
}

// result scores an epoch outcome against the exact oracle over the union
// of the shards' readings.
func (c *Cursor) result(out engine.Outcome) StepResult {
	exact := topk.ExactSnapshot(out.Readings, c.plan.Snapshot)
	return StepResult{
		Epoch:   out.Epoch,
		Answers: out.Answers,
		Exact:   exact,
		Correct: model.EqualAnswers(out.Answers, exact),
	}
}

// source returns the per-epoch reading source; GROUP BY ... WITH HISTORY
// queries filter locally first (§III-B): each node's "reading" is the
// aggregate of its buffered window ending at the current epoch
// (trace.WindowAgg — remote shard servers derive the same source, so the
// override readings match across substrates bit for bit).
func (c *Cursor) source() trace.Source {
	if c.plan.Kind == query.PlanHistoricGroupTopK {
		return trace.WindowAgg(c.sys.source, c.plan.History, c.plan.Snapshot.Agg)
	}
	return c.sys.source
}

// Run executes a historic query over the last Window epochs of buffered
// history (the simulator materializes each node's window through
// storage.Window, standing in for the motes' MicroHash-indexed flash
// buffers). On a federated deployment every shard runs the historic
// operator over its own windows and the coordinator merges the shard
// rankings with a two-phase threshold round (fed.HistoricMerger), exact
// and byte-identical to the flat run; coordinator backhaul is accounted
// in FederationStats.
func (c *Cursor) Run() ([]Answer, error) {
	if c.Continuous() {
		return nil, fmt.Errorf("kspot: continuous query %q advances with Step, not Run", c.plan.Query)
	}
	if c.sys.Remote() {
		return c.runRemote()
	}
	var tps []engine.Transport
	if c.live {
		// One-shot runs bypass the scheduler's epoch lock-step, so they
		// register with the System: Close waits registered runs out before
		// stopping any shard's node goroutines (a federated run must never
		// find one shard's Live torn down mid-protocol).
		liveTPs, sched, release, err := c.sys.beginLiveRun()
		if err != nil {
			return nil, err
		}
		defer release()
		c.tps, c.sched = liveTPs, sched
		tps = liveTPs
	} else {
		var err error
		tps, err = c.transports()
		if err != nil {
			return nil, err
		}
	}
	if len(tps) == 1 {
		op, err := historicOperator(c.algo)
		if err != nil {
			return nil, err
		}
		data, err := c.bufferWindows(tps[0])
		if err != nil {
			return nil, err
		}
		return op.Run(tps[0], c.plan.Historic, data)
	}

	// Federated: one historic shard execution per deployment, fanned out by
	// the coordinator (concurrently on the live substrate), merged with the
	// coordinator tier's threshold round.
	coord := c.historicCoordinator(tps)
	shards := make([]fed.HistoricShard, coord.Shards())
	err := coord.RunShards(c.live, func(i int, d *engine.Deployment) error {
		op, err := historicOperator(c.algo)
		if err != nil {
			return err
		}
		data, err := c.bufferWindows(d.Transport())
		if err != nil {
			return err
		}
		shards[i] = &fed.OperatorShard{Op: op, Tp: d.Transport(), Q: c.plan.Historic, Data: data}
		return nil
	})
	if err != nil {
		return nil, err
	}
	m, err := fed.NewHistoric(c.plan.Historic, fed.Config{}, c.sys.fedStats)
	if err != nil {
		return nil, err
	}
	return m.Run(shards, c.live)
}

// runRemote executes a historic query on a remote deployment. Each shard
// process buffers its own windows and runs the historic operator locally;
// only shard-level results cross the wire — the shard's local TOP-shipK
// partial sums, then the sums the coordinator's threshold round targets
// in phase 2 (fed.HistoricMerger, identical to the in-process federation,
// so the merged ranking is byte-identical to the flat run). The whole
// round runs serialized against epoch rounds: its per-shard calls must
// not interleave another cursor's sense/acquire pair on the shard state
// machines.
func (c *Cursor) runRemote() ([]Answer, error) {
	if _, err := historicOperator(c.algo); err != nil {
		return nil, err
	}
	exec := c.sys.nextQueryID()
	remotes := c.sys.remoteClients()
	execs := make([]*wire.HistoricExec, len(remotes))
	for i, cl := range remotes {
		execs[i] = cl.Historic(exec, string(c.algo), c.plan.Historic)
	}
	defer func() {
		for _, h := range execs {
			h.Release()
		}
	}()
	if len(execs) == 1 {
		var answers []Answer
		err := c.sys.rcoord.Serialized(func() error {
			var err error
			answers, err = execs[0].Run()
			return err
		})
		return answers, err
	}
	shards := make([]fed.HistoricShard, len(execs))
	for i, h := range execs {
		shards[i] = h
	}
	m, err := fed.NewHistoric(c.plan.Historic, fed.Config{}, c.sys.fedStats)
	if err != nil {
		return nil, err
	}
	var answers []Answer
	err = c.sys.rcoord.Serialized(func() error {
		var err error
		answers, err = m.Run(shards, true)
		return err
	})
	return answers, err
}

// bufferWindows materializes a transport's per-node windows for this
// cursor's historic query, epoch-aligned across shards (one flat trace
// source, global node ids).
func (c *Cursor) bufferWindows(tp engine.Transport) (topk.HistoricData, error) {
	series, err := storage.BufferSeries(tp.Topology().SensorNodes(), c.plan.Historic.Window, c.sys.source.Sample)
	if err != nil {
		return nil, err
	}
	return topk.HistoricData(series), nil
}

// historicCoordinator returns the coordinator driving this cursor's
// historic shard executions: the scheduler's on the live substrate (it
// already holds the shard deployments), a private one over the
// deterministic shard transports otherwise.
func (c *Cursor) historicCoordinator(tps []engine.Transport) *engine.Coordinator {
	if c.live {
		return c.sched.Coordinator()
	}
	deps := make([]*engine.Deployment, len(tps))
	for i, tp := range tps {
		deps[i] = engine.NewDeployment(c.sys.scenario.ShardName(i), tp, c.sys.source)
	}
	return engine.NewCoordinator(deps...)
}
