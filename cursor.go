package kspot

import (
	"context"
	"fmt"

	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/query"
	"kspot/internal/storage"
	"kspot/internal/topk"
	"kspot/internal/topk/fed"
	"kspot/internal/trace"
	"kspot/internal/wire"
)

// Cursor is a prepared query. Snapshot (continuous) queries advance one
// epoch per Step (or StepContext) call; historic queries execute once via
// Run. On a federated deployment a cursor owns one operator instance per
// shard plus the coordinator-tier merger; its answers aggregate across
// every shard.
type Cursor struct {
	sys  *System
	plan *query.Plan
	algo Algorithm
	live bool

	runners []engine.EpochRunner // one snapshot operator per shard
	merger  *fed.Merger          // nil on flat deployments
	epoch   model.Epoch

	// Deterministic cursors drive their shards through their own
	// coordinator (a private epoch clock); live cursors pin the
	// deployment and scheduler they registered with at post time (Close
	// tears the System's copies down concurrently).
	coord *engine.Coordinator
	tps   []engine.Transport
	sched *engine.Scheduler
	sq    *engine.ScheduledQuery

	// rqid identifies this cursor's attached query on every remote shard
	// (remote deployments only; the shard processes key their operator
	// instances on it).
	rqid uint32
}

// StepResult is one epoch of a continuous query.
type StepResult struct {
	Epoch   Epoch
	Answers []Answer
	// Exact is the oracle answer for the same epoch over the union of
	// every shard's readings (the simulator knows ground truth; a real
	// deployment would not).
	Exact   []Answer
	Correct bool
}

// Plan describes how the router dispatched the query.
func (c *Cursor) Plan() string { return c.plan.Kind.String() }

// Query returns the canonical query text.
func (c *Cursor) Query() string { return c.plan.Query }

// Live reports whether the cursor runs on the concurrent substrate.
func (c *Cursor) Live() bool { return c.live }

// Continuous reports whether the cursor is advanced with Step (snapshot
// and basic queries) rather than executed once with Run.
func (c *Cursor) Continuous() bool {
	return c.plan.Kind != query.PlanHistoricTopK
}

// transports returns the shard substrates this cursor's traffic runs on
// (behind the fault injectors when an environment is armed).
func (c *Cursor) transports() ([]engine.Transport, error) {
	if !c.live {
		if c.tps == nil {
			c.tps = c.sys.detTransports()
		}
		return c.tps, nil
	}
	if c.tps == nil {
		tps, sched := c.sys.liveState()
		if tps == nil {
			return nil, fmt.Errorf("kspot: system is closed")
		}
		c.tps, c.sched = tps, sched
	}
	return c.tps, nil
}

func (c *Cursor) prepare() error {
	switch c.plan.Kind {
	case query.PlanHistoricTopK:
		// Historic TOP-K federates: each shard runs the historic operator
		// over its own windows and the coordinator closes the ranking with
		// a TPUT-style threshold round (fed.HistoricMerger). Run builds the
		// per-shard executions; nothing to prepare beyond the operator.
		if _, err := historicOperator(c.algo); err != nil {
			return err
		}
		return nil
	case query.PlanBasic:
		// Basic queries always run plain acquisition.
		if c.algo != AlgoAuto && c.algo != AlgoTAG {
			return fmt.Errorf("kspot: basic queries run on TAG, not %q", c.algo)
		}
	}
	algo := c.algo
	if c.plan.Kind == query.PlanBasic {
		algo = AlgoTAG
	}
	if c.sys.Remote() {
		// Remote shards plan the SQL and instantiate the operator in their
		// own process (internal/topk/registry maps the algorithm name to
		// the identical implementation); validate the name here so a bad
		// algorithm fails the Post, not the first Step.
		if _, err := snapshotOperator(algo); err != nil {
			return err
		}
		c.rqid = c.sys.nextQueryID()
		for _, cl := range c.sys.remotes {
			if err := cl.Attach(c.rqid, string(algo), c.plan.Query); err != nil {
				return err
			}
		}
		if len(c.sys.remotes) > 1 {
			m, err := fed.New(c.plan.Snapshot, fed.Config{}, c.sys.fedStats)
			if err != nil {
				return err
			}
			c.merger = m
		}
		return nil
	}
	tps, err := c.transports()
	if err != nil {
		return err
	}
	for _, tp := range tps {
		op, err := snapshotOperator(algo)
		if err != nil {
			return err
		}
		if err := op.Attach(tp, c.plan.Snapshot); err != nil {
			return err
		}
		c.runners = append(c.runners, op)
	}
	if len(tps) > 1 {
		m, err := fed.New(c.plan.Snapshot, fed.Config{}, c.sys.fedStats)
		if err != nil {
			return err
		}
		c.merger = m
	}
	var override trace.Source
	if c.plan.Kind == query.PlanHistoricGroupTopK {
		override = c.source()
	}
	if c.live {
		// Live snapshot cursors are served by the shared scheduler: one
		// epoch sweep per shard per epoch, however many queries are posted.
		c.sq = c.sched.Add(c.runners, c.mergeFunc(), override)
	} else {
		deps := make([]*engine.Deployment, len(tps))
		for i, tp := range tps {
			deps[i] = engine.NewDeployment(c.sys.scenario.ShardName(i), tp, c.sys.source)
		}
		c.coord = engine.NewCoordinator(deps...)
	}
	return nil
}

// mergeFunc adapts the cursor's fed merger to the engine's coordinator
// hook (nil on flat deployments — answers pass through).
func (c *Cursor) mergeFunc() engine.MergeFunc {
	if c.merger == nil {
		return nil
	}
	return c.merger.Merge
}

// Step runs one epoch of a continuous query.
func (c *Cursor) Step() (StepResult, error) {
	return c.StepContext(context.Background())
}

// StepContext is Step with cancellation. On the live substrate a
// cancelled step returns promptly while the in-flight epoch completes on
// the deployment's own goroutines — its outcome is re-buffered, so the
// next Step resumes the epoch stream without a gap and nothing leaks. On
// the deterministic substrate cancellation is observed between epochs.
func (c *Cursor) StepContext(ctx context.Context) (StepResult, error) {
	if !c.Continuous() {
		return StepResult{}, fmt.Errorf("kspot: historic query %q executes with Run, not Step", c.plan.Query)
	}
	if c.live {
		if _, err := c.transports(); err != nil {
			return StepResult{}, err
		}
		out, err := c.sched.StepContext(ctx, c.sq)
		if err != nil {
			return StepResult{}, err
		}
		return c.result(out), nil
	}
	if c.sys.Remote() {
		// Remote cursors run on the deterministic epoch clock; every shard
		// process senses and acquires the epoch over the wire. A shard loss
		// surfaces here, on this cursor, tagged with the shard's name —
		// other cursors (and the other shards' state machines) continue.
		if err := ctx.Err(); err != nil {
			return StepResult{}, err
		}
		e := c.epoch
		c.epoch++
		out := c.sys.rcoord.Epoch(c.rqid, e, c.mergeFunc())
		if out.Err != nil {
			return StepResult{}, out.Err
		}
		return c.result(out), nil
	}
	// Cancellation is observed here, between epochs: once an epoch number
	// is consumed the deterministic coordinator runs it to completion, so
	// the stream can never skip an epoch.
	if err := ctx.Err(); err != nil {
		return StepResult{}, err
	}
	if _, err := c.transports(); err != nil {
		return StepResult{}, err
	}
	e := c.epoch
	c.epoch++
	var override trace.Source
	if c.plan.Kind == query.PlanHistoricGroupTopK {
		override = c.source()
	}
	out := c.coord.Epoch(e, c.runners, override, c.mergeFunc())
	if out.Err != nil {
		return StepResult{}, out.Err
	}
	return c.result(out), nil
}

// result scores an epoch outcome against the exact oracle over the union
// of the shards' readings.
func (c *Cursor) result(out engine.Outcome) StepResult {
	exact := topk.ExactSnapshot(out.Readings, c.plan.Snapshot)
	return StepResult{
		Epoch:   out.Epoch,
		Answers: out.Answers,
		Exact:   exact,
		Correct: model.EqualAnswers(out.Answers, exact),
	}
}

// source returns the per-epoch reading source; GROUP BY ... WITH HISTORY
// queries filter locally first (§III-B): each node's "reading" is the
// aggregate of its buffered window ending at the current epoch
// (trace.WindowAgg — remote shard servers derive the same source, so the
// override readings match across substrates bit for bit).
func (c *Cursor) source() trace.Source {
	if c.plan.Kind == query.PlanHistoricGroupTopK {
		return trace.WindowAgg(c.sys.source, c.plan.History, c.plan.Snapshot.Agg)
	}
	return c.sys.source
}

// Run executes a historic query over the last Window epochs of buffered
// history (the simulator materializes each node's window through
// storage.Window, standing in for the motes' MicroHash-indexed flash
// buffers). On a federated deployment every shard runs the historic
// operator over its own windows and the coordinator merges the shard
// rankings with a two-phase threshold round (fed.HistoricMerger), exact
// and byte-identical to the flat run; coordinator backhaul is accounted
// in FederationStats.
func (c *Cursor) Run() ([]Answer, error) {
	if c.Continuous() {
		return nil, fmt.Errorf("kspot: continuous query %q advances with Step, not Run", c.plan.Query)
	}
	if c.sys.Remote() {
		return c.runRemote()
	}
	var tps []engine.Transport
	if c.live {
		// One-shot runs bypass the scheduler's epoch lock-step, so they
		// register with the System: Close waits registered runs out before
		// stopping any shard's node goroutines (a federated run must never
		// find one shard's Live torn down mid-protocol).
		liveTPs, sched, release, err := c.sys.beginLiveRun()
		if err != nil {
			return nil, err
		}
		defer release()
		c.tps, c.sched = liveTPs, sched
		tps = liveTPs
	} else {
		var err error
		tps, err = c.transports()
		if err != nil {
			return nil, err
		}
	}
	if len(tps) == 1 {
		op, err := historicOperator(c.algo)
		if err != nil {
			return nil, err
		}
		data, err := c.bufferWindows(tps[0])
		if err != nil {
			return nil, err
		}
		return op.Run(tps[0], c.plan.Historic, data)
	}

	// Federated: one historic shard execution per deployment, fanned out by
	// the coordinator (concurrently on the live substrate), merged with the
	// coordinator tier's threshold round.
	coord := c.historicCoordinator(tps)
	shards := make([]fed.HistoricShard, coord.Shards())
	err := coord.RunShards(c.live, func(i int, d *engine.Deployment) error {
		op, err := historicOperator(c.algo)
		if err != nil {
			return err
		}
		data, err := c.bufferWindows(d.Transport())
		if err != nil {
			return err
		}
		shards[i] = &fed.OperatorShard{Op: op, Tp: d.Transport(), Q: c.plan.Historic, Data: data}
		return nil
	})
	if err != nil {
		return nil, err
	}
	m, err := fed.NewHistoric(c.plan.Historic, fed.Config{}, c.sys.fedStats)
	if err != nil {
		return nil, err
	}
	return m.Run(shards, c.live)
}

// runRemote executes a historic query on a remote deployment. Each shard
// process buffers its own windows and runs the historic operator locally;
// only shard-level results cross the wire — the shard's local TOP-shipK
// partial sums, then the sums the coordinator's threshold round targets
// in phase 2 (fed.HistoricMerger, identical to the in-process federation,
// so the merged ranking is byte-identical to the flat run). The whole
// round runs serialized against epoch rounds: its per-shard calls must
// not interleave another cursor's sense/acquire pair on the shard state
// machines.
func (c *Cursor) runRemote() ([]Answer, error) {
	if _, err := historicOperator(c.algo); err != nil {
		return nil, err
	}
	exec := c.sys.nextQueryID()
	execs := make([]*wire.HistoricExec, len(c.sys.remotes))
	for i, cl := range c.sys.remotes {
		execs[i] = cl.Historic(exec, string(c.algo), c.plan.Historic)
	}
	defer func() {
		for _, h := range execs {
			h.Release()
		}
	}()
	if len(execs) == 1 {
		var answers []Answer
		err := c.sys.rcoord.Serialized(func() error {
			var err error
			answers, err = execs[0].Run()
			return err
		})
		return answers, err
	}
	shards := make([]fed.HistoricShard, len(execs))
	for i, h := range execs {
		shards[i] = h
	}
	m, err := fed.NewHistoric(c.plan.Historic, fed.Config{}, c.sys.fedStats)
	if err != nil {
		return nil, err
	}
	var answers []Answer
	err = c.sys.rcoord.Serialized(func() error {
		var err error
		answers, err = m.Run(shards, true)
		return err
	})
	return answers, err
}

// bufferWindows materializes a transport's per-node windows for this
// cursor's historic query, epoch-aligned across shards (one flat trace
// source, global node ids).
func (c *Cursor) bufferWindows(tp engine.Transport) (topk.HistoricData, error) {
	series, err := storage.BufferSeries(tp.Topology().SensorNodes(), c.plan.Historic.Window, c.sys.source.Sample)
	if err != nil {
		return nil, err
	}
	return topk.HistoricData(series), nil
}

// historicCoordinator returns the coordinator driving this cursor's
// historic shard executions: the scheduler's on the live substrate (it
// already holds the shard deployments), a private one over the
// deterministic shard transports otherwise.
func (c *Cursor) historicCoordinator(tps []engine.Transport) *engine.Coordinator {
	if c.live {
		return c.sched.Coordinator()
	}
	deps := make([]*engine.Deployment, len(tps))
	for i, tp := range tps {
		deps[i] = engine.NewDeployment(c.sys.scenario.ShardName(i), tp, c.sys.source)
	}
	return engine.NewCoordinator(deps...)
}
