package kspot

import (
	"fmt"

	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/query"
	"kspot/internal/topk"
	"kspot/internal/trace"
)

// Cursor is a prepared query. Snapshot (continuous) queries advance one
// epoch per Step call; historic queries execute once via Run.
type Cursor struct {
	sys  *System
	plan *query.Plan
	algo Algorithm
	live bool

	snapOp topk.SnapshotOperator
	epoch  model.Epoch

	// Live cursors pin the deployment and scheduler they registered with
	// at post time (Close tears the System's copies down concurrently).
	tp    engine.Transport
	sched *engine.Scheduler
	sq    *engine.ScheduledQuery
}

// StepResult is one epoch of a continuous query.
type StepResult struct {
	Epoch   Epoch
	Answers []Answer
	// Exact is the oracle answer for the same epoch (the simulator knows
	// ground truth; a real deployment would not).
	Exact   []Answer
	Correct bool
}

// Plan describes how the router dispatched the query.
func (c *Cursor) Plan() string { return c.plan.Kind.String() }

// Query returns the canonical query text.
func (c *Cursor) Query() string { return c.plan.Query }

// Live reports whether the cursor runs on the concurrent substrate.
func (c *Cursor) Live() bool { return c.live }

// Continuous reports whether the cursor is advanced with Step (snapshot
// and basic queries) rather than executed once with Run.
func (c *Cursor) Continuous() bool {
	return c.plan.Kind != query.PlanHistoricTopK
}

// transport returns the substrate this cursor's traffic runs on (behind
// the fault injector when an environment is armed).
func (c *Cursor) transport() (engine.Transport, error) {
	if !c.live {
		return c.sys.detTransport(), nil
	}
	if c.tp == nil {
		tp, sched := c.sys.liveState()
		if tp == nil {
			return nil, fmt.Errorf("kspot: system is closed")
		}
		c.tp, c.sched = tp, sched
	}
	return c.tp, nil
}

func (c *Cursor) prepare() error {
	switch c.plan.Kind {
	case query.PlanHistoricTopK:
		if _, err := historicOperator(c.algo); err != nil {
			return err
		}
		return nil
	case query.PlanBasic:
		// Basic queries always run plain acquisition.
		if c.algo != AlgoAuto && c.algo != AlgoTAG {
			return fmt.Errorf("kspot: basic queries run on TAG, not %q", c.algo)
		}
		op, err := snapshotOperator(AlgoTAG)
		if err != nil {
			return err
		}
		c.snapOp = op
	default:
		op, err := snapshotOperator(c.algo)
		if err != nil {
			return err
		}
		c.snapOp = op
	}
	t, err := c.transport()
	if err != nil {
		return err
	}
	if err := c.snapOp.Attach(t, c.plan.Snapshot); err != nil {
		return err
	}
	if c.live {
		// Live snapshot cursors are served by the shared scheduler: one
		// epoch sweep per epoch, however many queries are posted.
		var override trace.Source
		if c.plan.Kind == query.PlanHistoricGroupTopK {
			override = c.source()
		}
		c.sq = c.sched.Add(c.snapOp, override)
	}
	return nil
}

// Step runs one epoch of a continuous query.
func (c *Cursor) Step() (StepResult, error) {
	if !c.Continuous() {
		return StepResult{}, fmt.Errorf("kspot: historic query %q executes with Run, not Step", c.plan.Query)
	}
	if c.live {
		out, err := c.sched.Step(c.sq)
		if err != nil {
			return StepResult{}, err
		}
		exact := topk.ExactSnapshot(out.Readings, c.plan.Snapshot)
		return StepResult{
			Epoch:   out.Epoch,
			Answers: out.Answers,
			Exact:   exact,
			Correct: model.EqualAnswers(out.Answers, exact),
		}, nil
	}
	tp, err := c.transport()
	if err != nil {
		return StepResult{}, err
	}
	e := c.epoch
	c.epoch++
	tp.ChargeIdleEpoch()

	src := c.source()
	readings := topk.SenseEpoch(tp, src, e)
	answers, err := c.snapOp.Epoch(e, readings)
	if err != nil {
		return StepResult{}, err
	}
	exact := topk.ExactSnapshot(readings, c.plan.Snapshot)
	return StepResult{
		Epoch:   e,
		Answers: answers,
		Exact:   exact,
		Correct: model.EqualAnswers(answers, exact),
	}, nil
}

// source returns the per-epoch reading source; GROUP BY ... WITH HISTORY
// queries filter locally first (§III-B): each node's "reading" is the
// aggregate of its buffered window ending at the current epoch.
func (c *Cursor) source() trace.Source {
	if c.plan.Kind == query.PlanHistoricGroupTopK {
		return &windowAggSource{base: c.sys.source, window: c.plan.History, agg: c.plan.Snapshot.Agg}
	}
	return c.sys.source
}

// Run executes a historic query over the last Window epochs of buffered
// history (the simulator materializes each node's window from the
// workload, standing in for the motes' MicroHash-indexed flash buffers).
func (c *Cursor) Run() ([]Answer, error) {
	if c.Continuous() {
		return nil, fmt.Errorf("kspot: continuous query %q advances with Step, not Run", c.plan.Query)
	}
	op, err := historicOperator(c.algo)
	if err != nil {
		return nil, err
	}
	t, err := c.transport()
	if err != nil {
		return nil, err
	}
	data := topk.HistoricData(trace.Series(c.sys.source, t.Topology().SensorNodes(), c.plan.Historic.Window))
	return op.Run(t, c.plan.Historic, data)
}

// windowAggSource aggregates each node's trailing window locally — the
// node-local "search and filtering in the respective history window" of
// §III-B's horizontally fragmented case.
type windowAggSource struct {
	base   trace.Source
	window int
	agg    model.AggKind
}

// Sample implements trace.Source.
func (w *windowAggSource) Sample(node model.NodeID, e model.Epoch) model.Value {
	lo := 0
	if int(e) >= w.window {
		lo = int(e) - w.window + 1
	}
	p := model.Partial{}
	first := true
	for i := lo; i <= int(e); i++ {
		v := model.NewPartial(0, model.Quantize(w.base.Sample(node, model.Epoch(i))))
		if first {
			p = v
			first = false
		} else {
			p = p.Merge(v)
		}
	}
	return model.Quantize(p.Eval(w.agg))
}
