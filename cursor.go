package kspot

import (
	"fmt"

	"kspot/internal/model"
	"kspot/internal/query"
	"kspot/internal/topk"
	"kspot/internal/trace"
)

// Cursor is a prepared query. Snapshot (continuous) queries advance one
// epoch per Step call; historic queries execute once via Run.
type Cursor struct {
	sys  *System
	plan *query.Plan
	algo Algorithm

	snapOp topk.SnapshotOperator
	epoch  model.Epoch
}

// StepResult is one epoch of a continuous query.
type StepResult struct {
	Epoch   Epoch
	Answers []Answer
	// Exact is the oracle answer for the same epoch (the simulator knows
	// ground truth; a real deployment would not).
	Exact   []Answer
	Correct bool
}

// Plan describes how the router dispatched the query.
func (c *Cursor) Plan() string { return c.plan.Kind.String() }

// Query returns the canonical query text.
func (c *Cursor) Query() string { return c.plan.Query }

// Continuous reports whether the cursor is advanced with Step (snapshot
// and basic queries) rather than executed once with Run.
func (c *Cursor) Continuous() bool {
	return c.plan.Kind != query.PlanHistoricTopK
}

func (c *Cursor) prepare() error {
	switch c.plan.Kind {
	case query.PlanHistoricTopK:
		if _, err := historicOperator(c.algo); err != nil {
			return err
		}
		return nil
	case query.PlanBasic:
		// Basic queries always run plain acquisition.
		if c.algo != AlgoAuto && c.algo != AlgoTAG {
			return fmt.Errorf("kspot: basic queries run on TAG, not %q", c.algo)
		}
		op, err := snapshotOperator(AlgoTAG)
		if err != nil {
			return err
		}
		c.snapOp = op
	default:
		op, err := snapshotOperator(c.algo)
		if err != nil {
			return err
		}
		c.snapOp = op
	}
	if err := c.snapOp.Attach(c.sys.net, c.plan.Snapshot); err != nil {
		return err
	}
	return nil
}

// Step runs one epoch of a continuous query.
func (c *Cursor) Step() (StepResult, error) {
	if !c.Continuous() {
		return StepResult{}, fmt.Errorf("kspot: historic query %q executes with Run, not Step", c.plan.Query)
	}
	e := c.epoch
	c.epoch++
	c.sys.net.ChargeIdleEpoch()

	src := c.source()
	readings := topk.SenseEpoch(c.sys.net, src, e)
	answers, err := c.snapOp.Epoch(e, readings)
	if err != nil {
		return StepResult{}, err
	}
	exact := topk.ExactSnapshot(readings, c.plan.Snapshot)
	return StepResult{
		Epoch:   e,
		Answers: answers,
		Exact:   exact,
		Correct: model.EqualAnswers(answers, exact),
	}, nil
}

// source returns the per-epoch reading source; GROUP BY ... WITH HISTORY
// queries filter locally first (§III-B): each node's "reading" is the
// aggregate of its buffered window ending at the current epoch.
func (c *Cursor) source() trace.Source {
	if c.plan.Kind == query.PlanHistoricGroupTopK {
		return &windowAggSource{base: c.sys.source, window: c.plan.History, agg: c.plan.Snapshot.Agg}
	}
	return c.sys.source
}

// Run executes a historic query over the last Window epochs of buffered
// history (the simulator materializes each node's window from the
// workload, standing in for the motes' MicroHash-indexed flash buffers).
func (c *Cursor) Run() ([]Answer, error) {
	if c.Continuous() {
		return nil, fmt.Errorf("kspot: continuous query %q advances with Step, not Run", c.plan.Query)
	}
	op, err := historicOperator(c.algo)
	if err != nil {
		return nil, err
	}
	data := topk.HistoricData(trace.Series(c.sys.source, c.sys.net.Placement.SensorNodes(), c.plan.Historic.Window))
	return op.Run(c.sys.net, c.plan.Historic, data)
}

// windowAggSource aggregates each node's trailing window locally — the
// node-local "search and filtering in the respective history window" of
// §III-B's horizontally fragmented case.
type windowAggSource struct {
	base   trace.Source
	window int
	agg    model.AggKind
}

// Sample implements trace.Source.
func (w *windowAggSource) Sample(node model.NodeID, e model.Epoch) model.Value {
	lo := 0
	if int(e) >= w.window {
		lo = int(e) - w.window + 1
	}
	p := model.Partial{}
	first := true
	for i := lo; i <= int(e); i++ {
		v := model.NewPartial(0, model.Quantize(w.base.Sample(node, model.Epoch(i))))
		if first {
			p = v
			first = false
		} else {
			p = p.Merge(v)
		}
	}
	return model.Quantize(p.Eval(w.agg))
}
