package kspot

import (
	"fmt"
	"reflect"
	"testing"

	"kspot/internal/model"
)

// TestParallelSweepEquivalence is the acceptance pin of the parallel
// execution layer: opening the same scenario with WithParallel(N) must
// produce answers, traffic, frames, drops and energy identical to the
// sequential path — on the deterministic substrate, where the
// level-synchronous sweep actually runs, and on the concurrent live
// substrate, which ignores the knob. Faults and churn are armed in one
// variant so loss draws, revival timing and fault hashing are exercised
// under the parallel commit order, and disarmed in the other so the clean
// hot path is pinned too.
func TestParallelSweepEquivalence(t *testing.T) {
	sizes := []int{1000}
	if !testing.Short() {
		sizes = append(sizes, 4000)
	}
	const sql = "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid"
	for _, size := range sizes {
		size := size
		for _, armed := range []bool{false, true} {
			armed := armed
			name := fmt.Sprintf("scale-%d/faults=%v", size, armed)
			t.Run(name, func(t *testing.T) {
				epochs := 6
				if size > 1000 {
					epochs = 4
				}
				run := func(workers int, live bool) ([]StepResult, RunStats) {
					scen, err := ScaleScenario(size)
					if err != nil {
						t.Fatal(err)
					}
					if armed {
						// Kill one mid-field node for good, bounce another:
						// the revival lands mid-run so the parallel sweep
						// replays the wake-on-first-transmission path.
						a, b := scen.Nodes[len(scen.Nodes)/3].ID, scen.Nodes[2*len(scen.Nodes)/3].ID
						scen.Faults = &FaultConfig{
							Seed: 11,
							Loss: 0.05,
							Churn: []ChurnEvent{
								{Node: NodeID(a), Epoch: 1, Down: true},
								{Node: NodeID(b), Epoch: 1, Down: true},
								{Node: NodeID(b), Epoch: 3, Down: false},
							},
						}
					}
					sys, err := Open(scen, WithParallel(workers))
					if err != nil {
						t.Fatal(err)
					}
					defer sys.Close()
					var opts []PostOption
					if live {
						opts = append(opts, WithLive())
					}
					cur, err := sys.PostWith(sql, AlgoMINT, opts...)
					if err != nil {
						t.Fatal(err)
					}
					out := make([]StepResult, 0, epochs)
					for i := 0; i < epochs; i++ {
						res, err := cur.Step()
						if err != nil {
							t.Fatal(err)
						}
						out = append(out, res)
					}
					return out, sys.CaptureStats("run", epochs)
				}

				seq, seqStats := run(1, false)
				par, parStats := run(8, false)
				for e := range seq {
					if !model.EqualAnswers(seq[e].Answers, par[e].Answers) {
						t.Fatalf("epoch %d: sequential %v, parallel %v", e, seq[e].Answers, par[e].Answers)
					}
					if seq[e].Correct != par[e].Correct {
						t.Fatalf("epoch %d: oracle verdict diverged (seq %v, par %v)", e, seq[e].Correct, par[e].Correct)
					}
				}
				// The parallel sweep promises bit-identical accounting, not
				// just identical answers: every counter and the energy ledger
				// (an exact float sum in node order) must match.
				if !reflect.DeepEqual(seqStats, parStats) {
					t.Fatalf("accounting diverged:\nsequential %+v\nparallel   %+v", seqStats, parStats)
				}

				liv, livStats := run(8, true)
				for e := range seq {
					if !model.EqualAnswers(seq[e].Answers, liv[e].Answers) {
						t.Fatalf("epoch %d: det %v, live %v", e, seq[e].Answers, liv[e].Answers)
					}
				}
				if seqStats.Messages != livStats.Messages || seqStats.TxBytes != livStats.TxBytes {
					t.Errorf("live traffic diverged: det %d msgs/%d bytes, live %d msgs/%d bytes",
						seqStats.Messages, seqStats.TxBytes, livStats.Messages, livStats.TxBytes)
				}
			})
		}
	}
}
