// Package kspot is a Go reproduction of "KSpot: Effectively Monitoring the
// K Most Important Events in a Wireless Sensor Network" (Andreou,
// Zeinalipour-Yazti, Vassiliadou, Chrysanthis, Samaras — ICDE 2009).
//
// KSpot answers Top-K queries over a wireless sensor network in-network:
// instead of shipping every tuple to the base station, nodes prune answers
// that provably cannot rank among the K best. Snapshot queries
// (SELECT TOP K ... GROUP BY ...) run on the MINT materialized-view
// algorithm; historic queries (... WITH HISTORY w) on the TJA threshold
// join; plain queries on TAG-style acquisition. The hardware substrate —
// MICA2 motes, the TinyOS link layer, the MTS310 sensing board — is
// simulated (see DESIGN.md for the substitution table).
//
// Quick start:
//
//	sys, err := kspot.Open(kspot.DemoScenario())
//	cur, err := sys.Post("SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid")
//	for i := 0; i < 10; i++ {
//	    res, err := cur.Step()        // one epoch
//	    fmt.Println(res.Answers)      // the K highest-ranked clusters
//	}
//	fmt.Println(sys.SystemPanel())    // savings, energy, traffic
//
// A scenario carrying a "shards" block opens as a federated deployment:
// the sensor field is partitioned into shard networks (one base station
// and routing tree each) and shard-local top-k rankings merge at a
// coordinator tier with answers provably identical to one flat network —
// snapshot queries via the two-phase snapshot merge, historic WITH
// HISTORY queries via a per-execution threshold round over the shards'
// partial sums (see internal/topk/fed and DESIGN.md's federation
// section).
package kspot

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"kspot/internal/config"
	"kspot/internal/engine"
	"kspot/internal/faults"
	"kspot/internal/gui"
	"kspot/internal/model"
	"kspot/internal/query"
	"kspot/internal/sim"
	"kspot/internal/stats"
	"kspot/internal/storage"
	"kspot/internal/topk"
	"kspot/internal/topk/fed"
	"kspot/internal/topk/registry"
	"kspot/internal/trace"
	"kspot/internal/wire"
)

// Re-exported identifiers, so that library users need only this package.
type (
	// Scenario describes a deployment (see internal/config for the JSON
	// schema the Configuration Panel writes).
	Scenario = config.Scenario
	// Cluster names a physical region within a scenario.
	Cluster = config.Cluster
	// Shard assigns clusters to one federated shard network (the
	// scenario's "shards" block); see internal/config and internal/topk/fed.
	Shard = config.Shard
	// FederationTraffic is the coordinator tier's traffic snapshot.
	FederationTraffic = fed.Snapshot
	// Answer is one ranked result row.
	Answer = model.Answer
	// GroupID identifies a cluster / room / time instant.
	GroupID = model.GroupID
	// NodeID identifies a sensor node.
	NodeID = model.NodeID
	// Epoch numbers acquisition rounds.
	Epoch = model.Epoch

	// FaultConfig declares an unreliable-world environment: seeded
	// deterministic link loss, frame duplication/delay and node churn
	// (see internal/faults for the determinism contract).
	FaultConfig = faults.Config
	// AdmissionConfig bounds how many concurrent queries the System
	// accepts, globally and per tenant (see WithAdmission).
	AdmissionConfig = engine.AdmissionConfig
	// AdmissionError is the typed rejection a Post receives when an
	// admission limit is hit; test with errors.As.
	AdmissionError = engine.AdmissionError
	// ChurnEvent schedules one node's death or revival.
	ChurnEvent = faults.ChurnEvent
	// DistanceLossSpec weights link loss by hop length.
	DistanceLossSpec = faults.DistanceSpec
	// BurstLossSpec is a per-link Gilbert-Elliott loss channel.
	BurstLossSpec = faults.BurstSpec
)

// Algorithm selects the snapshot operator for a query. The default,
// AlgoAuto, follows the paper's router (MINT for TOP-K, TAG otherwise);
// the rest exist for the System Panel's comparisons.
type Algorithm string

const (
	AlgoAuto    Algorithm = ""
	AlgoMINT    Algorithm = "mint"
	AlgoTAG     Algorithm = "tag"
	AlgoNaive   Algorithm = "naive"
	AlgoCentral Algorithm = "central"
	// AlgoFILA is the filter-based monitor (Wu et al., ICDE'06) the paper
	// cites; it applies to per-node top-k snapshot queries and trades
	// stale member scores for near-zero steady-state traffic.
	AlgoFILA Algorithm = "fila"
	// AlgoTJA and AlgoTPUT apply to historic queries.
	AlgoTJA  Algorithm = "tja"
	AlgoTPUT Algorithm = "tput"
)

// System is an opened deployment: the network state, its workload and the
// query engine, i.e. the KSpot server attached to a sensor field. A
// deployment is a *set* of shard networks — one for a flat scenario, N
// for a scenario carrying a shards block — merged at a coordinator tier
// (internal/topk/fed) whose answers are provably identical to running one
// flat network. Queries run on one of two substrates of the same engine
// layer (see DESIGN.md): the deterministic simulator (default) or the
// concurrent live deployment (PostWith ... WithLive()), which runs one
// goroutine per sensor node and serves every live cursor from a shared
// per-shard epoch sweep.
type System struct {
	scenario   *config.Scenario
	shardScens []*config.Scenario // per-shard sub-deployments; [0] == scenario when flat
	nets       []*sim.Network     // one simulated network per shard
	source     trace.Source       // built from the flat scenario, shared by every shard
	schema     query.Schema
	fedStats   *fed.Stats

	mu         sync.Mutex
	lives      []*engine.Live
	liveTPs    []engine.Transport // lives behind their fault injectors when armed
	sched      *engine.Scheduler
	liveCancel context.CancelFunc
	// liveRuns counts one-shot historic executions in flight on the live
	// substrate. They run outside the scheduler's epoch lock-step, so
	// Close must wait them out separately before stopping the node
	// goroutines — otherwise a federated historic Run could find one
	// shard's Live torn down mid-protocol.
	liveRuns sync.WaitGroup

	// faultCfg, when non-nil, is the armed fault environment (faultCfgs
	// its per-shard specializations); dets are the deterministic shard
	// substrates behind their churn injectors (s.nets when no faults are
	// armed). posted records that at least one cursor has attached,
	// posting counts attachments in flight — arming while either holds
	// would leave those cursors' operators below the injector, churning
	// nothing.
	faultCfg  *faults.Config
	faultCfgs []faults.Config
	dets      []engine.Transport
	posted    bool
	posting   int

	// stores, when WithDataDir armed them, are the per-shard durable
	// tiers: every committed sense epoch folds into shard i's store (and
	// its segment files) through an engine.Recorded tap on the substrate.
	stores []*storage.Store

	// Remote deployments (OpenFederated): the shard networks live in other
	// processes behind these wire clients; rcoord drives them through
	// lock-step epochs. nets/source stay empty — there is no local
	// substrate to run on. qidSeq allocates query/execution ids unique
	// within this coordinator's wire sessions.
	remotes []*wire.Client
	rcoord  *engine.RemoteCoordinator
	qidSeq  atomic.Uint32
	wireCfg openConfig // the Open options, reused when Reshard dials new shards

	// Multi-tenant serving state. admission, when non-nil, gates every
	// Post (WithAdmission). groupMu serializes shared-acquisition group
	// bookkeeping across posts and cursor closes: groupCaps records each
	// group's current acquired ranking depth (keyed by substrate-prefixed
	// acquisition key, so det and live groups never collide), remoteKeys
	// the wire query id each remote group's shards are acquired under.
	// detSched is the deterministic substrate's shared scheduler, created
	// at the first deterministic snapshot post — every det cursor advances
	// on its lock-step clock, exactly like live cursors on sched.
	admission  *engine.Admission
	groupMu    sync.Mutex
	groupCaps  map[string]int
	remoteKeys map[string]*remoteKeyState
	detSched   *engine.Scheduler
}

// remoteKeyState tracks one remote shared-acquisition group's wire
// attachment: the query id acquired each epoch, the ranking depth it was
// planned at, and the algorithm/SQL it was attached with — what a live
// re-sharding migration replays onto the target shards (each shard
// re-derives the operator from the SQL, exactly like the original
// attach).
type remoteKeyState struct {
	rqid uint32
	cap  int
	algo string
	sql  string
}

// OpenOption tunes how a scenario is opened.
type OpenOption func(*openConfig)

type openConfig struct {
	parallel  int
	admission *engine.AdmissionConfig
	dataDir   string

	// Remote-deployment knobs (OpenFederated; see federated.go).
	wireCall    time.Duration
	wireRetries int
	wireBackoff time.Duration
	wireFaults  *wire.Faults
	wireLegacy  bool
}

// WithAdmission arms admission control: every Post first reserves a slot
// against the limits, and a rejection returns *AdmissionError without
// touching the deployment (already-running cursors are undisturbed; the
// slot frees when the cursor is Closed). Zero-valued limits are unlimited.
func WithAdmission(cfg AdmissionConfig) OpenOption {
	return func(c *openConfig) { c.admission = &cfg }
}

// WithDataDir arms the durable historic tier on a local System: each
// shard's committed sense epochs mirror into append-only segment files
// under <dir>/<shard-name>/, recoverable by a later Open on the same
// directory. Empty (the default) keeps the memory backend — behavior and
// answers are byte-identical either way; the data dir only adds
// durability and the /stats storage block. On a remote deployment the
// shard processes own their durability (kspotd -serve-shard -data-dir);
// this option applies to Open only.
func WithDataDir(dir string) OpenOption {
	return func(c *openConfig) { c.dataDir = dir }
}

// WithParallel bounds the worker count of every shard's level-synchronous
// epoch sweep on the deterministic substrate. 0 and 1 select the exact
// legacy sequential walk; N > 1 computes each routing-tree level with up
// to N workers, with answers, messages, frames, bytes and the energy
// ledger byte-identical for every value (the live substrate is inherently
// concurrent and is unaffected). Defaults to sequential; cmd/kspot-sim
// and cmd/kspotd default their -parallel flag to the machine's CPU count.
func WithParallel(workers int) OpenOption {
	return func(c *openConfig) { c.parallel = workers }
}

// Open builds a System from a scenario. A scenario carrying a shards
// block opens as a federated deployment (one network per shard); one
// carrying a faults block opens with that environment armed on every
// shard (per-shard seeds, see config.Scenario.ShardFaults).
func Open(s *Scenario, opts ...OpenOption) (*System, error) {
	var cfg openConfig
	for _, o := range opts {
		o(&cfg)
	}
	shardScens, err := s.ShardScenarios()
	if err != nil {
		return nil, err
	}
	src, err := s.Source()
	if err != nil {
		return nil, err
	}
	sys := &System{
		scenario:   s,
		shardScens: shardScens,
		source:     src,
		schema:     query.DefaultSchema(),
		fedStats:   &fed.Stats{},
		groupCaps:  make(map[string]int),
		remoteKeys: make(map[string]*remoteKeyState),
	}
	if cfg.admission != nil {
		sys.admission = engine.NewAdmission(*cfg.admission)
	}
	for i, sub := range shardScens {
		net, err := sub.Network()
		if err != nil {
			return nil, err
		}
		net.SetParallel(cfg.parallel)
		sys.nets = append(sys.nets, net)
		if cfg.dataDir != "" {
			store, err := storage.OpenStore(filepath.Join(cfg.dataDir, s.ShardName(i)), storage.DefaultStoreWindow)
			if err != nil {
				return nil, err
			}
			sys.stores = append(sys.stores, store)
		}
		sys.dets = append(sys.dets, sys.detBase(i))
	}
	if s.Faults.Enabled() {
		if err := sys.armFaults(s.Faults); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

// OpenFile loads a scenario JSON file and opens it.
func OpenFile(path string, opts ...OpenOption) (*System, error) {
	s, err := config.Load(path)
	if err != nil {
		return nil, err
	}
	return Open(s, opts...)
}

// DemoScenario returns the paper's Figure-3 conference deployment: 14
// sensors in 6 clusters (Auditorium, Conference Rooms, Coffee Stations,
// Lobby).
func DemoScenario() *Scenario { return config.Figure3Scenario() }

// Figure1Scenario returns the paper's 9-sensor, 4-room worked example with
// its exact sound levels.
func Figure1Scenario() *Scenario { return config.Figure1Scenario() }

// ScaleScenario deterministically generates the scale-<n> benchmark
// deployment (n sensors, rooms of 20); scenarios/scale-*.json are its
// committed outputs. n must be a positive multiple of 20.
func ScaleScenario(n int) (*Scenario, error) { return config.ScaleScenario(n) }

// ScaleScenarioShards generates the scale-<n> deployment pre-split into
// the given number of federated shards, verifying every shard deploys.
// Sharded scale scenarios are generated, never committed (`kspot-sim
// -gen-scale <n> -shards <k>` emits one when a file is needed).
func ScaleScenarioShards(n, shards int) (*Scenario, error) {
	return config.ScaleScenarioShards(n, shards)
}

// Scenario returns the opened scenario.
func (s *System) Scenario() *Scenario { return s.scenario }

// Network exposes the underlying simulation (topology, counters, ledger)
// for advanced callers; on a federated deployment it returns the first
// shard's network — use Networks for all of them. Nil on a remote
// deployment, whose networks live in the shard processes (use ShardStats
// for their counters).
func (s *System) Network() *sim.Network {
	if len(s.nets) == 0 {
		return nil
	}
	return s.nets[0]
}

// Networks returns every shard's simulated network, in shard order (a
// single entry for a flat deployment).
func (s *System) Networks() []*sim.Network { return append([]*sim.Network(nil), s.nets...) }

// Shards reports the number of shard deployments (1 for a flat scenario).
func (s *System) Shards() int {
	if s.Remote() {
		return len(s.remotes)
	}
	return len(s.nets)
}

// FederationStats reports the coordinator tier's accumulated traffic —
// phase-1 reports, phase-2 targeted fetches and backhaul bytes. All zero
// on a flat deployment.
func (s *System) FederationStats() FederationTraffic { return s.fedStats.Snapshot() }

// ResetAccounting clears traffic and energy counters on every shard,
// e.g. between a warm-up and a measured window.
func (s *System) ResetAccounting() {
	for _, net := range s.nets {
		net.Reset()
	}
}

// PostOption tunes how a query is posted.
type PostOption func(*postConfig)

type postConfig struct {
	live   bool
	window int
	faults *FaultConfig
	tenant string
}

// WithTenant attributes the posted query to a tenant for admission
// accounting (see WithAdmission). Unattributed posts share the empty
// tenant.
func WithTenant(name string) PostOption {
	return func(c *postConfig) { c.tenant = name }
}

// WithFaults arms the deployment's fault environment — deterministic
// seeded link loss, frame duplication/delay and node churn — before the
// query attaches. Faults are physical and therefore deployment-wide: they
// degrade every query on this System, on both substrates. Arm them in the
// scenario file or at the first posted query; posting WithFaults after a
// different fault environment is armed, or after the live deployment has
// started, is an error.
func WithFaults(cfg FaultConfig) PostOption {
	return func(c *postConfig) { c.faults = &cfg }
}

// WithLive deploys the query on the concurrent substrate: one goroutine
// per sensor node, views passed over channels, the identical operator
// logic (the engine's equivalence tests pin answers and message counts to
// the deterministic substrate). All live cursors of a System share one
// deployment and advance in epoch lock-step — the epoch is sensed once no
// matter how many queries are posted — and Step is safe to call from
// concurrent goroutines. Call Close when done to stop the node goroutines.
func WithLive() PostOption { return func(c *postConfig) { c.live = true } }

// WithLiveWindow sets the live deployment's per-node history buffer
// capacity (default 64). Only the first live post sizes the deployment.
func WithLiveWindow(n int) PostOption { return func(c *postConfig) { c.window = n } }

// Post parses, plans and prepares a query. Snapshot (continuous) queries
// return a cursor advanced with Step; historic queries are executed by Run.
func (s *System) Post(sql string, opts ...PostOption) (*Cursor, error) {
	return s.PostWith(sql, AlgoAuto, opts...)
}

// PostWith posts a query pinned to a specific algorithm (the System Panel
// uses this to compare MINT against the baselines on identical workloads).
func (s *System) PostWith(sql string, algo Algorithm, opts ...PostOption) (*Cursor, error) {
	cfg := postConfig{window: 64}
	for _, o := range opts {
		o(&cfg)
	}
	plan, err := query.PlanText(sql, s.schema)
	if err != nil {
		return nil, err
	}
	if s.Remote() {
		if cfg.live {
			return nil, fmt.Errorf("kspot: a remote deployment has no local live substrate — each shard process picks its own (kspotd -serve-shard -live)")
		}
		if cfg.faults != nil {
			return nil, fmt.Errorf("kspot: fault environments on a remote deployment are armed in the shard processes' scenarios, not at the coordinator")
		}
	}
	// Admission runs after parsing (a malformed query is a syntax error,
	// never a consumed slot) and before any deployment work: a rejected
	// post touches nothing, so running cursors keep stepping undisturbed.
	if s.admission != nil {
		if err := s.admission.Admit(cfg.tenant); err != nil {
			return nil, err
		}
	}
	// Arm (when requested) and register this post in one critical section:
	// arming is refused while any other post is attaching or attached, so
	// no cursor can slip below the churn injector concurrently.
	s.mu.Lock()
	armed := false
	if cfg.faults != nil {
		if err := s.armFaultsLocked(cfg.faults); err != nil {
			s.mu.Unlock()
			return nil, err
		}
		armed = true
	}
	s.posting++
	s.mu.Unlock()

	cur := &Cursor{sys: s, plan: plan, algo: algo, live: cfg.live, tenant: cfg.tenant, admitted: s.admission != nil}
	if cfg.live {
		s.ensureLive(cfg.window)
	}
	err = cur.prepare()

	s.mu.Lock()
	s.posting--
	if err != nil {
		if armed && !s.posted && s.posting == 0 {
			// Nothing attached (or is attaching) under this environment:
			// disarm so a corrected retry can arm again instead of being
			// stuck with "already armed" from a post that never existed.
			// If another post did attach meanwhile, it attached to the
			// injector — the environment is in use and must stay armed.
			s.disarmFaultsLocked()
		}
		s.mu.Unlock()
		if cur.admitted {
			// The slot reserved above frees: a post that never produced a
			// cursor must not count against the tenant forever.
			s.admission.Release(cfg.tenant)
		}
		return nil, err
	}
	s.posted = true
	s.mu.Unlock()
	return cur, nil
}

// AdmissionLoad reports the admission controller's live-query count and
// per-tenant breakdown (zero and empty without WithAdmission).
func (s *System) AdmissionLoad() (total int, perTenant map[string]int) {
	if s.admission == nil {
		return 0, map[string]int{}
	}
	return s.admission.Load()
}

// detScheduler lazily creates the deterministic substrate's shared
// scheduler over the shard transports (behind their fault injectors when
// armed — arming is refused once any query posted, so the transports are
// settled by the time the first cursor lands here).
func (s *System) detScheduler() *engine.Scheduler {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.detSched == nil {
		deps := make([]*engine.Deployment, len(s.dets))
		for i, tp := range s.dets {
			deps[i] = engine.NewDeployment(s.scenario.ShardName(i), tp, s.source)
		}
		s.detSched = engine.NewScheduler(deps...)
	}
	return s.detSched
}

// armFaults installs the fault environment on the deterministic substrate
// and remembers the config so ensureLive degrades the concurrent one
// identically. First arm wins; re-arming is an error, and so is arming
// after (or while) any cursor attached — its operator would sit below the
// churn injector and degrade inconsistently. The environment is shared
// physical state, not a per-query knob.
func (s *System) armFaults(cfg *faults.Config) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.armFaultsLocked(cfg)
}

func (s *System) armFaultsLocked(cfg *faults.Config) error {
	if s.faultCfg != nil {
		return fmt.Errorf("kspot: fault environment already armed")
	}
	if s.posted || s.posting > 0 {
		return fmt.Errorf("kspot: faults must be armed before the first posted query")
	}
	if s.lives != nil {
		return fmt.Errorf("kspot: faults must be armed before the live deployment starts")
	}
	// Specialize the environment per shard (derived seeds, churn filtered
	// to the shard's own nodes) and wrap every deterministic substrate; a
	// flat deployment's single "shard" keeps the config verbatim.
	cfgs := make([]faults.Config, len(s.nets))
	dets := make([]engine.Transport, len(s.nets))
	for i := range s.nets {
		cfgs[i] = s.scenario.ShardFaults(*cfg, i)
		inj, err := faults.Wrap(s.detBase(i), cfgs[i])
		if err != nil {
			for j := 0; j < i; j++ {
				s.nets[j].SetFault(nil)
			}
			return err
		}
		dets[i] = inj
	}
	s.faultCfg, s.faultCfgs, s.dets = cfg, cfgs, dets
	return nil
}

// disarmFaultsLocked undoes an arm that no cursor ever attached under:
// the links' fault models are removed and the deterministic transports
// drop back to the bare networks.
func (s *System) disarmFaultsLocked() {
	for i, net := range s.nets {
		net.SetFault(nil)
		s.dets[i] = s.detBase(i)
	}
	s.faultCfg, s.faultCfgs = nil, nil
}

// detBase returns shard i's bare deterministic substrate: the simulated
// network, tapped by the shard's durable tier when WithDataDir armed one.
func (s *System) detBase(i int) engine.Transport {
	if i < len(s.stores) && s.stores[i] != nil {
		return engine.Recorded{Transport: s.nets[i], Rec: s.stores[i]}
	}
	return s.nets[i]
}

// detTransports returns the deterministic shard substrates, behind their
// fault injectors when armed.
func (s *System) detTransports() []engine.Transport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]engine.Transport(nil), s.dets...)
}

// ensureLive lazily starts the shared concurrent deployment — one Live
// substrate per shard — and its multi-query scheduler. An armed fault
// environment wraps each live transport with its shard's churn injector
// (frame faults already live in the shared links), so both substrates
// degrade identically.
func (s *System) ensureLive(window int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lives != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	lives := make([]*engine.Live, len(s.nets))
	tps := make([]engine.Transport, len(s.nets))
	deps := make([]*engine.Deployment, len(s.nets))
	for i, net := range s.nets {
		live := engine.NewLive(net, engine.LiveOptions{Window: window})
		live.Start(ctx)
		lives[i] = live
		var tp engine.Transport = live
		if s.faultCfg != nil {
			inj, err := faults.Wrap(live, s.faultCfgs[i])
			if err != nil {
				// Unreachable: the config validated when the deterministic
				// substrate armed, and Live hosts every fault kind. A
				// silent fall-through would leave the live substrate in a
				// perfect world while det runs degraded — fail loudly.
				panic("kspot: wrapping live substrate with armed faults: " + err.Error())
			}
			tp = inj
		}
		if i < len(s.stores) && s.stores[i] != nil {
			// The durable tier records live epochs too: the tap sits above
			// the injector so exactly the committed (post-fault) readings
			// persist, mirroring the deterministic path.
			tp = engine.Recorded{Transport: tp, Rec: s.stores[i]}
		}
		tps[i] = tp
		deps[i] = engine.NewDeployment(s.scenario.ShardName(i), tp, s.source)
	}
	s.lives, s.liveTPs, s.liveCancel = lives, tps, cancel
	s.sched = engine.NewScheduler(deps...)
}

// liveState snapshots the live deployment's shard transports (behind the
// fault injectors when armed — operators must attach to them, or churn
// would never observe their epochs) and scheduler under the System lock
// (both can be torn down by Close concurrently with cursor use).
func (s *System) liveState() ([]engine.Transport, *engine.Scheduler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.liveTPs, s.sched
}

// beginLiveRun snapshots the live deployment for a one-shot historic
// execution AND registers the run so a concurrent Close waits it out
// before stopping the node goroutines. The check and the registration
// share one critical section — snapshotting first and registering later
// would leave a window where Close tears the substrate down under a run
// that already holds its transports. release must be called when the run
// completes.
func (s *System) beginLiveRun() (tps []engine.Transport, sched *engine.Scheduler, release func(), err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.liveTPs == nil {
		return nil, nil, nil, fmt.Errorf("kspot: system is closed")
	}
	s.liveRuns.Add(1)
	return s.liveTPs, s.sched, func() { s.liveRuns.Done() }, nil
}

// Close stops the live deployment's node goroutines, if any were started,
// and drops every remote shard connection on a remote deployment (frames
// in flight are interrupted; their cursors' Steps return an error).
// In-flight Steps complete first on the live substrate; later Steps on
// live cursors return an error. Safe to call multiple times and
// concurrently with in-flight Steps; deterministic-only Systems need no
// Close.
func (s *System) Close() {
	if s.Remote() {
		for _, cl := range s.remoteClients() {
			cl.Close()
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lives != nil {
		s.sched.Close()   // waits out any in-flight scheduled epoch
		s.liveRuns.Wait() // and any in-flight one-shot historic run
		for _, live := range s.lives {
			live.Stop()
		}
		s.liveCancel()
		s.lives, s.liveTPs, s.sched, s.liveCancel = nil, nil, nil, nil
	}
	for _, store := range s.stores {
		store.Close()
	}
	s.stores = nil
}

// StorageStats snapshots every shard's durable-tier storage block
// (segments, bytes on disk, last checkpointed epoch), in shard order. On
// a remote deployment the blocks come over the wire from each shard
// process; on a local System without WithDataDir every shard reports the
// zero block (no durable tier is armed).
func (s *System) StorageStats() ([]storage.StoreStats, error) {
	if s.Remote() {
		s.groupMu.Lock()
		remotes := append([]*wire.Client(nil), s.remotes...)
		s.groupMu.Unlock()
		out := make([]storage.StoreStats, 0, len(remotes))
		for _, cl := range remotes {
			st, err := cl.StorageStats()
			if err != nil {
				return nil, err
			}
			out = append(out, st)
		}
		return out, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]storage.StoreStats, len(s.nets))
	for i := range s.nets {
		if i < len(s.stores) && s.stores[i] != nil {
			out[i] = s.stores[i].Stats()
		}
	}
	return out, nil
}

// LiveWindows exposes the live deployment's buffered per-node history
// across every shard (empty when no live query has been posted).
func (s *System) LiveWindows() map[NodeID][]model.Value {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lives == nil {
		return nil
	}
	out := make(map[NodeID][]model.Value)
	for _, live := range s.lives {
		for id, series := range live.Windows() {
			out[id] = series
		}
	}
	return out
}

// SystemPanel renders the current traffic/energy statistics, optionally
// against a baseline captured earlier with CaptureStats. A federated
// deployment's panel leads with the per-shard traffic table and the
// coordinator tier's backhaul, then the aggregate panel — every radio
// message is accounted to the shard that transmitted it.
func (s *System) SystemPanel(baseline *RunStats) string {
	var base *stats.RunStats
	if baseline != nil {
		b := stats.RunStats(*baseline)
		base = &b
	}
	if !s.Remote() && len(s.nets) == 1 {
		return gui.SystemPanel(stats.Collect("current", s.nets[0], 0), base) + s.storageLines()
	}
	rows, err := s.shardStatRows()
	if err != nil {
		return fmt.Sprintf("system panel unavailable: %v\n", err)
	}
	total := stats.Merge("total", rows...)
	rows = append(rows, total)
	f := s.fedStats.Snapshot()
	panel := stats.Table("per-shard traffic", rows) +
		fmt.Sprintf("coordinator tier: %d phase-1 reports, %d targeted fetches (%d answers), %d backhaul bytes\n",
			f.Phase1Msgs, f.Phase2Reqs, f.Fetched, f.TxBytes)
	for _, m := range s.WireMetrics() {
		panel += fmt.Sprintf("  wire %s: %d calls (%d rounds, %d retried), p50 %dµs p99 %dµs, %dB out / %dB in\n",
			m.Shard, m.Calls, m.Rounds, m.Retries, m.P50Micros, m.P99Micros, m.BytesOut, m.BytesIn)
	}
	panel += s.storageLines()
	return panel + gui.SystemPanel(total, base)
}

// storageLines renders the panel's durable-tier block: one line per shard
// that has checkpointed anything (empty when no durable tier is armed).
func (s *System) storageLines() string {
	blocks, err := s.StorageStats()
	if err != nil {
		return fmt.Sprintf("  storage unavailable: %v\n", err)
	}
	var out string
	for i, b := range blocks {
		if b.Nodes == 0 && !b.HasEpoch {
			continue
		}
		line := fmt.Sprintf("  storage %s: %d nodes, %d segments, %dB on disk", s.scenario.ShardName(i), b.Nodes, b.Segments, b.Bytes)
		if b.HasEpoch {
			line += fmt.Sprintf(", last checkpoint epoch %d", b.LastEpoch)
		}
		out += line + "\n"
	}
	return out
}

// RenderSystemPanel renders a previously captured run against an optional
// baseline (both from CaptureStats).
func RenderSystemPanel(run RunStats, baseline *RunStats) string {
	var base *stats.RunStats
	if baseline != nil {
		b := stats.RunStats(*baseline)
		base = &b
	}
	return gui.SystemPanel(stats.RunStats(run), base)
}

// RunStats is a captured statistics snapshot (see CaptureStats).
type RunStats stats.RunStats

// CaptureStats snapshots the deployment's counters under a label, summed
// across every shard network — fetched over the wire on a remote
// deployment (an unreachable shard leaves its counters out of the sum).
func (s *System) CaptureStats(label string, epochs int) RunStats {
	if !s.Remote() && len(s.nets) == 1 {
		return RunStats(stats.Collect(label, s.nets[0], epochs))
	}
	rows, err := s.shardStatRows()
	if err != nil {
		return RunStats{Algorithm: label, Epochs: epochs}
	}
	merged := stats.Merge(label, rows...)
	merged.Epochs = epochs
	return RunStats(merged)
}

// DisplayPanel renders the deployment map with KSpot bullets beside the
// ranked clusters.
func (s *System) DisplayPanel(answers []Answer, w, h int) string {
	return gui.DisplayPanel(s.scenario.Placement(), answers, w, h)
}

// RankingStrip renders a one-line live ranking.
func (s *System) RankingStrip(answers []Answer) string {
	return gui.RankingStrip(s.scenario.Placement(), answers)
}

// snapshotOperator instantiates the snapshot operator for an algorithm.
// The name-to-operator mapping lives in internal/topk/registry so remote
// shard servers resolve a coordinator's algorithm name to the identical
// operator.
func snapshotOperator(algo Algorithm) (topk.SnapshotOperator, error) {
	op, err := registry.Snapshot(string(algo))
	if err != nil {
		return nil, fmt.Errorf("kspot: %q is not a snapshot algorithm", algo)
	}
	return op, nil
}

// historicOperator instantiates the historic operator for an algorithm.
func historicOperator(algo Algorithm) (topk.HistoricOperator, error) {
	op, err := registry.Historic(string(algo))
	if err != nil {
		return nil, fmt.Errorf("kspot: %q is not a historic algorithm", algo)
	}
	return op, nil
}
