// Benchmarks: one testing.B entry per experiment of the reproduction
// (E1–E14, see DESIGN.md's experiment index), sharing the exact harness
// cmd/kspot-bench runs at full scale, plus micro-benchmarks of the hot
// paths (codec, view merge, query planning, one MINT epoch).
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks run at reduced scale per iteration and report
// domain metrics (tx_bytes, messages) alongside ns/op; regenerating the
// full tables is `go run ./cmd/kspot-bench`.
package kspot

import (
	"fmt"
	"io"
	"testing"

	"kspot/internal/bench"
	"kspot/internal/model"
	"kspot/internal/query"
	"kspot/internal/sim"
	"kspot/internal/topk"
	"kspot/internal/topk/mint"
	"kspot/internal/topk/tag"
	"kspot/internal/topo"
	"kspot/internal/trace"
)

// benchExperiment wraps one harness experiment as a benchmark.
func benchExperiment(b *testing.B, id string) {
	e, ok := bench.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	bench.SetScale(0.1)
	defer bench.SetScale(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1Figure1(b *testing.B)         { benchExperiment(b, "e1") }
func BenchmarkE2Figure3(b *testing.B)         { benchExperiment(b, "e2") }
func BenchmarkE3SnapshotSavings(b *testing.B) { benchExperiment(b, "e3") }
func BenchmarkE4Energy(b *testing.B)          { benchExperiment(b, "e4") }
func BenchmarkE5Scaling(b *testing.B)         { benchExperiment(b, "e5") }
func BenchmarkE6KSweep(b *testing.B)          { benchExperiment(b, "e6") }
func BenchmarkE7Historic(b *testing.B)        { benchExperiment(b, "e7") }
func BenchmarkE8TJAPhases(b *testing.B)       { benchExperiment(b, "e8") }
func BenchmarkE9Recall(b *testing.B)          { benchExperiment(b, "e9") }
func BenchmarkE10QueryPlan(b *testing.B)      { benchExperiment(b, "e10") }
func BenchmarkE11GammaAblation(b *testing.B)  { benchExperiment(b, "e11") }
func BenchmarkE12Payload(b *testing.B)        { benchExperiment(b, "e12") }
func BenchmarkE13Loss(b *testing.B)           { benchExperiment(b, "e13") }
func BenchmarkE14FILA(b *testing.B)           { benchExperiment(b, "e14") }

// BenchmarkMintEpoch measures one steady-state MINT epoch on the standard
// 64-node / 16-cluster network, reporting the domain metrics the System
// Panel displays.
func BenchmarkMintEpoch(b *testing.B) {
	benchOperatorEpoch(b, mint.New())
}

// BenchmarkTagEpoch is the TAG baseline for BenchmarkMintEpoch.
func BenchmarkTagEpoch(b *testing.B) {
	benchOperatorEpoch(b, tag.New())
}

func benchOperatorEpoch(b *testing.B, op topk.SnapshotOperator) {
	p, err := topo.Grid(64, 10)
	if err != nil {
		b.Fatal(err)
	}
	p.RegroupContiguous(16)
	net, err := sim.New(p, 15, sim.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	src := trace.NewRoomActivity(7, p.Groups, 16)
	q := topk.SnapshotQuery{K: 2, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}
	if err := op.Attach(net, q); err != nil {
		b.Fatal(err)
	}
	// Warm-up (creation phase), then measure steady state.
	readings := topk.SenseEpoch(net, src, 0)
	if _, err := op.Epoch(0, readings); err != nil {
		b.Fatal(err)
	}
	net.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := model.Epoch(i + 1)
		r := topk.SenseEpoch(net, src, e)
		if _, err := op.Epoch(e, r); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(net.Counter.TotalTxBytes())/float64(b.N), "tx_bytes/epoch")
		b.ReportMetric(float64(net.Counter.TotalMessages())/float64(b.N), "msgs/epoch")
	}
}

// BenchmarkViewEncode measures the wire codec on a 16-group view.
func BenchmarkViewEncode(b *testing.B) {
	v := model.NewView()
	for i := 0; i < 64; i++ {
		v.Add(model.Reading{Node: model.NodeID(i), Group: model.GroupID(i % 16), Value: model.Value(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := model.EncodeView(v)
		if _, err := model.DecodeView(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkViewMerge measures the TAG merge path.
func BenchmarkViewMerge(b *testing.B) {
	a := model.NewView()
	c := model.NewView()
	for i := 0; i < 64; i++ {
		a.Add(model.Reading{Node: model.NodeID(i), Group: model.GroupID(i % 16), Value: model.Value(i)})
		c.Add(model.Reading{Node: model.NodeID(i + 64), Group: model.GroupID(i % 16), Value: model.Value(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := a.Clone()
		m.MergeView(c)
		if m.Len() != 16 {
			b.Fatal("merge lost groups")
		}
	}
}

// BenchmarkQueryPlan measures the §II parser + router.
func BenchmarkQueryPlan(b *testing.B) {
	schema := query.DefaultSchema()
	queries := []string{
		"SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid EPOCH DURATION 1 min",
		"SELECT TOP 5 timeinstant, AVG(temp) FROM sensors WITH HISTORY 256",
		"SELECT sound, temp FROM sensors",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query.PlanText(queries[i%len(queries)], schema); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHistoricTJA measures one full TJA execution (W=128, n=36).
func BenchmarkHistoricTJA(b *testing.B) {
	benchHistoric(b, "tja")
}

// BenchmarkHistoricTPUT measures one full TPUT execution on the same data.
func BenchmarkHistoricTPUT(b *testing.B) {
	benchHistoric(b, "tput")
}

func benchHistoric(b *testing.B, algo Algorithm) {
	scen := DemoScenario()
	scen.Workload.Kind = "diurnal"
	sys, err := Open(scen)
	if err != nil {
		b.Fatal(err)
	}
	sql := fmt.Sprintf("SELECT TOP 4 timeinstant, AVG(temp) FROM sensors WITH HISTORY %d", 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur, err := sys.PostWith(sql, algo)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cur.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
