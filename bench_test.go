// Benchmarks: one testing.B entry per experiment of the reproduction
// (E1–E14, see DESIGN.md's experiment index), sharing the exact harness
// cmd/kspot-bench runs at full scale, plus micro-benchmarks of the hot
// paths (codec, view merge, query planning, one MINT epoch).
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks run at reduced scale per iteration and report
// domain metrics (tx_bytes, messages) alongside ns/op; regenerating the
// full tables is `go run ./cmd/kspot-bench`.
package kspot

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"kspot/internal/bench"
	"kspot/internal/query"
	"kspot/internal/topk"
	"kspot/internal/topk/mint"
	"kspot/internal/topk/tag"
)

// benchExperiment wraps one harness experiment as a benchmark. Scale is
// per-run configuration, so parallel benchmark processes (-cpu sweeps)
// never observe each other's sizing.
func benchExperiment(b *testing.B, id string) {
	e, ok := bench.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := bench.RunConfig{Scale: 0.1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1Figure1(b *testing.B)         { benchExperiment(b, "e1") }
func BenchmarkE2Figure3(b *testing.B)         { benchExperiment(b, "e2") }
func BenchmarkE3SnapshotSavings(b *testing.B) { benchExperiment(b, "e3") }
func BenchmarkE4Energy(b *testing.B)          { benchExperiment(b, "e4") }
func BenchmarkE5Scaling(b *testing.B)         { benchExperiment(b, "e5") }
func BenchmarkE6KSweep(b *testing.B)          { benchExperiment(b, "e6") }
func BenchmarkE7Historic(b *testing.B)        { benchExperiment(b, "e7") }
func BenchmarkE8TJAPhases(b *testing.B)       { benchExperiment(b, "e8") }
func BenchmarkE9Recall(b *testing.B)          { benchExperiment(b, "e9") }
func BenchmarkE10QueryPlan(b *testing.B)      { benchExperiment(b, "e10") }
func BenchmarkE11GammaAblation(b *testing.B)  { benchExperiment(b, "e11") }
func BenchmarkE12Payload(b *testing.B)        { benchExperiment(b, "e12") }
func BenchmarkE13Loss(b *testing.B)           { benchExperiment(b, "e13") }
func BenchmarkE14FILA(b *testing.B)           { benchExperiment(b, "e14") }

// BenchmarkMintEpoch measures one steady-state MINT epoch on the standard
// 64-node / 16-cluster network, reporting the domain metrics the System
// Panel displays.
func BenchmarkMintEpoch(b *testing.B) {
	benchOperatorEpoch(b, mint.New())
}

// BenchmarkTagEpoch is the TAG baseline for BenchmarkMintEpoch.
func BenchmarkTagEpoch(b *testing.B) {
	benchOperatorEpoch(b, tag.New())
}

func benchOperatorEpoch(b *testing.B, op topk.SnapshotOperator) {
	// Shared body (internal/bench), so `go test -bench` and the -json
	// trajectory always measure the identical deployment and loop.
	txBytes, msgs := bench.RunOperatorEpochBench(b, op)
	if b.N > 0 {
		b.ReportMetric(txBytes, "tx_bytes/epoch")
		b.ReportMetric(msgs, "msgs/epoch")
	}
}

// BenchmarkMintEpochScale4000 measures one steady-state MINT epoch on the
// flat scale-4000 deployment with the legacy sequential sweep — the
// baseline of the parallel-sweep speedup curve.
func BenchmarkMintEpochScale4000(b *testing.B) {
	benchScaleEpoch(b, bench.SpeedupScaleSize, 1)
}

// BenchmarkMintEpochScale4000Parallel is BenchmarkMintEpochScale4000 with
// the level-synchronous parallel sweep at NumCPU workers. Answers, frames
// and energy accounting are byte-identical to the sequential run (see
// internal/sim); only the wall clock moves.
func BenchmarkMintEpochScale4000Parallel(b *testing.B) {
	benchScaleEpoch(b, bench.SpeedupScaleSize, runtime.NumCPU())
}

func benchScaleEpoch(b *testing.B, n, workers int) {
	txBytes, msgs := bench.RunScaleMintEpochBench(b, n, workers)
	if b.N > 0 {
		b.ReportMetric(txBytes, "tx_bytes/epoch")
		b.ReportMetric(msgs, "msgs/epoch")
	}
}

// BenchmarkFederatedMintEpoch measures one steady-state federated MINT
// epoch on the sharded scale deployment (scale-1000 split into 4 shard
// networks, coordinator merge included) — the configuration the
// sharded-vs-flat conformance suite pins for correctness.
func BenchmarkFederatedMintEpoch(b *testing.B) {
	txBytes, msgs, coordBytes := bench.RunFederatedMintEpochBench(b)
	if b.N > 0 {
		b.ReportMetric(txBytes, "tx_bytes/epoch")
		b.ReportMetric(msgs, "msgs/epoch")
		b.ReportMetric(coordBytes, "coord_bytes/epoch")
	}
}

// BenchmarkFederatedHistoricEpoch measures one full federated historic
// execution (TOP-4 WITH HISTORY 16) on the sharded scale deployment:
// per-shard TJA over the buffered windows plus the coordinator tier's
// two-phase threshold merge — the configuration the federated-historic
// conformance suite pins for correctness.
func BenchmarkFederatedHistoricEpoch(b *testing.B) {
	txBytes, coordBytes := bench.RunFederatedHistoricBench(b)
	if b.N > 0 {
		b.ReportMetric(txBytes, "tx_bytes/run")
		b.ReportMetric(coordBytes, "coord_bytes/run")
	}
}

// BenchmarkViewEncode measures the wire codec on a 16-group view, round-
// tripping through caller-owned buffers the way the sweep hot path does.
func BenchmarkViewEncode(b *testing.B) { bench.RunViewCodecBench(b) }

// BenchmarkViewMerge measures the TAG merge path with a reused accumulator.
func BenchmarkViewMerge(b *testing.B) { bench.RunViewMergeBench(b) }

// BenchmarkQueryPlan measures the §II parser + router.
func BenchmarkQueryPlan(b *testing.B) {
	schema := query.DefaultSchema()
	queries := []string{
		"SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid EPOCH DURATION 1 min",
		"SELECT TOP 5 timeinstant, AVG(temp) FROM sensors WITH HISTORY 256",
		"SELECT sound, temp FROM sensors",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query.PlanText(queries[i%len(queries)], schema); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHistoricTJA measures one full TJA execution (W=128, n=36).
func BenchmarkHistoricTJA(b *testing.B) {
	benchHistoric(b, "tja")
}

// BenchmarkHistoricTPUT measures one full TPUT execution on the same data.
func BenchmarkHistoricTPUT(b *testing.B) {
	benchHistoric(b, "tput")
}

func benchHistoric(b *testing.B, algo Algorithm) {
	scen := DemoScenario()
	scen.Workload.Kind = "diurnal"
	sys, err := Open(scen)
	if err != nil {
		b.Fatal(err)
	}
	sql := fmt.Sprintf("SELECT TOP 4 timeinstant, AVG(temp) FROM sensors WITH HISTORY %d", 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur, err := sys.PostWith(sql, algo)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cur.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSharedAcquisitionM{1,8,64} measure the multi-tenant serving
// path: M queries posted under one sensing signature ride ONE in-network
// acquisition per epoch, so the reported queries/sec should scale ~M× at
// nearly constant ns/op. BenchmarkPrivateAcquisitionM8 is the pre-sharing
// baseline (one acquisition group per query) for the same M=8 workload.
func BenchmarkSharedAcquisitionM1(b *testing.B) { bench.RunSharedAcquisitionBench(b, 1, true) }

func BenchmarkSharedAcquisitionM8(b *testing.B) { bench.RunSharedAcquisitionBench(b, 8, true) }

func BenchmarkSharedAcquisitionM64(b *testing.B) { bench.RunSharedAcquisitionBench(b, 64, true) }

func BenchmarkPrivateAcquisitionM8(b *testing.B) { bench.RunSharedAcquisitionBench(b, 8, false) }

// BenchmarkSSEFanOut64 measures the streaming results tier: one cursor's
// epoch stream fanned out through a serve.Hub into 64 subscribers (the SSE
// path without the sockets), reported as subscriber-deliveries per second.
func BenchmarkSSEFanOut64(b *testing.B) { bench.RunHubFanOutBench(b, 64) }

// BenchmarkWireEpochRTT measures what one federated epoch costs in round
// trips at a link-dominated RTT (wire.Faults injects a symmetric 1ms
// per-frame delay, so RTT = 2ms): the pre-PR-9 per-call protocol pays
// (1+G) round trips per epoch, the pipelined client overlaps the G
// acquires down to ~2, and the batched epoch-round protocol pays exactly
// one. rounds/epoch and wire_bytes/epoch are reported alongside ns/op so
// the protocol cost is visible independent of host speed.
func BenchmarkWireEpochRTT(b *testing.B) {
	for _, leg := range []bench.WireLeg{bench.WirePerCallSerialized, bench.WirePerCallOverlapped, bench.WireBatched} {
		leg := leg
		b.Run(leg.String(), func(b *testing.B) {
			rounds, bytes := bench.RunWireEpochRTTBench(b, leg, bench.WireRTTLinkDelay, bench.WireRTTGroups)
			if b.N > 0 {
				b.ReportMetric(rounds, "rounds/epoch")
				b.ReportMetric(bytes, "wire_bytes/epoch")
			}
		})
	}
}
