package kspot

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"kspot/internal/model"
	"kspot/internal/trace"
)

// TestLiveCursorFigure1 posts a query on the concurrent substrate and
// checks it answers exactly, epoch after epoch.
func TestLiveCursorFigure1(t *testing.T) {
	sys, err := Open(Figure1Scenario())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	cur, err := sys.PostWith("SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid", AlgoMINT, WithLive())
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Live() {
		t.Fatal("cursor not live")
	}
	for i := 0; i < 5; i++ {
		res, err := cur.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Correct || res.Answers[0].Group != trace.Fig1RoomC || res.Answers[0].Score != 75 {
			t.Fatalf("epoch %d: %v, want (C,75)", res.Epoch, res.Answers)
		}
	}
}

// TestLiveMultiQuery is the multi-query acceptance path: one live
// deployment serves several concurrently posted snapshot cursors, all
// sharing the epoch sweep, each stepped from its own goroutine.
func TestLiveMultiQuery(t *testing.T) {
	sys, err := Open(DemoScenario())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	queries := []struct {
		sql  string
		algo Algorithm
	}{
		{"SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid", AlgoMINT},
		{"SELECT TOP 3 roomid, MAX(sound) FROM sensors GROUP BY roomid", AlgoTAG},
		{"SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid", AlgoAuto},
	}
	cursors := make([]*Cursor, len(queries))
	for i, q := range queries {
		cur, err := sys.PostWith(q.sql, q.algo, WithLive())
		if err != nil {
			t.Fatal(err)
		}
		cursors[i] = cur
	}

	const epochs = 6
	var wg sync.WaitGroup
	for i, cur := range cursors {
		wg.Add(1)
		go func(i int, cur *Cursor) {
			defer wg.Done()
			for e := 0; e < epochs; e++ {
				res, err := cur.Step()
				if err != nil {
					t.Errorf("query %d: %v", i, err)
					return
				}
				if res.Epoch != Epoch(e) {
					t.Errorf("query %d: epoch %d at step %d (lock-step broken)", i, res.Epoch, e)
					return
				}
				if !res.Correct {
					t.Errorf("query %d epoch %d: %v vs exact %v", i, e, res.Answers, res.Exact)
					return
				}
			}
		}(i, cur)
	}
	wg.Wait()

	// The epoch sweep is shared: three cursors × 6 steps advanced one
	// deployment exactly 6 epochs, so a cursor posted now joins at epoch
	// 6 — it does not get a private clock starting at 0.
	late, err := sys.PostWith("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid", AlgoTAG, WithLive())
	if err != nil {
		t.Fatal(err)
	}
	res, err := late.Step()
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != Epoch(epochs) {
		t.Fatalf("late cursor started at epoch %d, want %d (shared epoch clock)", res.Epoch, epochs)
	}
}

// TestLiveHistoricGroupQuery runs a node-local window-aggregate query on
// the live substrate: answers must match the oracle over the derived
// readings, while the per-node history windows keep buffering the RAW
// sensed values (not the window aggregates the query's sweeps carry).
func TestLiveHistoricGroupQuery(t *testing.T) {
	sys, err := Open(Figure1Scenario())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	cur, err := sys.Post("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid WITH HISTORY 8", WithLive())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		res, err := cur.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Correct {
			t.Fatalf("epoch %d: %v vs %v", res.Epoch, res.Answers, res.Exact)
		}
	}
	raw := trace.Figure1Values()
	for id, series := range sys.LiveWindows() {
		for _, v := range series {
			if v != raw[id] {
				t.Fatalf("node %d window holds %v, want raw sensed %v", id, v, raw[id])
			}
		}
	}
}

// TestStepAfterClose: closing the system must turn later live Steps into
// errors, not panics.
func TestStepAfterClose(t *testing.T) {
	sys, err := Open(Figure1Scenario())
	if err != nil {
		t.Fatal(err)
	}
	cur, err := sys.Post("SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid", WithLive())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Step(); err != nil {
		t.Fatal(err)
	}
	sys.Close()
	if _, err := cur.Step(); err == nil {
		t.Fatal("Step after Close succeeded")
	}
	sys.Close() // idempotent
}

// TestLiveWindowsExposed: live deployments buffer per-node history.
func TestLiveWindowsExposed(t *testing.T) {
	sys, err := Open(Figure1Scenario())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	cur, err := sys.Post("SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid", WithLive(), WithLiveWindow(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := cur.Step(); err != nil {
			t.Fatal(err)
		}
	}
	wins := sys.LiveWindows()
	if len(wins) != 9 {
		t.Fatalf("windows for %d nodes, want 9", len(wins))
	}
	for id, series := range wins {
		if len(series) != 4 {
			t.Fatalf("node %d buffered %d values, want 4 (capacity)", id, len(series))
		}
	}
}

// TestLiveFaultEquivalence pins the fault layer through the public API:
// the same lossy+churning scenario stepped on the deterministic substrate
// and on the concurrent live substrate must produce identical answers and
// identical traffic, and churn must actually strike the live deployment
// (a regression test for live cursors attaching below the fault injector,
// where churn silently never fired).
func TestLiveFaultEquivalence(t *testing.T) {
	const epochs = 16
	run := func(live bool) ([]StepResult, int, int) {
		sys, err := OpenFile("scenarios/lossy-churn.json")
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		var opts []PostOption
		if live {
			opts = append(opts, WithLive())
		}
		cur, err := sys.Post("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid", opts...)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]StepResult, 0, epochs)
		for i := 0; i < epochs; i++ {
			res, err := cur.Step()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res)
		}
		// lossy-churn.json: node 5 dies at 6 and revives at 14; node 11
		// dies at 10 for good.
		if sys.Network().Alive(11) {
			t.Errorf("live=%v: node 11 should be churned down after epoch 10", live)
		}
		if !sys.Network().Alive(5) {
			t.Errorf("live=%v: node 5 should be revived after epoch 14", live)
		}
		snap := sys.Network().Snap()
		return out, snap.Messages, snap.TxBytes
	}
	det, detMsgs, detBytes := run(false)
	liv, livMsgs, livBytes := run(true)
	for e := range det {
		if !model.EqualAnswers(det[e].Answers, liv[e].Answers) {
			t.Fatalf("epoch %d: det %v, live %v", e, det[e].Answers, liv[e].Answers)
		}
	}
	if detMsgs != livMsgs || detBytes != livBytes {
		t.Errorf("traffic diverged: det %d msgs/%d bytes, live %d msgs/%d bytes",
			detMsgs, detBytes, livMsgs, livBytes)
	}
}

// TestStepContextCancelNoLeak is the cancellation contract of the live
// substrate: cancelling a StepContext mid-epoch returns promptly, the
// abandoned epoch finishes on the deployment's own goroutines and is
// re-buffered (the epoch stream stays gapless), and Close releases every
// Live goroutine — nothing leaks.
func TestStepContextCancelNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	sys, err := Open(DemoScenario())
	if err != nil {
		t.Fatal(err)
	}
	cur, err := sys.Post("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid", WithLive())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.StepContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Cancel concurrently with an in-flight step, many times: each
	// cancelled epoch must be re-buffered, never lost or duplicated.
	next := Epoch(1)
	for i := 0; i < 50; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go cancel()
		res, err := cur.StepContext(ctx)
		switch {
		case err == nil:
			if res.Epoch != next {
				t.Fatalf("iteration %d: epoch %d, want %d (stream must stay gapless)", i, res.Epoch, next)
			}
			next++
		case errors.Is(err, context.Canceled):
			// Abandoned; the epoch (if one ran) is re-buffered.
		default:
			t.Fatal(err)
		}
	}
	res, err := cur.Step()
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != next {
		t.Fatalf("post-cancel step saw epoch %d, want %d", res.Epoch, next)
	}
	sys.Close()
	// Every Live worker and scheduler goroutine must have exited.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d at start", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCloseConcurrentWithSteps: System.Close must be safe to call while
// live Steps are in flight — in-flight epochs complete, later Steps error,
// and nothing deadlocks or races.
func TestCloseConcurrentWithSteps(t *testing.T) {
	sys, err := Open(DemoScenario())
	if err != nil {
		t.Fatal(err)
	}
	cur, err := sys.Post("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid", WithLive())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if _, err := cur.Step(); err != nil {
				return // closed under us — the expected exit
			}
		}
		t.Error("200 steps completed without observing Close")
	}()
	sys.Close()
	sys.Close() // idempotent, concurrently with the stepping goroutine
	wg.Wait()
	if _, err := cur.Step(); err == nil {
		t.Fatal("Step after concurrent Close succeeded")
	}
}

// TestFaultArmingOrder pins when a fault environment may be armed: before
// any cursor attaches, once per System.
func TestFaultArmingOrder(t *testing.T) {
	cfg := FaultConfig{Seed: 1, Loss: 0.1}
	sql := "SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid"

	// Arming at the first post works; re-arming does not.
	sys, err := Open(DemoScenario())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Post(sql, WithFaults(cfg)); err != nil {
		t.Fatalf("first post with faults: %v", err)
	}
	if _, err := sys.Post(sql, WithFaults(cfg)); err == nil {
		t.Error("re-arming an armed environment must fail")
	}
	if _, err := sys.Post(sql); err != nil {
		t.Errorf("plain post on an armed system: %v", err)
	}

	// Arming after a plain cursor attached must fail: that cursor's
	// operator sits below the churn injector.
	sys2, err := Open(DemoScenario())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys2.Post(sql); err != nil {
		t.Fatal(err)
	}
	if _, err := sys2.Post(sql, WithFaults(cfg)); err == nil {
		t.Error("arming after a posted query must fail")
	}
}
