package kspot

import (
	"strings"
	"testing"

	"kspot/internal/trace"
)

func TestOpenDemoScenario(t *testing.T) {
	sys, err := Open(DemoScenario())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Network().Placement.SensorNodes()); got != 14 {
		t.Fatalf("demo sensors = %d", got)
	}
}

func TestFigure1EndToEnd(t *testing.T) {
	sys, err := Open(Figure1Scenario())
	if err != nil {
		t.Fatal(err)
	}
	cur, err := sys.Post("SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid EPOCH DURATION 1 min")
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Continuous() {
		t.Fatal("snapshot query must be continuous")
	}
	for i := 0; i < 3; i++ {
		res, err := cur.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Correct {
			t.Fatalf("epoch %d incorrect: %v vs %v", res.Epoch, res.Answers, res.Exact)
		}
		if res.Answers[0].Group != trace.Fig1RoomC || res.Answers[0].Score != 75 {
			t.Fatalf("answers = %v, want (C,75)", res.Answers)
		}
	}
}

func TestNaiveReproducesPaperBug(t *testing.T) {
	sys, err := Open(Figure1Scenario())
	if err != nil {
		t.Fatal(err)
	}
	cur, err := sys.PostWith("SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid", AlgoNaive)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cur.Step()
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct {
		t.Fatal("naive should err on Figure 1")
	}
	if res.Answers[0].Group != trace.Fig1RoomD || res.Answers[0].Score != 76.5 {
		t.Fatalf("naive answer = %v, want (D, 76.5)", res.Answers[0])
	}
}

func TestHistoricQueryEndToEnd(t *testing.T) {
	s := DemoScenario()
	s.Workload.Kind = "diurnal"
	sys, err := Open(s)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := sys.Post("SELECT TOP 5 timeinstant, AVG(temp) FROM sensors WITH HISTORY 64")
	if err != nil {
		t.Fatal(err)
	}
	if cur.Continuous() {
		t.Fatal("historic query must not be continuous")
	}
	tjaAns, err := cur.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(tjaAns) != 5 {
		t.Fatalf("answers = %v", tjaAns)
	}
	// TPUT and centralized must agree on the same scenario.
	for _, algo := range []Algorithm{AlgoTPUT, AlgoCentral} {
		cur2, err := sys.PostWith("SELECT TOP 5 timeinstant, AVG(temp) FROM sensors WITH HISTORY 64", algo)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cur2.Run()
		if err != nil {
			t.Fatal(err)
		}
		for i := range tjaAns {
			if got[i] != tjaAns[i] {
				t.Fatalf("%s disagrees with tja: %v vs %v", algo, got, tjaAns)
			}
		}
	}
}

func TestHistoricGroupQuery(t *testing.T) {
	sys, err := Open(DemoScenario())
	if err != nil {
		t.Fatal(err)
	}
	cur, err := sys.Post("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid WITH HISTORY 8")
	if err != nil {
		t.Fatal(err)
	}
	if cur.Plan() != "historic-group/mint" {
		t.Fatalf("plan = %s", cur.Plan())
	}
	for i := 0; i < 5; i++ {
		res, err := cur.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Correct {
			t.Fatalf("epoch %d: %v vs %v", res.Epoch, res.Answers, res.Exact)
		}
	}
}

func TestBasicQuery(t *testing.T) {
	sys, err := Open(DemoScenario())
	if err != nil {
		t.Fatal(err)
	}
	cur, err := sys.Post("SELECT roomid, AVG(sound) FROM sensors GROUP BY roomid")
	if err != nil {
		t.Fatal(err)
	}
	res, err := cur.Step()
	if err != nil {
		t.Fatal(err)
	}
	// A basic GROUP BY returns every cluster, ranked.
	if len(res.Answers) != 6 {
		t.Fatalf("basic answers = %v", res.Answers)
	}
}

func TestStepRunMisuse(t *testing.T) {
	sys, _ := Open(DemoScenario())
	snap, err := sys.Post("SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Run(); err == nil {
		t.Error("Run on a continuous cursor accepted")
	}
	hist, err := sys.Post("SELECT TOP 1 timeinstant, AVG(sound) FROM sensors WITH HISTORY 16")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hist.Step(); err == nil {
		t.Error("Step on a historic cursor accepted")
	}
}

func TestPostErrors(t *testing.T) {
	sys, _ := Open(DemoScenario())
	if _, err := sys.Post("SELEKT nonsense"); err == nil {
		t.Error("bad SQL accepted")
	}
	if _, err := sys.PostWith("SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid", AlgoTJA); err == nil {
		t.Error("historic algorithm on snapshot query accepted")
	}
	if _, err := sys.PostWith("SELECT sound FROM sensors", AlgoMINT); err == nil {
		t.Error("pinned MINT on basic query accepted")
	}
}

func TestSystemPanelAndDisplay(t *testing.T) {
	sys, _ := Open(DemoScenario())
	cur, _ := sys.Post("SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid")
	var last StepResult
	for i := 0; i < 5; i++ {
		last, _ = cur.Step()
	}
	panel := sys.SystemPanel(nil)
	if !strings.Contains(panel, "SYSTEM PANEL") {
		t.Error("panel missing")
	}
	display := sys.DisplayPanel(last.Answers, 72, 20)
	if !strings.Contains(display, "SINK") || !strings.Contains(display, "(1)") {
		t.Errorf("display panel:\n%s", display)
	}
	strip := sys.RankingStrip(last.Answers)
	if !strings.Contains(strip, "1.") {
		t.Errorf("strip = %q", strip)
	}
}

func TestCaptureStatsComparison(t *testing.T) {
	sys, _ := Open(DemoScenario())
	tagCur, _ := sys.PostWith("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid", AlgoTAG)
	for i := 0; i < 20; i++ {
		tagCur.Step()
	}
	base := sys.CaptureStats("tag", 20)

	sys.ResetAccounting()
	mintCur, _ := sys.Post("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid")
	for i := 0; i < 20; i++ {
		mintCur.Step()
	}
	panel := sys.SystemPanel(&base)
	if !strings.Contains(panel, "byte savings") {
		t.Errorf("panel lacks savings:\n%s", panel)
	}
}

func TestOpenFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/demo.json"
	if err := DemoScenario().Save(path); err != nil {
		t.Fatal(err)
	}
	sys, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Scenario().Name != "icde09-demo" {
		t.Fatalf("scenario = %q", sys.Scenario().Name)
	}
}

func TestOpenFileMissing(t *testing.T) {
	if _, err := OpenFile("/does/not/exist.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}
