package kspot

// Live elastic re-sharding: migrate a running remote federation onto a new
// shard partition — grow 2→4 under load, shrink 4→2 — without stopping the
// posted queries. The move is exact, not approximate:
//
//   - while the migration is in flight, every epoch keeps running on the
//     OLD deployment, so answers never degrade (recall stays 1.0 — pin it
//     with stats.Score over the migration window if you want the number);
//   - the coordinator's group state (epoch clock, shared-acquisition
//     groups, per-cursor buffers) is never rebuilt — each group's wire
//     query is re-attached on the new shards under the SAME rqid, so the
//     lock-step tier fans out to the new deployment with zero translation;
//   - the durable historic tier moves with the nodes: each old shard's
//     windows + epoch cursor + energy ledger stream out as a canonical
//     snapshot (wire.MsgSnapshot), split per target roster
//     (storage.ShardState.FilterNodes), and restore on the new shards
//     (wire.MsgRestore) bit-exact — including float energy partial sums;
//   - engine.RemoteCoordinator.Install is the drain: it takes the epoch
//     lock, so the swap cannot interleave a sense/acquire pair, and the
//     next Step after it lands on the new shards.
//
// The only migration artifact is a gap in the TARGET shards' durable
// windows covering the epochs that elapsed between snapshot and install
// (reported as DowntimeEpochs) — those epochs ran, and answered, on the
// old deployment, whose own durable tier retains them.

import (
	"encoding/json"
	"fmt"

	"kspot/internal/model"
	"kspot/internal/storage"
)

// ReshardReport summarizes a completed live re-sharding migration.
type ReshardReport struct {
	// FromShards / ToShards are the shard counts before and after.
	FromShards int
	ToShards   int
	// DowntimeEpochs is how many lock-step epochs elapsed while the
	// migration was in flight. Queries kept answering through all of them
	// (on the old deployment); the number bounds the durable-window gap on
	// the target shards.
	DowntimeEpochs int
	// MovedBytes is the total canonical snapshot bytes streamed out of the
	// old shards.
	MovedBytes int
	// Queries is how many shared-acquisition wire attachments were
	// replayed onto every new shard.
	Queries int
}

// Reshard migrates this remote System onto a new shard partition running
// at addrs (index-aligned with newScenario's shard list, exactly like
// OpenFederated). newScenario must be the SAME flat scenario under a
// different shards block — same nodes, clusters, workload, seeds; only
// the partition (and the name) may differ — so the re-sharded deployment
// derives the identical trace and keeps answering byte-identically to the
// flat run. Both the current and the new partition need at least two
// shards (posted cursors' merge state assumes a federated deployment on
// both sides of the move).
//
// Posted cursors keep stepping throughout: epochs in flight during the
// migration run on the old shards, and the first epoch after it on the
// new ones, with no stop-the-world window. New Posts and Closes block for
// the duration. Old connections close once the swap is serialized against
// the epoch clock.
func (s *System) Reshard(newScenario *Scenario, addrs []string) (*ReshardReport, error) {
	if !s.Remote() {
		return nil, fmt.Errorf("kspot: Reshard needs a remote deployment (OpenFederated)")
	}
	shardScens, err := newScenario.ShardScenarios()
	if err != nil {
		return nil, err
	}
	if len(addrs) != len(shardScens) {
		return nil, fmt.Errorf("kspot: %d shard addresses for a %d-shard scenario", len(addrs), len(shardScens))
	}
	if len(shardScens) < 2 {
		return nil, fmt.Errorf("kspot: Reshard targets need at least 2 shards, got %d", len(shardScens))
	}
	if err := sameFlatScenario(s.scenario, newScenario); err != nil {
		return nil, err
	}

	epochBefore := s.rcoord.EpochNow()

	// Dial every new shard before touching anything — a target that is
	// down or skewed fails the whole move with the old deployment intact.
	clients, deps, err := dialShards(newScenario, shardScens, addrs, s.wireCfg)
	if err != nil {
		return nil, err
	}
	closeNew := func() {
		for _, cl := range clients {
			cl.Close()
		}
	}

	s.groupMu.Lock()
	defer s.groupMu.Unlock()
	if len(s.remotes) < 2 {
		closeNew()
		return nil, fmt.Errorf("kspot: Reshard needs at least 2 current shards, got %d", len(s.remotes))
	}

	// Replay every shared-acquisition group's attachment on every new
	// shard under its existing rqid: the shard re-plans the SQL and
	// instantiates the identical operator, and the coordinator's group
	// state needs no translation when the swap lands.
	for _, st := range s.remoteKeys {
		for _, cl := range clients {
			if err := cl.Attach(st.rqid, st.algo, st.sql); err != nil {
				closeNew()
				return nil, fmt.Errorf("kspot: reshard re-attach query %d: %w", st.rqid, err)
			}
		}
	}

	// Snapshot every old shard's durable tier. Epochs keep running on the
	// old deployment while these stream — MsgSnapshot only reads the
	// store, it never touches the epoch state machine.
	moved := 0
	states := make([]storage.ShardState, len(s.remotes))
	for i, cl := range s.remotes {
		if !cl.SupportsSnapshot() {
			closeNew()
			return nil, fmt.Errorf("kspot: shard %s does not speak the snapshot protocol", s.scenario.ShardName(i))
		}
		img, err := cl.Snapshot()
		if err != nil {
			closeNew()
			return nil, fmt.Errorf("kspot: snapshot shard %s: %w", s.scenario.ShardName(i), err)
		}
		states[i], err = storage.DecodeShardState(img)
		if err != nil {
			closeNew()
			return nil, fmt.Errorf("kspot: snapshot shard %s: %w", s.scenario.ShardName(i), err)
		}
		moved += len(img)
	}

	// Split each source snapshot across the target rosters and restore.
	for ti, target := range shardScens {
		keep := make(map[model.NodeID]bool, len(target.Nodes))
		for _, n := range target.Nodes {
			keep[model.NodeID(n.ID)] = true
		}
		merged := storage.MergeShardStates(states, keep)
		if err := clients[ti].Restore(storage.AppendShardState(nil, merged)); err != nil {
			closeNew()
			return nil, fmt.Errorf("kspot: restore shard %s: %w", newScenario.ShardName(ti), err)
		}
	}

	// The drain and the swap: Install takes the epoch lock, so no epoch
	// round or historic round straddles the cutover.
	if err := s.rcoord.Install(deps); err != nil {
		closeNew()
		return nil, err
	}
	old := s.remotes
	s.remotes = clients
	s.scenario = newScenario
	s.shardScens = shardScens
	epochAfter := s.rcoord.EpochNow()

	// Close the old connections serialized against the epoch clock: any
	// round already holding the lock finishes on them first.
	s.rcoord.Serialized(func() error {
		for _, cl := range old {
			cl.Close()
		}
		return nil
	})

	return &ReshardReport{
		FromShards:     len(old),
		ToShards:       len(clients),
		DowntimeEpochs: int(epochAfter - epochBefore),
		MovedBytes:     moved,
		Queries:        len(s.remoteKeys),
	}, nil
}

// sameFlatScenario verifies two scenarios describe the identical flat
// deployment — everything but the name and the shards block must match,
// or the re-sharded federation would derive a different trace and break
// the byte-identity bar.
func sameFlatScenario(a, b *Scenario) error {
	ca, cb := *a, *b
	ca.Name, cb.Name = "", ""
	ca.Shards, cb.Shards = nil, nil
	ja, err := json.Marshal(&ca)
	if err != nil {
		return err
	}
	jb, err := json.Marshal(&cb)
	if err != nil {
		return err
	}
	if string(ja) != string(jb) {
		return fmt.Errorf("kspot: re-shard scenario %q is not the same flat deployment as %q (only the shards block may differ)", b.Name, a.Name)
	}
	return nil
}
