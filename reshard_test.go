package kspot

// Live elastic re-sharding conformance: a remote federation migrated
// 2→4→2 shards mid-run — posted cursors stepping throughout, one leg with
// a cursor stepping concurrently with the migration — must answer every
// epoch byte-identically to the flat simulation, with recall pinned at
// 1.0 through the move (stats.Score per epoch against the oracle), the
// durable windows and energy ledgers carried bit-exact onto the targets,
// and a post-migration historic run equal to the flat one.

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"kspot/internal/model"
	"kspot/internal/stats"
	"kspot/internal/storage"
)

const (
	reshardNodes = 320 // 16 clusters — splits 2 and 4 ways
	reshardSQLA  = "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid"
	reshardSQLB  = "SELECT TOP 2 roomid, MAX(sound) FROM sensors GROUP BY roomid"
)

func reshardScen(t *testing.T, shards int) *Scenario {
	t.Helper()
	scen, err := ScaleScenarioShards(reshardNodes, shards)
	if err != nil {
		t.Fatal(err)
	}
	return scen
}

// stepScored steps a cursor n times, requiring recall 1.0 against the
// oracle at every epoch (the migration must not cost a single answer).
func stepScored(t *testing.T, label string, cur *Cursor, n int, got *[]StepResult) {
	t.Helper()
	for i := 0; i < n; i++ {
		res, err := cur.Step()
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if m := stats.Score(res.Answers, res.Exact); m.Recall != 1 {
			t.Fatalf("%s epoch %d: recall %v (answers %v, oracle %v)", label, res.Epoch, m.Recall, res.Answers, res.Exact)
		}
		*got = append(*got, res)
	}
}

func TestLiveReshardGrowShrinkConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-shard migration conformance in -short mode")
	}
	const legEpochs = 3
	const totalEpochs = 3 * legEpochs

	// Flat reference: both cursors posted upfront, stepped interleaved.
	flatScen, err := ScaleScenario(reshardNodes)
	if err != nil {
		t.Fatal(err)
	}
	flatSys, err := Open(flatScen, WithParallel(runtime.NumCPU()))
	if err != nil {
		t.Fatal(err)
	}
	defer flatSys.Close()
	flatCurA, err := flatSys.Post(reshardSQLA)
	if err != nil {
		t.Fatal(err)
	}
	flatCurB, err := flatSys.Post(reshardSQLB)
	if err != nil {
		t.Fatal(err)
	}
	var flatA, flatB []StepResult
	for i := 0; i < totalEpochs; i++ {
		stepScored(t, "flat A", flatCurA, 1, &flatA)
		stepScored(t, "flat B", flatCurB, 1, &flatB)
	}
	flatHist, err := flatSys.Post(scaleHistoricSQL)
	if err != nil {
		t.Fatal(err)
	}
	flatHistoric, err := flatHist.Run()
	if err != nil {
		t.Fatal(err)
	}

	// The migrating federation starts 2-sharded.
	scen2 := reshardScen(t, 2)
	addrs2, _ := startWireShards(t, scen2, runtime.NumCPU())
	sys, err := OpenFederated(scen2, addrs2)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	curA, err := sys.Post(reshardSQLA)
	if err != nil {
		t.Fatal(err)
	}
	curB, err := sys.Post(reshardSQLB)
	if err != nil {
		t.Fatal(err)
	}

	// Leg 1 on 2 shards.
	var gotA, gotB []StepResult
	for i := 0; i < legEpochs; i++ {
		stepScored(t, "2-shard A", curA, 1, &gotA)
		stepScored(t, "2-shard B", curB, 1, &gotB)
	}

	// Grow 2→4 while the deployment is quiescent between steps.
	scen4 := reshardScen(t, 4)
	addrs4, _ := startWireShards(t, scen4, runtime.NumCPU())
	rep, err := sys.Reshard(scen4, addrs4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FromShards != 2 || rep.ToShards != 4 {
		t.Fatalf("grow report %+v", rep)
	}
	if rep.Queries != 2 {
		t.Fatalf("grow replayed %d queries, want 2", rep.Queries)
	}
	if rep.MovedBytes == 0 {
		t.Fatal("grow moved no snapshot bytes")
	}
	if rep.DowntimeEpochs != 0 {
		t.Fatalf("quiescent grow reported %d downtime epochs", rep.DowntimeEpochs)
	}
	if sys.Shards() != 4 {
		t.Fatalf("post-grow Shards() = %d", sys.Shards())
	}

	// The durable tier moved with the nodes: every target shard carries its
	// roster's windows and the epoch cursor of the source snapshots.
	ss, err := sys.StorageStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 4 {
		t.Fatalf("post-grow storage rows: %d", len(ss))
	}
	nodes := 0
	for i, st := range ss {
		nodes += st.Nodes
		if !st.HasEpoch || st.LastEpoch != legEpochs-1 {
			t.Fatalf("post-grow shard %d cursor: %+v", i, st)
		}
	}
	if nodes != reshardNodes {
		t.Fatalf("post-grow windows cover %d nodes, want %d", nodes, reshardNodes)
	}

	// Leg 2 on 4 shards — same cursors, same epoch clock.
	for i := 0; i < legEpochs; i++ {
		stepScored(t, "4-shard A", curA, 1, &gotA)
		stepScored(t, "4-shard B", curB, 1, &gotB)
	}

	// Shrink 4→2 WHILE cursor A steps concurrently: the migration must not
	// stop the posted queries, and every epoch that lands during it still
	// answers exactly (on whichever deployment ran it).
	scen2b := reshardScen(t, 2)
	addrs2b, _ := startWireShards(t, scen2b, runtime.NumCPU())
	var wg sync.WaitGroup
	wg.Add(1)
	var concA []StepResult
	var concErr error
	go func() {
		defer wg.Done()
		for i := 0; i < legEpochs; i++ {
			res, err := curA.Step()
			if err != nil {
				concErr = err
				return
			}
			if m := stats.Score(res.Answers, res.Exact); m.Recall != 1 {
				concErr = fmt.Errorf("epoch %d: recall %v during migration", res.Epoch, m.Recall)
				return
			}
			concA = append(concA, res)
		}
	}()
	rep2, err := sys.Reshard(scen2b, addrs2b)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if concErr != nil {
		t.Fatalf("concurrent stepping during shrink: %v", concErr)
	}
	if rep2.FromShards != 4 || rep2.ToShards != 2 {
		t.Fatalf("shrink report %+v", rep2)
	}
	gotA = append(gotA, concA...)
	// Cursor B catches up on its buffered epochs (the shared clock ran them
	// whenever A stepped).
	for i := 0; i < legEpochs; i++ {
		stepScored(t, "post-shrink B", curB, 1, &gotB)
	}

	stepEqualByteIdentical(t, "resharded A vs flat", gotA, flatA)
	stepEqualByteIdentical(t, "resharded B vs flat", gotB, flatB)

	// Historic after two migrations still equals the flat run.
	hcur, err := sys.Post(scaleHistoricSQL)
	if err != nil {
		t.Fatal(err)
	}
	historic, err := hcur.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(answerBytes(historic), answerBytes(flatHistoric)) {
		t.Fatalf("post-migration historic %v, flat %v", historic, flatHistoric)
	}
}

func TestReshardValidation(t *testing.T) {
	// Not a remote deployment.
	local, err := Open(DemoScenario())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := local.Reshard(reshardScen(t, 2), []string{"a", "b"}); err == nil || !strings.Contains(err.Error(), "remote") {
		t.Fatalf("local Reshard: %v", err)
	}

	scen2 := reshardScen(t, 2)
	addrs2, _ := startWireShards(t, scen2, 1)
	sys, err := OpenFederated(scen2, addrs2)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	// Address count must match the new partition.
	if _, err := sys.Reshard(reshardScen(t, 4), addrs2); err == nil || !strings.Contains(err.Error(), "addresses") {
		t.Fatalf("addr mismatch: %v", err)
	}
	// Single-shard targets are rejected.
	flat, err := ScaleScenario(reshardNodes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Reshard(flat, []string{"127.0.0.1:1"}); err == nil || !strings.Contains(err.Error(), "at least 2") {
		t.Fatalf("single-shard target: %v", err)
	}
	// A different flat deployment is rejected before anything is dialed.
	other := shardedDemo(t, 2)
	if _, err := sys.Reshard(other, []string{"127.0.0.1:1", "127.0.0.1:2"}); err == nil || !strings.Contains(err.Error(), "same flat deployment") {
		t.Fatalf("skewed scenario: %v", err)
	}
}

func TestMergeShardStates(t *testing.T) {
	states := []storage.ShardState{
		{Epoch: 4, HasEpoch: true, Nodes: []storage.NodeState{
			{Node: 3, EnergyUJ: 1.5, Epochs: []model.Epoch{4}, Values: []int64{100}},
			{Node: 1, EnergyUJ: 0.5, Epochs: []model.Epoch{4}, Values: []int64{200}},
		}},
		{Epoch: 5, HasEpoch: true, Nodes: []storage.NodeState{
			{Node: 2, EnergyUJ: 2.5, Epochs: []model.Epoch{5}, Values: []int64{300}},
		}},
	}
	// Note: FilterNodes preserves source order; the merge re-sorts, so feed
	// it canonical per-source order like real snapshots have.
	states[0].Nodes[0], states[0].Nodes[1] = states[0].Nodes[1], states[0].Nodes[0]

	merged := storage.MergeShardStates(states, map[model.NodeID]bool{1: true, 2: true, 3: true})
	if !merged.HasEpoch || merged.Epoch != 5 {
		t.Fatalf("merged cursor %v/%v, want 5/true", merged.Epoch, merged.HasEpoch)
	}
	if len(merged.Nodes) != 3 {
		t.Fatalf("merged %d nodes", len(merged.Nodes))
	}
	for i, want := range []model.NodeID{1, 2, 3} {
		if merged.Nodes[i].Node != want {
			t.Fatalf("node %d = %d, want %d", i, merged.Nodes[i].Node, want)
		}
	}
	// A partition with no kept nodes contributes nothing — not even its
	// cursor.
	empty := storage.MergeShardStates(states, map[model.NodeID]bool{9: true})
	if empty.HasEpoch || len(empty.Nodes) != 0 {
		t.Fatalf("empty merge: %+v", empty)
	}
	// Round-trips through the canonical codec.
	img := storage.AppendShardState(nil, merged)
	back, err := storage.DecodeShardState(img)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, storage.AppendShardState(nil, back)) {
		t.Fatal("merged state does not re-encode canonically")
	}
}
