package kspot

import (
	"testing"

	"kspot/internal/model"
	"kspot/internal/trace"
)

func TestWindowAggSourceAverages(t *testing.T) {
	base := trace.NewFixture(map[model.NodeID][]model.Value{
		1: {10, 20, 30, 40},
	})
	src := trace.WindowAgg(base, 2, model.AggAvg)
	// At epoch 3 the trailing 2-window is {30, 40} -> 35.
	if got := src.Sample(1, 3); got != 35 {
		t.Errorf("Sample(1,3) = %v, want 35", got)
	}
	// At epoch 0 the window clips to {10}.
	if got := src.Sample(1, 0); got != 10 {
		t.Errorf("Sample(1,0) = %v, want 10", got)
	}
}

func TestWindowAggSourceMinMax(t *testing.T) {
	base := trace.NewFixture(map[model.NodeID][]model.Value{
		1: {10, 50, 30},
	})
	if got := trace.WindowAgg(base, 3, model.AggMax).Sample(1, 2); got != 50 {
		t.Errorf("MAX window = %v", got)
	}
	if got := trace.WindowAgg(base, 3, model.AggMin).Sample(1, 2); got != 10 {
		t.Errorf("MIN window = %v", got)
	}
}

func TestCursorPlanAndQueryAccessors(t *testing.T) {
	sys, err := Open(DemoScenario())
	if err != nil {
		t.Fatal(err)
	}
	cur, err := sys.Post("select top 2 roomid, avg(sound) from sensors group by roomid")
	if err != nil {
		t.Fatal(err)
	}
	if cur.Plan() != "snapshot/mint" {
		t.Errorf("Plan = %q", cur.Plan())
	}
	if cur.Query() == "" {
		t.Error("empty canonical query")
	}
}

func TestFILAThroughFacade(t *testing.T) {
	// FILA requires per-node groups: build a scenario where each sensor is
	// its own cluster.
	scen := DemoScenario()
	for i := range scen.Nodes {
		scen.Nodes[i].Cluster = scen.Nodes[i].ID
	}
	scen.Clusters = nil
	for _, n := range scen.Nodes {
		scen.Clusters = append(scen.Clusters, clusterFor(n.ID))
	}
	sys, err := Open(scen)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := sys.PostWith("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid", AlgoFILA)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cur.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("fila answers = %v", res.Answers)
	}

	// And it must refuse cluster groupings.
	sysC, _ := Open(DemoScenario())
	if _, err := sysC.PostWith("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid", AlgoFILA); err == nil {
		t.Fatal("FILA accepted multi-member clusters")
	}
}

func clusterFor(id uint16) Cluster { return Cluster{ID: id} }
