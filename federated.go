package kspot

// Remote federation: a PR 4/5 federated deployment as N+1 real processes.
// Each shard runs inside its own kspotd -serve-shard process (or any
// wire.Server host) on its own substrate; OpenFederated dials them and
// builds a coordinator-only System whose cursors speak the framed TCP
// protocol instead of calling into in-process shard networks. Everything
// above the transport is unchanged — the same fed.Merger two-phase
// snapshot merge and fed.HistoricMerger threshold round run at this
// coordinator, on shard answers that crossed a socket instead of a struct
// boundary — so answers and coordinator-tier counters stay byte-identical
// to the in-process federated run, which is itself pinned byte-identical
// to the flat run.

import (
	"fmt"
	"slices"
	"time"

	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/query"
	"kspot/internal/stats"
	"kspot/internal/topk/fed"
	"kspot/internal/wire"
)

// WithWireTimeout bounds each remote shard call attempt (default 10s).
// Applies to OpenFederated only.
func WithWireTimeout(call time.Duration) OpenOption {
	return func(c *openConfig) { c.wireCall = call }
}

// WithWireRetry sets the per-call retry budget of a remote deployment:
// retries re-attempts after the first (default 4), sleeping backoff
// before the first retry and doubling it per attempt (default 50ms).
// Retries are safe at any setting — the shard executes each call at most
// once regardless of how many frames the socket loses. Applies to
// OpenFederated only.
func WithWireRetry(retries int, backoff time.Duration) OpenOption {
	return func(c *openConfig) {
		c.wireRetries = retries
		c.wireBackoff = backoff
	}
}

// withWireFaults arms deterministic frame faults on every shard
// connection — the conformance tests degrade the socket path and assert
// answers do not change. Unexported: real deployments get their faults
// from real networks.
func withWireFaults(f wire.Faults) OpenOption {
	return func(c *openConfig) { c.wireFaults = &f }
}

// withWireLegacy withholds the epoch-round capability from every shard
// handshake, forcing the per-call protocol — the conformance tests pin the
// batched round byte-identical to it. Unexported: real deployments
// negotiate the best protocol both ends speak.
func withWireLegacy() OpenOption {
	return func(c *openConfig) { c.wireLegacy = true }
}

// OpenFederated opens a scenario whose shards are already running as
// remote processes: addrs[i] is shard i's wire address, index-aligned
// with the scenario's shard list (a flat scenario takes one address). The
// scenario must be the same flat scenario every shard server was started
// with — the handshake verifies name, shard count and per-shard node
// counts, so a version- or deployment-skewed shard fails Open instead of
// corrupting an epoch stream.
//
// The returned System is coordinator-only: it holds no local networks
// (Network returns nil, traffic panels fetch per-shard counters over the
// wire) and its queries run on the deterministic epoch clock of each
// cursor, exactly like the in-process deterministic substrate. WithLive
// and WithFaults do not apply — substrate and fault environment are the
// shard processes' own configuration. Close drops every shard connection;
// an unreachable shard surfaces on the cursor that steps into it, tagged
// with the shard's name, without wedging other queries.
func OpenFederated(s *Scenario, addrs []string, opts ...OpenOption) (*System, error) {
	var cfg openConfig
	for _, o := range opts {
		o(&cfg)
	}
	shardScens, err := s.ShardScenarios()
	if err != nil {
		return nil, err
	}
	if len(addrs) != len(shardScens) {
		return nil, fmt.Errorf("kspot: %d shard addresses for a %d-shard scenario", len(addrs), len(shardScens))
	}
	sys := &System{
		scenario:   s,
		shardScens: shardScens,
		schema:     query.DefaultSchema(),
		fedStats:   &fed.Stats{},
		groupCaps:  make(map[string]int),
		remoteKeys: make(map[string]*remoteKeyState),
	}
	if cfg.admission != nil {
		sys.admission = engine.NewAdmission(*cfg.admission)
	}
	sys.wireCfg = cfg
	clients, deps, err := dialShards(s, shardScens, addrs, cfg)
	if err != nil {
		return nil, err
	}
	sys.remotes = clients
	sys.rcoord = engine.NewRemoteCoordinator(deps...)
	return sys, nil
}

// dialShards dials every shard of a sharded scenario, returning the wire
// clients and their deployments index-aligned with addrs. On any dial
// failure the already-open clients close and the error returns.
func dialShards(s *Scenario, shardScens []*Scenario, addrs []string, cfg openConfig) ([]*wire.Client, []*engine.RemoteDeployment, error) {
	clients := make([]*wire.Client, 0, len(addrs))
	deps := make([]*engine.RemoteDeployment, len(addrs))
	for i, addr := range addrs {
		// The shard's sensor roster, ascending — the positional frame of
		// reference both ends derive from the same scenario, letting epoch
		// readings cross as a bitmap + delta vector instead of keyed records.
		roster := make([]model.NodeID, 0, len(shardScens[i].Nodes))
		for _, n := range shardScens[i].Nodes {
			roster = append(roster, model.NodeID(n.ID))
		}
		slices.Sort(roster)
		cl, err := wire.Dial(wire.ClientConfig{
			Addr:              addr,
			Scenario:          s.Name,
			Shard:             i,
			Shards:            len(shardScens),
			Nodes:             len(shardScens[i].Nodes),
			Roster:            roster,
			DisableEpochRound: cfg.wireLegacy,
			CallTimeout:       cfg.wireCall,
			Retries:           cfg.wireRetries,
			Backoff:           cfg.wireBackoff,
			Faults:            cfg.wireFaults,
		})
		if err != nil {
			for _, prev := range clients {
				prev.Close()
			}
			return nil, nil, err
		}
		clients = append(clients, cl)
		deps[i] = engine.NewRemoteDeployment(s.ShardName(i), cl)
	}
	return clients, deps, nil
}

// Remote reports whether this System coordinates remote shard processes.
func (s *System) Remote() bool { return s.rcoord != nil }

// remoteClients snapshots the shard client slice under groupMu — the slice
// is swapped wholesale by a live re-sharding, so readers outside the group
// lock must copy it rather than range s.remotes directly.
func (s *System) remoteClients() []*wire.Client {
	s.groupMu.Lock()
	defer s.groupMu.Unlock()
	return append([]*wire.Client(nil), s.remotes...)
}

// WireMetrics snapshots every shard connection's RTT/traffic accounting
// (calls, epoch rounds, retries, p50/p99 latency, bytes both ways), in
// shard order. Nil on a non-remote System — local shards have no wire.
func (s *System) WireMetrics() []wire.ClientMetrics {
	if !s.Remote() {
		return nil
	}
	remotes := s.remoteClients()
	out := make([]wire.ClientMetrics, 0, len(remotes))
	for _, cl := range remotes {
		out = append(out, cl.Metrics())
	}
	return out
}

// nextQueryID allocates a deployment-unique id for a remote query or
// historic execution.
func (s *System) nextQueryID() uint32 { return s.qidSeq.Add(1) }

// ShardStats returns every shard's traffic/energy counters, in shard
// order — read from the local networks, or fetched over the wire on a
// remote deployment (where a dead shard surfaces as the error).
func (s *System) ShardStats() ([]RunStats, error) {
	if s.Remote() {
		remotes := s.remoteClients()
		rows := make([]RunStats, 0, len(remotes))
		for _, cl := range remotes {
			row, err := cl.Stats()
			if err != nil {
				return nil, err
			}
			rows = append(rows, RunStats(row))
		}
		return rows, nil
	}
	rows := make([]RunStats, 0, len(s.nets))
	for i, net := range s.nets {
		rows = append(rows, RunStats(stats.Collect(s.scenario.ShardName(i), net, 0)))
	}
	return rows, nil
}

// shardStatRows is ShardStats in the stats package's own type, for panels.
func (s *System) shardStatRows() ([]stats.RunStats, error) {
	rows, err := s.ShardStats()
	if err != nil {
		return nil, err
	}
	out := make([]stats.RunStats, len(rows))
	for i, r := range rows {
		out[i] = stats.RunStats(r)
	}
	return out, nil
}
