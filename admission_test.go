package kspot

import (
	"errors"
	"testing"
)

const admissionSQL = "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid EPOCH DURATION 1 min"

func openAdmitted(t *testing.T, cfg AdmissionConfig) *System {
	t.Helper()
	sys, err := Open(DemoScenario(), WithAdmission(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestAdmissionGlobalLimit pins the typed rejection of the global cap: the
// post over the limit surfaces *AdmissionError (errors.As, Kind "global")
// and consumes nothing — a close frees the slot for the next tenant.
func TestAdmissionGlobalLimit(t *testing.T) {
	sys := openAdmitted(t, AdmissionConfig{MaxQueries: 2})
	defer sys.Close()

	a, err := sys.Post(admissionSQL, WithTenant("a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.Post(admissionSQL, WithTenant("b"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Post(admissionSQL, WithTenant("c"))
	var adm *AdmissionError
	if !errors.As(err, &adm) {
		t.Fatalf("post over limit: got %v, want *AdmissionError", err)
	}
	if adm.Kind != "global" || adm.Limit != 2 || adm.Tenant != "c" {
		t.Fatalf("rejection = %+v, want global/2/c", adm)
	}
	if total, _ := sys.AdmissionLoad(); total != 2 {
		t.Fatalf("load after rejection = %d, want 2", total)
	}

	// Closing a cursor frees its slot; the same post now lands.
	a.Close()
	if total, per := sys.AdmissionLoad(); total != 1 || per["a"] != 0 {
		t.Fatalf("load after close = %d %v, want 1 and no tenant a", total, per)
	}
	c, err := sys.Post(admissionSQL, WithTenant("c"))
	if err != nil {
		t.Fatalf("post after freed slot: %v", err)
	}
	c.Close()
	b.Close()
	if total, per := sys.AdmissionLoad(); total != 0 || len(per) != 0 {
		t.Fatalf("load after all closed = %d %v, want empty", total, per)
	}
}

// TestAdmissionTenantQuota pins the per-tenant axis: one tenant at quota is
// rejected with Kind "tenant" while other tenants keep being admitted.
func TestAdmissionTenantQuota(t *testing.T) {
	sys := openAdmitted(t, AdmissionConfig{TenantQuota: 1})
	defer sys.Close()

	if _, err := sys.Post(admissionSQL, WithTenant("a")); err != nil {
		t.Fatal(err)
	}
	_, err := sys.Post(admissionSQL, WithTenant("a"))
	var adm *AdmissionError
	if !errors.As(err, &adm) {
		t.Fatalf("tenant over quota: got %v, want *AdmissionError", err)
	}
	if adm.Kind != "tenant" || adm.Limit != 1 || adm.Tenant != "a" {
		t.Fatalf("rejection = %+v, want tenant/1/a", adm)
	}
	if _, err := sys.Post(admissionSQL, WithTenant("b")); err != nil {
		t.Fatalf("other tenant must still be admitted: %v", err)
	}
}

// TestAdmissionRunningCursorsUndisturbed pins that a rejected post touches
// nothing: a cursor stepping before the rejection keeps producing the same
// stream afterwards as an identical run that never saw the rejected post.
func TestAdmissionRunningCursorsUndisturbed(t *testing.T) {
	control, err := Open(DemoScenario())
	if err != nil {
		t.Fatal(err)
	}
	defer control.Close()
	want, err := control.Post(admissionSQL)
	if err != nil {
		t.Fatal(err)
	}

	sys := openAdmitted(t, AdmissionConfig{MaxQueries: 1})
	defer sys.Close()
	got, err := sys.Post(admissionSQL)
	if err != nil {
		t.Fatal(err)
	}

	step := func(c *Cursor) StepResult {
		res, err := c.Step()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	stepEqualByteIdentical(t, "pre-rejection", []StepResult{step(got)}, []StepResult{step(want)})

	if _, err := sys.Post(admissionSQL, WithTenant("late")); err == nil {
		t.Fatal("second post must be rejected at MaxQueries 1")
	}
	for i := 0; i < 2; i++ {
		stepEqualByteIdentical(t, "post-rejection", []StepResult{step(got)}, []StepResult{step(want)})
	}
}

// TestAdmissionCloseAfterRejectedPost pins the teardown path: rejecting a
// post and then closing the System must neither deadlock nor leave a slot
// accounted (the rejected post reserved nothing to leak).
func TestAdmissionCloseAfterRejectedPost(t *testing.T) {
	sys := openAdmitted(t, AdmissionConfig{MaxQueries: 1})
	cur, err := sys.Post(admissionSQL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Post(admissionSQL); err == nil {
		t.Fatal("over-limit post must be rejected")
	}
	if _, err := cur.Step(); err != nil {
		t.Fatal(err)
	}
	sys.Close() // must return; the -race leg of the suite guards the rest
	if total, _ := sys.AdmissionLoad(); total != 1 {
		t.Fatalf("load after close = %d, want the still-open cursor's 1", total)
	}
	cur.Close()
	if total, _ := sys.AdmissionLoad(); total != 0 {
		t.Fatal("cursor close after system close must still release its slot")
	}
}

// TestAdmissionParseErrorConsumesNoSlot pins error ordering: a malformed
// query is a syntax error, never a consumed slot and never an
// *AdmissionError — even when the system is already at capacity.
func TestAdmissionParseErrorConsumesNoSlot(t *testing.T) {
	sys := openAdmitted(t, AdmissionConfig{MaxQueries: 1})
	defer sys.Close()

	var adm *AdmissionError
	_, err := sys.Post("SELECT TOP banana FROM sensors")
	if err == nil || errors.As(err, &adm) {
		t.Fatalf("malformed query: got %v, want a parse error", err)
	}
	if total, _ := sys.AdmissionLoad(); total != 0 {
		t.Fatalf("load after parse error = %d, want 0", total)
	}
	// The slot the parse error did not consume is still available.
	if _, err := sys.Post(admissionSQL); err != nil {
		t.Fatalf("post after parse error: %v", err)
	}
	// At capacity, a malformed post still reports syntax, not admission:
	// parsing runs first, so authors of broken queries see the real cause.
	_, err = sys.Post("SELECT TOP banana FROM sensors")
	if err == nil || errors.As(err, &adm) {
		t.Fatalf("malformed query at capacity: got %v, want a parse error", err)
	}
}
