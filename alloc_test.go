package kspot

import (
	"testing"

	"kspot/internal/bench"
	"kspot/internal/model"
	"kspot/internal/topk"
	"kspot/internal/topk/mint"
	"kspot/internal/topk/tag"
)

// mintEpochAllocCeiling bounds the allocations one steady-state MINT epoch
// may perform on the standard 64-node / 16-cluster deployment. The pre-PR3
// hot path allocated ~1100 times per epoch (a fresh map-backed view per
// node per sweep, per-call codec buffers); the pooled views, reusable sweep
// scratch and caller-buffer codec brought it to ~26. The ceiling leaves
// headroom for recovery-round variance while still catching any return of
// per-node allocation (which costs O(nodes) ≈ 64+ per epoch at this size).
const mintEpochAllocCeiling = 150

// TestMintEpochAllocationCeiling is the end-to-end allocation regression
// test: sensing + one full MINT epoch (beacon, pruned sweep, ranking) on
// the deterministic substrate must stay under the ceiling.
func TestMintEpochAllocationCeiling(t *testing.T) {
	allocs := measureEpochAllocs(t, mint.New())
	if allocs > mintEpochAllocCeiling {
		t.Errorf("MINT epoch allocates %.0f times, ceiling %d (pre-PR3: ~1100)", allocs, mintEpochAllocCeiling)
	}
}

// TestTagEpochAllocationCeiling pins the TAG baseline too — it shares the
// sweep machinery, so a transport-level regression shows up here even if
// MINT's pruning happens to mask it.
func TestTagEpochAllocationCeiling(t *testing.T) {
	allocs := measureEpochAllocs(t, tag.New())
	if allocs > mintEpochAllocCeiling {
		t.Errorf("TAG epoch allocates %.0f times, ceiling %d (pre-PR3: ~717)", allocs, mintEpochAllocCeiling)
	}
}

func measureEpochAllocs(t *testing.T, op topk.SnapshotOperator) float64 {
	t.Helper()
	net, src, q, err := bench.StandardDeployment()
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Attach(net, q); err != nil {
		t.Fatal(err)
	}
	// Warm-up: creation phase plus a few steady epochs so every reusable
	// buffer (sweep scratch, pooled views, answer slices) reaches capacity.
	e := model.Epoch(0)
	step := func() {
		readings := topk.SenseEpoch(net, src, e)
		if _, err := op.Epoch(e, readings); err != nil {
			t.Fatal(err)
		}
		e++
	}
	for i := 0; i < 8; i++ {
		step()
	}
	return testing.AllocsPerRun(50, step)
}
