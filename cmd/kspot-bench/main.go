// Command kspot-bench regenerates the reproduction's experiments (the
// tables and figures indexed in DESIGN.md and recorded in EXPERIMENTS.md).
//
// Usage:
//
//	kspot-bench -list             # list experiments
//	kspot-bench -exp e3           # run one experiment
//	kspot-bench -exp all          # run everything (the default)
//	kspot-bench -exp e7 -scale .2 # quick run at reduced size
//
// Benchmark trajectory (machine-readable, see BENCH_PR5.json, which
// carries the PR 3-4 trajectory forward):
//
//	kspot-bench -json -scale 0.1            # measure and merge into BENCH_PR5.json
//	kspot-bench -json -json-run pr6         # record under a new run name
//	kspot-bench -json -json-out other.json  # write elsewhere
//
// -json measures the hot-path micro-benchmarks (ns/op, allocs/op, tx_bytes
// and messages per epoch) plus one timed pass of every experiment, and
// merges the result into the trajectory file without disturbing runs
// recorded by earlier PRs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"kspot/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (e1..e14) or 'all'")
		list     = flag.Bool("list", false, "list experiments and exit")
		scale    = flag.Float64("scale", 1.0, "size scale factor in (0,1], for quick runs")
		emitJSON = flag.Bool("json", false, "measure benchmarks and merge into the JSON trajectory file")
		jsonOut  = flag.String("json-out", "BENCH_PR5.json", "trajectory file -json writes")
		jsonRun  = flag.String("json-run", "pr5", "run name -json records the measurement under")
	)
	flag.Parse()

	if *emitJSON {
		cfg := bench.RunConfig{Scale: *scale}
		if err := bench.WriteJSON(os.Stdout, *jsonOut, *jsonRun, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "kspot-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote run %q (scale %v) to %s\n", *jsonRun, *scale, *jsonOut)
		return
	}
	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return
	}
	cfg := bench.RunConfig{Scale: *scale}

	run := func(e bench.Experiment) error {
		start := time.Now()
		fmt.Printf("## %s — %s\n", e.ID, e.Title)
		if err := e.Run(os.Stdout, cfg); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if *exp == "all" {
		for _, e := range bench.All() {
			if err := run(e); err != nil {
				fmt.Fprintln(os.Stderr, "kspot-bench:", err)
				os.Exit(1)
			}
		}
		return
	}
	e, ok := bench.Get(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "kspot-bench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	if err := run(e); err != nil {
		fmt.Fprintln(os.Stderr, "kspot-bench:", err)
		os.Exit(1)
	}
}
