// Command kspot-bench regenerates the reproduction's experiments (the
// tables and figures indexed in DESIGN.md and recorded in EXPERIMENTS.md).
//
// Usage:
//
//	kspot-bench -list             # list experiments
//	kspot-bench -exp e3           # run one experiment
//	kspot-bench -exp all          # run everything (the default)
//	kspot-bench -exp e7 -scale .2 # quick run at reduced size
//
// Benchmark trajectory (machine-readable, see BENCH_PR10.json, which
// carries the PR 3-9 trajectory forward; PR 7 — the wire transport —
// recorded no trajectory run, so the file jumps from pr6 to pr8; PR 9
// added the wire-epoch-* rounds_per_epoch / wire_bytes_per_epoch entries;
// PR 10 adds store-recovery (recovery_ms) and reshard-downtime
// (resharding_downtime_epochs) for the durable tier):
//
//	kspot-bench -json -scale 0.1            # measure and merge into BENCH_PR10.json
//	kspot-bench -json -json-run pr11        # record under a new run name
//	kspot-bench -json -json-out other.json  # write elsewhere
//	kspot-bench -json -parallel 8           # add the parallel-sweep speedup leg
//
// -json measures the hot-path micro-benchmarks (ns/op, allocs/op, tx_bytes
// and messages per epoch), the µs-per-node-per-epoch scale series (the big
// sizes are gated on -scale; -parallel > 1 adds the parallel-vs-sequential
// speedup entry) plus one timed pass of every experiment, and merges the
// result into the trajectory file without disturbing runs recorded by
// earlier PRs.
//
// Profiling the harness itself:
//
//	kspot-bench -exp e5 -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"kspot/internal/bench"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id (e1..e14) or 'all'")
		list       = flag.Bool("list", false, "list experiments and exit")
		scale      = flag.Float64("scale", 1.0, "size scale factor in (0,1], for quick runs")
		parallel   = flag.Int("parallel", 1, "epoch-sweep worker bound of the parallel benchmark leg; 1 = sequential measurements only")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile after the run to this file")
		emitJSON   = flag.Bool("json", false, "measure benchmarks and merge into the JSON trajectory file")
		jsonOut    = flag.String("json-out", "BENCH_PR10.json", "trajectory file -json writes")
		jsonRun    = flag.String("json-run", "pr10", "run name -json records the measurement under")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
		}()
	}

	cfg := bench.RunConfig{Scale: *scale, Parallel: *parallel}
	if *emitJSON {
		if err := bench.WriteJSON(os.Stdout, *jsonOut, *jsonRun, cfg); err != nil {
			fail(err)
		}
		fmt.Printf("wrote run %q (scale %v, parallel %d) to %s\n", *jsonRun, *scale, *parallel, *jsonOut)
		return
	}
	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return
	}

	run := func(e bench.Experiment) error {
		start := time.Now()
		fmt.Printf("## %s — %s\n", e.ID, e.Title)
		if err := e.Run(os.Stdout, cfg); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if *exp == "all" {
		for _, e := range bench.All() {
			if err := run(e); err != nil {
				fail(err)
			}
		}
		return
	}
	e, ok := bench.Get(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "kspot-bench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	if err := run(e); err != nil {
		fail(err)
	}
}

// fail prints the error and exits. Deferred profile writers do not run on
// this path — a failed run's profiles would be misleading anyway.
func fail(err error) {
	fmt.Fprintln(os.Stderr, "kspot-bench:", err)
	os.Exit(1)
}
