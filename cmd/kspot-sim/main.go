// Command kspot-sim runs a KSpot query against a scenario and prints the
// live ranking, the Display Panel and the System Panel — the demo of the
// paper's §IV, in a terminal.
//
// Usage:
//
//	kspot-sim                                  # built-in Figure-3 demo
//	kspot-sim -scenario demo.json -epochs 30
//	kspot-sim -query "SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid"
//	kspot-sim -algo tag                        # pin a baseline
//	kspot-sim -emit demo.json                  # write the built-in scenario out
package main

import (
	"flag"
	"fmt"
	"os"

	"kspot"
)

func main() {
	var (
		scenarioPath = flag.String("scenario", "", "scenario JSON (default: built-in Figure-3 demo)")
		queryText    = flag.String("query", "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid EPOCH DURATION 1 min", "query to post")
		epochs       = flag.Int("epochs", 20, "epochs to run (continuous queries)")
		algo         = flag.String("algo", "", "pin algorithm: mint|tag|naive|central|tja|tput")
		emit         = flag.String("emit", "", "write the selected scenario to this file and exit")
		panelEvery   = flag.Int("panel", 5, "render the display panel every N epochs (0 = final only)")
	)
	flag.Parse()

	scen := kspot.DemoScenario()
	if *scenarioPath != "" {
		loaded, err := kspot.OpenFile(*scenarioPath)
		if err != nil {
			fail(err)
		}
		scen = loaded.Scenario()
	}
	if *emit != "" {
		if err := scen.Save(*emit); err != nil {
			fail(err)
		}
		fmt.Printf("wrote scenario %q to %s\n", scen.Name, *emit)
		return
	}

	sys, err := kspot.Open(scen)
	if err != nil {
		fail(err)
	}
	cur, err := sys.PostWith(*queryText, kspot.Algorithm(*algo))
	if err != nil {
		fail(err)
	}
	fmt.Printf("scenario: %s (%d sensors)\nquery   : %s\nplan    : %s\n\n",
		scen.Name, len(scen.Nodes), cur.Query(), cur.Plan())

	if !cur.Continuous() {
		answers, err := cur.Run()
		if err != nil {
			fail(err)
		}
		fmt.Println("historic answers (window offset, score):")
		for i, a := range answers {
			fmt.Printf("  %2d. t=%-6d %.2f\n", i+1, a.Group, a.Score)
		}
		fmt.Println()
		fmt.Print(sys.SystemPanel(nil))
		return
	}

	var last kspot.Answer
	_ = last
	var lastAnswers []kspot.Answer
	for i := 0; i < *epochs; i++ {
		res, err := cur.Step()
		if err != nil {
			fail(err)
		}
		lastAnswers = res.Answers
		fmt.Printf("epoch %3d: %s\n", res.Epoch, sys.RankingStrip(res.Answers))
		if *panelEvery > 0 && (i+1)%*panelEvery == 0 {
			fmt.Print(sys.DisplayPanel(res.Answers, 72, 18))
		}
	}
	if *panelEvery == 0 {
		fmt.Print(sys.DisplayPanel(lastAnswers, 72, 18))
	}
	fmt.Println()
	fmt.Print(sys.SystemPanel(nil))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "kspot-sim:", err)
	os.Exit(1)
}
