// Command kspot-sim runs a KSpot query against a scenario and prints the
// live ranking, the Display Panel and the System Panel — the demo of the
// paper's §IV, in a terminal.
//
// Usage:
//
//	kspot-sim                                  # built-in Figure-3 demo
//	kspot-sim -scenario demo.json -epochs 30
//	kspot-sim -query "SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid"
//	kspot-sim -algo tag                        # pin a baseline
//	kspot-sim -emit demo.json                  # write the built-in scenario out
//	kspot-sim -gen-scale 1000 -emit scenarios/scale-1000.json
//	                                           # regenerate a scale-* scenario
//	kspot-sim -shards 2                        # federate: split the cluster
//	                                           # field into 2 shard networks
//	kspot-sim -gen-scale 1000 -shards 4        # generate + run the sharded
//	                                           # scale deployment
//
// Fault injection (see scenarios/README.md; flags override a scenario's
// faults block):
//
//	kspot-sim -loss 0.1 -fault-seed 7          # 10% deterministic frame loss
//	kspot-sim -burst 0.05,0.3,0.6              # Gilbert-Elliott fades
//	kspot-sim -churn 4@10:20 -churn 7@15       # node 4 dies at 10, revives at 20
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"kspot"
)

// churnFlags collects repeatable -churn values: "node@down" kills the node
// at epoch down forever, "node@down:up" revives it at epoch up.
type churnFlags []kspot.ChurnEvent

func (c *churnFlags) String() string { return fmt.Sprint(*c) }

func (c *churnFlags) Set(s string) error {
	node, spans, ok := strings.Cut(s, "@")
	if !ok {
		return fmt.Errorf("churn %q: want node@epoch or node@down:up", s)
	}
	id, err := strconv.ParseUint(node, 10, 16)
	if err != nil {
		return fmt.Errorf("churn %q: bad node id: %v", s, err)
	}
	down, up, revives := strings.Cut(spans, ":")
	de, err := strconv.ParseUint(down, 10, 32)
	if err != nil {
		return fmt.Errorf("churn %q: bad death epoch: %v", s, err)
	}
	*c = append(*c, kspot.ChurnEvent{Node: kspot.NodeID(id), Epoch: kspot.Epoch(de), Down: true})
	if revives {
		ue, err := strconv.ParseUint(up, 10, 32)
		if err != nil {
			return fmt.Errorf("churn %q: bad revival epoch: %v", s, err)
		}
		if ue <= de {
			return fmt.Errorf("churn %q: revival epoch %d must come after death epoch %d", s, ue, de)
		}
		*c = append(*c, kspot.ChurnEvent{Node: kspot.NodeID(id), Epoch: kspot.Epoch(ue), Down: false})
	}
	return nil
}

// parseBurst parses "pGoodBad,pBadGood,lossBad[,lossGood]".
func parseBurst(s string) (*kspot.BurstLossSpec, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 && len(parts) != 4 {
		return nil, fmt.Errorf("burst %q: want pGoodBad,pBadGood,lossBad[,lossGood]", s)
	}
	vals := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("burst %q: %v", s, err)
		}
		vals[i] = v
	}
	spec := &kspot.BurstLossSpec{PGoodBad: vals[0], PBadGood: vals[1], LossBad: vals[2]}
	if len(vals) == 4 {
		spec.LossGood = vals[3]
	}
	return spec, nil
}

func main() {
	var churn churnFlags
	var (
		scenarioPath = flag.String("scenario", "", "scenario JSON (default: built-in Figure-3 demo)")
		queryText    = flag.String("query", "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid EPOCH DURATION 1 min", "query to post")
		epochs       = flag.Int("epochs", 20, "epochs to run (continuous queries)")
		algo         = flag.String("algo", "", "pin algorithm: mint|tag|naive|central|tja|tput")
		emit         = flag.String("emit", "", "write the selected scenario to this file and exit")
		panelEvery   = flag.Int("panel", 5, "render the display panel every N epochs (0 = final only)")
		lossP        = flag.Float64("loss", 0, "deterministic Bernoulli per-frame loss probability [0,1)")
		burstSpec    = flag.String("burst", "", "Gilbert-Elliott loss: pGoodBad,pBadGood,lossBad[,lossGood]")
		dupP         = flag.Float64("dup", 0, "frame duplication probability [0,1)")
		delayP       = flag.Float64("delay", 0, "frame delay probability [0,1)")
		faultSeed    = flag.Int64("fault-seed", 0, "seed for the fault environment")
		genScale     = flag.Int("gen-scale", 0, "generate the scale-<n> scenario (n sensors, multiple of 20) instead of loading one; use with -emit")
		shards       = flag.Int("shards", 0, "federate the deployment into N shard networks (splits the cluster list; with -gen-scale, validates every shard deploys)")
		parallel     = flag.Int("parallel", runtime.NumCPU(), "epoch-sweep worker bound per shard; 1 = exact legacy sequential path (results are byte-identical for every value)")
	)
	flag.Var(&churn, "churn", "node churn: node@epoch (die) or node@down:up (die and revive); repeatable")
	flag.Parse()

	scen := kspot.DemoScenario()
	if *genScale > 0 {
		if *scenarioPath != "" {
			fail(fmt.Errorf("-gen-scale and -scenario are mutually exclusive"))
		}
		var (
			gen *kspot.Scenario
			err error
		)
		if *shards > 1 {
			// The generator validates every shard subfield deploys, so a
			// sharded scale scenario is never emitted (or run) broken.
			gen, err = kspot.ScaleScenarioShards(*genScale, *shards)
		} else {
			gen, err = kspot.ScaleScenario(*genScale)
		}
		if err != nil {
			fail(err)
		}
		scen = gen
	}
	if *scenarioPath != "" {
		loaded, err := kspot.OpenFile(*scenarioPath)
		if err != nil {
			fail(err)
		}
		scen = loaded.Scenario()
	}
	if *shards > 0 && *genScale == 0 {
		if err := scen.AutoShard(*shards); err != nil {
			fail(err)
		}
	}
	switch {
	case *lossP > 0 || *burstSpec != "" || *dupP > 0 || *delayP > 0 || len(churn) > 0:
		cfg := &kspot.FaultConfig{Seed: *faultSeed, Loss: *lossP, Duplicate: *dupP, Delay: *delayP, Churn: churn}
		if *burstSpec != "" {
			spec, err := parseBurst(*burstSpec)
			if err != nil {
				fail(err)
			}
			cfg.Burst = spec
		}
		scen.Faults = cfg // flags override the scenario's faults block
	case *faultSeed != 0:
		// Re-seed the scenario's own fault environment; a bare -fault-seed
		// with nothing to seed would be silently ignored, so reject it.
		if scen.Faults == nil {
			fail(fmt.Errorf("-fault-seed %d has no effect: no fault flags given and the scenario has no faults block", *faultSeed))
		}
		scen.Faults.Seed = *faultSeed
	}
	if *emit != "" {
		if err := scen.Save(*emit); err != nil {
			fail(err)
		}
		fmt.Printf("wrote scenario %q to %s\n", scen.Name, *emit)
		return
	}

	sys, err := kspot.Open(scen, kspot.WithParallel(*parallel))
	if err != nil {
		fail(err)
	}
	cur, err := sys.PostWith(*queryText, kspot.Algorithm(*algo))
	if err != nil {
		fail(err)
	}
	fmt.Printf("scenario: %s (%d sensors)\nquery   : %s\nplan    : %s\n",
		scen.Name, len(scen.Nodes), cur.Query(), cur.Plan())
	if sys.Shards() > 1 {
		fmt.Printf("shards  : %d networks, top-k merged at the coordinator tier (per-shard fault seeds derive from -fault-seed)\n", sys.Shards())
	}
	if scen.Faults.Enabled() {
		fmt.Printf("faults  : seed=%d loss=%v burst=%v dup=%v delay=%v churn=%d events\n",
			scen.Faults.Seed, scen.Faults.Loss, scen.Faults.Burst != nil,
			scen.Faults.Duplicate, scen.Faults.Delay, len(scen.Faults.Churn))
	}
	fmt.Println()

	if !cur.Continuous() {
		answers, err := cur.Run()
		if err != nil {
			fail(err)
		}
		fmt.Println("historic answers (window offset, score):")
		for i, a := range answers {
			fmt.Printf("  %2d. t=%-6d %.2f\n", i+1, a.Group, a.Score)
		}
		if sys.Shards() > 1 {
			// The historic merge is a two-phase threshold round per run:
			// surface its coordinator-tier anatomy next to the answers.
			f := sys.FederationStats()
			fmt.Printf("federated historic merge: %d shard reports, %d targeted fetches (%d instants), %d backhaul bytes\n",
				f.Phase1Msgs, f.Phase2Reqs, f.Fetched, f.TxBytes)
		}
		fmt.Println()
		fmt.Print(sys.SystemPanel(nil))
		return
	}

	var last kspot.Answer
	_ = last
	var lastAnswers []kspot.Answer
	for i := 0; i < *epochs; i++ {
		res, err := cur.Step()
		if err != nil {
			fail(err)
		}
		lastAnswers = res.Answers
		miss := ""
		if !res.Correct {
			miss = "   [diverged from oracle]"
		}
		fmt.Printf("epoch %3d: %s%s\n", res.Epoch, sys.RankingStrip(res.Answers), miss)
		if *panelEvery > 0 && (i+1)%*panelEvery == 0 {
			fmt.Print(sys.DisplayPanel(res.Answers, 72, 18))
		}
	}
	if *panelEvery == 0 {
		fmt.Print(sys.DisplayPanel(lastAnswers, 72, 18))
	}
	fmt.Println()
	fmt.Print(sys.SystemPanel(nil))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "kspot-sim:", err)
	os.Exit(1)
}
