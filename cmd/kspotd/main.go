// Command kspotd serves the KSpot GUI over HTTP: the Display Panel with
// live KSpot bullets, the ranking strip and the System Panel, refreshed as
// the concurrent live deployment advances epochs — the web-era stand-in
// for the paper's projector at the conference site.
//
// The daemon posts its queries on the live substrate (one goroutine per
// sensor node, see internal/engine): every posted query shares one epoch
// sweep, so extra -query flags cost beacons and views, not extra sensing.
//
// Usage:
//
//	kspotd -addr :8080 -k 3 -interval 1s
//	kspotd -scenario demo.json -query "SELECT TOP 2 roomid, MAX(sound) FROM sensors GROUP BY roomid"
//
// A federated deployment can run as separate OS processes: each shard
// hosts its network in its own kspotd behind the framed TCP protocol of
// internal/wire, and one coordinator kspotd dials them (answers stay
// byte-identical to the in-process run; see DESIGN.md):
//
//	kspotd -scenario field.json -shards 4 -serve-shard 0 -wire-addr 127.0.0.1:7701
//	... (shards 1..3 likewise) ...
//	kspotd -scenario field.json -shards 4 -connect 127.0.0.1:7701,...,127.0.0.1:7704
//
// A shard server prints "kspotd-wire <addr>" on stdout once it listens
// (so spawners can pass -wire-addr 127.0.0.1:0 and parse the port).
//
// The daemon is multi-tenant: -queries-file loads a workload at boot
// (validated in full before any query arms), POST /query admits new
// queries at runtime against -max-queries / -tenant-quota limits, and
// GET /watch?query=N streams a query's per-epoch results over SSE — any
// number of subscribers ride one cursor, and any number of same-signature
// queries ride one in-network acquisition.
//
// Endpoints:
//
//	/         HTML dashboard (auto-refreshing)
//	/panel    text display panel
//	/ranking  one-line ranking strip
//	/stats    JSON traffic statistics
//	/query    POST SQL (body or q= form value; X-KSpot-Tenant attributes it)
//	/watch    GET ?query=N: per-epoch results as Server-Sent Events
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"html"
	"io"
	"log"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"kspot"
	"kspot/internal/config"
	"kspot/internal/gui"
	"kspot/internal/model"
	"kspot/internal/query"
	"kspot/internal/serve"
	"kspot/internal/wire"
)

type queryList []string

func (q *queryList) String() string { return fmt.Sprint(*q) }
func (q *queryList) Set(s string) error {
	*q = append(*q, s)
	return nil
}

type state struct {
	mu       sync.Mutex
	epoch    model.Epoch
	answers  []model.Answer
	messages int
	txBytes  int
	drops    int
}

// workload is the daemon's mutable query set: the boot-time cursors plus
// anything POST /query admits later, each paired with its streaming hub.
// The step loop snapshots it per tick, so posts land between epochs.
type workload struct {
	mu      sync.Mutex
	sys     *kspot.System
	opts    []kspot.PostOption
	cursors []*kspot.Cursor
	hubs    []*serve.Hub
	stopped bool
}

// add posts a query and registers its streaming hub, returning its index.
func (w *workload) add(sql, tenant string) (int, error) {
	opts := w.opts
	if tenant != "" {
		opts = append(append([]kspot.PostOption(nil), opts...), kspot.WithTenant(tenant))
	}
	cur, err := w.sys.Post(sql, opts...)
	if err != nil {
		return 0, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.stopped {
		// The epoch loop already ended (-epochs ran out or a step failed):
		// a cursor posted now would never step, so refuse it.
		cur.Close()
		return 0, fmt.Errorf("kspotd: epoch loop has stopped")
	}
	w.cursors = append(w.cursors, cur)
	w.hubs = append(w.hubs, serve.NewHub(0))
	return len(w.cursors) - 1, nil
}

// snapshot returns the current cursor and hub lists (shared backing
// arrays: entries are append-only).
func (w *workload) snapshot() ([]*kspot.Cursor, []*serve.Hub) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cursors, w.hubs
}

// hub returns query i's streaming hub.
func (w *workload) hub(i int) (*serve.Hub, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if i < 0 || i >= len(w.hubs) {
		return nil, false
	}
	return w.hubs[i], true
}

// stop ends the streams: every hub closes (subscribers drain and finish)
// and later posts are refused.
func (w *workload) stop() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.stopped = true
	for _, h := range w.hubs {
		h.Close()
	}
}

// loadQueriesFile reads one query per line, skipping blank lines and
// #-comments, and validates EVERY query against the schema before any is
// armed — a typo on line 7 fails the boot instead of serving a partial
// workload.
func loadQueriesFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var queries []string
	for i, line := range strings.Split(string(data), "\n") {
		sql := strings.TrimSpace(line)
		if sql == "" || strings.HasPrefix(sql, "#") {
			continue
		}
		if _, err := query.PlanText(sql, query.DefaultSchema()); err != nil {
			return nil, fmt.Errorf("%s:%d: %q: %v", path, i+1, sql, err)
		}
		queries = append(queries, sql)
	}
	return queries, nil
}

func main() {
	var queries queryList
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		scenarioPath = flag.String("scenario", "", "scenario JSON (default: built-in demo)")
		k            = flag.Int("k", 3, "K of the default Top-K query")
		interval     = flag.Duration("interval", time.Second, "epoch duration")
		window       = flag.Int("window", 64, "per-node history window")
		lossP        = flag.Float64("loss", 0, "deterministic Bernoulli per-frame loss probability [0,1)")
		dupP         = flag.Float64("dup", 0, "frame duplication probability [0,1)")
		delayP       = flag.Float64("delay", 0, "frame delay probability [0,1)")
		faultSeed    = flag.Int64("fault-seed", 0, "seed for the fault environment")
		shards       = flag.Int("shards", 0, "federate the deployment into N shard networks (splits the cluster list)")
		parallel     = flag.Int("parallel", runtime.NumCPU(), "epoch-sweep worker bound per shard; 1 = exact legacy sequential path (results are byte-identical for every value)")
		serveShard   = flag.Int("serve-shard", -1, "serve shard N of the scenario over the wire protocol instead of the GUI daemon (see -wire-addr)")
		wireAddr     = flag.String("wire-addr", "127.0.0.1:0", "listen address for -serve-shard (port 0 picks one; the bound address is printed as \"kspotd-wire <addr>\")")
		wireLive     = flag.Bool("wire-live", false, "with -serve-shard: host the shard on the concurrent live substrate")
		wireLegacy   = flag.Bool("wire-legacy", false, "with -serve-shard: withhold the batched epoch-round capability, speaking only the per-call protocol (mixed-version deployments)")
		connect      = flag.String("connect", "", "comma-separated shard wire addresses: run as the federated coordinator over already-running -serve-shard processes")
		queriesFile  = flag.String("queries-file", "", "file with one query per line (# comments); every line is validated before any query is armed")
		epochs       = flag.Int("epochs", 0, "stop stepping after N epochs (0 = run until shutdown); HTTP keeps serving and streams end cleanly")
		maxQueries   = flag.Int("max-queries", 0, "admission: cap on concurrently live queries (0 = unlimited)")
		tenantQuota  = flag.Int("tenant-quota", 0, "admission: per-tenant cap on live queries (0 = unlimited)")
		dataDir      = flag.String("data-dir", "", "durable historic tier: mirror each shard's windows into append-only segment files under this directory and recover them on restart (empty = in-memory only; answers are identical either way)")
	)
	flag.Var(&queries, "query", "extra SQL to post on the same deployment (repeatable)")
	flag.Parse()

	scen := kspot.DemoScenario()
	if *scenarioPath != "" {
		var err error
		scen, err = config.Load(*scenarioPath)
		if err != nil {
			log.Fatal("kspotd: ", err)
		}
	}
	switch {
	case *lossP > 0 || *dupP > 0 || *delayP > 0:
		// Flags override the scenario's faults block; richer environments
		// (bursts, churn, distance loss) come from the scenario file.
		scen.Faults = &kspot.FaultConfig{Seed: *faultSeed, Loss: *lossP, Duplicate: *dupP, Delay: *delayP}
	case *faultSeed != 0:
		if scen.Faults == nil {
			log.Fatalf("kspotd: -fault-seed %d has no effect: no fault flags given and the scenario has no faults block", *faultSeed)
		}
		scen.Faults.Seed = *faultSeed
	}
	if *shards > 0 {
		if err := scen.AutoShard(*shards); err != nil {
			log.Fatal("kspotd: ", err)
		}
	}
	if *serveShard >= 0 {
		serveShardProcess(scen, *serveShard, *wireAddr, *parallel, *wireLive, *window, *wireLegacy, *dataDir)
		return
	}
	placement := scen.Placement()
	var fileQueries []string
	if *queriesFile != "" {
		var err error
		fileQueries, err = loadQueriesFile(*queriesFile)
		if err != nil {
			log.Fatal("kspotd: ", err)
		}
	}
	var sys *kspot.System
	var err error
	remote := *connect != ""
	openOpts := []kspot.OpenOption{}
	if *maxQueries > 0 || *tenantQuota > 0 {
		openOpts = append(openOpts, kspot.WithAdmission(kspot.AdmissionConfig{MaxQueries: *maxQueries, TenantQuota: *tenantQuota}))
	}
	if remote {
		if *dataDir != "" {
			log.Fatal("kspotd: -data-dir applies to shard processes (-serve-shard) or local deployments, not the -connect coordinator")
		}
		sys, err = kspot.OpenFederated(scen, strings.Split(*connect, ","), openOpts...)
	} else {
		if *dataDir != "" {
			openOpts = append(openOpts, kspot.WithDataDir(*dataDir))
		}
		sys, err = kspot.Open(scen, append(openOpts, kspot.WithParallel(*parallel))...)
	}
	if err != nil {
		log.Fatal("kspotd: ", err)
	}
	defer sys.Close()

	// On a remote deployment the live substrate (and its windows) belongs
	// to the shard processes; the coordinator's cursors run deterministic.
	var primaryOpts, extraOpts []kspot.PostOption
	if !remote {
		primaryOpts = []kspot.PostOption{kspot.WithLive(), kspot.WithLiveWindow(*window)}
		extraOpts = []kspot.PostOption{kspot.WithLive()}
	}
	wl := &workload{sys: sys, opts: extraOpts}
	primary := fmt.Sprintf("SELECT TOP %d roomid, AVG(sound) FROM sensors GROUP BY roomid", *k)
	cur, err := sys.Post(primary, primaryOpts...)
	if err != nil {
		log.Fatal("kspotd: ", err)
	}
	wl.cursors = append(wl.cursors, cur)
	wl.hubs = append(wl.hubs, serve.NewHub(0))
	for _, sql := range append(append([]string(nil), queries...), fileQueries...) {
		if _, err := wl.add(sql, ""); err != nil {
			log.Fatalf("kspotd: %q: %v", sql, err)
		}
	}

	st := &state{}
	stop := make(chan struct{})
	go func() {
		defer wl.stop()
		ticker := time.NewTicker(*interval)
		defer ticker.Stop()
		for stepped := 0; *epochs <= 0 || stepped < *epochs; stepped++ {
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
			cursors, hubs := wl.snapshot()
			var primaryRes kspot.StepResult
			for i, c := range cursors {
				res, err := c.Step()
				if err != nil {
					log.Printf("kspotd: step: %v", err)
					return
				}
				hubs[i].Publish(serve.Result{Epoch: res.Epoch, Answers: res.Answers, Correct: res.Correct})
				if i == 0 {
					primaryRes = res
				}
			}
			// Between steps no epoch is in flight, so the shared network
			// counters are quiescent and safe to read (summed across every
			// shard on a federated deployment).
			total := sys.CaptureStats("live", 0)
			st.mu.Lock()
			st.epoch = primaryRes.Epoch
			st.answers = primaryRes.Answers
			st.messages = total.Messages
			st.txBytes = total.TxBytes
			st.drops = total.Drops
			st.mu.Unlock()
		}
		log.Printf("kspotd: epoch budget (%d) spent; streams closed, HTTP still serving", *epochs)
	}()
	defer close(stop)

	mux := http.NewServeMux()
	mux.HandleFunc("/panel", func(w http.ResponseWriter, r *http.Request) {
		st.mu.Lock()
		answers := st.answers
		st.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, gui.DisplayPanel(placement, answers, 72, 18))
	})
	mux.HandleFunc("/ranking", func(w http.ResponseWriter, r *http.Request) {
		st.mu.Lock()
		answers := st.answers
		epoch := st.epoch
		st.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "epoch %d: %s\n", epoch, gui.RankingStrip(placement, answers))
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		fed := sys.FederationStats()
		cursors, hubs := wl.snapshot()
		subs := 0
		for _, h := range hubs {
			subs += h.Subscribers()
		}
		admitted, tenants := sys.AdmissionLoad()
		st.mu.Lock()
		out := map[string]interface{}{
			"epoch":    st.epoch,
			"messages": st.messages,
			"tx_bytes": st.txBytes,
			"drops":    st.drops,
			"queries":  len(cursors),
			// Streaming/admission tier: live SSE subscribers and the
			// admission controller's load (zero without -max-queries /
			// -tenant-quota).
			"subscribers": subs,
			"admitted":    admitted,
			"tenants":     tenants,
			// Federation tier (all zero on a flat deployment): shard count
			// and the coordinator's merge/backhaul counters.
			"shards":            sys.Shards(),
			"coord_rounds":      fed.Rounds,
			"coord_phase2_reqs": fed.Phase2Reqs,
			"coord_bytes":       fed.TxBytes,
		}
		// Remote deployments add per-shard wire RTT/traffic accounting:
		// calls, epoch rounds, retries, p50/p99 latency and bytes both ways.
		if wm := sys.WireMetrics(); wm != nil {
			out["wire"] = wm
		}
		// Durable-tier storage block, in shard order: segments, bytes on
		// disk, last checkpointed epoch (all-zero without -data-dir).
		if ss, err := sys.StorageStats(); err == nil {
			out["storage"] = ss
		}
		st.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(out); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST a query (body or q= form value)", http.StatusMethodNotAllowed)
			return
		}
		// Read the body ourselves: r.FormValue would consume it as a
		// form, silently discarding raw SQL posted with curl's default
		// urlencoded content type. A body (or URL query) carrying q= is
		// a form value; anything else is the SQL itself.
		sql := r.URL.Query().Get("q")
		if sql == "" {
			body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			sql = strings.TrimSpace(string(body))
			if vals, err := url.ParseQuery(sql); err == nil && vals.Get("q") != "" {
				sql = strings.TrimSpace(vals.Get("q"))
			}
		}
		if sql == "" {
			http.Error(w, "empty query", http.StatusBadRequest)
			return
		}
		idx, err := wl.add(sql, r.Header.Get("X-KSpot-Tenant"))
		if err != nil {
			status := http.StatusBadRequest
			var aerr *kspot.AdmissionError
			if errors.As(err, &aerr) {
				// Admission rejection is load, not a client error: 429 with
				// the typed limit detail, running queries undisturbed.
				status = http.StatusTooManyRequests
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]interface{}{"query": idx})
	})
	mux.HandleFunc("/watch", func(w http.ResponseWriter, r *http.Request) {
		idx, err := strconv.Atoi(r.URL.Query().Get("query"))
		if err != nil {
			http.Error(w, "watch needs ?query=N", http.StatusBadRequest)
			return
		}
		hub, ok := wl.hub(idx)
		if !ok {
			http.Error(w, fmt.Sprintf("no query %d", idx), http.StatusNotFound)
			return
		}
		flusher, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		sub := hub.Subscribe()
		defer sub.Close()
		// A dropped client unblocks the Next loop via the subscriber close.
		go func() {
			<-r.Context().Done()
			sub.Close()
		}()
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)
		flusher.Flush()
		for {
			res, ok := sub.Next()
			if !ok {
				return
			}
			data, err := json.Marshal(res)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
				return
			}
			flusher.Flush()
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		st.mu.Lock()
		answers := st.answers
		epoch := st.epoch
		messages, txBytes := st.messages, st.txBytes
		st.mu.Unlock()
		cursors, _ := wl.snapshot()
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, `<!DOCTYPE html><html><head><meta http-equiv="refresh" content="2">
<title>KSpot — %s</title><style>body{font-family:monospace;background:#111;color:#dfd}
pre{font-size:13px}</style></head><body>
<h2>KSpot — %s</h2>
<p>epoch %d &middot; queries %d &middot; messages %d &middot; tx bytes %d</p>
<pre>%s</pre>
<pre>%s</pre>
</body></html>`,
			html.EscapeString(scen.Name), html.EscapeString(scen.Name), epoch,
			len(cursors), messages, txBytes,
			html.EscapeString(fmt.Sprintf("ranking: %s", gui.RankingStrip(placement, answers))),
			html.EscapeString(gui.DisplayPanel(placement, answers, 72, 18)))
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal("kspotd: ", err)
	}
	// Printed like -serve-shard's "kspotd-wire" line: spawners listen on
	// port 0 and parse the bound address.
	fmt.Printf("kspotd-http %s\n", ln.Addr())
	cursors, _ := wl.snapshot()
	log.Printf("kspotd: serving %q on %s (%d queries, primary: TOP %d AVG(sound) per cluster, epoch %v)",
		scen.Name, ln.Addr(), len(cursors), *k, *interval)
	srv := &http.Server{Handler: mux}
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "kspotd:", err)
		os.Exit(1)
	}
}

// serveShardProcess runs kspotd as one shard of a federated deployment:
// the shard's network lives here, behind internal/wire's framed TCP
// protocol, and a coordinator kspotd (-connect) or kspot.OpenFederated
// drives it. The bound address is printed to stdout as "kspotd-wire
// <addr>" so spawners can listen on port 0 and parse the outcome; SIGINT
// or SIGTERM shuts the server down cleanly.
func serveShardProcess(scen *config.Scenario, shard int, addr string, parallel int, live bool, window int, legacy bool, dataDir string) {
	if dataDir != "" {
		// Every shard process on a host can share one -data-dir: each
		// shard's segments and journal live under its own shard-named
		// subdirectory, and a restarted process finds them by the same
		// deterministic path.
		dataDir = filepath.Join(dataDir, scen.ShardName(shard))
	}
	srv, err := wire.NewServer(wire.ServerConfig{
		Scenario:          scen,
		Shard:             shard,
		Parallel:          parallel,
		Live:              live,
		LiveWindow:        window,
		DisableEpochRound: legacy,
		DataDir:           dataDir,
	})
	if err != nil {
		log.Fatal("kspotd: ", err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal("kspotd: ", err)
	}
	fmt.Printf("kspotd-wire %s\n", ln.Addr())
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		srv.Close()
	}()
	log.Printf("kspotd: shard %d (%s) of %q serving the wire protocol on %s", shard, srv.Name(), scen.Name, ln.Addr())
	if err := srv.Serve(ln); err != nil {
		log.Fatal("kspotd: ", err)
	}
}
