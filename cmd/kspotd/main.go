// Command kspotd serves the KSpot GUI over HTTP: the Display Panel with
// live KSpot bullets, the ranking strip and the System Panel, refreshed as
// the concurrent live deployment advances epochs — the web-era stand-in
// for the paper's projector at the conference site.
//
// The daemon posts its queries on the live substrate (one goroutine per
// sensor node, see internal/engine): every posted query shares one epoch
// sweep, so extra -query flags cost beacons and views, not extra sensing.
//
// Usage:
//
//	kspotd -addr :8080 -k 3 -interval 1s
//	kspotd -scenario demo.json -query "SELECT TOP 2 roomid, MAX(sound) FROM sensors GROUP BY roomid"
//
// A federated deployment can run as separate OS processes: each shard
// hosts its network in its own kspotd behind the framed TCP protocol of
// internal/wire, and one coordinator kspotd dials them (answers stay
// byte-identical to the in-process run; see DESIGN.md):
//
//	kspotd -scenario field.json -shards 4 -serve-shard 0 -wire-addr 127.0.0.1:7701
//	... (shards 1..3 likewise) ...
//	kspotd -scenario field.json -shards 4 -connect 127.0.0.1:7701,...,127.0.0.1:7704
//
// A shard server prints "kspotd-wire <addr>" on stdout once it listens
// (so spawners can pass -wire-addr 127.0.0.1:0 and parse the port).
//
// Endpoints:
//
//	/         HTML dashboard (auto-refreshing)
//	/panel    text display panel
//	/ranking  one-line ranking strip
//	/stats    JSON traffic statistics
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"html"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"kspot"
	"kspot/internal/config"
	"kspot/internal/gui"
	"kspot/internal/model"
	"kspot/internal/wire"
)

type queryList []string

func (q *queryList) String() string { return fmt.Sprint(*q) }
func (q *queryList) Set(s string) error {
	*q = append(*q, s)
	return nil
}

type state struct {
	mu       sync.Mutex
	epoch    model.Epoch
	answers  []model.Answer
	messages int
	txBytes  int
	drops    int
}

func main() {
	var queries queryList
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		scenarioPath = flag.String("scenario", "", "scenario JSON (default: built-in demo)")
		k            = flag.Int("k", 3, "K of the default Top-K query")
		interval     = flag.Duration("interval", time.Second, "epoch duration")
		window       = flag.Int("window", 64, "per-node history window")
		lossP        = flag.Float64("loss", 0, "deterministic Bernoulli per-frame loss probability [0,1)")
		dupP         = flag.Float64("dup", 0, "frame duplication probability [0,1)")
		delayP       = flag.Float64("delay", 0, "frame delay probability [0,1)")
		faultSeed    = flag.Int64("fault-seed", 0, "seed for the fault environment")
		shards       = flag.Int("shards", 0, "federate the deployment into N shard networks (splits the cluster list)")
		parallel     = flag.Int("parallel", runtime.NumCPU(), "epoch-sweep worker bound per shard; 1 = exact legacy sequential path (results are byte-identical for every value)")
		serveShard   = flag.Int("serve-shard", -1, "serve shard N of the scenario over the wire protocol instead of the GUI daemon (see -wire-addr)")
		wireAddr     = flag.String("wire-addr", "127.0.0.1:0", "listen address for -serve-shard (port 0 picks one; the bound address is printed as \"kspotd-wire <addr>\")")
		wireLive     = flag.Bool("wire-live", false, "with -serve-shard: host the shard on the concurrent live substrate")
		connect      = flag.String("connect", "", "comma-separated shard wire addresses: run as the federated coordinator over already-running -serve-shard processes")
	)
	flag.Var(&queries, "query", "extra SQL to post on the same deployment (repeatable)")
	flag.Parse()

	scen := kspot.DemoScenario()
	if *scenarioPath != "" {
		var err error
		scen, err = config.Load(*scenarioPath)
		if err != nil {
			log.Fatal("kspotd: ", err)
		}
	}
	switch {
	case *lossP > 0 || *dupP > 0 || *delayP > 0:
		// Flags override the scenario's faults block; richer environments
		// (bursts, churn, distance loss) come from the scenario file.
		scen.Faults = &kspot.FaultConfig{Seed: *faultSeed, Loss: *lossP, Duplicate: *dupP, Delay: *delayP}
	case *faultSeed != 0:
		if scen.Faults == nil {
			log.Fatalf("kspotd: -fault-seed %d has no effect: no fault flags given and the scenario has no faults block", *faultSeed)
		}
		scen.Faults.Seed = *faultSeed
	}
	if *shards > 0 {
		if err := scen.AutoShard(*shards); err != nil {
			log.Fatal("kspotd: ", err)
		}
	}
	if *serveShard >= 0 {
		serveShardProcess(scen, *serveShard, *wireAddr, *parallel, *wireLive, *window)
		return
	}
	placement := scen.Placement()
	var sys *kspot.System
	var err error
	remote := *connect != ""
	if remote {
		sys, err = kspot.OpenFederated(scen, strings.Split(*connect, ","))
	} else {
		sys, err = kspot.Open(scen, kspot.WithParallel(*parallel))
	}
	if err != nil {
		log.Fatal("kspotd: ", err)
	}
	defer sys.Close()

	// On a remote deployment the live substrate (and its windows) belongs
	// to the shard processes; the coordinator's cursors run deterministic.
	var primaryOpts, extraOpts []kspot.PostOption
	if !remote {
		primaryOpts = []kspot.PostOption{kspot.WithLive(), kspot.WithLiveWindow(*window)}
		extraOpts = []kspot.PostOption{kspot.WithLive()}
	}
	primary := fmt.Sprintf("SELECT TOP %d roomid, AVG(sound) FROM sensors GROUP BY roomid", *k)
	cursors := make([]*kspot.Cursor, 0, 1+len(queries))
	cur, err := sys.Post(primary, primaryOpts...)
	if err != nil {
		log.Fatal("kspotd: ", err)
	}
	cursors = append(cursors, cur)
	for _, sql := range queries {
		c, err := sys.Post(sql, extraOpts...)
		if err != nil {
			log.Fatalf("kspotd: %q: %v", sql, err)
		}
		cursors = append(cursors, c)
	}

	st := &state{}
	stop := make(chan struct{})
	go func() {
		ticker := time.NewTicker(*interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
			var primaryRes kspot.StepResult
			for i, c := range cursors {
				res, err := c.Step()
				if err != nil {
					log.Printf("kspotd: step: %v", err)
					return
				}
				if i == 0 {
					primaryRes = res
				}
			}
			// Between steps no epoch is in flight, so the shared network
			// counters are quiescent and safe to read (summed across every
			// shard on a federated deployment).
			total := sys.CaptureStats("live", 0)
			st.mu.Lock()
			st.epoch = primaryRes.Epoch
			st.answers = primaryRes.Answers
			st.messages = total.Messages
			st.txBytes = total.TxBytes
			st.drops = total.Drops
			st.mu.Unlock()
		}
	}()
	defer close(stop)

	mux := http.NewServeMux()
	mux.HandleFunc("/panel", func(w http.ResponseWriter, r *http.Request) {
		st.mu.Lock()
		answers := st.answers
		st.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, gui.DisplayPanel(placement, answers, 72, 18))
	})
	mux.HandleFunc("/ranking", func(w http.ResponseWriter, r *http.Request) {
		st.mu.Lock()
		answers := st.answers
		epoch := st.epoch
		st.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "epoch %d: %s\n", epoch, gui.RankingStrip(placement, answers))
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		fed := sys.FederationStats()
		st.mu.Lock()
		out := map[string]interface{}{
			"epoch":    st.epoch,
			"messages": st.messages,
			"tx_bytes": st.txBytes,
			"drops":    st.drops,
			"queries":  len(cursors),
			// Federation tier (all zero on a flat deployment): shard count
			// and the coordinator's merge/backhaul counters.
			"shards":            sys.Shards(),
			"coord_rounds":      fed.Rounds,
			"coord_phase2_reqs": fed.Phase2Reqs,
			"coord_bytes":       fed.TxBytes,
		}
		st.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(out); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		st.mu.Lock()
		answers := st.answers
		epoch := st.epoch
		messages, txBytes := st.messages, st.txBytes
		st.mu.Unlock()
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, `<!DOCTYPE html><html><head><meta http-equiv="refresh" content="2">
<title>KSpot — %s</title><style>body{font-family:monospace;background:#111;color:#dfd}
pre{font-size:13px}</style></head><body>
<h2>KSpot — %s</h2>
<p>epoch %d &middot; queries %d &middot; messages %d &middot; tx bytes %d</p>
<pre>%s</pre>
<pre>%s</pre>
</body></html>`,
			html.EscapeString(scen.Name), html.EscapeString(scen.Name), epoch,
			len(cursors), messages, txBytes,
			html.EscapeString(fmt.Sprintf("ranking: %s", gui.RankingStrip(placement, answers))),
			html.EscapeString(gui.DisplayPanel(placement, answers, 72, 18)))
	})

	log.Printf("kspotd: serving %q on %s (%d queries, primary: TOP %d AVG(sound) per cluster, epoch %v)",
		scen.Name, *addr, len(cursors), *k, *interval)
	srv := &http.Server{Addr: *addr, Handler: mux}
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "kspotd:", err)
		os.Exit(1)
	}
}

// serveShardProcess runs kspotd as one shard of a federated deployment:
// the shard's network lives here, behind internal/wire's framed TCP
// protocol, and a coordinator kspotd (-connect) or kspot.OpenFederated
// drives it. The bound address is printed to stdout as "kspotd-wire
// <addr>" so spawners can listen on port 0 and parse the outcome; SIGINT
// or SIGTERM shuts the server down cleanly.
func serveShardProcess(scen *config.Scenario, shard int, addr string, parallel int, live bool, window int) {
	srv, err := wire.NewServer(wire.ServerConfig{
		Scenario:   scen,
		Shard:      shard,
		Parallel:   parallel,
		Live:       live,
		LiveWindow: window,
	})
	if err != nil {
		log.Fatal("kspotd: ", err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal("kspotd: ", err)
	}
	fmt.Printf("kspotd-wire %s\n", ln.Addr())
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		srv.Close()
	}()
	log.Printf("kspotd: shard %d (%s) of %q serving the wire protocol on %s", shard, srv.Name(), scen.Name, ln.Addr())
	if err := srv.Serve(ln); err != nil {
		log.Fatal("kspotd: ", err)
	}
}
