// Command kspotd serves the KSpot GUI over HTTP: the Display Panel with
// live KSpot bullets, the ranking strip and the System Panel, refreshed as
// the live goroutine deployment (internal/runtime) advances epochs — the
// web-era stand-in for the paper's projector at the conference site.
//
// Usage:
//
//	kspotd -addr :8080 -k 3 -interval 1s
//	kspotd -scenario demo.json
//
// Endpoints:
//
//	/         HTML dashboard (auto-refreshing)
//	/panel    text display panel
//	/ranking  one-line ranking strip
//	/stats    JSON traffic statistics
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"html"
	"log"
	"net/http"
	"os"
	"sync"
	"time"

	"kspot"
	"kspot/internal/config"
	"kspot/internal/gui"
	"kspot/internal/model"
	"kspot/internal/runtime"
	"kspot/internal/topk"
)

type state struct {
	mu      sync.Mutex
	epoch   model.Epoch
	answers []model.Answer
	traffic runtime.Traffic
	rounds  int
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		scenarioPath = flag.String("scenario", "", "scenario JSON (default: built-in demo)")
		k            = flag.Int("k", 3, "K of the Top-K query")
		interval     = flag.Duration("interval", time.Second, "epoch duration")
		window       = flag.Int("window", 64, "per-node history window")
	)
	flag.Parse()

	scen := kspot.DemoScenario()
	if *scenarioPath != "" {
		var err error
		scen, err = config.Load(*scenarioPath)
		if err != nil {
			log.Fatal("kspotd: ", err)
		}
	}
	placement := scen.Placement()
	src, err := scen.Source()
	if err != nil {
		log.Fatal("kspotd: ", err)
	}
	q := topk.SnapshotQuery{K: *k, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}
	tree, err := scen.Tree()
	if err != nil {
		log.Fatal("kspotd: ", err)
	}
	dep, err := runtime.FromTree(placement, tree, src, q, *window)
	if err != nil {
		log.Fatal("kspotd: ", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dep.Start(ctx)
	defer dep.Stop()

	st := &state{}
	go func() {
		ticker := time.NewTicker(*interval)
		defer ticker.Stop()
		var e model.Epoch
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			res := dep.Server.RunEpoch(e)
			st.mu.Lock()
			st.epoch = e
			st.answers = res.Answers
			st.traffic = dep.Traffic()
			st.rounds = res.Rounds
			st.mu.Unlock()
			e++
		}
	}()

	mux := http.NewServeMux()
	mux.HandleFunc("/panel", func(w http.ResponseWriter, r *http.Request) {
		st.mu.Lock()
		answers := st.answers
		st.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, gui.DisplayPanel(placement, answers, 72, 18))
	})
	mux.HandleFunc("/ranking", func(w http.ResponseWriter, r *http.Request) {
		st.mu.Lock()
		answers := st.answers
		epoch := st.epoch
		st.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "epoch %d: %s\n", epoch, gui.RankingStrip(placement, answers))
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		st.mu.Lock()
		out := map[string]interface{}{
			"epoch":    st.epoch,
			"messages": st.traffic.Messages,
			"tx_bytes": st.traffic.TxBytes,
			"rounds":   st.rounds,
		}
		st.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(out); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		st.mu.Lock()
		answers := st.answers
		epoch := st.epoch
		tr := st.traffic
		st.mu.Unlock()
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, `<!DOCTYPE html><html><head><meta http-equiv="refresh" content="2">
<title>KSpot — %s</title><style>body{font-family:monospace;background:#111;color:#dfd}
pre{font-size:13px}</style></head><body>
<h2>KSpot — %s</h2>
<p>epoch %d &middot; messages %d &middot; tx bytes %d</p>
<pre>%s</pre>
<pre>%s</pre>
</body></html>`,
			html.EscapeString(scen.Name), html.EscapeString(scen.Name), epoch,
			tr.Messages, tr.TxBytes,
			html.EscapeString(fmt.Sprintf("ranking: %s", gui.RankingStrip(placement, answers))),
			html.EscapeString(gui.DisplayPanel(placement, answers, 72, 18)))
	})

	log.Printf("kspotd: serving %q on %s (query: TOP %d AVG(sound) per cluster, epoch %v)", scen.Name, *addr, *k, *interval)
	srv := &http.Server{Addr: *addr, Handler: mux}
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "kspotd:", err)
		os.Exit(1)
	}
}
