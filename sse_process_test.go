package kspot

// Process-level conformance for the streaming results tier: a real kspotd
// process serving a multi-tenant workload from -queries-file, with a
// fan-out of SSE subscribers on one query. Every subscriber must observe
// the identical per-epoch sequence — the hub replay contract — the
// -epochs budget must end every stream cleanly (EOF, not a hang), and the
// fan-out must never touch the network layer: a 50-subscriber run ends
// with the same radio counters as a single-subscriber run.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

const sseEpochs = 4

// sseQueriesFile is the -queries-file workload: eight queries, several of
// which share a sensing signature with each other or the daemon's primary
// query, so the process serves the whole multi-tenant path end to end.
const sseQueriesFile = `# kspotd SSE conformance workload
SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid
select top 4 roomid, avg(sound) from sensors group by roomid
SELECT TOP 1 roomid, MAX(temp) FROM sensors GROUP BY roomid
SELECT TOP 3 roomid, MAX(temp) FROM sensors GROUP BY roomid
SELECT TOP 2 roomid, AVG(light) FROM sensors GROUP BY roomid
SELECT TOP 2 roomid, MIN(temp) FROM sensors GROUP BY roomid
SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid EPOCH DURATION 1 min
SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid WITH HISTORY 4
`

// readSSE consumes one /watch stream to EOF and returns the data payloads
// in arrival order.
func readSSE(addr string, query int) ([]string, error) {
	resp, err := http.Get(fmt.Sprintf("http://%s/watch?query=%d", addr, query))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("watch status %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		return nil, fmt.Errorf("watch content-type %q", ct)
	}
	var events []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "data: ") {
			events = append(events, strings.TrimPrefix(line, "data: "))
		}
	}
	return events, sc.Err()
}

// sseRadioStats are the deployment-level counters /stats reports once the
// epoch budget is spent — what the radio did, regardless of subscribers.
type sseRadioStats struct {
	Epoch    int   `json:"epoch"`
	Messages int   `json:"messages"`
	TxBytes  int64 `json:"tx_bytes"`
	Drops    int   `json:"drops"`
}

// runKspotdSSE spawns one kspotd on the workload, attaches subscribers SSE
// readers to the watched query, and returns every subscriber's event
// sequence plus the final radio counters.
func runKspotdSSE(t *testing.T, bin, queriesPath string, watched, subscribers int) ([][]string, sseRadioStats) {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-queries-file", queriesPath,
		"-interval", "25ms",
		"-epochs", fmt.Sprint(sseEpochs),
		"-max-queries", "32",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	})

	// The daemon prints "kspotd-http <addr>" once it listens.
	sc := bufio.NewScanner(stdout)
	lineCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "kspotd-http ") {
				lineCh <- strings.TrimPrefix(sc.Text(), "kspotd-http ")
				break
			}
		}
		close(lineCh)
	}()
	var addr string
	select {
	case a, ok := <-lineCh:
		if !ok || a == "" {
			t.Fatal("kspotd exited before announcing its address")
		}
		addr = a
	case <-time.After(30 * time.Second):
		t.Fatal("kspotd did not announce its address")
	}

	streams := make([][]string, subscribers)
	errs := make([]error, subscribers)
	var wg sync.WaitGroup
	for i := 0; i < subscribers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Stagger a third of the fan-out to land mid- and post-run:
			// the hub replays its cache on subscribe, so join timing must
			// not change what a subscriber sees.
			time.Sleep(time.Duration(i%3) * 40 * time.Millisecond)
			streams[i], errs[i] = readSSE(addr, watched)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("subscriber %d: %v", i, err)
		}
	}

	// Streams EOF only after the epoch budget is spent, so /stats now
	// reports the deployment's final radio totals.
	resp, err := http.Get(fmt.Sprintf("http://%s/stats", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats sseRadioStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return streams, stats
}

// TestProcessSSEFanOut spawns a real kspotd with an 8-query -queries-file
// and a 4-epoch budget, attaches 50 SSE subscribers to one query, and
// pins: every subscriber sees the same 4-epoch sequence, every stream
// ends cleanly when the budget is spent, a post-run subscriber replays
// the identical cached sequence, and the radio counters equal those of a
// single-subscriber run — the fan-out costs the network nothing.
func TestProcessSSEFanOut(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "kspotd")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/kspotd").CombinedOutput(); err != nil {
		t.Fatalf("building kspotd: %v\n%s", err, out)
	}
	queriesPath := filepath.Join(dir, "queries.sql")
	if err := os.WriteFile(queriesPath, []byte(sseQueriesFile), 0o644); err != nil {
		t.Fatal(err)
	}

	// Query 0 is the daemon's primary; the file's queries are 1..8. Watch
	// one of the shared-signature file queries with the full fan-out.
	const watched = 2
	streams, stats := runKspotdSSE(t, bin, queriesPath, watched, 50)

	want := streams[0]
	if len(want) != sseEpochs {
		t.Fatalf("subscriber 0 saw %d events, want %d: %v", len(want), sseEpochs, want)
	}
	for e, raw := range want {
		var res struct {
			Epoch   int  `json:"epoch"`
			Correct bool `json:"correct"`
			Answers []struct {
				Group int
				Score float64
			} `json:"answers"`
		}
		if err := json.Unmarshal([]byte(raw), &res); err != nil {
			t.Fatalf("event %d is not JSON: %v\n%s", e, err, raw)
		}
		if res.Epoch != e {
			t.Fatalf("event %d carries epoch %d", e, res.Epoch)
		}
		if len(res.Answers) == 0 {
			t.Fatalf("event %d has no answers: %s", e, raw)
		}
	}
	for i := 1; i < len(streams); i++ {
		if len(streams[i]) != len(want) {
			t.Fatalf("subscriber %d saw %d events, subscriber 0 saw %d", i, len(streams[i]), len(want))
		}
		for e := range want {
			if streams[i][e] != want[e] {
				t.Fatalf("subscriber %d diverged at event %d:\n%s\nvs\n%s", i, e, streams[i][e], want[e])
			}
		}
	}
	if stats.Epoch != sseEpochs-1 {
		t.Fatalf("final stats at epoch %d, want %d", stats.Epoch, sseEpochs-1)
	}

	// The single-subscriber control run: same binary, same workload. The
	// demo deployment is lossless and the epoch budget fixed, so the
	// stream and the radio totals must both reproduce — 49 extra
	// subscribers change nothing below the serving tier.
	soloStreams, soloStats := runKspotdSSE(t, bin, queriesPath, watched, 1)
	solo := soloStreams[0]
	if len(solo) != len(want) {
		t.Fatalf("single-subscriber run saw %d events, fan-out run %d", len(solo), len(want))
	}
	for e := range want {
		if solo[e] != want[e] {
			t.Fatalf("single-subscriber run diverged at event %d:\n%s\nvs\n%s", e, solo[e], want[e])
		}
	}
	if stats != soloStats {
		t.Fatalf("radio counters depend on subscriber count:\n50 subs: %+v\n 1 sub:  %+v", stats, soloStats)
	}
}
