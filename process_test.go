package kspot

// Process-level conformance for the wire substrate: the scale-1000
// benchmark deployment split 4 ways must answer byte-identically to the
// flat simulation whether the shards are in-process goroutine servers on
// loopback sockets (TestWireScale1000LoopbackConformance — the whole
// protocol under the race detector) or four real kspotd -serve-shard OS
// processes driven by this test as the coordinator
// (TestProcessFederatedScale1000 — N+1 processes, the deployment shape
// the paper's federated sites would run).

import (
	"bufio"
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

const (
	scaleSnapshotSQL = "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid"
	scaleHistoricSQL = "SELECT TOP 4 epoch, AVG(sound) FROM sensors WITH HISTORY 16"
	scaleEpochs      = 3
)

// scaleRun is one deployment's answers and counters for the conformance
// workload: snapshot epochs, then a historic execution.
type scaleRun struct {
	steps    []StepResult
	historic []Answer
	fed      FederationTraffic
	shards   []RunStats
}

// runScaleWorkload drives the conformance workload on an opened system
// and snapshots its counters.
func runScaleWorkload(t *testing.T, sys *System) scaleRun {
	t.Helper()
	var run scaleRun
	cur, err := sys.Post(scaleSnapshotSQL)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < scaleEpochs; i++ {
		res, err := cur.Step()
		if err != nil {
			t.Fatal(err)
		}
		run.steps = append(run.steps, res)
	}
	hcur, err := sys.Post(scaleHistoricSQL)
	if err != nil {
		t.Fatal(err)
	}
	if run.historic, err = hcur.Run(); err != nil {
		t.Fatal(err)
	}
	run.fed = sys.FederationStats()
	if run.shards, err = sys.ShardStats(); err != nil {
		t.Fatal(err)
	}
	return run
}

// checkScaleConformance pins a federated run — in-process or remote —
// against the flat run and, when a peer federated run is given, against
// its coordinator-tier and per-shard counters.
func checkScaleConformance(t *testing.T, label string, got scaleRun, flat scaleRun, peer *scaleRun) {
	t.Helper()
	stepEqualByteIdentical(t, label+" snapshot vs flat", got.steps, flat.steps)
	for e := range got.steps {
		if !got.steps[e].Correct {
			t.Fatalf("%s epoch %d: answers %v diverged from oracle %v", label, e, got.steps[e].Answers, got.steps[e].Exact)
		}
	}
	if !bytes.Equal(answerBytes(got.historic), answerBytes(flat.historic)) {
		t.Fatalf("%s historic %v, flat %v", label, got.historic, flat.historic)
	}
	if peer == nil {
		return
	}
	if got.fed != peer.fed {
		t.Fatalf("%s coordinator tier diverged: %+v vs %+v", label, got.fed, peer.fed)
	}
	if len(got.shards) != len(peer.shards) {
		t.Fatalf("%s: %d shard rows vs %d", label, len(got.shards), len(peer.shards))
	}
	for i := range got.shards {
		g, p := got.shards[i], peer.shards[i]
		if g.Algorithm != p.Algorithm || g.Messages != p.Messages || g.Frames != p.Frames ||
			g.TxBytes != p.TxBytes || g.RxBytes != p.RxBytes || g.EnergyUJ != p.EnergyUJ {
			t.Fatalf("%s shard %d counters diverged:\ngot  %+v\npeer %+v", label, i, g, p)
		}
	}
}

func scale1000Flat(t *testing.T) scaleRun {
	t.Helper()
	scen, err := ScaleScenario(1000)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Open(scen, WithParallel(runtime.NumCPU()))
	if err != nil {
		t.Fatal(err)
	}
	return runScaleWorkload(t, sys)
}

func scale1000Sharded(t *testing.T) *Scenario {
	t.Helper()
	scen, err := ScaleScenarioShards(1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	return scen
}

// TestWireScale1000LoopbackConformance: scale-1000 split 4 ways over
// loopback sockets — in-process servers, so client, server and the merge
// all run under -race in CI — byte-identical to the flat run for both the
// snapshot stream and historic TOP-K, with coordinator-tier and per-shard
// counters equal to the in-process federation.
func TestWireScale1000LoopbackConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-1000 conformance in -short mode")
	}
	flat := scale1000Flat(t)

	inprocSys, err := Open(scale1000Sharded(t), WithParallel(runtime.NumCPU()))
	if err != nil {
		t.Fatal(err)
	}
	defer inprocSys.Close()
	inproc := runScaleWorkload(t, inprocSys)
	checkScaleConformance(t, "in-process federation", inproc, flat, nil)

	addrs, _ := startWireShards(t, scale1000Sharded(t), runtime.NumCPU())
	remote, err := OpenFederated(scale1000Sharded(t), addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	got := runScaleWorkload(t, remote)
	checkScaleConformance(t, "loopback federation", got, flat, &inproc)
}

// buildKspotd builds the kspotd binary into dir and returns its path.
func buildKspotd(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "kspotd")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/kspotd").CombinedOutput(); err != nil {
		t.Fatalf("building kspotd: %v\n%s", err, out)
	}
	return bin
}

// spawnShardProc starts one kspotd -serve-shard process listening on
// wireAddr (port 0 picks one) and returns the bound address it announced
// plus the running command — callers kill it directly for crash tests;
// a cleanup SIGTERMs whatever is still alive at test end.
func spawnShardProc(t *testing.T, bin, scenPath string, shard int, wireAddr string, extra ...string) (string, *exec.Cmd) {
	t.Helper()
	args := append([]string{
		"-scenario", scenPath,
		"-serve-shard", strconv.Itoa(shard),
		"-wire-addr", wireAddr,
		"-parallel", strconv.Itoa(runtime.NumCPU()),
	}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = nil
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawning shard %d: %v", shard, err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	})
	// The shard prints "kspotd-wire <addr>" once it listens.
	sc := bufio.NewScanner(stdout)
	lineCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "kspotd-wire ") {
				lineCh <- strings.TrimPrefix(sc.Text(), "kspotd-wire ")
				break
			}
		}
		close(lineCh)
	}()
	select {
	case addr, ok := <-lineCh:
		if !ok || addr == "" {
			t.Fatalf("shard %d exited before announcing its address", shard)
		}
		return addr, cmd
	case <-time.After(30 * time.Second):
		t.Fatalf("shard %d did not announce its address", shard)
	}
	return "", nil
}

// TestProcessFederatedScale1000 is the N+1-process conformance pin: build
// the kspotd binary, spawn four real -serve-shard processes on loopback,
// coordinate them from this process via OpenFederated, and require the
// answers byte-identical to the flat simulation with every counter tier
// reconciled against the in-process federation.
func TestProcessFederatedScale1000(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses in -short mode")
	}
	dir := t.TempDir()
	bin := buildKspotd(t, dir)

	scen := scale1000Sharded(t)
	scenPath := filepath.Join(dir, "scale-1000x4.json")
	if err := scen.Save(scenPath); err != nil {
		t.Fatal(err)
	}

	const shards = 4
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		// Shard 1 runs as an old server (-wire-legacy withholds the batched
		// epoch-round capability), so this leg pins the mixed-version
		// deployment: per-call protocol to shard 1, batched rounds to the
		// rest, byte-identical answers regardless.
		var extra []string
		if i == 1 {
			extra = append(extra, "-wire-legacy")
		}
		addrs[i], _ = spawnShardProc(t, bin, scenPath, i, "127.0.0.1:0", extra...)
	}

	flat := scale1000Flat(t)
	inprocSys, err := Open(scale1000Sharded(t), WithParallel(runtime.NumCPU()))
	if err != nil {
		t.Fatal(err)
	}
	defer inprocSys.Close()
	inproc := runScaleWorkload(t, inprocSys)

	remote, err := OpenFederated(scen, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	if remote.Shards() != shards {
		t.Fatalf("remote system has %d shards, want %d", remote.Shards(), shards)
	}
	got := runScaleWorkload(t, remote)
	checkScaleConformance(t, fmt.Sprintf("%d-process federation", shards+1), got, flat, &inproc)
}

// TestProcessShardCrashRestartConformance is the durability pin: four
// real -serve-shard processes run with -data-dir, one is SIGKILLed between
// epochs with the next Step already issued against it, and a replacement
// process restarted from the same data directory at the same address picks
// the session up — journaled nonce (no session reset), replayed attaches,
// recovered windows and energy checkpoint — so the full answer stream AND
// the federated historic run stay byte-identical to the flat simulation.
func TestProcessShardCrashRestartConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses in -short mode")
	}
	dir := t.TempDir()
	bin := buildKspotd(t, dir)

	scen := scale1000Sharded(t)
	scenPath := filepath.Join(dir, "scale-1000x4.json")
	if err := scen.Save(scenPath); err != nil {
		t.Fatal(err)
	}
	dataDir := filepath.Join(dir, "data")

	const shards = 4
	addrs := make([]string, shards)
	cmds := make([]*exec.Cmd, shards)
	for i := 0; i < shards; i++ {
		addrs[i], cmds[i] = spawnShardProc(t, bin, scenPath, i, "127.0.0.1:0", "-data-dir", dataDir)
	}

	flat := scale1000Flat(t)

	// A generous retry budget rides out the restart window: attempts
	// against the dead socket fail fast and back off until the replacement
	// binds the same port.
	remote, err := OpenFederated(scen, addrs, WithWireRetry(10, 200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	cur, err := remote.Post(scaleSnapshotSQL)
	if err != nil {
		t.Fatal(err)
	}
	var steps []StepResult
	res, err := cur.Step() // epoch 0 on the original processes
	if err != nil {
		t.Fatal(err)
	}
	steps = append(steps, res)

	// kill -9 one shard — no shutdown path runs; durability is whatever
	// the per-epoch segment sync and journal flush already put on disk.
	const victim = 2
	if err := cmds[victim].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmds[victim].Wait()

	// Issue the next epoch's Step BEFORE the replacement exists: it must
	// retry against the dead address while the restart is in flight, then
	// complete on the recovered shard.
	type stepOut struct {
		res StepResult
		err error
	}
	ch := make(chan stepOut, 1)
	go func() {
		r, err := cur.Step() // epoch 1, spanning the crash
		ch <- stepOut{r, err}
	}()
	time.Sleep(300 * time.Millisecond) // let the step hit the dead socket
	addrs[victim], cmds[victim] = spawnShardProc(t, bin, scenPath, victim, addrs[victim], "-data-dir", dataDir)
	out := <-ch
	if out.err != nil {
		t.Fatalf("step spanning the crash: %v", out.err)
	}
	steps = append(steps, out.res)

	res, err = cur.Step() // epoch 2 on the recovered deployment
	if err != nil {
		t.Fatal(err)
	}
	steps = append(steps, res)

	stepEqualByteIdentical(t, "crash-restart snapshot vs flat", steps, flat.steps)
	for e := range steps {
		if !steps[e].Correct {
			t.Fatalf("epoch %d: answers %v diverged from oracle %v", e, steps[e].Answers, steps[e].Exact)
		}
	}

	// The federated historic run on the recovered deployment equals the
	// flat one.
	hcur, err := remote.Post(scaleHistoricSQL)
	if err != nil {
		t.Fatal(err)
	}
	historic, err := hcur.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(answerBytes(historic), answerBytes(flat.historic)) {
		t.Fatalf("crash-restart historic %v, flat %v", historic, flat.historic)
	}

	// Every shard — including the restarted one — checkpointed all three
	// epochs into real on-disk segments.
	ss, err := remote.StorageStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != shards {
		t.Fatalf("storage rows: %d", len(ss))
	}
	for i, st := range ss {
		if !st.HasEpoch || st.LastEpoch != scaleEpochs-1 {
			t.Fatalf("shard %d checkpoint: %+v", i, st)
		}
		if st.Segments == 0 || st.Bytes == 0 {
			t.Fatalf("shard %d has no durable segments: %+v", i, st)
		}
	}
}
