module kspot

go 1.24
