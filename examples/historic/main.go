// Historic: the §III-B vertically-fragmented query — "find the K time
// instances with the highest average temperature" — answered three ways
// (TJA, TPUT, centralized) over the same buffered windows, with the
// per-algorithm traffic the System Panel compares.
//
//	go run ./examples/historic
package main

import (
	"fmt"
	"log"

	"kspot"
)

const historicQuery = "SELECT TOP 5 timeinstant, AVG(temp) FROM sensors WITH HISTORY 256"

func main() {
	scen := kspot.DemoScenario()
	scen.Name = "historic-demo"
	scen.Workload.Kind = "diurnal"

	type outcome struct {
		algo    kspot.Algorithm
		answers []kspot.Answer
		stats   kspot.RunStats
	}
	var outcomes []outcome
	for _, algo := range []kspot.Algorithm{kspot.AlgoTJA, kspot.AlgoTPUT, kspot.AlgoCentral} {
		sys, err := kspot.Open(scen)
		if err != nil {
			log.Fatal(err)
		}
		cur, err := sys.PostWith(historicQuery, algo)
		if err != nil {
			log.Fatal(err)
		}
		answers, err := cur.Run()
		if err != nil {
			log.Fatal(err)
		}
		outcomes = append(outcomes, outcome{algo, answers, sys.CaptureStats(string(algo), 1)})
	}

	fmt.Println("query:", historicQuery)
	fmt.Println()
	fmt.Println("Top-5 time instants (window offset, AVG temperature):")
	for i, a := range outcomes[0].answers {
		fmt.Printf("  %d. t=%-4d %.2f °F\n", i+1, a.Group, a.Score)
	}

	// All three algorithms are exact, so they must agree.
	for _, o := range outcomes[1:] {
		for i := range o.answers {
			if o.answers[i] != outcomes[0].answers[i] {
				log.Fatalf("%s disagrees with %s: %v vs %v",
					o.algo, outcomes[0].algo, o.answers, outcomes[0].answers)
			}
		}
	}
	fmt.Println("\nall three algorithms agree; what differs is the traffic:")
	fmt.Printf("%-10s %12s %12s\n", "algorithm", "messages", "tx-bytes")
	for _, o := range outcomes {
		fmt.Printf("%-10s %12d %12d\n", o.algo, o.stats.Messages, o.stats.TxBytes)
	}
	fmt.Println("\n(TJA joins partial results inside the network; TPUT and the")
	fmt.Println("centralized baseline relay every byte hop by hop to the sink.)")
}
