// Habitat: the environmental-monitoring workload the paper's introduction
// cites (great-duck-island-style temperature sensing). A 6-region, 18-node
// deployment answers two queries:
//
//  1. the correctness showcase — the §III-A Figure-1 example where naive
//     local pruning reports the wrong room while KSpot stays exact;
//
//  2. a continuous Top-2 AVG(temperature) query per region over a diurnal
//     field, comparing KSpot's traffic against naive and centralized.
//
//     go run ./examples/habitat
package main

import (
	"fmt"
	"log"

	"kspot"
)

func main() {
	// Part 1: the paper's own counterexample, end to end.
	fig1, err := kspot.Open(kspot.Figure1Scenario())
	if err != nil {
		log.Fatal(err)
	}
	right, err := fig1.Post("SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid")
	if err != nil {
		log.Fatal(err)
	}
	res, err := right.Step()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("KSpot (MINT) answer on Figure 1: %v  — correct: %v\n", res.Answers, res.Correct)

	fig1b, _ := kspot.Open(kspot.Figure1Scenario())
	wrong, err := fig1b.PostWith("SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid", kspot.AlgoNaive)
	if err != nil {
		log.Fatal(err)
	}
	resN, err := wrong.Step()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive greedy answer           : %v  — correct: %v (the paper's (D,76.5) bug)\n\n", resN.Answers, resN.Correct)

	// Part 2: diurnal temperature monitoring.
	scen := kspot.DemoScenario()
	scen.Name = "habitat"
	scen.Workload.Kind = "diurnal"
	sys, err := kspot.Open(scen)
	if err != nil {
		log.Fatal(err)
	}
	cur, err := sys.Post("SELECT TOP 2 roomid, AVG(temp) FROM sensors GROUP BY roomid EPOCH DURATION 15 min")
	if err != nil {
		log.Fatal(err)
	}
	const epochs = 96 // one simulated day at 15-minute epochs
	correct := 0
	var last kspot.StepResult
	for i := 0; i < epochs; i++ {
		last, err = cur.Step()
		if err != nil {
			log.Fatal(err)
		}
		if last.Correct {
			correct++
		}
		if i%24 == 0 {
			fmt.Printf("epoch %2d: %s\n", last.Epoch, sys.RankingStrip(last.Answers))
		}
	}
	fmt.Printf("\nexact epochs: %d/%d\n\n", correct, epochs)
	fmt.Print(sys.SystemPanel(nil))
}
