// Quickstart: open the built-in demo scenario, post the paper's flagship
// query, and watch the K highest-ranked conference rooms for ten epochs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"kspot"
)

func main() {
	// The built-in scenario is the paper's Figure 3: 14 sensors in six
	// clusters along a conference-center corridor.
	sys, err := kspot.Open(kspot.DemoScenario())
	if err != nil {
		log.Fatal(err)
	}

	// The paper's §I query, verbatim (KSpot's dialect is case-insensitive).
	cur, err := sys.Post("SELECT TOP 1 roomid, AVERAGE(sound) FROM sensors GROUP BY roomid EPOCH DURATION 1 min")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query:", cur.Query())
	fmt.Println("plan :", cur.Plan()) // snapshot/mint — the §II router at work
	fmt.Println()

	for i := 0; i < 10; i++ {
		res, err := cur.Step()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %2d: %s\n", res.Epoch, sys.RankingStrip(res.Answers))
	}

	// The System Panel: what the paper projects on the conference wall.
	fmt.Println()
	fmt.Print(sys.SystemPanel(nil))
}
