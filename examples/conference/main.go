// Conference: the full ICDE'09 demo plan of §IV — a continuous Top-3 sound
// query over the 14-node, 6-cluster deployment, rendered with KSpot
// bullets, plus the System Panel that the demo projects to the audience:
// KSpot/MINT's steady-state savings over TinyDB/TAG across K.
//
//	go run ./examples/conference
package main

import (
	"fmt"
	"log"

	"kspot"
)

const epochs = 100

// measure runs one algorithm for `epochs` epochs and returns its
// steady-state statistics (the first epoch — query install and MINT's
// creation phase — is warm-up, excluded as the System Panel does during
// continuous operation).
func measure(algo kspot.Algorithm, k int) kspot.RunStats {
	sys, err := kspot.Open(kspot.DemoScenario())
	if err != nil {
		log.Fatal(err)
	}
	q := fmt.Sprintf("SELECT TOP %d roomid, AVG(sound) FROM sensors GROUP BY roomid EPOCH DURATION 1 min", k)
	cur, err := sys.PostWith(q, algo)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cur.Step(); err != nil { // warm-up epoch
		log.Fatal(err)
	}
	sys.ResetAccounting()
	for i := 1; i < epochs; i++ {
		if _, err := cur.Step(); err != nil {
			log.Fatal(err)
		}
	}
	return sys.CaptureStats(string(algo), epochs-1)
}

func main() {
	// The live demo: Top-3 with KSpot bullets.
	sys, err := kspot.Open(kspot.DemoScenario())
	if err != nil {
		log.Fatal(err)
	}
	cur, err := sys.Post("SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid EPOCH DURATION 1 min")
	if err != nil {
		log.Fatal(err)
	}
	var last kspot.StepResult
	for i := 0; i < 40; i++ {
		last, err = cur.Step()
		if err != nil {
			log.Fatal(err)
		}
		if i%10 == 9 {
			fmt.Printf("epoch %2d: %s\n", last.Epoch, sys.RankingStrip(last.Answers))
		}
	}
	fmt.Println()
	fmt.Println("Display Panel (KSpot bullets mark the Top-3 clusters):")
	fmt.Print(sys.DisplayPanel(last.Answers, 72, 18))

	// The System Panel's savings story across K. On this 14-node demo the
	// flagship K=1 query saves about a third of TAG's bytes; as K
	// approaches the cluster count the suppressible set vanishes and the
	// two meet — the same trend experiment E6 sweeps at scale.
	fmt.Println()
	fmt.Printf("steady-state savings vs TinyDB/TAG over %d epochs:\n", epochs-1)
	fmt.Printf("%3s %12s %12s %10s\n", "k", "mint bytes", "tag bytes", "saved")
	for _, k := range []int{1, 2, 3} {
		m := measure(kspot.AlgoMINT, k)
		t := measure(kspot.AlgoTAG, k)
		fmt.Printf("%3d %12d %12d %9.1f%%\n", k, m.TxBytes, t.TxBytes, 100*(1-float64(m.TxBytes)/float64(t.TxBytes)))
	}

	// And the boxed System Panel for the flagship query.
	m1 := measure(kspot.AlgoMINT, 1)
	t1 := measure(kspot.AlgoTAG, 1)
	fmt.Println()
	fmt.Print(kspot.RenderSystemPanel(m1, &t1))
}
