// ZebraNet: the paper's §I spatio-temporal example — "find the K zebras
// with the most similar trajectories to zebra X". Each collar (sensor node)
// buffers its own GPS track; the base station broadcasts zebra X's recent
// trajectory, every collar computes its similarity score locally (one
// number), and the per-node Top-K machinery finds the K most similar
// animals in-network — the collars of dissimilar zebras never transmit.
//
//	go run ./examples/zebranet
package main

import (
	"fmt"
	"log"
	"math"

	"kspot/internal/model"
	"kspot/internal/sim"
	"kspot/internal/topk"
	"kspot/internal/topk/mint"
	"kspot/internal/topo"
	"kspot/internal/trace"
)

// track synthesizes a zebra's 2-D random-walk trajectory. Herd members
// share a common drift; loners wander off.
func track(seed int64, herd bool, steps int) []topo.Point {
	wx := trace.NewRandomWalk(seed*2+1, -50, 50)
	wy := trace.NewRandomWalk(seed*2+2, -50, 50)
	out := make([]topo.Point, steps)
	for t := 0; t < steps; t++ {
		drift := 0.0
		if herd {
			drift = float64(t) * 0.4 // the herd moves northeast together
		}
		out[t] = topo.Point{
			X: float64(wx.Sample(1, model.Epoch(t))) + drift,
			Y: float64(wy.Sample(1, model.Epoch(t))) + drift/2,
		}
	}
	return out
}

// similarity converts mean point-wise distance into a 0-100 score.
func similarity(a, b []topo.Point) model.Value {
	var sum float64
	for t := range a {
		sum += a[t].Dist(b[t])
	}
	mean := sum / float64(len(a))
	return model.Value(math.Max(0, 100-mean))
}

// trajSource feeds each collar's locally computed similarity score into
// the per-node Top-K pipeline.
type trajSource struct {
	scores map[model.NodeID]model.Value
}

func (s *trajSource) Sample(node model.NodeID, _ model.Epoch) model.Value {
	return s.scores[node]
}

func main() {
	const (
		zebras = 24
		steps  = 48 // 48 buffered GPS fixes per collar
		k      = 3
	)

	// Trajectories: zebras 1-9 travel with the reference herd, the rest roam.
	reference := track(1000, true, steps)
	tracks := make(map[model.NodeID][]topo.Point, zebras)
	for z := 1; z <= zebras; z++ {
		tracks[model.NodeID(z)] = track(int64(z), z <= 9, steps)
	}

	// Each collar scores its own track against the broadcast reference —
	// the §III-B "local search and filtering" step, done at the node.
	scores := make(map[model.NodeID]model.Value, zebras)
	for z, tr := range tracks {
		scores[z] = model.Quantize(similarity(reference, tr))
	}

	// Collars form a multihop field; every zebra is its own group.
	placement := topo.UniformRandom(zebras, 120, 7)
	placement.RegroupRoundRobin(zebras)
	net, err := sim.New(placement, 45, sim.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	src := &trajSource{scores: scores}
	q := topk.SnapshotQuery{K: k, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}
	op := mint.New()
	r := &topk.Runner{Net: net, Source: src, Op: op, Query: q}
	results, err := r.Run(3)
	if err != nil {
		log.Fatal(err)
	}
	final := results[len(results)-1]

	fmt.Printf("reference: zebra X's %d-fix trajectory (herd drift northeast)\n\n", steps)
	fmt.Printf("top-%d most similar zebras (in-network, MINT):\n", k)
	for i, a := range final.Answers {
		fmt.Printf("  %d. zebra %-2d similarity %.2f\n", i+1, a.Group, a.Score)
	}
	if !final.Correct {
		log.Fatalf("in-network answer diverged from oracle: %v vs %v", final.Answers, final.Exact)
	}
	fmt.Println("\nanswer verified against the centralized oracle ✓")
	fmt.Printf("traffic: %d messages, %d bytes (a full collar-track upload would ship %d bytes)\n",
		net.Counter.TotalMessages(), net.Counter.TotalTxBytes(), zebras*steps*8)
}
