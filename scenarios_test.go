package kspot

import (
	"testing"

	"kspot/internal/trace"
)

// TestShippedScenariosLoad keeps the checked-in Configuration Panel files
// (scenarios/*.json) loadable and semantically intact.
func TestShippedScenariosLoad(t *testing.T) {
	demo, err := OpenFile("scenarios/icde09-demo.json")
	if err != nil {
		t.Fatalf("demo scenario: %v", err)
	}
	if got := len(demo.Scenario().Nodes); got != 14 {
		t.Errorf("demo nodes = %d, want 14", got)
	}

	fig1, err := OpenFile("scenarios/figure1.json")
	if err != nil {
		t.Fatalf("figure1 scenario: %v", err)
	}
	cur, err := fig1.Post("SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid")
	if err != nil {
		t.Fatal(err)
	}
	res, err := cur.Step()
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers[0].Group != trace.Fig1RoomC || res.Answers[0].Score != 75 {
		t.Fatalf("figure1 from file answered %v, want (C,75)", res.Answers)
	}
}
