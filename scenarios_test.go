package kspot

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"kspot/internal/model"
	"kspot/internal/trace"
)

// TestShippedScenariosLoad keeps the checked-in Configuration Panel files
// (scenarios/*.json) loadable and semantically intact.
func TestShippedScenariosLoad(t *testing.T) {
	demo, err := OpenFile("scenarios/icde09-demo.json")
	if err != nil {
		t.Fatalf("demo scenario: %v", err)
	}
	if got := len(demo.Scenario().Nodes); got != 14 {
		t.Errorf("demo nodes = %d, want 14", got)
	}

	fig1, err := OpenFile("scenarios/figure1.json")
	if err != nil {
		t.Fatalf("figure1 scenario: %v", err)
	}
	cur, err := fig1.Post("SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid")
	if err != nil {
		t.Fatal(err)
	}
	res, err := cur.Step()
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers[0].Group != trace.Fig1RoomC || res.Answers[0].Score != 75 {
		t.Fatalf("figure1 from file answered %v, want (C,75)", res.Answers)
	}
}

// TestLossyScenariosLoad keeps the unreliable-world family loadable, armed,
// and reproducible: the same lossy scenario stepped twice must produce the
// identical answer stream (the fault layer's determinism contract).
func TestLossyScenariosLoad(t *testing.T) {
	files := map[string]func(f *FaultConfig) bool{
		"scenarios/lossy-bernoulli10.json": func(f *FaultConfig) bool { return f.Loss == 0.10 },
		"scenarios/lossy-bernoulli30.json": func(f *FaultConfig) bool { return f.Loss == 0.30 },
		"scenarios/lossy-burst.json":       func(f *FaultConfig) bool { return f.Burst != nil },
		"scenarios/lossy-churn.json":       func(f *FaultConfig) bool { return len(f.Churn) == 3 },
	}
	for file, check := range files {
		t.Run(file, func(t *testing.T) {
			run := func() []StepResult {
				sys, err := OpenFile(file)
				if err != nil {
					t.Fatalf("%s: %v", file, err)
				}
				f := sys.Scenario().Faults
				if !f.Enabled() || !check(f) {
					t.Fatalf("%s: faults block missing or unexpected: %+v", file, f)
				}
				cur, err := sys.Post("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid")
				if err != nil {
					t.Fatal(err)
				}
				out := make([]StepResult, 0, 16)
				for i := 0; i < 16; i++ {
					res, err := cur.Step()
					if err != nil {
						t.Fatal(err)
					}
					out = append(out, res)
				}
				return out
			}
			a, b := run(), run()
			for e := range a {
				if !model.EqualAnswers(a[e].Answers, b[e].Answers) {
					t.Fatalf("epoch %d: two runs of %s diverged: %v vs %v", e, file, a[e].Answers, b[e].Answers)
				}
			}
		})
	}
}

// TestScaleScenarioConformance extends the substrate-conformance harness to
// the scale family: scenarios/scale-1000.json (1000 sensors, 50 rooms) must
// run to completion on both the deterministic simulator and the concurrent
// live substrate with identical answers and identical traffic, and the file
// must match its deterministic generator (kspot-sim -gen-scale).
func TestScaleScenarioConformance(t *testing.T) {
	sys, err := OpenFile("scenarios/scale-1000.json")
	if err != nil {
		t.Fatalf("scale-1000 scenario: %v", err)
	}
	scen := sys.Scenario()
	if got := len(scen.Nodes); got != 1000 {
		t.Fatalf("scale-1000 nodes = %d, want 1000", got)
	}
	gen, err := ScaleScenario(1000)
	if err != nil {
		t.Fatalf("generator: %v", err)
	}
	genJSON, err := json.Marshal(gen)
	if err != nil {
		t.Fatal(err)
	}
	scenJSON, err := json.Marshal(scen)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(genJSON, scenJSON) {
		t.Fatalf("checked-in scale-1000.json diverges from its generator (regenerate with kspot-sim -gen-scale 1000 -emit scenarios/scale-1000.json)")
	}

	const sql = "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid"
	epochs := 3
	run := func(live bool) ([]StepResult, RunStats) {
		s, err := OpenFile("scenarios/scale-1000.json")
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		var opts []PostOption
		if live {
			opts = append(opts, WithLive())
		}
		cur, err := s.PostWith(sql, AlgoMINT, opts...)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]StepResult, 0, epochs)
		for i := 0; i < epochs; i++ {
			res, err := cur.Step()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res)
		}
		return out, s.CaptureStats("scale", epochs)
	}
	det, detStats := run(false)
	live, liveStats := run(true)
	for e := range det {
		if !model.EqualAnswers(det[e].Answers, live[e].Answers) {
			t.Fatalf("epoch %d: det=%v live=%v", e, det[e].Answers, live[e].Answers)
		}
		if !det[e].Correct {
			t.Fatalf("epoch %d: MINT diverged from the oracle at scale", e)
		}
	}
	if detStats.Messages != liveStats.Messages || detStats.TxBytes != liveStats.TxBytes {
		t.Fatalf("traffic diverged: det %d msgs / %d bytes, live %d msgs / %d bytes",
			detStats.Messages, detStats.TxBytes, liveStats.Messages, liveStats.TxBytes)
	}
}

// TestFederatedScaleConformance is the federation acceptance pin:
// scale-1000 split into 4 shards must produce answers identical to the
// flat run on both the deterministic and the concurrent live substrate
// (1000 goroutines across 4 shard deployments, under -race), with every
// radio message accounted to its shard and the coordinator tier's
// backhaul measured. The sharded scenario is generated, not committed —
// the `kspot-sim -gen-scale 1000 -shards 4` path.
func TestFederatedScaleConformance(t *testing.T) {
	const sql = "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid"
	const epochs = 3

	flatSys, err := OpenFile("scenarios/scale-1000.json")
	if err != nil {
		t.Fatal(err)
	}
	flatCur, err := flatSys.PostWith(sql, AlgoMINT)
	if err != nil {
		t.Fatal(err)
	}
	flat := make([]StepResult, 0, epochs)
	for i := 0; i < epochs; i++ {
		res, err := flatCur.Step()
		if err != nil {
			t.Fatal(err)
		}
		flat = append(flat, res)
	}

	scen, err := ScaleScenarioShards(1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	run := func(live bool) ([]StepResult, RunStats, FederationTraffic) {
		sys, err := Open(scen)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		if sys.Shards() != 4 {
			t.Fatalf("system has %d shards, want 4", sys.Shards())
		}
		var opts []PostOption
		if live {
			opts = append(opts, WithLive())
		}
		cur, err := sys.PostWith(sql, AlgoMINT, opts...)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]StepResult, 0, epochs)
		for i := 0; i < epochs; i++ {
			res, err := cur.Step()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res)
		}
		// Per-shard traffic accounts exactly for the captured total.
		sum := 0
		for _, net := range sys.Networks() {
			sum += net.Snap().Messages
		}
		total := sys.CaptureStats("federated", epochs)
		if total.Messages != sum {
			t.Fatalf("per-shard messages sum %d, capture total %d", sum, total.Messages)
		}
		return out, total, sys.FederationStats()
	}
	det, detStats, detFed := run(false)
	live, liveStats, liveFed := run(true)
	for e := range flat {
		if !model.EqualAnswers(det[e].Answers, flat[e].Answers) {
			t.Fatalf("epoch %d: sharded det=%v, flat=%v", e, det[e].Answers, flat[e].Answers)
		}
		if !model.EqualAnswers(live[e].Answers, flat[e].Answers) {
			t.Fatalf("epoch %d: sharded live=%v, flat=%v", e, live[e].Answers, flat[e].Answers)
		}
		if !det[e].Correct {
			t.Fatalf("epoch %d: federated MINT diverged from the oracle at scale", e)
		}
	}
	if detStats.Messages != liveStats.Messages || detStats.TxBytes != liveStats.TxBytes {
		t.Fatalf("sharded traffic diverged across substrates: det %d msgs / %d bytes, live %d msgs / %d bytes",
			detStats.Messages, detStats.TxBytes, liveStats.Messages, liveStats.TxBytes)
	}
	if detFed != liveFed {
		t.Fatalf("coordinator tier diverged across substrates: det %+v, live %+v", detFed, liveFed)
	}
	if detFed.Rounds != epochs || detFed.Phase1Msgs == 0 {
		t.Fatalf("coordinator tier unaccounted: %+v", detFed)
	}
}

// TestScaleScenario4000Loads keeps the 4000-node file loadable, valid and
// generator-faithful; the full conformance run lives at 1000 nodes to keep
// CI time bounded.
func TestScaleScenario4000Loads(t *testing.T) {
	if testing.Short() {
		t.Skip("4000-node topology build in -short mode")
	}
	sys, err := OpenFile("scenarios/scale-4000.json")
	if err != nil {
		t.Fatalf("scale-4000 scenario: %v", err)
	}
	if got := len(sys.Scenario().Nodes); got != 4000 {
		t.Fatalf("scale-4000 nodes = %d, want 4000", got)
	}
	if got := len(sys.Scenario().Clusters); got != 200 {
		t.Fatalf("scale-4000 clusters = %d, want 200", got)
	}
}

// TestFederatedHistoricConformance is the PR 5 acceptance pin: historic
// TOP-K on scale-1000 split into 4 shards must answer byte-identically to
// the flat historic run on both the deterministic and the concurrent live
// substrate (under -race), with every shard-side radio message accounted
// to its shard, the per-shard counters summing to the captured total, and
// the coordinator tier's two-phase backhaul measured identically on both
// substrates.
func TestFederatedHistoricConformance(t *testing.T) {
	const sql = "SELECT TOP 4 epoch, AVG(sound) FROM sensors WITH HISTORY 16"

	flatSys, err := OpenFile("scenarios/scale-1000.json")
	if err != nil {
		t.Fatal(err)
	}
	flatCur, err := flatSys.PostWith(sql, AlgoTJA)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := flatCur.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(flat) != 4 {
		t.Fatalf("flat historic run returned %d answers, want 4", len(flat))
	}

	scen, err := ScaleScenarioShards(1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	run := func(live bool) ([]Answer, RunStats, FederationTraffic) {
		sys, err := Open(scen)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		if sys.Shards() != 4 {
			t.Fatalf("system has %d shards, want 4", sys.Shards())
		}
		var opts []PostOption
		if live {
			opts = append(opts, WithLive())
		}
		cur, err := sys.PostWith(sql, AlgoTJA, opts...)
		if err != nil {
			t.Fatal(err)
		}
		answers, err := cur.Run()
		if err != nil {
			t.Fatal(err)
		}
		// Shard-side traffic is real radio traffic: every message belongs
		// to exactly one shard and the per-shard counters sum to the
		// captured total.
		sum := 0
		for _, net := range sys.Networks() {
			sum += net.Snap().Messages
		}
		total := sys.CaptureStats("fed-historic", 1)
		if total.Messages != sum {
			t.Fatalf("per-shard messages sum %d, capture total %d", sum, total.Messages)
		}
		if total.Messages == 0 {
			t.Fatal("no shard-side traffic recorded")
		}
		return answers, total, sys.FederationStats()
	}
	det, detStats, detFed := run(false)
	live, liveStats, liveFed := run(true)
	if !model.EqualAnswers(det, flat) {
		t.Fatalf("sharded det=%v, flat=%v", det, flat)
	}
	if !model.EqualAnswers(live, flat) {
		t.Fatalf("sharded live=%v, flat=%v", live, flat)
	}
	if detStats.Messages != liveStats.Messages || detStats.TxBytes != liveStats.TxBytes {
		t.Fatalf("sharded traffic diverged across substrates: det %d msgs / %d bytes, live %d msgs / %d bytes",
			detStats.Messages, detStats.TxBytes, liveStats.Messages, liveStats.TxBytes)
	}
	if detFed != liveFed {
		t.Fatalf("coordinator tier diverged across substrates: det %+v, live %+v", detFed, liveFed)
	}
	if detFed.Rounds != 1 || detFed.Phase1Msgs != 4 || detFed.TxBytes == 0 {
		t.Fatalf("coordinator tier unaccounted: %+v", detFed)
	}
}

// TestFedHistoricDemoScenario keeps the committed federated-historic demo
// file loadable and working end to end: the conference site split into
// two named shard networks, serving a federated WITH HISTORY query whose
// answers match the same query on the flat demo deployment.
func TestFedHistoricDemoScenario(t *testing.T) {
	const sql = "SELECT TOP 3 epoch, AVG(sound) FROM sensors WITH HISTORY 8"
	sys, err := OpenFile("scenarios/fed-historic-demo.json")
	if err != nil {
		t.Fatalf("fed-historic-demo scenario: %v", err)
	}
	defer sys.Close()
	if sys.Shards() != 2 {
		t.Fatalf("shards = %d, want 2", sys.Shards())
	}
	cur, err := sys.Post(sql)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cur.Run()
	if err != nil {
		t.Fatal(err)
	}
	flatSys, err := Open(DemoScenario())
	if err != nil {
		t.Fatal(err)
	}
	flatCur, err := flatSys.Post(sql)
	if err != nil {
		t.Fatal(err)
	}
	want, err := flatCur.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !model.EqualAnswers(got, want) {
		t.Fatalf("federated demo %v, flat %v", got, want)
	}
	panel := sys.SystemPanel(nil)
	for _, label := range []string{"east-wing", "west-wing", "coordinator tier"} {
		if !strings.Contains(panel, label) {
			t.Errorf("panel missing %q:\n%s", label, panel)
		}
	}
}
