package kspot

import (
	"testing"

	"kspot/internal/model"
	"kspot/internal/trace"
)

// TestShippedScenariosLoad keeps the checked-in Configuration Panel files
// (scenarios/*.json) loadable and semantically intact.
func TestShippedScenariosLoad(t *testing.T) {
	demo, err := OpenFile("scenarios/icde09-demo.json")
	if err != nil {
		t.Fatalf("demo scenario: %v", err)
	}
	if got := len(demo.Scenario().Nodes); got != 14 {
		t.Errorf("demo nodes = %d, want 14", got)
	}

	fig1, err := OpenFile("scenarios/figure1.json")
	if err != nil {
		t.Fatalf("figure1 scenario: %v", err)
	}
	cur, err := fig1.Post("SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid")
	if err != nil {
		t.Fatal(err)
	}
	res, err := cur.Step()
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers[0].Group != trace.Fig1RoomC || res.Answers[0].Score != 75 {
		t.Fatalf("figure1 from file answered %v, want (C,75)", res.Answers)
	}
}

// TestLossyScenariosLoad keeps the unreliable-world family loadable, armed,
// and reproducible: the same lossy scenario stepped twice must produce the
// identical answer stream (the fault layer's determinism contract).
func TestLossyScenariosLoad(t *testing.T) {
	files := map[string]func(f *FaultConfig) bool{
		"scenarios/lossy-bernoulli10.json": func(f *FaultConfig) bool { return f.Loss == 0.10 },
		"scenarios/lossy-bernoulli30.json": func(f *FaultConfig) bool { return f.Loss == 0.30 },
		"scenarios/lossy-burst.json":       func(f *FaultConfig) bool { return f.Burst != nil },
		"scenarios/lossy-churn.json":       func(f *FaultConfig) bool { return len(f.Churn) == 3 },
	}
	for file, check := range files {
		t.Run(file, func(t *testing.T) {
			run := func() []StepResult {
				sys, err := OpenFile(file)
				if err != nil {
					t.Fatalf("%s: %v", file, err)
				}
				f := sys.Scenario().Faults
				if !f.Enabled() || !check(f) {
					t.Fatalf("%s: faults block missing or unexpected: %+v", file, f)
				}
				cur, err := sys.Post("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid")
				if err != nil {
					t.Fatal(err)
				}
				out := make([]StepResult, 0, 16)
				for i := 0; i < 16; i++ {
					res, err := cur.Step()
					if err != nil {
						t.Fatal(err)
					}
					out = append(out, res)
				}
				return out
			}
			a, b := run(), run()
			for e := range a {
				if !model.EqualAnswers(a[e].Answers, b[e].Answers) {
					t.Fatalf("epoch %d: two runs of %s diverged: %v vs %v", e, file, a[e].Answers, b[e].Answers)
				}
			}
		})
	}
}
