package kspot

import (
	"fmt"
	"strings"
	"testing"

	"kspot/internal/model"
)

// shardedDemo returns the Figure-3 conference deployment split into n
// federated shards.
func shardedDemo(t *testing.T, n int) *Scenario {
	t.Helper()
	scen := DemoScenario()
	if err := scen.AutoShard(n); err != nil {
		t.Fatal(err)
	}
	return scen
}

// runCursor steps a query to completion and returns the per-epoch results.
func runCursor(t *testing.T, sys *System, sql string, algo Algorithm, live bool, epochs int) []StepResult {
	t.Helper()
	var opts []PostOption
	if live {
		opts = append(opts, WithLive())
	}
	cur, err := sys.PostWith(sql, algo, opts...)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]StepResult, 0, epochs)
	for i := 0; i < epochs; i++ {
		res, err := cur.Step()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, res)
	}
	return out
}

// TestFederatedDemoEquivalence is the federation layer's identical-answer
// pin on the paper's demo deployment: the conference site split into 2 and
// 3 shards must answer every epoch byte-identically to the flat run, for
// MINT and TAG, on both the deterministic and the live substrate — and
// every federated epoch must also match the exact oracle over the union
// of the shards' readings.
func TestFederatedDemoEquivalence(t *testing.T) {
	const sql = "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid"
	const epochs = 10
	for _, algo := range []Algorithm{AlgoMINT, AlgoTAG} {
		flatSys, err := Open(DemoScenario())
		if err != nil {
			t.Fatal(err)
		}
		flat := runCursor(t, flatSys, sql, algo, false, epochs)
		for _, shards := range []int{2, 3} {
			for _, live := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/shards=%d/live=%v", algo, shards, live), func(t *testing.T) {
					sys, err := Open(shardedDemo(t, shards))
					if err != nil {
						t.Fatal(err)
					}
					defer sys.Close()
					if sys.Shards() != shards {
						t.Fatalf("system has %d shards, want %d", sys.Shards(), shards)
					}
					got := runCursor(t, sys, sql, algo, live, epochs)
					for e := range got {
						if !model.EqualAnswers(got[e].Answers, flat[e].Answers) {
							t.Fatalf("epoch %d: federated %v, flat %v", e, got[e].Answers, flat[e].Answers)
						}
						if !got[e].Correct {
							t.Fatalf("epoch %d: federated answers %v diverged from oracle %v",
								e, got[e].Answers, got[e].Exact)
						}
					}
					f := sys.FederationStats()
					if f.Rounds != epochs || f.Phase1Msgs == 0 || f.TxBytes == 0 {
						t.Fatalf("coordinator tier unaccounted: %+v", f)
					}
					// Every radio message belongs to exactly one shard: the
					// per-shard counters must sum to the captured total.
					sum := 0
					for _, net := range sys.Networks() {
						sum += net.Snap().Messages
					}
					if total := sys.CaptureStats("check", epochs); total.Messages != sum {
						t.Fatalf("per-shard messages sum %d, capture total %d", sum, total.Messages)
					}
				})
			}
		}
	}
}

// TestFederatedMultiQueryLive: several live cursors on one sharded
// deployment share the per-shard epoch sweeps and all answer exactly.
func TestFederatedMultiQueryLive(t *testing.T) {
	sys, err := Open(shardedDemo(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	queries := []struct {
		sql  string
		algo Algorithm
	}{
		{"SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid", AlgoMINT},
		{"SELECT TOP 3 roomid, MAX(sound) FROM sensors GROUP BY roomid", AlgoTAG},
	}
	cursors := make([]*Cursor, len(queries))
	for i, q := range queries {
		cur, err := sys.PostWith(q.sql, q.algo, WithLive())
		if err != nil {
			t.Fatal(err)
		}
		cursors[i] = cur
	}
	for e := 0; e < 6; e++ {
		for i, cur := range cursors {
			res, err := cur.Step()
			if err != nil {
				t.Fatal(err)
			}
			if res.Epoch != Epoch(e) {
				t.Fatalf("query %d: epoch %d at step %d (lock-step broken)", i, res.Epoch, e)
			}
			if !res.Correct {
				t.Fatalf("query %d epoch %d: %v vs exact %v", i, e, res.Answers, res.Exact)
			}
		}
	}
}

// TestFederatedHistoricRouting: WITH HISTORY queries rank time instants,
// which span every shard — they must be rejected on a federated
// deployment with a clear error, while GROUP BY ... WITH HISTORY (the
// horizontally fragmented case, which rides the snapshot pipeline) keeps
// working and answering exactly.
func TestFederatedHistoricRouting(t *testing.T) {
	sys, err := Open(shardedDemo(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.Post("SELECT TOP 3 epoch, AVG(sound) FROM sensors WITH HISTORY 16"); err == nil {
		t.Fatal("historic TOP-K accepted on a federated deployment")
	} else if !strings.Contains(err.Error(), "not federated") {
		t.Fatalf("historic rejection unclear: %v", err)
	}
	cur, err := sys.Post("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid WITH HISTORY 4")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		res, err := cur.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Correct {
			t.Fatalf("epoch %d: %v vs %v", res.Epoch, res.Answers, res.Exact)
		}
	}
}

// TestFederatedFaultEquivalence: a sharded deployment under an armed fault
// environment (loss + churn, per-shard derived seeds) must degrade
// identically on the deterministic and the live substrate — answers and
// traffic — and churn must strike the shard that owns the node.
func TestFederatedFaultEquivalence(t *testing.T) {
	const epochs = 12
	cfg := FaultConfig{
		Seed: 11,
		Loss: 0.05,
		Churn: []ChurnEvent{
			{Node: 3, Epoch: 4, Down: true},
		},
	}
	run := func(live bool) ([]StepResult, RunStats) {
		scen := shardedDemo(t, 2)
		scen.Faults = &cfg
		sys, err := Open(scen)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		var opts []PostOption
		if live {
			opts = append(opts, WithLive())
		}
		cur, err := sys.Post("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid", opts...)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]StepResult, 0, epochs)
		for i := 0; i < epochs; i++ {
			res, err := cur.Step()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res)
		}
		// Only the shard that owns node 3 knows it; churn must have
		// struck there (other shards report unknown nodes as alive).
		owned := false
		for _, net := range sys.Networks() {
			if _, ok := net.Topology().Positions[3]; !ok {
				continue
			}
			owned = true
			if net.Alive(3) {
				t.Errorf("live=%v: node 3 should be churned down in its shard", live)
			}
		}
		if !owned {
			t.Errorf("live=%v: no shard owns node 3", live)
		}
		return out, sys.CaptureStats("run", epochs)
	}
	det, detStats := run(false)
	liv, livStats := run(true)
	for e := range det {
		if !model.EqualAnswers(det[e].Answers, liv[e].Answers) {
			t.Fatalf("epoch %d: det %v, live %v", e, det[e].Answers, liv[e].Answers)
		}
	}
	if detStats.Messages != livStats.Messages || detStats.TxBytes != livStats.TxBytes {
		t.Errorf("traffic diverged: det %d msgs/%d bytes, live %d msgs/%d bytes",
			detStats.Messages, detStats.TxBytes, livStats.Messages, livStats.TxBytes)
	}
}

// TestFederatedSystemPanel: the federated panel leads with per-shard
// traffic rows and the coordinator tier's backhaul line.
func TestFederatedSystemPanel(t *testing.T) {
	sys, err := Open(shardedDemo(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	runCursor(t, sys, "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid", AlgoMINT, false, 4)
	panel := sys.SystemPanel(nil)
	for _, want := range []string{"per-shard traffic", "shard-0", "shard-1", "total", "coordinator tier"} {
		if !strings.Contains(panel, want) {
			t.Errorf("panel missing %q:\n%s", want, panel)
		}
	}
}
