package kspot

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"kspot/internal/model"
)

// shardedDemo returns the Figure-3 conference deployment split into n
// federated shards.
func shardedDemo(t *testing.T, n int) *Scenario {
	t.Helper()
	scen := DemoScenario()
	if err := scen.AutoShard(n); err != nil {
		t.Fatal(err)
	}
	return scen
}

// runCursor steps a query to completion and returns the per-epoch results.
func runCursor(t *testing.T, sys *System, sql string, algo Algorithm, live bool, epochs int) []StepResult {
	t.Helper()
	var opts []PostOption
	if live {
		opts = append(opts, WithLive())
	}
	cur, err := sys.PostWith(sql, algo, opts...)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]StepResult, 0, epochs)
	for i := 0; i < epochs; i++ {
		res, err := cur.Step()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, res)
	}
	return out
}

// TestFederatedDemoEquivalence is the federation layer's identical-answer
// pin on the paper's demo deployment: the conference site split into 2 and
// 3 shards must answer every epoch byte-identically to the flat run, for
// MINT and TAG, on both the deterministic and the live substrate — and
// every federated epoch must also match the exact oracle over the union
// of the shards' readings.
func TestFederatedDemoEquivalence(t *testing.T) {
	const sql = "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid"
	const epochs = 10
	for _, algo := range []Algorithm{AlgoMINT, AlgoTAG} {
		flatSys, err := Open(DemoScenario())
		if err != nil {
			t.Fatal(err)
		}
		flat := runCursor(t, flatSys, sql, algo, false, epochs)
		for _, shards := range []int{2, 3} {
			for _, live := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/shards=%d/live=%v", algo, shards, live), func(t *testing.T) {
					sys, err := Open(shardedDemo(t, shards))
					if err != nil {
						t.Fatal(err)
					}
					defer sys.Close()
					if sys.Shards() != shards {
						t.Fatalf("system has %d shards, want %d", sys.Shards(), shards)
					}
					got := runCursor(t, sys, sql, algo, live, epochs)
					for e := range got {
						if !model.EqualAnswers(got[e].Answers, flat[e].Answers) {
							t.Fatalf("epoch %d: federated %v, flat %v", e, got[e].Answers, flat[e].Answers)
						}
						if !got[e].Correct {
							t.Fatalf("epoch %d: federated answers %v diverged from oracle %v",
								e, got[e].Answers, got[e].Exact)
						}
					}
					f := sys.FederationStats()
					if f.Rounds != epochs || f.Phase1Msgs == 0 || f.TxBytes == 0 {
						t.Fatalf("coordinator tier unaccounted: %+v", f)
					}
					// Every radio message belongs to exactly one shard: the
					// per-shard counters must sum to the captured total.
					sum := 0
					for _, net := range sys.Networks() {
						sum += net.Snap().Messages
					}
					if total := sys.CaptureStats("check", epochs); total.Messages != sum {
						t.Fatalf("per-shard messages sum %d, capture total %d", sum, total.Messages)
					}
				})
			}
		}
	}
}

// TestFederatedMultiQueryLive: several live cursors on one sharded
// deployment share the per-shard epoch sweeps and all answer exactly.
func TestFederatedMultiQueryLive(t *testing.T) {
	sys, err := Open(shardedDemo(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	queries := []struct {
		sql  string
		algo Algorithm
	}{
		{"SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid", AlgoMINT},
		{"SELECT TOP 3 roomid, MAX(sound) FROM sensors GROUP BY roomid", AlgoTAG},
	}
	cursors := make([]*Cursor, len(queries))
	for i, q := range queries {
		cur, err := sys.PostWith(q.sql, q.algo, WithLive())
		if err != nil {
			t.Fatal(err)
		}
		cursors[i] = cur
	}
	for e := 0; e < 6; e++ {
		for i, cur := range cursors {
			res, err := cur.Step()
			if err != nil {
				t.Fatal(err)
			}
			if res.Epoch != Epoch(e) {
				t.Fatalf("query %d: epoch %d at step %d (lock-step broken)", i, res.Epoch, e)
			}
			if !res.Correct {
				t.Fatalf("query %d epoch %d: %v vs exact %v", i, e, res.Answers, res.Exact)
			}
		}
	}
}

// TestFederatedHistoricDemo: WITH HISTORY federates (PR 5 lifted the PR 4
// rejection). On the demo deployment split 2 and 3 ways, for TJA, TPUT
// and the centralized baseline, the federated historic answers must be
// byte-identical to the flat run on both substrates, with coordinator
// backhaul accounted — and GROUP BY ... WITH HISTORY (the horizontally
// fragmented case, which rides the snapshot pipeline) keeps working.
func TestFederatedHistoricDemo(t *testing.T) {
	const sql = "SELECT TOP 4 epoch, AVG(sound) FROM sensors WITH HISTORY 16"
	for _, algo := range []Algorithm{AlgoTJA, AlgoTPUT, AlgoCentral} {
		flatSys, err := Open(DemoScenario())
		if err != nil {
			t.Fatal(err)
		}
		flatCur, err := flatSys.PostWith(sql, algo)
		if err != nil {
			t.Fatal(err)
		}
		flat, err := flatCur.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(flat) != 4 {
			t.Fatalf("%s: flat run returned %d answers, want 4", algo, len(flat))
		}
		for _, shards := range []int{2, 3} {
			for _, live := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/shards=%d/live=%v", algo, shards, live), func(t *testing.T) {
					sys, err := Open(shardedDemo(t, shards))
					if err != nil {
						t.Fatal(err)
					}
					defer sys.Close()
					var opts []PostOption
					if live {
						opts = append(opts, WithLive())
					}
					cur, err := sys.PostWith(sql, algo, opts...)
					if err != nil {
						t.Fatal(err)
					}
					got, err := cur.Run()
					if err != nil {
						t.Fatal(err)
					}
					if !model.EqualAnswers(got, flat) {
						t.Fatalf("federated %v, flat %v", got, flat)
					}
					f := sys.FederationStats()
					if f.Rounds != 1 || f.Phase1Msgs != shards || f.TxBytes == 0 {
						t.Fatalf("coordinator tier unaccounted: %+v", f)
					}
				})
			}
		}
	}

	sys, err := Open(shardedDemo(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	cur, err := sys.Post("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid WITH HISTORY 4")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		res, err := cur.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Correct {
			t.Fatalf("epoch %d: %v vs %v", res.Epoch, res.Answers, res.Exact)
		}
	}
}

// TestFederatedFaultEquivalence: a sharded deployment under an armed fault
// environment (loss + churn, per-shard derived seeds) must degrade
// identically on the deterministic and the live substrate — answers and
// traffic — and churn must strike the shard that owns the node.
func TestFederatedFaultEquivalence(t *testing.T) {
	const epochs = 12
	cfg := FaultConfig{
		Seed: 11,
		Loss: 0.05,
		Churn: []ChurnEvent{
			{Node: 3, Epoch: 4, Down: true},
		},
	}
	run := func(live bool) ([]StepResult, RunStats) {
		scen := shardedDemo(t, 2)
		scen.Faults = &cfg
		sys, err := Open(scen)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		var opts []PostOption
		if live {
			opts = append(opts, WithLive())
		}
		cur, err := sys.Post("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid", opts...)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]StepResult, 0, epochs)
		for i := 0; i < epochs; i++ {
			res, err := cur.Step()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res)
		}
		// Only the shard that owns node 3 knows it; churn must have
		// struck there (other shards report unknown nodes as alive).
		owned := false
		for _, net := range sys.Networks() {
			if _, ok := net.Topology().Positions[3]; !ok {
				continue
			}
			owned = true
			if net.Alive(3) {
				t.Errorf("live=%v: node 3 should be churned down in its shard", live)
			}
		}
		if !owned {
			t.Errorf("live=%v: no shard owns node 3", live)
		}
		return out, sys.CaptureStats("run", epochs)
	}
	det, detStats := run(false)
	liv, livStats := run(true)
	for e := range det {
		if !model.EqualAnswers(det[e].Answers, liv[e].Answers) {
			t.Fatalf("epoch %d: det %v, live %v", e, det[e].Answers, liv[e].Answers)
		}
	}
	if detStats.Messages != livStats.Messages || detStats.TxBytes != livStats.TxBytes {
		t.Errorf("traffic diverged: det %d msgs/%d bytes, live %d msgs/%d bytes",
			detStats.Messages, detStats.TxBytes, livStats.Messages, livStats.TxBytes)
	}
}

// TestFederatedSystemPanel: the federated panel leads with per-shard
// traffic rows and the coordinator tier's backhaul line.
func TestFederatedSystemPanel(t *testing.T) {
	sys, err := Open(shardedDemo(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	runCursor(t, sys, "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid", AlgoMINT, false, 4)
	panel := sys.SystemPanel(nil)
	for _, want := range []string{"per-shard traffic", "shard-0", "shard-1", "total", "coordinator tier"} {
		if !strings.Contains(panel, want) {
			t.Errorf("panel missing %q:\n%s", want, panel)
		}
	}
}

// TestFederatedCloseDuringStep extends the goroutine-leak contract to the
// federated teardown: a live sharded deployment with StepContext cancels
// racing System.Close must neither deadlock nor double-deliver — every
// epoch observed before the close is gapless, a cancelled epoch
// re-buffered on one shard while another shard's Live tears down is
// dropped (never resurrected), and every shard's node goroutines exit.
func TestFederatedCloseDuringStep(t *testing.T) {
	base := runtime.NumGoroutine()
	for round := 0; round < 8; round++ {
		sys, err := Open(shardedDemo(t, 3))
		if err != nil {
			t.Fatal(err)
		}
		cur, err := sys.Post("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid", WithLive())
		if err != nil {
			t.Fatal(err)
		}
		next := Epoch(0)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 50; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				if i%3 == 0 {
					go cancel()
				}
				res, err := cur.StepContext(ctx)
				cancel()
				switch {
				case err == nil:
					if res.Epoch != next {
						t.Errorf("round %d: epoch %d, want %d (gap or double delivery)", round, res.Epoch, next)
						return
					}
					next++
				case errors.Is(err, context.Canceled):
					// Abandoned; outcome re-buffered (or dropped post-Close).
				default:
					return // closed under us — the expected exit
				}
			}
		}()
		sys.Close() // concurrent with in-flight federated steps
		<-done
		if _, err := cur.Step(); err == nil {
			t.Fatalf("round %d: Step after Close succeeded", round)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d at start", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFederatedCloseDuringHistoricRun: one-shot historic executions run
// outside the scheduler's lock-step, so Close must wait them out before
// stopping any shard's Live — otherwise a federated run finds a shard
// torn down mid-protocol (a panic on the worker path). The run either
// completes exactly or the post-close posting fails cleanly.
func TestFederatedCloseDuringHistoricRun(t *testing.T) {
	const sql = "SELECT TOP 3 epoch, AVG(sound) FROM sensors WITH HISTORY 16"
	for round := 0; round < 10; round++ {
		sys, err := Open(shardedDemo(t, 3))
		if err != nil {
			t.Fatal(err)
		}
		cur, err := sys.Post(sql, WithLive())
		if err != nil {
			t.Fatal(err)
		}
		got := make(chan error, 1)
		go func() {
			answers, err := cur.Run()
			if err == nil && len(answers) != 3 {
				err = fmt.Errorf("short answer set %v", answers)
			}
			got <- err
		}()
		sys.Close() // racing the in-flight federated historic run
		if err := <-got; err != nil && !strings.Contains(err.Error(), "closed") {
			t.Fatalf("round %d: %v", round, err)
		}
		if _, err := sys.Post(sql, WithLive()); err == nil {
			// Posting after Close restarts a fresh live deployment by
			// design; just close it again so nothing leaks from the test.
			sys.Close()
		}
	}
}

// TestAutoShardFaultsAcrossShardCounts is the faults × AutoShard table
// test: one deployment-wide fault environment (loss + churn) re-sharded
// 1, 2 and 4 ways must stay deterministic (two opens agree epoch for
// epoch), keep shard 0's derived seed equal to the base seed, and route
// every churn event to exactly the shard that owns the node.
func TestAutoShardFaultsAcrossShardCounts(t *testing.T) {
	const epochs = 8
	cfg := FaultConfig{
		Seed: 23,
		Loss: 0.05,
		Churn: []ChurnEvent{
			{Node: 3, Epoch: 2, Down: true},
			{Node: 9, Epoch: 4, Down: true},
		},
	}
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			run := func() []StepResult {
				scen := DemoScenario()
				if err := scen.AutoShard(shards); err != nil {
					t.Fatal(err)
				}
				scen.Faults = &cfg
				// Derived seeds are a pure function of (base, shard index):
				// shard 0 always keeps the base seed no matter the count.
				if got := scen.ShardFaultSeed(cfg.Seed, 0); got != cfg.Seed {
					t.Fatalf("shard 0 seed %d, want base %d", got, cfg.Seed)
				}
				sys, err := Open(scen)
				if err != nil {
					t.Fatal(err)
				}
				defer sys.Close()
				if sys.Shards() != shards {
					t.Fatalf("system has %d shards, want %d", sys.Shards(), shards)
				}
				cur, err := sys.Post("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid")
				if err != nil {
					t.Fatal(err)
				}
				out := make([]StepResult, 0, epochs)
				for i := 0; i < epochs; i++ {
					res, err := cur.Step()
					if err != nil {
						t.Fatal(err)
					}
					out = append(out, res)
				}
				// Churn must strike exactly the owning shard: the downed
				// node is dead where it lives, untouched everywhere else.
				for _, victim := range []NodeID{3, 9} {
					owners := 0
					for _, net := range sys.Networks() {
						if _, owns := net.Topology().Positions[victim]; owns {
							owners++
							if net.Alive(victim) {
								t.Errorf("shards=%d: node %d alive in its own shard after churn", shards, victim)
							}
						} else if !net.Alive(victim) {
							t.Errorf("shards=%d: node %d reported dead by a shard that does not own it", shards, victim)
						}
					}
					if owners != 1 {
						t.Errorf("shards=%d: node %d owned by %d shards", shards, victim, owners)
					}
				}
				return out
			}
			a, b := run(), run()
			for e := range a {
				if !model.EqualAnswers(a[e].Answers, b[e].Answers) {
					t.Fatalf("epoch %d: re-sharded fault run nondeterministic: %v vs %v", e, a[e].Answers, b[e].Answers)
				}
			}
		})
	}
}
