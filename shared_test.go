package kspot

// The multi-tenant serving acceptance suite: M queries that share a
// sensing signature must ride ONE in-network acquisition per epoch while
// answering byte-identically to M independent deployments — under link
// loss, frame duplication/delay and node churn, on the deterministic and
// the concurrent live substrate, in the in-process federation and over
// loopback wire shards. The traffic side of the bar is exact: a shared
// run's radio counters equal the sum of one independent run per DISTINCT
// signature, not per query.

import (
	"fmt"
	"runtime"
	"testing"
)

const sharedEpochs = 4

// sharedFaultEnv is the unreliable world the suite arms on every system it
// compares: Bernoulli loss, duplication, delay, and churn events placed
// inside the stepped epoch range (a death, a second death, a revival).
func sharedFaultEnv() *FaultConfig {
	return &FaultConfig{
		Seed:      42,
		Loss:      0.10,
		Duplicate: 0.05,
		Delay:     0.05,
		Churn: []ChurnEvent{
			{Node: 7, Epoch: 1, Down: true},
			{Node: 350, Epoch: 2, Down: true},
			{Node: 7, Epoch: 3, Down: false},
		},
	}
}

// sharedMember is one posted query of the workload: its SQL spelling and
// the algorithm it is posted under.
type sharedMember struct {
	sql  string
	algo Algorithm
}

// sharedWorkload returns the 16-query workload: 4 distinct sensing
// signatures × 4 equivalent spellings each (case, whitespace, projection
// shape, duration units, AlgoAuto vs explicit MINT). Every member of a
// group carries the same K, so each group's answers must be byte-identical
// to one independent deployment of that group's first member.
func sharedWorkload() [][]sharedMember {
	return [][]sharedMember{
		// Snapshot TOP-K on MINT; AlgoAuto resolves to MINT, so mixing the
		// two must still share one acquisition.
		{
			{"SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid", AlgoAuto},
			{"select top 3 roomid, avg(sound) from sensors group by roomid", AlgoMINT},
			{"SELECT   TOP 3   AVG( SOUND )  FROM  SENSORS   GROUP BY ROOMID", AlgoAuto},
			{"select top 3 Avg(Sound), RoomId from Sensors group by RoomId", AlgoMINT},
		},
		// Distinct attribute and aggregate; duration-unit folding (60 s ==
		// 1 min == 60000 ms) must not split the group.
		{
			{"SELECT TOP 2 roomid, MAX(temp) FROM sensors GROUP BY roomid EPOCH DURATION 60 s", AlgoAuto},
			{"select top 2 max(temp) from sensors group by roomid epoch duration 1 min", AlgoAuto},
			{"SELECT TOP 2 MAX(TEMP) FROM SENSORS GROUP BY ROOMID EPOCH DURATION 60 SECONDS", AlgoAuto},
			{"Select Top 2 RoomId, Max(Temp) From Sensors Group By RoomId Epoch Duration 60000 ms", AlgoAuto},
		},
		// Same sensing plan as nothing above but pinned to TAG: the
		// algorithm is part of the acquisition key, the spellings are not.
		{
			{"SELECT TOP 4 roomid, AVG(light) FROM sensors GROUP BY roomid", AlgoTAG},
			{"select top 4 roomid, avg(light) from sensors group by roomid", AlgoTAG},
			{"SELECT TOP 4 AVG(LIGHT) FROM SENSORS GROUP BY ROOMID", AlgoTAG},
			{"select top 4 Avg(Light), roomid from sensors group by roomid", AlgoTAG},
		},
		// GROUP BY ... WITH HISTORY rides the snapshot pipeline on derived
		// window-aggregate readings; the history window is part of the key.
		{
			{"SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid WITH HISTORY 4", AlgoAuto},
			{"select top 2 avg(sound) from sensors group by roomid with history 4", AlgoAuto},
			{"SELECT TOP 2 AVG(SOUND) FROM SENSORS WITH HISTORY 4 GROUP BY ROOMID", AlgoAuto},
			{"select top 2 roomid, Avg(Sound) from sensors with history 4 group by RoomId", AlgoAuto},
		},
	}
}

// sharedRun is one deployment's view of the full workload: per-member
// per-epoch results plus the deployment's counters.
type sharedRun struct {
	steps [][]StepResult // [member][epoch], members flattened group-major
	stats RunStats
	fed   FederationTraffic
}

// runSharedWorkload posts every member of every group on one System and
// advances them in epoch lock-step.
func runSharedWorkload(t *testing.T, sys *System, live bool, epochs int) sharedRun {
	t.Helper()
	var opts []PostOption
	if live {
		opts = append(opts, WithLive())
	}
	var cursors []*Cursor
	for _, group := range sharedWorkload() {
		for _, m := range group {
			cur, err := sys.PostWith(m.sql, m.algo, opts...)
			if err != nil {
				t.Fatalf("posting %q: %v", m.sql, err)
			}
			cursors = append(cursors, cur)
		}
	}
	run := sharedRun{steps: make([][]StepResult, len(cursors))}
	for e := 0; e < epochs; e++ {
		for i, cur := range cursors {
			res, err := cur.Step()
			if err != nil {
				t.Fatalf("member %d epoch %d: %v", i, e, err)
			}
			run.steps[i] = append(run.steps[i], res)
		}
	}
	run.stats = sys.CaptureStats("shared", epochs)
	run.fed = sys.FederationStats()
	return run
}

// runIndependent opens a fresh deployment per signature group and runs ONE
// member of it — the baseline the shared run must match answer-for-answer
// (every member) and counter-for-counter (summed across groups).
func runIndependent(t *testing.T, openSys func() *System, epochs int) []sharedRun {
	t.Helper()
	var out []sharedRun
	for gi, group := range sharedWorkload() {
		sys := openSys()
		cur, err := sys.PostWith(group[0].sql, group[0].algo)
		if err != nil {
			t.Fatalf("group %d: %v", gi, err)
		}
		var steps []StepResult
		for e := 0; e < epochs; e++ {
			res, err := cur.Step()
			if err != nil {
				t.Fatalf("group %d epoch %d: %v", gi, e, err)
			}
			steps = append(steps, res)
		}
		run := sharedRun{
			steps: [][]StepResult{steps},
			stats: sys.CaptureStats("independent", epochs),
			fed:   sys.FederationStats(),
		}
		sys.Close()
		out = append(out, run)
	}
	return out
}

// radioCounters projects the counters the byte-identity bar compares:
// in-network radio traffic. Energy is deliberately excluded — a shared
// deployment idles and senses its epochs once, independents once each.
func radioCounters(s RunStats) [5]int {
	return [5]int{s.Messages, s.Frames, s.TxBytes, s.RxBytes, s.Drops}
}

func sumRadioCounters(runs []sharedRun) [5]int {
	var sum [5]int
	for _, r := range runs {
		c := radioCounters(r.stats)
		for i := range sum {
			sum[i] += c[i]
		}
	}
	return sum
}

// checkSharedAnswers pins every member's per-epoch answers byte-identical
// to its group's independent run.
func checkSharedAnswers(t *testing.T, label string, shared sharedRun, indep []sharedRun) {
	t.Helper()
	groups := sharedWorkload()
	mi := 0
	for gi, group := range groups {
		for _, m := range group {
			stepEqualByteIdentical(t,
				fmt.Sprintf("%s: member %q vs independent group %d", label, m.sql, gi),
				shared.steps[mi], indep[gi].steps[0])
			mi++
		}
	}
}

// TestSharedAcquisitionByteIdentity is the PR acceptance pin: 16 queries
// over 4 distinct sensing signatures on flat scale-1000 with loss,
// duplication, delay and churn armed. Every member answers byte-identically
// to an independent deployment running only its signature, the shared
// deployment's radio traffic equals the sum of the 4 independent runs (one
// per signature — traffic is per-signature, not per-query), and the
// concurrent live substrate reproduces the deterministic run exactly.
func TestSharedAcquisitionByteIdentity(t *testing.T) {
	openFlat := func() *System {
		scen, err := ScaleScenario(1000)
		if err != nil {
			t.Fatal(err)
		}
		scen.Faults = sharedFaultEnv()
		sys, err := Open(scen, WithParallel(runtime.NumCPU()))
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}

	detSys := openFlat()
	det := runSharedWorkload(t, detSys, false, sharedEpochs)
	detSys.Close()

	indep := runIndependent(t, openFlat, sharedEpochs)
	checkSharedAnswers(t, "det", det, indep)
	if got, want := radioCounters(det.stats), sumRadioCounters(indep); got != want {
		t.Fatalf("shared det radio traffic %v != sum of per-signature independents %v\n"+
			"(msgs, frames, txBytes, rxBytes, drops)", got, want)
	}

	liveSys := openFlat()
	defer liveSys.Close()
	live := runSharedWorkload(t, liveSys, true, sharedEpochs)
	for mi := range det.steps {
		stepEqualByteIdentical(t, fmt.Sprintf("live member %d vs det", mi), live.steps[mi], det.steps[mi])
	}
	if got, want := radioCounters(live.stats), radioCounters(det.stats); got != want {
		t.Fatalf("live shared radio traffic %v != det %v", got, want)
	}
}

// TestSharedAcquisitionFederated extends the byte-identity bar to the
// federated deployment: scale-1000 split 4 ways, same faults (specialized
// per shard by the scenario's derived seeds), 16 shared queries vs 4
// independent federations. The coordinator tier is per-QUERY work — each
// member runs its own merge above the shared acquisition — so its counters
// must equal exactly 4× the per-signature independents' sum, while the
// shard-side radio counters equal the plain sum.
func TestSharedAcquisitionFederated(t *testing.T) {
	openFed := func() *System {
		scen, err := ScaleScenarioShards(1000, 4)
		if err != nil {
			t.Fatal(err)
		}
		scen.Faults = sharedFaultEnv()
		sys, err := Open(scen, WithParallel(runtime.NumCPU()))
		if err != nil {
			t.Fatal(err)
		}
		if sys.Shards() != 4 {
			t.Fatalf("system has %d shards, want 4", sys.Shards())
		}
		return sys
	}

	sys := openFed()
	shared := runSharedWorkload(t, sys, false, sharedEpochs)
	sys.Close()

	indep := runIndependent(t, openFed, sharedEpochs)
	checkSharedAnswers(t, "federated", shared, indep)
	if got, want := radioCounters(shared.stats), sumRadioCounters(indep); got != want {
		t.Fatalf("shared federated radio traffic %v != sum of independents %v", got, want)
	}

	var want FederationTraffic
	for _, r := range indep {
		const membersPerGroup = 4
		want.Rounds += membersPerGroup * r.fed.Rounds
		want.Phase1Msgs += membersPerGroup * r.fed.Phase1Msgs
		want.Phase2Reqs += membersPerGroup * r.fed.Phase2Reqs
		want.Phase2Msgs += membersPerGroup * r.fed.Phase2Msgs
		want.Fetched += membersPerGroup * r.fed.Fetched
		want.TxBytes += membersPerGroup * r.fed.TxBytes
	}
	if shared.fed != want {
		t.Fatalf("coordinator tier diverged: shared %+v, want 4x independents %+v", shared.fed, want)
	}
	if shared.fed.Rounds == 0 || shared.fed.Phase1Msgs == 0 {
		t.Fatalf("coordinator tier unaccounted: %+v", shared.fed)
	}
}

// TestSharedAcquisitionWire runs the same 16-query workload against 4
// loopback wire shards (real sockets, the whole protocol under -race):
// answers and the coordinator tier must be byte-identical to the
// in-process federation with the identical faults armed, and the shard
// counters fetched over the wire must reconcile message for message.
func TestSharedAcquisitionWire(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-1000 wire conformance in -short mode")
	}
	faultyScen := func() *Scenario {
		scen, err := ScaleScenarioShards(1000, 4)
		if err != nil {
			t.Fatal(err)
		}
		scen.Faults = sharedFaultEnv()
		return scen
	}

	inprocSys, err := Open(faultyScen(), WithParallel(runtime.NumCPU()))
	if err != nil {
		t.Fatal(err)
	}
	defer inprocSys.Close()
	inproc := runSharedWorkload(t, inprocSys, false, sharedEpochs)

	addrs, _ := startWireShards(t, faultyScen(), runtime.NumCPU())
	remote, err := OpenFederated(faultyScen(), addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	got := runSharedWorkload(t, remote, false, sharedEpochs)

	for mi := range inproc.steps {
		stepEqualByteIdentical(t, fmt.Sprintf("wire member %d vs in-process", mi), got.steps[mi], inproc.steps[mi])
	}
	if got.fed != inproc.fed {
		t.Fatalf("coordinator tier diverged: wire %+v, in-process %+v", got.fed, inproc.fed)
	}
	remoteRows, err := remote.ShardStats()
	if err != nil {
		t.Fatal(err)
	}
	inprocRows, err := inprocSys.ShardStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(remoteRows) != len(inprocRows) {
		t.Fatalf("%d remote stat rows vs %d", len(remoteRows), len(inprocRows))
	}
	for i := range remoteRows {
		r, p := remoteRows[i], inprocRows[i]
		if r.Messages != p.Messages || r.Frames != p.Frames ||
			r.TxBytes != p.TxBytes || r.RxBytes != p.RxBytes || r.Drops != p.Drops {
			t.Fatalf("shard %d counters diverged:\nwire       %+v\nin-process %+v", i, r, p)
		}
	}
}

// TestSharedAcquisitionWidening: a later same-signature post with a deeper
// K widens the group — both cursors keep stepping, each is cut to its own
// K, and answers stay oracle-exact on the clean demo deployment. Closing
// the wide cursor leaves the narrow one serving; closing the last member
// dissolves the group so a fresh post re-attaches cleanly.
func TestSharedAcquisitionWidening(t *testing.T) {
	sys, err := Open(DemoScenario())
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := sys.Post("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid")
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 2; e++ {
		if res, err := narrow.Step(); err != nil || !res.Correct {
			t.Fatalf("narrow pre-widen epoch %d: err=%v res=%+v", e, err, res)
		}
	}
	wide, err := sys.Post("select top 4 roomid, avg(sound) from sensors group by roomid")
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 3; e++ {
		nres, err := narrow.Step()
		if err != nil {
			t.Fatal(err)
		}
		wres, err := wide.Step()
		if err != nil {
			t.Fatal(err)
		}
		if len(nres.Answers) > 2 || len(wres.Answers) > 4 {
			t.Fatalf("per-member cut violated: narrow %d answers, wide %d", len(nres.Answers), len(wres.Answers))
		}
		if !nres.Correct || !wres.Correct {
			t.Fatalf("answers diverged from oracle after widening: narrow %+v wide %+v", nres, wres)
		}
		if len(wres.Answers) <= len(nres.Answers) {
			t.Fatalf("widened acquisition not deeper: narrow %d answers, wide %d", len(nres.Answers), len(wres.Answers))
		}
	}
	wide.Close()
	if res, err := narrow.Step(); err != nil || !res.Correct {
		t.Fatalf("narrow cursor broken after wide member closed: err=%v res=%+v", err, res)
	}
	narrow.Close()
	fresh, err := sys.Post("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid")
	if err != nil {
		t.Fatal(err)
	}
	if res, err := fresh.Step(); err != nil || !res.Correct {
		t.Fatalf("re-post after group dissolved: err=%v res=%+v", err, res)
	}
}
