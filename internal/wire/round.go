package wire

// The batched epoch-round codec (CapEpochRound). One MsgEpochRound frame
// carries the epoch and every shared-acquisition group's query id; the
// MsgEpochRoundReply carries the epoch's sense readings plus every group's
// acquisition — the whole federated epoch in one round trip instead of
// 1 + G. Readings cross in a roster-positional encoding: both ends know
// the shard's sensor roster (fixed at handshake — the node set is static
// configuration), so a reading map is a presence bitmap over the roster
// plus per-node varint deltas, not self-describing 12-byte keyed records.
// For a 250-node shard that is ~4 bytes of bitmap plus a few bytes per
// node instead of 12, and the decoder allocates one map, not one per
// record pass.
//
// Every encoding here is canonical — one byte string per value, enforced
// by strict (minimal-length) varint decoding, zeroed bitmap padding and
// status bytes derived from content — so retried frames are byte-identical
// and FuzzEpochRoundDecode can require decode∘encode to be the identity.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"kspot/internal/model"
)

// EpochRoundReq asks the shard to sense the epoch and run one epoch of
// every listed attached query, in order, in a single round trip.
type EpochRoundReq struct {
	Epoch   model.Epoch
	Queries []uint32 // one attached query id per shared-acquisition group
}

// RoundGroup is one group's slice of an epoch-round reply. Exactly one of
// Err / (Answers, Override) is meaningful: a non-empty Err means this
// group's acquisition failed (the other groups and the sensing stand).
// Override is nil unless the query runs on derived per-node inputs.
type RoundGroup struct {
	Err      string
	Answers  []model.Answer
	Override map[model.NodeID]model.Reading
}

// EpochRoundReply is the shard's whole epoch: the post-commit sense
// readings plus every group's acquisition, in request order.
type EpochRoundReply struct {
	Epoch    model.Epoch
	Readings map[model.NodeID]model.Reading
	Groups   []RoundGroup
}

// Group status bytes (derived from content, making the encoding canonical).
const (
	roundGroupOK       = 0 // answers, shared sensing
	roundGroupOverride = 1 // answers + derived readings
	roundGroupErr      = 2 // error string
)

// AppendEpochRound appends the wire form of r: epoch, group count, then
// one query id per group.
func AppendEpochRound(dst []byte, r EpochRoundReq) []byte {
	dst = AppendEpoch(dst, r.Epoch)
	var n [2]byte
	binary.LittleEndian.PutUint16(n[:], uint16(len(r.Queries)))
	dst = append(dst, n[:]...)
	for _, q := range r.Queries {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], q)
		dst = append(dst, buf[:]...)
	}
	return dst
}

// DecodeEpochRound decodes an epoch-round request.
func DecodeEpochRound(b []byte) (EpochRoundReq, error) {
	if len(b) < 6 {
		return EpochRoundReq{}, io.ErrUnexpectedEOF
	}
	r := EpochRoundReq{Epoch: model.Epoch(binary.LittleEndian.Uint32(b[0:]))}
	n := int(binary.LittleEndian.Uint16(b[4:]))
	b = b[6:]
	if len(b) != n*4 {
		return EpochRoundReq{}, fmt.Errorf("wire: epoch-round payload %d bytes for %d queries", len(b), n)
	}
	r.Queries = make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		r.Queries = append(r.Queries, binary.LittleEndian.Uint32(b[4*i:]))
	}
	return r, nil
}

// AppendEpochRoundReply appends the wire form of r: epoch, the sense
// readings as a roster block, then each group as a status byte followed by
// either an error string or answers (+ an override roster block).
func AppendEpochRoundReply(dst []byte, roster []model.NodeID, r EpochRoundReply) ([]byte, error) {
	dst = AppendEpoch(dst, r.Epoch)
	var err error
	if dst, err = AppendRosterReadings(dst, roster, r.Epoch, r.Readings); err != nil {
		return nil, err
	}
	var n [2]byte
	binary.LittleEndian.PutUint16(n[:], uint16(len(r.Groups)))
	dst = append(dst, n[:]...)
	for _, g := range r.Groups {
		switch {
		case g.Err != "":
			dst = append(dst, roundGroupErr)
			dst = appendString(dst, g.Err)
		default:
			status := byte(roundGroupOK)
			if g.Override != nil {
				status = roundGroupOverride
			}
			dst = append(dst, status)
			binary.LittleEndian.PutUint16(n[:], uint16(len(g.Answers)))
			dst = append(dst, n[:]...)
			for _, a := range g.Answers {
				dst = model.AppendAnswer(dst, a)
			}
			if g.Override != nil {
				if dst, err = AppendRosterReadings(dst, roster, r.Epoch, g.Override); err != nil {
					return nil, err
				}
			}
		}
	}
	return dst, nil
}

// DecodeEpochRoundReply decodes an epoch-round reply against the session's
// roster. The decode is strict: any non-canonical byte string is rejected.
func DecodeEpochRoundReply(b []byte, roster []model.NodeID) (EpochRoundReply, error) {
	if len(b) < 4 {
		return EpochRoundReply{}, io.ErrUnexpectedEOF
	}
	r := EpochRoundReply{Epoch: model.Epoch(binary.LittleEndian.Uint32(b[0:]))}
	var err error
	if r.Readings, b, err = DecodeRosterReadings(b[4:], roster, r.Epoch); err != nil {
		return EpochRoundReply{}, err
	}
	if len(b) < 2 {
		return EpochRoundReply{}, io.ErrUnexpectedEOF
	}
	n := int(binary.LittleEndian.Uint16(b[0:]))
	b = b[2:]
	r.Groups = make([]RoundGroup, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 1 {
			return EpochRoundReply{}, io.ErrUnexpectedEOF
		}
		status := b[0]
		b = b[1:]
		var g RoundGroup
		switch status {
		case roundGroupErr:
			if g.Err, b, err = decodeString(b); err != nil {
				return EpochRoundReply{}, err
			}
			if g.Err == "" {
				return EpochRoundReply{}, fmt.Errorf("wire: epoch-round group %d: empty error", i)
			}
		case roundGroupOK, roundGroupOverride:
			if len(b) < 2 {
				return EpochRoundReply{}, io.ErrUnexpectedEOF
			}
			m := int(binary.LittleEndian.Uint16(b[0:]))
			b = b[2:]
			if len(b) < m*model.AnswerWireSize {
				return EpochRoundReply{}, io.ErrUnexpectedEOF
			}
			g.Answers = make([]model.Answer, 0, m)
			for j := 0; j < m; j++ {
				var a model.Answer
				if a, b, err = model.DecodeAnswer(b); err != nil {
					return EpochRoundReply{}, err
				}
				g.Answers = append(g.Answers, a)
			}
			if status == roundGroupOverride {
				if g.Override, b, err = DecodeRosterReadings(b, roster, r.Epoch); err != nil {
					return EpochRoundReply{}, err
				}
			}
		default:
			return EpochRoundReply{}, fmt.Errorf("wire: epoch-round group %d: status %d", i, status)
		}
		r.Groups = append(r.Groups, g)
	}
	if len(b) != 0 {
		return EpochRoundReply{}, fmt.Errorf("wire: %d trailing bytes after epoch-round reply", len(b))
	}
	return r, nil
}

// AppendRosterReadings appends readings positionally over the roster: a
// presence bitmap (one bit per roster slot, ascending node id), then per
// present node its group (uvarint), epoch (zigzag delta from the block's
// reference epoch e) and centi-quantized value (zigzag delta from the
// previous present node's value). Quantization matches the keyed reading
// record exactly — group and epoch truncate to their wire widths, the
// value rides model.ToFixed — so the two encodings decode identically.
// A reading keyed outside the roster (or keyed inconsistently with its
// Node field) cannot be represented and errors.
func AppendRosterReadings(dst []byte, roster []model.NodeID, e model.Epoch, readings map[model.NodeID]model.Reading) ([]byte, error) {
	bitmap := make([]byte, (len(roster)+7)/8)
	present := 0
	for i, id := range roster {
		if r, ok := readings[id]; ok {
			if r.Node != id {
				return nil, fmt.Errorf("wire: reading keyed %d carries node %d", id, r.Node)
			}
			bitmap[i/8] |= 1 << (i % 8)
			present++
		}
	}
	if present != len(readings) {
		return nil, fmt.Errorf("wire: %d of %d readings outside the %d-node roster", len(readings)-present, len(readings), len(roster))
	}
	dst = append(dst, bitmap...)
	prev := int64(0)
	for i, id := range roster {
		if bitmap[i/8]&(1<<(i%8)) == 0 {
			continue
		}
		r := readings[id]
		dst = appendUvarint(dst, uint64(uint16(r.Group)))
		dst = appendZigzag(dst, int64(uint32(r.Epoch))-int64(uint32(e)))
		fixed := int64(model.ToFixed(r.Value))
		dst = appendZigzag(dst, fixed-prev)
		prev = fixed
	}
	return dst, nil
}

// DecodeRosterReadings decodes a positional readings block from the front
// of b, returning the rest. Strict: padding bits beyond the roster must be
// zero, varints minimal, and every decoded field must fit its wire width.
func DecodeRosterReadings(b []byte, roster []model.NodeID, e model.Epoch) (map[model.NodeID]model.Reading, []byte, error) {
	nb := (len(roster) + 7) / 8
	if len(b) < nb {
		return nil, nil, io.ErrUnexpectedEOF
	}
	bitmap := b[:nb]
	b = b[nb:]
	if pad := nb*8 - len(roster); pad > 0 && bitmap[nb-1]>>(8-pad) != 0 {
		return nil, nil, fmt.Errorf("wire: roster bitmap padding bits set")
	}
	out := make(map[model.NodeID]model.Reading, len(roster))
	prev := int64(0)
	for i, id := range roster {
		if bitmap[i/8]&(1<<(i%8)) == 0 {
			continue
		}
		var group uint64
		var epochD, valueD int64
		var err error
		if group, b, err = decodeUvarint(b); err != nil {
			return nil, nil, err
		}
		if group > math.MaxUint16 {
			return nil, nil, fmt.Errorf("wire: roster reading group %d overflows", group)
		}
		if epochD, b, err = decodeZigzag(b); err != nil {
			return nil, nil, err
		}
		epoch := int64(uint32(e)) + epochD
		if epoch < 0 || epoch > math.MaxUint32 {
			return nil, nil, fmt.Errorf("wire: roster reading epoch delta %d overflows", epochD)
		}
		if valueD, b, err = decodeZigzag(b); err != nil {
			return nil, nil, err
		}
		fixed := prev + valueD
		if fixed < math.MinInt32 || fixed > math.MaxInt32 {
			return nil, nil, fmt.Errorf("wire: roster reading value delta %d overflows", valueD)
		}
		prev = fixed
		out[id] = model.Reading{
			Node:  id,
			Group: model.GroupID(group),
			Epoch: model.Epoch(epoch),
			Value: model.FromFixed(model.FixedPoint(fixed)),
		}
	}
	return out, b, nil
}

// appendUvarint appends v as a standard LEB128 uvarint.
func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// uvarintLen is the minimal encoded length of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >>= 7; v > 0; v >>= 7 {
		n++
	}
	return n
}

// decodeUvarint decodes a uvarint from the front of b, rejecting
// truncation, overflow and non-minimal encodings (the codec is canonical).
func decodeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("wire: bad varint")
	}
	if n != uvarintLen(v) {
		return 0, nil, fmt.Errorf("wire: non-minimal varint")
	}
	return v, b[n:], nil
}

// appendZigzag appends v zigzag-mapped as a uvarint.
func appendZigzag(dst []byte, v int64) []byte {
	return appendUvarint(dst, uint64(v)<<1^uint64(v>>63))
}

// decodeZigzag decodes a zigzag-mapped varint from the front of b.
func decodeZigzag(b []byte) (int64, []byte, error) {
	u, rest, err := decodeUvarint(b)
	if err != nil {
		return 0, nil, err
	}
	return int64(u>>1) ^ -int64(u&1), rest, nil
}
