package wire

// The pipelined-client suite: concurrent calls multiplexing one socket
// must not queue behind each other's timeouts or backoffs, responses may
// land out of order, injected frame faults must stay invisible at the
// at-most-once layer, and the batched epoch round must be byte-identical
// to the per-call protocol it replaces.

import (
	"bytes"
	"net"
	"runtime"
	"slices"
	"sync"
	"testing"
	"time"

	"kspot/internal/config"
	"kspot/internal/model"
	"kspot/internal/stats"
)

// startTestServer runs a real shard server for the Figure-3 scenario on a
// loopback listener.
func startTestServer(t *testing.T, legacy bool) (string, *Server) {
	t.Helper()
	srv, err := NewServer(ServerConfig{Scenario: config.Figure3Scenario(), Shard: 0, DisableEpochRound: legacy})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return ln.Addr().String(), srv
}

// testClientConfig dials the Figure-3 shard with its roster set (so the
// client offers CapEpochRound).
func testClientConfig(addr string) ClientConfig {
	scen := config.Figure3Scenario()
	roster := make([]model.NodeID, 0, len(scen.Nodes))
	for _, n := range scen.Nodes {
		roster = append(roster, model.NodeID(n.ID))
	}
	slices.Sort(roster)
	return ClientConfig{
		Addr:     addr,
		Scenario: scen.Name,
		Shard:    0,
		Shards:   1,
		Nodes:    len(scen.Nodes),
		Roster:   roster,
	}
}

// startStubServer speaks the handshake (echoing the hello's identity and
// capability bits), then hands every subsequent frame to fn on its own
// goroutine; fn returns the reply frame, or ok=false to swallow the
// request. Concurrent replies interleave under a write mutex — a scripted
// far end for timeout, backoff and shutdown scenarios a real server
// answers too quickly to produce.
func startStubServer(t *testing.T, fn func(f Frame) (Frame, bool)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				f, err := ReadFrame(conn)
				if err != nil || f.Type != MsgHello {
					return
				}
				h, err := DecodeHello(f.Payload)
				if err != nil {
					return
				}
				var wmu sync.Mutex
				var wbuf []byte
				welcome := AppendWelcome(nil, Welcome{Version: Version, Shard: h.Shard, Nodes: h.Nodes, Caps: h.Caps, Name: "stub"})
				if err := WriteFrame(conn, &wbuf, Frame{Seq: f.Seq, Type: MsgWelcome, Payload: welcome}); err != nil {
					return
				}
				for {
					f, err := ReadFrame(conn)
					if err != nil {
						return
					}
					go func(f Frame) {
						if rep, ok := fn(f); ok {
							wmu.Lock()
							defer wmu.Unlock()
							var buf []byte
							WriteFrame(conn, &buf, rep)
						}
					}(f)
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// readingsBytes pins byte-identity of a readings map via its canonical
// wire encoding (sorted node order).
func readingsBytes(e model.Epoch, readings map[model.NodeID]model.Reading) []byte {
	return AppendReadings(nil, e, readings)
}

func answersBytesOf(answers []model.Answer) []byte {
	var b []byte
	for _, a := range answers {
		b = model.AppendAnswer(b, a)
	}
	return b
}

// TestEpochRoundByteIdenticalToPerCall: the batched round — sense plus
// every group's acquisition in one frame — must produce byte-identical
// readings, answers and derived-readings overrides to the per-call
// Sense/Acquire sequence on an identical server, epoch for epoch,
// including a WITH HISTORY group whose override readings ride the reply.
func TestEpochRoundByteIdenticalToPerCall(t *testing.T) {
	queries := []struct {
		qid  uint32
		algo string
		sql  string
	}{
		{1, "mint", "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid"},
		{2, "tag", "SELECT TOP 3 roomid, MAX(sound) FROM sensors GROUP BY roomid"},
		{3, "mint", "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid WITH HISTORY 4"},
	}
	qids := []uint32{1, 2, 3}
	const epochs = 6

	// Batched leg: one EpochRound call per epoch.
	addrA, _ := startTestServer(t, false)
	clA, err := Dial(testClientConfig(addrA))
	if err != nil {
		t.Fatal(err)
	}
	defer clA.Close()
	if !clA.SupportsEpochRound() {
		t.Fatal("session did not negotiate the epoch-round capability")
	}
	for _, q := range queries {
		if err := clA.Attach(q.qid, q.algo, q.sql); err != nil {
			t.Fatal(err)
		}
	}

	// Per-call leg: identical server, capability withheld client-side.
	addrB, _ := startTestServer(t, false)
	cfgB := testClientConfig(addrB)
	cfgB.DisableEpochRound = true
	clB, err := Dial(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	defer clB.Close()
	if clB.SupportsEpochRound() {
		t.Fatal("capability negotiated despite DisableEpochRound")
	}
	for _, q := range queries {
		if err := clB.Attach(q.qid, q.algo, q.sql); err != nil {
			t.Fatal(err)
		}
	}

	for e := model.Epoch(0); e < epochs; e++ {
		readings, results, err := clA.EpochRound(e, qids)
		if err != nil {
			t.Fatal(err)
		}
		senseB, err := clB.Sense(e)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(readingsBytes(e, readings), readingsBytes(e, senseB)) {
			t.Fatalf("epoch %d: batched sense diverged from per-call", e)
		}
		for gi, qid := range qids {
			acqB, err := clB.Acquire(qid, e)
			if err != nil {
				t.Fatal(err)
			}
			if results[gi].Err != nil {
				t.Fatalf("epoch %d group %d: %v", e, qid, results[gi].Err)
			}
			acqA := results[gi].Acq
			if !bytes.Equal(answersBytesOf(acqA.Answers), answersBytesOf(acqB.Answers)) {
				t.Fatalf("epoch %d group %d: answers %v != %v", e, qid, acqA.Answers, acqB.Answers)
			}
			if (acqA.Readings == nil) != (acqB.Readings == nil) {
				t.Fatalf("epoch %d group %d: override presence diverged", e, qid)
			}
			if acqA.Readings != nil && !bytes.Equal(readingsBytes(e, acqA.Readings), readingsBytes(e, acqB.Readings)) {
				t.Fatalf("epoch %d group %d: override readings diverged", e, qid)
			}
		}
	}
	// The WITH HISTORY group actually exercised the override leg.
	if _, results, err := clA.EpochRound(epochs, qids); err != nil || results[2].Acq.Readings == nil {
		t.Fatalf("derived-readings group shipped no override (err %v)", err)
	}
}

// TestEpochRoundAgainstLegacyServer: an old server (no CapEpochRound in
// its welcome) downgrades the session — the client reports no support and
// keeps working through the per-call protocol; a group error inside a
// round on a new server stays isolated to its group.
func TestEpochRoundAgainstLegacyServer(t *testing.T) {
	addr, _ := startTestServer(t, true) // server withholds the capability
	cl, err := Dial(testClientConfig(addr))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.SupportsEpochRound() {
		t.Fatal("client negotiated epoch-round against a legacy server")
	}
	if err := cl.Attach(1, "mint", "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Sense(0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Acquire(1, 0); err != nil {
		t.Fatal(err)
	}

	// A new server isolates one group's failure inside a round: the unknown
	// qid errors, the attached one answers, the sense stands.
	addr2, _ := startTestServer(t, false)
	cl2, err := Dial(testClientConfig(addr2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if err := cl2.Attach(1, "mint", "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid"); err != nil {
		t.Fatal(err)
	}
	readings, results, err := cl2.EpochRound(0, []uint32{1, 99})
	if err != nil {
		t.Fatal(err)
	}
	if len(readings) == 0 {
		t.Fatal("round with a failed group lost the sense")
	}
	if results[0].Err != nil {
		t.Fatalf("healthy group poisoned: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Fatal("unknown query id succeeded")
	}
}

// TestClientBackoffDoesNotBlockConcurrentCalls: a call waiting out its
// retry backoff must not delay other calls on the shared connection — the
// regression this pins is the serialized client sleeping its backoff
// under the call mutex. The stub swallows the first sense attempt (the
// call times out and backs off); a Stats issued mid-backoff must complete
// immediately.
func TestClientBackoffDoesNotBlockConcurrentCalls(t *testing.T) {
	var mu sync.Mutex
	senseDropped := false
	addr := startStubServer(t, func(f Frame) (Frame, bool) {
		switch f.Type {
		case MsgSense:
			mu.Lock()
			first := !senseDropped
			senseDropped = true
			mu.Unlock()
			if first {
				return Frame{}, false // swallowed: the attempt times out
			}
			e, _ := DecodeEpoch(f.Payload)
			return Frame{Seq: f.Seq, Type: MsgReadings, Payload: AppendReadings(nil, e, nil)}, true
		case MsgStats:
			return Frame{Seq: f.Seq, Type: MsgStatsReply, Payload: []byte("{}")}, true
		case MsgClose:
			return Frame{}, false
		}
		return Frame{Seq: f.Seq, Type: MsgError, Payload: []byte("unexpected " + f.Type.String())}, true
	})
	cl, err := Dial(ClientConfig{
		Addr: addr, Scenario: "stub", Shard: 0, Shards: 1, Nodes: 0,
		CallTimeout: 250 * time.Millisecond,
		Retries:     3,
		Backoff:     500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	senseDone := make(chan error, 1)
	go func() {
		_, err := cl.Sense(0)
		senseDone <- err
	}()
	// Land inside the sense's timeout+backoff window (first attempt is
	// swallowed at t=0, times out at 250ms, sleeps 500ms, retries at 750ms).
	time.Sleep(100 * time.Millisecond)
	start := time.Now()
	if _, err := cl.Stats(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("concurrent Stats took %v while another call was retrying — backoff is blocking the connection", elapsed)
	}
	if err := <-senseDone; err != nil {
		t.Fatalf("the backed-off sense never recovered: %v", err)
	}
	if cl.Retried() == 0 {
		t.Fatal("the swallowed sense never retried — the scenario did not run")
	}
}

// TestClientPipelinedFaultsOutOfOrder: three concurrent callers multiplex
// one faulty socket — duplicated, delayed and response-dropped frames, so
// responses land out of order and retried sequences replay — and the
// sensed epoch stream plus the server's execution counters must stay
// byte-identical to a clean serial run: every request executed at most
// once, every response routed to its caller.
func TestClientPipelinedFaultsOutOfOrder(t *testing.T) {
	const epochs = 8
	run := func(faults *Faults) ([][]byte, int64, ClientMetrics) {
		addr, srv := startTestServer(t, false)
		cfg := testClientConfig(addr)
		cfg.Faults = faults
		cfg.CallTimeout = 150 * time.Millisecond
		cfg.Retries = 12
		cfg.Backoff = 2 * time.Millisecond
		cl, err := Dial(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()

		stop := make(chan struct{})
		var pollers sync.WaitGroup
		for i := 0; i < 2; i++ {
			pollers.Add(1)
			go func() {
				defer pollers.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := cl.Stats(); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		var senses [][]byte
		for e := model.Epoch(0); e < epochs; e++ {
			readings, err := cl.Sense(e)
			if err != nil {
				t.Fatal(err)
			}
			senses = append(senses, readingsBytes(e, readings))
		}
		close(stop)
		pollers.Wait()
		// The server-side counters witness at-most-once execution: a
		// replayed (rather than re-executed) retry leaves them untouched.
		msgs := stats.Collect("", srv.Network(), 0).Messages
		return senses, int64(msgs), cl.Metrics()
	}

	clean, cleanMsgs, _ := run(nil)
	faulty, faultyMsgs, m := run(&Faults{Seed: 11, Dup: 0.2, Delay: 0.3, DropResp: 0.15, MaxDelay: 2 * time.Millisecond})

	for e := range clean {
		if !bytes.Equal(clean[e], faulty[e]) {
			t.Fatalf("epoch %d: sensed readings diverged under faults", e)
		}
	}
	if cleanMsgs != faultyMsgs {
		t.Fatalf("server executed %d messages under faults, %d clean — a retry re-executed", faultyMsgs, cleanMsgs)
	}
	if m.Retries == 0 {
		t.Fatal("faults armed but no call retried — the fault path did not run")
	}
	if m.Calls < epochs || m.Rounds != epochs {
		t.Fatalf("metrics: %d calls, %d rounds (want >= %d calls, %d rounds)", m.Calls, m.Rounds, epochs, epochs)
	}
	if m.BytesOut == 0 || m.BytesIn == 0 || m.P50Micros == 0 {
		t.Fatalf("metrics incomplete: %+v", m)
	}
}

// TestClientCloseInterruptsInFlight: Close racing calls parked on a
// black-hole server unblocks them promptly with errors and leaves no
// goroutine behind — the reader, the callers and their retry timers all
// wind down.
func TestClientCloseInterruptsInFlight(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()
	addr := startStubServer(t, func(f Frame) (Frame, bool) { return Frame{}, false })
	cl, err := Dial(ClientConfig{
		Addr: addr, Scenario: "stub", Shard: 0, Shards: 1, Nodes: 0,
		CallTimeout: 5 * time.Second,
		Retries:     5,
		Backoff:     time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func(i int) {
			_, err := cl.Sense(model.Epoch(i))
			errs <- err
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // all three are in flight
	start := time.Now()
	cl.Close()
	for i := 0; i < 3; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Fatal("an in-flight call succeeded after Close")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("an in-flight call is still blocked after Close")
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Close took %v to interrupt in-flight calls", elapsed)
	}
	if _, err := cl.Sense(99); err == nil {
		t.Fatal("a call after Close succeeded")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseGoroutines+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d at start", runtime.NumGoroutine(), baseGoroutines)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRosterReadingsCodec: the positional encoding round-trips exactly,
// and its strictness holds — non-roster nodes refuse to encode, padding
// bits and truncated bitmaps refuse to decode.
func TestRosterReadingsCodec(t *testing.T) {
	roster := []model.NodeID{2, 5, 9, 11, 300}
	readings := map[model.NodeID]model.Reading{
		2:   {Node: 2, Group: 1, Epoch: 7, Value: 42.25},
		9:   {Node: 9, Group: 3, Epoch: 7, Value: -17.5},
		300: {Node: 300, Group: 2, Epoch: 9, Value: 0},
	}
	b, err := AppendRosterReadings(nil, roster, 7, readings)
	if err != nil {
		t.Fatal(err)
	}
	got, rest, err := DecodeRosterReadings(b, roster, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if len(got) != len(readings) {
		t.Fatalf("decoded %d readings, want %d", len(got), len(readings))
	}
	for id, want := range readings {
		if got[id] != want {
			t.Fatalf("node %d: %+v != %+v", id, got[id], want)
		}
	}
	// Positional identity: encoding is a pure function of roster order.
	b2, err := AppendRosterReadings(nil, roster, 7, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatal("re-encode diverged")
	}
	// A reading keyed outside the roster must refuse to encode.
	if _, err := AppendRosterReadings(nil, roster, 7, map[model.NodeID]model.Reading{4: {Node: 4}}); err == nil {
		t.Fatal("non-roster node encoded")
	}
	// A set padding bit past the roster must refuse to decode.
	bad := append([]byte(nil), b...)
	bad[0] |= 1 << 6 // roster has 5 nodes: bits 5.. are padding
	if _, _, err := DecodeRosterReadings(bad, roster, 7); err == nil {
		t.Fatal("padding bit accepted")
	}
	if _, _, err := DecodeRosterReadings(b[:0], roster, 7); err == nil {
		t.Fatal("empty buffer accepted")
	}
}

// TestEpochRoundCodecRejects: malformed round frames are refused, not
// misparsed — wrong status bytes, empty error strings, trailing bytes.
func TestEpochRoundCodecRejects(t *testing.T) {
	roster := []model.NodeID{1, 2, 3}
	rep := EpochRoundReply{
		Epoch:    4,
		Readings: map[model.NodeID]model.Reading{1: {Node: 1, Epoch: 4, Value: 1}},
		Groups: []RoundGroup{
			{Answers: []model.Answer{{Group: 1, Score: 10}}},
			{Err: "query gone"},
		},
	}
	b, err := AppendEpochRoundReply(nil, roster, rep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEpochRoundReply(b, roster)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 4 || len(got.Groups) != 2 || got.Groups[1].Err != "query gone" {
		t.Fatalf("round-trip: %+v", got)
	}
	if _, err := DecodeEpochRoundReply(append(b, 0), roster); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := DecodeEpochRoundReply(b[:len(b)-1], roster); err == nil {
		t.Fatal("truncated reply accepted")
	}
	// An error group must carry a non-empty message.
	bad := EpochRoundReply{Epoch: 1, Groups: []RoundGroup{{}}}
	bb, err := AppendEpochRoundReply(nil, roster, bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeEpochRoundReply(bb, roster); err != nil {
		t.Fatalf("empty ok group refused: %v", err)
	}

	req := EpochRoundReq{Epoch: 3, Queries: []uint32{7, 8}}
	rb := AppendEpochRound(nil, req)
	gotReq, err := DecodeEpochRound(rb)
	if err != nil || gotReq.Epoch != 3 || len(gotReq.Queries) != 2 || gotReq.Queries[1] != 8 {
		t.Fatalf("request round-trip: %+v / %v", gotReq, err)
	}
	if _, err := DecodeEpochRound(append(rb, 0)); err == nil {
		t.Fatal("trailing request byte accepted")
	}
	if _, err := DecodeEpochRound(rb[:3]); err == nil {
		t.Fatal("truncated request accepted")
	}
}
