package wire

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/stats"
	"kspot/internal/topk"
)

// ClientConfig dials one shard server.
type ClientConfig struct {
	Addr string
	// Identity the handshake asserts (see Hello): the flat scenario name,
	// this shard's index, the deployment's shard count and the shard's
	// sensor node count. The server refuses a mismatch.
	Scenario string
	Shard    int
	Shards   int
	Nodes    int

	// DialTimeout bounds one connect attempt (default 5s). CallTimeout
	// bounds one request attempt awaiting its response (default 10s).
	// Retries is the number of re-attempts after the first per call
	// (default 4); Backoff is the initial retry sleep, doubling per
	// attempt (default 50ms).
	DialTimeout time.Duration
	CallTimeout time.Duration
	Retries     int
	Backoff     time.Duration

	// Faults, when armed, injects deterministic frame faults on this
	// client's socket path (tests; see Faults).
	Faults *Faults
}

func (c *ClientConfig) dialTimeout() time.Duration {
	if c.DialTimeout > 0 {
		return c.DialTimeout
	}
	return 5 * time.Second
}

func (c *ClientConfig) callTimeout() time.Duration {
	if c.CallTimeout > 0 {
		return c.CallTimeout
	}
	return 10 * time.Second
}

func (c *ClientConfig) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	return 4
}

func (c *ClientConfig) backoff() time.Duration {
	if c.Backoff > 0 {
		return c.Backoff
	}
	return 50 * time.Millisecond
}

// clientNonce distinguishes client sessions on the server's at-most-once
// layer: same nonce + same sequence = same request. Process-unique.
var clientNonce atomic.Uint64

func newNonce() uint64 {
	return uint64(os.Getpid())<<32 | clientNonce.Add(1)
}

// Client is the coordinator's handle on one remote shard. It implements
// engine.RemoteShard; its historic executions implement fed.HistoricShard.
// Calls are synchronous and serialized (the far end is one shard state
// machine); each call retries with backoff across timeouts and reconnects,
// reusing its sequence number so the server executes it at most once.
// Close interrupts an in-flight call promptly.
type Client struct {
	cfg   ClientConfig
	nonce uint64
	name  string // shard display name, from the welcome

	mu   sync.Mutex // serializes calls
	seq  uint64
	wbuf []byte

	connMu sync.Mutex // guards conn/closed against concurrent Close
	conn   net.Conn
	closed bool

	// retried counts calls that needed more than one attempt (tests
	// assert fault injection actually exercised the retry path).
	retried atomic.Int64
}

// Dial connects and handshakes with a shard server.
func Dial(cfg ClientConfig) (*Client, error) {
	c := &Client{cfg: cfg, nonce: newNonce(), seq: 1}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.connectLocked(); err != nil {
		return nil, fmt.Errorf("wire: shard %d at %s: %w", cfg.Shard, cfg.Addr, err)
	}
	return c, nil
}

// Name returns the shard's display name (from the handshake).
func (c *Client) Name() string { return c.name }

// Retried reports how many calls needed more than one attempt.
func (c *Client) Retried() int64 { return c.retried.Load() }

// connectLocked dials and handshakes under c.mu.
func (c *Client) connectLocked() error {
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		return fmt.Errorf("client is closed")
	}
	c.connMu.Unlock()
	conn, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.dialTimeout())
	if err != nil {
		return err
	}
	hello := AppendHello(nil, Hello{
		Version:  Version,
		Shard:    uint16(c.cfg.Shard),
		Shards:   uint16(c.cfg.Shards),
		Nodes:    uint16(c.cfg.Nodes),
		Nonce:    c.nonce,
		Scenario: c.cfg.Scenario,
	})
	seq := c.seq
	c.seq++
	conn.SetDeadline(time.Now().Add(c.cfg.callTimeout()))
	if err := WriteFrame(conn, &c.wbuf, Frame{Seq: seq, Type: MsgHello, Payload: hello}); err != nil {
		conn.Close()
		return err
	}
	f, err := ReadFrame(conn)
	if err != nil {
		conn.Close()
		return err
	}
	if f.Type == MsgError {
		conn.Close()
		return fmt.Errorf("%s", f.Payload)
	}
	if f.Type != MsgWelcome {
		conn.Close()
		return fmt.Errorf("handshake reply %v", f.Type)
	}
	w, err := DecodeWelcome(f.Payload)
	if err != nil {
		conn.Close()
		return err
	}
	if w.Version != Version {
		conn.Close()
		return fmt.Errorf("protocol version %d, client speaks %d", w.Version, Version)
	}
	if int(w.Shard) != c.cfg.Shard || int(w.Nodes) != c.cfg.Nodes {
		conn.Close()
		return fmt.Errorf("welcome identity shard=%d nodes=%d, want shard=%d nodes=%d", w.Shard, w.Nodes, c.cfg.Shard, c.cfg.Nodes)
	}
	conn.SetDeadline(time.Time{})
	c.name = w.Name
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		conn.Close()
		return fmt.Errorf("client is closed")
	}
	c.conn = conn
	c.connMu.Unlock()
	return nil
}

// dropConnLocked discards the connection after an error (under c.mu).
func (c *Client) dropConnLocked() {
	c.connMu.Lock()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.connMu.Unlock()
}

func (c *Client) isClosed() bool {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.closed
}

// call performs one at-most-once RPC: stamp a fresh sequence, then retry
// (same sequence) across timeouts, connection drops and injected frame
// faults until a response lands or attempts run out. An application error
// (MsgError) is a definitive response and is not retried.
func (c *Client) call(t MsgType, payload []byte) (Frame, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	seq := c.seq
	c.seq++
	backoff := c.cfg.backoff()
	var lastErr error
	for attempt := 0; attempt <= c.cfg.retries(); attempt++ {
		if c.isClosed() {
			return Frame{}, fmt.Errorf("wire: client is closed")
		}
		if attempt > 0 {
			c.retried.Add(1)
			time.Sleep(backoff)
			backoff *= 2
			if c.isClosed() {
				return Frame{}, fmt.Errorf("wire: client is closed")
			}
		}
		c.connMu.Lock()
		conn := c.conn
		c.connMu.Unlock()
		if conn == nil {
			if err := c.connectLocked(); err != nil {
				lastErr = err
				continue
			}
			c.connMu.Lock()
			conn = c.conn
			c.connMu.Unlock()
		}
		if err := c.send(conn, Frame{Seq: seq, Type: t, Payload: payload}, attempt); err != nil {
			lastErr = err
			c.dropConnLocked()
			continue
		}
		f, err := c.await(conn, seq, attempt)
		if err != nil {
			lastErr = err
			c.dropConnLocked()
			continue
		}
		if f.Type == MsgError {
			return Frame{}, fmt.Errorf("wire: shard %s: %s", c.shardLabel(), f.Payload)
		}
		return f, nil
	}
	return Frame{}, fmt.Errorf("wire: shard %s unreachable after %d attempts: %w", c.shardLabel(), c.cfg.retries()+1, lastErr)
}

func (c *Client) shardLabel() string {
	if c.name != "" {
		return c.name
	}
	return fmt.Sprintf("%d at %s", c.cfg.Shard, c.cfg.Addr)
}

// send writes the request frame, applying injected frame faults: a
// dropped request is simply never written (the attempt times out), a
// duplicated one is written twice (the server replays the cached reply
// for the duplicate), a delayed one sleeps first.
func (c *Client) send(conn net.Conn, f Frame, attempt int) error {
	flt := c.cfg.Faults
	if d := flt.delayReq(f.Seq, attempt); d > 0 {
		time.Sleep(d)
	}
	if flt.dropReq(f.Seq, attempt) {
		return nil // "lost on the wire": await will time out and retry
	}
	conn.SetWriteDeadline(time.Now().Add(c.cfg.callTimeout()))
	if err := WriteFrame(conn, &c.wbuf, f); err != nil {
		return err
	}
	if flt.dupReq(f.Seq, attempt) {
		if err := WriteFrame(conn, &c.wbuf, f); err != nil {
			return err
		}
	}
	return nil
}

// await reads frames until the response matching seq arrives or the
// attempt times out. Stale responses (retries and duplicates of earlier
// sequences, or responses whose injected fault says "lost") are
// discarded; at-most-once execution on the server makes that safe.
func (c *Client) await(conn net.Conn, seq uint64, attempt int) (Frame, error) {
	conn.SetReadDeadline(time.Now().Add(c.cfg.callTimeout()))
	for {
		f, err := ReadFrame(conn)
		if err != nil {
			return Frame{}, err
		}
		if f.Seq < seq {
			continue // response to an earlier attempt/sequence: stale
		}
		if f.Seq > seq {
			return Frame{}, fmt.Errorf("wire: response sequence %d ahead of request %d", f.Seq, seq)
		}
		if c.cfg.Faults.dropResp(seq, attempt) {
			// The response "was lost": keep waiting so the deadline fires
			// and the next attempt retries the same sequence.
			continue
		}
		conn.SetReadDeadline(time.Time{})
		return f, nil
	}
}

// Attach plans and attaches a query on the shard under an id.
func (c *Client) Attach(queryID uint32, algo, sql string) error {
	payload := AppendAttach(nil, AttachReq{Query: queryID, Algo: algo, SQL: sql})
	f, err := c.call(MsgAttach, payload)
	if err != nil {
		return err
	}
	if f.Type != MsgAttached {
		return fmt.Errorf("wire: attach reply %v", f.Type)
	}
	return nil
}

// Sense implements engine.RemoteShard: one shared sensing of the epoch.
func (c *Client) Sense(e model.Epoch) (map[model.NodeID]model.Reading, error) {
	f, err := c.call(MsgSense, AppendEpoch(nil, e))
	if err != nil {
		return nil, err
	}
	if f.Type != MsgReadings {
		return nil, fmt.Errorf("wire: sense reply %v", f.Type)
	}
	re, readings, err := DecodeReadings(f.Payload)
	if err != nil {
		return nil, err
	}
	if re != e {
		return nil, fmt.Errorf("wire: sense reply for epoch %d, want %d", re, e)
	}
	return readings, nil
}

// Acquire implements engine.RemoteShard: run one epoch of an attached
// query on the shard.
func (c *Client) Acquire(queryID uint32, e model.Epoch) (engine.RemoteAcquisition, error) {
	f, err := c.call(MsgAcquire, AppendAcquire(nil, AcquireReq{Query: queryID, Epoch: e}))
	if err != nil {
		return engine.RemoteAcquisition{}, err
	}
	if f.Type != MsgAnswers {
		return engine.RemoteAcquisition{}, fmt.Errorf("wire: acquire reply %v", f.Type)
	}
	re, answers, override, err := DecodeAnswers(f.Payload)
	if err != nil {
		return engine.RemoteAcquisition{}, err
	}
	if re != e {
		return engine.RemoteAcquisition{}, fmt.Errorf("wire: acquire reply for epoch %d, want %d", re, e)
	}
	return engine.RemoteAcquisition{Answers: answers, Readings: override}, nil
}

// Stats fetches the shard's traffic/energy counters.
func (c *Client) Stats() (stats.RunStats, error) {
	f, err := c.call(MsgStats, nil)
	if err != nil {
		return stats.RunStats{}, err
	}
	if f.Type != MsgStatsReply {
		return stats.RunStats{}, fmt.Errorf("wire: stats reply %v", f.Type)
	}
	var row stats.RunStats
	if err := json.Unmarshal(f.Payload, &row); err != nil {
		return stats.RunStats{}, err
	}
	return row, nil
}

// Close ends the session: best-effort goodbye, then the connection drops.
// An in-flight call is interrupted promptly (its socket is closed under
// it) and returns an error. Safe to call more than once.
func (c *Client) Close() error {
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.connMu.Unlock()
	if conn != nil {
		// Goodbye on the raw connection without taking c.mu: Close must
		// not wait behind an in-flight call it is supposed to interrupt.
		var wbuf []byte
		conn.SetDeadline(time.Now().Add(100 * time.Millisecond))
		WriteFrame(conn, &wbuf, Frame{Seq: ^uint64(0), Type: MsgClose, Payload: nil})
		conn.Close()
	}
	c.connMu.Lock()
	c.conn = nil
	c.connMu.Unlock()
	return nil
}

// Historic opens a historic execution handle on the shard. The handle
// implements fed.HistoricShard for the coordinator's threshold round.
func (c *Client) Historic(exec uint32, algo string, q topk.HistoricQuery) *HistoricExec {
	return &HistoricExec{c: c, exec: exec, algo: algo, q: q}
}

// HistoricExec is one historic execution on one remote shard.
type HistoricExec struct {
	c    *Client
	exec uint32
	algo string
	q    topk.HistoricQuery
}

// run executes the shard-local historic operator with an explicit ranking
// size and aggregate, returning the ranked answers and the shard's
// buffered-node count.
func (h *HistoricExec) run(k int, agg model.AggKind) ([]model.Answer, int, error) {
	payload := AppendHistoric(nil, HistoricReq{Exec: h.exec, K: k, Window: h.q.Window, Agg: agg, Algo: h.algo})
	f, err := h.c.call(MsgHistoric, payload)
	if err != nil {
		return nil, 0, err
	}
	if f.Type != MsgTopK {
		return nil, 0, fmt.Errorf("wire: historic reply %v", f.Type)
	}
	exec, nodes, answers, err := DecodeTopK(f.Payload)
	if err != nil {
		return nil, 0, err
	}
	if exec != h.exec {
		return nil, 0, fmt.Errorf("wire: historic reply for execution %d, want %d", exec, h.exec)
	}
	return answers, nodes, nil
}

// Run executes the query as posted — the flat (single-shard) path.
func (h *HistoricExec) Run() ([]model.Answer, error) {
	answers, _, err := h.run(h.q.K, h.q.Agg)
	return answers, err
}

// LocalTopK implements fed.HistoricShard: the shard's top shipK instants
// ranked by exact local SUM partial (see fed.OperatorShard — SUM and AVG
// rank identically within a shard, and the coordinator needs raw sums).
func (h *HistoricExec) LocalTopK(shipK int) ([]model.Answer, int, error) {
	return h.run(shipK, model.AggSum)
}

// FetchSums implements fed.HistoricShard: the phase-2 targeted sweep.
func (h *HistoricExec) FetchSums(ids []model.GroupID) (map[model.GroupID]int64, error) {
	f, err := h.c.call(MsgFetch, AppendFetch(nil, h.exec, ids))
	if err != nil {
		return nil, err
	}
	if f.Type != MsgSums {
		return nil, fmt.Errorf("wire: fetch reply %v", f.Type)
	}
	exec, sums, err := DecodeSums(f.Payload)
	if err != nil {
		return nil, err
	}
	if exec != h.exec {
		return nil, fmt.Errorf("wire: fetch reply for execution %d, want %d", exec, h.exec)
	}
	return sums, nil
}

// Release drops the execution's cached windows on the shard (best effort).
func (h *HistoricExec) Release() {
	h.c.call(MsgRelease, AppendU32(nil, h.exec))
}
