package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/stats"
	"kspot/internal/storage"
	"kspot/internal/topk"
)

// ClientConfig dials one shard server.
type ClientConfig struct {
	Addr string
	// Identity the handshake asserts (see Hello): the flat scenario name,
	// this shard's index, the deployment's shard count and the shard's
	// sensor node count. The server refuses a mismatch.
	Scenario string
	Shard    int
	Shards   int
	Nodes    int

	// Roster is the shard's sensor node ids in ascending order — the
	// positional frame of reference for the batched epoch-round encoding.
	// Without it the client does not offer CapEpochRound and the session
	// falls back to the per-call protocol.
	Roster []model.NodeID

	// DisableEpochRound withholds CapEpochRound from the handshake even
	// when a roster is set, forcing the per-call protocol (tests and the
	// RTT benchmark compare the two paths).
	DisableEpochRound bool

	// DialTimeout bounds one connect attempt (default 5s). CallTimeout
	// bounds one request attempt awaiting its response (default 10s).
	// Retries is the number of re-attempts after the first per call
	// (default 4); Backoff is the initial retry sleep, doubling per
	// attempt (default 50ms).
	DialTimeout time.Duration
	CallTimeout time.Duration
	Retries     int
	Backoff     time.Duration

	// Faults, when armed, injects deterministic frame faults on this
	// client's socket path (tests; see Faults).
	Faults *Faults
}

func (c *ClientConfig) dialTimeout() time.Duration {
	if c.DialTimeout > 0 {
		return c.DialTimeout
	}
	return 5 * time.Second
}

func (c *ClientConfig) callTimeout() time.Duration {
	if c.CallTimeout > 0 {
		return c.CallTimeout
	}
	return 10 * time.Second
}

func (c *ClientConfig) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	return 4
}

func (c *ClientConfig) backoff() time.Duration {
	if c.Backoff > 0 {
		return c.Backoff
	}
	return 50 * time.Millisecond
}

// offeredCaps is the capability set the client puts in its hello.
// DisableEpochRound models a pre-batching (and pre-durability) client, so
// it withholds everything; CapEpochRound additionally needs a roster (the
// positional frame the batched encoding is relative to).
func (c *ClientConfig) offeredCaps() uint16 {
	if c.DisableEpochRound {
		return 0
	}
	caps := CapSnapshot
	if len(c.Roster) > 0 {
		caps |= CapEpochRound
	}
	return caps
}

// clientNonce distinguishes client sessions on the server's at-most-once
// layer: same nonce + same sequence = same request. Process-unique.
var clientNonce atomic.Uint64

func newNonce() uint64 {
	return uint64(os.Getpid())<<32 | clientNonce.Add(1)
}

// latRingCap bounds the latency sample ring backing the p50/p99 estimates.
const latRingCap = 512

// ClientMetrics is a snapshot of one shard connection's RTT and traffic
// accounting, surfaced through kspotd /stats and the System Panel's
// coordinator line.
type ClientMetrics struct {
	Shard     string `json:"shard"`
	Calls     int64  `json:"calls"`    // completed RPCs (any outcome)
	Rounds    int64  `json:"rounds"`   // epoch-opening calls (sense / epoch-round)
	Retries   int64  `json:"retries"`  // calls that needed >1 attempt
	BytesOut  int64  `json:"tx_bytes"` // frames written, headers included
	BytesIn   int64  `json:"rx_bytes"` // frames read, headers included
	P50Micros int64  `json:"p50_us"`   // median call latency
	P99Micros int64  `json:"p99_us"`   // tail call latency
}

// waiter is one in-flight call's slot in the demux table: the reader
// goroutine delivers the response frame matching its sequence here.
// attempt tracks the call's current attempt so the reader can key the
// drop-response fault the way the serialized client did.
type waiter struct {
	ch      chan Frame
	attempt atomic.Int32
}

func (w *waiter) deliver(f Frame) {
	select {
	case w.ch <- f:
	default: // a duplicate response; the buffered one wins
	}
}

// clientConn is one live connection: the socket, its write half (frames
// from concurrent calls interleave under writeMu) and a death signal the
// reader closes so every pending call learns of a broken socket at once.
type clientConn struct {
	conn net.Conn

	writeMu sync.Mutex
	wbuf    []byte

	once sync.Once
	dead chan struct{}
	err  error

	// lastRecv is the wall-clock nanos of the last frame read off this
	// conn — a liveness hint: a call that times out with nothing received
	// since its send treats the conn as gone and forces a redial.
	lastRecv atomic.Int64
}

func (cc *clientConn) fail(err error) {
	cc.once.Do(func() {
		cc.err = err
		close(cc.dead)
		cc.conn.Close()
	})
}

func (cc *clientConn) isDead() bool {
	select {
	case <-cc.dead:
		return true
	default:
		return false
	}
}

// Client is the coordinator's handle on one remote shard. It implements
// engine.RemoteShard (and, when the session negotiated CapEpochRound,
// engine.RemoteRoundShard); its historic executions implement
// fed.HistoricShard. Calls are synchronous for their caller but pipeline
// on the connection: a reader goroutine demultiplexes responses by
// sequence number to per-call waiters, so concurrent calls (overlapped
// group acquisitions, stats polls, historic rounds) share one socket
// without queueing behind each other. Each call retries with backoff
// across timeouts and reconnects, reusing its sequence number so the
// server executes it at most once; the backoff sleeps only the retrying
// call. Close interrupts in-flight calls promptly.
type Client struct {
	cfg   ClientConfig
	nonce uint64

	// name is the shard display name and caps the negotiated capability
	// set (offered ∩ granted), both from the welcome. Reconnects re-derive
	// them, so reads synchronize (name under connMu, caps atomically).
	name string
	caps atomic.Uint32

	seqMu sync.Mutex
	seq   uint64

	connMu   sync.Mutex // guards cur/closed against concurrent Close
	cur      *clientConn
	closed   bool
	closedCh chan struct{}
	dialMu   sync.Mutex // serializes reconnect attempts

	pendMu  sync.Mutex
	pending map[uint64]*waiter

	// retried counts calls that needed more than one attempt (tests
	// assert fault injection actually exercised the retry path).
	retried  atomic.Int64
	calls    atomic.Int64
	rounds   atomic.Int64
	bytesIn  atomic.Int64
	bytesOut atomic.Int64

	latMu sync.Mutex
	lat   []int64 // µs ring, latRingCap entries once warm
	latN  int64   // total samples recorded
}

// Dial connects and handshakes with a shard server.
func Dial(cfg ClientConfig) (*Client, error) {
	c := &Client{
		cfg:      cfg,
		nonce:    newNonce(),
		seq:      1,
		closedCh: make(chan struct{}),
		pending:  make(map[uint64]*waiter),
	}
	if _, err := c.getConn(); err != nil {
		return nil, fmt.Errorf("wire: shard %d at %s: %w", cfg.Shard, cfg.Addr, err)
	}
	return c, nil
}

// Name returns the shard's display name (from the handshake).
func (c *Client) Name() string {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.name
}

// Retried reports how many calls needed more than one attempt.
func (c *Client) Retried() int64 { return c.retried.Load() }

// Metrics snapshots the connection's RTT/traffic accounting.
func (c *Client) Metrics() ClientMetrics {
	m := ClientMetrics{
		Shard:    c.shardLabel(),
		Calls:    c.calls.Load(),
		Rounds:   c.rounds.Load(),
		Retries:  c.retried.Load(),
		BytesOut: c.bytesOut.Load(),
		BytesIn:  c.bytesIn.Load(),
	}
	c.latMu.Lock()
	samples := append([]int64(nil), c.lat...)
	c.latMu.Unlock()
	if len(samples) > 0 {
		slices.Sort(samples)
		m.P50Micros = samples[len(samples)/2]
		m.P99Micros = samples[(len(samples)*99)/100]
	}
	return m
}

func (c *Client) recordLatency(d time.Duration) {
	us := d.Microseconds()
	c.latMu.Lock()
	if len(c.lat) < latRingCap {
		c.lat = append(c.lat, us)
	} else {
		c.lat[c.latN%latRingCap] = us
	}
	c.latN++
	c.latMu.Unlock()
}

func (c *Client) nextSeq() uint64 {
	c.seqMu.Lock()
	defer c.seqMu.Unlock()
	seq := c.seq
	c.seq++
	return seq
}

func (c *Client) isClosed() bool {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.closed
}

// getConn returns the live connection, dialing and handshaking a fresh one
// if the current one is gone. Reconnects serialize on dialMu; calls that
// lose the race reuse the winner's connection.
func (c *Client) getConn() (*clientConn, error) {
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		return nil, errors.New("wire: client is closed")
	}
	cc := c.cur
	c.connMu.Unlock()
	if cc != nil && !cc.isDead() {
		return cc, nil
	}
	c.dialMu.Lock()
	defer c.dialMu.Unlock()
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		return nil, errors.New("wire: client is closed")
	}
	cc = c.cur
	c.connMu.Unlock()
	if cc != nil && !cc.isDead() {
		return cc, nil
	}
	cc, err := c.handshake()
	if err != nil {
		return nil, err
	}
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		cc.conn.Close()
		return nil, errors.New("wire: client is closed")
	}
	c.cur = cc
	c.connMu.Unlock()
	go c.readLoop(cc)
	return cc, nil
}

// handshake dials and runs the hello/welcome exchange synchronously (the
// demux reader starts only after the connection is admitted).
func (c *Client) handshake() (*clientConn, error) {
	conn, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.dialTimeout())
	if err != nil {
		return nil, err
	}
	offered := c.cfg.offeredCaps()
	hello := AppendHello(nil, Hello{
		Version:  Version,
		Shard:    uint16(c.cfg.Shard),
		Shards:   uint16(c.cfg.Shards),
		Nodes:    uint16(c.cfg.Nodes),
		Caps:     offered,
		Nonce:    c.nonce,
		Scenario: c.cfg.Scenario,
	})
	var wbuf []byte
	conn.SetDeadline(time.Now().Add(c.cfg.callTimeout()))
	if err := WriteFrame(conn, &wbuf, Frame{Seq: c.nextSeq(), Type: MsgHello, Payload: hello}); err != nil {
		conn.Close()
		return nil, err
	}
	f, err := ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if f.Type == MsgError {
		conn.Close()
		return nil, fmt.Errorf("%s", f.Payload)
	}
	if f.Type != MsgWelcome {
		conn.Close()
		return nil, fmt.Errorf("handshake reply %v", f.Type)
	}
	w, err := DecodeWelcome(f.Payload)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if w.Version != Version {
		conn.Close()
		return nil, fmt.Errorf("protocol version %d, client speaks %d", w.Version, Version)
	}
	if int(w.Shard) != c.cfg.Shard || int(w.Nodes) != c.cfg.Nodes {
		conn.Close()
		return nil, fmt.Errorf("welcome identity shard=%d nodes=%d, want shard=%d nodes=%d", w.Shard, w.Nodes, c.cfg.Shard, c.cfg.Nodes)
	}
	conn.SetDeadline(time.Time{})
	c.connMu.Lock()
	c.name = w.Name
	c.connMu.Unlock()
	c.caps.Store(uint32(offered & w.Caps))
	cc := &clientConn{conn: conn, dead: make(chan struct{})}
	return cc, nil
}

// readLoop is the connection's demux reader: every response frame routes
// to the pending call with its sequence number. Frames with no pending
// waiter (responses to earlier attempts whose call already completed) are
// discarded — at-most-once execution on the server makes that safe. A
// read error marks the connection dead, waking every pending call.
func (c *Client) readLoop(cc *clientConn) {
	for {
		f, err := ReadFrame(cc.conn)
		if err != nil {
			cc.fail(err)
			c.clearConn(cc)
			return
		}
		cc.lastRecv.Store(time.Now().UnixNano())
		c.bytesIn.Add(int64(frameHeaderSize + len(f.Payload)))
		c.pendMu.Lock()
		w := c.pending[f.Seq]
		c.pendMu.Unlock()
		if w == nil {
			continue
		}
		if c.cfg.Faults.dropResp(f.Seq, int(w.attempt.Load())) {
			// The response "was lost": the call times out and retries the
			// same sequence; the server replays its cached reply.
			continue
		}
		if d := c.cfg.Faults.linkDelay(); d > 0 {
			// Propagation delay is per frame, not per link: deliveries must
			// overlap the reader draining the next frame.
			go func(f Frame) {
				time.Sleep(d)
				w.deliver(f)
			}(f)
			continue
		}
		w.deliver(f)
	}
}

// clearConn forgets cc as the current connection (the next call redials).
func (c *Client) clearConn(cc *clientConn) {
	c.connMu.Lock()
	if c.cur == cc {
		c.cur = nil
	}
	c.connMu.Unlock()
}

// sleep waits d out unless the client closes first.
func (c *Client) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.closedCh:
		return false
	}
}

// call performs one at-most-once RPC: stamp a fresh sequence, register a
// response waiter, then retry (same sequence) across timeouts, connection
// drops and injected frame faults until a response lands or attempts run
// out. Retry backoff sleeps only this call — concurrent calls keep flowing
// on the shared connection. An application error (MsgError) is a
// definitive response and is not retried.
func (c *Client) call(t MsgType, payload []byte) (Frame, error) {
	c.calls.Add(1)
	if t == MsgSense || t == MsgEpochRound {
		c.rounds.Add(1)
	}
	seq := c.nextSeq()
	w := &waiter{ch: make(chan Frame, 1)}
	c.pendMu.Lock()
	c.pending[seq] = w
	c.pendMu.Unlock()
	defer func() {
		c.pendMu.Lock()
		delete(c.pending, seq)
		c.pendMu.Unlock()
	}()
	start := time.Now()
	backoff := c.cfg.backoff()
	var lastErr error
	for attempt := 0; attempt <= c.cfg.retries(); attempt++ {
		if attempt > 0 {
			c.retried.Add(1)
			if !c.sleep(backoff) {
				return Frame{}, errors.New("wire: client is closed")
			}
			backoff *= 2
		}
		if c.isClosed() {
			return Frame{}, errors.New("wire: client is closed")
		}
		w.attempt.Store(int32(attempt))
		cc, err := c.getConn()
		if err != nil {
			lastErr = err
			continue
		}
		sentAt := time.Now()
		if err := c.send(cc, Frame{Seq: seq, Type: t, Payload: payload}, attempt); err != nil {
			lastErr = err
			cc.fail(err)
			c.clearConn(cc)
			continue
		}
		timer := time.NewTimer(c.cfg.callTimeout())
		select {
		case f := <-w.ch:
			timer.Stop()
			c.recordLatency(time.Since(start))
			if f.Type == MsgError {
				return Frame{}, fmt.Errorf("wire: shard %s: %s", c.shardLabel(), f.Payload)
			}
			return f, nil
		case <-cc.dead:
			timer.Stop()
			lastErr = cc.err
		case <-timer.C:
			lastErr = fmt.Errorf("wire: %v call timed out after %v", t, c.cfg.callTimeout())
			if cc.lastRecv.Load() < sentAt.UnixNano() {
				// Nothing has arrived since we sent: the socket itself is
				// suspect, not just this response. Redial on retry.
				cc.fail(errors.New("wire: connection silent past call timeout"))
				c.clearConn(cc)
			}
		}
	}
	return Frame{}, fmt.Errorf("wire: shard %s unreachable after %d attempts: %w", c.shardLabel(), c.cfg.retries()+1, lastErr)
}

func (c *Client) shardLabel() string {
	if name := c.Name(); name != "" {
		return name
	}
	return fmt.Sprintf("%d at %s", c.cfg.Shard, c.cfg.Addr)
}

// send writes the request frame, applying injected frame faults: a
// dropped request is simply never written (the attempt times out), a
// duplicated one is written twice (the server replays the cached reply
// for the duplicate), a delayed one sleeps first. Faults sleep outside
// writeMu so a delayed call never blocks a concurrent sender.
func (c *Client) send(cc *clientConn, f Frame, attempt int) error {
	flt := c.cfg.Faults
	if d := flt.delayReq(f.Seq, attempt); d > 0 {
		time.Sleep(d)
	}
	if d := flt.linkDelay(); d > 0 {
		time.Sleep(d)
	}
	if flt.dropReq(f.Seq, attempt) {
		return nil // "lost on the wire": the call will time out and retry
	}
	cc.writeMu.Lock()
	defer cc.writeMu.Unlock()
	cc.conn.SetWriteDeadline(time.Now().Add(c.cfg.callTimeout()))
	if err := WriteFrame(cc.conn, &cc.wbuf, f); err != nil {
		return err
	}
	c.bytesOut.Add(int64(frameHeaderSize + len(f.Payload)))
	if flt.dupReq(f.Seq, attempt) {
		if err := WriteFrame(cc.conn, &cc.wbuf, f); err != nil {
			return err
		}
		c.bytesOut.Add(int64(frameHeaderSize + len(f.Payload)))
	}
	return nil
}

// Attach plans and attaches a query on the shard under an id.
func (c *Client) Attach(queryID uint32, algo, sql string) error {
	payload := AppendAttach(nil, AttachReq{Query: queryID, Algo: algo, SQL: sql})
	f, err := c.call(MsgAttach, payload)
	if err != nil {
		return err
	}
	if f.Type != MsgAttached {
		return fmt.Errorf("wire: attach reply %v", f.Type)
	}
	return nil
}

// Sense implements engine.RemoteShard: one shared sensing of the epoch.
func (c *Client) Sense(e model.Epoch) (map[model.NodeID]model.Reading, error) {
	f, err := c.call(MsgSense, AppendEpoch(nil, e))
	if err != nil {
		return nil, err
	}
	if f.Type != MsgReadings {
		return nil, fmt.Errorf("wire: sense reply %v", f.Type)
	}
	re, readings, err := DecodeReadings(f.Payload)
	if err != nil {
		return nil, err
	}
	if re != e {
		return nil, fmt.Errorf("wire: sense reply for epoch %d, want %d", re, e)
	}
	return readings, nil
}

// Acquire implements engine.RemoteShard: run one epoch of an attached
// query on the shard.
func (c *Client) Acquire(queryID uint32, e model.Epoch) (engine.RemoteAcquisition, error) {
	f, err := c.call(MsgAcquire, AppendAcquire(nil, AcquireReq{Query: queryID, Epoch: e}))
	if err != nil {
		return engine.RemoteAcquisition{}, err
	}
	if f.Type != MsgAnswers {
		return engine.RemoteAcquisition{}, fmt.Errorf("wire: acquire reply %v", f.Type)
	}
	re, answers, override, err := DecodeAnswers(f.Payload)
	if err != nil {
		return engine.RemoteAcquisition{}, err
	}
	if re != e {
		return engine.RemoteAcquisition{}, fmt.Errorf("wire: acquire reply for epoch %d, want %d", re, e)
	}
	return engine.RemoteAcquisition{Answers: answers, Readings: override}, nil
}

// SupportsEpochRound implements engine.RemoteRoundShard: whether the
// session negotiated the batched one-round protocol.
func (c *Client) SupportsEpochRound() bool {
	return uint16(c.caps.Load())&CapEpochRound != 0
}

// EpochRound implements engine.RemoteRoundShard: sense the epoch and run
// every group's acquisition in one round trip.
func (c *Client) EpochRound(e model.Epoch, queries []uint32) (map[model.NodeID]model.Reading, []engine.RemoteGroupResult, error) {
	payload := AppendEpochRound(nil, EpochRoundReq{Epoch: e, Queries: queries})
	f, err := c.call(MsgEpochRound, payload)
	if err != nil {
		return nil, nil, err
	}
	if f.Type != MsgEpochRoundReply {
		return nil, nil, fmt.Errorf("wire: epoch-round reply %v", f.Type)
	}
	rep, err := DecodeEpochRoundReply(f.Payload, c.cfg.Roster)
	if err != nil {
		return nil, nil, err
	}
	if rep.Epoch != e {
		return nil, nil, fmt.Errorf("wire: epoch-round reply for epoch %d, want %d", rep.Epoch, e)
	}
	if len(rep.Groups) != len(queries) {
		return nil, nil, fmt.Errorf("wire: epoch-round reply carries %d groups, want %d", len(rep.Groups), len(queries))
	}
	results := make([]engine.RemoteGroupResult, len(rep.Groups))
	for i, g := range rep.Groups {
		if g.Err != "" {
			// Same shape a per-call MsgError takes, so a group failure is
			// indistinguishable from the legacy path's acquire failure.
			results[i].Err = fmt.Errorf("wire: shard %s: %s", c.shardLabel(), g.Err)
			continue
		}
		results[i].Acq = engine.RemoteAcquisition{Answers: g.Answers, Readings: g.Override}
	}
	return rep.Readings, results, nil
}

// SupportsSnapshot reports whether the session negotiated CapSnapshot —
// the shard can stream its durable state out (Snapshot) and in (Restore).
func (c *Client) SupportsSnapshot() bool {
	return uint16(c.caps.Load())&CapSnapshot != 0
}

// Snapshot streams the shard's durable state image — windows, epoch
// cursor, per-node energy (storage.ShardState bytes) — in bounded chunks.
// The server pins the image on the first chunk, so the result is
// consistent even while epochs keep committing.
func (c *Client) Snapshot() ([]byte, error) {
	var img []byte
	for {
		f, err := c.call(MsgSnapshot, AppendSnapshotReq(nil, SnapshotReq{Offset: uint32(len(img))}))
		if err != nil {
			return nil, err
		}
		if f.Type != MsgSnapshotChunk {
			return nil, fmt.Errorf("wire: snapshot reply %v", f.Type)
		}
		ch, err := DecodeSnapshotChunk(f.Payload)
		if err != nil {
			return nil, err
		}
		if int(ch.Offset) != len(img) {
			return nil, fmt.Errorf("wire: snapshot chunk at %d, want %d", ch.Offset, len(img))
		}
		if len(ch.Data) == 0 {
			return nil, fmt.Errorf("wire: empty snapshot chunk at %d of %d", ch.Offset, ch.Total)
		}
		img = append(img, ch.Data...)
		if uint32(len(img)) == ch.Total {
			return img, nil
		}
	}
}

// Restore streams a state image into the shard in bounded chunks; the
// server applies it atomically when the final byte arrives.
func (c *Client) Restore(img []byte) error {
	total := uint32(len(img))
	off := 0
	for {
		end := off + SnapshotChunkSize
		if end > len(img) {
			end = len(img)
		}
		f, err := c.call(MsgRestore, AppendRestoreChunk(nil, RestoreChunk{Total: total, Offset: uint32(off), Data: img[off:end]}))
		if err != nil {
			return err
		}
		if f.Type != MsgRestored {
			return fmt.Errorf("wire: restore reply %v", f.Type)
		}
		rep, err := DecodeRestored(f.Payload)
		if err != nil {
			return err
		}
		off = end
		if off == len(img) {
			if !rep.Applied {
				return fmt.Errorf("wire: restore not applied after %d bytes", rep.Received)
			}
			return nil
		}
	}
}

// StorageStats fetches the shard's durable-tier storage block (segments,
// bytes on disk, last checkpointed epoch).
func (c *Client) StorageStats() (storage.StoreStats, error) {
	f, err := c.call(MsgStats, nil)
	if err != nil {
		return storage.StoreStats{}, err
	}
	if f.Type != MsgStatsReply {
		return storage.StoreStats{}, fmt.Errorf("wire: stats reply %v", f.Type)
	}
	var row struct {
		Storage storage.StoreStats `json:"storage"`
	}
	if err := json.Unmarshal(f.Payload, &row); err != nil {
		return storage.StoreStats{}, err
	}
	return row.Storage, nil
}

// Stats fetches the shard's traffic/energy counters.
func (c *Client) Stats() (stats.RunStats, error) {
	f, err := c.call(MsgStats, nil)
	if err != nil {
		return stats.RunStats{}, err
	}
	if f.Type != MsgStatsReply {
		return stats.RunStats{}, fmt.Errorf("wire: stats reply %v", f.Type)
	}
	var row stats.RunStats
	if err := json.Unmarshal(f.Payload, &row); err != nil {
		return stats.RunStats{}, err
	}
	return row, nil
}

// Close ends the session: best-effort goodbye, then the connection drops.
// In-flight calls are interrupted promptly (the socket is closed under
// them, the reader broadcasts the death) and return errors; the reader
// goroutine exits. Safe to call more than once.
func (c *Client) Close() error {
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		return nil
	}
	c.closed = true
	close(c.closedCh)
	cc := c.cur
	c.cur = nil
	c.connMu.Unlock()
	if cc != nil {
		// Goodbye on the raw connection without touching the write mutex:
		// Close must not wait behind a sender it is supposed to interrupt.
		var wbuf []byte
		cc.conn.SetDeadline(time.Now().Add(100 * time.Millisecond))
		WriteFrame(cc.conn, &wbuf, Frame{Seq: ^uint64(0), Type: MsgClose, Payload: nil})
		cc.fail(errors.New("wire: client is closed"))
	}
	return nil
}

// Historic opens a historic execution handle on the shard. The handle
// implements fed.HistoricShard for the coordinator's threshold round.
func (c *Client) Historic(exec uint32, algo string, q topk.HistoricQuery) *HistoricExec {
	return &HistoricExec{c: c, exec: exec, algo: algo, q: q}
}

// HistoricExec is one historic execution on one remote shard.
type HistoricExec struct {
	c    *Client
	exec uint32
	algo string
	q    topk.HistoricQuery
}

// run executes the shard-local historic operator with an explicit ranking
// size and aggregate, returning the ranked answers and the shard's
// buffered-node count.
func (h *HistoricExec) run(k int, agg model.AggKind) ([]model.Answer, int, error) {
	payload := AppendHistoric(nil, HistoricReq{Exec: h.exec, K: k, Window: h.q.Window, Agg: agg, Algo: h.algo})
	f, err := h.c.call(MsgHistoric, payload)
	if err != nil {
		return nil, 0, err
	}
	if f.Type != MsgTopK {
		return nil, 0, fmt.Errorf("wire: historic reply %v", f.Type)
	}
	exec, nodes, answers, err := DecodeTopK(f.Payload)
	if err != nil {
		return nil, 0, err
	}
	if exec != h.exec {
		return nil, 0, fmt.Errorf("wire: historic reply for execution %d, want %d", exec, h.exec)
	}
	return answers, nodes, nil
}

// Run executes the query as posted — the flat (single-shard) path.
func (h *HistoricExec) Run() ([]model.Answer, error) {
	answers, _, err := h.run(h.q.K, h.q.Agg)
	return answers, err
}

// LocalTopK implements fed.HistoricShard: the shard's top shipK instants
// ranked by exact local SUM partial (see fed.OperatorShard — SUM and AVG
// rank identically within a shard, and the coordinator needs raw sums).
func (h *HistoricExec) LocalTopK(shipK int) ([]model.Answer, int, error) {
	return h.run(shipK, model.AggSum)
}

// FetchSums implements fed.HistoricShard: the phase-2 targeted sweep.
func (h *HistoricExec) FetchSums(ids []model.GroupID) (map[model.GroupID]int64, error) {
	f, err := h.c.call(MsgFetch, AppendFetch(nil, h.exec, ids))
	if err != nil {
		return nil, err
	}
	if f.Type != MsgSums {
		return nil, fmt.Errorf("wire: fetch reply %v", f.Type)
	}
	exec, sums, err := DecodeSums(f.Payload)
	if err != nil {
		return nil, err
	}
	if exec != h.exec {
		return nil, fmt.Errorf("wire: fetch reply for execution %d, want %d", exec, h.exec)
	}
	return sums, nil
}

// Release drops the execution's cached windows on the shard (best effort).
func (h *HistoricExec) Release() {
	h.c.call(MsgRelease, AppendU32(nil, h.exec))
}
