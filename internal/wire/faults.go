package wire

// Socket-path fault injection: the framing-layer analogue of the radio
// tier's frame faults. Decisions are keyed hashes of (seed, fault
// dimension, rpc sequence, attempt) — the same discipline as
// internal/faults, via its exported KeyedUnit — so a lossy-socket scenario
// replays identically run over run regardless of goroutine interleaving.
// Because the RPC layer is at-most-once (retries reuse the sequence number
// and the server replays cached responses), injected loss, duplication and
// delay degrade *latency*, never results: the conformance tests pin a
// faulted socket run byte-identical to a clean one.

import (
	"time"

	"kspot/internal/faults"
)

// Fault-dimension salts (distinct from the radio tier's, which hash
// message identities, not rpc sequences).
const (
	saltDropReq  uint64 = 0x77697265_0001
	saltDupReq   uint64 = 0x77697265_0002
	saltDelayReq uint64 = 0x77697265_0003
	saltDropResp uint64 = 0x77697265_0004
)

// Faults configures deterministic frame faults on a client's socket path.
// Probabilities are per (sequence, attempt); the zero value injects nothing.
type Faults struct {
	Seed int64
	// Drop is the probability a request frame is never written.
	Drop float64
	// Dup is the probability a request frame is written twice.
	Dup float64
	// Delay is the probability a request frame is delayed before writing.
	Delay float64
	// DropResp is the probability a matching response frame is discarded
	// after reading, forcing the attempt to time out and retry.
	DropResp float64
	// MaxDelay bounds an injected delay (default 2ms).
	MaxDelay time.Duration
	// LinkDelay models symmetric propagation latency: every request frame
	// sleeps LinkDelay before hitting the socket and every response frame
	// sleeps LinkDelay before delivery, so one call costs 2×LinkDelay of
	// round-trip time. Unlike the probabilistic dimensions it is applied
	// unconditionally — it is the RTT-injection leg of
	// BenchmarkWireEpochRTT, not a loss model.
	LinkDelay time.Duration
}

// Enabled reports whether any fault dimension is armed.
func (f *Faults) Enabled() bool {
	return f != nil && (f.Drop > 0 || f.Dup > 0 || f.Delay > 0 || f.DropResp > 0)
}

func (f *Faults) dropReq(seq uint64, attempt int) bool {
	return f.Enabled() && f.Drop > 0 &&
		faults.KeyedUnit(f.Seed, saltDropReq, seq, uint64(attempt)) < f.Drop
}

func (f *Faults) dupReq(seq uint64, attempt int) bool {
	return f.Enabled() && f.Dup > 0 &&
		faults.KeyedUnit(f.Seed, saltDupReq, seq, uint64(attempt)) < f.Dup
}

func (f *Faults) delayReq(seq uint64, attempt int) time.Duration {
	if !f.Enabled() || f.Delay <= 0 {
		return 0
	}
	u := faults.KeyedUnit(f.Seed, saltDelayReq, seq, uint64(attempt))
	if u >= f.Delay {
		return 0
	}
	max := f.MaxDelay
	if max <= 0 {
		max = 2 * time.Millisecond
	}
	// Reuse the decision variate, rescaled to [0,1), for the duration: one
	// draw per dimension keeps the decision schedule independent of how
	// the duration is consumed.
	return time.Duration(float64(max) * (u / f.Delay))
}

func (f *Faults) dropResp(seq uint64, attempt int) bool {
	return f.Enabled() && f.DropResp > 0 &&
		faults.KeyedUnit(f.Seed, saltDropResp, seq, uint64(attempt)) < f.DropResp
}

// linkDelay returns the symmetric per-frame propagation delay (0 = none).
func (f *Faults) linkDelay() time.Duration {
	if f == nil {
		return 0
	}
	return f.LinkDelay
}
