package wire

import (
	"bytes"
	"testing"

	"kspot/internal/model"
)

// FuzzFrameDecode drives arbitrary bytes through the framing layer and
// every payload codec behind it. The invariant is total robustness: a
// hostile or corrupt peer can make a decode fail, never panic, never
// allocate past MaxPayload — and anything that does decode must re-encode
// to the identical frame (the codecs have one canonical form).
func FuzzFrameDecode(f *testing.F) {
	f.Add(AppendFrame(nil, Frame{Seq: 1, Type: MsgHello, Payload: AppendHello(nil, Hello{Version: Version, Scenario: "demo"})}))
	f.Add(AppendFrame(nil, Frame{Seq: 2, Type: MsgSense, Payload: AppendEpoch(nil, 7)}))
	f.Add(AppendFrame(nil, Frame{Seq: 3, Type: MsgAnswers, Payload: AppendAnswers(nil, 7, []model.Answer{{Group: 1, Score: 2}}, nil)}))
	f.Add(AppendFrame(nil, Frame{Seq: 4, Type: MsgTopK, Payload: AppendTopK(nil, 1, 9, []model.Answer{{Group: 3, Score: -4.5}})}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			// Rejected input must also reject (not hang or panic) on the
			// streaming path.
			if _, rerr := ReadFrame(bytes.NewReader(data)); rerr == nil {
				t.Fatalf("DecodeFrame rejected (%v) but ReadFrame accepted", err)
			}
			return
		}
		if n < frameHeaderSize || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		if len(fr.Payload) > MaxPayload {
			t.Fatalf("oversized payload %d decoded", len(fr.Payload))
		}
		if re := AppendFrame(nil, fr); !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch: %x != %x", re, data[:n])
		}
		// Feed the payload to each structured codec; none may panic.
		DecodeHello(fr.Payload)
		DecodeWelcome(fr.Payload)
		DecodeAttach(fr.Payload)
		DecodeEpoch(fr.Payload)
		DecodeU32(fr.Payload)
		DecodeAcquire(fr.Payload)
		DecodeReadings(fr.Payload)
		DecodeAnswers(fr.Payload)
		DecodeHistoric(fr.Payload)
		DecodeTopK(fr.Payload)
		DecodeFetch(fr.Payload)
		DecodeSums(fr.Payload)
		DecodeEpochRound(fr.Payload)
		DecodeEpochRoundReply(fr.Payload, fuzzRoster)
		DecodeRosterReadings(fr.Payload, fuzzRoster, 0)
	})
}

// fuzzRoster is the fixed positional frame of reference for the
// epoch-round fuzz targets — gaps and a >255 id exercise the bitmap and
// varint paths.
var fuzzRoster = []model.NodeID{1, 2, 3, 5, 8, 13, 21, 300}

// FuzzEpochRoundDecode drives arbitrary bytes through the batched
// epoch-round codecs against a fixed roster. The invariant is the
// canonical-form one the retry layer depends on (a replayed reply must be
// byte-identical): any input that decodes — request, reply or bare roster
// readings block — must re-encode to exactly the bytes consumed, and no
// input may panic or over-allocate.
func FuzzEpochRoundDecode(f *testing.F) {
	f.Add(AppendEpochRound(nil, EpochRoundReq{Epoch: 7, Queries: []uint32{1, 2, 3}}))
	readings := map[model.NodeID]model.Reading{
		1:   {Node: 1, Group: 1, Epoch: 7, Value: 42.25},
		8:   {Node: 8, Group: 2, Epoch: 7, Value: -3.5},
		300: {Node: 300, Group: 9, Epoch: 9, Value: 1e4},
	}
	if seed, err := AppendEpochRoundReply(nil, fuzzRoster, EpochRoundReply{
		Epoch:    7,
		Readings: readings,
		Groups: []RoundGroup{
			{Answers: []model.Answer{{Group: 1, Score: 10}, {Group: 2, Score: -4.5}}},
			{Err: "query gone"},
			{Answers: []model.Answer{{Group: 3, Score: 1}}, Override: readings},
		},
	}); err == nil {
		f.Add(seed)
	}
	if block, err := AppendRosterReadings(nil, fuzzRoster, 3, readings); err == nil {
		f.Add(block)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := DecodeEpochRound(data); err == nil {
			if re := AppendEpochRound(nil, req); !bytes.Equal(re, data) {
				t.Fatalf("request re-encode mismatch: %x != %x", re, data)
			}
		}
		if rep, err := DecodeEpochRoundReply(data, fuzzRoster); err == nil {
			re, err := AppendEpochRoundReply(nil, fuzzRoster, rep)
			if err != nil {
				t.Fatalf("decoded reply refused to re-encode: %v", err)
			}
			if !bytes.Equal(re, data) {
				t.Fatalf("reply re-encode mismatch: %x != %x", re, data)
			}
		}
		if m, rest, err := DecodeRosterReadings(data, fuzzRoster, 9); err == nil {
			re, err := AppendRosterReadings(nil, fuzzRoster, 9, m)
			if err != nil {
				t.Fatalf("decoded readings refused to re-encode: %v", err)
			}
			if !bytes.Equal(re, data[:len(data)-len(rest)]) {
				t.Fatalf("readings re-encode mismatch: %x != %x", re, data[:len(data)-len(rest)])
			}
		}
	})
}

// FuzzHandshake round-trips arbitrary bytes through the hello codec: any
// input that decodes must re-encode canonically, and version-skewed or
// truncated hellos must be rejected by the server's admission check
// rather than crash it.
func FuzzHandshake(f *testing.F) {
	f.Add(AppendHello(nil, Hello{Version: Version, Shard: 1, Shards: 4, Nodes: 250, Nonce: 99, Scenario: "scale-1000"}))
	f.Add(AppendHello(nil, Hello{Version: Version + 1, Scenario: ""}))
	f.Add([]byte("KSPW"))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHello(data)
		if err != nil {
			return
		}
		if re := AppendHello(nil, h); !bytes.Equal(re, data) {
			t.Fatalf("hello re-encode mismatch: %x != %x", re, data)
		}
	})
}
