package wire

// Payload codecs for the RPC messages. Readings and snapshot answers reuse
// the model wire codec verbatim — the same 12- and 6-byte records the radio
// tier ships — so crossing the socket is exactly as lossy as crossing the
// air, i.e. not at all: every Value on a shard is already centi-quantized
// (operators rank with model.Quantize, sensing quantizes at the source), so
// the fixed-point round trip is the identity. Historic records carry their
// local sums as signed 64-bit centi-units instead: a window sum is the one
// quantity in the system that can outgrow the 32-bit answer encoding, and
// the federated threshold round needs it integer-exact.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"slices"

	"kspot/internal/model"
)

// fixed64 converts a centi-quantized Value to exact s64 centi-units (the
// 64-bit analogue of model.ToFixed, without its int32 saturation).
func fixed64(v model.Value) int64 {
	return int64(math.Round(float64(v) * 100))
}

// unfixed64 is the inverse of fixed64.
func unfixed64(s int64) model.Value { return model.Value(s) / 100 }

// AttachReq asks the shard to plan and attach a query under an id.
type AttachReq struct {
	Query uint32
	Algo  string // algorithm name ("" = router default), registry names
	SQL   string
}

// AppendAttach appends the wire form of r.
func AppendAttach(dst []byte, r AttachReq) []byte {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[0:], r.Query)
	dst = append(dst, buf[:]...)
	dst = appendString(dst, r.Algo)
	return appendString(dst, r.SQL)
}

// DecodeAttach decodes an attach request.
func DecodeAttach(b []byte) (AttachReq, error) {
	if len(b) < 4 {
		return AttachReq{}, io.ErrUnexpectedEOF
	}
	r := AttachReq{Query: binary.LittleEndian.Uint32(b[0:])}
	var err error
	b = b[4:]
	if r.Algo, b, err = decodeString(b); err != nil {
		return AttachReq{}, err
	}
	if r.SQL, b, err = decodeString(b); err != nil {
		return AttachReq{}, err
	}
	if len(b) != 0 {
		return AttachReq{}, fmt.Errorf("wire: %d trailing bytes after attach", len(b))
	}
	return r, nil
}

// AppendEpoch appends a bare epoch payload (sense requests).
func AppendEpoch(dst []byte, e model.Epoch) []byte {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[0:], uint32(e))
	return append(dst, buf[:]...)
}

// DecodeEpoch decodes a bare epoch payload.
func DecodeEpoch(b []byte) (model.Epoch, error) {
	if len(b) != 4 {
		return 0, fmt.Errorf("wire: epoch payload is %d bytes, want 4", len(b))
	}
	return model.Epoch(binary.LittleEndian.Uint32(b)), nil
}

// AppendU32 appends a bare u32 payload (attached/released acks).
func AppendU32(dst []byte, v uint32) []byte {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[0:], v)
	return append(dst, buf[:]...)
}

// DecodeU32 decodes a bare u32 payload.
func DecodeU32(b []byte) (uint32, error) {
	if len(b) != 4 {
		return 0, fmt.Errorf("wire: payload is %d bytes, want 4", len(b))
	}
	return binary.LittleEndian.Uint32(b), nil
}

// AcquireReq runs one epoch of an attached query.
type AcquireReq struct {
	Query uint32
	Epoch model.Epoch
}

// AppendAcquire appends the wire form of r.
func AppendAcquire(dst []byte, r AcquireReq) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[0:], r.Query)
	binary.LittleEndian.PutUint32(buf[4:], uint32(r.Epoch))
	return append(dst, buf[:]...)
}

// DecodeAcquire decodes an acquire request.
func DecodeAcquire(b []byte) (AcquireReq, error) {
	if len(b) != 8 {
		return AcquireReq{}, fmt.Errorf("wire: acquire payload is %d bytes, want 8", len(b))
	}
	return AcquireReq{
		Query: binary.LittleEndian.Uint32(b[0:]),
		Epoch: model.Epoch(binary.LittleEndian.Uint32(b[4:])),
	}, nil
}

// AppendReadings appends an epoch's readings reply: epoch, count, then the
// model codec's 12-byte reading records in sorted node order (the encoding
// is canonical so retried frames are byte-identical and fault decisions
// keyed on content would not flap; sorting also makes tests stable).
func AppendReadings(dst []byte, e model.Epoch, readings map[model.NodeID]model.Reading) []byte {
	dst = AppendEpoch(dst, e)
	var n [2]byte
	binary.LittleEndian.PutUint16(n[:], uint16(len(readings)))
	dst = append(dst, n[:]...)
	for _, id := range sortedNodes(readings) {
		dst = model.AppendReading(dst, readings[id])
	}
	return dst
}

// DecodeReadings decodes a readings reply into a map.
func DecodeReadings(b []byte) (model.Epoch, map[model.NodeID]model.Reading, error) {
	if len(b) < 6 {
		return 0, nil, io.ErrUnexpectedEOF
	}
	e := model.Epoch(binary.LittleEndian.Uint32(b[0:]))
	n := int(binary.LittleEndian.Uint16(b[4:]))
	b = b[6:]
	if len(b) != n*model.ReadingWireSize {
		return 0, nil, fmt.Errorf("wire: readings payload %d bytes for %d records", len(b), n)
	}
	out := make(map[model.NodeID]model.Reading, n)
	for i := 0; i < n; i++ {
		r, rest, err := model.DecodeReading(b)
		if err != nil {
			return 0, nil, err
		}
		out[r.Node] = r
		b = rest
	}
	return e, out, nil
}

// Answer reply flags.
const flagOverrideReadings = 1 << 0

// AppendAnswers appends an acquire reply: epoch, flags, the ranked answers
// in the model codec's 6-byte record, and — for queries whose per-node
// inputs are derived rather than shared (node-local window aggregation) —
// the derived readings the shard actually ran on, so the coordinator's
// exact oracle sees the same inputs the in-process coordinator would.
func AppendAnswers(dst []byte, e model.Epoch, answers []model.Answer, override map[model.NodeID]model.Reading) []byte {
	dst = AppendEpoch(dst, e)
	flags := byte(0)
	if override != nil {
		flags |= flagOverrideReadings
	}
	dst = append(dst, flags)
	var n [2]byte
	binary.LittleEndian.PutUint16(n[:], uint16(len(answers)))
	dst = append(dst, n[:]...)
	for _, a := range answers {
		dst = model.AppendAnswer(dst, a)
	}
	if override != nil {
		binary.LittleEndian.PutUint16(n[:], uint16(len(override)))
		dst = append(dst, n[:]...)
		for _, id := range sortedNodes(override) {
			dst = model.AppendReading(dst, override[id])
		}
	}
	return dst
}

// DecodeAnswers decodes an acquire reply. override is nil unless the shard
// ran the query on derived readings.
func DecodeAnswers(b []byte) (e model.Epoch, answers []model.Answer, override map[model.NodeID]model.Reading, err error) {
	if len(b) < 7 {
		return 0, nil, nil, io.ErrUnexpectedEOF
	}
	e = model.Epoch(binary.LittleEndian.Uint32(b[0:]))
	flags := b[4]
	n := int(binary.LittleEndian.Uint16(b[5:]))
	b = b[7:]
	if len(b) < n*model.AnswerWireSize {
		return 0, nil, nil, io.ErrUnexpectedEOF
	}
	answers = make([]model.Answer, 0, n)
	for i := 0; i < n; i++ {
		var a model.Answer
		a, b, err = model.DecodeAnswer(b)
		if err != nil {
			return 0, nil, nil, err
		}
		answers = append(answers, a)
	}
	if flags&flagOverrideReadings != 0 {
		if len(b) < 2 {
			return 0, nil, nil, io.ErrUnexpectedEOF
		}
		m := int(binary.LittleEndian.Uint16(b[0:]))
		b = b[2:]
		if len(b) != m*model.ReadingWireSize {
			return 0, nil, nil, fmt.Errorf("wire: override payload %d bytes for %d records", len(b), m)
		}
		override = make(map[model.NodeID]model.Reading, m)
		for i := 0; i < m; i++ {
			var r model.Reading
			r, b, err = model.DecodeReading(b)
			if err != nil {
				return 0, nil, nil, err
			}
			override[r.Node] = r
		}
	} else if len(b) != 0 {
		return 0, nil, nil, fmt.Errorf("wire: %d trailing bytes after answers", len(b))
	}
	return e, answers, override, nil
}

// HistoricReq runs a historic execution on the shard's buffered windows.
type HistoricReq struct {
	Exec   uint32
	K      int // ranking size (the merger's ShipK; the query's K when flat)
	Window int
	Agg    model.AggKind
	Algo   string
}

// AppendHistoric appends the wire form of r.
func AppendHistoric(dst []byte, r HistoricReq) []byte {
	var buf [9]byte
	binary.LittleEndian.PutUint32(buf[0:], r.Exec)
	binary.LittleEndian.PutUint16(buf[4:], uint16(r.K))
	binary.LittleEndian.PutUint16(buf[6:], uint16(r.Window))
	buf[8] = byte(r.Agg)
	dst = append(dst, buf[:]...)
	return appendString(dst, r.Algo)
}

// DecodeHistoric decodes a historic request.
func DecodeHistoric(b []byte) (HistoricReq, error) {
	if len(b) < 9 {
		return HistoricReq{}, io.ErrUnexpectedEOF
	}
	r := HistoricReq{
		Exec:   binary.LittleEndian.Uint32(b[0:]),
		K:      int(binary.LittleEndian.Uint16(b[4:])),
		Window: int(binary.LittleEndian.Uint16(b[6:])),
		Agg:    model.AggKind(b[8]),
	}
	var err error
	b = b[9:]
	if r.Algo, b, err = decodeString(b); err != nil {
		return HistoricReq{}, err
	}
	if len(b) != 0 {
		return HistoricReq{}, fmt.Errorf("wire: %d trailing bytes after historic", len(b))
	}
	return r, nil
}

// sumRecordSize is one historic (group, s64 centi-sum) record.
const sumRecordSize = 10

// AppendTopK appends a historic reply: exec id, the count of shard nodes
// holding a buffered window, and the ranked answers with exact s64 sums.
func AppendTopK(dst []byte, exec uint32, nodes int, answers []model.Answer) []byte {
	var buf [10]byte
	binary.LittleEndian.PutUint32(buf[0:], exec)
	binary.LittleEndian.PutUint32(buf[4:], uint32(nodes))
	binary.LittleEndian.PutUint16(buf[8:], uint16(len(answers)))
	dst = append(dst, buf[:]...)
	for _, a := range answers {
		var rec [sumRecordSize]byte
		binary.LittleEndian.PutUint16(rec[0:], uint16(a.Group))
		binary.LittleEndian.PutUint64(rec[2:], uint64(fixed64(a.Score)))
		dst = append(dst, rec[:]...)
	}
	return dst
}

// DecodeTopK decodes a historic reply.
func DecodeTopK(b []byte) (exec uint32, nodes int, answers []model.Answer, err error) {
	if len(b) < 10 {
		return 0, 0, nil, io.ErrUnexpectedEOF
	}
	exec = binary.LittleEndian.Uint32(b[0:])
	nodes = int(binary.LittleEndian.Uint32(b[4:]))
	n := int(binary.LittleEndian.Uint16(b[8:]))
	b = b[10:]
	if len(b) != n*sumRecordSize {
		return 0, 0, nil, fmt.Errorf("wire: topk payload %d bytes for %d records", len(b), n)
	}
	answers = make([]model.Answer, 0, n)
	for i := 0; i < n; i++ {
		answers = append(answers, model.Answer{
			Group: model.GroupID(binary.LittleEndian.Uint16(b[0:])),
			Score: unfixed64(int64(binary.LittleEndian.Uint64(b[2:]))),
		})
		b = b[sumRecordSize:]
	}
	return exec, nodes, answers, nil
}

// AppendFetch appends a phase-2 targeted fetch request: exec id + group ids.
func AppendFetch(dst []byte, exec uint32, ids []model.GroupID) []byte {
	var buf [6]byte
	binary.LittleEndian.PutUint32(buf[0:], exec)
	binary.LittleEndian.PutUint16(buf[4:], uint16(len(ids)))
	dst = append(dst, buf[:]...)
	for _, id := range ids {
		var rec [2]byte
		binary.LittleEndian.PutUint16(rec[:], uint16(id))
		dst = append(dst, rec[:]...)
	}
	return dst
}

// DecodeFetch decodes a fetch request.
func DecodeFetch(b []byte) (exec uint32, ids []model.GroupID, err error) {
	if len(b) < 6 {
		return 0, nil, io.ErrUnexpectedEOF
	}
	exec = binary.LittleEndian.Uint32(b[0:])
	n := int(binary.LittleEndian.Uint16(b[4:]))
	b = b[6:]
	if len(b) != n*2 {
		return 0, nil, fmt.Errorf("wire: fetch payload %d bytes for %d ids", len(b), n)
	}
	ids = make([]model.GroupID, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, model.GroupID(binary.LittleEndian.Uint16(b[2*i:])))
	}
	return exec, ids, nil
}

// AppendSums appends a fetch reply: exec id + (group, s64 centi-sum)
// records in ascending group order (canonical).
func AppendSums(dst []byte, exec uint32, sums map[model.GroupID]int64) []byte {
	var buf [6]byte
	binary.LittleEndian.PutUint32(buf[0:], exec)
	binary.LittleEndian.PutUint16(buf[4:], uint16(len(sums)))
	dst = append(dst, buf[:]...)
	ids := make([]model.GroupID, 0, len(sums))
	for id := range sums {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		var rec [sumRecordSize]byte
		binary.LittleEndian.PutUint16(rec[0:], uint16(id))
		binary.LittleEndian.PutUint64(rec[2:], uint64(sums[id]))
		dst = append(dst, rec[:]...)
	}
	return dst
}

// DecodeSums decodes a fetch reply.
func DecodeSums(b []byte) (exec uint32, sums map[model.GroupID]int64, err error) {
	if len(b) < 6 {
		return 0, nil, io.ErrUnexpectedEOF
	}
	exec = binary.LittleEndian.Uint32(b[0:])
	n := int(binary.LittleEndian.Uint16(b[4:]))
	b = b[6:]
	if len(b) != n*sumRecordSize {
		return 0, nil, fmt.Errorf("wire: sums payload %d bytes for %d records", len(b), n)
	}
	sums = make(map[model.GroupID]int64, n)
	for i := 0; i < n; i++ {
		id := model.GroupID(binary.LittleEndian.Uint16(b[0:]))
		sums[id] = int64(binary.LittleEndian.Uint64(b[2:]))
		b = b[sumRecordSize:]
	}
	return exec, sums, nil
}

// sortedNodes returns a reading map's node ids in ascending order.
func sortedNodes(m map[model.NodeID]model.Reading) []model.NodeID {
	ids := make([]model.NodeID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}
