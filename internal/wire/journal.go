package wire

// journal is the shard server's session meta log: the second file of a
// -data-dir next to the storage segments. Where segments persist WHAT the
// shard buffered, the journal persists WHO it was serving — the
// coordinator session nonce, every attached query (id, algorithm, SQL),
// and a per-epoch energy checkpoint — so a kill -9'd shard process
// restarted on the same data dir resumes the SAME session: the
// reconnecting coordinator's unchanged nonce matches instead of resetting
// the session, its queries are already attached (replayed from the
// journal through the normal attach path), and the network's energy
// ledger picks up where the dead process last flushed.
//
// The format is the segment discipline applied to variable-size records:
// u32 len | payload | crc32(payload), replayed front to back with the
// torn tail truncated. Payloads are kind-tagged.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"kspot/internal/model"
)

// Journal record kinds.
const (
	jNonce  = 1 // u64 nonce — a new coordinator session began
	jAttach = 2 // u32 qid | str algo | str sql — a query attached
	jEnergy = 3 // u32 epoch | u32 count | (u16 node, u64 f64bits µJ)* — epoch checkpoint
)

// journalState is what replaying a journal yields.
type journalState struct {
	nonce       uint64
	attaches    []AttachReq // in attach order
	energyEpoch model.Epoch
	hasEnergy   bool
	energy      map[model.NodeID]float64
}

// journal appends session meta records to one file.
type journal struct {
	path string
	f    *os.File
	w    *bufio.Writer
	buf  []byte
}

// appendJournalRecord appends one framed record.
func appendJournalRecord(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
}

// replayJournal decodes the clean record prefix of b, returning the
// payloads and the clean byte length (the torn tail starts there).
func replayJournal(b []byte) ([][]byte, int) {
	var out [][]byte
	clean := 0
	for {
		rest := b[clean:]
		if len(rest) < 8 {
			return out, clean
		}
		n := int(binary.LittleEndian.Uint32(rest))
		if n > MaxPayload || len(rest) < 8+n {
			return out, clean
		}
		payload := rest[4 : 4+n]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[4+n:]) {
			return out, clean
		}
		out = append(out, payload)
		clean += 8 + n
	}
}

// openJournal opens (or creates) the journal, recovers its clean state
// and truncates any torn tail.
func openJournal(path string) (*journal, journalState, error) {
	st := journalState{}
	raw, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, st, fmt.Errorf("wire: reading journal %s: %w", path, err)
	}
	payloads, clean := replayJournal(raw)
	for _, p := range payloads {
		if len(p) == 0 {
			continue
		}
		switch p[0] {
		case jNonce:
			if len(p) == 9 {
				st.nonce = binary.LittleEndian.Uint64(p[1:])
				// A nonce record begins a session: earlier session state is void.
				st.attaches = nil
				st.hasEnergy = false
				st.energy = nil
			}
		case jAttach:
			if len(p) < 5 {
				continue
			}
			qid := binary.LittleEndian.Uint32(p[1:])
			algo, rest, err := decodeString(p[5:])
			if err != nil {
				continue
			}
			sql, rest, err := decodeString(rest)
			if err != nil || len(rest) != 0 {
				continue
			}
			st.attaches = append(st.attaches, AttachReq{Query: qid, Algo: algo, SQL: sql})
		case jEnergy:
			if len(p) < 9 {
				continue
			}
			epoch := model.Epoch(binary.LittleEndian.Uint32(p[1:]))
			n := int(binary.LittleEndian.Uint32(p[5:]))
			if len(p) != 9+n*10 {
				continue
			}
			m := make(map[model.NodeID]float64, n)
			for i := 0; i < n; i++ {
				off := 9 + i*10
				m[model.NodeID(binary.LittleEndian.Uint16(p[off:]))] =
					math.Float64frombits(binary.LittleEndian.Uint64(p[off+2:]))
			}
			st.energyEpoch, st.hasEnergy, st.energy = epoch, true, m
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, st, fmt.Errorf("wire: opening journal %s: %w", path, err)
	}
	if clean < len(raw) {
		if err := f.Truncate(int64(clean)); err != nil {
			f.Close()
			return nil, st, fmt.Errorf("wire: truncating journal %s: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(clean), 0); err != nil {
		f.Close()
		return nil, st, err
	}
	return &journal{path: path, f: f, w: bufio.NewWriter(f)}, st, nil
}

// write frames and appends one payload, flushing to the kernel (the
// durability point a kill -9 cannot revoke).
func (j *journal) write(payload []byte) error {
	j.buf = appendJournalRecord(j.buf[:0], payload)
	if _, err := j.w.Write(j.buf); err != nil {
		return fmt.Errorf("wire: appending journal %s: %w", j.path, err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("wire: flushing journal %s: %w", j.path, err)
	}
	return nil
}

// Nonce records a new coordinator session.
func (j *journal) Nonce(nonce uint64) error {
	var p [9]byte
	p[0] = jNonce
	binary.LittleEndian.PutUint64(p[1:], nonce)
	return j.write(p[:])
}

// Attach records one attached query.
func (j *journal) Attach(req AttachReq) error {
	p := []byte{jAttach}
	p = binary.LittleEndian.AppendUint32(p, req.Query)
	p = appendString(p, req.Algo)
	p = appendString(p, req.SQL)
	return j.write(p)
}

// Energy records an epoch's per-node ledger checkpoint, nodes ascending.
func (j *journal) Energy(e model.Epoch, nodes []model.NodeID, uj func(model.NodeID) float64) error {
	p := []byte{jEnergy}
	p = binary.LittleEndian.AppendUint32(p, uint32(e))
	p = binary.LittleEndian.AppendUint32(p, uint32(len(nodes)))
	for _, n := range nodes {
		p = binary.LittleEndian.AppendUint16(p, uint16(n))
		p = binary.LittleEndian.AppendUint64(p, math.Float64bits(uj(n)))
	}
	return j.write(p)
}

// Close flushes and closes the journal.
func (j *journal) Close() error {
	ferr := j.w.Flush()
	cerr := j.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}
