package wire

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"kspot/internal/model"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Seq: 1, Type: MsgHello, Payload: []byte("hello")},
		{Seq: 0, Type: MsgClose, Payload: nil},
		{Seq: ^uint64(0), Type: MsgAnswers, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
	}
	var stream []byte
	for _, f := range frames {
		stream = AppendFrame(stream, f)
	}
	rest := stream
	for i, want := range frames {
		got, n, err := DecodeFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Seq != want.Seq || got.Type != want.Type || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: %+v != %+v", i, got, want)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}

	// The reader path must agree with the in-memory path.
	r := bytes.NewReader(stream)
	for i, want := range frames {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("read frame %d: %v", i, err)
		}
		if got.Seq != want.Seq || got.Type != want.Type || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("read frame %d: %+v != %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("after last frame: %v, want EOF", err)
	}
}

func TestFrameRejects(t *testing.T) {
	full := AppendFrame(nil, Frame{Seq: 7, Type: MsgSense, Payload: []byte{1, 2, 3}})

	// Every truncation of a valid frame must fail cleanly, never panic.
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeFrame(full[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
		if _, err := ReadFrame(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncated read at %d succeeded", cut)
		}
	}

	// A declared length below the seq+type minimum is malformed.
	runt := []byte{8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	if _, _, err := DecodeFrame(runt); err == nil {
		t.Fatal("runt length accepted")
	}

	// An oversized declared length must be refused before any allocation.
	huge := []byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0, 0, 0, 0, 0, 1}
	if _, _, err := DecodeFrame(huge); err == nil {
		t.Fatal("oversized frame accepted")
	}
	if _, err := ReadFrame(bytes.NewReader(huge)); err == nil {
		t.Fatal("oversized frame read")
	}
}

func TestHandshakeRoundTrip(t *testing.T) {
	h := Hello{Version: Version, Shard: 2, Shards: 4, Nodes: 250, Nonce: 0xDEADBEEF00000001, Scenario: "scale-1000"}
	got, err := DecodeHello(AppendHello(nil, h))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("hello %+v != %+v", got, h)
	}
	w := Welcome{Version: Version, Shard: 2, Nodes: 250, Name: "shard-2"}
	gw, err := DecodeWelcome(AppendWelcome(nil, w))
	if err != nil {
		t.Fatal(err)
	}
	if gw != w {
		t.Fatalf("welcome %+v != %+v", gw, w)
	}
}

func TestHandshakeRejects(t *testing.T) {
	valid := AppendHello(nil, Hello{Version: Version, Scenario: "demo"})
	for cut := 0; cut < len(valid); cut++ {
		if _, err := DecodeHello(valid[:cut]); err == nil {
			t.Fatalf("truncated hello at %d accepted", cut)
		}
	}
	// Wrong magic.
	bad := append([]byte(nil), valid...)
	bad[0] ^= 0xFF
	if _, err := DecodeHello(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("corrupt magic: %v", err)
	}
	// Trailing garbage.
	if _, err := DecodeHello(append(append([]byte(nil), valid...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	for cut := 0; cut < 10; cut++ {
		wl := AppendWelcome(nil, Welcome{Version: Version, Name: "shard-0"})
		if cut < len(wl) {
			if _, err := DecodeWelcome(wl[:cut]); err == nil {
				t.Fatalf("truncated welcome at %d accepted", cut)
			}
		}
	}
}

func TestPayloadCodecsRoundTrip(t *testing.T) {
	// Readings: node order must not matter on the way in, and the decoded
	// map must match value-exactly (centi-quantized fixed point).
	readings := map[model.NodeID]model.Reading{
		9: {Node: 9, Group: 2, Value: 55.25},
		1: {Node: 1, Group: 0, Value: -3.5},
		4: {Node: 4, Group: 1, Value: 0},
	}
	e, got, err := DecodeReadings(AppendReadings(nil, 17, readings))
	if err != nil {
		t.Fatal(err)
	}
	if e != 17 || len(got) != len(readings) {
		t.Fatalf("epoch %d / %d readings", e, len(got))
	}
	for id, r := range readings {
		if got[id] != r {
			t.Fatalf("node %d: %+v != %+v", id, got[id], r)
		}
	}

	// Answers with an override reading set (GROUP BY ... WITH HISTORY).
	answers := []model.Answer{{Group: 3, Score: 61.5}, {Group: 1, Score: 60}}
	ae, gotAns, override, err := DecodeAnswers(AppendAnswers(nil, 5, answers, readings))
	if err != nil {
		t.Fatal(err)
	}
	if ae != 5 || !model.EqualAnswers(gotAns, answers) || len(override) != len(readings) {
		t.Fatalf("answers round-trip: epoch %d, %v, override %d", ae, gotAns, len(override))
	}
	// And without: override must come back nil, not empty.
	_, _, override, err = DecodeAnswers(AppendAnswers(nil, 5, answers, nil))
	if err != nil {
		t.Fatal(err)
	}
	if override != nil {
		t.Fatalf("no-override answers decoded an override set: %v", override)
	}

	// Historic TOP-K rows carry signed 64-bit centi-sums: values beyond the
	// 6-byte snapshot answer codec's int32 saturation must survive.
	big := []model.Answer{
		{Group: 7, Score: model.Value(30_000_000.25)},
		{Group: 2, Score: model.Value(-30_000_000.25)},
	}
	exec, nodes, gotBig, err := DecodeTopK(AppendTopK(nil, 42, 250, big))
	if err != nil {
		t.Fatal(err)
	}
	if exec != 42 || nodes != 250 || !model.EqualAnswers(gotBig, big) {
		t.Fatalf("topk round-trip: exec %d nodes %d %v", exec, nodes, gotBig)
	}

	// Fetch / sums.
	ids := []model.GroupID{5, 1, 9}
	fexec, gotIDs, err := DecodeFetch(AppendFetch(nil, 42, ids))
	if err != nil {
		t.Fatal(err)
	}
	if fexec != 42 || len(gotIDs) != 3 {
		t.Fatalf("fetch round-trip: exec %d ids %v", fexec, gotIDs)
	}
	sums := map[model.GroupID]int64{5: -123456789, 1: 0, 9: 1 << 40}
	sexec, gotSums, err := DecodeSums(AppendSums(nil, 42, sums))
	if err != nil {
		t.Fatal(err)
	}
	if sexec != 42 || len(gotSums) != len(sums) {
		t.Fatalf("sums round-trip: exec %d %v", sexec, gotSums)
	}
	for g, s := range sums {
		if gotSums[g] != s {
			t.Fatalf("group %d: %d != %d", g, gotSums[g], s)
		}
	}

	// Attach and historic requests.
	att, err := DecodeAttach(AppendAttach(nil, AttachReq{Query: 3, Algo: "mint", SQL: "SELECT TOP 3 ..."}))
	if err != nil {
		t.Fatal(err)
	}
	if att.Query != 3 || att.Algo != "mint" || att.SQL != "SELECT TOP 3 ..." {
		t.Fatalf("attach round-trip: %+v", att)
	}
	hr, err := DecodeHistoric(AppendHistoric(nil, HistoricReq{Exec: 9, K: 4, Window: 16, Agg: model.AggSum, Algo: "tja"}))
	if err != nil {
		t.Fatal(err)
	}
	if hr != (HistoricReq{Exec: 9, K: 4, Window: 16, Agg: model.AggSum, Algo: "tja"}) {
		t.Fatalf("historic round-trip: %+v", hr)
	}
}

func TestPayloadCodecsReject(t *testing.T) {
	valids := [][]byte{
		AppendReadings(nil, 1, map[model.NodeID]model.Reading{1: {Node: 1, Value: 2}}),
		AppendAnswers(nil, 1, []model.Answer{{Group: 1, Score: 2}}, nil),
		AppendTopK(nil, 1, 2, []model.Answer{{Group: 1, Score: 2}}),
		AppendFetch(nil, 1, []model.GroupID{1}),
		AppendSums(nil, 1, map[model.GroupID]int64{1: 2}),
		AppendAttach(nil, AttachReq{Query: 1, Algo: "mint", SQL: "x"}),
		AppendHistoric(nil, HistoricReq{Exec: 1, K: 1, Window: 1, Agg: model.AggAvg, Algo: "tja"}),
	}
	decoders := []func([]byte) error{
		func(b []byte) error { _, _, err := DecodeReadings(b); return err },
		func(b []byte) error { _, _, _, err := DecodeAnswers(b); return err },
		func(b []byte) error { _, _, _, err := DecodeTopK(b); return err },
		func(b []byte) error { _, _, err := DecodeFetch(b); return err },
		func(b []byte) error { _, _, err := DecodeSums(b); return err },
		func(b []byte) error { _, err := DecodeAttach(b); return err },
		func(b []byte) error { _, err := DecodeHistoric(b); return err },
	}
	for i, valid := range valids {
		if err := decoders[i](valid); err != nil {
			t.Fatalf("codec %d rejected its own output: %v", i, err)
		}
		for cut := 0; cut < len(valid); cut++ {
			if err := decoders[i](valid[:cut]); err == nil {
				t.Fatalf("codec %d: truncation at %d accepted", i, cut)
			}
		}
		if err := decoders[i](append(append([]byte(nil), valid...), 0xFF)); err == nil {
			t.Fatalf("codec %d: trailing byte accepted", i)
		}
	}
}

// TestFixed64RoundTrip pins the wire fixed-point against the model's
// quantization: every centi-quantized value a shard can produce must
// round-trip the socket losslessly — the root of the byte-identity
// guarantee for remote deployments.
func TestFixed64RoundTrip(t *testing.T) {
	for _, v := range []model.Value{0, 0.01, -0.01, 55.25, -273.15, 1e7, -1e7} {
		q := model.Quantize(v)
		if got := unfixed64(fixed64(q)); got != q {
			t.Fatalf("value %v: %v != %v after wire round-trip", v, got, q)
		}
	}
}
