package wire

// Snapshot/restore payload codecs (CapSnapshot). A shard's state — the
// storage.ShardState bytes: windows, epoch cursor, per-node energy — can
// exceed a frame, so both directions move it in bounded chunks:
//
//	MsgSnapshot      req:  offset u32
//	MsgSnapshotChunk rep:  total u32 | offset u32 | data
//	MsgRestore       req:  total u32 | offset u32 | data
//	MsgRestored      rep:  received u32 | applied u8
//
// Snapshot chunks are served from a state image the server pins at offset
// 0 and drops after serving the final byte, so a multi-chunk snapshot is
// consistent even while epochs keep committing. Restore buffers chunks
// until the final byte arrives, then decodes and applies atomically —
// applied=1 on the last reply. Chunks must arrive in order (offset =
// bytes received so far); the at-most-once layer makes retries of either
// direction safe.

import (
	"encoding/binary"
	"fmt"
	"io"
)

// SnapshotChunkSize bounds one chunk's data bytes, comfortably under
// MaxPayload with the chunk header.
const SnapshotChunkSize = 1 << 18

// SnapshotReq asks for the chunk starting at Offset.
type SnapshotReq struct {
	Offset uint32
}

// SnapshotChunk is one bounded slice of the pinned state image.
type SnapshotChunk struct {
	Total  uint32
	Offset uint32
	Data   []byte
}

// RestoreChunk is one bounded slice of a state image being pushed.
type RestoreChunk struct {
	Total  uint32
	Offset uint32
	Data   []byte
}

// RestoredReply acknowledges a restore chunk.
type RestoredReply struct {
	Received uint32
	Applied  bool
}

// AppendSnapshotReq appends the wire form of r.
func AppendSnapshotReq(dst []byte, r SnapshotReq) []byte {
	return binary.LittleEndian.AppendUint32(dst, r.Offset)
}

// DecodeSnapshotReq decodes a snapshot request.
func DecodeSnapshotReq(b []byte) (SnapshotReq, error) {
	if len(b) != 4 {
		return SnapshotReq{}, fmt.Errorf("wire: snapshot request is %d bytes, want 4", len(b))
	}
	return SnapshotReq{Offset: binary.LittleEndian.Uint32(b)}, nil
}

// appendChunk appends the shared total|offset|data chunk form.
func appendChunk(dst []byte, total, offset uint32, data []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, total)
	dst = binary.LittleEndian.AppendUint32(dst, offset)
	return append(dst, data...)
}

// decodeChunk decodes the shared chunk form. The data aliases b.
func decodeChunk(b []byte) (total, offset uint32, data []byte, err error) {
	if len(b) < 8 {
		return 0, 0, nil, io.ErrUnexpectedEOF
	}
	total = binary.LittleEndian.Uint32(b)
	offset = binary.LittleEndian.Uint32(b[4:])
	data = b[8:]
	if len(data) > SnapshotChunkSize {
		return 0, 0, nil, fmt.Errorf("wire: chunk data %d exceeds %d", len(data), SnapshotChunkSize)
	}
	if uint64(offset)+uint64(len(data)) > uint64(total) {
		return 0, 0, nil, fmt.Errorf("wire: chunk [%d,%d) overruns total %d", offset, int(offset)+len(data), total)
	}
	return total, offset, data, nil
}

// AppendSnapshotChunk appends the wire form of c.
func AppendSnapshotChunk(dst []byte, c SnapshotChunk) []byte {
	return appendChunk(dst, c.Total, c.Offset, c.Data)
}

// DecodeSnapshotChunk decodes a snapshot chunk; Data aliases b.
func DecodeSnapshotChunk(b []byte) (SnapshotChunk, error) {
	total, off, data, err := decodeChunk(b)
	if err != nil {
		return SnapshotChunk{}, err
	}
	return SnapshotChunk{Total: total, Offset: off, Data: data}, nil
}

// AppendRestoreChunk appends the wire form of c.
func AppendRestoreChunk(dst []byte, c RestoreChunk) []byte {
	return appendChunk(dst, c.Total, c.Offset, c.Data)
}

// DecodeRestoreChunk decodes a restore chunk; Data aliases b.
func DecodeRestoreChunk(b []byte) (RestoreChunk, error) {
	total, off, data, err := decodeChunk(b)
	if err != nil {
		return RestoreChunk{}, err
	}
	return RestoreChunk{Total: total, Offset: off, Data: data}, nil
}

// AppendRestored appends the wire form of r.
func AppendRestored(dst []byte, r RestoredReply) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, r.Received)
	if r.Applied {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// DecodeRestored decodes a restore acknowledgement.
func DecodeRestored(b []byte) (RestoredReply, error) {
	if len(b) != 5 {
		return RestoredReply{}, fmt.Errorf("wire: restored reply is %d bytes, want 5", len(b))
	}
	if b[4] > 1 {
		return RestoredReply{}, fmt.Errorf("wire: restored applied flag %d", b[4])
	}
	return RestoredReply{Received: binary.LittleEndian.Uint32(b), Applied: b[4] == 1}, nil
}
