package wire

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"slices"
	"sync"

	"kspot/internal/config"
	"kspot/internal/engine"
	"kspot/internal/faults"
	"kspot/internal/model"
	"kspot/internal/query"
	"kspot/internal/sim"
	"kspot/internal/stats"
	"kspot/internal/storage"
	"kspot/internal/topk"
	"kspot/internal/topk/registry"
	"kspot/internal/trace"
)

// ServerConfig opens one shard of a federated scenario behind a socket.
type ServerConfig struct {
	// Scenario is the FLAT scenario (with its shards block). The server
	// deploys only its own shard's sub-scenario, but samples the trace
	// source built from the flat scenario — the federation invariant that
	// roots the identical-answer guarantee (see engine.Deployment).
	Scenario *config.Scenario
	// Shard is this server's shard index into the scenario's shard list.
	Shard int
	// Parallel bounds the deterministic epoch sweep's worker count
	// (kspot.WithParallel); 0/1 is the exact sequential walk.
	Parallel int
	// Live runs the shard on the concurrent substrate (one goroutine per
	// sensor node) instead of the deterministic simulator. Answers and
	// counters are pinned identical across substrates, so the coordinator
	// cannot tell the difference.
	Live bool
	// LiveWindow sizes the live substrate's per-node history buffer.
	LiveWindow int
	// DisableEpochRound withholds CapEpochRound from the handshake and
	// refuses MsgEpochRound — the server behaves like a pre-batching
	// deployment, so mixed old/new federations are testable (a client
	// falls back to the per-call protocol per shard). It also withholds
	// CapSnapshot: the flag models an old server, and old servers predate
	// the durable tier.
	DisableEpochRound bool
	// DataDir, when non-empty, persists the shard across process deaths:
	// the durable tier's segment files plus a session journal (coordinator
	// nonce, attached queries, per-epoch energy checkpoints) live there, so
	// a kill -9'd kspotd -serve-shard restarted on the same directory
	// resumes the session mid-run. Empty keeps the memory backend — the
	// default, byte-identical to the pre-durability server.
	DataDir string
}

// Server wraps one shard's local substrate behind the framed protocol: the
// kspotd -serve-shard process body. It expects a single logical
// coordinator; requests are serialized (the shard substrate is one state
// machine) and executed at most once per sequence number — a reconnecting
// coordinator resuming a session replays cached responses instead of
// re-running sweeps.
type Server struct {
	cfg    ServerConfig
	sub    *config.Scenario
	net    *sim.Network
	tp     engine.Transport // behind the shard's fault injector when armed
	src    trace.Source
	schema query.Schema
	name   string

	live       *engine.Live
	liveCancel context.CancelFunc
	roster     []model.NodeID // shard node ids ascending: the positional frame

	store   *storage.Store
	journal *journal // nil without a data dir

	mu          sync.Mutex
	queries     map[uint32]*attachedQuery
	historics   map[uint32]*historicExec
	senseEpoch  model.Epoch
	sensed      map[model.NodeID]model.Reading
	nonce       uint64
	evicted     uint64 // highest sequence evicted from the replay cache
	replay      map[uint64][]byte
	replayOrder []uint64
	snapState   []byte // pinned snapshot image being served in chunks
	restoreBuf  []byte // restore image being assembled from chunks

	connMu sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// attachedQuery is one coordinator-posted query's shard-local execution
// state: the planned query, its operator instance and, for queries whose
// per-node inputs are derived rather than shared (GROUP BY ... WITH
// HISTORY), the derivation source.
type attachedQuery struct {
	plan     *query.Plan
	op       topk.SnapshotOperator
	override trace.Source
}

// historicExec caches one historic execution's buffered windows between
// the phase-1 ranking and phase-2 targeted fetches.
type historicExec struct {
	data topk.HistoricData
}

// replayCap bounds the at-most-once response cache. The pipelined client
// keeps several calls in flight per connection (overlapped group
// acquisitions, stats polls, concurrent historic rounds), so the cache
// must outlive the deepest plausible in-flight window plus its retries.
const replayCap = 64

// NewServer builds a shard server: the shard's network (deterministic or
// live), the flat trace source, and — when the scenario carries a faults
// block — the shard's derived fault environment, exactly as an in-process
// federated Open would arm it (same per-shard seeds, same injector), so
// fault scenarios replay identically in-process and over the wire.
func NewServer(cfg ServerConfig) (*Server, error) {
	shardScens, err := cfg.Scenario.ShardScenarios()
	if err != nil {
		return nil, err
	}
	if cfg.Shard < 0 || cfg.Shard >= len(shardScens) {
		return nil, fmt.Errorf("wire: shard %d out of range (scenario %q has %d)", cfg.Shard, cfg.Scenario.Name, len(shardScens))
	}
	sub := shardScens[cfg.Shard]
	network, err := sub.Network()
	if err != nil {
		return nil, err
	}
	network.SetParallel(cfg.Parallel)
	src, err := cfg.Scenario.Source()
	if err != nil {
		return nil, err
	}
	roster := make([]model.NodeID, 0, len(sub.Nodes))
	for _, n := range sub.Nodes {
		roster = append(roster, model.NodeID(n.ID))
	}
	slices.Sort(roster)
	s := &Server{
		cfg:       cfg,
		sub:       sub,
		net:       network,
		src:       src,
		schema:    query.DefaultSchema(),
		name:      cfg.Scenario.ShardName(cfg.Shard),
		roster:    roster,
		queries:   make(map[uint32]*attachedQuery),
		historics: make(map[uint32]*historicExec),
		replay:    make(map[uint64][]byte),
		conns:     make(map[net.Conn]bool),
	}
	var tp engine.Transport = network
	if cfg.Live {
		window := cfg.LiveWindow
		if window <= 0 {
			window = 64
		}
		ctx, cancel := context.WithCancel(context.Background())
		s.live = engine.NewLive(network, engine.LiveOptions{Window: window})
		s.live.Start(ctx)
		s.liveCancel = cancel
		tp = s.live
	}
	if cfg.Scenario.Faults.Enabled() {
		fcfg := cfg.Scenario.ShardFaults(*cfg.Scenario.Faults, cfg.Shard)
		inj, err := faults.Wrap(tp, fcfg)
		if err != nil {
			s.stopLive()
			return nil, err
		}
		tp = inj
	}
	s.tp = tp
	if err := s.openDurable(); err != nil {
		s.stopLive()
		return nil, err
	}
	return s, nil
}

// openDurable opens the shard's durable tier (the memory backend when no
// data dir is configured) and, in durable mode, recovers the session
// journal: the dead process's coordinator nonce (so the reconnecting
// client does not look like a new session and trigger a reset), its
// attached queries (replayed through the normal attach path — the shard
// re-derives each operator from the journaled SQL), and the last flushed
// energy checkpoint.
func (s *Server) openDurable() error {
	store, err := storage.OpenStore(s.cfg.DataDir, storage.DefaultStoreWindow)
	if err != nil {
		return err
	}
	s.store = store
	if s.cfg.DataDir == "" {
		return nil
	}
	j, jst, err := openJournal(filepath.Join(s.cfg.DataDir, "meta.journal"))
	if err != nil {
		store.Close()
		return err
	}
	s.journal = j
	s.nonce = jst.nonce
	for _, a := range jst.attaches {
		if err := s.attach(a); err != nil {
			j.Close()
			store.Close()
			return fmt.Errorf("wire: replaying journaled attach %d (%q): %w", a.Query, a.SQL, err)
		}
	}
	for n, uj := range jst.energy {
		s.net.Ledger.Set(int(n), uj)
		if b, ok := s.net.Budgets[n]; ok && b != nil {
			b.Used = uj
		}
	}
	return nil
}

// Name returns the shard's display name.
func (s *Server) Name() string { return s.name }

// Network exposes the shard's simulated network (tests reconcile its
// counters against the coordinator's fetched stats).
func (s *Server) Network() *sim.Network { return s.net }

func (s *Server) stopLive() {
	if s.live != nil {
		s.live.Stop()
		s.liveCancel()
	}
}

// Serve accepts coordinator connections on ln until Close. Each
// connection must open with a handshake; requests across all connections
// serialize on the shard's single state machine.
func (s *Server) Serve(ln net.Listener) error {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		return fmt.Errorf("wire: server closed")
	}
	s.ln = ln
	s.connMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.connMu.Lock()
			closed := s.closed
			s.connMu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.connMu.Lock()
		if s.closed {
			s.connMu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = true
		s.wg.Add(1)
		s.connMu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.connMu.Lock()
			delete(s.conns, conn)
			s.connMu.Unlock()
			conn.Close()
		}()
	}
}

// Close stops accepting, closes every connection, waits the handlers out
// and tears the shard substrate down. Safe to call more than once.
func (s *Server) Close() {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	s.stopLive()
	if s.journal != nil {
		s.journal.Close()
	}
	if s.store != nil {
		s.store.Close()
	}
}

// serveConn runs one connection: handshake, then the request loop.
func (s *Server) serveConn(conn net.Conn) {
	var wbuf []byte
	f, err := ReadFrame(conn)
	if err != nil {
		return
	}
	if f.Type != MsgHello {
		WriteFrame(conn, &wbuf, Frame{Seq: f.Seq, Type: MsgError, Payload: []byte("wire: expected hello")})
		return
	}
	hello, err := DecodeHello(f.Payload)
	if err != nil {
		WriteFrame(conn, &wbuf, Frame{Seq: f.Seq, Type: MsgError, Payload: []byte(err.Error())})
		return
	}
	if err := s.checkHello(hello); err != nil {
		WriteFrame(conn, &wbuf, Frame{Seq: f.Seq, Type: MsgError, Payload: []byte(err.Error())})
		return
	}
	s.mu.Lock()
	if hello.Nonce != s.nonce {
		// A new coordinator session: reset the at-most-once state and the
		// session-scoped query registry. Network state (energy spent,
		// counters) persists — the field does not reset because a new
		// coordinator dialed in. The durable tier and journal DO reset:
		// they are session artifacts (a crash-restarted shard keeps them
		// precisely because its coordinator's nonce is unchanged).
		s.nonce = hello.Nonce
		s.evicted = 0
		s.replay = make(map[uint64][]byte)
		s.replayOrder = s.replayOrder[:0]
		s.queries = make(map[uint32]*attachedQuery)
		s.historics = make(map[uint32]*historicExec)
		s.sensed = nil
		s.snapState = nil
		s.restoreBuf = nil
		if err := s.store.Reset(); err != nil {
			s.mu.Unlock()
			WriteFrame(conn, &wbuf, Frame{Seq: f.Seq, Type: MsgError, Payload: []byte(err.Error())})
			return
		}
		if s.journal != nil {
			if err := s.journal.Nonce(hello.Nonce); err != nil {
				s.mu.Unlock()
				WriteFrame(conn, &wbuf, Frame{Seq: f.Seq, Type: MsgError, Payload: []byte(err.Error())})
				return
			}
		}
	}
	s.mu.Unlock()
	caps := CapEpochRound | CapSnapshot
	if s.cfg.DisableEpochRound {
		caps = 0
	}
	welcome := AppendWelcome(nil, Welcome{
		Version: Version,
		Shard:   uint16(s.cfg.Shard),
		Nodes:   uint16(len(s.sub.Nodes)),
		Caps:    caps,
		Name:    s.name,
	})
	if err := WriteFrame(conn, &wbuf, Frame{Seq: f.Seq, Type: MsgWelcome, Payload: welcome}); err != nil {
		return
	}
	for {
		f, err := ReadFrame(conn)
		if err != nil {
			return
		}
		reply, close := s.dispatch(f)
		if err := WriteFrame(conn, &wbuf, reply); err != nil {
			return
		}
		if close {
			return
		}
	}
}

// checkHello verifies the coordinator dialed the deployment it thinks it
// dialed: protocol version, scenario name, shard index and count, node
// count. A mismatch fails the handshake instead of corrupting epochs.
func (s *Server) checkHello(h Hello) error {
	if h.Version != Version {
		return fmt.Errorf("wire: protocol version %d, server speaks %d", h.Version, Version)
	}
	if h.Scenario != s.cfg.Scenario.Name {
		return fmt.Errorf("wire: scenario %q, server deploys %q", h.Scenario, s.cfg.Scenario.Name)
	}
	if int(h.Shard) != s.cfg.Shard {
		return fmt.Errorf("wire: shard %d, server serves shard %d", h.Shard, s.cfg.Shard)
	}
	if int(h.Shards) != len(s.cfg.Scenario.Shards) && !(h.Shards == 1 && len(s.cfg.Scenario.Shards) == 0) {
		return fmt.Errorf("wire: %d shards, server's scenario has %d", h.Shards, len(s.cfg.Scenario.Shards))
	}
	if int(h.Nodes) != len(s.sub.Nodes) {
		return fmt.Errorf("wire: %d nodes, server's shard deploys %d", h.Nodes, len(s.sub.Nodes))
	}
	return nil
}

// dispatch executes one request frame at most once: a sequence number
// already executed replays its cached reply (a retried or duplicated
// frame must not re-run a sweep or re-charge sensing). The pipelined
// client's in-flight calls reach the socket in any order, so the server
// executes any sequence it has not seen; only a sequence old enough to
// have been EVICTED from the replay cache is refused — executing it could
// be a re-execution, which at-most-once forbids.
func (s *Server) dispatch(f Frame) (reply Frame, close bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cached, ok := s.replay[f.Seq]; ok {
		frame, _, err := DecodeFrame(cached)
		if err != nil {
			// Unreachable: the cache holds frames this server encoded.
			return Frame{Seq: f.Seq, Type: MsgError, Payload: []byte("wire: corrupt replay cache")}, false
		}
		return frame, frame.Type == MsgClosed
	}
	if f.Seq <= s.evicted {
		return Frame{Seq: f.Seq, Type: MsgError, Payload: []byte("wire: stale sequence")}, false
	}
	t, payload, err := s.handle(f)
	if err != nil {
		t, payload = MsgError, []byte(err.Error())
	}
	reply = Frame{Seq: f.Seq, Type: t, Payload: payload}
	s.replay[f.Seq] = AppendFrame(nil, reply)
	s.replayOrder = append(s.replayOrder, f.Seq)
	if len(s.replayOrder) > replayCap {
		old := s.replayOrder[0]
		delete(s.replay, old)
		s.replayOrder = s.replayOrder[1:]
		if old > s.evicted {
			s.evicted = old
		}
	}
	return reply, t == MsgClosed
}

// handle executes one request under s.mu.
func (s *Server) handle(f Frame) (MsgType, []byte, error) {
	switch f.Type {
	case MsgAttach:
		req, err := DecodeAttach(f.Payload)
		if err != nil {
			return 0, nil, err
		}
		if err := s.attach(req); err != nil {
			return 0, nil, err
		}
		// Journaled AFTER the attach succeeds (and not inside attach, which
		// recovery replays): a journaled attach is one the shard will accept
		// again on restart.
		if s.journal != nil {
			if err := s.journal.Attach(req); err != nil {
				return 0, nil, err
			}
		}
		return MsgAttached, AppendU32(nil, req.Query), nil

	case MsgSense:
		e, err := DecodeEpoch(f.Payload)
		if err != nil {
			return 0, nil, err
		}
		// Presample + commit is the coordinator's exact sensing order
		// (idle charge, dead-node drop, sensing charge, history record);
		// the post-commit readings are what this epoch's acquisitions see.
		readings := engine.PresampleEpoch(s.tp, s.src, e)
		engine.CommitSenseEpoch(s.tp, e, readings)
		s.recordEpoch(e, readings)
		s.senseEpoch, s.sensed = e, readings
		return MsgReadings, AppendReadings(nil, e, readings), nil

	case MsgAcquire:
		req, err := DecodeAcquire(f.Payload)
		if err != nil {
			return 0, nil, err
		}
		if s.sensed == nil || s.senseEpoch != req.Epoch {
			return 0, nil, fmt.Errorf("wire: acquire epoch %d without a matching sense (last sensed %d)", req.Epoch, s.senseEpoch)
		}
		answers, override, err := s.acquireLocked(req.Query, req.Epoch)
		if err != nil {
			return 0, nil, err
		}
		return MsgAnswers, AppendAnswers(nil, req.Epoch, answers, override), nil

	case MsgEpochRound:
		if s.cfg.DisableEpochRound {
			return 0, nil, fmt.Errorf("wire: epoch-round not negotiated")
		}
		req, err := DecodeEpochRound(f.Payload)
		if err != nil {
			return 0, nil, err
		}
		// The whole epoch in one frame: the sense commit, then every
		// group's acquisition in request order — the exact call order the
		// per-call protocol produces, so operator and counter state evolve
		// identically. A group's failure is carried per group (the sensing
		// and the other groups stand, as they would mid-way through the
		// per-call sequence).
		readings := engine.PresampleEpoch(s.tp, s.src, req.Epoch)
		engine.CommitSenseEpoch(s.tp, req.Epoch, readings)
		s.recordEpoch(req.Epoch, readings)
		s.senseEpoch, s.sensed = req.Epoch, readings
		rep := EpochRoundReply{Epoch: req.Epoch, Readings: readings}
		for _, qid := range req.Queries {
			var g RoundGroup
			answers, override, err := s.acquireLocked(qid, req.Epoch)
			if err != nil {
				g.Err = err.Error()
			} else {
				g.Answers, g.Override = answers, override
			}
			rep.Groups = append(rep.Groups, g)
		}
		payload, err := AppendEpochRoundReply(nil, s.roster, rep)
		if err != nil {
			return 0, nil, err
		}
		return MsgEpochRoundReply, payload, nil

	case MsgHistoric:
		req, err := DecodeHistoric(f.Payload)
		if err != nil {
			return 0, nil, err
		}
		op, err := registry.Historic(req.Algo)
		if err != nil {
			return 0, nil, err
		}
		hq := topk.HistoricQuery{K: req.K, Agg: req.Agg, Window: req.Window}
		if err := hq.Validate(); err != nil {
			return 0, nil, err
		}
		data, err := s.bufferWindows(req.Window)
		if err != nil {
			return 0, nil, err
		}
		answers, err := op.Run(s.tp, hq, data)
		if err != nil {
			return 0, nil, err
		}
		s.historics[req.Exec] = &historicExec{data: data}
		return MsgTopK, AppendTopK(nil, req.Exec, len(data), answers), nil

	case MsgFetch:
		exec, ids, err := DecodeFetch(f.Payload)
		if err != nil {
			return 0, nil, err
		}
		h, ok := s.historics[exec]
		if !ok {
			return 0, nil, fmt.Errorf("wire: historic execution %d unknown", exec)
		}
		sums := topk.FetchHistoricSums(s.tp, h.data, ids)
		return MsgSums, AppendSums(nil, exec, sums), nil

	case MsgRelease:
		exec, err := DecodeU32(f.Payload)
		if err != nil {
			return 0, nil, err
		}
		delete(s.historics, exec)
		return MsgReleased, AppendU32(nil, exec), nil

	case MsgSnapshot:
		if s.cfg.DisableEpochRound {
			return 0, nil, fmt.Errorf("wire: snapshot not negotiated")
		}
		req, err := DecodeSnapshotReq(f.Payload)
		if err != nil {
			return 0, nil, err
		}
		if req.Offset == 0 {
			// Pin a consistent image: later chunks slice this encoding even
			// if epochs keep committing between requests.
			s.snapState = storage.AppendShardState(nil, s.store.State(s.energyOf))
		}
		if s.snapState == nil {
			return 0, nil, fmt.Errorf("wire: snapshot chunk %d without a pinned image", req.Offset)
		}
		img := s.snapState
		if int(req.Offset) >= len(img) {
			return 0, nil, fmt.Errorf("wire: snapshot offset %d beyond image of %d bytes", req.Offset, len(img))
		}
		end := int(req.Offset) + SnapshotChunkSize
		if end > len(img) {
			end = len(img)
		}
		payload := AppendSnapshotChunk(nil, SnapshotChunk{Total: uint32(len(img)), Offset: req.Offset, Data: img[req.Offset:end]})
		if end == len(img) {
			// Final byte served: drop the pin. A retry of this chunk replays
			// from the at-most-once cache, never from the image.
			s.snapState = nil
		}
		return MsgSnapshotChunk, payload, nil

	case MsgRestore:
		if s.cfg.DisableEpochRound {
			return 0, nil, fmt.Errorf("wire: snapshot not negotiated")
		}
		req, err := DecodeRestoreChunk(f.Payload)
		if err != nil {
			return 0, nil, err
		}
		if req.Offset == 0 {
			s.restoreBuf = s.restoreBuf[:0]
		}
		if int(req.Offset) != len(s.restoreBuf) {
			return 0, nil, fmt.Errorf("wire: restore chunk at %d, have %d bytes", req.Offset, len(s.restoreBuf))
		}
		s.restoreBuf = append(s.restoreBuf, req.Data...)
		rep := RestoredReply{Received: uint32(len(s.restoreBuf))}
		if uint32(len(s.restoreBuf)) == req.Total {
			st, err := storage.DecodeShardState(s.restoreBuf)
			s.restoreBuf = nil
			if err != nil {
				return 0, nil, err
			}
			if err := s.store.Restore(st); err != nil {
				return 0, nil, err
			}
			// The moved nodes' energy arrives bit-exact: the ledger resumes
			// the source shard's partial sums, so post-migration totals
			// equal the never-migrated run's.
			for _, ns := range st.Nodes {
				s.net.Ledger.Set(int(ns.Node), ns.EnergyUJ)
				if b, ok := s.net.Budgets[ns.Node]; ok && b != nil {
					b.Used = ns.EnergyUJ
				}
			}
			rep.Applied = true
		}
		return MsgRestored, AppendRestored(nil, rep), nil

	case MsgStats:
		row := stats.Collect(s.name, s.net, 0)
		payload, err := json.Marshal(struct {
			stats.RunStats
			Storage storage.StoreStats `json:"storage"`
		}{row, s.store.Stats()})
		if err != nil {
			return 0, nil, err
		}
		return MsgStatsReply, payload, nil

	case MsgClose:
		return MsgClosed, nil, nil

	default:
		return 0, nil, fmt.Errorf("wire: unexpected %v request", f.Type)
	}
}

// recordEpoch folds one committed sense epoch into the durable tier and,
// in durable mode, checkpoints the energy ledger into the journal (the
// restart floor: a kill -9 loses at most the epoch in flight). Called
// under s.mu; both are best-effort for answers — the store skips epochs
// it already persisted, and a storage failure sticks in store.Err()
// rather than perturbing the sense path.
func (s *Server) recordEpoch(e model.Epoch, readings map[model.NodeID]model.Reading) {
	s.store.RecordReadings(e, readings)
	if s.journal == nil {
		return
	}
	ids := s.net.Ledger.Nodes()
	nodes := make([]model.NodeID, 0, len(ids))
	for _, id := range ids {
		nodes = append(nodes, model.NodeID(id))
	}
	s.journal.Energy(e, nodes, s.energyOf)
}

// energyOf reads one node's ledger total in µJ.
func (s *Server) energyOf(n model.NodeID) float64 {
	return s.net.Ledger.Node(int(n))
}

// Store exposes the shard's durable tier (tests inspect recovery state).
func (s *Server) Store() *storage.Store { return s.store }

// acquireLocked runs one epoch of an attached query against the epoch's
// committed sensing (s.mu held). For queries whose per-node inputs are
// derived rather than shared (window aggregation), the derivation is
// rebuilt without charging over the node set the sense committed — the
// in-process coordinator's exact derivation, so shared epochs stay
// order-independent across acquisitions — and returned as the override.
func (s *Server) acquireLocked(qid uint32, e model.Epoch) ([]model.Answer, map[model.NodeID]model.Reading, error) {
	q, ok := s.queries[qid]
	if !ok {
		return nil, nil, fmt.Errorf("wire: query %d not attached", qid)
	}
	readings := s.sensed
	var override map[model.NodeID]model.Reading
	if q.override != nil {
		override = engine.DeriveReadings(s.sensed, q.override, e)
		readings = override
	}
	answers, err := q.op.Epoch(e, readings)
	if err != nil {
		return nil, nil, err
	}
	return answers, override, nil
}

// attach plans the query text locally and instantiates the shard's own
// operator — the shard re-derives everything from the SQL, so coordinator
// and shard can never disagree about what the query means.
func (s *Server) attach(req AttachReq) error {
	plan, err := query.PlanText(req.SQL, s.schema)
	if err != nil {
		return err
	}
	if plan.Kind == query.PlanHistoricTopK {
		return fmt.Errorf("wire: historic query %q executes via the historic round, not attach", req.SQL)
	}
	algo := req.Algo
	if plan.Kind == query.PlanBasic {
		algo = "tag"
	}
	op, err := registry.Snapshot(algo)
	if err != nil {
		return err
	}
	if err := op.Attach(s.tp, plan.Snapshot); err != nil {
		return err
	}
	q := &attachedQuery{plan: plan, op: op}
	if plan.Kind == query.PlanHistoricGroupTopK {
		q.override = trace.WindowAgg(s.src, plan.History, plan.Snapshot.Agg)
	}
	s.queries[req.Query] = q
	return nil
}

// bufferWindows materializes the shard's per-node windows from the flat
// trace source, epoch-aligned across shards (global node ids).
func (s *Server) bufferWindows(window int) (topk.HistoricData, error) {
	series, err := storage.BufferSeries(s.tp.Topology().SensorNodes(), window, s.src.Sample)
	if err != nil {
		return nil, err
	}
	return topk.HistoricData(series), nil
}

// isClosedErr reports whether err is the benign shutdown error.
func isClosedErr(err error) bool {
	return errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF)
}
