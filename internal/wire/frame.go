// Package wire is the TCP shard transport of a federated KSpot deployment:
// the third substrate next to the deterministic simulator and the
// concurrent live deployment. A shard process (kspotd -serve-shard) wraps
// its local substrate in a Server; the coordinator process drives every
// shard through a Client, which the engine's RemoteCoordinator fans out
// exactly like the in-process shard fan-out.
//
// The protocol is a length-prefixed framed RPC over one TCP connection:
//
//	frame   := len(u32) seq(u64) type(u8) payload
//	len     counts seq+type+payload (9 ≤ len ≤ 9+MaxPayload)
//
// all integers little-endian, matching the model codec. The first frame on
// a connection must be a Hello carrying a magic, the protocol version and
// the shard identity (scenario name, shard index/count, node count); the
// server verifies it against its own deployment and answers Welcome, so a
// version-skewed or misdeployed peer fails the handshake instead of
// corrupting an epoch stream.
//
// Requests are at-most-once: the client stamps a monotone per-session
// sequence number on every call and retries the *same* sequence on timeout
// or reconnect; the server replays the cached response for a sequence it
// already executed and refuses sequences old enough to have been evicted
// from the replay cache. That is what makes per-connection
// retry/timeout/backoff — and the deterministic frame-level fault
// injection in faults.go — safe: a sense is charged and an acquisition
// sweep runs exactly once per sequence number no matter how many frames
// the socket loses, duplicates or delays, so a federated run over lossy
// sockets stays byte-identical to the in-process run.
//
// The connection is full-duplex: the client pipelines calls, demultiplexing
// responses back to their callers by sequence number, and — when both peers
// negotiated CapEpochRound at handshake — collapses a whole federated epoch
// (sense + every shared-acquisition group) into ONE MsgEpochRound round
// trip whose readings cross in a roster-positional delta encoding instead
// of keyed reading records. See round.go.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Protocol constants.
const (
	// Magic opens every handshake payload ("KSPW", little-endian).
	Magic uint32 = 0x5750534B
	// Version is the protocol version; peers must match exactly.
	Version uint16 = 1
	// MaxPayload bounds a frame's payload. The largest legitimate frame is
	// a readings reply (12 bytes per sensor node), so 1 MiB covers ~87k
	// nodes per shard — far beyond scale-100k split into shards — while a
	// garbage length prefix is rejected before any allocation.
	MaxPayload = 1 << 20

	frameHeaderSize = 4 + 8 + 1 // len + seq + type
)

// MsgType tags a frame.
type MsgType uint8

// Frame types. Requests are client→server, replies server→client.
const (
	MsgInvalid  MsgType = iota
	MsgHello            // handshake request: identity + version
	MsgWelcome          // handshake reply: server identity
	MsgError            // reply: application error (string payload)
	MsgAttach           // attach a query: qid, algorithm, SQL text
	MsgAttached         // reply: qid
	MsgSense            // sense an epoch: epoch
	MsgReadings         // reply: epoch + readings (model codec)
	MsgAcquire          // run an attached query's epoch: qid, epoch
	MsgAnswers          // reply: epoch + answers (+ override readings)
	MsgHistoric         // run a historic execution: exec, algo, k, window, agg
	MsgTopK             // reply: exec, node count, (group, s64 sum) records
	MsgFetch            // phase-2 targeted fetch: exec, group ids
	MsgSums             // reply: exec, (group, s64 sum) records
	MsgRelease          // drop a historic execution's cached state: exec
	MsgReleased         // reply: exec
	MsgStats            // fetch the shard's traffic/energy counters
	MsgStatsReply       // reply: JSON stats.RunStats
	MsgClose            // graceful session close
	MsgClosed           // reply: acknowledged
	MsgEpochRound       // batched epoch round: epoch + every group's query id
	MsgEpochRoundReply  // reply: sense readings + every group's acquisition
	MsgSnapshot         // fetch one bounded chunk of the shard state: offset
	MsgSnapshotChunk    // reply: total size, offset, chunk bytes
	MsgRestore          // push one bounded chunk of a shard state: total, offset, bytes
	MsgRestored         // reply: bytes received so far, applied flag
)

// Capability bits, negotiated at handshake: the client offers its set in
// Hello.Caps, the server grants its own in Welcome.Caps, and the session
// speaks the intersection. An old peer (or one with the capability
// disabled) simply never sees the newer frames.
const (
	// CapEpochRound: the peer speaks the batched one-round epoch protocol
	// (MsgEpochRound) with roster-positional readings encoding.
	CapEpochRound uint16 = 1 << 0
	// CapSnapshot: the peer speaks the shard snapshot/restore protocol
	// (MsgSnapshot/MsgRestore) — chunked transfer of the durable tier's
	// windows, epoch cursor and energy ledger.
	CapSnapshot uint16 = 1 << 1
)

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgWelcome:
		return "welcome"
	case MsgError:
		return "error"
	case MsgAttach:
		return "attach"
	case MsgAttached:
		return "attached"
	case MsgSense:
		return "sense"
	case MsgReadings:
		return "readings"
	case MsgAcquire:
		return "acquire"
	case MsgAnswers:
		return "answers"
	case MsgHistoric:
		return "historic"
	case MsgTopK:
		return "topk"
	case MsgFetch:
		return "fetch"
	case MsgSums:
		return "sums"
	case MsgRelease:
		return "release"
	case MsgReleased:
		return "released"
	case MsgStats:
		return "stats"
	case MsgStatsReply:
		return "stats-reply"
	case MsgClose:
		return "close"
	case MsgClosed:
		return "closed"
	case MsgEpochRound:
		return "epoch-round"
	case MsgEpochRoundReply:
		return "epoch-round-reply"
	case MsgSnapshot:
		return "snapshot"
	case MsgSnapshotChunk:
		return "snapshot-chunk"
	case MsgRestore:
		return "restore"
	case MsgRestored:
		return "restored"
	default:
		return fmt.Sprintf("msg(%d)", uint8(t))
	}
}

// Frame is one protocol frame. Payload is owned by the decoder's caller.
type Frame struct {
	Seq     uint64
	Type    MsgType
	Payload []byte
}

// AppendFrame appends the wire form of f to dst and returns the result.
func AppendFrame(dst []byte, f Frame) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(9+len(f.Payload)))
	binary.LittleEndian.PutUint64(hdr[4:], f.Seq)
	hdr[12] = byte(f.Type)
	dst = append(dst, hdr[:]...)
	return append(dst, f.Payload...)
}

// DecodeFrame decodes one frame from the front of b, returning the frame
// and the number of bytes consumed. The payload aliases b. Truncated input
// returns io.ErrUnexpectedEOF; a length prefix below the fixed header or
// above MaxPayload is rejected before any payload is touched.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < frameHeaderSize {
		return Frame{}, 0, io.ErrUnexpectedEOF
	}
	n := binary.LittleEndian.Uint32(b[0:])
	if n < 9 {
		return Frame{}, 0, fmt.Errorf("wire: frame length %d below header size", n)
	}
	if n-9 > MaxPayload {
		return Frame{}, 0, fmt.Errorf("wire: frame payload %d exceeds %d", n-9, MaxPayload)
	}
	total := int(4 + n)
	if len(b) < total {
		return Frame{}, 0, io.ErrUnexpectedEOF
	}
	f := Frame{
		Seq:     binary.LittleEndian.Uint64(b[4:]),
		Type:    MsgType(b[12]),
		Payload: b[frameHeaderSize:total],
	}
	return f, total, nil
}

// ReadFrame reads one frame from r, rejecting oversized length prefixes
// before allocating. The payload is freshly allocated.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:])
	if n < 9 {
		return Frame{}, fmt.Errorf("wire: frame length %d below header size", n)
	}
	if n-9 > MaxPayload {
		return Frame{}, fmt.Errorf("wire: frame payload %d exceeds %d", n-9, MaxPayload)
	}
	f := Frame{
		Seq:  binary.LittleEndian.Uint64(hdr[4:]),
		Type: MsgType(hdr[12]),
	}
	if n > 9 {
		f.Payload = make([]byte, n-9)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return Frame{}, err
		}
	}
	return f, nil
}

// WriteFrame writes one frame to w, reusing *buf as the encode buffer.
func WriteFrame(w io.Writer, buf *[]byte, f Frame) error {
	*buf = AppendFrame((*buf)[:0], f)
	_, err := w.Write(*buf)
	return err
}

// Hello is the handshake request: the client announces the protocol
// version and the deployment identity it expects on the far end. Nonce
// identifies the client session — a reconnect of the same session keeps
// its at-most-once replay state on the server, a new session resets it.
type Hello struct {
	Version  uint16
	Shard    uint16 // shard index the client believes it is dialing
	Shards   uint16 // total shard count of the deployment
	Nodes    uint16 // sensor node count of this shard's sub-scenario
	Caps     uint16 // capability bits the client offers (CapEpochRound, ...)
	Nonce    uint64
	Scenario string // flat scenario name
}

// Welcome is the handshake reply: the server's own identity.
type Welcome struct {
	Version uint16
	Shard   uint16
	Nodes   uint16
	Caps    uint16 // capability bits the server grants
	Name    string // shard display name (panels, error tags)
}

// AppendHello appends the wire form of h.
func AppendHello(dst []byte, h Hello) []byte {
	var buf [22]byte
	binary.LittleEndian.PutUint32(buf[0:], Magic)
	binary.LittleEndian.PutUint16(buf[4:], h.Version)
	binary.LittleEndian.PutUint16(buf[6:], h.Shard)
	binary.LittleEndian.PutUint16(buf[8:], h.Shards)
	binary.LittleEndian.PutUint16(buf[10:], h.Nodes)
	binary.LittleEndian.PutUint16(buf[12:], h.Caps)
	binary.LittleEndian.PutUint64(buf[14:], h.Nonce)
	dst = append(dst, buf[:]...)
	return appendString(dst, h.Scenario)
}

// DecodeHello decodes a handshake request, rejecting bad magic, truncation
// and trailing garbage.
func DecodeHello(b []byte) (Hello, error) {
	if len(b) < 22 {
		return Hello{}, io.ErrUnexpectedEOF
	}
	if binary.LittleEndian.Uint32(b[0:]) != Magic {
		return Hello{}, fmt.Errorf("wire: bad handshake magic %#x", binary.LittleEndian.Uint32(b[0:]))
	}
	h := Hello{
		Version: binary.LittleEndian.Uint16(b[4:]),
		Shard:   binary.LittleEndian.Uint16(b[6:]),
		Shards:  binary.LittleEndian.Uint16(b[8:]),
		Nodes:   binary.LittleEndian.Uint16(b[10:]),
		Caps:    binary.LittleEndian.Uint16(b[12:]),
		Nonce:   binary.LittleEndian.Uint64(b[14:]),
	}
	s, rest, err := decodeString(b[22:])
	if err != nil {
		return Hello{}, err
	}
	if len(rest) != 0 {
		return Hello{}, fmt.Errorf("wire: %d trailing bytes after hello", len(rest))
	}
	h.Scenario = s
	return h, nil
}

// AppendWelcome appends the wire form of w.
func AppendWelcome(dst []byte, w Welcome) []byte {
	var buf [12]byte
	binary.LittleEndian.PutUint32(buf[0:], Magic)
	binary.LittleEndian.PutUint16(buf[4:], w.Version)
	binary.LittleEndian.PutUint16(buf[6:], w.Shard)
	binary.LittleEndian.PutUint16(buf[8:], w.Nodes)
	binary.LittleEndian.PutUint16(buf[10:], w.Caps)
	dst = append(dst, buf[:]...)
	return appendString(dst, w.Name)
}

// DecodeWelcome decodes a handshake reply.
func DecodeWelcome(b []byte) (Welcome, error) {
	if len(b) < 12 {
		return Welcome{}, io.ErrUnexpectedEOF
	}
	if binary.LittleEndian.Uint32(b[0:]) != Magic {
		return Welcome{}, fmt.Errorf("wire: bad handshake magic %#x", binary.LittleEndian.Uint32(b[0:]))
	}
	w := Welcome{
		Version: binary.LittleEndian.Uint16(b[4:]),
		Shard:   binary.LittleEndian.Uint16(b[6:]),
		Nodes:   binary.LittleEndian.Uint16(b[8:]),
		Caps:    binary.LittleEndian.Uint16(b[10:]),
	}
	s, rest, err := decodeString(b[12:])
	if err != nil {
		return Welcome{}, err
	}
	if len(rest) != 0 {
		return Welcome{}, fmt.Errorf("wire: %d trailing bytes after welcome", len(rest))
	}
	w.Name = s
	return w, nil
}

// appendString appends a u16-length-prefixed string.
func appendString(dst []byte, s string) []byte {
	if len(s) > 0xFFFF {
		s = s[:0xFFFF]
	}
	var n [2]byte
	binary.LittleEndian.PutUint16(n[:], uint16(len(s)))
	dst = append(dst, n[:]...)
	return append(dst, s...)
}

// decodeString decodes a u16-length-prefixed string from the front of b.
func decodeString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", b, io.ErrUnexpectedEOF
	}
	n := int(binary.LittleEndian.Uint16(b[0:]))
	if len(b) < 2+n {
		return "", b, io.ErrUnexpectedEOF
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}
