// Package storage provides a KSpot client's local buffering: the sliding
// window of recent readings that historic queries run over, and a
// MicroHash-style value index (Zeinalipour-Yazti et al., USENIX FAST 2005 —
// the flash index the paper cites for devices that buffer on secondary
// storage) that answers "which buffered instants scored at least v" without
// scanning the whole window.
package storage

import (
	"fmt"

	"kspot/internal/model"
)

// Window is a fixed-capacity sliding window of readings, indexed by epoch.
// It stores values in wire fixed-point, as a mote's SRAM or flash would.
type Window struct {
	capacity int
	values   []model.FixedPoint
	epochs   []model.Epoch
	start    int // ring index of the oldest element
	size     int
	pushed   uint64 // monotone count of every Push ever (survives Clear)
	lastE    model.Epoch
	hasLast  bool
	backend  Backend // nil = memory (no durable mirror)
}

// NewWindow returns a window holding up to capacity readings, with no
// durable backend (the memory default every pre-durability caller keeps).
func NewWindow(capacity int) (*Window, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("storage: window.capacity: must be >= 1, got %d", capacity)
	}
	return &Window{
		capacity: capacity,
		values:   make([]model.FixedPoint, capacity),
		epochs:   make([]model.Epoch, capacity),
	}, nil
}

// NewWindowOn returns a window mirroring every push into the backend.
func NewWindowOn(capacity int, b Backend) (*Window, error) {
	w, err := NewWindow(capacity)
	if err != nil {
		return nil, err
	}
	w.Attach(b)
	return w, nil
}

// Attach sets the durable backend for subsequent pushes and clears. The
// recovery path replays a segment into a plain window first and attaches
// the segment after, so replayed records are not re-appended.
func (w *Window) Attach(b Backend) { w.backend = b }

// Capacity returns the maximum number of buffered readings.
func (w *Window) Capacity() int { return w.capacity }

// Len returns the number of buffered readings.
func (w *Window) Len() int { return w.size }

// Push appends a reading, evicting the oldest when full. Epochs must be
// strictly increasing; regressions are rejected (a mote's clock only runs
// forward between reboots, and a reboot clears the buffer anyway).
func (w *Window) Push(e model.Epoch, v model.Value) error {
	if w.hasLast && e <= w.lastE {
		return fmt.Errorf("storage: window.push: epoch %d not after %d", e, w.lastE)
	}
	fp := model.ToFixed(v)
	if w.backend != nil {
		// Durable-first: a push the segment did not take is a push that
		// never happened (the in-memory state must be a prefix of disk,
		// never ahead of it).
		if err := w.backend.Append(Record{Kind: RecordPush, Epoch: e, Value: int64(fp)}); err != nil {
			return err
		}
	}
	idx := (w.start + w.size) % w.capacity
	if w.size == w.capacity {
		idx = w.start
		w.start = (w.start + 1) % w.capacity
	} else {
		w.size++
	}
	w.values[idx] = fp
	w.epochs[idx] = e
	w.pushed++
	w.lastE = e
	w.hasLast = true
	return nil
}

// Pushes returns the monotone count of every Push the window ever accepted.
// The i-th accepted push (0-based) currently sits at offset i−(Pushes−Len),
// or has been evicted when that is negative — the O(1) base-offset scheme
// MicroHash chains rely on. The counter survives Clear (which simply makes
// every earlier push evicted), so derived offsets can never resurrect.
func (w *Window) Pushes() uint64 { return w.pushed }

// OffsetOfPush maps a push counter (as observed via Pushes()−1 right after
// the push) to the current window offset, or −1 if that reading has been
// evicted.
func (w *Window) OffsetOfPush(c uint64) int {
	evicted := w.pushed - uint64(w.size)
	if c < evicted || c >= w.pushed {
		return -1
	}
	return int(c - evicted)
}

// At returns the i-th oldest buffered reading (0 = oldest).
func (w *Window) At(i int) (model.Epoch, model.Value, error) {
	if i < 0 || i >= w.size {
		return 0, 0, fmt.Errorf("storage: window.at[%d]: out of range [0,%d)", i, w.size)
	}
	idx := (w.start + i) % w.capacity
	return w.epochs[idx], model.FromFixed(w.values[idx]), nil
}

// Series materializes the window oldest-first — the layout historic
// operators consume (window offset = series index).
func (w *Window) Series() []model.Value {
	out := make([]model.Value, w.size)
	for i := 0; i < w.size; i++ {
		idx := (w.start + i) % w.capacity
		out[i] = model.FromFixed(w.values[idx])
	}
	return out
}

// Epochs materializes the buffered epochs oldest-first.
func (w *Window) Epochs() []model.Epoch {
	out := make([]model.Epoch, w.size)
	for i := 0; i < w.size; i++ {
		idx := (w.start + i) % w.capacity
		out[i] = w.epochs[idx]
	}
	return out
}

// LastEpoch returns the most recently pushed epoch, if any push has been
// accepted since the last Clear.
func (w *Window) LastEpoch() (model.Epoch, bool) { return w.lastE, w.hasLast }

// Clear empties the window (mote reboot). A durable backend resets with it:
// a reboot wipes the mote's buffer, so recovery must not resurrect it.
func (w *Window) Clear() error {
	if w.backend != nil {
		if err := w.backend.Clear(); err != nil {
			return err
		}
	}
	w.start, w.size, w.hasLast = 0, 0, false
	return nil
}

// TopK returns the window offsets of the k highest buffered values, ranked,
// ties toward older offsets — the node-local seed of TJA's LB phase.
func (w *Window) TopK(k int) []int {
	type pair struct {
		off int
		v   model.FixedPoint
	}
	ps := make([]pair, w.size)
	for i := 0; i < w.size; i++ {
		idx := (w.start + i) % w.capacity
		ps[i] = pair{i, w.values[idx]}
	}
	// Selection by partial sort: windows are small (≤ 64K), sort is fine.
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && (ps[j].v > ps[j-1].v || (ps[j].v == ps[j-1].v && ps[j].off < ps[j-1].off)); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
	if k > len(ps) {
		k = len(ps)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ps[i].off
	}
	return out
}
