package storage

import (
	"fmt"

	"kspot/internal/model"
)

// BufferSeries materializes each node's buffered history for a historic
// query by replaying epochs [0, window) through a Window per node — the
// simulator's stand-in for the motes' MicroHash-indexed flash buffers —
// and returning the buffered series oldest-first (window offset = series
// index), the layout the historic operators consume.
//
// Routing the materialization through Window (rather than slicing the
// trace directly) keeps the historic pipeline on the same buffering code
// path the live deployment's per-node workers use, so capacity and
// eviction semantics are exercised identically everywhere. On a federated
// deployment each shard buffers only its own nodes, but samples the same
// flat trace by global node id — per-epoch indices therefore align across
// shards at the coordinator with no translation.
func BufferSeries(nodes []model.NodeID, window int, sample func(model.NodeID, model.Epoch) model.Value) (map[model.NodeID][]model.Value, error) {
	out := make(map[model.NodeID][]model.Value, len(nodes))
	for _, n := range nodes {
		win, err := NewWindow(window)
		if err != nil {
			return nil, fmt.Errorf("storage: buffering node %d: %w", n, err)
		}
		for e := 0; e < window; e++ {
			if err := win.Push(model.Epoch(e), sample(n, model.Epoch(e))); err != nil {
				return nil, fmt.Errorf("storage: buffering node %d: %w", n, err)
			}
		}
		out[n] = win.Series()
	}
	return out, nil
}
