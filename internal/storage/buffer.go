package storage

import (
	"fmt"

	"kspot/internal/model"
)

// BufferSeries materializes each node's buffered history for a historic
// query by replaying epochs [0, window) through a Window per node — the
// simulator's stand-in for the motes' MicroHash-indexed flash buffers —
// and returning the buffered series oldest-first (window offset = series
// index), the layout the historic operators consume.
//
// Routing the materialization through Window (rather than slicing the
// trace directly) keeps the historic pipeline on the same buffering code
// path the live deployment's per-node workers use, so capacity and
// eviction semantics are exercised identically everywhere. On a federated
// deployment each shard buffers only its own nodes, but samples the same
// flat trace by global node id — per-epoch indices therefore align across
// shards at the coordinator with no translation.
func BufferSeries(nodes []model.NodeID, window int, sample func(model.NodeID, model.Epoch) model.Value) (map[model.NodeID][]model.Value, error) {
	return BufferSeriesOn(nodes, window, sample, nil)
}

// BufferSeriesOn is BufferSeries with a durable Backend per node: when
// backendFor is non-nil, each node's window mirrors its pushes into
// backendFor(node) — the same segment files the durable historic tier
// appends, so a buffering pass leaves a recoverable on-disk image. A nil
// backendFor (or a nil returned Backend) keeps the memory path bit for bit.
func BufferSeriesOn(nodes []model.NodeID, window int, sample func(model.NodeID, model.Epoch) model.Value, backendFor func(model.NodeID) Backend) (map[model.NodeID][]model.Value, error) {
	out := make(map[model.NodeID][]model.Value, len(nodes))
	for _, n := range nodes {
		win, err := NewWindow(window)
		if err != nil {
			return nil, fmt.Errorf("storage: buffering node %d: %w", n, err)
		}
		if backendFor != nil {
			if b := backendFor(n); b != nil {
				win.Attach(b)
			}
		}
		for e := 0; e < window; e++ {
			if err := win.Push(model.Epoch(e), sample(n, model.Epoch(e))); err != nil {
				return nil, fmt.Errorf("storage: buffering node %d: %w", n, err)
			}
		}
		out[n] = win.Series()
	}
	return out, nil
}
