package storage

import (
	"bytes"
	"testing"

	"kspot/internal/model"
)

// FuzzSegmentDecode drives arbitrary bytes through the segment codecs —
// the framed record decoder, the torn-tail replayer and the shard-state
// decoder. The invariants are the same ones the wire frames carry: no
// input panics or over-allocates, anything that decodes re-encodes to the
// identical bytes (one canonical form per record and per shard state), and
// the replayed clean prefix is itself a valid segment.
func FuzzSegmentDecode(f *testing.F) {
	f.Add(AppendRecord(nil, Record{Kind: RecordPush, Epoch: 7, Value: 4225}))
	f.Add(AppendRecord(AppendRecord(nil, Record{Kind: RecordPush, Epoch: 1, Value: -350}),
		Record{Kind: RecordPush, Epoch: 2, Value: 0}))
	f.Add(AppendShardState(nil, ShardState{HasEpoch: true, Epoch: 9, Nodes: []NodeState{
		{Node: 4, EnergyUJ: 123.5, Epochs: []model.Epoch{1, 3}, Values: []int64{100, -200}},
		{Node: 7, EnergyUJ: 0, Epochs: []model.Epoch{3}, Values: []int64{5}},
	}}))
	f.Add(AppendShardState(nil, ShardState{}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		if r, n, err := DecodeRecord(data); err == nil {
			if n != RecordWireSize {
				t.Fatalf("record consumed %d, want %d", n, RecordWireSize)
			}
			if re := AppendRecord(nil, r); !bytes.Equal(re, data[:n]) {
				t.Fatalf("record re-encode mismatch: %x != %x", re, data[:n])
			}
		}
		recs, clean := ReplaySegment(data)
		if clean > len(data) || len(recs)*RecordWireSize != clean {
			t.Fatalf("replay: %d records, clean %d of %d", len(recs), clean, len(data))
		}
		var re []byte
		for _, r := range recs {
			re = AppendRecord(re, r)
		}
		if !bytes.Equal(re, data[:clean]) {
			t.Fatalf("clean prefix re-encode mismatch")
		}
		if st, err := DecodeShardState(data); err == nil {
			if re := AppendShardState(nil, st); !bytes.Equal(re, data) {
				t.Fatalf("shard state re-encode mismatch: %x != %x", re, data)
			}
		}
	})
}
