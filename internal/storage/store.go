package storage

// Store is one shard's durable historic tier: a Window per sensor node,
// fed every committed sense epoch, optionally mirrored into append-only
// segment files (one per node) under a data directory. With an empty
// directory the store is memory-backed — the default, byte-identical to
// the pre-durability behavior except that the shard can now answer "what
// have I buffered".
//
// Opening a store on a directory that already holds segments is recovery:
// each segment's clean record prefix replays into a fresh window (torn
// tails truncate, see segment.go) and the epoch cursor resumes at the
// highest recovered epoch, so a restarted shard process re-records nothing
// it already persisted and rejects nothing the coordinator replays at it.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"kspot/internal/model"
)

// Store is safe for concurrent use; the wire server records epochs and
// serves snapshots from different calls.
type Store struct {
	mu       sync.Mutex
	dir      string // "" = memory-backed
	capacity int
	windows  map[model.NodeID]*Window
	disks    map[model.NodeID]*Disk
	cursor   model.Epoch
	hasCur   bool
	err      error // first backend failure, sticky
}

// DefaultStoreWindow is the per-node capacity of the durable tier: deep
// enough for every historic window the scenarios pose, shallow enough that
// a mote-sized flash could hold it.
const DefaultStoreWindow = 64

// segName returns node n's segment file name.
func segName(n model.NodeID) string { return fmt.Sprintf("node-%d.seg", n) }

// OpenStore opens the durable tier. dir == "" selects the memory backend;
// otherwise the directory is created if needed and any existing segments
// are recovered.
func OpenStore(dir string, capacity int) (*Store, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("storage: store.capacity: must be >= 1, got %d", capacity)
	}
	s := &Store{
		dir:      dir,
		capacity: capacity,
		windows:  make(map[model.NodeID]*Window),
	}
	if dir == "" {
		return s, nil
	}
	s.disks = make(map[model.NodeID]*Disk)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: store dir %s: %w", dir, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: store dir %s: %w", dir, err)
	}
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, "node-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "node-"), ".seg"), 10, 32)
		if err != nil {
			continue
		}
		node := model.NodeID(id)
		if _, err := s.recoverNode(node); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// recoverNode opens node's segment, replays its clean prefix into a fresh
// window and attaches the segment for subsequent pushes.
func (s *Store) recoverNode(node model.NodeID) (*Window, error) {
	d, recs, err := OpenDisk(filepath.Join(s.dir, segName(node)))
	if err != nil {
		return nil, err
	}
	w, err := NewWindow(s.capacity)
	if err != nil {
		d.Close()
		return nil, err
	}
	for _, r := range recs {
		if err := w.Push(r.Epoch, model.FromFixed(model.FixedPoint(r.Value))); err != nil {
			d.Close()
			return nil, fmt.Errorf("storage: replaying node %d: %w", node, err)
		}
	}
	w.Attach(d)
	s.windows[node] = w
	s.disks[node] = d
	if e, ok := w.LastEpoch(); ok && (!s.hasCur || e > s.cursor) {
		s.cursor, s.hasCur = e, true
	}
	return w, nil
}

// window returns node's window, creating it (and its segment, in disk
// mode) on first touch. Caller holds s.mu.
func (s *Store) window(node model.NodeID) (*Window, error) {
	if w, ok := s.windows[node]; ok {
		return w, nil
	}
	if s.dir == "" {
		w, err := NewWindow(s.capacity)
		if err != nil {
			return nil, err
		}
		s.windows[node] = w
		return w, nil
	}
	return s.recoverNode(node)
}

// RecordReadings implements engine.ReadingsRecorder: it folds one
// committed sense epoch into the durable tier. Replays of an epoch at or
// below the cursor are skipped — that is what makes a restarted shard's
// retried epoch round idempotent against what the dead process already
// persisted. Backend failures stick in Err rather than poisoning the sense
// path (a full disk must not change answers).
func (s *Store) RecordReadings(e model.Epoch, readings map[model.NodeID]model.Reading) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hasCur && e <= s.cursor {
		return
	}
	nodes := make([]model.NodeID, 0, len(readings))
	for n := range readings {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		w, err := s.window(n)
		if err != nil {
			s.fail(err)
			return
		}
		if le, ok := w.LastEpoch(); ok && e <= le {
			continue // restored ahead of the cursor by a snapshot
		}
		if err := w.Push(e, readings[n].Value); err != nil {
			s.fail(err)
			return
		}
	}
	s.cursor, s.hasCur = e, true
	for _, n := range nodes {
		if d, ok := s.disks[n]; ok {
			if err := d.Sync(); err != nil {
				s.fail(err)
				return
			}
		}
	}
}

// fail records the first backend failure. Caller holds s.mu.
func (s *Store) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// Err returns the first backend failure, if any.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Cursor returns the last recorded epoch — the checkpoint the /stats
// storage block reports.
func (s *Store) Cursor() (model.Epoch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cursor, s.hasCur
}

// StoreStats is the storage block of the System Panel and /stats.
type StoreStats struct {
	Dir       string      `json:"dir,omitempty"`
	Nodes     int         `json:"nodes"`
	Segments  int         `json:"segments"`
	Bytes     int64       `json:"bytes"`
	LastEpoch model.Epoch `json:"last_checkpoint_epoch"`
	HasEpoch  bool        `json:"checkpointed"`
}

// Stats snapshots the storage block.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{Dir: s.dir, Nodes: len(s.windows), LastEpoch: s.cursor, HasEpoch: s.hasCur}
	for _, d := range s.disks {
		st.Segments++
		st.Bytes += d.Size()
	}
	return st
}

// State serializes the store for a shard snapshot: every node's buffered
// window plus the epoch cursor, with each node's energy drawn from
// energyOf (µJ, bit-exact across the wire). Nodes ascend, so the encoding
// is canonical.
func (s *Store) State(energyOf func(model.NodeID) float64) ShardState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := ShardState{Epoch: s.cursor, HasEpoch: s.hasCur}
	nodes := make([]model.NodeID, 0, len(s.windows))
	for n := range s.windows {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		w := s.windows[n]
		ns := NodeState{Node: n}
		if energyOf != nil {
			ns.EnergyUJ = energyOf(n)
		}
		for i := 0; i < w.Len(); i++ {
			e, v, _ := w.At(i)
			ns.Epochs = append(ns.Epochs, e)
			ns.Values = append(ns.Values, int64(model.ToFixed(v)))
		}
		st.Nodes = append(st.Nodes, ns)
	}
	return st
}

// Restore replaces the store's contents with a snapshot's: each node's
// window rebuilds from the snapshot records (in disk mode the node's
// segment truncates and re-appends, so the data dir equals the snapshot),
// and the cursor advances to the snapshot's. Restore never regresses the
// cursor — a shard that already sensed past the snapshot keeps its lead.
func (s *Store) Restore(st ShardState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ns := range st.Nodes {
		w, err := s.window(ns.Node)
		if err != nil {
			return err
		}
		if err := w.Clear(); err != nil {
			return err
		}
		for i := range ns.Epochs {
			if err := w.Push(ns.Epochs[i], model.FromFixed(model.FixedPoint(ns.Values[i]))); err != nil {
				return fmt.Errorf("storage: restoring node %d: %w", ns.Node, err)
			}
		}
		if d, ok := s.disks[ns.Node]; ok {
			if err := d.Sync(); err != nil {
				return err
			}
		}
	}
	if st.HasEpoch && (!s.hasCur || st.Epoch > s.cursor) {
		s.cursor, s.hasCur = st.Epoch, true
	}
	return nil
}

// Reset empties the durable tier for a new coordinator session: every
// window clears (truncating its segment in disk mode) and the cursor
// rewinds, so the new session records from its own epoch 0.
func (s *Store) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range s.windows {
		if err := w.Clear(); err != nil {
			return err
		}
	}
	s.cursor, s.hasCur = 0, false
	return nil
}

// Close flushes and closes every segment.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, d := range s.disks {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.disks = nil
	return first
}
