package storage

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"kspot/internal/model"
)

func TestWindowBasics(t *testing.T) {
	w, err := NewWindow(3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Capacity() != 3 || w.Len() != 0 {
		t.Fatal("fresh window shape")
	}
	for e := model.Epoch(1); e <= 3; e++ {
		if err := w.Push(e, model.Value(e)*10); err != nil {
			t.Fatal(err)
		}
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d", w.Len())
	}
	e, v, err := w.At(0)
	if err != nil || e != 1 || v != 10 {
		t.Fatalf("At(0) = %d,%v,%v", e, v, err)
	}
}

func TestWindowEviction(t *testing.T) {
	w, _ := NewWindow(3)
	for e := model.Epoch(1); e <= 5; e++ {
		if err := w.Push(e, model.Value(e)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d", w.Len())
	}
	got := w.Series()
	want := []model.Value{3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Series = %v, want %v", got, want)
		}
	}
	epochs := w.Epochs()
	if epochs[0] != 3 || epochs[2] != 5 {
		t.Fatalf("Epochs = %v", epochs)
	}
}

func TestWindowRejectsRegression(t *testing.T) {
	w, _ := NewWindow(4)
	if err := w.Push(5, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Push(5, 2); err == nil {
		t.Fatal("duplicate epoch accepted")
	}
	if err := w.Push(4, 2); err == nil {
		t.Fatal("regressing epoch accepted")
	}
}

func TestWindowAtBounds(t *testing.T) {
	w, _ := NewWindow(2)
	if _, _, err := w.At(0); err == nil {
		t.Fatal("At on empty window accepted")
	}
	w.Push(1, 1)
	if _, _, err := w.At(1); err == nil {
		t.Fatal("At beyond size accepted")
	}
	if _, _, err := w.At(-1); err == nil {
		t.Fatal("negative index accepted")
	}
}

func TestWindowClear(t *testing.T) {
	w, _ := NewWindow(2)
	w.Push(1, 1)
	w.Clear()
	if w.Len() != 0 {
		t.Fatal("Clear did not empty")
	}
	if err := w.Push(1, 1); err != nil {
		t.Fatalf("push after clear: %v", err)
	}
}

func TestWindowTopK(t *testing.T) {
	w, _ := NewWindow(5)
	vals := []model.Value{30, 50, 10, 50, 40}
	for i, v := range vals {
		w.Push(model.Epoch(i+1), v)
	}
	got := w.TopK(3)
	want := []int{1, 3, 4} // 50 (older first), 50, 40
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", got, want)
		}
	}
	if n := len(w.TopK(99)); n != 5 {
		t.Fatalf("TopK(99) len = %d", n)
	}
}

func TestNewWindowValidation(t *testing.T) {
	if _, err := NewWindow(0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
}

func TestMicroHashOffsetsAtLeast(t *testing.T) {
	w, _ := NewWindow(8)
	mh, err := NewMicroHash(w, 0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	vals := []model.Value{15, 85, 42, 95, 5, 60, 77, 33}
	for i, v := range vals {
		if err := mh.Push(model.Epoch(i+1), v); err != nil {
			t.Fatal(err)
		}
	}
	got := mh.OffsetsAtLeast(60)
	want := []int{1, 3, 5, 6} // 85, 95, 60, 77
	if len(got) != len(want) {
		t.Fatalf("OffsetsAtLeast = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OffsetsAtLeast = %v, want %v", got, want)
		}
	}
}

func TestMicroHashEvictionStaleEntries(t *testing.T) {
	w, _ := NewWindow(3)
	mh, _ := NewMicroHash(w, 0, 100, 4)
	for e := model.Epoch(1); e <= 10; e++ {
		mh.Push(e, model.Value(e*7%100))
	}
	// Window holds epochs 8,9,10 with values 56,63,70.
	got := mh.OffsetsAtLeast(60)
	series := w.Series()
	for _, off := range got {
		if float64(series[off]) < 60 {
			t.Fatalf("stale offset %d (value %v) returned", off, series[off])
		}
	}
	if len(got) != 2 {
		t.Fatalf("OffsetsAtLeast(60) = %v (series %v)", got, series)
	}
}

func TestMicroHashBucket(t *testing.T) {
	w, _ := NewWindow(4)
	mh, _ := NewMicroHash(w, 0, 100, 4)
	mh.Push(1, 10) // bucket 0
	mh.Push(2, 30) // bucket 1
	mh.Push(3, 99) // bucket 3
	if offs, err := mh.Bucket(3); err != nil || len(offs) != 1 || offs[0] != 2 {
		t.Fatalf("Bucket(3) = %v, %v", offs, err)
	}
	if _, err := mh.Bucket(9); err == nil {
		t.Fatal("out-of-range bucket accepted")
	}
	if mh.Buckets() != 4 {
		t.Fatal("Buckets()")
	}
}

func TestMicroHashValidation(t *testing.T) {
	w, _ := NewWindow(4)
	if _, err := NewMicroHash(w, 0, 100, 0); err == nil {
		t.Fatal("0 buckets accepted")
	}
	if _, err := NewMicroHash(w, 100, 0, 4); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestMicroHashClampsOutOfRange(t *testing.T) {
	w, _ := NewWindow(4)
	mh, _ := NewMicroHash(w, 0, 100, 4)
	mh.Push(1, -50)
	mh.Push(2, 500)
	if got := mh.OffsetsAtLeast(-100); len(got) != 2 {
		t.Fatalf("clamped values lost: %v", got)
	}
}

// Property: MicroHash OffsetsAtLeast equals a naive window scan, through
// arbitrary push/evict interleavings.
func TestMicroHashMatchesScanProperty(t *testing.T) {
	f := func(seed int64, capRaw, nRaw uint8, thrRaw uint8) bool {
		capacity := 1 + int(capRaw)%32
		n := int(nRaw)%100 + 1
		thr := model.Value(int(thrRaw) % 100)
		rng := rand.New(rand.NewSource(seed))
		w, _ := NewWindow(capacity)
		mh, _ := NewMicroHash(w, 0, 100, 8)
		for e := 1; e <= n; e++ {
			if err := mh.Push(model.Epoch(e), model.Value(rng.Intn(10000))/100); err != nil {
				return false
			}
		}
		var want []int
		for i, v := range w.Series() {
			if model.ToFixed(v) >= model.ToFixed(thr) {
				want = append(want, i)
			}
		}
		got := mh.OffsetsAtLeast(thr)
		if len(got) != len(want) {
			return false
		}
		sort.Ints(want)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: Window.TopK matches sorting the materialized series.
func TestWindowTopKProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w, _ := NewWindow(64)
		n := 1 + rng.Intn(64)
		for e := 1; e <= n; e++ {
			w.Push(model.Epoch(e), model.Value(rng.Intn(1000)))
		}
		k := 1 + int(kRaw)%16
		got := w.TopK(k)
		series := w.Series()
		idx := make([]int, len(series))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			if series[idx[a]] != series[idx[b]] {
				return series[idx[a]] > series[idx[b]]
			}
			return idx[a] < idx[b]
		})
		if k > len(idx) {
			k = len(idx)
		}
		for i := 0; i < k; i++ {
			if got[i] != idx[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestMicroHashSkewedStreamBoundedMemory pins the stale-chain compaction
// bound: a heavily skewed stream (almost every push lands in one hot
// bucket, so the cold buckets only ever go stale) driven past many window
// turnovers must keep the total chain entry count within 2× the window
// capacity — the amortized global compaction's invariant. Before the fix,
// compaction only ran for the bucket being pushed, so stale entries parked
// in other buckets were never reclaimed.
func TestMicroHashSkewedStreamBoundedMemory(t *testing.T) {
	const capacity = 64
	w, _ := NewWindow(capacity)
	mh, _ := NewMicroHash(w, 0, 100, 16)
	// 40 window turnovers; 1 push in 50 is cold (a different bucket each
	// time), the rest hammer the hot bucket.
	for e := 1; e <= 40*capacity; e++ {
		v := model.Value(95) // hot: top bucket
		if e%50 == 0 {
			v = model.Value((e / 50 * 7) % 90) // cold: scattered below
		}
		if err := mh.Push(model.Epoch(e), v); err != nil {
			t.Fatal(err)
		}
		if got := mh.ChainEntries(); got > 2*capacity {
			t.Fatalf("epoch %d: %d chain entries, want <= %d", e, got, 2*capacity)
		}
	}
	// The index still answers correctly after all that churn.
	got := mh.OffsetsAtLeast(90)
	series := w.Series()
	want := 0
	for _, v := range series {
		if v >= 90 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("OffsetsAtLeast(90) returned %d offsets, want %d", len(got), want)
	}
	for _, off := range got {
		if series[off] < 90 {
			t.Fatalf("offset %d has value %v < 90", off, series[off])
		}
	}
}

// TestWindowPushCounterOffsets pins the O(1) base-offset contract:
// OffsetOfPush maps push counters to current offsets and reports eviction,
// including across Clear (a mote reboot), after which every earlier push
// must read as evicted rather than aliasing fresh data.
func TestWindowPushCounterOffsets(t *testing.T) {
	w, _ := NewWindow(3)
	for e := 1; e <= 5; e++ {
		if err := w.Push(model.Epoch(e), model.Value(e)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Pushes() != 5 {
		t.Fatalf("Pushes = %d, want 5", w.Pushes())
	}
	// Pushes 0,1 (epochs 1,2) evicted; 2,3,4 at offsets 0,1,2.
	for c, want := range map[uint64]int{0: -1, 1: -1, 2: 0, 3: 1, 4: 2, 5: -1} {
		if got := w.OffsetOfPush(c); got != want {
			t.Fatalf("OffsetOfPush(%d) = %d, want %d", c, got, want)
		}
	}
	w.Clear()
	if w.Pushes() != 5 {
		t.Fatalf("Pushes after Clear = %d, want 5 (monotone)", w.Pushes())
	}
	for c := uint64(0); c < 5; c++ {
		if got := w.OffsetOfPush(c); got != -1 {
			t.Fatalf("OffsetOfPush(%d) after Clear = %d, want -1", c, got)
		}
	}
}

// TestBufferSeries: materializing windows through the real buffering
// path must reproduce the sampled values (at wire quantization) in
// epoch order, per node, and reject a zero-length window.
func TestBufferSeries(t *testing.T) {
	sample := func(n model.NodeID, e model.Epoch) model.Value {
		return model.Value(n)*10 + model.Value(e) + 0.004 // sub-centi noise quantizes away
	}
	nodes := []model.NodeID{1, 2, 5}
	out, err := BufferSeries(nodes, 4, sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(nodes) {
		t.Fatalf("buffered %d nodes, want %d", len(out), len(nodes))
	}
	for _, n := range nodes {
		series := out[n]
		if len(series) != 4 {
			t.Fatalf("node %d series length %d, want 4", n, len(series))
		}
		for e, v := range series {
			if want := model.Quantize(sample(n, model.Epoch(e))); v != want {
				t.Fatalf("node %d offset %d = %v, want %v (offset must equal epoch)", n, e, v, want)
			}
		}
	}
	if _, err := BufferSeries(nodes, 0, sample); err == nil {
		t.Fatal("zero-length window accepted")
	}
}
