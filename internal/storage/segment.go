package storage

// Append-only segment files: the durable form of a Window. A segment is a
// sequence of u32-length-framed records, each carrying the window push it
// mirrors in the model codec's fixed64 quantized form (s64 centi-units, the
// same quantization the wire's historic sums use) and a CRC32 of its
// payload. The encoding is canonical — one byte form per record, enforced
// on decode — so segments are fuzzable exactly like wire frames
// (FuzzSegmentDecode pins decode∘re-encode identity).
//
// Records are fixed-size, so the byte offset of a push is a single multiply:
// push counter c (Window.Pushes()−1 at push time, the same counter MicroHash
// chains store) lives at (c−base)·recordWireSize, where base is the counter
// at the last Clear truncation. Eviction therefore stays O(1): the in-memory
// window forgets by ring arithmetic, the segment forgets nothing (flash
// never erases in place), and MicroHash chain entries resolve to either tier
// by the same subtraction.
//
// Recovery replays a segment front to back and truncates the torn tail: the
// first record that is short, oversized, or fails its CRC ends the clean
// prefix, and everything from there on is discarded — exactly one torn
// record for a mid-write crash, never a whole window.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"kspot/internal/model"
)

// Record kinds. Version 1 segments hold only pushes; the kind byte is the
// discriminator future checkpoint records extend.
const (
	RecordPush = 1
)

const (
	// recordBodySize is the payload of a push record:
	// kind u8 | epoch u32 | value s64.
	recordBodySize = 1 + 4 + 8
	// RecordWireSize is one framed push record on disk:
	// len u32 | payload | crc u32.
	RecordWireSize = 4 + recordBodySize + 4
)

// Record is one durable window push. Value is the reading in the model
// codec's fixed64 quantized form — centi-units in an s64, the widened form
// of model.FixedPoint that the wire's historic sums already use.
type Record struct {
	Kind  byte
	Epoch model.Epoch
	Value int64
}

// AppendRecord appends the canonical framed encoding of r to dst.
func AppendRecord(dst []byte, r Record) []byte {
	var body [recordBodySize]byte
	body[0] = r.Kind
	binary.LittleEndian.PutUint32(body[1:], uint32(r.Epoch))
	binary.LittleEndian.PutUint64(body[5:], uint64(r.Value))
	dst = binary.LittleEndian.AppendUint32(dst, recordBodySize)
	dst = append(dst, body[:]...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(body[:]))
}

// DecodeRecord decodes one framed record from the front of b, returning the
// bytes consumed. Every failure mode — short frame, wrong length, CRC
// mismatch, unknown kind — is an error; a torn or corrupt record never
// decodes partially.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < 4 {
		return Record{}, 0, fmt.Errorf("storage: record frame truncated at %d bytes", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	if n != recordBodySize {
		return Record{}, 0, fmt.Errorf("storage: record length %d, want %d", n, recordBodySize)
	}
	if len(b) < RecordWireSize {
		return Record{}, 0, fmt.Errorf("storage: record torn at %d of %d bytes", len(b), RecordWireSize)
	}
	body := b[4 : 4+recordBodySize]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(b[4+recordBodySize:]); got != want {
		return Record{}, 0, fmt.Errorf("storage: record crc %08x, want %08x", got, want)
	}
	r := Record{
		Kind:  body[0],
		Epoch: model.Epoch(binary.LittleEndian.Uint32(body[1:])),
		Value: int64(binary.LittleEndian.Uint64(body[5:])),
	}
	if r.Kind != RecordPush {
		return Record{}, 0, fmt.Errorf("storage: record kind %d unknown", r.Kind)
	}
	return r, RecordWireSize, nil
}

// ReplaySegment decodes the clean prefix of segment bytes: the records that
// decode back to back from the front, and the length of that prefix. The
// torn tail — anything after the first record that fails to decode — is not
// an error; recovery truncates it.
func ReplaySegment(b []byte) ([]Record, int) {
	var recs []Record
	clean := 0
	for clean < len(b) {
		r, n, err := DecodeRecord(b[clean:])
		if err != nil {
			break
		}
		recs = append(recs, r)
		clean += n
	}
	return recs, clean
}

// Backend is the durable sink behind a Window: every accepted Push lands in
// it, and Clear (a mote reboot) resets it. Memory is the default and keeps
// the pre-durability behavior bit for bit; Disk appends segment files.
type Backend interface {
	// Append durably records one accepted push.
	Append(Record) error
	// Clear resets the backend after the window emptied (reboot): recovery
	// must never resurrect pre-clear records.
	Clear() error
}

// Memory is the no-op Backend — the default, identical to a window with no
// backend at all.
type Memory struct{}

// Append implements Backend.
func (Memory) Append(Record) error { return nil }

// Clear implements Backend.
func (Memory) Clear() error { return nil }

// Disk is a file-backed Backend: one append-only segment file per window.
// Writes are buffered in user space; Sync flushes them to the kernel, which
// is the durability point a kill -9 cannot revoke (power-loss durability
// would additionally fsync — deliberately kept off the push path).
type Disk struct {
	path    string
	f       *os.File
	w       *bufio.Writer
	size    int64  // clean bytes on disk plus buffered bytes
	records uint64 // records ever appended, including recovered ones
	base    uint64 // records superseded by the last Clear truncation
	buf     []byte
}

// OpenDisk opens (or creates) the segment at path, recovering its clean
// record prefix and truncating any torn tail. The recovered records are
// returned for the caller to replay into its in-memory window; appends
// continue after them.
func OpenDisk(path string) (*Disk, []Record, error) {
	raw, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("storage: reading segment %s: %w", path, err)
	}
	recs, clean := ReplaySegment(raw)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: opening segment %s: %w", path, err)
	}
	if clean < len(raw) {
		if err := f.Truncate(int64(clean)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("storage: truncating torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(clean), 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("storage: seeking segment %s: %w", path, err)
	}
	return &Disk{
		path:    path,
		f:       f,
		w:       bufio.NewWriter(f),
		size:    int64(clean),
		records: uint64(len(recs)),
	}, recs, nil
}

// Append implements Backend.
func (d *Disk) Append(r Record) error {
	d.buf = AppendRecord(d.buf[:0], r)
	if _, err := d.w.Write(d.buf); err != nil {
		return fmt.Errorf("storage: appending to %s: %w", d.path, err)
	}
	d.size += int64(len(d.buf))
	d.records++
	return nil
}

// Clear implements Backend: the segment truncates to empty (the window's
// Clear is a reboot, which wipes the mote's buffer), and every earlier push
// counter becomes unresolvable.
func (d *Disk) Clear() error {
	d.w.Reset(d.f)
	if err := d.f.Truncate(0); err != nil {
		return fmt.Errorf("storage: clearing %s: %w", d.path, err)
	}
	if _, err := d.f.Seek(0, 0); err != nil {
		return fmt.Errorf("storage: clearing %s: %w", d.path, err)
	}
	d.size = 0
	d.base = d.records
	return nil
}

// Sync flushes buffered appends to the kernel — the per-epoch durability
// point.
func (d *Disk) Sync() error {
	if err := d.w.Flush(); err != nil {
		return fmt.Errorf("storage: flushing %s: %w", d.path, err)
	}
	return nil
}

// Close flushes and closes the segment.
func (d *Disk) Close() error {
	ferr := d.w.Flush()
	cerr := d.f.Close()
	if ferr != nil {
		return fmt.Errorf("storage: flushing %s: %w", d.path, ferr)
	}
	return cerr
}

// Size returns the segment's byte size including buffered appends.
func (d *Disk) Size() int64 { return d.size }

// Records returns the number of records ever appended, recovered included.
func (d *Disk) Records() uint64 { return d.records }

// OffsetOfPush maps a window push counter (the value MicroHash chains
// store) to the record's byte offset in the segment, or −1 if the push
// predates the last Clear or has not been appended — O(1), because records
// are fixed-size and the segment only ever grows.
func (d *Disk) OffsetOfPush(c uint64) int64 {
	if c < d.base || c >= d.records {
		return -1
	}
	return int64(c-d.base) * RecordWireSize
}
