package storage

// ShardState is the serialized form of a shard's durable tier — what
// wire.MsgSnapshot streams out and wire.MsgRestore streams in: the epoch
// cursor, and per node the buffered window (epochs strictly ascending,
// values in the fixed64 quantized form segments use) plus the node's
// energy-ledger total in bit-exact float64. The encoding is canonical —
// nodes strictly ascending, epochs strictly ascending within a node, one
// byte form per state — so a restored shard re-snapshots to the identical
// bytes, which is how the migration tests pin "the windows actually
// moved".

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"kspot/internal/model"
)

// NodeState is one node's slice of a shard snapshot.
type NodeState struct {
	Node     model.NodeID
	EnergyUJ float64
	Epochs   []model.Epoch
	Values   []int64 // fixed64 centi-units, index-aligned with Epochs
}

// ShardState is a whole shard's durable tier.
type ShardState struct {
	Epoch    model.Epoch
	HasEpoch bool
	Nodes    []NodeState
}

// shardStateMagic guards against feeding a restore stream something that
// was never a snapshot.
const shardStateMagic = "KSST"

// AppendShardState appends the canonical encoding of st to dst.
func AppendShardState(dst []byte, st ShardState) []byte {
	dst = append(dst, shardStateMagic...)
	if st.HasEpoch {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(st.Epoch))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(st.Nodes)))
	for _, ns := range st.Nodes {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(ns.Node))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(ns.EnergyUJ))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(ns.Epochs)))
		for i := range ns.Epochs {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(ns.Epochs[i]))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(ns.Values[i]))
		}
	}
	return dst
}

// DecodeShardState decodes a canonical shard state, rejecting trailing
// bytes, non-ascending nodes or epochs, a cleared cursor with a non-zero
// epoch, and NaN-smuggled energy payloads that are not the canonical NaN.
func DecodeShardState(b []byte) (ShardState, error) {
	var st ShardState
	if len(b) < len(shardStateMagic)+9 || string(b[:4]) != shardStateMagic {
		return st, fmt.Errorf("storage: shard state header invalid")
	}
	b = b[4:]
	switch b[0] {
	case 0, 1:
		st.HasEpoch = b[0] == 1
	default:
		return st, fmt.Errorf("storage: shard state cursor flag %d", b[0])
	}
	st.Epoch = model.Epoch(binary.LittleEndian.Uint32(b[1:]))
	if !st.HasEpoch && st.Epoch != 0 {
		return st, fmt.Errorf("storage: shard state cursor %d without flag", st.Epoch)
	}
	n := int(binary.LittleEndian.Uint32(b[5:]))
	b = b[9:]
	for i := 0; i < n; i++ {
		if len(b) < 12 {
			return st, fmt.Errorf("storage: shard state truncated at node %d", i)
		}
		ns := NodeState{
			Node:     model.NodeID(binary.LittleEndian.Uint16(b)),
			EnergyUJ: math.Float64frombits(binary.LittleEndian.Uint64(b[2:])),
		}
		if i > 0 && ns.Node <= st.Nodes[i-1].Node {
			return st, fmt.Errorf("storage: shard state node %d not ascending", ns.Node)
		}
		cnt := int(binary.LittleEndian.Uint16(b[10:]))
		b = b[12:]
		if len(b) < cnt*12 {
			return st, fmt.Errorf("storage: shard state node %d truncated", ns.Node)
		}
		for j := 0; j < cnt; j++ {
			e := model.Epoch(binary.LittleEndian.Uint32(b[j*12:]))
			if j > 0 && e <= ns.Epochs[j-1] {
				return st, fmt.Errorf("storage: shard state node %d epoch %d not ascending", ns.Node, e)
			}
			ns.Epochs = append(ns.Epochs, e)
			ns.Values = append(ns.Values, int64(binary.LittleEndian.Uint64(b[j*12+4:])))
		}
		b = b[cnt*12:]
		st.Nodes = append(st.Nodes, ns)
	}
	if len(b) != 0 {
		return st, fmt.Errorf("storage: shard state has %d trailing bytes", len(b))
	}
	return st, nil
}

// FilterNodes returns the subset of st covering only the given nodes —
// how a migration splits one source shard's snapshot across several
// target shards. The cursor carries over unchanged.
func (st ShardState) FilterNodes(keep map[model.NodeID]bool) ShardState {
	out := ShardState{Epoch: st.Epoch, HasEpoch: st.HasEpoch}
	for _, ns := range st.Nodes {
		if keep[ns.Node] {
			out.Nodes = append(out.Nodes, ns)
		}
	}
	return out
}

// MergeShardStates unions the kept nodes of several source shard states
// into one canonical target state — the re-sharding migration's split-and-
// merge step. Nodes come out ascending (sources partition the node space,
// so no node appears twice); the cursor is the max of the contributing
// cursors (sources snapshot at slightly different epochs while the old
// deployment keeps running). A source contributing no kept nodes
// contributes nothing, not even its cursor.
func MergeShardStates(states []ShardState, keep map[model.NodeID]bool) ShardState {
	var out ShardState
	for _, st := range states {
		part := st.FilterNodes(keep)
		out.Nodes = append(out.Nodes, part.Nodes...)
		if len(part.Nodes) > 0 && part.HasEpoch && (!out.HasEpoch || part.Epoch > out.Epoch) {
			out.Epoch, out.HasEpoch = part.Epoch, true
		}
	}
	sort.Slice(out.Nodes, func(i, j int) bool { return out.Nodes[i].Node < out.Nodes[j].Node })
	return out
}
