package storage

import (
	"fmt"
	"sort"

	"kspot/internal/model"
)

// MicroHash is a value-bucketed index over a window, after the MicroHash
// flash index (the directory of value buckets, each chaining the window
// offsets of readings that fall in the bucket). It answers the two access
// patterns KSpot's historic operators need — "offsets with value ≥ v"
// (TJA's HJ threshold scan) and "offsets in value bucket b" — in time
// proportional to the result, not the window.
//
// Chain entries store the window's monotone push counter at insertion time,
// so the current offset of an entry is a single subtraction against the
// window's eviction base (Window.OffsetOfPush) — no per-entry search. Stale
// entries (pushes the window has evicted) always form a prefix of their
// chain, because counters only grow; they are trimmed lazily on read and by
// an amortized global compaction on push, which bounds total chain memory
// at ~2× the window regardless of how skewed the value distribution is
// (flash cannot update in place, so the real MicroHash never erases — it
// out-dates; we additionally reclaim, since RAM can).
type MicroHash struct {
	win     *Window
	lo, hi  model.FixedPoint
	buckets int
	// chains[b] holds push counters, oldest first (strictly increasing).
	chains [][]uint64
	// entries counts chain entries across all buckets, live and stale;
	// pushes compact globally once it exceeds 2× the window capacity.
	entries int
}

// NewMicroHash indexes the window with the given value range and bucket
// count. Values outside [lo,hi] clamp into the boundary buckets.
func NewMicroHash(win *Window, lo, hi model.Value, buckets int) (*MicroHash, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("storage: microhash.buckets: must be >= 1, got %d", buckets)
	}
	if lo >= hi {
		return nil, fmt.Errorf("storage: microhash.range: [%v,%v] inverted", lo, hi)
	}
	return &MicroHash{
		win:     win,
		lo:      model.ToFixed(lo),
		hi:      model.ToFixed(hi),
		buckets: buckets,
		chains:  make([][]uint64, buckets),
	}, nil
}

// bucketOf maps a value to its directory bucket.
func (m *MicroHash) bucketOf(v model.FixedPoint) int {
	if v <= m.lo {
		return 0
	}
	if v >= m.hi {
		return m.buckets - 1
	}
	span := int64(m.hi) - int64(m.lo)
	b := int(int64(v-m.lo) * int64(m.buckets) / span)
	if b >= m.buckets {
		b = m.buckets - 1
	}
	return b
}

// Push appends a reading to the window and indexes it.
func (m *MicroHash) Push(e model.Epoch, v model.Value) error {
	if err := m.win.Push(e, v); err != nil {
		return err
	}
	b := m.bucketOf(model.ToFixed(v))
	m.chains[b] = append(m.chains[b], m.win.Pushes()-1)
	m.entries++
	// Amortized global compaction: live entries never exceed the window
	// size, so crossing 2× capacity means at least capacity stale entries
	// exist somewhere — reclaim them all, O(1) amortized per push. This
	// bounds memory even when pushes concentrate in a few hot buckets and
	// the cold chains only ever accumulate staleness.
	if m.entries > 2*m.win.Capacity() {
		m.compactAll()
	}
	return nil
}

// compactChain trims the stale prefix of bucket b's chain in place.
func (m *MicroHash) compactChain(b int, evicted uint64) {
	c := m.chains[b]
	i := sort.Search(len(c), func(i int) bool { return c[i] >= evicted })
	if i == 0 {
		return
	}
	n := copy(c, c[i:])
	m.chains[b] = c[:n]
	m.entries -= i
}

// compactAll trims every chain's stale prefix.
func (m *MicroHash) compactAll() {
	evicted := m.win.Pushes() - uint64(m.win.Len())
	for b := range m.chains {
		m.compactChain(b, evicted)
	}
}

// OffsetsAtLeast returns the window offsets (sorted ascending) whose value
// is ≥ v — the TJA HJ-phase scan. It touches only the directory buckets
// that can contain qualifying values, and each entry resolves to its
// current offset in O(1) via the window's push-counter base.
func (m *MicroHash) OffsetsAtLeast(v model.Value) []int {
	vFP := model.ToFixed(v)
	first := m.bucketOf(vFP)
	evicted := m.win.Pushes() - uint64(m.win.Len())
	var out []int
	for b := first; b < m.buckets; b++ {
		m.compactChain(b, evicted) // lazy: drop the stale prefix while here
		for _, c := range m.chains[b] {
			off := m.win.OffsetOfPush(c)
			if off < 0 {
				continue
			}
			if b == first {
				// Only the boundary bucket can hold sub-threshold values;
				// higher buckets start strictly above it.
				_, val, err := m.win.At(off)
				if err != nil || model.ToFixed(val) < vFP {
					continue
				}
			}
			out = append(out, off)
		}
	}
	sort.Ints(out)
	return out
}

// Bucket returns the live window offsets currently chained in bucket b.
func (m *MicroHash) Bucket(b int) ([]int, error) {
	if b < 0 || b >= m.buckets {
		return nil, fmt.Errorf("storage: microhash.bucket[%d]: out of range [0,%d)", b, m.buckets)
	}
	m.compactChain(b, m.win.Pushes()-uint64(m.win.Len()))
	var out []int
	for _, c := range m.chains[b] {
		if off := m.win.OffsetOfPush(c); off >= 0 {
			out = append(out, off)
		}
	}
	sort.Ints(out)
	return out, nil
}

// Buckets returns the directory size.
func (m *MicroHash) Buckets() int { return m.buckets }

// ChainEntries reports the total number of chain entries currently held,
// live and stale — the quantity the compaction bound caps (tests assert it
// stays ≤ 2× the window capacity under arbitrarily skewed pushes).
func (m *MicroHash) ChainEntries() int { return m.entries }
