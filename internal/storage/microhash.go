package storage

import (
	"fmt"
	"sort"

	"kspot/internal/model"
)

// MicroHash is a value-bucketed index over a window, after the MicroHash
// flash index (the directory of value buckets, each chaining the window
// offsets of readings that fall in the bucket). It answers the two access
// patterns KSpot's historic operators need — "offsets with value ≥ v"
// (TJA's HJ threshold scan) and "offsets in value bucket b" — in time
// proportional to the result, not the window.
//
// The index is rebuilt incrementally on Push and tolerates eviction the way
// the real structure does: stale directory entries are skipped lazily on
// read (flash cannot update in place, so MicroHash never erases — it
// out-dates).
type MicroHash struct {
	win     *Window
	lo, hi  model.FixedPoint
	buckets int
	// chains[b] holds (epoch, offsetAtPush) pairs, newest last. Offsets go
	// stale as the window slides; lookups re-derive current offsets from
	// epochs and skip evicted entries.
	chains [][]model.Epoch
}

// NewMicroHash indexes the window with the given value range and bucket
// count. Values outside [lo,hi] clamp into the boundary buckets.
func NewMicroHash(win *Window, lo, hi model.Value, buckets int) (*MicroHash, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("storage: microhash needs >= 1 bucket, got %d", buckets)
	}
	if lo >= hi {
		return nil, fmt.Errorf("storage: microhash range [%v,%v] inverted", lo, hi)
	}
	return &MicroHash{
		win:     win,
		lo:      model.ToFixed(lo),
		hi:      model.ToFixed(hi),
		buckets: buckets,
		chains:  make([][]model.Epoch, buckets),
	}, nil
}

// bucketOf maps a value to its directory bucket.
func (m *MicroHash) bucketOf(v model.FixedPoint) int {
	if v <= m.lo {
		return 0
	}
	if v >= m.hi {
		return m.buckets - 1
	}
	span := int64(m.hi) - int64(m.lo)
	b := int(int64(v-m.lo) * int64(m.buckets) / span)
	if b >= m.buckets {
		b = m.buckets - 1
	}
	return b
}

// Push appends a reading to the window and indexes it.
func (m *MicroHash) Push(e model.Epoch, v model.Value) error {
	if err := m.win.Push(e, v); err != nil {
		return err
	}
	b := m.bucketOf(model.ToFixed(v))
	m.chains[b] = append(m.chains[b], e)
	// Bound chain growth: drop entries older than the window's oldest
	// epoch (lazy compaction, one amortized pass).
	if len(m.chains[b]) > 2*m.win.Capacity() {
		m.compact(b)
	}
	return nil
}

func (m *MicroHash) compact(b int) {
	oldest, _, err := m.win.At(0)
	if err != nil {
		m.chains[b] = m.chains[b][:0]
		return
	}
	kept := m.chains[b][:0]
	for _, e := range m.chains[b] {
		if e >= oldest {
			kept = append(kept, e)
		}
	}
	m.chains[b] = kept
}

// offsetOf maps a buffered epoch to its current window offset, or -1 if
// evicted.
func (m *MicroHash) offsetOf(e model.Epoch) int {
	n := m.win.Len()
	if n == 0 {
		return -1
	}
	oldest, _, _ := m.win.At(0)
	if e < oldest {
		return -1
	}
	// Epochs are strictly increasing but not necessarily dense; binary
	// search the epoch column.
	lo, hi := 0, n-1
	for lo <= hi {
		mid := (lo + hi) / 2
		me, _, _ := m.win.At(mid)
		switch {
		case me == e:
			return mid
		case me < e:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return -1
}

// OffsetsAtLeast returns the window offsets (sorted ascending) whose value
// is ≥ v — the TJA HJ-phase scan. It touches only the directory buckets
// that can contain qualifying values.
func (m *MicroHash) OffsetsAtLeast(v model.Value) []int {
	vFP := model.ToFixed(v)
	first := m.bucketOf(vFP)
	var out []int
	for b := first; b < m.buckets; b++ {
		for _, e := range m.chains[b] {
			off := m.offsetOf(e)
			if off < 0 {
				continue
			}
			_, val, err := m.win.At(off)
			if err != nil || model.ToFixed(val) < vFP {
				continue // boundary bucket holds sub-threshold values too
			}
			out = append(out, off)
		}
	}
	sort.Ints(out)
	return dedupInts(out)
}

// Bucket returns the live window offsets currently chained in bucket b.
func (m *MicroHash) Bucket(b int) ([]int, error) {
	if b < 0 || b >= m.buckets {
		return nil, fmt.Errorf("storage: bucket %d out of [0,%d)", b, m.buckets)
	}
	var out []int
	for _, e := range m.chains[b] {
		if off := m.offsetOf(e); off >= 0 {
			out = append(out, off)
		}
	}
	sort.Ints(out)
	return dedupInts(out), nil
}

// Buckets returns the directory size.
func (m *MicroHash) Buckets() int { return m.buckets }

func dedupInts(s []int) []int {
	if len(s) < 2 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
