package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kspot/internal/model"
)

// TestWindowErrorPaths table-tests the validation errors of the window
// layer: every rejected construction or access carries a field-path-style
// message (like scenario Validate's), so a wrapped error names exactly
// what was out of range.
func TestWindowErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		err  func() error
		want string
	}{
		{"capacity zero", func() error { _, err := NewWindow(0); return err },
			"storage: window.capacity: must be >= 1, got 0"},
		{"capacity negative", func() error { _, err := NewWindow(-3); return err },
			"storage: window.capacity: must be >= 1, got -3"},
		{"capacity zero with backend", func() error { _, err := NewWindowOn(0, Memory{}); return err },
			"storage: window.capacity: must be >= 1, got 0"},
		{"at negative", func() error {
			w, _ := NewWindow(2)
			w.Push(1, 1)
			_, _, err := w.At(-1)
			return err
		}, "storage: window.at[-1]: out of range [0,1)"},
		{"at past size", func() error {
			w, _ := NewWindow(2)
			w.Push(1, 1)
			_, _, err := w.At(1)
			return err
		}, "storage: window.at[1]: out of range [0,1)"},
		{"push regression", func() error {
			w, _ := NewWindow(2)
			w.Push(5, 1)
			return w.Push(5, 2)
		}, "storage: window.push: epoch 5 not after 5"},
		{"bucket out of range", func() error {
			w, _ := NewWindow(4)
			mh, _ := NewMicroHash(w, 0, 100, 4)
			_, err := mh.Bucket(9)
			return err
		}, "storage: microhash.bucket[9]: out of range [0,4)"},
		{"bucket negative", func() error {
			w, _ := NewWindow(4)
			mh, _ := NewMicroHash(w, 0, 100, 4)
			_, err := mh.Bucket(-1)
			return err
		}, "storage: microhash.bucket[-1]: out of range [0,4)"},
		{"microhash buckets", func() error { _, err := NewMicroHash(nil, 0, 100, 0); return err },
			"storage: microhash.buckets: must be >= 1, got 0"},
		{"microhash range", func() error { _, err := NewMicroHash(nil, 100, 0, 4); return err },
			"storage: microhash.range: [100,0] inverted"},
		{"store capacity", func() error { _, err := OpenStore("", 0); return err },
			"storage: store.capacity: must be >= 1, got 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.err()
			if err == nil {
				t.Fatalf("accepted, want %q", tc.want)
			}
			if err.Error() != tc.want {
				t.Fatalf("error %q, want %q", err, tc.want)
			}
		})
	}
}

// TestRecordRoundTrip pins the canonical record form: encode∘decode is the
// identity and the frame size is the documented constant.
func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: RecordPush, Epoch: 0, Value: 0},
		{Kind: RecordPush, Epoch: 7, Value: 4225},
		{Kind: RecordPush, Epoch: 1<<32 - 1, Value: -350},
	}
	for _, r := range recs {
		b := AppendRecord(nil, r)
		if len(b) != RecordWireSize {
			t.Fatalf("record wire size %d, want %d", len(b), RecordWireSize)
		}
		got, n, err := DecodeRecord(b)
		if err != nil || n != len(b) || got != r {
			t.Fatalf("round trip %+v -> %+v, %d, %v", r, got, n, err)
		}
	}
}

// TestSegmentTornTailEveryBoundary truncates a three-record segment at
// every byte boundary of its final record and asserts recovery keeps the
// first two records intact — exactly the torn record is dropped, never a
// whole window.
func TestSegmentTornTailEveryBoundary(t *testing.T) {
	full := []Record{
		{Kind: RecordPush, Epoch: 1, Value: 100},
		{Kind: RecordPush, Epoch: 2, Value: 200},
		{Kind: RecordPush, Epoch: 3, Value: 300},
	}
	var seg []byte
	for _, r := range full {
		seg = AppendRecord(seg, r)
	}
	for cut := 2 * RecordWireSize; cut < len(seg); cut++ {
		recs, clean := ReplaySegment(seg[:cut])
		if clean != 2*RecordWireSize {
			t.Fatalf("cut %d: clean prefix %d, want %d", cut, clean, 2*RecordWireSize)
		}
		if len(recs) != 2 || recs[0] != full[0] || recs[1] != full[1] {
			t.Fatalf("cut %d: recovered %+v", cut, recs)
		}
	}
	// And through the real file path: OpenDisk must truncate the torn tail
	// on disk and keep appending after the clean prefix.
	for cut := 2 * RecordWireSize; cut < len(seg); cut++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "node-1.seg")
		if err := os.WriteFile(path, seg[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		d, recs, err := OpenDisk(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recs) != 2 {
			t.Fatalf("cut %d: recovered %d records", cut, len(recs))
		}
		if err := d.Append(Record{Kind: RecordPush, Epoch: 3, Value: 333}); err != nil {
			t.Fatal(err)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		raw, _ := os.ReadFile(path)
		got, clean := ReplaySegment(raw)
		if clean != len(raw) || len(got) != 3 || got[2].Value != 333 {
			t.Fatalf("cut %d: post-append segment %+v (clean %d of %d)", cut, got, clean, len(raw))
		}
	}
}

// TestSegmentMidFileCorruption: a flipped byte in the middle of a segment
// ends the clean prefix there — recovery keeps everything before it.
func TestSegmentMidFileCorruption(t *testing.T) {
	var seg []byte
	for e := 1; e <= 4; e++ {
		seg = AppendRecord(seg, Record{Kind: RecordPush, Epoch: model.Epoch(e), Value: int64(e)})
	}
	seg[RecordWireSize+6] ^= 0xFF // inside record 2's payload
	recs, clean := ReplaySegment(seg)
	if clean != RecordWireSize || len(recs) != 1 || recs[0].Epoch != 1 {
		t.Fatalf("recovered %+v (clean %d)", recs, clean)
	}
}

// TestDiskOffsetOfPush pins the O(1) push-counter → segment-offset map,
// including across Clear (truncate), mirroring Window.OffsetOfPush.
func TestDiskOffsetOfPush(t *testing.T) {
	d, recs, err := OpenDisk(filepath.Join(t.TempDir(), "node-9.seg"))
	if err != nil || len(recs) != 0 {
		t.Fatalf("fresh disk: %v, %d records", err, len(recs))
	}
	defer d.Close()
	for e := 1; e <= 3; e++ {
		if err := d.Append(Record{Kind: RecordPush, Epoch: model.Epoch(e), Value: int64(e)}); err != nil {
			t.Fatal(err)
		}
	}
	for c, want := range map[uint64]int64{0: 0, 1: RecordWireSize, 2: 2 * RecordWireSize, 3: -1} {
		if got := d.OffsetOfPush(c); got != want {
			t.Fatalf("OffsetOfPush(%d) = %d, want %d", c, got, want)
		}
	}
	if err := d.Clear(); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(Record{Kind: RecordPush, Epoch: 9, Value: 9}); err != nil {
		t.Fatal(err)
	}
	if got := d.OffsetOfPush(2); got != -1 {
		t.Fatalf("pre-clear push resolvable at %d", got)
	}
	if got := d.OffsetOfPush(3); got != 0 {
		t.Fatalf("post-clear push at %d, want 0", got)
	}
}

// TestWindowDiskRecovery: a window pushed through a Disk backend recovers
// byte-identically — same series, same epochs — from its segment file, and
// continues accepting pushes.
func TestWindowDiskRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "node-3.seg")
	d, _, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWindowOn(3, d)
	if err != nil {
		t.Fatal(err)
	}
	for e := 1; e <= 5; e++ {
		if err := w.Push(model.Epoch(e), model.Value(e)*1.25); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, recs, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if len(recs) != 5 {
		t.Fatalf("recovered %d records, want 5", len(recs))
	}
	w2, _ := NewWindow(3)
	for _, r := range recs {
		if err := w2.Push(r.Epoch, model.FromFixed(model.FixedPoint(r.Value))); err != nil {
			t.Fatal(err)
		}
	}
	w2.Attach(d2)
	if fmt.Sprint(w2.Series()) != fmt.Sprint(w.Series()) || fmt.Sprint(w2.Epochs()) != fmt.Sprint(w.Epochs()) {
		t.Fatalf("recovered %v@%v, want %v@%v", w2.Series(), w2.Epochs(), w.Series(), w.Epochs())
	}
	if err := w2.Push(6, 60); err != nil {
		t.Fatal(err)
	}
}

// TestStoreRecordRecoverStats drives the store through record → reopen →
// record and checks idempotent replay, cursor recovery and the stats
// block.
func TestStoreRecordRecoverStats(t *testing.T) {
	dir := t.TempDir()
	readings := func(e model.Epoch) map[model.NodeID]model.Reading {
		return map[model.NodeID]model.Reading{
			1: {Node: 1, Epoch: e, Value: model.Value(e) * 10},
			2: {Node: 2, Epoch: e, Value: model.Value(e) * 20},
		}
	}
	st, err := OpenStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	for e := model.Epoch(0); e < 3; e++ {
		st.RecordReadings(e, readings(e))
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.Nodes != 2 || stats.Segments != 2 || !stats.HasEpoch || stats.LastEpoch != 2 || stats.Bytes != 2*3*RecordWireSize {
		t.Fatalf("stats %+v", stats)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if e, ok := re.Cursor(); !ok || e != 2 {
		t.Fatalf("recovered cursor %d,%v", e, ok)
	}
	// The coordinator replays epoch 2 at the restarted shard: idempotent.
	re.RecordReadings(2, readings(2))
	re.RecordReadings(3, readings(3))
	if err := re.Err(); err != nil {
		t.Fatal(err)
	}
	if got := re.Stats().Bytes; got != 2*4*RecordWireSize {
		t.Fatalf("bytes after replay %d, want %d (epoch 2 must not re-append)", got, 2*4*RecordWireSize)
	}
	// Memory mode: same API, no files.
	mem, err := OpenStore("", 4)
	if err != nil {
		t.Fatal(err)
	}
	mem.RecordReadings(0, readings(0))
	if s := mem.Stats(); s.Segments != 0 || s.Nodes != 2 || s.Bytes != 0 {
		t.Fatalf("memory stats %+v", s)
	}
}

// TestShardStateRoundTripAndRestore: State → encode → decode → Restore
// into a fresh store reproduces the identical snapshot bytes, split or
// whole — the invariant migration relies on.
func TestShardStateRoundTripAndRestore(t *testing.T) {
	src, err := OpenStore("", 8)
	if err != nil {
		t.Fatal(err)
	}
	for e := model.Epoch(0); e < 5; e++ {
		src.RecordReadings(e, map[model.NodeID]model.Reading{
			4: {Node: 4, Epoch: e, Value: model.Value(e) + 0.25},
			7: {Node: 7, Epoch: e, Value: -model.Value(e)},
			9: {Node: 9, Epoch: e, Value: 100},
		})
	}
	energy := func(n model.NodeID) float64 { return float64(n) * 1.5 }
	state := src.State(energy)
	enc := AppendShardState(nil, state)
	dec, err := DecodeShardState(enc)
	if err != nil {
		t.Fatal(err)
	}
	if re := AppendShardState(nil, dec); string(re) != string(enc) {
		t.Fatalf("decode∘re-encode drifted:\n%x\n%x", enc, re)
	}

	dst, err := OpenStore(filepath.Join(t.TempDir(), "restore"), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if err := dst.Restore(dec); err != nil {
		t.Fatal(err)
	}
	back := dst.State(energy)
	if string(AppendShardState(nil, back)) != string(enc) {
		t.Fatalf("restored state drifted:\n%+v\n%+v", back, dec)
	}

	// Splitting by node keeps the cursor and exactly the kept nodes.
	part := state.FilterNodes(map[model.NodeID]bool{7: true})
	if len(part.Nodes) != 1 || part.Nodes[0].Node != 7 || part.Epoch != state.Epoch || part.HasEpoch != state.HasEpoch {
		t.Fatalf("filtered %+v", part)
	}
}

// TestShardStateDecodeRejects table-tests the canonical-form guards.
func TestShardStateDecodeRejects(t *testing.T) {
	good := AppendShardState(nil, ShardState{HasEpoch: true, Epoch: 3, Nodes: []NodeState{
		{Node: 1, EnergyUJ: 2.5, Epochs: []model.Epoch{1, 2}, Values: []int64{10, 20}},
	}})
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"bad flag", func(b []byte) []byte { b[4] = 9; return b }},
		{"trailing", func(b []byte) []byte { return append(b, 0) }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-3] }},
		{"epoch order", func(b []byte) []byte {
			return AppendShardState(nil, ShardState{HasEpoch: true, Epoch: 3, Nodes: []NodeState{
				{Node: 1, Epochs: []model.Epoch{2, 2}, Values: []int64{1, 2}},
			}})
		}},
		{"node order", func(b []byte) []byte {
			return AppendShardState(nil, ShardState{HasEpoch: true, Epoch: 3, Nodes: []NodeState{
				{Node: 5}, {Node: 5},
			}})
		}},
		{"cursor without flag", func(b []byte) []byte {
			return AppendShardState(nil, ShardState{HasEpoch: false, Epoch: 3})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), good...))
			if _, err := DecodeShardState(b); err == nil {
				t.Fatal("accepted")
			} else if !strings.HasPrefix(err.Error(), "storage: ") {
				t.Fatalf("error %q lost its package path", err)
			}
		})
	}
}

// BenchmarkWindowDiskPush measures the durable push path — one framed
// record append per push through the bufio'd segment — against the
// memory baseline BenchmarkWindowMemoryPush.
func BenchmarkWindowDiskPush(b *testing.B) {
	d, _, err := OpenDisk(filepath.Join(b.TempDir(), "bench.seg"))
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	w, _ := NewWindowOn(64, d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Push(model.Epoch(i+1), model.Value(i%1000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWindowMemoryPush is the no-backend baseline for the <5%
// regression budget of the default path.
func BenchmarkWindowMemoryPush(b *testing.B) {
	w, _ := NewWindow(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Push(model.Epoch(i+1), model.Value(i%1000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreRecovery measures reopening a data dir with 16 nodes × 64
// buffered epochs — the recovery_ms number BENCH_PR10.json tracks.
func BenchmarkStoreRecovery(b *testing.B) {
	dir := b.TempDir()
	st, err := OpenStore(dir, 64)
	if err != nil {
		b.Fatal(err)
	}
	for e := model.Epoch(0); e < 64; e++ {
		m := make(map[model.NodeID]model.Reading, 16)
		for n := model.NodeID(1); n <= 16; n++ {
			m[n] = model.Reading{Node: n, Epoch: e, Value: model.Value(n * model.NodeID(e))}
		}
		st.RecordReadings(e, m)
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re, err := OpenStore(dir, 64)
		if err != nil {
			b.Fatal(err)
		}
		if e, ok := re.Cursor(); !ok || e != 63 {
			b.Fatalf("cursor %d,%v", e, ok)
		}
		b.StopTimer()
		re.Close()
		b.StartTimer()
	}
}
