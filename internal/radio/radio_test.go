package radio

import (
	"testing"
	"testing/quick"

	"kspot/internal/model"
)

func TestFramesFor(t *testing.T) {
	l := NewLink(DefaultConfig())
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {29, 1}, {30, 2}, {58, 2}, {59, 3}, {290, 10},
	}
	for _, c := range cases {
		if got := l.FramesFor(c.n); got != c.want {
			t.Errorf("FramesFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestWireBytes(t *testing.T) {
	l := NewLink(DefaultConfig())
	if got := l.WireBytes(29); got != 29+7 {
		t.Errorf("WireBytes(29) = %d", got)
	}
	if got := l.WireBytes(30); got != 30+2*7 {
		t.Errorf("WireBytes(30) = %d", got)
	}
	if got := l.WireBytes(0); got != 7 {
		t.Errorf("WireBytes(0) = %d", got)
	}
}

func TestTransmitLossless(t *testing.T) {
	l := NewLink(DefaultConfig())
	msg := Message{From: 1, To: 0, Kind: KindData, Payload: make([]byte, 64)}
	acc := l.Transmit(msg)
	if !acc.Delivered {
		t.Fatal("lossless transmit not delivered")
	}
	if acc.Frames != 3 {
		t.Errorf("frames = %d, want 3", acc.Frames)
	}
	if acc.TxBytes != 64+3*7 {
		t.Errorf("TxBytes = %d", acc.TxBytes)
	}
	if acc.TxBytes != acc.RxBytes {
		t.Errorf("lossless tx %d != rx %d", acc.TxBytes, acc.RxBytes)
	}
	if acc.Drops != 0 {
		t.Errorf("drops = %d", acc.Drops)
	}
}

func TestTransmitEmptyBeacon(t *testing.T) {
	l := NewLink(DefaultConfig())
	acc := l.Transmit(Message{From: 0, To: 1, Kind: KindBeacon})
	if !acc.Delivered || acc.Frames != 1 || acc.TxBytes != 7 {
		t.Errorf("beacon acc = %+v", acc)
	}
}

func TestTransmitLossyRetries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossRate = 0.5
	cfg.MaxRetries = 10
	cfg.Seed = 42
	l := NewLink(cfg)
	delivered := 0
	totalFrames := 0
	for i := 0; i < 200; i++ {
		acc := l.Transmit(Message{From: 1, To: 0, Kind: KindData, Payload: make([]byte, 20)})
		if acc.Delivered {
			delivered++
		}
		totalFrames += acc.Frames
	}
	if delivered < 195 {
		t.Errorf("with 10 retries at 50%% loss, delivered = %d/200", delivered)
	}
	if totalFrames <= 200 {
		t.Errorf("lossy link should need retransmissions, frames = %d", totalFrames)
	}
}

func TestTransmitTotalLoss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossRate = 0.999999
	cfg.MaxRetries = 2
	cfg.Seed = 1
	l := NewLink(cfg)
	acc := l.Transmit(Message{From: 1, To: 0, Kind: KindData, Payload: make([]byte, 100)})
	if acc.Delivered {
		t.Fatal("message delivered through a dead link")
	}
	if acc.Frames != 3 { // 1 try + 2 retries of the first fragment only
		t.Errorf("frames = %d, want 3 (abort after first fragment)", acc.Frames)
	}
}

func TestCounterRecord(t *testing.T) {
	l := NewLink(DefaultConfig())
	c := NewCounter()
	msg := Message{From: 3, To: 1, Kind: KindData, Payload: make([]byte, 40)}
	acc := l.Transmit(msg)
	c.Record(msg, acc)
	beacon := Message{From: 0, To: 1, Kind: KindBeacon}
	c.Record(beacon, l.Transmit(beacon))

	if c.Messages[KindData] != 1 || c.Messages[KindBeacon] != 1 {
		t.Errorf("messages = %+v", c.Messages)
	}
	if c.TotalMessages() != 2 {
		t.Errorf("TotalMessages = %d", c.TotalMessages())
	}
	if c.TotalTxBytes() != acc.TxBytes+7 {
		t.Errorf("TotalTxBytes = %d", c.TotalTxBytes())
	}
	if c.PerNodeTx[3] != acc.TxBytes {
		t.Errorf("PerNodeTx[3] = %d", c.PerNodeTx[3])
	}
	if c.PerNodeRx[1] != acc.RxBytes+7 {
		t.Errorf("PerNodeRx[1] = %d", c.PerNodeRx[1])
	}
	if c.TotalFrames() != acc.Frames+1 {
		t.Errorf("TotalFrames = %d", c.TotalFrames())
	}
	if c.TotalRxBytes() != c.TotalTxBytes() {
		t.Errorf("lossless rx %d != tx %d", c.TotalRxBytes(), c.TotalTxBytes())
	}
}

func TestCounterUndelivered(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossRate = 0.9999
	cfg.MaxRetries = 0
	cfg.Seed = 5
	l := NewLink(cfg)
	c := NewCounter()
	msg := Message{From: 1, To: 0, Kind: KindData, Payload: []byte{1}}
	c.Record(msg, l.Transmit(msg))
	if c.Undeliver != 1 {
		t.Errorf("Undeliver = %d", c.Undeliver)
	}
	if c.TotalMessages() != 0 {
		t.Errorf("TotalMessages = %d, want 0", c.TotalMessages())
	}
}

func TestMsgKindString(t *testing.T) {
	for k, want := range map[MsgKind]string{KindData: "data", KindBeacon: "beacon", KindLB: "lb", KindHJ: "hj", KindCL: "cl", KindCtrl: "ctrl"} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

// Property: wire bytes always equals payload + frames*header and frames is
// minimal for the payload size.
func TestWireBytesProperty(t *testing.T) {
	f := func(nRaw uint16, payloadRaw uint8) bool {
		cfg := DefaultConfig()
		cfg.Payload = 1 + int(payloadRaw)%100
		l := NewLink(cfg)
		n := int(nRaw) % 2000
		frames := l.FramesFor(n)
		if n > 0 && (frames-1)*cfg.Payload >= n {
			return false // one frame too many
		}
		if frames*cfg.Payload < n {
			return false // not enough frames
		}
		return l.WireBytes(n) == n+frames*cfg.HeaderSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: lossless transmits always deliver with tx == rx accounting.
func TestLosslessDeliveryProperty(t *testing.T) {
	l := NewLink(DefaultConfig())
	f := func(size uint16, from, to uint8) bool {
		msg := Message{From: model.NodeID(from), To: model.NodeID(to), Kind: KindData, Payload: make([]byte, int(size)%500)}
		acc := l.Transmit(msg)
		return acc.Delivered && acc.TxBytes == acc.RxBytes && acc.Drops == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
