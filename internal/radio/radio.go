// Package radio models the link layer of a MICA2-class mote: TOS_Msg-style
// framing with a small fixed header and a bounded payload, fragmentation of
// larger application records across multiple frames, lossy links with
// retransmission, and per-packet/per-byte accounting hooks.
//
// The byte and message counts this package reports are the raw material of
// the paper's System Panel: KSpot's savings over TAG come precisely from
// needing fewer and smaller frames per epoch.
package radio

import (
	"fmt"
	"math/rand"

	"kspot/internal/model"
)

// MsgKind tags the application-level purpose of a frame, used for phase
// accounting (e.g. TJA reports bytes per LB/HJ/CL phase).
type MsgKind uint8

const (
	KindData   MsgKind = iota // upstream view / tuple payloads
	KindBeacon                // downstream epoch beacon (query, γ, top-k set)
	KindLB                    // TJA lower-bound phase
	KindHJ                    // TJA hierarchical-join phase
	KindCL                    // TJA clean-up phase
	KindCtrl                  // misc control (tree building, acks)
)

func (k MsgKind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindBeacon:
		return "beacon"
	case KindLB:
		return "lb"
	case KindHJ:
		return "hj"
	case KindCL:
		return "cl"
	case KindCtrl:
		return "ctrl"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Frame geometry, after TOS_Msg on TinyOS 1.x as deployed on MICA2: a 7-byte
// header (dest, AM type, group, length, CRC) and a default 29-byte payload.
const (
	DefaultHeaderSize = 7
	DefaultPayload    = 29
)

// FrameFate is the outcome the fault model assigns to one frame attempt.
type FrameFate uint8

const (
	// FrameOK: the frame is received within its receive window.
	FrameOK FrameFate = iota
	// FrameLost: the frame never arrives (collision, fade); the receiver
	// spends nothing, the AM layer retries.
	FrameLost
	// FrameDelayed: the frame arrives after its receive window closed. The
	// receiver pays to hear it but the AM layer discards it and retries —
	// a loss that also costs receive energy.
	FrameDelayed
	// FrameDuplicated: the frame is received, but a spurious retransmission
	// (e.g. a lost acknowledgement) puts one extra copy on air, doubling
	// this frame's transmit and receive cost.
	FrameDuplicated
)

// FaultModel decides the fate of individual frame attempts. Implementations
// MUST be deterministic functions of the message identity (sender, receiver,
// kind, epoch, payload, fragment, attempt) and their own seed — never of
// call order — so that concurrent substrates replay the exact fault pattern
// of the deterministic simulator. They must also be safe for concurrent use.
// internal/faults provides the standard models.
type FaultModel interface {
	Frame(msg Message, frag, attempt int) FrameFate
}

// Config describes the link layer.
type Config struct {
	HeaderSize int     // bytes of per-frame header
	Payload    int     // max payload bytes per frame
	LossRate   float64 // independent per-frame loss probability [0,1)
	MaxRetries int     // link-layer retransmissions after a loss
	Seed       int64   // seed for the loss process
	// Fault, when non-nil, replaces the LossRate/Seed process with a
	// deterministic per-frame fault model (see internal/faults). The rng
	// draw order of LossRate depends on transmission order, which differs
	// between substrates under concurrency; Fault does not.
	Fault FaultModel
}

// DefaultConfig returns a lossless MICA2-style link layer.
func DefaultConfig() Config {
	return Config{HeaderSize: DefaultHeaderSize, Payload: DefaultPayload, MaxRetries: 3}
}

// Message is an application-level record travelling between a node and its
// tree neighbor. Payload is the encoded record; the link layer fragments it
// into frames transparently.
type Message struct {
	From, To model.NodeID
	Kind     MsgKind
	Epoch    model.Epoch
	Payload  []byte
}

// Accounting receives the outcome of every link-layer transmission so that
// energy and System Panel counters can be maintained by the caller. TxBytes
// and RxBytes include headers; frames counts individual frames on air
// including retransmissions; delivered reports application-level success.
type Accounting struct {
	Frames    int // frames put on air (incl. retransmissions)
	TxBytes   int // total bytes transmitted (incl. headers, retries)
	RxBytes   int // total bytes successfully received
	RxFrames  int // frames successfully received
	Drops     int // frames lost (before any successful retry)
	Delivered bool
}

// Link simulates one directed transmission over a single hop.
type Link struct {
	cfg Config
	rng *rand.Rand
}

// NewLink returns a link with the given configuration.
func NewLink(cfg Config) *Link {
	if cfg.HeaderSize <= 0 {
		cfg.HeaderSize = DefaultHeaderSize
	}
	if cfg.Payload <= 0 {
		cfg.Payload = DefaultPayload
	}
	return &Link{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Config returns the link configuration.
func (l *Link) Config() Config { return l.cfg }

// SetFault installs (or clears) the deterministic fault model. Callers must
// install it before traffic flows: the link itself does not synchronize the
// swap against concurrent Transmits.
func (l *Link) SetFault(m FaultModel) { l.cfg.Fault = m }

// FramesFor reports how many frames a payload of n bytes needs. A zero-byte
// payload still needs one frame (an empty beacon is a frame on air).
func (l *Link) FramesFor(n int) int {
	if n <= 0 {
		return 1
	}
	return (n + l.cfg.Payload - 1) / l.cfg.Payload
}

// WireBytes reports the on-air size of a message of n payload bytes,
// including one header per fragment, assuming no retransmissions.
func (l *Link) WireBytes(n int) int {
	frames := l.FramesFor(n)
	return n + frames*l.cfg.HeaderSize
}

// Transmit sends one message across the hop, fragmenting and retrying as
// configured, and returns the accounting record. Each fragment is lost
// independently with probability LossRate and retried up to MaxRetries
// times; the message is delivered only if every fragment eventually gets
// through (the TinyOS AM layer has no partial-delivery semantics).
func (l *Link) Transmit(msg Message) Accounting {
	var acc Accounting
	acc.Delivered = true
	n := len(msg.Payload)
	frames := l.FramesFor(n)
	for f := 0; f < frames; f++ {
		size := l.cfg.Payload
		if f == frames-1 && n > 0 {
			size = n - (frames-1)*l.cfg.Payload
		}
		if n == 0 {
			size = 0
		}
		wire := size + l.cfg.HeaderSize
		ok := false
		for attempt := 0; attempt <= l.cfg.MaxRetries; attempt++ {
			acc.Frames++
			acc.TxBytes += wire
			fate := FrameOK
			if l.cfg.Fault != nil {
				fate = l.cfg.Fault.Frame(msg, f, attempt)
			} else if l.cfg.LossRate > 0 && l.rng.Float64() < l.cfg.LossRate {
				fate = FrameLost
			}
			switch fate {
			case FrameLost:
				acc.Drops++
				continue
			case FrameDelayed:
				// The late frame is heard (receive cost accrues) but missed
				// its window, so the AM layer drops and retries it.
				acc.RxBytes += wire
				acc.RxFrames++
				acc.Drops++
				continue
			case FrameDuplicated:
				// One spurious extra copy on air, received twice, kept once.
				acc.Frames++
				acc.TxBytes += wire
				acc.RxBytes += 2 * wire
				acc.RxFrames += 2
			default:
				acc.RxBytes += wire
				acc.RxFrames++
			}
			ok = true
			break
		}
		if !ok {
			acc.Delivered = false
			// Remaining fragments are not sent: the AM layer aborts the
			// message after a fragment exhausts its retries.
			break
		}
	}
	return acc
}

// Counter accumulates System Panel traffic statistics, broken down per
// message kind and per node.
type Counter struct {
	Messages  map[MsgKind]int // delivered application messages
	Frames    map[MsgKind]int
	TxBytes   map[MsgKind]int
	RxBytes   map[MsgKind]int
	Drops     int
	Undeliver int
	PerNodeTx map[model.NodeID]int // tx bytes per sender
	PerNodeRx map[model.NodeID]int // rx bytes per receiver
}

// NewCounter returns a zeroed counter.
func NewCounter() *Counter {
	return &Counter{
		Messages:  make(map[MsgKind]int),
		Frames:    make(map[MsgKind]int),
		TxBytes:   make(map[MsgKind]int),
		RxBytes:   make(map[MsgKind]int),
		PerNodeTx: make(map[model.NodeID]int),
		PerNodeRx: make(map[model.NodeID]int),
	}
}

// Record folds one transmission's accounting into the counter.
func (c *Counter) Record(msg Message, acc Accounting) {
	c.Frames[msg.Kind] += acc.Frames
	c.TxBytes[msg.Kind] += acc.TxBytes
	c.RxBytes[msg.Kind] += acc.RxBytes
	c.Drops += acc.Drops
	c.PerNodeTx[msg.From] += acc.TxBytes
	c.PerNodeRx[msg.To] += acc.RxBytes
	if acc.Delivered {
		c.Messages[msg.Kind]++
	} else {
		c.Undeliver++
	}
}

// TotalMessages sums delivered messages across kinds.
func (c *Counter) TotalMessages() int {
	t := 0
	for _, v := range c.Messages {
		t += v
	}
	return t
}

// TotalFrames sums frames across kinds.
func (c *Counter) TotalFrames() int {
	t := 0
	for _, v := range c.Frames {
		t += v
	}
	return t
}

// TotalTxBytes sums transmitted bytes across kinds.
func (c *Counter) TotalTxBytes() int {
	t := 0
	for _, v := range c.TxBytes {
		t += v
	}
	return t
}

// TotalRxBytes sums received bytes across kinds.
func (c *Counter) TotalRxBytes() int {
	t := 0
	for _, v := range c.RxBytes {
		t += v
	}
	return t
}
