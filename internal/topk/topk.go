// Package topk defines the operator framework the KSpot query engine plugs
// algorithms into: snapshot operators (MINT, TAG, naive, centralized) that
// run once per epoch over live readings, and historic operators (TJA, TPUT,
// centralized) that run once over a buffered window. It also provides the
// exact reference evaluator every algorithm is tested against, and the
// epoch Runner that drives a snapshot operator over a trace.
package topk

import (
	"encoding/binary"
	"fmt"
	"math"

	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/sim"
	"kspot/internal/trace"
)

// ValueRange is the calibrated sensing range of the queried attribute
// (sound level 0–100%, MTS310 temperature −40..250 °F, ...). MINT's γ
// descriptors use it to bound unseen readings from above, which is what
// lets a node prune even an incomplete partial aggregate.
type ValueRange struct {
	Min, Max model.Value
}

// SnapshotQuery is the paper's snapshot form:
//
//	SELECT TOP K <group>, AGG(<attr>) FROM sensors GROUP BY <group>
//	EPOCH DURATION e
//
// Range, when non-nil, declares the attribute's calibrated value range.
type SnapshotQuery struct {
	K     int
	Agg   model.AggKind
	Range *ValueRange
}

// Validate rejects malformed queries.
func (q SnapshotQuery) Validate() error {
	if q.K < 1 {
		return fmt.Errorf("topk: K must be >= 1, got %d", q.K)
	}
	if q.Range != nil && q.Range.Min > q.Range.Max {
		return fmt.Errorf("topk: inverted value range [%v,%v]", q.Range.Min, q.Range.Max)
	}
	return nil
}

// SnapshotOperator is a distributed top-k algorithm for snapshot queries.
// Attach binds it to a transport (the deterministic simulator or the live
// concurrent deployment — see internal/engine) and a query; Epoch runs one
// acquisition round over the epoch's readings (one per live sensor) and
// returns the sink's current top-k answer.
type SnapshotOperator interface {
	Name() string
	Attach(t engine.Transport, q SnapshotQuery) error
	Epoch(e model.Epoch, readings map[model.NodeID]model.Reading) ([]model.Answer, error)
}

// ExactSnapshot computes the ground-truth answer for one epoch from the raw
// readings — the oracle a centralized, lossless system would produce.
func ExactSnapshot(readings map[model.NodeID]model.Reading, q SnapshotQuery) []model.Answer {
	v := model.NewView()
	for _, r := range readings {
		v.Add(r)
	}
	return v.TopK(q.Agg, q.K)
}

// SenseEpoch samples every live sensor once and charges the sensing cost,
// returning the epoch's readings keyed by node.
func SenseEpoch(t engine.Transport, src trace.Source, e model.Epoch) map[model.NodeID]model.Reading {
	return engine.SenseEpoch(t, src, e)
}

// EpochResult records one epoch of a Runner execution.
type EpochResult struct {
	Epoch   model.Epoch
	Answers []model.Answer
	Exact   []model.Answer
	Correct bool
	Recall  float64
	Traffic sim.Snapshot // this epoch's traffic/energy delta
}

// Runner drives a snapshot operator over a trace for a number of epochs,
// scoring every epoch against the exact oracle. Net is any engine
// substrate; benchmarks pass the deterministic *sim.Network, the
// equivalence tests also pass the concurrent *engine.Live.
type Runner struct {
	Net    engine.Transport
	Source trace.Source
	Op     SnapshotOperator
	Query  SnapshotQuery
}

// Run executes epochs [0, n) and returns per-epoch results.
func (r *Runner) Run(n int) ([]EpochResult, error) {
	return r.RunWarm(0, n)
}

// RunWarm executes warm untracked epochs first (typically 1, covering the
// query installation flood and MINT's creation phase), resets the
// network's traffic and energy accounting, then executes and measures n
// further epochs. The steady-state numbers are what the paper's System
// Panel continuously displays.
func (r *Runner) RunWarm(warm, n int) ([]EpochResult, error) {
	if err := r.Query.Validate(); err != nil {
		return nil, err
	}
	if err := r.Op.Attach(r.Net, r.Query); err != nil {
		return nil, fmt.Errorf("topk: attach %s: %w", r.Op.Name(), err)
	}
	for e := model.Epoch(0); int(e) < warm; e++ {
		readings := SenseEpoch(r.Net, r.Source, e)
		if _, err := r.Op.Epoch(e, readings); err != nil {
			return nil, fmt.Errorf("topk: %s warm epoch %d: %w", r.Op.Name(), e, err)
		}
	}
	if warm > 0 {
		r.Net.Reset()
	}
	results := make([]EpochResult, 0, n)
	for e := model.Epoch(warm); int(e) < warm+n; e++ {
		before := r.Net.Snap()
		r.Net.ChargeIdleEpoch()
		readings := SenseEpoch(r.Net, r.Source, e)
		answers, err := r.Op.Epoch(e, readings)
		if err != nil {
			return results, fmt.Errorf("topk: %s epoch %d: %w", r.Op.Name(), e, err)
		}
		exact := ExactSnapshot(readings, r.Query)
		results = append(results, EpochResult{
			Epoch:   e,
			Answers: answers,
			Exact:   exact,
			Correct: model.EqualAnswers(answers, exact),
			Recall:  model.Recall(answers, exact),
			Traffic: r.Net.Delta(before),
		})
	}
	return results, nil
}

// Summary aggregates a run's results for the System Panel.
type Summary struct {
	Epochs      int
	CorrectPct  float64
	MeanRecall  float64
	Messages    int
	Frames      int
	TxBytes     int
	EnergyUJ    float64
	BytesPerEp  float64
	MsgsPerEp   float64
	EnergyPerEp float64
}

// Summarize folds epoch results into totals.
func Summarize(results []EpochResult) Summary {
	var s Summary
	s.Epochs = len(results)
	if s.Epochs == 0 {
		return s
	}
	correct := 0
	for _, r := range results {
		if r.Correct {
			correct++
		}
		s.MeanRecall += r.Recall
		s.Messages += r.Traffic.Messages
		s.Frames += r.Traffic.Frames
		s.TxBytes += r.Traffic.TxBytes
		s.EnergyUJ += r.Traffic.EnergyUJ
	}
	s.CorrectPct = 100 * float64(correct) / float64(s.Epochs)
	s.MeanRecall /= float64(s.Epochs)
	s.BytesPerEp = float64(s.TxBytes) / float64(s.Epochs)
	s.MsgsPerEp = float64(s.Messages) / float64(s.Epochs)
	s.EnergyPerEp = s.EnergyUJ / float64(s.Epochs)
	return s
}

// Beacon is the downstream per-epoch control record: the epoch number and,
// for MINT, the γ bound plus the current top-k membership. TAG and the
// baselines send it with γ = -Inf and no membership (just the epoch
// trigger), which costs them only the 8-byte fixed part.
type Beacon struct {
	Epoch model.Epoch
	Gamma model.Value
	TopK  []model.GroupID
}

// beaconFixedSize: epoch(4) + gamma fixed-point(4) + count(2).
const beaconFixedSize = 10

// The γ field reserves both fixed-point extremes as infinity sentinels:
// MinInt32 means −Inf ("no bound yet", the creation phase) and MaxInt32
// means +Inf ("prune everything"). Finite γ values are clamped one step
// inside the sentinels on encode, so a legitimate bound that quantizes to
// an extreme can never be mis-decoded as an infinity (and an infinite bound
// can never silently saturate into a finite one).
const (
	gammaNegInfFP model.FixedPoint = math.MinInt32
	gammaPosInfFP model.FixedPoint = math.MaxInt32
)

// encodeGamma maps a γ bound to its wire fixed-point, reserving the
// sentinels.
func encodeGamma(gamma model.Value) model.FixedPoint {
	switch {
	case math.IsInf(float64(gamma), -1):
		return gammaNegInfFP
	case math.IsInf(float64(gamma), 1):
		return gammaPosInfFP
	}
	fp := model.ToFixed(gamma)
	switch fp {
	case gammaNegInfFP:
		fp = gammaNegInfFP + 1 // clamp: sentinel reserved for −Inf
	case gammaPosInfFP:
		fp = gammaPosInfFP - 1 // clamp: sentinel reserved for +Inf
	}
	return fp
}

// decodeGamma is encodeGamma's inverse.
func decodeGamma(fp model.FixedPoint) model.Value {
	switch fp {
	case gammaNegInfFP:
		return model.Value(math.Inf(-1))
	case gammaPosInfFP:
		return model.Value(math.Inf(1))
	}
	return model.FromFixed(fp)
}

// EncodeBeacon serializes a beacon.
func EncodeBeacon(b Beacon) []byte {
	out := make([]byte, beaconFixedSize, beaconFixedSize+2*len(b.TopK))
	binary.LittleEndian.PutUint32(out[0:], uint32(b.Epoch))
	binary.LittleEndian.PutUint32(out[4:], uint32(encodeGamma(b.Gamma)))
	binary.LittleEndian.PutUint16(out[8:], uint16(len(b.TopK)))
	for _, g := range b.TopK {
		var gb [2]byte
		binary.LittleEndian.PutUint16(gb[:], uint16(g))
		out = append(out, gb[:]...)
	}
	return out
}

// DecodeBeacon parses a beacon payload.
func DecodeBeacon(p []byte) (Beacon, error) {
	if len(p) < beaconFixedSize {
		return Beacon{}, fmt.Errorf("topk: beacon too short (%d bytes)", len(p))
	}
	b := Beacon{
		Epoch: model.Epoch(binary.LittleEndian.Uint32(p[0:])),
		Gamma: decodeGamma(model.FixedPoint(binary.LittleEndian.Uint32(p[4:]))),
	}
	n := int(binary.LittleEndian.Uint16(p[8:]))
	if len(p) < beaconFixedSize+2*n {
		return Beacon{}, fmt.Errorf("topk: beacon claims %d groups, payload %d bytes", n, len(p))
	}
	for i := 0; i < n; i++ {
		b.TopK = append(b.TopK, model.GroupID(binary.LittleEndian.Uint16(p[beaconFixedSize+2*i:])))
	}
	return b, nil
}

// MinusInf is the γ value meaning "no bound yet" (creation phase).
func MinusInf() model.Value { return model.Value(math.Inf(-1)) }
