package topk

import (
	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/radio"
)

// QueryInstallSize is the on-air size of the one-time query installation
// record TinyDB floods when a continuous query is posted: query id, epoch
// duration, aggregate, group-by attribute, K, and the value range —
// 16 bytes of descriptor. After installation, epochs are clock-driven; no
// per-epoch downstream traffic is needed unless the operator has new
// control state (MINT's γ floods) to push.
const QueryInstallSize = 16

// InstallQuery floods the one-time query installation down the tree and
// returns the set of nodes reached.
func InstallQuery(t engine.Transport, e model.Epoch) map[model.NodeID]bool {
	payload := make([]byte, QueryInstallSize)
	return t.BroadcastDown(radio.KindCtrl, e, func(model.NodeID) []byte { return payload })
}
