package tja

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kspot/internal/model"
	"kspot/internal/radio"
	"kspot/internal/topk"
	"kspot/internal/topk/central"
	"kspot/internal/topk/topktest"
	"kspot/internal/trace"
)

func TestExactOnFigure1Network(t *testing.T) {
	net := topktest.Fig1Network(t)
	q := topk.HistoricQuery{K: 3, Agg: model.AggAvg, Window: 64}
	data := topk.HistoricData(topktest.WindowData(net, trace.NewDiurnal(3), q.Window))
	got, err := New().Run(net, q, data)
	if err != nil {
		t.Fatal(err)
	}
	want := topk.ExactHistoric(data, q)
	if !model.EqualAnswers(got, want) {
		t.Fatalf("tja = %v, want %v", got, want)
	}
}

func TestExactAcrossWorkloads(t *testing.T) {
	net := topktest.GridNetwork(t, 36, 6)
	sources := map[string]trace.Source{
		"diurnal": trace.NewDiurnal(7),
		"uniform": &trace.Uniform{Seed: 7, Min: 0, Max: 100},
		"walk":    trace.NewRandomWalk(7, 0, 100),
	}
	for name, src := range sources {
		for _, k := range []int{1, 4, 10} {
			for _, w := range []int{16, 128} {
				net.Reset()
				q := topk.HistoricQuery{K: k, Agg: model.AggAvg, Window: w}
				data := topk.HistoricData(topktest.WindowData(net, src, w))
				got, err := New().Run(net, q, data)
				if err != nil {
					t.Fatal(err)
				}
				want := topk.ExactHistoric(data, q)
				if !model.EqualAnswers(got, want) {
					t.Fatalf("%s k=%d w=%d: tja=%v want=%v", name, k, w, got, want)
				}
			}
		}
	}
}

func TestExactWithSum(t *testing.T) {
	net := topktest.Fig1Network(t)
	q := topk.HistoricQuery{K: 2, Agg: model.AggSum, Window: 32}
	data := topk.HistoricData(topktest.WindowData(net, trace.NewDiurnal(9), q.Window))
	got, err := New().Run(net, q, data)
	if err != nil {
		t.Fatal(err)
	}
	if want := topk.ExactHistoric(data, q); !model.EqualAnswers(got, want) {
		t.Fatalf("tja SUM = %v, want %v", got, want)
	}
}

func TestCheaperThanCentralized(t *testing.T) {
	q := topk.HistoricQuery{K: 4, Agg: model.AggAvg, Window: 256}
	netA := topktest.GridNetwork(t, 36, 6)
	data := topk.HistoricData(topktest.WindowData(netA, trace.NewDiurnal(5), q.Window))
	if _, err := New().Run(netA, q, data); err != nil {
		t.Fatal(err)
	}
	tjaBytes := netA.Counter.TotalTxBytes()

	netB := topktest.GridNetwork(t, 36, 6)
	if _, err := central.NewHistoric().Run(netB, q, data); err != nil {
		t.Fatal(err)
	}
	centralBytes := netB.Counter.TotalTxBytes()
	if tjaBytes >= centralBytes {
		t.Errorf("TJA bytes %d not below centralized %d", tjaBytes, centralBytes)
	}
	// The paper's claim is not marginal: expect a multiple.
	if 3*tjaBytes > centralBytes {
		t.Errorf("TJA %d vs centralized %d: less than 3x saving", tjaBytes, centralBytes)
	}
}

func TestPhaseAccounting(t *testing.T) {
	net := topktest.GridNetwork(t, 25, 5)
	q := topk.HistoricQuery{K: 3, Agg: model.AggAvg, Window: 64}
	data := topk.HistoricData(topktest.WindowData(net, &trace.Uniform{Seed: 2, Min: 0, Max: 100}, q.Window))
	if _, err := New().Run(net, q, data); err != nil {
		t.Fatal(err)
	}
	lb := net.Counter.TxBytes[radio.KindLB]
	hj := net.Counter.TxBytes[radio.KindHJ]
	if lb == 0 || hj == 0 {
		t.Errorf("phase bytes lb=%d hj=%d: both phases must show traffic", lb, hj)
	}
	if net.Counter.TxBytes[radio.KindData] != 0 {
		t.Error("TJA should not use the generic data kind")
	}
}

func TestSmallWindowSingleItem(t *testing.T) {
	net := topktest.Fig1Network(t)
	q := topk.HistoricQuery{K: 1, Agg: model.AggAvg, Window: 1}
	data := topk.HistoricData(topktest.WindowData(net, &trace.Uniform{Seed: 4, Min: 10, Max: 20}, 1))
	got, err := New().Run(net, q, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Group != 0 {
		t.Fatalf("single-item window = %v", got)
	}
}

func TestKLargerThanWindow(t *testing.T) {
	net := topktest.Fig1Network(t)
	q := topk.HistoricQuery{K: 10, Agg: model.AggAvg, Window: 4}
	data := topk.HistoricData(topktest.WindowData(net, &trace.Uniform{Seed: 4, Min: 0, Max: 100}, 4))
	got, err := New().Run(net, q, data)
	if err != nil {
		t.Fatal(err)
	}
	want := topk.ExactHistoric(data, q)
	if !model.EqualAnswers(got, want) {
		t.Fatalf("k>window: %v, want %v", got, want)
	}
}

func TestRejectsBadInput(t *testing.T) {
	net := topktest.Fig1Network(t)
	if _, err := New().Run(net, topk.HistoricQuery{K: 0, Agg: model.AggAvg, Window: 4}, nil); err == nil {
		t.Error("bad query accepted")
	}
	q := topk.HistoricQuery{K: 1, Agg: model.AggAvg, Window: 4}
	if _, err := New().Run(net, q, topk.HistoricData{3: {1, 2}}); err == nil {
		t.Error("mis-sized data accepted")
	}
}

// Property: TJA equals the exact oracle for random windows, k and skew.
func TestExactProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test in -short mode")
	}
	net := topktest.GridNetwork(t, 16, 4)
	f := func(seed int64, kRaw, wRaw uint8) bool {
		k := 1 + int(kRaw)%12
		w := 4 + int(wRaw)%120
		net.Reset()
		q := topk.HistoricQuery{K: k, Agg: model.AggAvg, Window: w}
		data := topk.HistoricData(topktest.WindowData(net, &trace.Uniform{Seed: seed, Min: 0, Max: 100}, w))
		got, err := New().Run(net, q, data)
		if err != nil {
			return false
		}
		return model.EqualAnswers(got, topk.ExactHistoric(data, q))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestName(t *testing.T) {
	if New().Name() != "tja" {
		t.Error("name")
	}
}

// TestQuantizedTieAdversarial hammers the K-th-boundary tie rule: values
// drawn from a few centi-levels straddling AVG rounding boundaries make
// quantization collapse distinct sums into score ties constantly, which
// is exactly where a sum-space clean-up cut (`ub >= tau` on raw sums)
// diverges from the oracle — the tie goes to the smaller instant id, and
// a dropped candidate can be that smaller id. Seeded, so a regression
// reproduces byte-for-byte.
func TestQuantizedTieAdversarial(t *testing.T) {
	net := topktest.Fig1Network(t)
	rng := rand.New(rand.NewSource(1))
	levels := []model.Value{1.99, 2.00, 2.01, 2.02}
	for trial := 0; trial < 500; trial++ {
		w := 2 + rng.Intn(3)
		k := 1 + rng.Intn(2)
		nodes := 3 + rng.Intn(2)
		data := topk.HistoricData{}
		for n := 1; n <= nodes; n++ {
			s := make([]model.Value, w)
			for i := range s {
				s[i] = levels[rng.Intn(len(levels))]
			}
			data[model.NodeID(n)] = s
		}
		q := topk.HistoricQuery{K: k, Agg: model.AggAvg, Window: w}
		net.Reset()
		got, err := New().Run(net, q, data)
		if err != nil {
			t.Fatal(err)
		}
		if want := topk.ExactHistoric(data, q); !model.EqualAnswers(got, want) {
			t.Fatalf("trial %d (w=%d k=%d): tja=%v oracle=%v data=%v", trial, w, k, got, want, data)
		}
	}
}

// TestKthBoundaryTieRegression pins the concrete counterexample the
// adversarial sweep surfaced against the old sum-space clean-up cut:
// instant 0's upper bound is strictly below τ as a raw sum, but AVG over
// three nodes quantizes both to 2.00 — a tie the system's total order
// breaks toward instant 0, which the sum-space rule silently dropped.
func TestKthBoundaryTieRegression(t *testing.T) {
	net := topktest.Fig1Network(t)
	q := topk.HistoricQuery{K: 1, Agg: model.AggAvg, Window: 4}
	data := topk.HistoricData{
		1: {1.99, 2.00, 2.00, 2.00},
		2: {2.00, 1.99, 2.00, 2.01},
		3: {2.00, 2.01, 1.99, 2.00},
	}
	want := topk.ExactHistoric(data, q)
	if len(want) != 1 || want[0].Group != 0 {
		t.Fatalf("oracle did not tie toward instant 0: %v", want)
	}
	got, err := New().Run(net, q, data)
	if err != nil {
		t.Fatal(err)
	}
	if !model.EqualAnswers(got, want) {
		t.Fatalf("K-th boundary tie dropped: tja=%v, oracle=%v", got, want)
	}
}
