// Package tja implements the Threshold Join Algorithm (Zeinalipour-Yazti et
// al., DMSN 2005), the historic top-k operator KSpot routes WITH HISTORY
// queries over vertically fragmented data to. The score of a time instant
// is the aggregate of that instant's readings across all n nodes, so no
// node can rank instants alone; TJA resolves the ranking in three phases,
// joining partial results *inside* the network instead of shipping every
// list to the sink:
//
//  1. LB (Lower Bound) phase: every node's local top-k *id set* is unioned
//     hierarchically up the tree; the sink obtains L_sink (o ≥ K ids).
//  2. HJ (Hierarchical Join) phase: L_sink is multicast down. Each node i
//     computes its threshold θ_i = min local score among L_sink items and
//     reports every tuple scoring at least θ_i; reports are sum-joined in
//     the network. Every L_sink item is by construction reported by every
//     node, so the sink knows those scores exactly; for any other item x
//     the per-subtree θ sums yield the upper bound
//     UB(x) = sum(x) + Σ_{i ∉ reporters(x)} θ_i.
//  3. CL (Clean-up) phase: items whose upper bound reaches the K-th exact
//     score are fetched exactly (one targeted sweep); the final Top-K is
//     then exact.
//
// Phase traffic is tagged radio.KindLB / KindHJ / KindCL so the System
// Panel (and experiment E8) can report per-phase bytes.
package tja

import (
	"encoding/binary"
	"fmt"
	"sort"

	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/radio"
	"kspot/internal/topk"
)

// Operator is the TJA historic operator.
type Operator struct{}

// New returns a TJA operator.
func New() *Operator { return &Operator{} }

// Name implements topk.HistoricOperator.
func (o *Operator) Name() string { return "tja" }

// item is the sink-side bookkeeping for one time instant during HJ/CL.
type item struct {
	sumFP    int64 // joined sum of reported values, centi-units
	coverage int   // how many nodes reported it
	thrFP    int64 // Σ θ_i over the nodes that reported it
}

// hjRecord is the in-network join record for one item.
const hjRecordSize = 12 // id(2) + sum(4) + coverage(2) + thrsum(4)

// hjTrailerSize carries the subtree totals: Σθ(4) + nodeCount(2).
const hjTrailerSize = 6

// Run implements topk.HistoricOperator.
func (o *Operator) Run(net engine.Transport, q topk.HistoricQuery, data topk.HistoricData) ([]model.Answer, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := data.Validate(q); err != nil {
		return nil, err
	}

	// ---- Phase 1: LB — hierarchical union of local top-k id sets. ----
	lSink := o.lbPhase(net, q, data)
	if len(lSink) == 0 {
		return nil, fmt.Errorf("tja: LB phase returned no ids (no data reached the sink)")
	}

	// ---- Phase 2: HJ — threshold-driven hierarchical join. ----
	items, totalThrFP, covered := o.hjPhase(net, q, data, lSink)

	// Exact scores for fully covered items; τ = K-th among them (as sums).
	n := covered
	exact := make(map[model.GroupID]int64)
	for id, it := range items {
		if it.coverage >= n {
			exact[id] = it.sumFP
		}
	}
	tau := kthSum(exact, q.K)

	// ---- Phase 3: CL — fetch exact values for unresolved candidates. ----
	//
	// The cut-off compares in final quantized-score space, not sum space:
	// under AVG the division can quantize two distinct sums into a tie,
	// and the system's total order then breaks that tie by instant id — an
	// item whose upper bound is strictly below τ as a sum can still TIE the
	// K-th answer as a score and win on id, so a sum-space `ub >= tau`
	// silently drops it (the K-th-boundary tie bug). FinalScore is
	// monotone, so comparing scores only ever admits more candidates.
	var candidates []model.GroupID
	tauScore := topk.FinalScore(tau, n, q.Agg)
	for id, it := range items {
		if it.coverage >= n {
			continue
		}
		ub := it.sumFP + (totalThrFP - it.thrFP)
		if topk.FinalScore(ub, n, q.Agg) >= tauScore {
			candidates = append(candidates, id)
		}
	}
	// Items no node reported at all are bounded by Σθ: each of the n
	// nodes' values sits at least one centi-unit below its θ_i, so their
	// sum is at most Σθ − n. That bound is strictly below τ as a sum, but
	// can still tie it as a quantized score — when it does, every unseen
	// instant joins the clean-up fetch (rare, bounded by the window).
	if n > 0 && topk.FinalScore(totalThrFP-int64(n), n, q.Agg) >= tauScore {
		for t := 0; t < q.Window; t++ {
			if _, seen := items[model.GroupID(t)]; !seen {
				candidates = append(candidates, model.GroupID(t))
			}
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	if len(candidates) > 0 {
		// The CL sweep is the shared targeted-fetch primitive — the same
		// code the federation tier's phase 2 runs, so their accounting can
		// never drift apart.
		for id, sumFP := range topk.FetchHistoricSums(net, data, candidates) {
			exact[id] = sumFP
		}
	}

	answers := make([]model.Answer, 0, len(exact))
	for id, sumFP := range exact {
		answers = append(answers, model.Answer{Group: id, Score: topk.FinalScore(sumFP, n, q.Agg)})
	}
	model.SortAnswers(answers)
	if len(answers) > q.K {
		answers = answers[:q.K]
	}
	return answers, nil
}

// lbPhase unions local top-k id sets up the tree and returns L_sink.
func (o *Operator) lbPhase(net engine.Transport, q topk.HistoricQuery, data topk.HistoricData) map[model.GroupID]bool {
	inbox := make(map[model.NodeID]map[model.GroupID]bool)
	for _, node := range net.Routing().PostOrder() {
		ids := inbox[node]
		if ids == nil {
			ids = make(map[model.GroupID]bool)
		}
		if series, ok := data[node]; ok {
			for _, t := range topk.LocalTopK(series, q.K) {
				ids[model.GroupID(t)] = true
			}
		}
		if node == net.Routing().Root {
			return ids
		}
		if len(ids) == 0 || !net.Alive(node) {
			continue
		}
		payload := encodeIDs(ids)
		if net.SendUp(node, radio.KindLB, 0, payload) {
			parent := net.Routing().Parent[node]
			if inbox[parent] == nil {
				inbox[parent] = make(map[model.GroupID]bool)
			}
			for id := range ids {
				inbox[parent][id] = true
			}
		}
	}
	return nil
}

// hjPhase multicasts L_sink, joins threshold reports up the tree, and
// returns the sink's item map, the network-wide Σθ, and the number of nodes
// that participated.
func (o *Operator) hjPhase(net engine.Transport, q topk.HistoricQuery, data topk.HistoricData, lSink map[model.GroupID]bool) (map[model.GroupID]*item, int64, int) {
	lPayload := encodeIDs(lSink)
	reached := net.BroadcastDown(radio.KindHJ, 0, func(model.NodeID) []byte { return lPayload })

	type subtree struct {
		items map[model.GroupID]*item
		thrFP int64
		nodes int
	}
	inbox := make(map[model.NodeID]*subtree)
	var sinkState *subtree
	for _, node := range net.Routing().PostOrder() {
		st := inbox[node]
		if st == nil {
			st = &subtree{items: make(map[model.GroupID]*item)}
		}
		series, hasData := data[node]
		if hasData && reached[node] && node != net.Routing().Root {
			// θ_i = min local value among L_sink items.
			thrFP := int64(1<<62 - 1)
			for id := range lSink {
				if int(id) < len(series) {
					if v := int64(model.ToFixed(series[id])); v < thrFP {
						thrFP = v
					}
				}
			}
			st.thrFP += thrFP
			st.nodes++
			for t, v := range series {
				vFP := int64(model.ToFixed(v))
				if vFP >= thrFP {
					it := st.items[model.GroupID(t)]
					if it == nil {
						it = &item{}
						st.items[model.GroupID(t)] = it
					}
					it.sumFP += vFP
					it.coverage++
					it.thrFP += thrFP
				}
			}
		}
		if node == net.Routing().Root {
			sinkState = st
			break
		}
		if st.nodes == 0 || !net.Alive(node) {
			continue
		}
		payload := encodeHJ(st.items, st.thrFP, st.nodes)
		if net.SendUp(node, radio.KindHJ, 0, payload) {
			parent := net.Routing().Parent[node]
			pst := inbox[parent]
			if pst == nil {
				pst = &subtree{items: make(map[model.GroupID]*item)}
				inbox[parent] = pst
			}
			pst.thrFP += st.thrFP
			pst.nodes += st.nodes
			for id, it := range st.items {
				dst := pst.items[id]
				if dst == nil {
					dst = &item{}
					pst.items[id] = dst
				}
				dst.sumFP += it.sumFP
				dst.coverage += it.coverage
				dst.thrFP += it.thrFP
			}
		}
	}
	if sinkState == nil {
		return map[model.GroupID]*item{}, 0, 0
	}
	return sinkState.items, sinkState.thrFP, sinkState.nodes
}

// kthSum returns the K-th largest sum (ties by smaller id), or the minimum
// int64 when fewer than K sums exist.
func kthSum(sums map[model.GroupID]int64, k int) int64 {
	if len(sums) < k {
		return -(1<<62 - 1)
	}
	type pair struct {
		id model.GroupID
		s  int64
	}
	ps := make([]pair, 0, len(sums))
	for id, s := range sums {
		ps = append(ps, pair{id, s})
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].s != ps[j].s {
			return ps[i].s > ps[j].s
		}
		return ps[i].id < ps[j].id
	})
	return ps[k-1].s
}

// encodeIDs serializes an id set, sorted, 2 bytes per id.
func encodeIDs(ids map[model.GroupID]bool) []byte {
	sorted := make([]model.GroupID, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]byte, 0, 2*len(sorted))
	for _, id := range sorted {
		var b [2]byte
		binary.LittleEndian.PutUint16(b[:], uint16(id))
		out = append(out, b[:]...)
	}
	return out
}

// encodeHJ serializes the hierarchical-join records plus the subtree
// trailer. Only the size matters to the simulator (the join is computed on
// the decoded structures directly), but the encoding is real so that byte
// accounting matches what a mote would transmit.
func encodeHJ(items map[model.GroupID]*item, thrFP int64, nodes int) []byte {
	ids := make([]model.GroupID, 0, len(items))
	for id := range items {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]byte, 0, len(ids)*hjRecordSize+hjTrailerSize)
	for _, id := range ids {
		it := items[id]
		var b [hjRecordSize]byte
		binary.LittleEndian.PutUint16(b[0:], uint16(id))
		binary.LittleEndian.PutUint32(b[2:], uint32(int32(clampI32(it.sumFP))))
		binary.LittleEndian.PutUint16(b[6:], uint16(it.coverage))
		binary.LittleEndian.PutUint32(b[8:], uint32(int32(clampI32(it.thrFP))))
		out = append(out, b[:]...)
	}
	var tr [hjTrailerSize]byte
	binary.LittleEndian.PutUint32(tr[0:], uint32(int32(clampI32(thrFP))))
	binary.LittleEndian.PutUint16(tr[4:], uint16(nodes))
	return append(out, tr[:]...)
}

func clampI32(v int64) int64 {
	const max = 1<<31 - 1
	const min = -(1 << 31)
	if v > max {
		return max
	}
	if v < min {
		return min
	}
	return v
}
