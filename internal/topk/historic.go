package topk

import (
	"fmt"
	"sort"

	"kspot/internal/engine"
	"kspot/internal/model"
)

// HistoricQuery is the paper's vertically-fragmented historic form:
//
//	SELECT TOP K timeinstant, AGG(attr) FROM sensors WITH HISTORY w
//
// Every node buffers its last Window readings; the score of a time instant
// is the aggregate of that instant's readings across all nodes. Items are
// identified by their window offset (0 = oldest), carried as model.GroupID
// on the wire since both are uint16 identifiers.
type HistoricQuery struct {
	K      int
	Agg    model.AggKind
	Window int
}

// Validate rejects malformed queries.
func (q HistoricQuery) Validate() error {
	if q.K < 1 {
		return fmt.Errorf("topk: K must be >= 1, got %d", q.K)
	}
	if q.Window < 1 {
		return fmt.Errorf("topk: window must be >= 1, got %d", q.Window)
	}
	if q.Window > 1<<16 {
		return fmt.Errorf("topk: window %d exceeds the 16-bit item id space", q.Window)
	}
	if q.Agg != model.AggAvg && q.Agg != model.AggSum {
		return fmt.Errorf("topk: historic queries support AVG and SUM, got %v", q.Agg)
	}
	return nil
}

// HistoricData is each node's buffered window: series[node][t] is the value
// sensed by node at window offset t. All series have length Window.
type HistoricData map[model.NodeID][]model.Value

// Validate checks the data matches the query's window.
func (d HistoricData) Validate(q HistoricQuery) error {
	for n, s := range d {
		if len(s) != q.Window {
			return fmt.Errorf("topk: node %d has %d samples, window is %d", n, len(s), q.Window)
		}
	}
	return nil
}

// HistoricOperator is a distributed top-k algorithm for historic queries:
// a one-shot protocol over the buffered windows.
type HistoricOperator interface {
	Name() string
	// Run executes the protocol on the transport and returns the sink's
	// ranked answers (item = window offset, score = aggregate).
	Run(t engine.Transport, q HistoricQuery, data HistoricData) ([]model.Answer, error)
}

// ExactHistoric computes the ground-truth historic answer centrally. Sums
// accumulate in fixed-point centi-units, the same arithmetic the
// distributed operators use, so that the oracle is bit-identical regardless
// of accumulation order.
func ExactHistoric(data HistoricData, q HistoricQuery) []model.Answer {
	sums := make([]int64, q.Window)
	counts := make([]uint32, q.Window)
	for _, series := range data {
		for t, v := range series {
			sums[t] += int64(model.ToFixed(v))
			counts[t]++
		}
	}
	answers := make([]model.Answer, 0, q.Window)
	for t := 0; t < q.Window; t++ {
		if counts[t] == 0 {
			continue
		}
		score := model.Value(sums[t]) / 100
		if q.Agg == model.AggAvg {
			score /= model.Value(counts[t])
		}
		answers = append(answers, model.Answer{Group: model.GroupID(t), Score: model.Quantize(score)})
	}
	model.SortAnswers(answers)
	if len(answers) > q.K {
		answers = answers[:q.K]
	}
	return answers
}

// LocalTopK returns the indices of a node's k highest local values, ranked,
// ties toward the smaller index — the per-node seed of TJA's LB phase and
// TPUT's phase one.
func LocalTopK(series []model.Value, k int) []int {
	idx := make([]int, len(series))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		va, vb := model.Quantize(series[idx[a]]), model.Quantize(series[idx[b]])
		if va != vb {
			return va > vb
		}
		return idx[a] < idx[b]
	})
	if len(idx) > k {
		idx = idx[:k]
	}
	return idx
}
