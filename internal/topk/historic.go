package topk

import (
	"fmt"
	"sort"

	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/radio"
)

// HistoricQuery is the paper's vertically-fragmented historic form:
//
//	SELECT TOP K timeinstant, AGG(attr) FROM sensors WITH HISTORY w
//
// Every node buffers its last Window readings; the score of a time instant
// is the aggregate of that instant's readings across all nodes. Items are
// identified by their window offset (0 = oldest), carried as model.GroupID
// on the wire since both are uint16 identifiers.
type HistoricQuery struct {
	K      int
	Agg    model.AggKind
	Window int
}

// Validate rejects malformed queries.
func (q HistoricQuery) Validate() error {
	if q.K < 1 {
		return fmt.Errorf("topk: K must be >= 1, got %d", q.K)
	}
	if q.Window < 1 {
		return fmt.Errorf("topk: window must be >= 1, got %d", q.Window)
	}
	if q.Window > 1<<16 {
		return fmt.Errorf("topk: window %d exceeds the 16-bit item id space", q.Window)
	}
	if q.Agg != model.AggAvg && q.Agg != model.AggSum {
		return fmt.Errorf("topk: historic queries support AVG and SUM, got %v", q.Agg)
	}
	return nil
}

// HistoricData is each node's buffered window: series[node][t] is the value
// sensed by node at window offset t. All series have length Window.
type HistoricData map[model.NodeID][]model.Value

// Validate checks the data matches the query's window.
func (d HistoricData) Validate(q HistoricQuery) error {
	for n, s := range d {
		if len(s) != q.Window {
			return fmt.Errorf("topk: node %d has %d samples, window is %d", n, len(s), q.Window)
		}
	}
	return nil
}

// HistoricOperator is a distributed top-k algorithm for historic queries:
// a one-shot protocol over the buffered windows.
type HistoricOperator interface {
	Name() string
	// Run executes the protocol on the transport and returns the sink's
	// ranked answers (item = window offset, score = aggregate).
	Run(t engine.Transport, q HistoricQuery, data HistoricData) ([]model.Answer, error)
}

// ExactHistoric computes the ground-truth historic answer centrally. Sums
// accumulate in fixed-point centi-units, the same arithmetic the
// distributed operators use, so that the oracle is bit-identical regardless
// of accumulation order.
func ExactHistoric(data HistoricData, q HistoricQuery) []model.Answer {
	sums := make([]int64, q.Window)
	counts := make([]uint32, q.Window)
	for _, series := range data {
		for t, v := range series {
			sums[t] += int64(model.ToFixed(v))
			counts[t]++
		}
	}
	answers := make([]model.Answer, 0, q.Window)
	for t := 0; t < q.Window; t++ {
		if counts[t] == 0 {
			continue
		}
		answers = append(answers, model.Answer{Group: model.GroupID(t), Score: FinalScore(sums[t], int(counts[t]), q.Agg)})
	}
	model.SortAnswers(answers)
	if len(answers) > q.K {
		answers = answers[:q.K]
	}
	return answers
}

// FinalScore converts an exact fixed-point (centi-unit) sum over n
// participating readings into the score the historic pipeline reports:
// the sum in engineering units, divided by n for AVG, quantized to wire
// resolution. Every historic component — the central oracle, the
// distributed operators' final rankings and their candidate cut-offs, and
// the federation tier's merged threshold — must convert through this one
// function, in this exact operation order, or two exact sums that differ
// by less than the wire resolution after an AVG division would rank
// differently in different components (the K-th-boundary tie class of
// bug: quantization collapses distinct sums into a tie that the system's
// total order then breaks by group id).
func FinalScore(sumFP int64, n int, agg model.AggKind) model.Value {
	score := model.Value(sumFP) / 100
	if agg == model.AggAvg {
		score /= model.Value(n)
	}
	return model.Quantize(score)
}

// FetchHistoricSums runs one CL-style targeted sweep over a network: the
// instant-id list is multicast down the routing tree and every node's
// exact fixed-point values for those instants are sum-joined back up in
// post-order. It returns the network-wide sums for the requested ids.
//
// This is the coordinator tier's phase-2 primitive on a federated
// historic run — "ship your exact local sums for these instants" — and it
// IS TJA's clean-up phase (tja delegates here), so the shard-side radio
// accounting of a targeted fetch is identical to the operator's own CL
// phase by construction, not by parallel maintenance. Duplicate ids are
// collapsed before anything travels.
func FetchHistoricSums(net engine.Transport, data HistoricData, ids []model.GroupID) map[model.GroupID]int64 {
	if len(ids) == 0 {
		return map[model.GroupID]int64{}
	}
	set := make(map[model.GroupID]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	sorted := make([]model.GroupID, 0, len(set))
	for id := range set {
		sorted = append(sorted, id)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	payload := make([]byte, 0, 2*len(sorted))
	for _, id := range sorted {
		payload = append(payload, byte(id), byte(id>>8))
	}
	reached := net.BroadcastDown(radio.KindCL, 0, func(model.NodeID) []byte { return payload })

	inbox := make(map[model.NodeID]map[model.GroupID]int64)
	for _, node := range net.Routing().PostOrder() {
		sums := inbox[node]
		if sums == nil {
			sums = make(map[model.GroupID]int64)
		}
		if series, ok := data[node]; ok && reached[node] && node != net.Routing().Root {
			for _, id := range sorted {
				if int(id) < len(series) {
					sums[id] += int64(model.ToFixed(series[id]))
				}
			}
		}
		if node == net.Routing().Root {
			return sums
		}
		if len(sums) == 0 || !net.Alive(node) {
			continue
		}
		out := make([]byte, 0, len(sums)*model.AnswerWireSize)
		up := make([]model.GroupID, 0, len(sums))
		for id := range sums {
			up = append(up, id)
		}
		sort.Slice(up, func(i, j int) bool { return up[i] < up[j] })
		for _, id := range up {
			out = model.AppendAnswer(out, model.Answer{Group: id, Score: model.Value(sums[id]) / 100})
		}
		if net.SendUp(node, radio.KindCL, 0, out) {
			parent := net.Routing().Parent[node]
			if inbox[parent] == nil {
				inbox[parent] = make(map[model.GroupID]int64)
			}
			for id, s := range sums {
				inbox[parent][id] += s
			}
		}
	}
	return map[model.GroupID]int64{}
}

// LocalTopK returns the indices of a node's k highest local values, ranked,
// ties toward the smaller index — the per-node seed of TJA's LB phase and
// TPUT's phase one.
func LocalTopK(series []model.Value, k int) []int {
	idx := make([]int, len(series))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		va, vb := model.Quantize(series[idx[a]]), model.Quantize(series[idx[b]])
		if va != vb {
			return va > vb
		}
		return idx[a] < idx[b]
	})
	if len(idx) > k {
		idx = idx[:k]
	}
	return idx
}
