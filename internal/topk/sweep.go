package topk

import (
	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/radio"
)

// Sweep runs one TAG-style leaf-to-root acquisition sweep on the given
// substrate — see engine.Transport.Sweep for the contract. It exists so
// operator code reads symmetrically with InstallQuery and SenseEpoch; the
// actual execution (post-order loop on the simulator, goroutine fan-in on
// the live deployment) belongs to the transport.
func Sweep(t engine.Transport, e model.Epoch, kind radio.MsgKind,
	readings map[model.NodeID]model.Reading,
	prune func(node model.NodeID, v *model.View) *model.View) *model.View {
	return t.Sweep(e, kind, readings, prune)
}
