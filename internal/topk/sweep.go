package topk

import (
	"kspot/internal/model"
	"kspot/internal/radio"
	"kspot/internal/sim"
)

// Sweep runs one TAG-style leaf-to-root acquisition sweep: in post-order,
// every node merges its own reading (if any) with the views received from
// its children, applies prune to obtain the view it will transmit, and
// sends the encoded result one hop up. Nodes whose pruned view is empty
// suppress their packet entirely — that suppression is where in-network
// top-k saves messages, not just bytes.
//
// prune receives the transmitting node and its full local view V_i and
// returns the view to transmit V'_i (it may return the input unchanged, a
// subset, or nil for "send nothing"). The sink's merged view is returned.
func Sweep(net *sim.Network, e model.Epoch, kind radio.MsgKind,
	readings map[model.NodeID]model.Reading,
	prune func(node model.NodeID, v *model.View) *model.View) *model.View {

	inbox := make(map[model.NodeID]*model.View)
	for _, node := range net.Tree.PostOrder() {
		v := model.NewView()
		if r, ok := readings[node]; ok {
			v.Add(r)
		}
		if got := inbox[node]; got != nil {
			v.MergeView(got)
		}
		if node == net.Tree.Root {
			return v
		}
		out := v
		if prune != nil {
			out = prune(node, v)
		}
		if out == nil || out.Len() == 0 {
			continue
		}
		if !net.Alive(node) {
			continue
		}
		if net.SendUp(node, kind, e, model.EncodeView(out)) {
			parent := net.Tree.Parent[node]
			if inbox[parent] == nil {
				inbox[parent] = model.NewView()
			}
			inbox[parent].MergeView(out)
		}
	}
	// Unreachable: PostOrder always ends at the root.
	return model.NewView()
}
