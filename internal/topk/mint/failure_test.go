package mint

import (
	"testing"

	"kspot/internal/model"
	"kspot/internal/sim"
	"kspot/internal/topk"
	"kspot/internal/topk/topktest"
	"kspot/internal/trace"
)

// TestNodeDeathDegradesGracefully: when nodes run out of energy mid-run the
// operator must keep serving answers (stale or partial) without error.
func TestNodeDeathDegradesGracefully(t *testing.T) {
	opts := sim.DefaultOptions()
	opts.BudgetJoules = 0.02 // a few hundred transmissions per node
	net := topktest.Fig1NetworkOpts(t, opts)
	src := trace.Figure1Source()
	r := &topk.Runner{Net: net, Source: src, Op: New(), Query: topk.SnapshotQuery{K: 1, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}}
	results, err := r.Run(400)
	if err != nil {
		t.Fatal(err)
	}
	// Someone must actually have died for this test to mean anything.
	dead := 0
	for _, id := range net.Placement.SensorNodes() {
		if !net.Alive(id) {
			dead++
		}
	}
	if dead == 0 {
		t.Skip("budget too generous; no deaths")
	}
	// Answers keep flowing to the end.
	last := results[len(results)-1]
	if len(last.Answers) == 0 {
		t.Fatal("no answers after node deaths")
	}
}

// TestReparentingAfterFailure: removing a failed relay and re-attaching the
// operator on the repaired tree must restore exactness for the surviving
// nodes.
func TestReparentingAfterFailure(t *testing.T) {
	net := topktest.GridNetwork(t, 36, 6)
	src := trace.NewRoomActivity(3, net.Placement.Groups, 6)
	q := topk.SnapshotQuery{K: 2, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}
	op := New()
	r := &topk.Runner{Net: net, Source: src, Op: op, Query: q}
	if _, err := r.Run(5); err != nil {
		t.Fatal(err)
	}

	// Kill an interior relay and repair the tree.
	var victim model.NodeID
	for n, cs := range net.Tree.Children {
		if n != model.Sink && len(cs) > 0 {
			victim = n
			break
		}
	}
	if victim == 0 {
		t.Skip("no interior node to kill")
	}
	orphans := net.Tree.RemoveNode(victim, net.Links)
	if err := net.Tree.Validate(); err != nil {
		t.Fatalf("repaired tree invalid: %v", err)
	}
	// Remove the victim (and any unreachable orphans) from the placement
	// so group sizes reflect the survivors — the Configuration Panel's
	// view after the failure report.
	delete(net.Placement.Positions, victim)
	delete(net.Placement.Groups, victim)
	for _, o := range orphans {
		delete(net.Placement.Positions, o)
		delete(net.Placement.Groups, o)
	}

	// Re-attach (MINT recomputes group sizes and masters) and run on.
	if err := op.Attach(net, q); err != nil {
		t.Fatal(err)
	}
	for e := model.Epoch(100); e < 120; e++ {
		readings := topk.SenseEpoch(net, src, e)
		got, err := op.Epoch(e, readings)
		if err != nil {
			t.Fatal(err)
		}
		want := topk.ExactSnapshot(readings, q)
		if !model.EqualAnswers(got, want) {
			t.Fatalf("epoch %d after repair: got %v want %v", e, got, want)
		}
	}
}

// TestLossyStillServes: heavy loss must never wedge the operator.
func TestLossyStillServes(t *testing.T) {
	opts := sim.DefaultOptions()
	opts.Radio.LossRate = 0.4
	opts.Radio.MaxRetries = 1
	opts.Radio.Seed = 17
	net := topktest.Fig1NetworkOpts(t, opts)
	r := &topk.Runner{Net: net, Source: trace.Figure1Source(), Op: New(), Query: topk.SnapshotQuery{K: 2, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}}
	results, err := r.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	served := 0
	for _, res := range results {
		if len(res.Answers) > 0 {
			served++
		}
	}
	if served < 40 {
		t.Fatalf("served answers on only %d/50 lossy epochs", served)
	}
}
