package mint

import (
	"testing"

	"kspot/internal/model"
	"kspot/internal/sim"
	"kspot/internal/stats"
	"kspot/internal/topk"
	"kspot/internal/topk/topktest"
	"kspot/internal/topo"
	"kspot/internal/trace"
)

// TestNodeDeathDegradesGracefully: when nodes run out of energy mid-run the
// operator must keep serving answers (stale or partial) without error.
func TestNodeDeathDegradesGracefully(t *testing.T) {
	opts := sim.DefaultOptions()
	opts.BudgetJoules = 0.02 // a few hundred transmissions per node
	net := topktest.Fig1NetworkOpts(t, opts)
	src := trace.Figure1Source()
	r := &topk.Runner{Net: net, Source: src, Op: New(), Query: topk.SnapshotQuery{K: 1, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}}
	results, err := r.Run(400)
	if err != nil {
		t.Fatal(err)
	}
	// Someone must actually have died for this test to mean anything.
	dead := 0
	for _, id := range net.Placement.SensorNodes() {
		if !net.Alive(id) {
			dead++
		}
	}
	if dead == 0 {
		t.Skip("budget too generous; no deaths")
	}
	// Answers keep flowing to the end.
	last := results[len(results)-1]
	if len(last.Answers) == 0 {
		t.Fatal("no answers after node deaths")
	}
}

// TestReparentingAfterFailure: removing a failed relay and re-attaching the
// operator on the repaired tree must restore exactness for the surviving
// nodes.
func TestReparentingAfterFailure(t *testing.T) {
	net := topktest.GridNetwork(t, 36, 6)
	src := trace.NewRoomActivity(3, net.Placement.Groups, 6)
	q := topk.SnapshotQuery{K: 2, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}
	op := New()
	r := &topk.Runner{Net: net, Source: src, Op: op, Query: q}
	if _, err := r.Run(5); err != nil {
		t.Fatal(err)
	}

	// Kill an interior relay and repair the tree.
	var victim model.NodeID
	for n, cs := range net.Tree.Children {
		if n != model.Sink && len(cs) > 0 {
			victim = n
			break
		}
	}
	if victim == 0 {
		t.Skip("no interior node to kill")
	}
	orphans := net.Tree.RemoveNode(victim, net.Links)
	if err := net.Tree.Validate(); err != nil {
		t.Fatalf("repaired tree invalid: %v", err)
	}
	// Remove the victim (and any unreachable orphans) from the placement
	// so group sizes reflect the survivors — the Configuration Panel's
	// view after the failure report.
	delete(net.Placement.Positions, victim)
	delete(net.Placement.Groups, victim)
	for _, o := range orphans {
		delete(net.Placement.Positions, o)
		delete(net.Placement.Groups, o)
	}

	// Re-attach (MINT recomputes group sizes and masters) and run on.
	if err := op.Attach(net, q); err != nil {
		t.Fatal(err)
	}
	for e := model.Epoch(100); e < 120; e++ {
		readings := topk.SenseEpoch(net, src, e)
		got, err := op.Epoch(e, readings)
		if err != nil {
			t.Fatal(err)
		}
		want := topk.ExactSnapshot(readings, q)
		if !model.EqualAnswers(got, want) {
			t.Fatalf("epoch %d after repair: got %v want %v", e, got, want)
		}
	}
}

// TestLossyStillServes: heavy loss must never wedge the operator.
func TestLossyStillServes(t *testing.T) {
	opts := sim.DefaultOptions()
	opts.Radio.LossRate = 0.4
	opts.Radio.MaxRetries = 1
	opts.Radio.Seed = 17
	net := topktest.Fig1NetworkOpts(t, opts)
	r := &topk.Runner{Net: net, Source: trace.Figure1Source(), Op: New(), Query: topk.SnapshotQuery{K: 2, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}}
	results, err := r.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	served := 0
	for _, res := range results {
		if len(res.Answers) > 0 {
			served++
		}
	}
	if served < 40 {
		t.Fatalf("served answers on only %d/50 lossy epochs", served)
	}
}

// TestOrphanRecallAccounting is the churn-scenario pin of the orphan
// report's contract: when a relay dies and its subtree cannot re-attach,
// the orphaned nodes keep sensing (they are alive, the oracle sees them)
// but their readings can no longer reach the sink — so the loss must
// surface through recall accounting (stats.Score), not as a silently
// shrunken answer set that still claims exactness.
func TestOrphanRecallAccounting(t *testing.T) {
	// Sink 0 — relay 2 — {3, 4 — 5}: the loud room (group 2) hangs
	// entirely behind relay 2; node 6 (group 1, quiet) attaches to the
	// sink directly. Killing relay 2 strands the loud room.
	p := topo.NewPlacement()
	pts := map[model.NodeID]topo.Point{0: {X: 0, Y: 0}, 2: {X: 10, Y: 0}, 3: {X: 20, Y: -5}, 4: {X: 20, Y: 5}, 5: {X: 30, Y: 5}, 6: {X: 0, Y: 10}}
	for id, pt := range pts {
		p.Positions[id] = pt
	}
	p.Groups = map[model.NodeID]model.GroupID{2: 1, 3: 2, 4: 2, 5: 2, 6: 1}
	links := topo.NewLinks()
	for _, e := range [][2]model.NodeID{{0, 2}, {2, 3}, {2, 4}, {4, 5}, {3, 5}, {0, 6}} {
		links.Connect(e[0], e[1])
	}
	tree := &topo.Tree{
		Parent:   map[model.NodeID]model.NodeID{2: 0, 3: 2, 4: 2, 5: 4, 6: 0},
		Children: map[model.NodeID][]model.NodeID{0: {2, 6}, 2: {3, 4}, 4: {5}},
		Depth:    map[model.NodeID]int{0: 0, 2: 1, 3: 2, 4: 2, 5: 3, 6: 1},
		Root:     model.Sink,
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	net := sim.FromTree(p, links, tree, sim.DefaultOptions())
	src := trace.NewFixture(map[model.NodeID][]model.Value{
		2: {10}, 6: {10}, // group 1: quiet
		3: {90}, 4: {90}, 5: {90}, // group 2: loud
	})
	q := topk.SnapshotQuery{K: 1, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}
	op := New()
	r := &topk.Runner{Net: net, Source: src, Op: op, Query: q}
	results, err := r.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if !res.Correct || res.Recall != 1 {
			t.Fatalf("pre-churn epoch %d not exact: %+v", res.Epoch, res)
		}
	}

	// Relay 2 churns out; its whole subtree (the loud room) strands.
	orphans := net.Tree.RemoveNode(2, net.Links)
	net.SetNodeDown(2, true)
	if len(orphans) != 3 {
		t.Fatalf("orphans = %v, want the full loud room {3,4,5}", orphans)
	}
	if err := op.Attach(net, q); err != nil {
		t.Fatal(err)
	}
	for e := model.Epoch(10); e < 14; e++ {
		readings := topk.SenseEpoch(net, src, e)
		answers, err := op.Epoch(e, readings)
		if err != nil {
			t.Fatal(err)
		}
		if len(answers) == 0 {
			t.Fatal("answers stopped flowing after churn")
		}
		exact := topk.ExactSnapshot(readings, q)
		m := stats.Score(answers, exact)
		// The orphaned room still tops the oracle; the sink can only see
		// the quiet room. Recall accounting must expose the gap.
		if m.Recall != 0 || m.Exact {
			t.Fatalf("epoch %d: orphaned subtree not reflected in recall: answers=%v exact=%v metrics=%+v",
				e, answers, exact, m)
		}
	}
}
