package mint

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kspot/internal/model"
	"kspot/internal/topk"
	"kspot/internal/topk/tag"
	"kspot/internal/topk/topktest"
	"kspot/internal/trace"
)

// TestFigure1Correct: MINT must return (C,75), not the naive (D,76.5), on
// the paper's worked example — the central correctness claim of §III-A.
func TestFigure1Correct(t *testing.T) {
	net := topktest.Fig1Network(t)
	r := &topk.Runner{Net: net, Source: trace.Figure1Source(), Op: New(), Query: topk.SnapshotQuery{K: 1, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}}
	results, err := r.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if !res.Correct {
			t.Fatalf("epoch %d: got %v, want %v", res.Epoch, res.Answers, res.Exact)
		}
		if res.Answers[0].Group != trace.Fig1RoomC || res.Answers[0].Score != 75 {
			t.Fatalf("top-1 = %v, want (C,75)", res.Answers[0])
		}
	}
}

// TestExactEverywhere is the headline invariant: for every epoch, topology,
// k and workload, MINT's answer equals the exact oracle.
func TestExactEverywhere(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		net := topktest.RoomsNetwork(t, 8, 3, seed)
		src := trace.NewRoomActivity(seed*13, net.Placement.Groups, 8)
		for _, k := range []int{1, 2, 3, 8} {
			net.Reset()
			r := &topk.Runner{Net: net, Source: src, Op: New(), Query: topk.SnapshotQuery{K: k, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}}
			results, err := r.Run(40)
			if err != nil {
				t.Fatal(err)
			}
			s := topk.Summarize(results)
			if s.CorrectPct != 100 {
				for _, res := range results {
					if !res.Correct {
						t.Fatalf("seed %d k=%d epoch %d: got %v want %v", seed, k, res.Epoch, res.Answers, res.Exact)
					}
				}
			}
		}
	}
}

// TestExactOnScatteredGroups: groups scattered round-robin across the field
// (no spatial locality, masters near the sink) must still be exact.
func TestExactOnScatteredGroups(t *testing.T) {
	net := topktest.GridNetwork(t, 36, 6)
	net.Placement.RegroupRoundRobin(6)
	src := trace.NewRoomActivity(99, net.Placement.Groups, 6)
	r := &topk.Runner{Net: net, Source: src, Op: New(), Query: topk.SnapshotQuery{K: 2, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}}
	results, err := r.Run(40)
	if err != nil {
		t.Fatal(err)
	}
	if s := topk.Summarize(results); s.CorrectPct != 100 {
		t.Fatalf("scattered groups correctness = %.1f%%", s.CorrectPct)
	}
}

// TestCheaperThanTAG verifies the System Panel's claim: after the creation
// epoch, MINT's steady-state traffic is below TAG's.
func TestCheaperThanTAG(t *testing.T) {
	run := func(op topk.SnapshotOperator) topk.Summary {
		net := topktest.GridNetwork(t, 64, 16)
		src := trace.NewRoomActivity(7, net.Placement.Groups, 16)
		r := &topk.Runner{Net: net, Source: src, Op: op, Query: topk.SnapshotQuery{K: 2, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}}
		results, err := r.Run(50)
		if err != nil {
			t.Fatal(err)
		}
		return topk.Summarize(results[1:]) // skip creation epoch
	}
	mintSum := run(New())
	tagSum := run(tag.New())
	if mintSum.TxBytes >= tagSum.TxBytes {
		t.Errorf("MINT bytes %d not below TAG %d", mintSum.TxBytes, tagSum.TxBytes)
	}
	// "Number of messages" on a mote is radio frames: TAG's wide views
	// fragment into several TOS_Msg frames per hop, MINT's pruned views
	// fit in one.
	if mintSum.Frames >= tagSum.Frames {
		t.Errorf("MINT frames %d not below TAG %d", mintSum.Frames, tagSum.Frames)
	}
	if mintSum.EnergyUJ >= tagSum.EnergyUJ {
		t.Errorf("MINT energy %.0f not below TAG %.0f", mintSum.EnergyUJ, tagSum.EnergyUJ)
	}
}

// TestGammaTracksKth: after every epoch the operator's γ equals the K-th
// exact score (the materialized bound the beacons carry).
func TestGammaTracksKth(t *testing.T) {
	net := topktest.Fig1Network(t)
	op := NewWithConfig(Config{Margin: -1}) // exact-K-th bound for the assertion
	r := &topk.Runner{Net: net, Source: trace.Figure1Source(), Op: op, Query: topk.SnapshotQuery{K: 2, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}}
	results, err := r.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	last := results[len(results)-1]
	if got, want := op.Gamma(), model.KthScore(last.Exact, 2); got != want {
		t.Fatalf("gamma = %v, want %v", got, want)
	}
}

// TestRecoveryOnAnswerChurn drives a workload whose winner changes (room
// activity flips every period) and checks exactness across the flips —
// the γ-violation and recovery paths.
func TestRecoveryOnAnswerChurn(t *testing.T) {
	net := topktest.GridNetwork(t, 25, 5)
	src := trace.NewRoomActivity(3, net.Placement.Groups, 5)
	src.Period = 5 // churn every 5 epochs
	r := &topk.Runner{Net: net, Source: src, Op: New(), Query: topk.SnapshotQuery{K: 1, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}}
	results, err := r.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	// The winner must actually change during the run for this test to
	// exercise anything.
	changed := false
	for i := 1; i < len(results); i++ {
		if results[i].Exact[0].Group != results[i-1].Exact[0].Group {
			changed = true
			break
		}
	}
	if !changed {
		t.Skip("workload produced no churn; nothing to verify")
	}
	if s := topk.Summarize(results); s.CorrectPct != 100 {
		t.Fatalf("correctness under churn = %.1f%%", s.CorrectPct)
	}
}

// TestNoRecoveryAblation (experiment E11): disabling the recovery round
// must produce stale answers on churning workloads while the full
// operator stays exact.
func TestNoRecoveryAblation(t *testing.T) {
	staleSomewhere := false
	for seed := int64(1); seed <= 8 && !staleSomewhere; seed++ {
		net := topktest.GridNetwork(t, 25, 5)
		src := trace.NewRoomActivity(seed, net.Placement.Groups, 5)
		src.Period = 4
		r := &topk.Runner{Net: net, Source: src, Op: NewWithConfig(Config{NoRecovery: true}), Query: topk.SnapshotQuery{K: 1, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}}
		results, err := r.Run(40)
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range results {
			if !res.Correct {
				staleSomewhere = true
				break
			}
		}
	}
	if !staleSomewhere {
		t.Error("no-recovery MINT never went stale across 8 churny seeds — ablation is vacuous")
	}
}

// TestSlackTradesAccuracyForTraffic: with a large slack the operator sends
// less but may err within the slack; with zero slack it is exact.
func TestSlackTradesAccuracyForTraffic(t *testing.T) {
	run := func(slack model.Value) topk.Summary {
		net := topktest.GridNetwork(t, 36, 9)
		src := trace.NewRoomActivity(11, net.Placement.Groups, 9)
		src.Period = 4
		op := NewWithConfig(Config{Slack: slack})
		r := &topk.Runner{Net: net, Source: src, Op: op, Query: topk.SnapshotQuery{K: 2, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}}
		results, err := r.Run(40)
		if err != nil {
			t.Fatal(err)
		}
		return topk.Summarize(results)
	}
	exact := run(0)
	loose := run(50)
	if exact.CorrectPct != 100 {
		t.Fatalf("zero-slack MINT not exact: %.1f%%", exact.CorrectPct)
	}
	if loose.TxBytes >= exact.TxBytes {
		t.Errorf("slack=50 bytes %d not below exact %d", loose.TxBytes, exact.TxBytes)
	}
}

// TestSteadyStateSilence: on a constant workload, after creation, only the
// current top-k groups' masters speak; epochs are far cheaper than TAG's.
func TestSteadyStateSilence(t *testing.T) {
	net := topktest.Fig1Network(t)
	r := &topk.Runner{Net: net, Source: trace.Figure1Source(), Op: New(), Query: topk.SnapshotQuery{K: 1, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}}
	results, err := r.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	creation := results[0].Traffic.TxBytes
	steady := results[2].Traffic.TxBytes
	if steady >= creation {
		t.Errorf("steady-state bytes %d not below creation %d", steady, creation)
	}
}

// Property test: MINT == exact oracle on random room networks and random k.
func TestExactProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test in -short mode")
	}
	f := func(seedRaw uint16, kRaw, gRaw uint8) bool {
		seed := int64(seedRaw) + 1
		g := 2 + int(gRaw)%8
		k := 1 + int(kRaw)%(g+2) // deliberately allow k > g
		rng := rand.New(rand.NewSource(seed))
		net := topktest.RoomsNetwork(t, g, 1+rng.Intn(4), seed)
		src := trace.NewRoomActivity(seed*31, net.Placement.Groups, g)
		src.Period = model.Epoch(1 + rng.Intn(6))
		r := &topk.Runner{Net: net, Source: src, Op: New(), Query: topk.SnapshotQuery{K: k, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}}
		results, err := r.Run(15)
		if err != nil {
			return false
		}
		for _, res := range results {
			if !res.Correct {
				t.Logf("seed=%d g=%d k=%d epoch=%d got=%v want=%v", seed, g, k, res.Epoch, res.Answers, res.Exact)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxAggregates(t *testing.T) {
	net := topktest.Fig1Network(t)
	for _, agg := range []model.AggKind{model.AggMin, model.AggMax} {
		net.Reset()
		r := &topk.Runner{Net: net, Source: trace.Figure1Source(), Op: New(), Query: topk.SnapshotQuery{K: 2, Agg: agg}}
		results, err := r.Run(3)
		if err != nil {
			t.Fatal(err)
		}
		if s := topk.Summarize(results); s.CorrectPct != 100 {
			t.Errorf("%v correctness = %.1f%%", agg, s.CorrectPct)
		}
	}
}

func TestAttachValidation(t *testing.T) {
	net := topktest.Fig1Network(t)
	if err := New().Attach(net, topk.SnapshotQuery{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if err := NewWithConfig(Config{Slack: -1}).Attach(net, topk.SnapshotQuery{K: 1, Agg: model.AggAvg}); err == nil {
		t.Error("negative slack accepted")
	}
}

func TestNames(t *testing.T) {
	if New().Name() != "mint" {
		t.Error("name")
	}
	if NewWithConfig(Config{NoRecovery: true}).Name() != "mint-norecovery" {
		t.Error("ablation name")
	}
}
