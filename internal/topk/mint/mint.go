// Package mint implements the MINT Views algorithm (Zeinalipour-Yazti,
// Andreou, Chrysanthis, Samaras — IEEE MDM 2007), the snapshot top-k
// operator KSpot routes GROUP BY queries to. MINT constructs an in-network
// hierarchy of views in which ancestors maintain a superset view of their
// descendants, and prunes tuples that provably cannot be among the final
// top-k answers.
//
// The three phases of the demo paper's §III-A:
//
//  1. Creation phase (epoch 0): no pruning; every node's full view V_i
//     percolates to the sink, which materializes V0 and computes the bound
//     γ = score of the K-th ranked answer.
//  2. Pruning phase (every subsequent epoch): γ and the current top-k
//     membership ride the downstream epoch beacon. Each node prunes its
//     view V_i to V'_i ⊆ V_i using two γ-descriptor rules:
//     - a *complete* partial (the node's subtree covers the whole cluster,
//     i.e. the node is at or above the group's master) is suppressed
//     when its exact score is below γ and the group is not a current
//     answer;
//     - an *incomplete* partial is suppressed when even the most
//     optimistic completion — every unseen member reading the
//     attribute's calibrated maximum — leaves the group's score below
//     γ. This is the descriptor "bounding above the attributes in V0"
//     from the paper; naively dropping low incomplete partials instead
//     is exactly the wrongful (D,76.5) elimination of Figure 1.
//  3. Update phase: V'_i is encoded and shipped one hop up; empty V'_i
//     suppresses the packet entirely.
//
// The sink ranks only groups whose fresh aggregates are complete. Two
// conditions force extra same-epoch rounds, both rare:
//
//   - an incomplete group at the sink whose upper bound still reaches the
//     fresh K-th score must be *resolved* (its suppressed partials
//     fetched) before it can be included or excluded;
//   - when the fresh K-th score drops below the broadcast γ, groups in
//     [K-th, γ) may have been wrongly suppressed, so the sink re-polls
//     with the lowered bound (*recovery*).
//
// The epoch loop iterates until neither applies; the bound decreases
// monotonically, so it terminates (≤ 4 rounds is asserted, ≥ 2 only under
// answer churn). Disabling the loop (Config.NoRecovery) reproduces the
// staleness a bound-less design would suffer; experiment E11 measures it.
package mint

import (
	"fmt"
	"math"

	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/radio"
	"kspot/internal/topk"
	"kspot/internal/topo"
)

// Config tunes the operator.
type Config struct {
	// NoRecovery disables the same-epoch recovery/resolve loop (E11
	// ablation): the sink serves the possibly-stale ranking instead of
	// re-polling when the bound's invariant breaks.
	NoRecovery bool
	// Slack widens the suppression band: groups must exceed γ+Slack to
	// report, and the recovery loop tolerates a K-th score as low as
	// γ−Slack. Zero keeps results exact; positive slack trades bounded
	// ranking error for traffic.
	Slack model.Value
	// Margin lowers the broadcast bound below the K-th score, so ordinary
	// sensor jitter does not drop the K-th under γ and trigger a recovery
	// round every epoch. Results stay exact for any margin ≥ 0 (a lower
	// bound only admits more reporters). Zero means "auto": DefaultMarginFrac
	// of the declared value range, or no margin when no range is declared.
	// Negative forces an exact-K-th bound (used by tests).
	Margin model.Value
	// ResolveIncomplete re-fetches groups whose sink-side partial is
	// incomplete but whose upper bound reaches the K-th score. On a
	// lossless tree an incomplete group can only mean some node proved its
	// bound below γ, so the default (off) excludes them outright; turn
	// this on for lossy deployments, where incompleteness may instead
	// mean a dropped frame.
	ResolveIncomplete bool
}

// DefaultMarginFrac is the auto-margin: the broadcast bound sits this
// fraction of the value range below the K-th score, absorbing ordinary
// sensor jitter so that recovery rounds fire only on genuine answer churn.
const DefaultMarginFrac = 0.025

// margin resolves the configured margin against the query's range.
func (o *Operator) margin() model.Value {
	switch {
	case o.cfg.Margin > 0:
		return o.cfg.Margin
	case o.cfg.Margin < 0:
		return 0
	case o.q.Range != nil:
		return (o.q.Range.Max - o.q.Range.Min) * DefaultMarginFrac
	default:
		return 0
	}
}

// Operator is the MINT snapshot operator.
type Operator struct {
	cfg Config

	net       engine.Transport
	q         topk.SnapshotQuery
	groupSize map[model.GroupID]int
	masters   map[model.GroupID]model.NodeID
	nGroups   int

	created bool
	// bcast is the γ bound currently installed at the nodes (the last
	// flooded value); floods happen only when it must change.
	bcast   model.Value
	topKNow []model.Answer

	// Rounds counts sweeps per epoch for the System Panel (index = epoch).
	Rounds []int
	// Floods counts γ beacon floods per epoch (index = epoch).
	Floods []int
}

// New returns a MINT operator with default configuration.
func New() *Operator { return NewWithConfig(Config{}) }

// NewWithConfig returns a MINT operator with explicit configuration.
func NewWithConfig(cfg Config) *Operator { return &Operator{cfg: cfg} }

// Name implements topk.SnapshotOperator.
func (o *Operator) Name() string {
	if o.cfg.NoRecovery {
		return "mint-norecovery"
	}
	return "mint"
}

// Attach implements topk.SnapshotOperator.
func (o *Operator) Attach(net engine.Transport, q topk.SnapshotQuery) error {
	if err := q.Validate(); err != nil {
		return err
	}
	if o.cfg.Slack < 0 {
		return fmt.Errorf("mint: negative slack %v", o.cfg.Slack)
	}
	o.net, o.q = net, q
	o.groupSize = net.Topology().GroupSize()
	o.masters = topo.GroupMaster(net.Routing(), net.Topology())
	o.nGroups = len(net.Topology().GroupIDs())
	o.created = false
	o.bcast = topk.MinusInf()
	o.topKNow = nil
	o.Rounds = nil
	o.Floods = nil
	return nil
}

// complete reports whether a partial covers its whole group.
func (o *Operator) complete(p model.Partial) bool {
	return int(p.Count) >= o.groupSize[p.Group]
}

// upperBound is the γ-descriptor: the highest score the group could attain
// given the partial seen so far, assuming every unseen member reads the
// attribute's calibrated maximum. Without a declared range the bound is
// +Inf (incomplete partials can never be pruned), which is the conservative
// fallback the creation phase also uses.
func (o *Operator) upperBound(p model.Partial) model.Value {
	if o.complete(p) {
		return model.Quantize(p.Eval(o.q.Agg))
	}
	if o.q.Range == nil {
		return model.Value(math.Inf(1))
	}
	g := o.groupSize[p.Group]
	missing := int64(g) - int64(p.Count)
	vmaxFP := int64(model.ToFixed(o.q.Range.Max))
	switch o.q.Agg {
	case model.AggAvg:
		return model.Quantize(model.Value(p.SumFP+missing*vmaxFP) / model.Value(g) / 100)
	case model.AggSum:
		return model.Quantize(model.Value(p.SumFP+missing*vmaxFP) / 100)
	case model.AggMin:
		// Unseen readings can only lower a MIN; the partial's own min is
		// already an upper bound on the group's score.
		return p.Min()
	case model.AggMax:
		return o.q.Range.Max
	case model.AggCount:
		return model.Value(g)
	default:
		return model.Value(math.Inf(1))
	}
}

// prune builds V'_i from V_i under the bound and resolve set. The result is
// a pooled view owned by the transport (see engine.PruneFunc), filled by a
// single filtering pass — no clone, no per-group deletions.
func (o *Operator) prune(v *model.View, bound model.Value, resolve map[model.GroupID]bool) *model.View {
	out := model.AcquireView()
	threshold := bound + o.cfg.Slack
	v.ForEach(func(p model.Partial) {
		if resolve[p.Group] || o.upperBound(p) >= threshold {
			// Resolve targets always flow; the rest only while they could
			// still be (or tie into) the top-k.
			out.AddPartial(p)
		}
	})
	return out
}

// Epoch implements topk.SnapshotOperator.
func (o *Operator) Epoch(e model.Epoch, readings map[model.NodeID]model.Reading) ([]model.Answer, error) {
	// Creation phase: install the query (one flood) and run one full
	// TAG-style acquisition; the first tightening flood below installs γ.
	if !o.created {
		topk.InstallQuery(o.net, e)
		v0 := topk.Sweep(o.net, e, radio.KindData, readings, nil)
		o.topKNow = v0.TopK(o.q.Agg, o.q.K)
		o.created = true
		o.Rounds = append(o.Rounds, 1)
		o.Floods = append(o.Floods, 1+o.retune(e, model.KthScore(o.topKNow, o.q.K)))
		return o.topKNow, nil
	}

	bound := o.bcast
	resolve := map[model.GroupID]bool{}
	vSink := model.AcquireView()
	defer model.ReleaseView(vSink)
	var answers []model.Answer
	var kth model.Value
	rounds, floods := 0, 0
	for {
		rounds++
		fresh := o.sweep(e, bound, resolve, readings)
		// Later rounds re-report whole groups from scratch: replace, don't
		// double-merge. (fresh is transport-owned: consumed before the next
		// sweep, never retained.)
		fresh.ForEach(func(p model.Partial) {
			vSink.Remove(p.Group)
			vSink.AddPartial(p)
		})
		// Rank complete groups. An incomplete group at the sink means some
		// node proved its γ-descriptor bound below the broadcast γ (or, on
		// a lossy link, a frame died); it is excluded unless
		// ResolveIncomplete asks for a fetch round.
		completeView := model.AcquireView()
		vSink.ForEach(func(p model.Partial) {
			if o.complete(p) {
				completeView.AddPartial(p)
			}
		})
		answers = completeView.TopK(o.q.Agg, o.q.K)
		model.ReleaseView(completeView)
		// In approximate (slack) mode the materialized view serves stale
		// entries for suppressed answer slots instead of re-polling; in
		// exact mode a short answer collapses the bound (KthScore returns
		// -Inf) and the recovery round degenerates to a full TAG sweep.
		if o.cfg.Slack > 0 && len(answers) < o.q.K {
			answers = padAnswers(answers, o.topKNow, o.q.K)
		}
		kth = model.KthScore(answers, o.q.K)
		if o.cfg.NoRecovery {
			break
		}
		next := map[model.GroupID]bool{}
		if o.cfg.ResolveIncomplete {
			vSink.ForEach(func(p model.Partial) {
				if !o.complete(p) && o.upperBound(p) >= kth && !resolve[p.Group] {
					next[p.Group] = true
				}
			})
		}
		boundOK := kth >= bound-o.cfg.Slack
		if boundOK && len(next) == 0 {
			break
		}
		if rounds >= 4 {
			// The bound decreases monotonically and resolve sets complete
			// their groups, so this is unreachable; guard anyway rather
			// than loop a deployment forever.
			break
		}
		if kth < bound {
			bound = kth - o.margin()
		}
		resolve = next
		// Recovery and resolve rounds need new control state at the nodes:
		// flood the lowered bound (with resolve ids when fetching).
		o.flood(e, bound, resolve)
		floods++
	}
	o.Rounds = append(o.Rounds, rounds)

	if len(answers) > 0 {
		o.topKNow = answers
		floods += o.retune(e, kth)
	}
	o.Floods = append(o.Floods, floods)
	return o.topKNow, nil
}

// retune re-floods the γ bound when the fresh K-th score has drifted so far
// from the installed value that either correctness (bound above K-th) or
// efficiency (bound more than 2 margins below K-th) calls for it. Returns
// the number of floods performed (0 or 1).
func (o *Operator) retune(e model.Epoch, kth model.Value) int {
	m := o.margin()
	target := kth - m
	if target < o.bcast || target > o.bcast+2*m+o.cfg.Slack {
		o.flood(e, target, nil)
		return 1
	}
	return 0
}

// flood broadcasts a γ beacon (plus optional resolve ids) and records it as
// the nodes' installed bound.
func (o *Operator) flood(e model.Epoch, bound model.Value, resolve map[model.GroupID]bool) {
	var ids []model.GroupID
	for g := range resolve {
		ids = append(ids, g)
	}
	beacon := topk.EncodeBeacon(topk.Beacon{Epoch: e, Gamma: bound, TopK: ids})
	o.net.BroadcastDown(radio.KindBeacon, e, func(model.NodeID) []byte { return beacon })
	o.bcast = bound
}

// sweep runs one pruned up-sweep under the installed bound and returns the
// sink's fresh view.
func (o *Operator) sweep(e model.Epoch, bound model.Value, resolve map[model.GroupID]bool, readings map[model.NodeID]model.Reading) *model.View {
	return topk.Sweep(o.net, e, radio.KindData, readings, func(_ model.NodeID, v *model.View) *model.View {
		return o.prune(v, bound, resolve)
	})
}

// Gamma exposes the installed γ bound for the System Panel and tests.
func (o *Operator) Gamma() model.Value { return o.bcast }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// padAnswers fills missing answer slots with stale entries from the
// previous materialized ranking, preserving rank order.
func padAnswers(fresh, prev []model.Answer, k int) []model.Answer {
	have := model.AnswerSet(fresh)
	out := append([]model.Answer(nil), fresh...)
	for _, a := range prev {
		if len(out) >= k {
			break
		}
		if !have[a.Group] {
			out = append(out, a)
			have[a.Group] = true
		}
	}
	model.SortAnswers(out)
	return out
}
