package topk

import (
	"testing"

	"kspot/internal/model"
	"kspot/internal/radio"
	"kspot/internal/sim"
	"kspot/internal/topo"
	"kspot/internal/trace"
)

func fig1Net(t *testing.T) *sim.Network {
	t.Helper()
	p := trace.Figure1Placement()
	tree := trace.Figure1Tree()
	links := topo.NewLinks()
	for c, par := range tree.Parent {
		links.Connect(c, par)
	}
	return sim.FromTree(p, links, tree, sim.DefaultOptions())
}

func fig1Readings(net *sim.Network) map[model.NodeID]model.Reading {
	readings := map[model.NodeID]model.Reading{}
	for id, v := range trace.Figure1Values() {
		readings[id] = model.Reading{Node: id, Group: net.Placement.Groups[id], Value: v}
	}
	return readings
}

func TestSweepNoPruneEqualsOracle(t *testing.T) {
	net := fig1Net(t)
	readings := fig1Readings(net)
	v := Sweep(net, 0, radio.KindData, readings, nil)
	got := v.TopK(model.AggAvg, 4)
	if !model.EqualAnswers(got, trace.Figure1Answers()) {
		t.Fatalf("sweep view = %v", got)
	}
	// Every sensor transmits once.
	if msgs := net.Counter.TotalMessages(); msgs != 9 {
		t.Fatalf("messages = %d, want 9", msgs)
	}
}

func TestSweepPruneEverythingIsSilent(t *testing.T) {
	net := fig1Net(t)
	readings := fig1Readings(net)
	v := Sweep(net, 0, radio.KindData, readings, func(model.NodeID, *model.View) *model.View {
		return nil
	})
	if v.Len() != 0 {
		t.Fatalf("sink view = %d groups, want 0", v.Len())
	}
	if msgs := net.Counter.TotalMessages(); msgs != 0 {
		t.Fatalf("messages = %d; fully pruned nodes must not transmit", msgs)
	}
}

func TestSweepPrunePropagates(t *testing.T) {
	// Prune room D everywhere: the sink must still see A, B, C exactly.
	net := fig1Net(t)
	readings := fig1Readings(net)
	v := Sweep(net, 0, radio.KindData, readings, func(_ model.NodeID, view *model.View) *model.View {
		out := view.Clone()
		out.Remove(trace.Fig1RoomD)
		return out
	})
	if _, ok := v.Get(trace.Fig1RoomD); ok {
		t.Fatal("room D leaked through the prune")
	}
	top := v.TopK(model.AggAvg, 3)
	want := []model.Answer{{Group: trace.Fig1RoomC, Score: 75}, {Group: trace.Fig1RoomA, Score: 74.5}, {Group: trace.Fig1RoomB, Score: 41}}
	if !model.EqualAnswers(top, want) {
		t.Fatalf("pruned ranking = %v", top)
	}
}

func TestSweepMissingReadings(t *testing.T) {
	net := fig1Net(t)
	readings := fig1Readings(net)
	delete(readings, 6) // s6 slept through the epoch
	v := Sweep(net, 0, radio.KindData, readings, nil)
	p, ok := v.Get(trace.Fig1RoomC)
	if !ok || p.Count != 1 {
		t.Fatalf("room C partial = %+v, want count 1 (only s5)", p)
	}
}

func TestInstallQueryReachesAll(t *testing.T) {
	net := fig1Net(t)
	reached := InstallQuery(net, 0)
	if len(reached) != 10 {
		t.Fatalf("install reached %d nodes, want 10", len(reached))
	}
	if got := net.Counter.TxBytes[radio.KindCtrl]; got != 9*(QueryInstallSize+radio.DefaultHeaderSize) {
		t.Fatalf("install bytes = %d", got)
	}
}

func TestSenseEpochChargesAndQuantizes(t *testing.T) {
	net := fig1Net(t)
	readings := SenseEpoch(net, trace.Figure1Source(), 3)
	if len(readings) != 9 {
		t.Fatalf("readings = %d", len(readings))
	}
	if readings[1].Epoch != 3 || readings[1].Group != trace.Fig1RoomB {
		t.Fatalf("reading meta = %+v", readings[1])
	}
	if net.Ledger.Total() != 9*net.Energy.SenseCost {
		t.Fatalf("sense energy = %v", net.Ledger.Total())
	}
}
