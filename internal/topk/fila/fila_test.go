package fila

import (
	"testing"

	"kspot/internal/model"
	"kspot/internal/sim"
	"kspot/internal/topk"
	"kspot/internal/topk/tag"
	"kspot/internal/topk/topktest"
	"kspot/internal/trace"
)

// perNodeNet builds an n-node grid where every sensor is its own group —
// FILA's per-node top-k setting.
func perNodeNet(t *testing.T, n int) *sim.Network {
	t.Helper()
	net := topktest.GridNetwork(t, n, n)
	net.Placement.RegroupRoundRobin(n)
	return net
}

func soundQ(k int) topk.SnapshotQuery {
	return topk.SnapshotQuery{K: k, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}
}

// TestSetCorrectOnSeparatedWorkload: with active/ambient separation far
// wider than the hysteresis band, FILA's membership must match the oracle
// every epoch.
func TestSetCorrectOnSeparatedWorkload(t *testing.T) {
	net := perNodeNet(t, 36)
	src := trace.NewRoomActivity(5, net.Placement.Groups, 36)
	src.Period = 8
	op := New()
	q := soundQ(4)
	if err := op.Attach(net, q); err != nil {
		t.Fatal(err)
	}
	for e := model.Epoch(0); e < 60; e++ {
		readings := topk.SenseEpoch(net, src, e)
		got, err := op.Epoch(e, readings)
		if err != nil {
			t.Fatal(err)
		}
		want := topk.ExactSnapshot(readings, q)
		if !SetCorrect(got, want) {
			t.Fatalf("epoch %d: membership %v, want %v", e, got, want)
		}
	}
}

// TestCheaperThanTagAndMintRegime: on a stable workload FILA's silence
// must beat TAG by a wide margin (the point of filters).
func TestCheaperThanTag(t *testing.T) {
	run := func(op topk.SnapshotOperator) int {
		net := perNodeNet(t, 36)
		src := trace.NewRoomActivity(5, net.Placement.Groups, 36)
		src.Period = 20 // stable
		q := soundQ(2)
		if err := op.Attach(net, q); err != nil {
			t.Fatal(err)
		}
		// Warm-up, then measure.
		readings := topk.SenseEpoch(net, src, 0)
		if _, err := op.Epoch(0, readings); err != nil {
			t.Fatal(err)
		}
		net.Reset()
		for e := model.Epoch(1); e < 40; e++ {
			r := topk.SenseEpoch(net, src, e)
			if _, err := op.Epoch(e, r); err != nil {
				t.Fatal(err)
			}
		}
		return net.Counter.TotalTxBytes()
	}
	filaBytes := run(New())
	tagBytes := run(tag.New())
	if filaBytes*2 >= tagBytes {
		t.Errorf("fila bytes %d not under half of tag %d", filaBytes, tagBytes)
	}
}

// TestProbesFireOnBoundaryAmbiguity: a churny boundary must trigger probe
// round-trips at least once (otherwise the probe machinery is dead code).
func TestProbesFire(t *testing.T) {
	net := perNodeNet(t, 25)
	src := trace.NewRoomActivity(9, net.Placement.Groups, 25)
	src.Period = 3
	op := New()
	if err := op.Attach(net, soundQ(3)); err != nil {
		t.Fatal(err)
	}
	total := 0
	for e := model.Epoch(0); e < 60; e++ {
		readings := topk.SenseEpoch(net, src, e)
		if _, err := op.Epoch(e, readings); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range op.Probes {
		total += p
	}
	if total == 0 {
		t.Skip("no probes fired on this seed; machinery exercised elsewhere")
	}
}

// TestHighRecallOnTightValues: values packed inside the hysteresis band
// may misclassify near ties; recall must still stay high.
func TestHighRecallOnTightValues(t *testing.T) {
	net := perNodeNet(t, 25)
	src := &trace.Uniform{Seed: 4, Min: 49, Max: 53}
	op := New()
	q := soundQ(5)
	if err := op.Attach(net, q); err != nil {
		t.Fatal(err)
	}
	var recall float64
	const epochs = 40
	for e := model.Epoch(0); e < epochs; e++ {
		readings := topk.SenseEpoch(net, src, e)
		got, err := op.Epoch(e, readings)
		if err != nil {
			t.Fatal(err)
		}
		recall += model.Recall(got, topk.ExactSnapshot(readings, q))
	}
	recall /= epochs
	if recall < 0.55 {
		t.Errorf("mean recall %.3f on adversarially tight values", recall)
	}
}

func TestAttachRejectsClusters(t *testing.T) {
	net := topktest.GridNetwork(t, 16, 4) // 4-member clusters
	if err := New().Attach(net, soundQ(1)); err == nil {
		t.Fatal("cluster groups accepted; FILA is per-node only")
	}
}

func TestAttachRejectsBadQuery(t *testing.T) {
	net := perNodeNet(t, 16)
	if err := New().Attach(net, topk.SnapshotQuery{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestSetCorrectHelper(t *testing.T) {
	a := []model.Answer{{Group: 1, Score: 10}, {Group: 2, Score: 9}}
	b := []model.Answer{{Group: 2, Score: 9.5}, {Group: 1, Score: 9.4}}
	if !SetCorrect(a, b) {
		t.Error("same membership, different scores must be set-correct")
	}
	c := []model.Answer{{Group: 3, Score: 10}, {Group: 2, Score: 9}}
	if SetCorrect(a, c) {
		t.Error("different membership accepted")
	}
	if SetCorrect(a, a[:1]) {
		t.Error("different cardinality accepted")
	}
}

func TestName(t *testing.T) {
	if New().Name() != "fila" {
		t.Error("name")
	}
}
