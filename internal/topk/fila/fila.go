// Package fila implements filter-based top-k monitoring after FILA (Wu,
// Xu, Tang, Lee — ICDE 2006), the snapshot-monitoring competitor the KSpot
// paper cites alongside MINT. Where MINT suppresses tuples with
// γ-descriptor bounds recomputed every epoch, FILA installs a *filter
// window* [l_i, u_i) at every node and the node stays silent while its
// sensed value remains inside; the sink re-balances windows when reported
// violations move the ranking.
//
// This reconstruction targets the per-node top-k monitoring problem ("the
// K nodes with the highest value", every sensor its own group — FILA's own
// problem statement). Windows split the value space at the top-k boundary
// τ (the midpoint between the K-th and K+1-th cached values): members
// (rank ≤ K) hold [τ, +∞), everyone else (−∞, τ). A node transmits only
// on a *filter violation* — its fresh value crossing τ to the other side
// of its window — so quiet epochs cost nothing at all; violations
// aggregate up the tree like view updates.
//
// A violation that moves the boundary leaves silent nodes' cached values
// untrustworthy near the new τ; the sink then runs a *resolve sweep* — a
// threshold-pruned acquisition (every node with value above the tentative
// boundary reports), iterated like MINT's recovery round until no silent
// node's held window straddles τ. Window re-installations are unicast and
// hysteresis-gated by the pad; stale windows stay safe because resolve
// decisions use what each node actually holds.
//
// Contract: top-k *membership* is exact every epoch (violations plus the
// probe loop leave no silent node astride the boundary); member *scores*
// may be stale inside their windows — the accuracy/traffic trade that
// distinguishes the filter approach from MINT's exact γ bounds.
// Experiment E14 measures it.
package fila

import (
	"fmt"
	"math"
	"sort"

	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/radio"
	"kspot/internal/topk"
)

// window is a half-open filter interval [Lo, Hi).
type window struct {
	Lo, Hi model.Value
}

func (w window) contains(v model.Value) bool { return v >= w.Lo && v < w.Hi }

// strictlyInside reports whether v lies strictly between the bounds — the
// probe condition: only then is a silent node's side of v unknown.
func (w window) strictlyInside(v model.Value) bool { return v > w.Lo && v < w.Hi }

// Wire sizes: a window update carries two fixed-point bounds; probes carry
// a request id; replies a (group, value) answer.
const (
	windowWireSize = 8
	probeWireSize  = 4
	replyWireSize  = model.AnswerWireSize
)

// Config tunes the operator.
type Config struct {
	// PadFrac is the re-installation hysteresis as a fraction of the
	// declared value range: a node's window is re-sent only when its
	// boundary moved by more than the pad. Default 0.02.
	PadFrac float64
}

// Operator is the FILA monitoring operator. It requires every group to be
// a single node (per-node top-k); Attach rejects other groupings.
type Operator struct {
	cfg Config

	net    engine.Transport
	q      topk.SnapshotQuery
	node2  map[model.NodeID]model.GroupID
	group2 map[model.GroupID]model.NodeID

	installed bool
	cache     map[model.GroupID]model.Value
	held      map[model.GroupID]window // what each node actually holds

	// Probes counts probe round-trips per epoch (for the System Panel).
	Probes []int
}

// New returns a FILA operator with default configuration.
func New() *Operator { return NewWithConfig(Config{}) }

// NewWithConfig returns a FILA operator with explicit configuration.
func NewWithConfig(cfg Config) *Operator {
	if cfg.PadFrac <= 0 {
		cfg.PadFrac = 0.02
	}
	return &Operator{cfg: cfg}
}

// Name implements topk.SnapshotOperator.
func (o *Operator) Name() string { return "fila" }

// Attach implements topk.SnapshotOperator.
func (o *Operator) Attach(net engine.Transport, q topk.SnapshotQuery) error {
	if err := q.Validate(); err != nil {
		return err
	}
	for g, n := range net.Topology().GroupSize() {
		if n != 1 {
			return fmt.Errorf("fila: group %d has %d members; FILA monitors per-node top-k (singleton groups)", g, n)
		}
	}
	o.net, o.q = net, q
	o.node2 = make(map[model.NodeID]model.GroupID)
	o.group2 = make(map[model.GroupID]model.NodeID)
	for id, g := range net.Topology().Groups {
		if id == model.Sink {
			continue
		}
		o.node2[id] = g
		o.group2[g] = id
	}
	o.installed = false
	o.cache = make(map[model.GroupID]model.Value)
	o.held = make(map[model.GroupID]window)
	o.Probes = nil
	return nil
}

// Epoch implements topk.SnapshotOperator.
func (o *Operator) Epoch(e model.Epoch, readings map[model.NodeID]model.Reading) ([]model.Answer, error) {
	if !o.installed {
		topk.InstallQuery(o.net, e)
		v := topk.Sweep(o.net, e, radio.KindData, readings, nil)
		for _, g := range v.Groups() {
			p, _ := v.Get(g)
			o.cache[g] = model.Quantize(p.Eval(o.q.Agg))
		}
		o.installed = true
		o.reinstall(e)
		o.Probes = append(o.Probes, 0)
		return o.ranking(), nil
	}

	// Filter evaluation: a node transmits only when its fresh value
	// violates the window it holds.
	violations := map[model.NodeID]model.Reading{}
	for id, r := range readings {
		g := o.node2[id]
		w, ok := o.held[g]
		if !ok || !w.contains(model.Quantize(r.Value)) {
			violations[id] = r
		}
	}
	fresh := map[model.GroupID]bool{}
	if len(violations) > 0 {
		v := topk.Sweep(o.net, e, radio.KindData, violations, nil)
		for _, g := range v.Groups() {
			p, _ := v.Get(g)
			o.cache[g] = model.Quantize(p.Eval(o.q.Agg))
			fresh[g] = true
		}
	}

	// Resolve sweeps: while the boundary sits strictly inside some silent
	// node's held window, its side of τ — and hence the membership — is
	// unknown. One threshold-pruned sweep fetches every fresh value at or
	// above the tentative boundary; like MINT's recovery round, at most a
	// couple of iterations are ever needed (the reporter set only grows).
	// A quiet epoch (no violations) cannot change membership: every node
	// is inside its held window, so the zones still hold. Reported
	// changes, though, leave silent caches near the new boundary
	// untrustworthy. The sink then resolves by *threshold descent*: a
	// pruned sweep in which every node at or above the descending bound
	// reports. Once at least K fresh values sit at or above the bound,
	// every silent node (provably below the bound) is out of the answer
	// and the membership is exact. Each sweep touches only the nodes near
	// the boundary, so a wobbling boundary costs a handful of reports,
	// not a TAG epoch; the full sweep remains as a last-resort fallback.
	probes := 0
	if tau, ok := o.boundary(); ok && len(violations) > 0 {
		unresolved := false
		for g, w := range o.held {
			if !fresh[g] && w.strictlyInside(tau) {
				unresolved = true
				break
			}
		}
		if unresolved {
			pad := o.pad()
			bound := tau - pad
			for iter := 0; iter < 6; iter++ {
				probes++
				b := bound
				v := topk.Sweep(o.net, e, radio.KindCtrl, readings, func(_ model.NodeID, view *model.View) *model.View {
					out := model.AcquireView() // transport-owned, recycled after transmit
					view.ForEach(func(p model.Partial) {
						if !fresh[p.Group] && model.Quantize(p.Eval(o.q.Agg)) >= b {
							out.AddPartial(p)
						}
					})
					return out
				})
				for _, g := range v.Groups() {
					p, _ := v.Get(g)
					o.cache[g] = model.Quantize(p.Eval(o.q.Agg))
					fresh[g] = true
				}
				// Silent nodes are provably below the bound; clamp any
				// stale-high cache to reflect that (their exact position
				// below the bound cannot affect membership).
				for g := range o.held {
					if !fresh[g] && o.cache[g] >= b {
						o.cache[g] = b - 0.01
					}
				}
				atOrAbove := 0
				for g := range fresh {
					if o.cache[g] >= b {
						atOrAbove++
					}
				}
				if atOrAbove >= o.q.K {
					break
				}
				bound -= 4 * pad
			}
			// Fallback: the descent did not surface K values (a mass
			// collapse); refresh everything.
			atOrAbove := 0
			for g := range fresh {
				if o.cache[g] >= bound {
					atOrAbove++
				}
			}
			if atOrAbove < o.q.K {
				probes++
				v := topk.Sweep(o.net, e, radio.KindCtrl, readings, nil)
				for _, g := range v.Groups() {
					p, _ := v.Get(g)
					o.cache[g] = model.Quantize(p.Eval(o.q.Agg))
					fresh[g] = true
				}
			}
		}
	}
	o.Probes = append(o.Probes, probes)

	if len(violations) > 0 || probes > 0 {
		o.reinstall(e)
	}
	return o.ranking(), nil
}

// boundary returns τ; ok is false with K or fewer nodes (membership can
// never change then).
func (o *Operator) boundary() (model.Value, bool) {
	vals := o.sorted()
	if len(vals) <= o.q.K {
		return 0, false
	}
	return model.Quantize((vals[o.q.K-1].v + vals[o.q.K].v) / 2), true
}

type kv struct {
	g model.GroupID
	v model.Value
}

func (o *Operator) sorted() []kv {
	all := make([]kv, 0, len(o.cache))
	for g, v := range o.cache {
		all = append(all, kv{g, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].g < all[j].g
	})
	return all
}

// ranking returns the cached top-k.
func (o *Operator) ranking() []model.Answer {
	vals := o.sorted()
	k := o.q.K
	if k > len(vals) {
		k = len(vals)
	}
	answers := make([]model.Answer, 0, k)
	for _, p := range vals[:k] {
		answers = append(answers, model.Answer{Group: p.g, Score: p.v})
	}
	return answers
}

// pad is the window padding in value units.
func (o *Operator) pad() model.Value {
	if o.q.Range == nil {
		return 0.5
	}
	return (o.q.Range.Max - o.q.Range.Min) * model.Value(o.cfg.PadFrac)
}

// reinstall recomputes the two-zone windows (members [τ, +∞), the rest
// (−∞, τ)) and unicasts the ones that changed beyond the pad or switched
// zone. Stale windows are safe: resolve decisions use the held map, so an
// un-refreshed bound only widens the resolve sweep.
func (o *Operator) reinstall(e model.Epoch) {
	vals := o.sorted()
	if len(vals) == 0 {
		return
	}
	tau, hasTau := o.boundary()
	pad := o.pad()
	negInf := model.Value(math.Inf(-1))
	posInf := model.Value(math.Inf(1))

	for rank, p := range vals {
		var ideal window
		switch {
		case !hasTau:
			ideal = window{Lo: negInf, Hi: posInf}
		case rank < o.q.K:
			ideal = window{Lo: tau, Hi: posInf}
		default:
			ideal = window{Lo: negInf, Hi: tau}
		}
		cur, ok := o.held[p.g]
		if ok && sameZone(cur, ideal) && boundsClose(cur, ideal, pad) {
			continue
		}
		if o.net.RouteFromSink(o.group2[p.g], radio.KindBeacon, e, make([]byte, windowWireSize)) {
			o.held[p.g] = ideal
		}
	}
}

// sameZone reports whether two windows are on the same side of the
// boundary (member-shaped vs non-member-shaped).
func sameZone(a, b window) bool {
	return math.IsInf(float64(a.Hi), 1) == math.IsInf(float64(b.Hi), 1)
}

// boundsClose gates re-installation on the pad.
func boundsClose(a, b window, pad model.Value) bool {
	return closeBound(a.Lo, b.Lo, pad) && closeBound(a.Hi, b.Hi, pad)
}

func closeBound(a, b, pad model.Value) bool {
	aInf, bInf := math.IsInf(float64(a), 0), math.IsInf(float64(b), 0)
	if aInf || bInf {
		return aInf && bInf && math.Signbit(float64(a)) == math.Signbit(float64(b))
	}
	return abs(a-b) <= pad
}

func abs(v model.Value) model.Value {
	if v < 0 {
		return -v
	}
	return v
}

// SetCorrect reports whether two rankings agree as sets — FILA's
// correctness contract (membership exact outside pad-width ties, scores
// possibly stale).
func SetCorrect(got, want []model.Answer) bool {
	if len(got) != len(want) {
		return false
	}
	ws := model.AnswerSet(want)
	for _, a := range got {
		if !ws[a.Group] {
			return false
		}
	}
	return true
}
