// Package tag implements the TAG/TinyDB baseline: full in-network GROUP BY
// aggregation with no top-k pruning. Every node forwards the partial
// aggregate of every group present in its subtree every epoch, and the sink
// applies the top-k operator centrally — the "straightforward" technique
// the paper's introduction describes and improves upon.
package tag

import (
	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/radio"
	"kspot/internal/topk"
)

// Operator is the TAG snapshot operator.
type Operator struct {
	net       engine.Transport
	q         topk.SnapshotQuery
	installed bool
}

// New returns a TAG operator.
func New() *Operator { return &Operator{} }

// Name implements topk.SnapshotOperator.
func (o *Operator) Name() string { return "tag" }

// Attach implements topk.SnapshotOperator.
func (o *Operator) Attach(net engine.Transport, q topk.SnapshotQuery) error {
	if err := q.Validate(); err != nil {
		return err
	}
	o.net, o.q = net, q
	o.installed = false
	return nil
}

// Epoch implements topk.SnapshotOperator: beacon down, full aggregation up,
// centralized top-k at the sink.
func (o *Operator) Epoch(e model.Epoch, readings map[model.NodeID]model.Reading) ([]model.Answer, error) {
	if !o.installed {
		topk.InstallQuery(o.net, e)
		o.installed = true
	}
	sinkView := topk.Sweep(o.net, e, radio.KindData, readings, nil)
	return sinkView.TopK(o.q.Agg, o.q.K), nil
}
