package tag

import (
	"testing"

	"kspot/internal/model"
	"kspot/internal/topk"
	"kspot/internal/topk/topktest"
	"kspot/internal/trace"
)

func TestFigure1Correct(t *testing.T) {
	net := topktest.Fig1Network(t)
	r := &topk.Runner{Net: net, Source: trace.Figure1Source(), Op: New(), Query: topk.SnapshotQuery{K: 1, Agg: model.AggAvg}}
	results, err := r.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if !res.Correct {
			t.Fatalf("epoch %d incorrect: got %v, want %v", res.Epoch, res.Answers, res.Exact)
		}
		if res.Answers[0].Group != trace.Fig1RoomC || res.Answers[0].Score != 75 {
			t.Fatalf("top-1 = %v, want (C,75)", res.Answers[0])
		}
	}
}

func TestAlwaysExactOnRandomNetworks(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		net := topktest.RoomsNetwork(t, 6, 3, seed)
		src := trace.NewRoomActivity(seed, net.Placement.Groups, 6)
		for _, k := range []int{1, 2, 4} {
			net.Reset()
			r := &topk.Runner{Net: net, Source: src, Op: New(), Query: topk.SnapshotQuery{K: k, Agg: model.AggAvg}}
			results, err := r.Run(20)
			if err != nil {
				t.Fatal(err)
			}
			s := topk.Summarize(results)
			if s.CorrectPct != 100 {
				t.Errorf("seed %d k=%d: TAG correct only %.0f%%", seed, k, s.CorrectPct)
			}
		}
	}
}

func TestEveryNodeTransmitsEveryEpoch(t *testing.T) {
	net := topktest.Fig1Network(t)
	r := &topk.Runner{Net: net, Source: trace.Figure1Source(), Op: New(), Query: topk.SnapshotQuery{K: 1, Agg: model.AggAvg}}
	results, err := r.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	// 9 data messages (one per sensor) + 9 beacons per epoch.
	if got := results[0].Traffic.Messages; got != 18 {
		t.Errorf("messages in epoch = %d, want 18", got)
	}
}

func TestMinMaxAggregates(t *testing.T) {
	net := topktest.Fig1Network(t)
	for _, agg := range []model.AggKind{model.AggMin, model.AggMax, model.AggSum, model.AggCount} {
		net.Reset()
		r := &topk.Runner{Net: net, Source: trace.Figure1Source(), Op: New(), Query: topk.SnapshotQuery{K: 2, Agg: agg}}
		results, err := r.Run(1)
		if err != nil {
			t.Fatal(err)
		}
		if !results[0].Correct {
			t.Errorf("%v: got %v, want %v", agg, results[0].Answers, results[0].Exact)
		}
	}
}

func TestAttachRejectsBadQuery(t *testing.T) {
	net := topktest.Fig1Network(t)
	if err := New().Attach(net, topk.SnapshotQuery{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestName(t *testing.T) {
	if New().Name() != "tag" {
		t.Error("name")
	}
}
