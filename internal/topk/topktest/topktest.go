// Package topktest provides shared fixtures for operator tests: the paper's
// Figure 1 network, random multi-room networks, and historic window data.
// It lives under internal/topk so every operator package tests against the
// identical worlds.
package topktest

import (
	"testing"

	"kspot/internal/model"
	"kspot/internal/sim"
	"kspot/internal/topo"
	"kspot/internal/trace"
)

// Fig1Network builds the Figure 1 network over the paper's literal routing
// tree with default (lossless) options.
func Fig1Network(t testing.TB) *sim.Network {
	t.Helper()
	return Fig1NetworkOpts(t, sim.DefaultOptions())
}

// Fig1NetworkOpts builds the Figure 1 network with custom options.
func Fig1NetworkOpts(t testing.TB, opts sim.Options) *sim.Network {
	t.Helper()
	p := trace.Figure1Placement()
	tree := trace.Figure1Tree()
	links := topo.NewLinks()
	for child, parent := range tree.Parent {
		links.Connect(child, parent)
	}
	return sim.FromTree(p, links, tree, opts)
}

// roomsRetries is how many derived seeds a random layout gets before a
// suite gives up on it.
const roomsRetries = 5

// connectedRooms builds a g×perRoom rooms placement that is radio-connected
// at radius 30, retrying with derived seeds (seed+1, seed+2, ...) when the
// random layout disconnects. Returns the placement, the seed that
// produced it, and the last error when every derived seed failed.
func connectedRooms(g, perRoom int, seed int64) (*topo.Placement, int64, error) {
	var err error
	for i := int64(0); i < roomsRetries; i++ {
		p := topo.Rooms(g, perRoom, 12, seed+i)
		if _, err = topo.BuildTree(p, topo.DiskLinks(p, 30)); err == nil {
			return p, seed + i, nil
		}
	}
	return nil, seed, err
}

// RoomsNetwork builds a g-room, perRoom-sensors-per-room network with a
// radio radius that keeps it connected. A disconnected random layout is
// retried on derived seeds (seed+1, ...) so randomized suites don't
// silently lose coverage; only when every retry disconnects is the test
// skipped.
func RoomsNetwork(t testing.TB, g, perRoom int, seed int64) *sim.Network {
	t.Helper()
	p, _, err := connectedRooms(g, perRoom, seed)
	if err != nil {
		t.Skipf("topology disconnected for seeds %d..%d: %v", seed, seed+roomsRetries-1, err)
	}
	net, err := sim.New(p, 30, sim.DefaultOptions())
	if err != nil {
		t.Fatalf("connected placement failed to build: %v", err)
	}
	return net
}

// GridNetwork builds an n-node grid network (n must be a perfect square)
// regrouped into g contiguous groups.
func GridNetwork(t testing.TB, n, g int) *sim.Network {
	t.Helper()
	p, err := topo.Grid(n, 10)
	if err != nil {
		t.Fatal(err)
	}
	p.RegroupContiguous(g)
	net, err := sim.New(p, 15, sim.DefaultOptions())
	if err != nil {
		t.Fatalf("grid disconnected: %v", err)
	}
	return net
}

// WindowData samples a source into a historic window for every sensor.
func WindowData(net *sim.Network, src trace.Source, window int) map[model.NodeID][]model.Value {
	return trace.Series(src, net.Placement.SensorNodes(), window)
}
