// Package topktest provides shared fixtures for operator tests: the paper's
// Figure 1 network, random multi-room networks, and historic window data.
// It lives under internal/topk so every operator package tests against the
// identical worlds.
package topktest

import (
	"testing"

	"kspot/internal/model"
	"kspot/internal/sim"
	"kspot/internal/topo"
	"kspot/internal/trace"
)

// Fig1Network builds the Figure 1 network over the paper's literal routing
// tree with default (lossless) options.
func Fig1Network(t testing.TB) *sim.Network {
	t.Helper()
	return Fig1NetworkOpts(t, sim.DefaultOptions())
}

// Fig1NetworkOpts builds the Figure 1 network with custom options.
func Fig1NetworkOpts(t testing.TB, opts sim.Options) *sim.Network {
	t.Helper()
	p := trace.Figure1Placement()
	tree := trace.Figure1Tree()
	links := topo.NewLinks()
	for child, parent := range tree.Parent {
		links.Connect(child, parent)
	}
	return sim.FromTree(p, links, tree, opts)
}

// RoomsNetwork builds a g-room, perRoom-sensors-per-room network with a
// radio radius that keeps it connected; skips the test when the random
// layout happens to disconnect.
func RoomsNetwork(t testing.TB, g, perRoom int, seed int64) *sim.Network {
	t.Helper()
	p := topo.Rooms(g, perRoom, 12, seed)
	net, err := sim.New(p, 30, sim.DefaultOptions())
	if err != nil {
		t.Skipf("topology disconnected (seed %d): %v", seed, err)
	}
	return net
}

// GridNetwork builds an n-node grid network (n must be a perfect square)
// regrouped into g contiguous groups.
func GridNetwork(t testing.TB, n, g int) *sim.Network {
	t.Helper()
	p, err := topo.Grid(n, 10)
	if err != nil {
		t.Fatal(err)
	}
	p.RegroupContiguous(g)
	net, err := sim.New(p, 15, sim.DefaultOptions())
	if err != nil {
		t.Fatalf("grid disconnected: %v", err)
	}
	return net
}

// WindowData samples a source into a historic window for every sensor.
func WindowData(net *sim.Network, src trace.Source, window int) map[model.NodeID][]model.Value {
	return trace.Series(src, net.Placement.SensorNodes(), window)
}
