package topktest

import (
	"fmt"
	"testing"

	"kspot/internal/config"
	"kspot/internal/faults"
	"kspot/internal/model"
	"kspot/internal/stats"
	"kspot/internal/topk"
	"kspot/internal/topk/central"
	"kspot/internal/topk/fila"
	"kspot/internal/topk/mint"
	"kspot/internal/topk/naive"
	"kspot/internal/topk/tag"
	"kspot/internal/topk/tja"
	"kspot/internal/topk/tput"
)

// The cross-operator conformance suite: every operator, randomized seeded
// worlds, three environments (lossless, 10% and 30% Bernoulli loss), both
// substrates. The properties:
//
//   - zero loss: the exact operators (MINT, TAG, central, TJA, TPUT)
//     return the true top-k on every world and epoch; FILA's membership is
//     exact; naive's recall is reported and bounded.
//   - loss: recall and message counts are reported; recall never falls
//     below conservative floors and traffic stays within a bounded
//     multiple of the lossless run.
//   - identical fault seeds: the deterministic simulator and the
//     concurrent live substrate produce identical answers and identical
//     traffic counters (run under -race in CI).

const (
	conformanceSeed   = 20090329 // ICDE'09 week; arbitrary but pinned
	conformanceWorlds = 20
	conformanceEpochs = 8
)

var conformanceQuery = topk.SnapshotQuery{K: 2, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}

// snapshotOps are the grouped snapshot operators (FILA is handled apart:
// it monitors per-node top-k and needs singleton groups).
var snapshotOps = []struct {
	name  string
	exact bool
	mk    func() topk.SnapshotOperator
}{
	{"mint", true, func() topk.SnapshotOperator { return mint.New() }},
	{"tag", true, func() topk.SnapshotOperator { return tag.New() }},
	{"central", true, func() topk.SnapshotOperator { return central.NewSnapshot() }},
	{"naive", false, func() topk.SnapshotOperator { return naive.New() }},
}

var historicOps = []struct {
	name string
	mk   func() topk.HistoricOperator
}{
	{"tja", func() topk.HistoricOperator { return tja.New() }},
	{"tput", func() topk.HistoricOperator { return tput.New() }},
	{"central", func() topk.HistoricOperator { return central.NewHistoric() }},
}

var historicQuery = topk.HistoricQuery{K: 3, Agg: model.AggAvg, Window: 12}

func TestConformanceZeroLoss(t *testing.T) {
	worlds := Scenarios(conformanceSeed, conformanceWorlds)
	for _, op := range snapshotOps {
		op := op
		t.Run("snapshot/"+op.name, func(t *testing.T) {
			var acc stats.MetricsAccumulator
			for _, scen := range worlds {
				run := RunSnapshot(t, scen, op.mk, false, nil, conformanceQuery, conformanceEpochs)
				for _, res := range run.Results {
					m := stats.Score(res.Answers, res.Exact)
					acc.Add(m)
					if op.exact && !m.Exact {
						t.Errorf("%s/%s epoch %d: got %v, exact %v", op.name, scen.Name, res.Epoch, res.Answers, res.Exact)
					}
				}
			}
			t.Logf("%s lossless: %v", op.name, &acc)
			if !op.exact && acc.Mean().Recall < 0.80 {
				// Naive is wrong by design, but on clustered rooms it should
				// still find most of the top-k; a collapse signals breakage.
				t.Errorf("%s mean recall %.3f fell below 0.80", op.name, acc.Mean().Recall)
			}
		})
	}

	t.Run("snapshot/fila", func(t *testing.T) {
		var acc stats.MetricsAccumulator
		for _, scen := range worlds {
			run := RunSnapshot(t, SingletonGroups(scen), func() topk.SnapshotOperator { return fila.New() },
				false, nil, conformanceQuery, conformanceEpochs)
			for _, res := range run.Results {
				m := stats.Score(res.Answers, res.Exact)
				acc.Add(m)
				if m.Recall < 1 {
					// FILA's contract: membership exact, scores may be stale.
					t.Errorf("fila/%s epoch %d: membership diverged: got %v, exact %v", scen.Name, res.Epoch, res.Answers, res.Exact)
				}
			}
		}
		t.Logf("fila lossless: %v", &acc)
	})

	for _, op := range historicOps {
		op := op
		t.Run("historic/"+op.name, func(t *testing.T) {
			for _, scen := range worlds {
				run := RunHistoric(t, scen, op.mk, false, nil, historicQuery)
				if !model.EqualAnswers(run.Answers, run.Exact) {
					t.Errorf("%s/%s: got %v, exact %v", op.name, scen.Name, run.Answers, run.Exact)
				}
			}
		})
	}
}

func TestConformanceUnderLoss(t *testing.T) {
	worlds := Scenarios(conformanceSeed, conformanceWorlds)
	envs := []struct {
		name        string
		loss        float64
		recallFloor float64 // on the mean across all worlds and epochs
	}{
		// The link layer retries each frame up to 3 times, so per-frame
		// delivery is 1−p⁴: 10% loss is nearly transparent, 30% bites.
		// The suite is fully deterministic, so these floors are tight
		// regression tripwires, not statistical guesses.
		{"loss10", 0.10, 0.97},
		{"loss30", 0.30, 0.85},
	}
	for _, env := range envs {
		env := env
		t.Run(env.name, func(t *testing.T) {
			for _, op := range snapshotOps {
				recallFloor := env.recallFloor
				if !op.exact {
					// Naive is wrong by design even lossless; only demand
					// it not collapse further under loss.
					recallFloor = 0.75
				}
				var acc stats.MetricsAccumulator
				msgs, cleanMsgs := 0, 0
				for _, scen := range worlds {
					fcfg := &faults.Config{Seed: int64(1000 + int(env.loss*100)), Loss: env.loss}
					run := RunSnapshot(t, scen, op.mk, false, fcfg, conformanceQuery, conformanceEpochs)
					clean := RunSnapshot(t, scen, op.mk, false, nil, conformanceQuery, conformanceEpochs)
					msgs += run.Traffic.Messages
					cleanMsgs += clean.Traffic.Messages
					for _, res := range run.Results {
						acc.Add(stats.Score(res.Answers, res.Exact))
					}
				}
				mean := acc.Mean()
				t.Logf("%s %s: %v, messages %d (lossless %d)", op.name, env.name, &acc, msgs, cleanMsgs)
				if mean.Recall < recallFloor {
					t.Errorf("%s %s: mean recall %.3f below floor %.2f", op.name, env.name, mean.Recall, recallFloor)
				}
				// Loss may add recovery traffic but never unboundedly: the
				// link retries at most MaxRetries times per frame and the
				// operators add no new message classes.
				if msgs > 3*cleanMsgs {
					t.Errorf("%s %s: %d messages vs %d lossless — traffic unbounded under loss", op.name, env.name, msgs, cleanMsgs)
				}
				if msgs == 0 {
					t.Errorf("%s %s: no traffic at all", op.name, env.name)
				}
			}

			// FILA (singleton groups) and the historic operators degrade
			// predictably too: recall reported and floored.
			var filaAcc stats.MetricsAccumulator
			hist := make(map[string]*stats.MetricsAccumulator)
			for _, op := range historicOps {
				hist[op.name] = &stats.MetricsAccumulator{}
			}
			for _, scen := range worlds {
				fcfg := &faults.Config{Seed: int64(1000 + int(env.loss*100)), Loss: env.loss}
				run := RunSnapshot(t, SingletonGroups(scen), func() topk.SnapshotOperator { return fila.New() },
					false, fcfg, conformanceQuery, conformanceEpochs)
				for _, res := range run.Results {
					filaAcc.Add(stats.Score(res.Answers, res.Exact))
				}
				for _, op := range historicOps {
					h := RunHistoric(t, scen, op.mk, false, fcfg, historicQuery)
					hist[op.name].Add(stats.Score(h.Answers, h.Exact))
				}
			}
			t.Logf("fila %s: %v", env.name, &filaAcc)
			if filaAcc.Mean().Recall < 0.85 {
				t.Errorf("fila %s: mean recall %.3f below floor 0.85", env.name, filaAcc.Mean().Recall)
			}
			for _, op := range historicOps {
				t.Logf("historic %s %s: %v", op.name, env.name, hist[op.name])
				if hist[op.name].Mean().Recall < 0.80 {
					t.Errorf("historic %s %s: mean recall %.3f below floor 0.80", op.name, env.name, hist[op.name].Mean().Recall)
				}
			}
		})
	}
}

// TestConformanceSubstrateEquivalence pins the fault layer's determinism
// contract end to end: with identical fault seeds — loss, duplication,
// delay and churn all armed — the deterministic simulator and the
// concurrent goroutine substrate must report identical answers, message
// counts and byte counts for every operator. Run under -race in CI.
func TestConformanceSubstrateEquivalence(t *testing.T) {
	worlds := Scenarios(conformanceSeed, conformanceWorlds)
	faultEnv := func(scen *config.Scenario) *faults.Config {
		// Churn the two lowest node ids: die mid-run, one revives.
		a, b := scen.Nodes[0].ID, scen.Nodes[1].ID
		return &faults.Config{
			Seed:      int64(len(scen.Nodes)),
			Loss:      0.10,
			Duplicate: 0.03,
			Delay:     0.03,
			Churn: []faults.ChurnEvent{
				{Node: model.NodeID(a), Epoch: 3, Down: true},
				{Node: model.NodeID(a), Epoch: 6, Down: false},
				{Node: model.NodeID(b), Epoch: 5, Down: true},
			},
		}
	}

	type world struct {
		scen *config.Scenario
		mk   func() topk.SnapshotOperator
	}
	var cases []world
	for _, scen := range worlds {
		for _, op := range snapshotOps {
			cases = append(cases, world{scen, op.mk})
		}
		cases = append(cases, world{SingletonGroups(scen), func() topk.SnapshotOperator { return fila.New() }})
	}
	for _, c := range cases {
		c := c
		name := fmt.Sprintf("%s/%s", c.scen.Name, c.mk().Name())
		t.Run(name, func(t *testing.T) {
			fcfg := faultEnv(c.scen)
			det := RunSnapshot(t, c.scen, c.mk, false, fcfg, conformanceQuery, conformanceEpochs)
			live := RunSnapshot(t, c.scen, c.mk, true, fcfg, conformanceQuery, conformanceEpochs)
			for e := range det.Results {
				if !model.EqualAnswers(det.Results[e].Answers, live.Results[e].Answers) {
					t.Fatalf("epoch %d: det %v, live %v", e, det.Results[e].Answers, live.Results[e].Answers)
				}
			}
			if det.Traffic.Messages != live.Traffic.Messages {
				t.Errorf("messages: det %d, live %d", det.Traffic.Messages, live.Traffic.Messages)
			}
			if det.Traffic.TxBytes != live.Traffic.TxBytes {
				t.Errorf("tx bytes: det %d, live %d", det.Traffic.TxBytes, live.Traffic.TxBytes)
			}
			if det.Traffic.Frames != live.Traffic.Frames {
				t.Errorf("frames: det %d, live %d", det.Traffic.Frames, live.Traffic.Frames)
			}
		})
	}

	for _, scen := range worlds {
		for _, op := range historicOps {
			scen, op := scen, op
			t.Run(fmt.Sprintf("historic/%s/%s", scen.Name, op.name), func(t *testing.T) {
				fcfg := &faults.Config{Seed: 9, Loss: 0.10, Duplicate: 0.03}
				det := RunHistoric(t, scen, op.mk, false, fcfg, historicQuery)
				live := RunHistoric(t, scen, op.mk, true, fcfg, historicQuery)
				if !model.EqualAnswers(det.Answers, live.Answers) {
					t.Fatalf("answers: det %v, live %v", det.Answers, live.Answers)
				}
				if det.Traffic != live.Traffic {
					t.Errorf("traffic: det %+v, live %+v", det.Traffic, live.Traffic)
				}
			})
		}
	}
}
