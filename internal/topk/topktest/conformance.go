package topktest

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"kspot/internal/config"
	"kspot/internal/engine"
	"kspot/internal/faults"
	"kspot/internal/model"
	"kspot/internal/sim"
	"kspot/internal/topk"
	"kspot/internal/trace"
)

// The conformance kit: randomized, seeded worlds plus one-call runners
// that drive any operator over them on either substrate, under any fault
// environment. The cross-operator conformance suite (conformance_test.go)
// is built from these; operator packages may use them for their own
// randomized tests.

// RandomScenario derives one connected multi-room deployment from a seed:
// 3–6 rooms of 2–4 sensors with a rooms-activity workload. The scenario is
// a plain config.Scenario, so every caller can rebuild the identical fresh
// network as many times as it needs. Returns nil when the seed (and its
// derived retries) only produces disconnected layouts.
func RandomScenario(seed int64) *config.Scenario {
	rng := rand.New(rand.NewSource(seed))
	g := 3 + rng.Intn(4)
	perRoom := 2 + rng.Intn(3)
	p, used, err := connectedRooms(g, perRoom, seed)
	if err != nil {
		return nil
	}
	s := config.FromPlacement(fmt.Sprintf("conformance-%d", seed), p, 30)
	s.Workload = config.Workload{Kind: "rooms", Seed: used, Period: 4, ActiveFrac: 0.5}
	return s
}

// Scenarios returns n connected randomized deployments derived from seed —
// the standard world set of the conformance suite. The walk over candidate
// seeds is deterministic, so every run tests the identical worlds.
func Scenarios(seed int64, n int) []*config.Scenario {
	out := make([]*config.Scenario, 0, n)
	for cand := seed; len(out) < n; cand += 101 {
		if s := RandomScenario(cand); s != nil {
			out = append(out, s)
		}
	}
	return out
}

// SingletonGroups returns a copy of the scenario with every node in its
// own cluster — the per-node top-k form FILA monitors.
func SingletonGroups(s *config.Scenario) *config.Scenario {
	c := *s
	c.Name = s.Name + "-singleton"
	c.Nodes = append([]config.Node(nil), s.Nodes...)
	c.Clusters = make([]config.Cluster, 0, len(c.Nodes))
	for i := range c.Nodes {
		c.Nodes[i].Cluster = c.Nodes[i].ID
		c.Clusters = append(c.Clusters, config.Cluster{ID: c.Nodes[i].ID, Name: fmt.Sprintf("node %d", c.Nodes[i].ID)})
	}
	return &c
}

// SnapshotRun is one conformance execution of a snapshot operator.
type SnapshotRun struct {
	Results []topk.EpochResult
	Traffic sim.Snapshot
}

// RunSnapshot drives a fresh network built from the scenario with the
// operator for the given number of epochs — on the concurrent substrate
// when live is set, under the fault environment when fcfg is non-nil —
// and returns the per-epoch results plus the run's traffic totals.
func RunSnapshot(t testing.TB, scen *config.Scenario, mk func() topk.SnapshotOperator,
	live bool, fcfg *faults.Config, q topk.SnapshotQuery, epochs int) SnapshotRun {
	t.Helper()
	tp, src, cleanup := buildTransport(t, scen, live, fcfg)
	defer cleanup()
	r := &topk.Runner{Net: tp, Source: src, Op: mk(), Query: q}
	results, err := r.Run(epochs)
	if err != nil {
		t.Fatalf("%s on %s: %v", r.Op.Name(), scen.Name, err)
	}
	return SnapshotRun{Results: results, Traffic: tp.Snap()}
}

// HistoricRun is one conformance execution of a historic operator.
type HistoricRun struct {
	Answers []model.Answer
	Exact   []model.Answer
	Traffic sim.Snapshot
}

// RunHistoric executes a historic operator once over a fresh network's
// buffered windows, alongside the exact oracle for the same data.
func RunHistoric(t testing.TB, scen *config.Scenario, mk func() topk.HistoricOperator,
	live bool, fcfg *faults.Config, q topk.HistoricQuery) HistoricRun {
	t.Helper()
	tp, src, cleanup := buildTransport(t, scen, live, fcfg)
	defer cleanup()
	data := topk.HistoricData(trace.Series(src, tp.Topology().SensorNodes(), q.Window))
	op := mk()
	answers, err := op.Run(tp, q, data)
	if err != nil {
		t.Fatalf("%s on %s: %v", op.Name(), scen.Name, err)
	}
	return HistoricRun{Answers: answers, Exact: topk.ExactHistoric(data, q), Traffic: tp.Snap()}
}

// buildTransport assembles substrate + workload + faults for one run.
func buildTransport(t testing.TB, scen *config.Scenario, live bool, fcfg *faults.Config) (engine.Transport, trace.Source, func()) {
	t.Helper()
	net, err := scen.Network()
	if err != nil {
		t.Fatalf("scenario %s: %v", scen.Name, err)
	}
	src, err := scen.Source()
	if err != nil {
		t.Fatalf("scenario %s: %v", scen.Name, err)
	}
	var tp engine.Transport = net
	cleanup := func() {}
	if live {
		l := engine.NewLive(net, engine.LiveOptions{Window: 8})
		ctx, cancel := context.WithCancel(context.Background())
		l.Start(ctx)
		cleanup = func() { l.Stop(); cancel() }
		tp = l
	}
	if fcfg != nil {
		inj, err := faults.Wrap(tp, *fcfg)
		if err != nil {
			cleanup()
			t.Fatalf("faults on %s: %v", scen.Name, err)
		}
		tp = inj
	}
	return tp, src, cleanup
}
