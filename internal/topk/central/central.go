// Package central implements the no-aggregation baselines: every raw tuple
// is relayed hop by hop to the sink, which evaluates the query centrally.
// It provides both the snapshot form (ship every reading every epoch) and
// the historic form (ship every node's entire window) — the upper bound on
// traffic that in-network processing is measured against.
package central

import (
	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/radio"
	"kspot/internal/topk"
)

// Snapshot is the centralized snapshot operator.
type Snapshot struct {
	net       engine.Transport
	q         topk.SnapshotQuery
	installed bool
}

// NewSnapshot returns a centralized snapshot operator.
func NewSnapshot() *Snapshot { return &Snapshot{} }

// Name implements topk.SnapshotOperator.
func (o *Snapshot) Name() string { return "central" }

// Attach implements topk.SnapshotOperator.
func (o *Snapshot) Attach(net engine.Transport, q topk.SnapshotQuery) error {
	if err := q.Validate(); err != nil {
		return err
	}
	o.net, o.q = net, q
	o.installed = false
	return nil
}

// Epoch implements topk.SnapshotOperator: every sensor unicasts its raw
// reading to the sink along the tree, with no merging at relays.
func (o *Snapshot) Epoch(e model.Epoch, readings map[model.NodeID]model.Reading) ([]model.Answer, error) {
	if !o.installed {
		topk.InstallQuery(o.net, e)
		o.installed = true
	}
	v := model.NewView()
	for _, id := range o.net.Topology().SensorNodes() {
		r, ok := readings[id]
		if !ok {
			continue
		}
		if o.net.RouteToSink(id, radio.KindData, e, model.AppendReading(nil, r)) {
			v.Add(r)
		}
	}
	return v.TopK(o.q.Agg, o.q.K), nil
}

// Historic is the centralized historic operator: ship the whole window.
type Historic struct{}

// NewHistoric returns a centralized historic operator.
func NewHistoric() *Historic { return &Historic{} }

// Name implements topk.HistoricOperator.
func (o *Historic) Name() string { return "central-historic" }

// Run implements topk.HistoricOperator.
func (o *Historic) Run(net engine.Transport, q topk.HistoricQuery, data topk.HistoricData) ([]model.Answer, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := data.Validate(q); err != nil {
		return nil, err
	}
	received := make(topk.HistoricData)
	for _, id := range net.Topology().SensorNodes() {
		series, ok := data[id]
		if !ok {
			continue
		}
		// Encode the full window as (offset, value) records.
		payload := make([]byte, 0, len(series)*model.AnswerWireSize)
		for t, v := range series {
			payload = model.AppendAnswer(payload, model.Answer{Group: model.GroupID(t), Score: v})
		}
		if net.RouteToSink(id, radio.KindData, 0, payload) {
			received[id] = series
		}
	}
	return topk.ExactHistoric(received, q), nil
}
