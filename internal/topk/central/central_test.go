package central

import (
	"testing"

	"kspot/internal/model"
	"kspot/internal/radio"
	"kspot/internal/topk"
	"kspot/internal/topk/topktest"
	"kspot/internal/trace"
)

func TestSnapshotExactOnFigure1(t *testing.T) {
	net := topktest.Fig1Network(t)
	r := &topk.Runner{Net: net, Source: trace.Figure1Source(), Op: NewSnapshot(), Query: topk.SnapshotQuery{K: 4, Agg: model.AggAvg}}
	results, err := r.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if !res.Correct {
			t.Fatalf("centralized must be exact: %v vs %v", res.Answers, res.Exact)
		}
	}
	if !model.EqualAnswers(results[0].Answers, trace.Figure1Answers()) {
		t.Fatalf("ranking = %v", results[0].Answers)
	}
}

func TestSnapshotTrafficScalesWithDepth(t *testing.T) {
	net := topktest.Fig1Network(t)
	r := &topk.Runner{Net: net, Source: trace.Figure1Source(), Op: NewSnapshot(), Query: topk.SnapshotQuery{K: 1, Agg: model.AggAvg}}
	results, err := r.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	// Total data messages = sum of node depths (each reading is relayed
	// once per hop). Depths in the Figure 1 tree: s1,s2=1; s3,s4,s7=2;
	// s5,s9,s8=3; s6=4 -> 2*1+3*2+3*3+4 = 21, plus 9 beacons.
	if got := results[0].Traffic.Messages; got != 30 {
		t.Errorf("messages = %d, want 30", got)
	}
}

func TestHistoricExact(t *testing.T) {
	net := topktest.Fig1Network(t)
	q := topk.HistoricQuery{K: 3, Agg: model.AggAvg, Window: 32}
	src := trace.NewDiurnal(5)
	data := topk.HistoricData(topktest.WindowData(net, src, q.Window))
	got, err := NewHistoric().Run(net, q, data)
	if err != nil {
		t.Fatal(err)
	}
	want := topk.ExactHistoric(data, q)
	if !model.EqualAnswers(got, want) {
		t.Fatalf("historic = %v, want %v", got, want)
	}
}

func TestHistoricShipsWholeWindow(t *testing.T) {
	net := topktest.Fig1Network(t)
	q := topk.HistoricQuery{K: 1, Agg: model.AggAvg, Window: 64}
	data := topk.HistoricData(topktest.WindowData(net, trace.NewDiurnal(5), q.Window))
	if _, err := NewHistoric().Run(net, q, data); err != nil {
		t.Fatal(err)
	}
	// Each node ships 64 * 6 bytes payload, relayed depth times; just
	// check the order of magnitude lower bound: 9 nodes * 384 payload.
	if got := net.Counter.TotalTxBytes(); got < 9*64*6 {
		t.Errorf("historic bytes = %d, implausibly small", got)
	}
	if net.Counter.Messages[radio.KindData] == 0 {
		t.Error("no data messages recorded")
	}
}

func TestHistoricRejectsBadInput(t *testing.T) {
	net := topktest.Fig1Network(t)
	if _, err := NewHistoric().Run(net, topk.HistoricQuery{K: 0, Agg: model.AggAvg, Window: 4}, topk.HistoricData{}); err == nil {
		t.Error("bad query accepted")
	}
	q := topk.HistoricQuery{K: 1, Agg: model.AggAvg, Window: 4}
	if _, err := NewHistoric().Run(net, q, topk.HistoricData{1: {1}}); err == nil {
		t.Error("bad data accepted")
	}
}

func TestNames(t *testing.T) {
	if NewSnapshot().Name() != "central" || NewHistoric().Name() != "central-historic" {
		t.Error("names")
	}
}
