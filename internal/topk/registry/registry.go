// Package registry maps algorithm names to operator constructors — the one
// table behind both the public API's PostWith dispatch and the wire shard
// server's Attach handler. A remote shard must instantiate *exactly* the
// operator the coordinator would have run in-process (the federation
// layer's identical-answer guarantee assumes the same protocol executes on
// both sides of the socket), so the name → operator mapping lives here
// once instead of being duplicated per entry point.
package registry

import (
	"fmt"

	"kspot/internal/topk"
	"kspot/internal/topk/central"
	"kspot/internal/topk/fila"
	"kspot/internal/topk/mint"
	"kspot/internal/topk/naive"
	"kspot/internal/topk/tag"
	"kspot/internal/topk/tja"
	"kspot/internal/topk/tput"
)

// Snapshot instantiates the snapshot operator for an algorithm name. The
// empty name follows the paper's router default (MINT).
func Snapshot(name string) (topk.SnapshotOperator, error) {
	switch name {
	case "", "mint":
		return mint.New(), nil
	case "tag":
		return tag.New(), nil
	case "naive":
		return naive.New(), nil
	case "central":
		return central.NewSnapshot(), nil
	case "fila":
		return fila.New(), nil
	default:
		return nil, fmt.Errorf("topk: %q is not a snapshot algorithm", name)
	}
}

// Historic instantiates the historic operator for an algorithm name. The
// empty name follows the paper's router default (TJA).
func Historic(name string) (topk.HistoricOperator, error) {
	switch name {
	case "", "tja":
		return tja.New(), nil
	case "tput":
		return tput.New(), nil
	case "central":
		return central.NewHistoric(), nil
	default:
		return nil, fmt.Errorf("topk: %q is not a historic algorithm", name)
	}
}
