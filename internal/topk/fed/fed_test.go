package fed

import (
	"fmt"
	"math/rand"
	"testing"

	"kspot/internal/model"
	"kspot/internal/topk"
)

// fedQuery returns the K under test.
func fedQuery(k int) topk.SnapshotQuery {
	return topk.SnapshotQuery{K: k, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}
}

// randomWorld builds a seeded random deployment: groups with quantized
// scores scattered across shards (every group in exactly one shard), each
// shard's answer list ranked the way a snapshot operator ranks. Returns
// the shard rankings and the flat oracle's global ranking.
func randomWorld(rng *rand.Rand, shards, groups, k int) ([][]model.Answer, []model.Answer) {
	all := make([]model.Answer, 0, groups)
	perShard := make([][]model.Answer, shards)
	for g := 1; g <= groups; g++ {
		a := model.Answer{Group: model.GroupID(g), Score: model.Quantize(model.Value(rng.Float64() * 100))}
		all = append(all, a)
		s := rng.Intn(shards)
		perShard[s] = append(perShard[s], a)
	}
	for s := range perShard {
		model.SortAnswers(perShard[s])
		// A shard's operator reports its local TOP-K, not its whole view.
		if len(perShard[s]) > k {
			perShard[s] = perShard[s][:k]
		}
	}
	model.SortAnswers(all)
	if len(all) > k {
		all = all[:k]
	}
	return perShard, all
}

// TestMergeExactness pins the identical-answer argument over seeded random
// worlds, for full phase-1 shipments (ShipK = K, single round) and for
// starved shipments (ShipK = 1, forcing phase-2 targeted fetches).
func TestMergeExactness(t *testing.T) {
	for _, shipK := range []int{0, 1, 2} {
		t.Run(fmt.Sprintf("shipK=%d", shipK), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7 + shipK)))
			for trial := 0; trial < 200; trial++ {
				shards := 1 + rng.Intn(6)
				groups := rng.Intn(40)
				k := 1 + rng.Intn(8)
				perShard, want := randomWorld(rng, shards, groups, k)
				m, err := New(fedQuery(k), Config{ShipK: shipK}, nil)
				if err != nil {
					t.Fatal(err)
				}
				got, err := m.Merge(perShard)
				if err != nil {
					t.Fatal(err)
				}
				if !model.EqualAnswers(got, want) {
					t.Fatalf("trial %d (shards=%d groups=%d k=%d): merged %v, flat %v",
						trial, shards, groups, k, got, want)
				}
			}
		})
	}
}

// TestMergeReuse: one merger reused across epochs must not leak previous
// epochs' candidates into later results.
func TestMergeReuse(t *testing.T) {
	m, err := New(fedQuery(2), Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	first := [][]model.Answer{{{Group: 1, Score: 90}, {Group: 2, Score: 80}}, {{Group: 3, Score: 85}}}
	if _, err := m.Merge(first); err != nil {
		t.Fatal(err)
	}
	second := [][]model.Answer{{{Group: 4, Score: 10}}, {{Group: 5, Score: 20}}}
	got, err := m.Merge(second)
	if err != nil {
		t.Fatal(err)
	}
	want := []model.Answer{{Group: 5, Score: 20}, {Group: 4, Score: 10}}
	if !model.EqualAnswers(got, want) {
		t.Fatalf("reused merger answered %v, want %v", got, want)
	}
}

// TestMergeSingleRoundWithFullShipments: with ShipK = K a shard that ships
// its full local TOP-K can never hold an unshipped qualifying answer, so
// phase 2 must issue zero fetches.
func TestMergeSingleRoundWithFullShipments(t *testing.T) {
	var stats Stats
	m, err := New(fedQuery(3), Config{}, &stats)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		perShard, _ := randomWorld(rng, 4, 30, 3)
		if _, err := m.Merge(perShard); err != nil {
			t.Fatal(err)
		}
	}
	s := stats.Snapshot()
	if s.Phase2Reqs != 0 || s.Fetched != 0 {
		t.Fatalf("full shipments still fetched: %+v", s)
	}
	if s.Rounds != 100 || s.Phase1Msgs == 0 || s.TxBytes == 0 {
		t.Fatalf("stats not accounted: %+v", s)
	}
}

// TestMergePhase2Accounting: a starved phase 1 must trigger targeted
// fetches and account them.
func TestMergePhase2Accounting(t *testing.T) {
	var stats Stats
	m, err := New(fedQuery(3), Config{ShipK: 1}, &stats)
	if err != nil {
		t.Fatal(err)
	}
	// Shard 0 holds the entire top-3; shipping only its best forces the
	// coordinator to fetch the other two above the merged threshold.
	perShard := [][]model.Answer{
		{{Group: 1, Score: 90}, {Group: 2, Score: 89}, {Group: 3, Score: 88}, {Group: 4, Score: 1}},
		{{Group: 9, Score: 10}},
	}
	got, err := m.Merge(perShard)
	if err != nil {
		t.Fatal(err)
	}
	want := []model.Answer{{Group: 1, Score: 90}, {Group: 2, Score: 89}, {Group: 3, Score: 88}}
	if !model.EqualAnswers(got, want) {
		t.Fatalf("merged %v, want %v", got, want)
	}
	// Phase 1 delivered only 2 candidates for K=3, so the merged threshold
	// collapses to −∞ and the fetch returns shard 0's entire remainder (3
	// answers) — the recovery that keeps a starved phase 1 exact.
	s := stats.Snapshot()
	if s.Phase2Reqs != 1 || s.Phase2Msgs != 1 || s.Fetched != 3 {
		t.Fatalf("phase-2 accounting: %+v", s)
	}
}

// TestMergeRejectsSplitGroups: a group reported by two shards violates the
// sharding invariant and must fail loudly, not merge wrongly.
func TestMergeRejectsSplitGroups(t *testing.T) {
	m, err := New(fedQuery(2), Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	perShard := [][]model.Answer{
		{{Group: 1, Score: 50}},
		{{Group: 1, Score: 40}},
	}
	if _, err := m.Merge(perShard); err == nil {
		t.Fatal("split group accepted")
	}
}

// TestNewValidates: bad queries and ship sizes are rejected.
func TestNewValidates(t *testing.T) {
	if _, err := New(topk.SnapshotQuery{K: 0}, Config{}, nil); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := New(fedQuery(2), Config{ShipK: -1}, nil); err == nil {
		t.Error("negative ShipK accepted")
	}
}

// TestMergeKthBoundaryTies is the constructed K-th-boundary tie pin at
// ShipK=1: multiple groups across multiple shards tie the merged K-th
// score exactly. The tie rule is non-strict on both phase-2 comparisons —
// a shard whose τ_i EQUALS τ may still hold tied groups, and a fetched
// group whose score EQUALS τ may still enter the answer (the system's
// total order breaks score ties by group id, so a tied group with a
// smaller id belongs in the merged top-k). A strict `>` on either
// comparison skips a tied group and silently diverges from the flat run.
func TestMergeKthBoundaryTies(t *testing.T) {
	cases := []struct {
		name     string
		k        int
		perShard [][]model.Answer
	}{
		{
			// Shard 0 holds a group tied with its shipped answer; τ_0 ==
			// τ == 50, and the unshipped (g3,50) must be fetched: it ties
			// the K-th and wins on id against nothing — but (g2,50) loses
			// its seat to it only if ranking is exact.
			name: "tau-equals-tau_i",
			k:    2,
			perShard: [][]model.Answer{
				{{Group: 4, Score: 50}, {Group: 3, Score: 50}, {Group: 7, Score: 50}},
				{{Group: 5, Score: 50}},
			},
		},
		{
			// Three-way tie at the K-th across three shards; every shard
			// ships one and the unshipped tied groups must all be fetched.
			name: "three-way-tie",
			k:    3,
			perShard: [][]model.Answer{
				{{Group: 9, Score: 80}, {Group: 2, Score: 70}, {Group: 6, Score: 70}},
				{{Group: 8, Score: 70}, {Group: 3, Score: 70}},
				{{Group: 5, Score: 90}, {Group: 1, Score: 70}},
			},
		},
		{
			// Tie exactly AT the boundary where the fetched group's score
			// equals τ but its id is larger — it must still be fetched so
			// the final cut ranks the tie identically to the flat run.
			name: "tie-below-shipped",
			k:    1,
			perShard: [][]model.Answer{
				{{Group: 2, Score: 60}, {Group: 4, Score: 60}},
				{{Group: 1, Score: 60}},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Flat reference: union of every shard's full ranking, ranked
			// and cut by the system-wide total order.
			var all []model.Answer
			for _, ans := range tc.perShard {
				all = append(all, ans...)
			}
			model.SortAnswers(all)
			want := all
			if len(want) > tc.k {
				want = want[:tc.k]
			}
			m, err := New(fedQuery(tc.k), Config{ShipK: 1}, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.Merge(tc.perShard)
			if err != nil {
				t.Fatal(err)
			}
			if !model.EqualAnswers(got, want) {
				t.Fatalf("tied K-th boundary diverged: merged %v, flat %v", got, want)
			}
		})
	}
}
