package fed

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"kspot/internal/model"
	"kspot/internal/topk"
)

// fakeShard holds one shard's node series in memory and answers the
// coordinator's two calls the way a real shard protocol does: LocalTopK
// ranks instants by exact local sum (quantized to wire resolution, as a
// SUM-pinned historic operator returns), FetchSums serves exact sums.
type fakeShard struct {
	series   [][]model.Value // per shard node
	starved  bool            // LocalTopK returns nothing (degraded run)
	fetches  int
	fetchIDs []model.GroupID
}

func (f *fakeShard) localSums(w int) []int64 {
	sums := make([]int64, w)
	for _, s := range f.series {
		for t, v := range s {
			sums[t] += int64(model.ToFixed(v))
		}
	}
	return sums
}

func (f *fakeShard) LocalTopK(shipK int) ([]model.Answer, int, error) {
	if f.starved {
		return nil, len(f.series), nil
	}
	if len(f.series) == 0 {
		return nil, 0, nil
	}
	w := len(f.series[0])
	sums := f.localSums(w)
	ans := make([]model.Answer, 0, w)
	for t := 0; t < w; t++ {
		ans = append(ans, model.Answer{Group: model.GroupID(t), Score: topk.FinalScore(sums[t], len(f.series), model.AggSum)})
	}
	model.SortAnswers(ans)
	if len(ans) > shipK {
		ans = ans[:shipK]
	}
	return ans, len(f.series), nil
}

func (f *fakeShard) FetchSums(ids []model.GroupID) (map[model.GroupID]int64, error) {
	f.fetches++
	f.fetchIDs = append(f.fetchIDs, ids...)
	if len(f.series) == 0 {
		return map[model.GroupID]int64{}, nil
	}
	sums := f.localSums(len(f.series[0]))
	out := make(map[model.GroupID]int64, len(ids))
	for _, id := range ids {
		out[id] = sums[id]
	}
	return out, nil
}

// historicWorld builds a seeded random deployment: node series scattered
// across shards, returning the shards and the flat oracle input.
func historicWorld(rng *rand.Rand, shards, nodes, w int) ([]*fakeShard, topk.HistoricData) {
	fs := make([]*fakeShard, shards)
	for i := range fs {
		fs[i] = &fakeShard{}
	}
	all := topk.HistoricData{}
	for n := 1; n <= nodes; n++ {
		s := make([]model.Value, w)
		for t := range s {
			// Tie-rich: a few centi-levels straddling AVG rounding edges.
			s[t] = []model.Value{1.99, 2.00, 2.01, 4.00, 60.0, 61.0}[rng.Intn(6)]
		}
		all[model.NodeID(n)] = s
		sh := fs[rng.Intn(shards)]
		sh.series = append(sh.series, s)
	}
	return fs, all
}

func asHistoricShards(fs []*fakeShard) []HistoricShard {
	out := make([]HistoricShard, len(fs))
	for i, f := range fs {
		out[i] = f
	}
	return out
}

// TestHistoricMergeExactness pins the identical-answer argument over
// seeded random worlds for both aggregates, full shipments and starved
// ShipK=1 shipments, sequential and parallel fan-out.
func TestHistoricMergeExactness(t *testing.T) {
	for _, shipK := range []int{0, 1, 2} {
		for _, agg := range []model.AggKind{model.AggAvg, model.AggSum} {
			t.Run(fmt.Sprintf("shipK=%d/%v", shipK, agg), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(13 + shipK)))
				for trial := 0; trial < 300; trial++ {
					shards := 1 + rng.Intn(5)
					nodes := 1 + rng.Intn(12)
					w := 1 + rng.Intn(24)
					k := 1 + rng.Intn(8)
					fs, all := historicWorld(rng, shards, nodes, w)
					q := topk.HistoricQuery{K: k, Agg: agg, Window: w}
					m, err := NewHistoric(q, Config{ShipK: shipK}, nil)
					if err != nil {
						t.Fatal(err)
					}
					got, err := m.Run(asHistoricShards(fs), trial%2 == 1)
					if err != nil {
						t.Fatal(err)
					}
					want := topk.ExactHistoric(all, q)
					if !model.EqualAnswers(got, want) {
						t.Fatalf("trial %d (shards=%d nodes=%d w=%d k=%d): merged %v, flat %v",
							trial, shards, nodes, w, k, got, want)
					}
				}
			})
		}
	}
}

// TestHistoricMergeKthBoundaryTie is the constructed tie at ShipK=1: the
// per-node series of the TPUT boundary regression split across three
// shards. Instant 1's upper bound stays strictly below the merged K-th
// as a raw sum, but AVG over the five nodes quantizes both to the same
// score — the tie goes to instant 1's smaller id, so phase 2 must fetch
// it from every shard that did not ship it, or the merge silently
// diverges from the flat run.
func TestHistoricMergeKthBoundaryTie(t *testing.T) {
	series := [][]model.Value{
		{2.00, 6.00, 4.01},
		{0.01, 2.00, 5.99},
		{0.01, 1.99, 4.01},
		{0.01, 4.00, 2.01},
		{6.00, 4.00, 2.00},
	}
	fs := []*fakeShard{
		{series: series[0:2]},
		{series: series[2:3]},
		{series: series[3:5]},
	}
	all := topk.HistoricData{}
	for i, s := range series {
		all[model.NodeID(i+1)] = s
	}
	q := topk.HistoricQuery{K: 1, Agg: model.AggAvg, Window: 3}
	want := topk.ExactHistoric(all, q)
	if len(want) != 1 || want[0].Group != 1 {
		t.Fatalf("oracle did not tie toward instant 1: %v", want)
	}
	m, err := NewHistoric(q, Config{ShipK: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Run(asHistoricShards(fs), false)
	if err != nil {
		t.Fatal(err)
	}
	if !model.EqualAnswers(got, want) {
		t.Fatalf("K-th boundary tie dropped at the coordinator: merged %v, flat %v", got, want)
	}
}

// TestHistoricMergeAccounting: full-window shipments leave nothing to
// fetch; starved shipments fetch and account every phase.
func TestHistoricMergeAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fs, _ := historicWorld(rng, 3, 9, 8)
	q := topk.HistoricQuery{K: 2, Agg: model.AggAvg, Window: 8}

	var full Stats
	m, err := NewHistoric(q, Config{ShipK: 8}, &full) // ShipK = whole window
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(asHistoricShards(fs), false); err != nil {
		t.Fatal(err)
	}
	s := full.Snapshot()
	if s.Phase2Reqs != 0 || s.Fetched != 0 {
		t.Fatalf("full-window shipments still fetched: %+v", s)
	}
	if s.Rounds != 1 || s.Phase1Msgs == 0 || s.TxBytes == 0 {
		t.Fatalf("phase-1 accounting missing: %+v", s)
	}

	var starved Stats
	m, err = NewHistoric(q, Config{ShipK: 1}, &starved)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(asHistoricShards(fs), false); err != nil {
		t.Fatal(err)
	}
	s = starved.Snapshot()
	if s.Phase2Reqs == 0 || s.Phase2Msgs != s.Phase2Reqs || s.Fetched == 0 {
		t.Fatalf("starved phase 1 did not account its fetches: %+v", s)
	}
	// Every fetch names only instants the shard did not ship, sorted.
	for i, f := range fs {
		if f.fetches > 1 {
			t.Fatalf("shard %d fetched %d times in one round", i, f.fetches)
		}
		if !sort.SliceIsSorted(f.fetchIDs, func(a, b int) bool { return f.fetchIDs[a] < f.fetchIDs[b] }) {
			t.Fatalf("shard %d fetch ids unsorted: %v", i, f.fetchIDs)
		}
	}
}

// TestHistoricMergeDegradedShard: a shard whose local run returns no
// ranking (nodes > 0 but nothing shipped) cannot bound its unshipped
// region, so the coordinator must fetch everything from it and stay
// exact.
func TestHistoricMergeDegradedShard(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	fs, all := historicWorld(rng, 2, 6, 6)
	fs[1].starved = true
	q := topk.HistoricQuery{K: 3, Agg: model.AggAvg, Window: 6}
	m, err := NewHistoric(q, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Run(asHistoricShards(fs), false)
	if err != nil {
		t.Fatal(err)
	}
	want := topk.ExactHistoric(all, q)
	if !model.EqualAnswers(got, want) {
		t.Fatalf("degraded shard broke exactness: merged %v, flat %v", got, want)
	}
	if fs[1].fetches == 0 {
		t.Fatal("degraded shard was never fetched from")
	}
}

// TestNewHistoricValidates: bad queries and ship sizes are rejected.
func TestNewHistoricValidates(t *testing.T) {
	if _, err := NewHistoric(topk.HistoricQuery{K: 0, Agg: model.AggAvg, Window: 4}, Config{}, nil); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := NewHistoric(topk.HistoricQuery{K: 2, Agg: model.AggAvg, Window: 4}, Config{ShipK: -1}, nil); err == nil {
		t.Error("negative ShipK accepted")
	}
}
