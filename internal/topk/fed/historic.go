package fed

// Historic federation: TOP-K ... WITH HISTORY on a sharded deployment.
//
// Unlike the snapshot case, a time instant is NOT confined to one shard —
// its global score is the aggregate of that instant's readings across
// every shard's windows, so the coordinator merges *partial sums*, the
// setting the original TPUT algorithm was designed for. The two-phase
// round per historic execution:
//
//	Phase 1: every shard runs its historic operator unchanged over its own
//	         MicroHash-backed windows, ranked by the shard-local SUM
//	         partial (SUM and AVG rank identically — AVG divides every
//	         instant by the same participant count). It ships its top
//	         ShipK instants with their exact local sums, plus its local
//	         threshold τ_i — the lowest shipped sum while unshipped
//	         instants remain, −∞ when the shard shipped its whole window.
//	Phase 2: the coordinator knows the exact global sum of every instant
//	         reported by ALL shards and sets τ = the K-th best of those.
//	         For any other instant t, each missing shard i contributes at
//	         most τ_i (local rankings are exact), so UB(t) = Σ reported +
//	         Σ missing τ_i. Instants whose UB can still reach or tie τ in
//	         final quantized-score space are fetched — one targeted
//	         CL-style sweep per shard for exactly the instants that shard
//	         did not report — and everything fetched is then exact.
//
// Exactness (on fault-free networks, the same scope as the operators'
// own exactness — under armed loss the flat operators divide AVG by the
// reached-node count, which a coordinator cannot observe, so degraded
// runs degrade rather than match bit-for-bit). Shards share one flat
// trace source and global node ids, and every node buffers the full
// window, so per-shard epoch indices align at the coordinator by
// construction and Σ shard sums = the flat sum, integer-exact. An instant excluded by phase 2 has true global sum ≤
// UB(t) with FinalScore(UB) strictly below FinalScore(τ); since at least
// K instants score ≥ FinalScore(τ), the excluded instant is strictly
// dominated regardless of tie-breaking and cannot enter the flat top-K.
// The threshold comparison must happen in FinalScore space, not sum
// space: an AVG division can quantize two distinct sums into a tie that
// the system's total order then breaks by instant id — comparing raw sums
// there would silently diverge from the flat run at the K-th boundary
// (the same tie rule fed.Merger applies to snapshot scores).
//
// With ShipK = K phase 2 does NOT degenerate to zero fetches the way the
// snapshot merge does: a globally high instant can rank below ShipK in
// every shard. Fetches are the norm here — the TPUT regime — and are
// accounted per round in Stats.

import (
	"fmt"
	"math"
	"sync"

	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/topk"
)

// HistoricShard is the coordinator's surface onto one shard's historic
// execution. Implementations run the real per-shard protocols over the
// shard's transport (kspot.Cursor adapts the engine deployments).
type HistoricShard interface {
	// LocalTopK runs the shard-local historic operator for the shard's top
	// shipK instants ranked by local SUM partial, returning the ranked
	// answers (Score = the exact local sum in engineering units, wire-
	// quantized) and the number of shard nodes holding a buffered window.
	LocalTopK(shipK int) (answers []model.Answer, nodes int, err error)
	// FetchSums returns the shard's exact local fixed-point sums for the
	// given instants — the phase-2 targeted sweep.
	FetchSums(ids []model.GroupID) (map[model.GroupID]int64, error)
}

// OperatorShard adapts one shard's transport + buffered windows to the
// coordinator's merge surface, running a real historic operator for
// phase 1 and the shared CL-style targeted sweep for phase 2. Both the
// public cursor and the benchmark harness federate through this one
// adapter, so the merge always measures exactly the protocol it serves.
type OperatorShard struct {
	Op   topk.HistoricOperator
	Tp   engine.Transport
	Q    topk.HistoricQuery
	Data topk.HistoricData
}

// LocalTopK implements HistoricShard. The shard operator runs unchanged,
// pinned to the SUM aggregate: SUM and AVG rank instants identically
// within a shard (AVG divides every instant by the same participant
// count), and the coordinator needs the exact partial sums — a
// shard-local AVG would bake in the shard's own divisor and lose them.
func (h *OperatorShard) LocalTopK(shipK int) ([]model.Answer, int, error) {
	local := h.Q
	local.K = shipK
	local.Agg = model.AggSum
	ans, err := h.Op.Run(h.Tp, local, h.Data)
	if err != nil {
		return nil, 0, err
	}
	return ans, len(h.Data), nil
}

// FetchSums implements HistoricShard.
func (h *OperatorShard) FetchSums(ids []model.GroupID) (map[model.GroupID]int64, error) {
	return topk.FetchHistoricSums(h.Tp, h.Data, ids), nil
}

// Historic sentinel bounds for τ_i: exhausted shards bound their (empty)
// unshipped region by −∞; a degraded shard that returned no ranking at all
// cannot bound it and forces a fetch. Quarter-range keeps Σ over shards
// overflow-free.
const (
	tauExhausted = math.MinInt64 / 4
	tauUnknown   = math.MaxInt64 / 4
)

// HistoricMerger merges shard-local historic rankings at the coordinator.
// One merger serves one historic execution stream; Stats, shared across a
// deployment's mergers, is safe for concurrent use.
type HistoricMerger struct {
	q     topk.HistoricQuery
	shipK int
	stats *Stats
}

// NewHistoric builds a historic merger for a query. stats may be nil.
func NewHistoric(q topk.HistoricQuery, cfg Config, stats *Stats) (*HistoricMerger, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	shipK := cfg.ShipK
	if shipK == 0 {
		shipK = q.K
	}
	if shipK < 1 {
		return nil, fmt.Errorf("fed: ShipK must be >= 1, got %d", shipK)
	}
	return &HistoricMerger{q: q, shipK: shipK, stats: stats}, nil
}

// shardReport is one shard's phase-1 result at the coordinator.
type shardReport struct {
	sums  map[model.GroupID]int64 // reported local sums, centi-units
	tau   int64                   // upper bound on any unreported local sum
	nodes int
	err   error
}

// Run executes the two-phase merge over the shards. parallel fans the
// per-shard protocol executions out concurrently (the live substrate,
// where each shard is its own goroutine-per-node deployment); the
// deterministic path keeps shard order. The result is byte-identical to
// the flat historic run.
func (m *HistoricMerger) Run(shards []HistoricShard, parallel bool) ([]model.Answer, error) {
	var d Snapshot
	d.Rounds = 1
	w := m.q.Window

	// Phase 1: per-shard local top-ShipK, fanned out on the live substrate.
	reports := make([]shardReport, len(shards))
	m.eachShard(shards, parallel, func(i int, sh HistoricShard) {
		ans, nodes, err := sh.LocalTopK(m.shipK)
		r := shardReport{sums: make(map[model.GroupID]int64, len(ans)), nodes: nodes, err: err}
		for _, a := range ans {
			if int(a.Group) >= w {
				r.err = fmt.Errorf("fed: shard %d reports instant %d outside window %d", i, a.Group, w)
				break
			}
			if _, dup := r.sums[a.Group]; dup {
				r.err = fmt.Errorf("fed: shard %d reports instant %d twice", i, a.Group)
				break
			}
			// The shard's score is its exact local sum, wire-quantized;
			// ToFixed recovers the centi-unit integer exactly.
			r.sums[a.Group] = int64(model.ToFixed(a.Score))
		}
		switch {
		case len(ans) >= w || nodes == 0:
			r.tau = tauExhausted // whole window shipped (or nothing to ship)
		case len(ans) > 0:
			r.tau = int64(model.ToFixed(ans[len(ans)-1].Score))
		default:
			r.tau = tauUnknown // degraded run returned no ranking: force fetch
		}
		reports[i] = r
	})
	dataShards := 0
	nTotal := 0
	for i := range reports {
		if reports[i].err != nil {
			return nil, reports[i].err
		}
		if reports[i].nodes == 0 {
			continue
		}
		dataShards++
		nTotal += reports[i].nodes
		d.Phase1Msgs++
		d.TxBytes += msgHeaderSize + len(reports[i].sums)*answerSize
	}
	if dataShards == 0 {
		if m.stats != nil {
			m.stats.add(d)
		}
		return nil, nil
	}

	// The coordinator's table: exact totals for fully covered instants,
	// τ_i-bounded totals otherwise. Every data shard holds the full window,
	// so each instant in [0, w) has a contribution from each of them.
	cover := make([]int, w)
	total := make([]int64, w)
	for i := range reports {
		if reports[i].nodes == 0 {
			continue
		}
		for id, s := range reports[i].sums {
			cover[id]++
			total[id] += s
		}
	}
	exact := make([]model.Answer, 0, w)
	for t := 0; t < w; t++ {
		if cover[t] == dataShards {
			exact = append(exact, model.Answer{Group: model.GroupID(t), Score: topk.FinalScore(total[t], nTotal, m.q.Agg)})
		}
	}
	model.SortAnswers(exact)
	tauScore := model.KthScore(exact, m.q.K) // −∞ when coverage is starved

	// Phase 2: fetch every instant whose upper bound can still reach or
	// tie the merged K-th in final quantized-score space, from exactly the
	// shards that did not report it.
	need := make([][]model.GroupID, len(shards))
	for t := 0; t < w; t++ {
		if cover[t] == dataShards {
			continue
		}
		ub := int64(0)
		unknown := false
		for i := range reports {
			if reports[i].nodes == 0 {
				continue
			}
			if s, ok := reports[i].sums[model.GroupID(t)]; ok {
				ub += s
			} else {
				ub += reports[i].tau
				unknown = unknown || reports[i].tau == tauUnknown
			}
		}
		if !unknown && topk.FinalScore(ub, nTotal, m.q.Agg) < tauScore {
			continue // strictly dominated by K exact instants, ties included
		}
		for i := range reports {
			if reports[i].nodes == 0 {
				continue
			}
			if _, ok := reports[i].sums[model.GroupID(t)]; !ok {
				need[i] = append(need[i], model.GroupID(t))
			}
		}
		cover[t] = -1 // mark as a candidate pending exact totals
	}
	fetched := make([]map[model.GroupID]int64, len(shards))
	var errMu sync.Mutex
	var fetchErr error
	m.eachShard(shards, parallel, func(i int, sh HistoricShard) {
		if len(need[i]) == 0 {
			return
		}
		sums, err := sh.FetchSums(need[i])
		if err != nil {
			errMu.Lock()
			if fetchErr == nil {
				fetchErr = fmt.Errorf("fed: shard %d fetch: %w", i, err)
			}
			errMu.Unlock()
			return
		}
		fetched[i] = sums
	})
	if fetchErr != nil {
		return nil, fetchErr
	}
	for i := range shards {
		if len(need[i]) == 0 {
			continue
		}
		d.Phase2Reqs++
		d.TxBytes += fetchReqSize + 2*len(need[i])
		d.Phase2Msgs++
		d.TxBytes += msgHeaderSize + len(need[i])*answerSize
		d.Fetched += len(need[i])
		for _, id := range need[i] {
			total[id] += fetched[i][id]
		}
	}

	answers := make([]model.Answer, 0, len(exact))
	for t := 0; t < w; t++ {
		if cover[t] == dataShards || cover[t] == -1 {
			answers = append(answers, model.Answer{Group: model.GroupID(t), Score: topk.FinalScore(total[t], nTotal, m.q.Agg)})
		}
	}
	model.SortAnswers(answers)
	if len(answers) > m.q.K {
		answers = answers[:m.q.K]
	}
	if m.stats != nil {
		m.stats.add(d)
	}
	return answers, nil
}

// eachShard applies fn to every shard, concurrently when parallel.
func (m *HistoricMerger) eachShard(shards []HistoricShard, parallel bool, fn func(i int, sh HistoricShard)) {
	if !parallel || len(shards) < 2 {
		for i, sh := range shards {
			fn(i, sh)
		}
		return
	}
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh HistoricShard) {
			defer wg.Done()
			fn(i, sh)
		}(i, sh)
	}
	wg.Wait()
}
