// Package fed is the federation layer's merge operator: it combines the
// shard-local TOP-K rankings of a federated deployment into the global
// TOP-K at the coordinator tier, using a TPUT-style threshold round
// (Cao & Wang's three-phase uniform threshold algorithm, collapsed to two
// phases by KSpot's sharding invariant).
//
// The setting: a deployment's sensor field is partitioned by cluster into
// shard networks (internal/config's shards block). Each shard runs the
// per-shard snapshot operator — MINT, TAG, whichever the cursor pinned —
// unchanged on its own network and produces its local TOP-K ranking. The
// coordinator (a wired tier above the shard base stations, the analogue of
// the MIB520 gateways' ethernet backhaul) merges those rankings:
//
//	Phase 1: every shard ships its top ShipK answers plus its local
//	         threshold τ_i — the score of the lowest shipped answer when
//	         more remain, −∞ when the shard shipped everything.
//	Phase 2: the coordinator ranks the union and computes the merged
//	         threshold τ = the K-th best received score. Any shard whose
//	         τ_i ≥ τ may still hold unshipped answers at or above τ, so
//	         the coordinator issues it a targeted fetch ("your remaining
//	         answers scoring ≥ τ"); shards with τ_i < τ provably cannot
//	         contribute and are not contacted.
//
// Identical-answer argument. Clusters are physical regions, so every GROUP
// BY group lives wholly inside one shard and its aggregate is computed by
// exactly the nodes that compute it in the flat deployment — fixed-point
// partial merging is associative, so the group's score is bit-identical.
// A group in the global TOP-K therefore ranks at least as high within its
// own shard, i.e. it appears in that shard's local TOP-K. If phase 1
// shipped it, the coordinator has it; if not, its score is ≥ the global
// K-th ≥ τ (the K-th over a subset never exceeds the K-th over the union)
// and ≤ τ_i, so phase 2 fetches it. Every global answer reaches the
// coordinator with its exact flat score, ranking and tie-breaking use the
// system-wide model.SortAnswers order, and the merged answer is therefore
// byte-identical to the flat run's. With ShipK = K (the default) a shard
// that ships its full local TOP-K can never satisfy τ_i ≥ τ strictly
// short of exhaustion, so phase 2 degenerates to zero fetches and the
// merge completes in a single round.
package fed

import (
	"fmt"
	"sync"

	"kspot/internal/model"
	"kspot/internal/topk"
)

// Wire sizes of the coordinator tier, accounted like the radio tier's
// payloads so the System Panel can weigh backhaul against in-network
// traffic: a phase-1/phase-2 report is epoch(4) + count(2) per message
// plus group(2) + fixed-point score(4) per answer; a phase-2 fetch request
// carries the epoch and the threshold.
const (
	msgHeaderSize = 6
	answerSize    = 6
	fetchReqSize  = 10
)

// Stats accumulates the coordinator tier's traffic across every federated
// query of a deployment. Safe for concurrent use.
type Stats struct {
	mu sync.Mutex
	s  Snapshot
}

// Snapshot is one point-in-time copy of the coordinator tier's counters.
type Snapshot struct {
	// Rounds counts merge invocations (one per federated epoch per query).
	Rounds int
	// Phase1Msgs counts shard→coordinator phase-1 reports.
	Phase1Msgs int
	// Phase2Reqs counts coordinator→shard targeted fetch requests;
	// Phase2Msgs the shards' replies.
	Phase2Reqs int
	Phase2Msgs int
	// Fetched counts answers shipped in phase-2 replies.
	Fetched int
	// TxBytes totals both phases' payload bytes.
	TxBytes int
}

// Snapshot returns a copy of the counters.
func (s *Stats) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.s
}

func (s *Stats) add(d Snapshot) {
	s.mu.Lock()
	s.s.Rounds += d.Rounds
	s.s.Phase1Msgs += d.Phase1Msgs
	s.s.Phase2Reqs += d.Phase2Reqs
	s.s.Phase2Msgs += d.Phase2Msgs
	s.s.Fetched += d.Fetched
	s.s.TxBytes += d.TxBytes
	s.mu.Unlock()
}

// Config tunes the merge.
type Config struct {
	// ShipK is the phase-1 shipment size per shard. 0 means K — the
	// single-round exact default. Smaller values trade phase-2 fetch
	// round-trips for smaller phase-1 reports (the TPUT bandwidth knob);
	// the merge stays exact for any ShipK ≥ 1.
	ShipK int
}

// Merger merges shard-local TOP-K rankings at the coordinator. One Merger
// serves one posted query; it reuses its scratch buffers across epochs and
// is not safe for concurrent use (the scheduler runs one epoch of a query
// at a time). Stats, shared across a deployment's mergers, is.
type Merger struct {
	k     int
	shipK int
	stats *Stats

	merged  []model.Answer // scratch: the coordinator's candidate table
	shipped map[model.GroupID]bool
}

// New builds a merger for a query. stats may be nil (no accounting).
func New(q topk.SnapshotQuery, cfg Config, stats *Stats) (*Merger, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	shipK := cfg.ShipK
	if shipK == 0 {
		shipK = q.K
	}
	if shipK < 1 {
		return nil, fmt.Errorf("fed: ShipK must be >= 1, got %d", shipK)
	}
	return &Merger{k: q.K, shipK: shipK, stats: stats, shipped: make(map[model.GroupID]bool)}, nil
}

// Merge combines the shards' local rankings into the exact global TOP-K.
// shardAnswers[i] is shard i's ranked local TOP-K (model.SortAnswers
// order, as every snapshot operator returns); the result is in the same
// order. The returned slice is freshly allocated and owned by the caller
// — cursors buffer outcomes across epochs, so the candidate scratch the
// merger reuses internally must never escape.
func (m *Merger) Merge(shardAnswers [][]model.Answer) ([]model.Answer, error) {
	var d Snapshot
	d.Rounds = 1
	m.merged = m.merged[:0]
	clear(m.shipped)

	// Phase 1: each shard reports its top ShipK answers and its local
	// threshold τ_i (the lowest shipped score while more remain).
	taus := make([]model.Value, len(shardAnswers))
	for i, ans := range shardAnswers {
		n := min(m.shipK, len(ans))
		if len(ans) > 0 {
			d.Phase1Msgs++
			d.TxBytes += msgHeaderSize + n*answerSize
		}
		for _, a := range ans[:n] {
			if m.shipped[a.Group] {
				return nil, fmt.Errorf("fed: shard %d reports group %d twice (clusters must partition across shards)", i, a.Group)
			}
			m.merged = append(m.merged, a)
			m.shipped[a.Group] = true
		}
		if n < len(ans) {
			taus[i] = ans[n-1].Score
		} else {
			taus[i] = topk.MinusInf() // the shard is exhausted
		}
	}
	model.SortAnswers(m.merged)
	tau := model.KthScore(m.merged, m.k)

	// Phase 2: targeted fetch from every shard whose unshipped region may
	// still intersect the global TOP-K (τ_i ≥ τ). The fetch returns the
	// shard's remaining local answers scoring at or above the merged
	// threshold; shards below it provably hold nothing that matters.
	//
	// K-th-boundary tie rule: both comparisons are deliberately NON-strict.
	// When several groups tie the merged K-th score, the system's total
	// order (model.SortAnswers) breaks the tie by ascending group id, so a
	// tied group with a smaller id belongs in the answer even though it
	// does not beat τ — a shard with τ_i == τ must be fetched, and a
	// fetched answer with score == τ must be kept. A strict `>` on either
	// line skips a tied group and silently diverges from the flat run
	// (pinned by TestMergeKthBoundaryTies at ShipK=1).
	for i, ans := range shardAnswers {
		if taus[i] < tau || m.shipK >= len(ans) {
			continue
		}
		d.Phase2Reqs++
		d.TxBytes += fetchReqSize
		fetched := 0
		for _, a := range ans[m.shipK:] {
			if a.Score < tau {
				break // ranked order: nothing further qualifies
			}
			if m.shipped[a.Group] {
				return nil, fmt.Errorf("fed: shard %d reports group %d twice (clusters must partition across shards)", i, a.Group)
			}
			m.shipped[a.Group] = true
			m.merged = append(m.merged, a)
			fetched++
		}
		d.Phase2Msgs++
		d.TxBytes += msgHeaderSize + fetched*answerSize
		d.Fetched += fetched
	}
	model.SortAnswers(m.merged)
	if len(m.merged) > m.k {
		m.merged = m.merged[:m.k]
	}
	if m.stats != nil {
		m.stats.add(d)
	}
	return append([]model.Answer(nil), m.merged...), nil
}
