package naive

import (
	"testing"

	"kspot/internal/model"
	"kspot/internal/topk"
	"kspot/internal/topk/topktest"
	"kspot/internal/trace"
)

// TestReproducesPaperError is the §III-A counterexample: with k=1 on the
// Figure 1 deployment, naive greedy pruning discards (D,39) at s4 and the
// sink wrongly reports room D with average 76.5 instead of room C with 75.
func TestReproducesPaperError(t *testing.T) {
	net := topktest.Fig1Network(t)
	r := &topk.Runner{Net: net, Source: trace.Figure1Source(), Op: New(), Query: topk.SnapshotQuery{K: 1, Agg: model.AggAvg}}
	results, err := r.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	if res.Correct {
		t.Fatal("naive pruning should be wrong on Figure 1 — the paper's whole point")
	}
	got := res.Answers[0]
	if got.Group != trace.Fig1RoomD || got.Score != 76.5 {
		t.Fatalf("naive answer = %v, want the paper's erroneous (D, 76.5)", got)
	}
	if res.Exact[0].Group != trace.Fig1RoomC || res.Exact[0].Score != 75 {
		t.Fatalf("exact answer = %v, want (C, 75)", res.Exact[0])
	}
	if res.Recall != 0 {
		t.Fatalf("recall = %v, want 0", res.Recall)
	}
}

func TestCheaperThanTAGButLossy(t *testing.T) {
	net := topktest.Fig1Network(t)
	r := &topk.Runner{Net: net, Source: trace.Figure1Source(), Op: New(), Query: topk.SnapshotQuery{K: 1, Agg: model.AggAvg}}
	results, err := r.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	s := topk.Summarize(results)
	// Naive transmits at most k partials per node: with k=1 that is one
	// 16-byte partial per node per epoch, strictly less than TAG's full
	// views on interior nodes.
	if s.BytesPerEp <= 0 {
		t.Fatal("no traffic measured")
	}
	maxPerNode := 16 + 7 // one partial + header
	if got := s.BytesPerEp; got > float64(9*maxPerNode+9*(10+7)) {
		t.Errorf("naive bytes/epoch = %.0f, exceeds its k=1 ceiling", got)
	}
}

func TestRecallDegradesWithScatteredGroups(t *testing.T) {
	// Round-robin groups scatter every group across the whole field, the
	// worst case for local pruning. Expect mistakes on some epochs.
	wrongSomewhere := false
	for seed := int64(1); seed <= 6 && !wrongSomewhere; seed++ {
		net := topktest.GridNetwork(t, 36, 9)
		net.Placement.RegroupRoundRobin(9)
		src := trace.NewRoomActivity(seed, net.Placement.Groups, 9)
		r := &topk.Runner{Net: net, Source: src, Op: New(), Query: topk.SnapshotQuery{K: 1, Agg: model.AggAvg}}
		results, err := r.Run(30)
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range results {
			if !res.Correct {
				wrongSomewhere = true
				break
			}
		}
	}
	if !wrongSomewhere {
		t.Error("naive pruning never erred on scattered groups across 6 seeds — suspicious")
	}
}

func TestStillRankedOutput(t *testing.T) {
	net := topktest.Fig1Network(t)
	r := &topk.Runner{Net: net, Source: trace.Figure1Source(), Op: New(), Query: topk.SnapshotQuery{K: 3, Agg: model.AggAvg}}
	results, err := r.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	ans := results[0].Answers
	if len(ans) != 3 {
		t.Fatalf("answers = %v", ans)
	}
	for i := 1; i < len(ans); i++ {
		if ans[i].Score > ans[i-1].Score {
			t.Fatalf("unranked output: %v", ans)
		}
	}
}

func TestName(t *testing.T) {
	if New().Name() != "naive" {
		t.Error("name")
	}
}
