// Package naive implements the incorrect greedy strategy of the paper's
// §III-A: every node locally keeps only its top-k partial aggregates and
// discards the rest. On Figure 1 with k=1 this discards s9's (D,39) at s4
// and makes the sink report (D,76.5) instead of the correct (C,75). It
// exists as the cautionary baseline whose recall the benchmarks report.
package naive

import (
	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/radio"
	"kspot/internal/topk"
)

// Operator is the naive greedy snapshot operator.
type Operator struct {
	net       engine.Transport
	q         topk.SnapshotQuery
	installed bool
}

// New returns a naive operator.
func New() *Operator { return &Operator{} }

// Name implements topk.SnapshotOperator.
func (o *Operator) Name() string { return "naive" }

// Attach implements topk.SnapshotOperator.
func (o *Operator) Attach(net engine.Transport, q topk.SnapshotQuery) error {
	if err := q.Validate(); err != nil {
		return err
	}
	o.net, o.q = net, q
	o.installed = false
	return nil
}

// Epoch implements topk.SnapshotOperator.
func (o *Operator) Epoch(e model.Epoch, readings map[model.NodeID]model.Reading) ([]model.Answer, error) {
	if !o.installed {
		topk.InstallQuery(o.net, e)
		o.installed = true
	}
	sinkView := topk.Sweep(o.net, e, radio.KindData, readings, func(_ model.NodeID, v *model.View) *model.View {
		top := v.TopK(o.q.Agg, o.q.K)
		keep := model.AnswerSet(top)
		out := model.AcquireView() // transport-owned, recycled after transmit
		v.ForEach(func(p model.Partial) {
			if keep[p.Group] {
				out.AddPartial(p)
			}
		})
		return out
	})
	return sinkView.TopK(o.q.Agg, o.q.K), nil
}
