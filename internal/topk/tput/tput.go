// Package tput implements the Three-Phase Uniform Threshold algorithm of
// Cao & Wang (PODC 2004), the flat distributed top-k baseline TJA is
// measured against. TPUT was designed for star/overlay networks: every
// message travels from its node to the sink hop by hop *without* being
// merged in the network, which is exactly the cost TJA's hierarchical
// unions and joins eliminate.
//
// The three phases:
//
//  1. Every node ships its local top-k (id, value) list to the sink, which
//     computes partial sums ψ and the "phase-1 bottom" τ₁ = K-th ψ.
//  2. The sink broadcasts the uniform threshold T = τ₁/n; every node ships
//     all items it has not yet reported whose value ≥ T. The sink refines:
//     LB(x) = reported sum, UB(x) = LB(x) + T·(nodes that did not report
//     x); the candidate set is {x : UB(x) ≥ τ₂ = K-th LB}.
//  3. The sink broadcasts the candidate ids; nodes ship their exact values
//     for candidates they have not reported; the final Top-K is exact.
//
// Phases are tagged radio.KindLB / KindHJ / KindCL for per-phase accounting
// (the same tags TJA uses, so the E7/E8 harness compares like for like).
//
// Like the original algorithm, this implementation assumes nonnegative
// values: the uniform threshold T is clamped at zero, and the phase-1
// bottom τ₁ treats a missing report as a zero contribution — both of
// which under-estimate with values below zero. KSpot's calibrated
// attributes (sound percent, the diurnal temperature field) satisfy this.
package tput

import (
	"encoding/binary"
	"sort"

	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/radio"
	"kspot/internal/topk"
)

// Operator is the TPUT historic operator.
type Operator struct{}

// New returns a TPUT operator.
func New() *Operator { return &Operator{} }

// Name implements topk.HistoricOperator.
func (o *Operator) Name() string { return "tput" }

// Run implements topk.HistoricOperator.
func (o *Operator) Run(net engine.Transport, q topk.HistoricQuery, data topk.HistoricData) ([]model.Answer, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := data.Validate(q); err != nil {
		return nil, err
	}

	nodes := net.Topology().SensorNodes()
	// reported[node][item] tracks which (node,item) values the sink holds.
	reported := make(map[model.NodeID]map[model.GroupID]bool, len(nodes))
	sums := make(map[model.GroupID]int64)
	counts := make(map[model.GroupID]int)
	n := 0

	record := func(node model.NodeID, id model.GroupID, vFP int64) {
		if reported[node] == nil {
			reported[node] = make(map[model.GroupID]bool)
		}
		if reported[node][id] {
			return
		}
		reported[node][id] = true
		sums[id] += vFP
		counts[id]++
	}

	// ---- Phase 1: local top-k lists, shipped flat. ----
	for _, node := range nodes {
		series, ok := data[node]
		if !ok {
			continue
		}
		n++
		top := topk.LocalTopK(series, q.K)
		payload := make([]byte, 0, len(top)*model.AnswerWireSize)
		for _, t := range top {
			payload = model.AppendAnswer(payload, model.Answer{Group: model.GroupID(t), Score: series[t]})
		}
		if net.RouteToSink(node, radio.KindLB, 0, payload) {
			for _, t := range top {
				record(node, model.GroupID(t), int64(model.ToFixed(series[t])))
			}
		}
	}
	if n == 0 {
		return nil, nil
	}
	tau1 := kthSum(sums, q.K)
	// Uniform threshold T = τ₁/n, in centi-units (floor: a lower threshold
	// only admits more reporters, never breaks correctness).
	tFP := tau1 / int64(n)
	if tFP < 0 {
		tFP = 0
	}

	// ---- Phase 2: broadcast T; ship every unreported value ≥ T. ----
	var tBuf [4]byte
	binary.LittleEndian.PutUint32(tBuf[:], uint32(int32(tFP)))
	net.BroadcastDown(radio.KindHJ, 0, func(model.NodeID) []byte { return tBuf[:] })
	for _, node := range nodes {
		series, ok := data[node]
		if !ok {
			continue
		}
		var send []int
		for t, v := range series {
			if reported[node][model.GroupID(t)] {
				continue
			}
			if int64(model.ToFixed(v)) >= tFP {
				send = append(send, t)
			}
		}
		if len(send) == 0 {
			continue
		}
		payload := make([]byte, 0, len(send)*model.AnswerWireSize)
		for _, t := range send {
			payload = model.AppendAnswer(payload, model.Answer{Group: model.GroupID(t), Score: series[t]})
		}
		if net.RouteToSink(node, radio.KindHJ, 0, payload) {
			for _, t := range send {
				record(node, model.GroupID(t), int64(model.ToFixed(series[t])))
			}
		}
	}

	// Refine: τ₂ = K-th lower bound; candidates have UB ≥ τ₂. The cut-off
	// compares in final quantized-score space: under AVG the division can
	// quantize two distinct sums into a tie the total order then breaks by
	// instant id, so a sum-space `ub >= tau2` can drop an item that ties
	// the K-th answer and wins on id (the K-th-boundary tie bug).
	// FinalScore is monotone — score comparison only admits more.
	tau2 := kthSum(sums, q.K)
	tau2Score := topk.FinalScore(tau2, n, q.Agg)
	var candidates []model.GroupID
	for id, s := range sums {
		ub := s + tFP*int64(n-counts[id])
		if counts[id] < n && topk.FinalScore(ub, n, q.Agg) >= tau2Score {
			candidates = append(candidates, id)
		}
	}
	// Items no node reported at all: every one of their values is strictly
	// below T (phase 2 would have shipped it otherwise), so their sum is at
	// most n·(T−1) < τ₁ ≤ τ₂ as a sum — but quantization can still collapse
	// that strict gap into a score tie at the K-th boundary, and a tied
	// instant with a smaller id belongs in the answer. When the bound ties,
	// every unseen instant joins the clean-up (rare, bounded by the window).
	if topk.FinalScore(int64(n)*(tFP-1), n, q.Agg) >= tau2Score {
		for t := 0; t < q.Window; t++ {
			if _, seen := sums[model.GroupID(t)]; !seen {
				candidates = append(candidates, model.GroupID(t))
			}
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })

	// ---- Phase 3: fetch exact values for candidates. ----
	if len(candidates) > 0 {
		cPayload := make([]byte, 0, 2*len(candidates))
		for _, id := range candidates {
			var b [2]byte
			binary.LittleEndian.PutUint16(b[:], uint16(id))
			cPayload = append(cPayload, b[:]...)
		}
		net.BroadcastDown(radio.KindCL, 0, func(model.NodeID) []byte { return cPayload })
		for _, node := range nodes {
			series, ok := data[node]
			if !ok {
				continue
			}
			var send []model.GroupID
			for _, id := range candidates {
				if !reported[node][id] && int(id) < len(series) {
					send = append(send, id)
				}
			}
			if len(send) == 0 {
				continue
			}
			payload := make([]byte, 0, len(send)*model.AnswerWireSize)
			for _, id := range send {
				payload = model.AppendAnswer(payload, model.Answer{Group: id, Score: series[id]})
			}
			if net.RouteToSink(node, radio.KindCL, 0, payload) {
				for _, id := range send {
					record(node, id, int64(model.ToFixed(series[id])))
				}
			}
		}
	}

	// Final ranking over fully known items.
	answers := make([]model.Answer, 0, len(sums))
	for id, s := range sums {
		if counts[id] < n {
			continue // partially known and provably below τ₂
		}
		answers = append(answers, model.Answer{Group: id, Score: topk.FinalScore(s, n, q.Agg)})
	}
	model.SortAnswers(answers)
	if len(answers) > q.K {
		answers = answers[:q.K]
	}
	return answers, nil
}

// kthSum returns the K-th largest value of the map (ties by smaller id), or
// 0 when fewer than K entries exist (TPUT's τ degrades to "everything").
func kthSum(sums map[model.GroupID]int64, k int) int64 {
	if len(sums) < k {
		return 0
	}
	vals := make([]int64, 0, len(sums))
	for _, s := range sums {
		vals = append(vals, s)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] > vals[j] })
	return vals[k-1]
}
