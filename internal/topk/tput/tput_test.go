package tput

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kspot/internal/model"
	"kspot/internal/topk"
	"kspot/internal/topk/central"
	"kspot/internal/topk/tja"
	"kspot/internal/topk/topktest"
	"kspot/internal/trace"
)

func TestExactOnFigure1Network(t *testing.T) {
	net := topktest.Fig1Network(t)
	q := topk.HistoricQuery{K: 3, Agg: model.AggAvg, Window: 64}
	data := topk.HistoricData(topktest.WindowData(net, trace.NewDiurnal(3), q.Window))
	got, err := New().Run(net, q, data)
	if err != nil {
		t.Fatal(err)
	}
	want := topk.ExactHistoric(data, q)
	if !model.EqualAnswers(got, want) {
		t.Fatalf("tput = %v, want %v", got, want)
	}
}

func TestExactAcrossWorkloads(t *testing.T) {
	net := topktest.GridNetwork(t, 25, 5)
	for _, k := range []int{1, 5, 12} {
		for _, w := range []int{8, 64, 200} {
			net.Reset()
			q := topk.HistoricQuery{K: k, Agg: model.AggAvg, Window: w}
			data := topk.HistoricData(topktest.WindowData(net, &trace.Uniform{Seed: int64(k*w) + 1, Min: 0, Max: 100}, w))
			got, err := New().Run(net, q, data)
			if err != nil {
				t.Fatal(err)
			}
			want := topk.ExactHistoric(data, q)
			if !model.EqualAnswers(got, want) {
				t.Fatalf("k=%d w=%d: tput=%v want=%v", k, w, got, want)
			}
		}
	}
}

// TestTJACheaperThanTPUT is the reproduction's historic headline: in-network
// joining beats flat thresholding on multihop topologies.
func TestTJACheaperThanTPUT(t *testing.T) {
	q := topk.HistoricQuery{K: 4, Agg: model.AggAvg, Window: 128}
	src := trace.NewDiurnal(5)

	netA := topktest.GridNetwork(t, 36, 6)
	data := topk.HistoricData(topktest.WindowData(netA, src, q.Window))
	if _, err := tja.New().Run(netA, q, data); err != nil {
		t.Fatal(err)
	}
	tjaBytes := netA.Counter.TotalTxBytes()

	netB := topktest.GridNetwork(t, 36, 6)
	if _, err := New().Run(netB, q, data); err != nil {
		t.Fatal(err)
	}
	tputBytes := netB.Counter.TotalTxBytes()

	if tjaBytes >= tputBytes {
		t.Errorf("TJA bytes %d not below TPUT %d", tjaBytes, tputBytes)
	}
}

func TestCheaperThanCentralized(t *testing.T) {
	q := topk.HistoricQuery{K: 2, Agg: model.AggAvg, Window: 256}
	netA := topktest.GridNetwork(t, 36, 6)
	// TPUT's uniform threshold assumes nodes score hot items similarly;
	// heterogeneous per-node offsets degrade it toward centralized cost
	// (the effect E7 sweeps). Use the homogeneous workload here.
	src := trace.NewDiurnal(8)
	src.NodeSpread = 0
	src.Noise = 0 // phase-1 lists must agree for τ₁ to be meaningful
	data := topk.HistoricData(topktest.WindowData(netA, src, q.Window))
	if _, err := New().Run(netA, q, data); err != nil {
		t.Fatal(err)
	}
	tputBytes := netA.Counter.TotalTxBytes()

	netB := topktest.GridNetwork(t, 36, 6)
	if _, err := central.NewHistoric().Run(netB, q, data); err != nil {
		t.Fatal(err)
	}
	centralBytes := netB.Counter.TotalTxBytes()
	if tputBytes >= centralBytes {
		t.Errorf("TPUT bytes %d not below centralized %d", tputBytes, centralBytes)
	}
}

func TestAdversarialUniformStillExact(t *testing.T) {
	// Uniform data gives thresholding nothing to exploit; correctness must
	// hold even when phase 2 ships a lot.
	net := topktest.GridNetwork(t, 16, 4)
	q := topk.HistoricQuery{K: 8, Agg: model.AggAvg, Window: 64}
	data := topk.HistoricData(topktest.WindowData(net, &trace.Uniform{Seed: 12, Min: 49, Max: 51}, q.Window))
	got, err := New().Run(net, q, data)
	if err != nil {
		t.Fatal(err)
	}
	if want := topk.ExactHistoric(data, q); !model.EqualAnswers(got, want) {
		t.Fatalf("tput=%v want=%v", got, want)
	}
}

func TestRejectsBadInput(t *testing.T) {
	net := topktest.Fig1Network(t)
	if _, err := New().Run(net, topk.HistoricQuery{K: 1, Agg: model.AggMax, Window: 4}, nil); err == nil {
		t.Error("MAX historic accepted")
	}
}

// Property: TPUT equals the exact oracle.
func TestExactProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test in -short mode")
	}
	net := topktest.GridNetwork(t, 16, 4)
	f := func(seed int64, kRaw, wRaw uint8) bool {
		k := 1 + int(kRaw)%10
		w := 2 + int(wRaw)%100
		net.Reset()
		q := topk.HistoricQuery{K: k, Agg: model.AggAvg, Window: w}
		data := topk.HistoricData(topktest.WindowData(net, &trace.Uniform{Seed: seed, Min: 0, Max: 100}, w))
		got, err := New().Run(net, q, data)
		if err != nil {
			return false
		}
		return model.EqualAnswers(got, topk.ExactHistoric(data, q))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestName(t *testing.T) {
	if New().Name() != "tput" {
		t.Error("name")
	}
}

// TestQuantizedTieAdversarial hammers the refinement cut's K-th-boundary
// tie rule with values drawn from centi-levels straddling AVG rounding
// boundaries: quantization collapses distinct sums into score ties, where
// a sum-space `ub >= tau2` (and the unguarded never-reported case) drops
// instants that tie the K-th answer and win on id. Seeded for
// reproducibility.
func TestQuantizedTieAdversarial(t *testing.T) {
	net := topktest.Fig1Network(t)
	rng := rand.New(rand.NewSource(1))
	levels := []model.Value{1.99, 2.00, 2.01, 2.02}
	for trial := 0; trial < 500; trial++ {
		w := 2 + rng.Intn(3)
		k := 1 + rng.Intn(2)
		nodes := 3 + rng.Intn(2)
		data := topk.HistoricData{}
		for n := 1; n <= nodes; n++ {
			s := make([]model.Value, w)
			for i := range s {
				s[i] = levels[rng.Intn(len(levels))]
			}
			data[model.NodeID(n)] = s
		}
		q := topk.HistoricQuery{K: k, Agg: model.AggAvg, Window: w}
		net.Reset()
		got, err := New().Run(net, q, data)
		if err != nil {
			t.Fatal(err)
		}
		if want := topk.ExactHistoric(data, q); !model.EqualAnswers(got, want) {
			t.Fatalf("trial %d (w=%d k=%d): tput=%v oracle=%v data=%v", trial, w, k, got, want, data)
		}
	}
}

// TestKthBoundaryTieRegression pins the concrete counterexample the
// brute-force sweep surfaced against the old sum-space refinement cut:
// instant 1's upper bound after phase 2 is strictly below τ₂ as a raw
// sum, but AVG over five nodes quantizes both to 3.60 — a tie the total
// order breaks toward instant 1, which the sum-space rule dropped.
func TestKthBoundaryTieRegression(t *testing.T) {
	net := topktest.Fig1Network(t)
	q := topk.HistoricQuery{K: 1, Agg: model.AggAvg, Window: 3}
	data := topk.HistoricData{
		1: {2.00, 6.00, 4.01},
		2: {0.01, 2.00, 5.99},
		3: {0.01, 1.99, 4.01},
		4: {0.01, 4.00, 2.01},
		5: {6.00, 4.00, 2.00},
	}
	want := topk.ExactHistoric(data, q)
	if len(want) != 1 || want[0].Group != 1 {
		t.Fatalf("oracle did not tie toward instant 1: %v", want)
	}
	got, err := New().Run(net, q, data)
	if err != nil {
		t.Fatal(err)
	}
	if !model.EqualAnswers(got, want) {
		t.Fatalf("K-th boundary tie dropped: tput=%v, oracle=%v", got, want)
	}
}
