package topk

import (
	"math"
	"testing"
	"testing/quick"

	"kspot/internal/model"
	"kspot/internal/sim"
	"kspot/internal/trace"
)

func TestSnapshotQueryValidate(t *testing.T) {
	if err := (SnapshotQuery{K: 1, Agg: model.AggAvg}).Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	if err := (SnapshotQuery{K: 0}).Validate(); err == nil {
		t.Error("K=0 accepted")
	}
}

func TestHistoricQueryValidate(t *testing.T) {
	ok := HistoricQuery{K: 3, Agg: model.AggAvg, Window: 100}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	bad := []HistoricQuery{
		{K: 0, Agg: model.AggAvg, Window: 10},
		{K: 1, Agg: model.AggAvg, Window: 0},
		{K: 1, Agg: model.AggMin, Window: 10},
		{K: 1, Agg: model.AggAvg, Window: 1 << 17},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
}

func TestHistoricDataValidate(t *testing.T) {
	q := HistoricQuery{K: 1, Agg: model.AggAvg, Window: 3}
	good := HistoricData{1: {1, 2, 3}}
	if err := good.Validate(q); err != nil {
		t.Errorf("good data rejected: %v", err)
	}
	bad := HistoricData{1: {1, 2}}
	if err := bad.Validate(q); err == nil {
		t.Error("short series accepted")
	}
}

func TestExactSnapshotMatchesView(t *testing.T) {
	readings := map[model.NodeID]model.Reading{}
	vals := trace.Figure1Values()
	p := trace.Figure1Placement()
	for n, v := range vals {
		readings[n] = model.Reading{Node: n, Group: p.Groups[n], Value: v}
	}
	got := ExactSnapshot(readings, SnapshotQuery{K: 4, Agg: model.AggAvg})
	if !model.EqualAnswers(got, trace.Figure1Answers()) {
		t.Fatalf("exact = %v", got)
	}
}

func TestExactHistoric(t *testing.T) {
	q := HistoricQuery{K: 2, Agg: model.AggAvg, Window: 4}
	data := HistoricData{
		1: {10, 50, 20, 40},
		2: {30, 50, 20, 40},
	}
	got := ExactHistoric(data, q)
	want := []model.Answer{{Group: 1, Score: 50}, {Group: 3, Score: 40}}
	if !model.EqualAnswers(got, want) {
		t.Fatalf("historic exact = %v, want %v", got, want)
	}
}

func TestExactHistoricSum(t *testing.T) {
	q := HistoricQuery{K: 1, Agg: model.AggSum, Window: 2}
	data := HistoricData{1: {10, 5}, 2: {10, 30}}
	got := ExactHistoric(data, q)
	if got[0].Group != 1 || got[0].Score != 35 {
		t.Fatalf("sum exact = %v", got)
	}
}

func TestLocalTopK(t *testing.T) {
	series := []model.Value{5, 40, 40, 10, 99}
	got := LocalTopK(series, 3)
	want := []int{4, 1, 2} // 99, then the 40s in index order
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("LocalTopK = %v, want %v", got, want)
	}
	if got := LocalTopK(series, 10); len(got) != 5 {
		t.Fatalf("k beyond len = %v", got)
	}
}

func TestBeaconRoundTrip(t *testing.T) {
	b := Beacon{Epoch: 42, Gamma: 74.5, TopK: []model.GroupID{3, 1, 9}}
	got, err := DecodeBeacon(EncodeBeacon(b))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 42 || got.Gamma != 74.5 || len(got.TopK) != 3 || got.TopK[0] != 3 {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestBeaconMinusInf(t *testing.T) {
	b := Beacon{Epoch: 1, Gamma: MinusInf()}
	got, err := DecodeBeacon(EncodeBeacon(b))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(float64(got.Gamma), -1) {
		t.Fatalf("gamma = %v, want -Inf", got.Gamma)
	}
}

func TestBeaconErrors(t *testing.T) {
	if _, err := DecodeBeacon([]byte{1, 2}); err == nil {
		t.Error("short beacon accepted")
	}
	b := EncodeBeacon(Beacon{Epoch: 1, TopK: []model.GroupID{1, 2}})
	if _, err := DecodeBeacon(b[:len(b)-1]); err == nil {
		t.Error("truncated membership list accepted")
	}
}

func TestBeaconSizeAccounting(t *testing.T) {
	empty := EncodeBeacon(Beacon{Epoch: 1, Gamma: MinusInf()})
	if len(empty) != 10 {
		t.Errorf("empty beacon = %d bytes, want 10", len(empty))
	}
	withK := EncodeBeacon(Beacon{Epoch: 1, Gamma: 5, TopK: []model.GroupID{1, 2, 3}})
	if len(withK) != 16 {
		t.Errorf("k=3 beacon = %d bytes, want 16", len(withK))
	}
}

func TestBeaconProperty(t *testing.T) {
	f := func(epoch uint32, gammaRaw int32, ids []uint16) bool {
		if len(ids) > 100 {
			ids = ids[:100]
		}
		groups := make([]model.GroupID, len(ids))
		for i, id := range ids {
			groups[i] = model.GroupID(id)
		}
		b := Beacon{Epoch: model.Epoch(epoch), Gamma: model.FromFixed(model.FixedPoint(gammaRaw)), TopK: groups}
		got, err := DecodeBeacon(EncodeBeacon(b))
		if err != nil {
			return false
		}
		if got.Epoch != b.Epoch || len(got.TopK) != len(b.TopK) {
			return false
		}
		// MinInt32 encodes the -Inf sentinel.
		if gammaRaw == math.MinInt32 {
			return math.IsInf(float64(got.Gamma), -1)
		}
		return got.Gamma == b.Gamma
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	results := []EpochResult{
		{Correct: true, Recall: 1, Traffic: sim.Snapshot{Messages: 10, TxBytes: 100, EnergyUJ: 50}},
		{Correct: false, Recall: 0.5, Traffic: sim.Snapshot{Messages: 20, TxBytes: 300, EnergyUJ: 150}},
	}
	s := Summarize(results)
	if s.Epochs != 2 || s.CorrectPct != 50 || s.MeanRecall != 0.75 {
		t.Errorf("summary = %+v", s)
	}
	if s.TxBytes != 400 || s.BytesPerEp != 200 || s.MsgsPerEp != 15 {
		t.Errorf("traffic summary = %+v", s)
	}
	if s.EnergyPerEp != 100 {
		t.Errorf("energy per epoch = %v", s.EnergyPerEp)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Epochs != 0 || s.CorrectPct != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

// TestBeaconGammaSentinels pins the sentinel reservation at both extremes:
// an infinite γ round-trips as the same infinity, and a finite γ that
// quantizes exactly to a sentinel fixed-point is clamped one step inside it
// on encode instead of being mis-decoded as an infinity.
func TestBeaconGammaSentinels(t *testing.T) {
	// +Inf round-trips (previously it silently saturated to a finite max).
	got, err := DecodeBeacon(EncodeBeacon(Beacon{Epoch: 1, Gamma: model.Value(math.Inf(1))}))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(float64(got.Gamma), 1) {
		t.Fatalf("+Inf gamma decoded as %v", got.Gamma)
	}
	// −Inf still round-trips.
	got, err = DecodeBeacon(EncodeBeacon(Beacon{Epoch: 1, Gamma: MinusInf()}))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(float64(got.Gamma), -1) {
		t.Fatalf("-Inf gamma decoded as %v", got.Gamma)
	}
	// A legitimate γ on the negative sentinel clamps finite (one
	// centi-unit up), never decodes as −Inf.
	lowest := model.FromFixed(math.MinInt32) // quantizes exactly to MinInt32
	got, err = DecodeBeacon(EncodeBeacon(Beacon{Epoch: 1, Gamma: lowest}))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(float64(got.Gamma), -1) {
		t.Fatalf("finite gamma %v decoded as -Inf", lowest)
	}
	if want := model.FromFixed(math.MinInt32 + 1); got.Gamma != want {
		t.Fatalf("clamped gamma = %v, want %v", got.Gamma, want)
	}
	// Same at the positive sentinel (values beyond the fixed-point range
	// saturate onto it).
	highest := model.FromFixed(math.MaxInt32)
	got, err = DecodeBeacon(EncodeBeacon(Beacon{Epoch: 1, Gamma: highest}))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(float64(got.Gamma), 1) {
		t.Fatalf("finite gamma %v decoded as +Inf", highest)
	}
	if want := model.FromFixed(math.MaxInt32 - 1); got.Gamma != want {
		t.Fatalf("clamped gamma = %v, want %v", got.Gamma, want)
	}
}
