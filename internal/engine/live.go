package engine

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"kspot/internal/model"
	"kspot/internal/radio"
	"kspot/internal/sim"
	"kspot/internal/storage"
	"kspot/internal/topo"
)

// LiveOptions configures the concurrent substrate.
type LiveOptions struct {
	// Window is each node's buffered history capacity (for historic
	// queries over a live deployment). Default 64; minimum 1.
	Window int
	// QueueDepth bounds each worker's request mailbox. Default 32.
	QueueDepth int
}

// Live is the concurrent substrate: one goroutine per sensor node,
// exchanging views and beacons over channels — the KSpot client software
// of the paper's §II expressed as an actual concurrent system, in place of
// the nesC mote binary. It implements Transport, so every snapshot
// operator runs on it unchanged.
//
// Radio and energy semantics are not reimplemented: Live wraps the same
// *sim.Network state machine (link layer, loss, framing, energy ledger,
// budgets) behind a mutex and uses it for per-message accounting, while
// delivery and the epoch data flow happen over channels. That is what
// makes the two substrates answer- and traffic-equivalent by construction
// on lossless links.
//
// Concurrency contract: all Transport methods are safe for concurrent use
// once Start has been called, and multiple Sweeps/BroadcastDowns may be in
// flight at once (the multi-query scheduler relies on this). PruneFuncs
// and payloadFor callbacks run on worker goroutines.
type Live struct {
	base *sim.Network
	mu   sync.Mutex // guards base's link rng, counters, ledger, budgets

	workers map[model.NodeID]*worker

	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	started atomic.Bool
}

// worker is one sensor node's goroutine state.
type worker struct {
	id       model.NodeID
	children []model.NodeID
	req      chan any // floodReq | sweepReq
	buf      []byte   // encode buffer, reused across sweeps (worker-serial)

	winMu     sync.Mutex
	win       *storage.Window
	lastEpoch model.Epoch
}

// floodReq relays a downstream beacon parent→children through the worker
// tree (the TinyOS per-hop re-broadcast).
type floodReq struct {
	kind       radio.MsgKind
	e          model.Epoch
	payloadFor func(child model.NodeID) []byte
	reached    *reachedSet
	wg         *sync.WaitGroup
}

// sweepReq runs one leaf-to-root acquisition. collect holds a one-shot
// channel per node: a node's pruned view (nil = suppressed or lost) is
// published exactly once, and its parent consumes it.
type sweepReq struct {
	e        model.Epoch
	kind     radio.MsgKind
	readings map[model.NodeID]model.Reading
	prune    PruneFunc
	collect  map[model.NodeID]chan *model.View
}

type reachedSet struct {
	mu sync.Mutex
	m  map[model.NodeID]bool
}

func (r *reachedSet) add(id model.NodeID) {
	r.mu.Lock()
	r.m[id] = true
	r.mu.Unlock()
}

// NewLive builds the concurrent substrate over an existing network state
// (topology, link layer, accounting). Call Start before posting traffic.
func NewLive(net *sim.Network, opts LiveOptions) *Live {
	if opts.Window < 1 {
		opts.Window = 64
	}
	if opts.QueueDepth < 1 {
		opts.QueueDepth = 32
	}
	l := &Live{base: net, workers: make(map[model.NodeID]*worker)}
	for _, id := range net.Placement.SensorNodes() {
		win, err := storage.NewWindow(opts.Window)
		if err != nil {
			panic("engine: " + err.Error()) // opts.Window clamped ≥ 1 above
		}
		l.workers[id] = &worker{
			id:        id,
			children:  net.Tree.Children[id],
			req:       make(chan any, opts.QueueDepth),
			win:       win,
			lastEpoch: math.MaxUint32,
		}
	}
	return l
}

// Start launches the node goroutines. The deployment runs until Stop is
// called or ctx is cancelled.
func (l *Live) Start(ctx context.Context) {
	if !l.started.CompareAndSwap(false, true) {
		return
	}
	l.ctx, l.cancel = context.WithCancel(ctx)
	for _, w := range l.workers {
		l.wg.Add(1)
		go l.runWorker(w)
	}
}

// Stop terminates every node goroutine and waits for them to exit.
func (l *Live) Stop() {
	if !l.started.CompareAndSwap(true, false) {
		return
	}
	l.cancel()
	l.wg.Wait()
}

// Windows exposes each node's buffered history (for historic queries at
// the server side), oldest first.
func (l *Live) Windows() map[model.NodeID][]model.Value {
	out := make(map[model.NodeID][]model.Value, len(l.workers))
	for id, w := range l.workers {
		w.winMu.Lock()
		out[id] = w.win.Series()
		w.winMu.Unlock()
	}
	return out
}

// RecordReadings buffers the epoch's raw sensed values into the per-node
// history windows (ReadingsRecorder, called by SenseEpoch once per epoch).
func (l *Live) RecordReadings(e model.Epoch, readings map[model.NodeID]model.Reading) {
	for id, rd := range readings {
		w, ok := l.workers[id]
		if !ok {
			continue
		}
		w.winMu.Lock()
		if e != w.lastEpoch {
			// Push can only fail on clock regression, which monotone
			// epochs rule out; a regressed push is simply dropped.
			_ = w.win.Push(e, rd.Value)
			w.lastEpoch = e
		}
		w.winMu.Unlock()
	}
}

func (l *Live) runWorker(w *worker) {
	defer l.wg.Done()
	for {
		select {
		case <-l.ctx.Done():
			return
		case r := <-w.req:
			switch m := r.(type) {
			case floodReq:
				l.handleFlood(w, m)
			case sweepReq:
				l.handleSweep(w, m)
			}
		}
	}
}

// handleFlood re-broadcasts the beacon to each child link, charging every
// hop, and hands the relay on to the children's goroutines.
func (l *Live) handleFlood(w *worker, r floodReq) {
	defer r.wg.Done()
	for _, c := range w.children {
		var pl []byte
		if r.payloadFor != nil {
			pl = r.payloadFor(c)
		}
		if !l.lockedSendDown(w.id, c, r.kind, r.e, pl) {
			continue // child never got the beacon; subtree dark this epoch
		}
		r.reached.add(c)
		r.wg.Add(1)
		// Hand the relay on without blocking on the child's mailbox: a
		// synchronous send could chain with other in-flight requests into
		// a circular wait when many queries run at once. The child's
		// handler releases the wg count; the cancel path balances it.
		go func(c model.NodeID) {
			select {
			case l.workers[c].req <- r:
			case <-l.ctx.Done():
				r.wg.Done()
			}
		}(c)
	}
}

// handleSweep is the client main loop body of the old bespoke runtime,
// now driven by the shared operator's prune callback: merge the epoch's
// own reading with the children's views, prune, ship one hop up. (History
// buffering happens in recordReadings, fed by SenseEpoch — sweeps may
// carry derived readings that must not pollute the windows.)
//
// Views flow through the pool: the local view and every child view are
// recycled here once merged; the transmitted view is recycled by whoever
// consumes it from the collect channel (the parent worker, or Sweep's
// coordinator at the sink).
func (l *Live) handleSweep(w *worker, r sweepReq) {
	rd, sensed := r.readings[w.id]
	v := model.AcquireView()
	if sensed {
		v.Add(rd)
	}
	for _, c := range w.children {
		select {
		case cv := <-r.collect[c]:
			if cv != nil {
				v.MergeView(cv)
				model.ReleaseView(cv)
			}
		case <-l.ctx.Done():
			model.ReleaseView(v)
			return
		}
	}
	out := v
	if r.prune != nil {
		out = r.prune(w.id, v)
	}
	var res *model.View
	if out != nil && out.Len() > 0 {
		w.buf = model.AppendView(w.buf[:0], out)
		if l.lockedSendUp(w.id, r.kind, r.e, w.buf) {
			res = out
		}
	}
	if out != v {
		model.ReleaseView(v) // pruned copy made; the local view is done
	}
	if res == nil && out != nil {
		model.ReleaseView(out) // suppressed or lost: nothing travels up
	}
	r.collect[w.id] <- res // cap-1 channel, single producer: never blocks
}

// ready panics when the deployment has not been started — every data-path
// primitive needs the worker goroutines.
func (l *Live) ready() {
	if !l.started.Load() {
		panic("engine: Live transport used before Start (or after Stop)")
	}
}

// --- Transport implementation ---

var _ Transport = (*Live)(nil)

// Topology implements Transport.
func (l *Live) Topology() *topo.Placement { return l.base.Placement }

// Routing implements Transport.
func (l *Live) Routing() *topo.Tree { return l.base.Tree }

// Alive implements Transport.
func (l *Live) Alive(id model.NodeID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base.Alive(id)
}

// SendUp implements Transport (single-hop accounting; the view data path
// of an epoch goes through Sweep).
func (l *Live) SendUp(from model.NodeID, kind radio.MsgKind, e model.Epoch, payload []byte) bool {
	return l.lockedSendUp(from, kind, e, payload)
}

// SendDown implements Transport.
func (l *Live) SendDown(from, to model.NodeID, kind radio.MsgKind, e model.Epoch, payload []byte) bool {
	return l.lockedSendDown(from, to, kind, e, payload)
}

// BroadcastDown implements Transport: the beacon flood, relayed hop by hop
// by the worker goroutines exactly as the motes re-broadcast per child
// link. Blocks until the flood has settled and returns the nodes reached.
func (l *Live) BroadcastDown(kind radio.MsgKind, e model.Epoch, payloadFor func(child model.NodeID) []byte) map[model.NodeID]bool {
	l.ready()
	rs := &reachedSet{m: map[model.NodeID]bool{model.Sink: true}}
	var wg sync.WaitGroup
	for _, child := range l.base.Tree.Children[model.Sink] {
		var pl []byte
		if payloadFor != nil {
			pl = payloadFor(child)
		}
		if !l.lockedSendDown(model.Sink, child, kind, e, pl) {
			continue
		}
		rs.add(child)
		wg.Add(1)
		req := floodReq{kind: kind, e: e, payloadFor: payloadFor, reached: rs, wg: &wg}
		go func(child model.NodeID) {
			select {
			case l.workers[child].req <- req:
			case <-l.ctx.Done():
				wg.Done()
			}
		}(child)
	}
	wg.Wait()
	return rs.m
}

// RouteToSink implements Transport: multihop relay without merging. The
// payload is opaque and the result is consumed at the sink, so the relay
// is accounted hop by hop on the shared link model.
func (l *Live) RouteToSink(from model.NodeID, kind radio.MsgKind, e model.Epoch, payload []byte) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base.RouteToSink(from, kind, e, payload)
}

// RouteFromSink implements Transport.
func (l *Live) RouteFromSink(to model.NodeID, kind radio.MsgKind, e model.Epoch, payload []byte) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base.RouteFromSink(to, kind, e, payload)
}

// Sweep implements Transport: the epoch's up-sweep, executed by the node
// goroutines concurrently — every subtree merges and prunes in parallel,
// synchronized only by the child→parent view channels. Multiple sweeps may
// be in flight at once; each uses its own collection channels.
func (l *Live) Sweep(e model.Epoch, kind radio.MsgKind, readings map[model.NodeID]model.Reading, prune PruneFunc) *model.View {
	l.ready()
	collect := make(map[model.NodeID]chan *model.View, len(l.workers))
	for id := range l.workers {
		collect[id] = make(chan *model.View, 1)
	}
	req := sweepReq{e: e, kind: kind, readings: readings, prune: prune, collect: collect}
	// Mailbox delivery is asynchronous so the coordinator never blocks on
	// a busy worker (many queries sweeping at once could otherwise form a
	// circular wait). The sink cannot observe its children's views before
	// every node has processed the request, so the goroutines are done by
	// the time Sweep returns on the success path.
	for _, w := range l.workers {
		go func(w *worker) {
			select {
			case w.req <- req:
			case <-l.ctx.Done():
			}
		}(w)
	}
	v := model.NewView()
	for _, child := range l.base.Tree.Children[model.Sink] {
		select {
		case cv := <-collect[child]:
			if cv != nil {
				v.MergeView(cv)
				model.ReleaseView(cv)
			}
		case <-l.ctx.Done():
			return v
		}
	}
	return v
}

// SetNodeDown administratively kills or revives a node (fault-injection
// churn), delegating to the shared network state under the lock.
func (l *Live) SetNodeDown(id model.NodeID, down bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.base.SetNodeDown(id, down)
}

// SetFault installs a deterministic link-layer fault model on the shared
// link. Installation must precede traffic (the fault model itself is
// concurrency-safe; the swap is not synchronized against in-flight sends).
func (l *Live) SetFault(m radio.FaultModel) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.base.SetFault(m)
}

// ChargeSense implements Transport.
func (l *Live) ChargeSense(id model.NodeID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.base.ChargeSense(id)
}

// ChargeIdleEpoch implements Transport.
func (l *Live) ChargeIdleEpoch() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.base.ChargeIdleEpoch()
}

// Snap implements Transport.
func (l *Live) Snap() sim.Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base.Snap()
}

// Delta implements Transport.
func (l *Live) Delta(s sim.Snapshot) sim.Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base.Delta(s)
}

// Reset implements Transport.
func (l *Live) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.base.Reset()
}

func (l *Live) lockedSendUp(from model.NodeID, kind radio.MsgKind, e model.Epoch, payload []byte) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base.SendUp(from, kind, e, payload)
}

func (l *Live) lockedSendDown(from, to model.NodeID, kind radio.MsgKind, e model.Epoch, payload []byte) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base.SendDown(from, to, kind, e, payload)
}
