package engine_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"kspot/internal/config"
	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/topk"
	"kspot/internal/topk/fed"
	"kspot/internal/topk/mint"
)

// fedSetup builds a sharded Figure-3 deployment on the chosen substrate:
// per-shard networks sharing the flat trace source, MINT attached per
// shard, and a fed merger — plus the flat oracle pieces to compare with.
func fedSetup(t *testing.T, live bool) (deps []*engine.Deployment, ops []engine.EpochRunner, merge engine.MergeFunc, cleanup func()) {
	t.Helper()
	scen := config.Figure3Scenario()
	if err := scen.AutoShard(2); err != nil {
		t.Fatal(err)
	}
	subs, err := scen.ShardScenarios()
	if err != nil {
		t.Fatal(err)
	}
	src, err := scen.Source()
	if err != nil {
		t.Fatal(err)
	}
	q := topk.SnapshotQuery{K: 2, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}
	var stops []func()
	for i, sub := range subs {
		net, err := sub.Network()
		if err != nil {
			t.Fatal(err)
		}
		var tp engine.Transport = net
		if live {
			l := engine.NewLive(net, engine.LiveOptions{Window: 8})
			ctx, cancel := context.WithCancel(context.Background())
			l.Start(ctx)
			stops = append(stops, func() { l.Stop(); cancel() })
			tp = l
		}
		op := mint.New()
		if err := op.Attach(tp, q); err != nil {
			t.Fatal(err)
		}
		deps = append(deps, engine.NewDeployment(scen.ShardName(i), tp, src))
		ops = append(ops, op)
	}
	m, err := fed.New(q, fed.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return deps, ops, m.Merge, func() {
		for _, stop := range stops {
			stop()
		}
	}
}

// TestCoordinatorFederatedEpochs: a 2-shard Figure-3 deployment must
// answer every epoch identically to the flat oracle over the union of the
// shards' readings, on both substrates.
func TestCoordinatorFederatedEpochs(t *testing.T) {
	q := topk.SnapshotQuery{K: 2, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}
	for _, live := range []bool{false, true} {
		t.Run(fmt.Sprintf("live=%v", live), func(t *testing.T) {
			deps, ops, merge, cleanup := fedSetup(t, live)
			defer cleanup()
			coord := engine.NewCoordinator(deps...)
			for e := model.Epoch(0); e < 10; e++ {
				out := coord.Epoch(e, ops, nil, merge)
				if out.Err != nil {
					t.Fatalf("epoch %d: %v", e, out.Err)
				}
				exact := topk.ExactSnapshot(out.Readings, q)
				if !model.EqualAnswers(out.Answers, exact) {
					t.Fatalf("epoch %d: federated %v, oracle %v", e, out.Answers, exact)
				}
			}
		})
	}
}

// errorRunner fails every epoch — the stand-in for a shard whose
// transport dies mid-sweep.
type errorRunner struct{}

func (errorRunner) Epoch(model.Epoch, map[model.NodeID]model.Reading) ([]model.Answer, error) {
	return nil, errors.New("transport failed mid-sweep")
}

// okRunner answers a fixed ranking.
type okRunner struct{ g model.GroupID }

func (r okRunner) Epoch(model.Epoch, map[model.NodeID]model.Reading) ([]model.Answer, error) {
	return []model.Answer{{Group: r.g, Score: 1}}, nil
}

// TestSchedulerShardErrorPropagation: a query whose shard fails mid-sweep
// must surface the error on its own posting cursor, while the lock-step
// keeps serving the healthy query — no wedge, no cross-contamination.
func TestSchedulerShardErrorPropagation(t *testing.T) {
	scen := config.Figure1Scenario()
	net, err := scen.Network()
	if err != nil {
		t.Fatal(err)
	}
	src, err := scen.Source()
	if err != nil {
		t.Fatal(err)
	}
	sched := engine.NewScheduler(engine.NewDeployment("solo", net, src))
	bad := sched.Add([]engine.EpochRunner{errorRunner{}}, nil, nil)
	good := sched.Add([]engine.EpochRunner{okRunner{g: 3}}, nil, nil)

	for i := 0; i < 4; i++ {
		if _, err := sched.Step(bad); err == nil {
			t.Fatalf("step %d: failing shard did not surface its error", i)
		}
		out, err := sched.Step(good)
		if err != nil {
			t.Fatalf("step %d: healthy query wedged by the failing one: %v", i, err)
		}
		if out.Epoch != model.Epoch(i) || len(out.Answers) != 1 || out.Answers[0].Group != 3 {
			t.Fatalf("step %d: healthy outcome %+v", i, out)
		}
	}
	// The lock-step advanced one epoch per paired step, not two.
	if got := sched.Epoch(); got != 4 {
		t.Fatalf("scheduler advanced %d epochs, want 4", got)
	}
}

// slowRunner blocks each epoch until released, so a test can hold an
// epoch in flight while it cancels a StepContext.
type slowRunner struct {
	enter chan struct{}
	gate  chan struct{}
}

func (r *slowRunner) Epoch(e model.Epoch, _ map[model.NodeID]model.Reading) ([]model.Answer, error) {
	r.enter <- struct{}{}
	<-r.gate
	return []model.Answer{{Group: model.GroupID(e + 1), Score: model.Value(e)}}, nil
}

// TestSchedulerStepContext: a cancelled StepContext returns promptly, the
// in-flight epoch completes in the background, and its outcome is
// re-buffered — the next Step sees the epoch stream without a gap.
func TestSchedulerStepContext(t *testing.T) {
	scen := config.Figure1Scenario()
	net, err := scen.Network()
	if err != nil {
		t.Fatal(err)
	}
	src, err := scen.Source()
	if err != nil {
		t.Fatal(err)
	}
	sched := engine.NewScheduler(engine.NewDeployment("solo", net, src))
	r := &slowRunner{enter: make(chan struct{}, 1), gate: make(chan struct{})}
	sq := sched.Add([]engine.EpochRunner{r}, nil, nil)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := sched.StepContext(ctx, sq)
		done <- err
	}()
	<-r.enter // epoch 0 is in flight
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled StepContext returned %v", err)
	}
	close(r.gate) // let the abandoned epoch finish in the background

	// The next Step must observe epoch 0 (re-buffered), then epoch 1.
	for want := model.Epoch(0); want < 2; want++ {
		out, err := sched.StepContext(context.Background(), sq)
		if err != nil {
			t.Fatal(err)
		}
		if out.Epoch != want {
			t.Fatalf("post-cancel step saw epoch %d, want %d (gapless re-buffering)", out.Epoch, want)
		}
	}
}

// TestSchedulerStepContextExpired: an already-expired context never runs
// a fresh epoch for nothing — no work starts, no energy is charged, and
// the epoch stream still begins at 0 for the next live Step.
func TestSchedulerStepContextExpired(t *testing.T) {
	scen := config.Figure1Scenario()
	net, err := scen.Network()
	if err != nil {
		t.Fatal(err)
	}
	src, err := scen.Source()
	if err != nil {
		t.Fatal(err)
	}
	sched := engine.NewScheduler(engine.NewDeployment("solo", net, src))
	sq := sched.Add([]engine.EpochRunner{okRunner{g: 1}}, nil, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 3; i++ {
		if _, err := sched.StepContext(ctx, sq); !errors.Is(err, context.Canceled) {
			t.Fatalf("expired StepContext returned %v", err)
		}
	}
	if sched.Epoch() != 0 {
		t.Fatalf("expired StepContexts advanced the epoch clock to %d", sched.Epoch())
	}
	if total := net.Ledger.Total(); total != 0 {
		t.Fatalf("expired StepContexts charged %v µJ of energy", total)
	}
	out, err := sched.Step(sq)
	if err != nil {
		t.Fatal(err)
	}
	if out.Epoch != 0 {
		t.Fatalf("epoch stream began at %d after expired StepContexts, want 0", out.Epoch)
	}
}

// TestRunShards: the one-shot per-shard fan-out visits every deployment
// index-aligned (sequential and parallel), and the first error by shard
// order comes back tagged with the shard's name.
func TestRunShards(t *testing.T) {
	deps := make([]*engine.Deployment, 3)
	for i := range deps {
		scen := config.Figure1Scenario()
		net, err := scen.Network()
		if err != nil {
			t.Fatal(err)
		}
		src, err := scen.Source()
		if err != nil {
			t.Fatal(err)
		}
		deps[i] = engine.NewDeployment(fmt.Sprintf("shard-%d", i), net, src)
	}
	coord := engine.NewCoordinator(deps...)
	for _, parallel := range []bool{false, true} {
		var mu sync.Mutex
		seen := make(map[int]*engine.Deployment)
		err := coord.RunShards(parallel, func(i int, d *engine.Deployment) error {
			mu.Lock()
			seen[i] = d
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != len(deps) {
			t.Fatalf("parallel=%v: visited %d shards, want %d", parallel, len(seen), len(deps))
		}
		for i, d := range deps {
			if seen[i] != d {
				t.Fatalf("parallel=%v: shard %d got deployment %q", parallel, i, seen[i].Name())
			}
		}
	}
	err := coord.RunShards(true, func(i int, d *engine.Deployment) error {
		if i >= 1 {
			return fmt.Errorf("boom %d", i)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "shard-1") || !strings.Contains(err.Error(), "boom 1") {
		t.Fatalf("error not first-by-shard-order or untagged: %v", err)
	}
}
