package engine_test

import (
	"context"
	"sync"
	"testing"

	"kspot/internal/config"
	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/topk"
	"kspot/internal/topk/mint"
	"kspot/internal/topk/tag"
)

// TestSchedulerSharedEpochs runs two queries on one live deployment: they
// must advance in epoch lock-step, both answer exactly, and sensing must
// be charged once per epoch, not once per query.
func TestSchedulerSharedEpochs(t *testing.T) {
	scen := config.Figure3Scenario()
	net, err := scen.Network()
	if err != nil {
		t.Fatal(err)
	}
	src, err := scen.Source()
	if err != nil {
		t.Fatal(err)
	}
	live := engine.NewLive(net, engine.LiveOptions{Window: 8})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	live.Start(ctx)
	defer live.Stop()

	sched := engine.NewScheduler(engine.NewDeployment("figure3", live, src))
	q1 := topk.SnapshotQuery{K: 2, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}
	q2 := topk.SnapshotQuery{K: 3, Agg: model.AggMax, Range: &topk.ValueRange{Min: 0, Max: 100}}
	op1 := mint.New()
	if err := op1.Attach(live, q1); err != nil {
		t.Fatal(err)
	}
	op2 := tag.New()
	if err := op2.Attach(live, q2); err != nil {
		t.Fatal(err)
	}
	sq1 := sched.Add([]engine.EpochRunner{op1}, nil, nil)
	sq2 := sched.Add([]engine.EpochRunner{op2}, nil, nil)

	const epochs = 8
	var wg sync.WaitGroup
	step := func(sq *engine.ScheduledQuery, q topk.SnapshotQuery, name string) {
		defer wg.Done()
		for i := 0; i < epochs; i++ {
			out, err := sched.Step(sq)
			if err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			if out.Epoch != model.Epoch(i) {
				t.Errorf("%s: outcome epoch %d at step %d", name, out.Epoch, i)
				return
			}
			exact := topk.ExactSnapshot(out.Readings, q)
			if !model.EqualAnswers(out.Answers, exact) {
				t.Errorf("%s epoch %d: answers %v, exact %v", name, i, out.Answers, exact)
				return
			}
		}
	}
	// Step both cursors concurrently — the scheduler serializes epochs,
	// the live substrate runs both acquisitions over the same workers.
	wg.Add(2)
	go step(sq1, q1, "mint-k2")
	go step(sq2, q2, "tag-k3-max")
	wg.Wait()

	if got := sched.Epoch(); got != epochs {
		t.Fatalf("scheduler advanced %d epochs for two %d-step cursors, want %d (shared sweep)", got, epochs, epochs)
	}
	// Sensing charged once per epoch: 14 sensors × 8 epochs.
	sensors := len(net.Placement.SensorNodes())
	wantSense := float64(sensors*epochs) * net.Energy.SenseCost
	idle := float64(sensors*epochs) * net.Energy.IdlePerEpoch
	minLedger := wantSense + idle
	if total := net.Ledger.Total(); total < minLedger {
		t.Fatalf("ledger %v below sensing+idle floor %v", total, minLedger)
	}
}
