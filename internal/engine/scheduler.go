package engine

import (
	"context"
	"sync"

	"kspot/internal/model"
	"kspot/internal/trace"
)

// EpochRunner is the slice of an attached snapshot operator the scheduler
// drives: one acquisition round per epoch. topk.SnapshotOperator satisfies
// it after Attach.
type EpochRunner interface {
	Epoch(e model.Epoch, readings map[model.NodeID]model.Reading) ([]model.Answer, error)
}

// Outcome is one epoch's result for one scheduled query.
type Outcome struct {
	Epoch   model.Epoch
	Answers []model.Answer
	// Readings are the epoch's per-node inputs as this query saw them,
	// unioned across every shard (shared across queries unless the query
	// declared its own source). Treat as read-only.
	Readings map[model.NodeID]model.Reading
	// Err is the operator's (or merge's) error for this epoch, if any.
	Err error
}

// ScheduledQuery is one query's seat in the scheduler. Epoch outcomes are
// produced in lock-step for every scheduled query and buffered here until
// the query's cursor consumes them.
type ScheduledQuery struct {
	ops   []EpochRunner // one per shard deployment
	merge MergeFunc     // nil on single-shard deployments
	src   trace.Source  // nil → the deployment's shared readings

	// stepMu serializes Step/StepContext per query: a cancelled
	// StepContext's background hand-back holds it until the abandoned
	// outcome is re-buffered, so no later Step can observe the epoch
	// stream out of order. Queries never share a stepMu — one slow or
	// cancelled cursor cannot stall another's.
	stepMu sync.Mutex

	pending []Outcome // guarded by the scheduler's mu
	removed bool
}

// Scheduler drives several queries over one federated deployment — N
// shard Deployments behind one Coordinator — in epoch lock-step: each
// epoch every shard is sensed once (one idle charge, one sensing sweep per
// shard) and every scheduled query runs its per-shard acquisitions over
// the same readings, merging at the coordinator tier. On the live
// substrate all acquisitions proceed concurrently, across queries and
// across shards, interleaving their view sweeps over the shared node
// goroutines. This is how one KSpot server serves many posted cursors
// without multiplying the per-epoch acquisition cost.
//
// Stepping is demand-driven: the epoch advances when a query with no
// buffered outcome is stepped, and the outcomes of the other queries are
// buffered until their cursors catch up. A query whose shard fails
// mid-sweep receives the error on its own outcome; the lock-step of the
// remaining queries is never wedged. All methods are safe for concurrent
// use.
type Scheduler struct {
	coord *Coordinator

	mu       sync.Mutex
	queries  []*ScheduledQuery
	epoch    model.Epoch
	closed   bool
	pipeline int        // pipelineAuto / pipelineOn / pipelineOff
	pre      *presample // in-flight background sampling of the next epoch
}

// Pipelining modes: auto enables cross-epoch pipelining on the live
// substrate only — the deterministic simulator's transports are not safe
// against out-of-band mutation (SetNodeDown between steps) racing a
// background sample, while the live substrate serializes those under its
// own lock.
const (
	pipelineAuto = iota
	pipelineOn
	pipelineOff
)

// presample is an in-flight background sampling of the next epoch: the
// scheduler launches it once an epoch's acquisitions (all transport work)
// have finished, so it overlaps the merge/fed-round stage. The accounting
// the synchronous path would have done at sampling time is deferred to
// CommitSenseEpoch when the epoch is actually consumed — keeping ledgers,
// budgets and histories byte-identical to the unpipelined run.
type presample struct {
	epoch model.Epoch
	done  chan struct{}
	shard []map[model.NodeID]model.Reading
}

// NewScheduler returns a scheduler over the shard deployments.
func NewScheduler(deps ...*Deployment) *Scheduler {
	return &Scheduler{coord: NewCoordinator(deps...)}
}

// Coordinator exposes the scheduler's federation tier.
func (s *Scheduler) Coordinator() *Coordinator { return s.coord }

// SetPipelining forces cross-epoch pipelining on or off, overriding the
// default (enabled on the live substrate, disabled on the deterministic
// one). With pipelining on, the next epoch's sensing is sampled on a
// background goroutine while the current epoch's merge stage runs; its
// charges are committed when the epoch is consumed, so outcomes and
// accounting are byte-identical either way. Callers that mutate a
// deterministic transport out-of-band between steps (SetNodeDown, fault
// arming) must leave pipelining off there: the background sample reads
// transport aliveness without a lock.
func (s *Scheduler) SetPipelining(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if on {
		s.pipeline = pipelineOn
	} else {
		s.pipeline = pipelineOff
	}
	if s.pipeline == pipelineOff && s.pre != nil {
		<-s.pre.done
		s.pre = nil
	}
}

// Add schedules an attached query: one runner per shard deployment
// (index-aligned with the coordinator's Deployments) and the coordinator
// merge (nil for single-shard). src, when non-nil, overrides the per-node
// readings for this query only (e.g. node-local window aggregation);
// sensing is still charged once per shard, against the shared source. A
// query joins at the current epoch — earlier outcomes are not replayed.
func (s *Scheduler) Add(ops []EpochRunner, merge MergeFunc, src trace.Source) *ScheduledQuery {
	s.mu.Lock()
	defer s.mu.Unlock()
	sq := &ScheduledQuery{ops: ops, merge: merge, src: src}
	s.queries = append(s.queries, sq)
	return sq
}

// Remove unschedules a query; its buffered outcomes are discarded.
func (s *Scheduler) Remove(sq *ScheduledQuery) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sq.removed = true
	sq.pending = nil
	for i, q := range s.queries {
		if q == sq {
			s.queries = append(s.queries[:i], s.queries[i+1:]...)
			return
		}
	}
}

// Epoch returns the next epoch number the scheduler will run.
func (s *Scheduler) Epoch() model.Epoch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Step returns the query's next epoch outcome, advancing the shared epoch
// when nothing is buffered for it.
func (s *Scheduler) Step(sq *ScheduledQuery) (Outcome, error) {
	sq.stepMu.Lock()
	defer sq.stepMu.Unlock()
	out, _, err := s.step(sq)
	return out, err
}

// StepContext is Step with cancellation: when ctx expires while the epoch
// is in flight, the call returns ctx.Err() immediately and the epoch
// finishes in the background — its outcome is re-buffered at the front of
// the query's queue, so the next Step observes the epoch stream without a
// gap (the per-query stepMu holds later steps out until the hand-back
// lands). Nothing leaks: the in-flight epoch runs to completion on the
// scheduler's own goroutine and the substrate's workers are untouched.
func (s *Scheduler) StepContext(ctx context.Context, sq *ScheduledQuery) (Outcome, error) {
	// An already-expired context never starts work: stepping with a dead
	// ctx would run (and charge) a full epoch in the background on every
	// call, draining node budgets for a caller that consumes nothing.
	if err := ctx.Err(); err != nil {
		return Outcome{}, err
	}
	type stepRes struct {
		out Outcome
		err error
	}
	ch := make(chan stepRes)
	abandon := make(chan struct{})
	go func() {
		sq.stepMu.Lock()
		defer sq.stepMu.Unlock()
		out, popped, err := s.step(sq)
		select {
		case ch <- stepRes{out, err}:
		case <-abandon:
			if popped {
				s.pushFront(sq, out)
			}
		}
	}()
	select {
	case r := <-ch:
		return r.out, r.err
	case <-ctx.Done():
		close(abandon)
		return Outcome{}, ctx.Err()
	}
}

// step pops the query's next outcome, running an epoch if none is
// buffered. popped reports whether an outcome was actually consumed (so a
// cancelled StepContext can re-buffer it).
func (s *Scheduler) step(sq *ScheduledQuery) (Outcome, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Outcome{}, false, errClosed
	}
	if sq.removed {
		return Outcome{}, false, errRemoved
	}
	if len(sq.pending) == 0 {
		s.runEpochLocked()
	}
	out := sq.pending[0]
	sq.pending = sq.pending[1:]
	return out, true, out.Err
}

// pushFront re-buffers an outcome a cancelled StepContext abandoned, so
// the epoch stream stays gapless for the next Step. On a closed or
// removed scheduler seat the outcome is dropped instead: no Step can ever
// consume it (step refuses first), so re-buffering would only pin the
// epoch's readings map alive behind a cursor the caller still holds —
// the federated teardown path (one shard's cancelled epoch re-buffering
// while the deployment Closes) must not retain dead state.
func (s *Scheduler) pushFront(sq *ScheduledQuery, out Outcome) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sq.removed || s.closed {
		return
	}
	sq.pending = append([]Outcome{out}, sq.pending...)
}

// Close rejects further Steps. It blocks until any in-flight epoch has
// completed — including a pipelined background presample of the next
// epoch, which is drained and discarded (its charges were never
// committed) — so the transports can be torn down safely afterwards.
func (s *Scheduler) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.pre != nil {
		<-s.pre.done
		s.pre = nil
	}
}

type schedulerError string

func (e schedulerError) Error() string { return string(e) }

const (
	errRemoved = schedulerError("engine: query was removed from the scheduler")
	errClosed  = schedulerError("engine: scheduler is closed")
)

// runEpochLocked executes one shared epoch for every scheduled query in
// three stages: sensing (consuming the pipelined presample when one is in
// flight, then committing its deferred charges), acquisition (every
// query's per-shard transport work), and merge (pure in-memory). Between
// acquisition and merge the transports are quiescent for the rest of the
// epoch, so that is where the next epoch's background presample launches —
// the cross-epoch pipeline.
func (s *Scheduler) runEpochLocked() {
	e := s.epoch
	s.epoch++

	// Sensing: a pipelined presample for exactly this epoch is consumed;
	// anything else (stale after SetPipelining toggles) is discarded — its
	// charges were never committed, so resampling is free of skew.
	var shard []map[model.NodeID]model.Reading
	if s.pre != nil {
		<-s.pre.done
		if s.pre.epoch == e {
			shard = s.pre.shard
		}
		s.pre = nil
	}
	if shard == nil {
		shard = s.coord.PresampleEpoch(e)
	}
	s.coord.CommitSenseEpoch(e, shard)
	// The union for the oracle is identical for every query without an
	// override source — compute it once, not once per query.
	union := MergeReadings(shard)

	// Acquisition: on the concurrent substrate all acquisitions run in
	// parallel, across queries and across shards: the Live transport
	// supports any number of in-flight sweeps and floods. The
	// deterministic simulator is a single-threaded state machine per
	// shard, so there the queries run in sequence (each query still fans
	// out across shards — distinct shards are distinct state machines).
	// Decorators (fault injection) are stripped first — they forward
	// concurrency-safely.
	_, live := Baseof(s.coord.deps[0].tp).(*Live)
	acqs := make([]*acquisition, len(s.queries))
	errs := make([]error, len(s.queries))
	var wg sync.WaitGroup
	for i, q := range s.queries {
		if live {
			wg.Add(1)
			go func(i int, q *ScheduledQuery) {
				defer wg.Done()
				acqs[i], errs[i] = s.coord.acquire(e, q.ops, shard, q.src)
			}(i, q)
		} else {
			acqs[i], errs[i] = s.coord.acquire(e, q.ops, shard, q.src)
		}
	}
	wg.Wait()

	// All transport work for epoch e is done; overlap the next epoch's
	// sensing with the merge stage.
	if s.pipeline == pipelineOn || (s.pipeline == pipelineAuto && live) {
		pre := &presample{epoch: e + 1, done: make(chan struct{})}
		s.pre = pre
		go func() {
			pre.shard = s.coord.PresampleEpoch(e + 1)
			close(pre.done)
		}()
	}

	// Merge: coordinator-tier fed rounds, no transport access.
	for i, q := range s.queries {
		var out Outcome
		if errs[i] != nil {
			out = Outcome{Epoch: e, Err: errs[i]}
		} else {
			out = s.coord.mergeAcquisition(e, acqs[i], union, q.merge)
		}
		q.pending = append(q.pending, out)
	}
}
