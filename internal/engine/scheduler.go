package engine

import (
	"context"
	"fmt"
	"sync"

	"kspot/internal/model"
	"kspot/internal/trace"
)

// EpochRunner is the slice of an attached snapshot operator the scheduler
// drives: one acquisition round per epoch. topk.SnapshotOperator satisfies
// it after Attach.
type EpochRunner interface {
	Epoch(e model.Epoch, readings map[model.NodeID]model.Reading) ([]model.Answer, error)
}

// Outcome is one epoch's result for one scheduled query.
type Outcome struct {
	Epoch   model.Epoch
	Answers []model.Answer
	// Readings are the epoch's per-node inputs as this query saw them,
	// unioned across every shard (shared across queries unless the query
	// declared its own source). Treat as read-only.
	Readings map[model.NodeID]model.Reading
	// Err is the operator's (or merge's) error for this epoch, if any.
	Err error
}

// ScheduledQuery is one query's seat in the scheduler. Epoch outcomes are
// produced in lock-step for every scheduled query and buffered here until
// the query's cursor consumes them.
type ScheduledQuery struct {
	group *acqGroup // the shared acquisition this query rides
	merge MergeFunc // nil on single-shard deployments
	cutK  int       // >0: keep only the top cutK of the group's merged ranking

	// stepMu serializes Step/StepContext per query: a cancelled
	// StepContext's background hand-back holds it until the abandoned
	// outcome is re-buffered, so no later Step can observe the epoch
	// stream out of order. Queries never share a stepMu — one slow or
	// cancelled cursor cannot stall another's.
	stepMu sync.Mutex

	pending []Outcome // guarded by the scheduler's mu
	removed bool
}

// acqGroup is one shared in-network acquisition: the per-shard runners and
// override source that every member query's answers derive from. Queries
// scheduled under the same non-empty key join one group — the network runs
// ONE acquisition per group per epoch and the members' merges fan out from
// it at the base station. A query scheduled without a key gets a private
// singleton group (the pre-sharing behavior).
type acqGroup struct {
	key     string
	ops     []EpochRunner // one per shard deployment
	src     trace.Source  // nil → the deployment's shared readings
	members []*ScheduledQuery
}

// QuerySpec declares one query's seat for Schedule. When Key names an
// existing group, Ops and Src are ignored — the query joins the group's
// shared acquisition and only its own Merge/CutK stage runs per epoch.
type QuerySpec struct {
	// Key is the shared-acquisition key (kspot derives it from the plan's
	// SenseKey plus the resolved algorithm). Empty = private acquisition.
	Key string
	// Ops is one acquisition runner per shard deployment, index-aligned
	// with the coordinator's Deployments. Used only when the key's group
	// does not exist yet (or Key is empty).
	Ops []EpochRunner
	// Merge is this query's own coordinator-tier merge (nil on flat
	// deployments). Members of one group each run their own merge over the
	// group's shared per-shard rankings.
	Merge MergeFunc
	// Src, when non-nil, overrides the per-node readings for the group
	// (node-local window aggregation). Like Ops, it binds at group creation.
	Src trace.Source
	// CutK, when > 0, caps this member's merged answers at the top CutK of
	// the group ranking — the per-tenant TOP-K cut above the shared view. A
	// group acquiring at a wider K than a member asked for hands the member
	// a fresh prefix copy, never an alias of another member's slice.
	CutK int
}

// Scheduler drives several queries over one federated deployment — N
// shard Deployments behind one Coordinator — in epoch lock-step: each
// epoch every shard is sensed once (one idle charge, one sensing sweep per
// shard) and every scheduled query runs its per-shard acquisitions over
// the same readings, merging at the coordinator tier. On the live
// substrate all acquisitions proceed concurrently, across queries and
// across shards, interleaving their view sweeps over the shared node
// goroutines. This is how one KSpot server serves many posted cursors
// without multiplying the per-epoch acquisition cost.
//
// Stepping is demand-driven: the epoch advances when a query with no
// buffered outcome is stepped, and the outcomes of the other queries are
// buffered until their cursors catch up. A query whose shard fails
// mid-sweep receives the error on its own outcome; the lock-step of the
// remaining queries is never wedged. All methods are safe for concurrent
// use.
type Scheduler struct {
	coord *Coordinator

	mu       sync.Mutex
	queries  []*ScheduledQuery
	groups   []*acqGroup          // acquisition order: one entry per distinct acquisition
	byKey    map[string]*acqGroup // keyed (shared) groups only
	epoch    model.Epoch
	closed   bool
	pipeline int        // pipelineAuto / pipelineOn / pipelineOff
	pre      *presample // in-flight background sampling of the next epoch
}

// Pipelining modes: auto enables cross-epoch pipelining on the live
// substrate only — the deterministic simulator's transports are not safe
// against out-of-band mutation (SetNodeDown between steps) racing a
// background sample, while the live substrate serializes those under its
// own lock.
const (
	pipelineAuto = iota
	pipelineOn
	pipelineOff
)

// presample is an in-flight background sampling of the next epoch: the
// scheduler launches it once an epoch's acquisitions (all transport work)
// have finished, so it overlaps the merge/fed-round stage. The accounting
// the synchronous path would have done at sampling time is deferred to
// CommitSenseEpoch when the epoch is actually consumed — keeping ledgers,
// budgets and histories byte-identical to the unpipelined run.
type presample struct {
	epoch model.Epoch
	done  chan struct{}
	shard []map[model.NodeID]model.Reading
}

// NewScheduler returns a scheduler over the shard deployments.
func NewScheduler(deps ...*Deployment) *Scheduler {
	return &Scheduler{coord: NewCoordinator(deps...), byKey: make(map[string]*acqGroup)}
}

// Coordinator exposes the scheduler's federation tier.
func (s *Scheduler) Coordinator() *Coordinator { return s.coord }

// SetPipelining forces cross-epoch pipelining on or off, overriding the
// default (enabled on the live substrate, disabled on the deterministic
// one). With pipelining on, the next epoch's sensing is sampled on a
// background goroutine while the current epoch's merge stage runs; its
// charges are committed when the epoch is consumed, so outcomes and
// accounting are byte-identical either way. Callers that mutate a
// deterministic transport out-of-band between steps (SetNodeDown, fault
// arming) must leave pipelining off there: the background sample reads
// transport aliveness without a lock.
func (s *Scheduler) SetPipelining(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if on {
		s.pipeline = pipelineOn
	} else {
		s.pipeline = pipelineOff
	}
	if s.pipeline == pipelineOff && s.pre != nil {
		<-s.pre.done
		s.pre = nil
	}
}

// Add schedules an attached query with a private acquisition: one runner
// per shard deployment (index-aligned with the coordinator's Deployments)
// and the coordinator merge (nil for single-shard). src, when non-nil,
// overrides the per-node readings for this query only (e.g. node-local
// window aggregation); sensing is still charged once per shard, against
// the shared source. A query joins at the current epoch — earlier
// outcomes are not replayed.
func (s *Scheduler) Add(ops []EpochRunner, merge MergeFunc, src trace.Source) *ScheduledQuery {
	return s.Schedule(QuerySpec{Ops: ops, Merge: merge, Src: src})
}

// Schedule registers a query, joining (or creating) the shared-acquisition
// group its Key names — see QuerySpec. A query joins at the current epoch;
// earlier outcomes are not replayed.
func (s *Scheduler) Schedule(spec QuerySpec) *ScheduledQuery {
	s.mu.Lock()
	defer s.mu.Unlock()
	sq := &ScheduledQuery{merge: spec.Merge, cutK: spec.CutK}
	var g *acqGroup
	if spec.Key != "" {
		g = s.byKey[spec.Key]
	}
	if g == nil {
		g = &acqGroup{key: spec.Key, ops: spec.Ops, src: spec.Src}
		s.groups = append(s.groups, g)
		if spec.Key != "" {
			s.byKey[spec.Key] = g
		}
	}
	sq.group = g
	g.members = append(g.members, sq)
	s.queries = append(s.queries, sq)
	return sq
}

// GroupSize reports how many scheduled queries share the key's
// acquisition group (0: no such group).
func (s *Scheduler) GroupSize(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if g := s.byKey[key]; g != nil {
		return len(g.members)
	}
	return 0
}

// WidenGroup replaces a shared group's acquisition runners — the K-cap
// escalation path: when a new member needs a wider in-network acquisition
// than the group was created with (a larger TOP K under the same sensing
// signature), the caller attaches fresh runners at the wider K and swaps
// them in before scheduling the member. The replaced runners' views are
// simply abandoned; the new runners re-run their creation phase on their
// next epoch, exactly as a newly posted query would.
func (s *Scheduler) WidenGroup(key string, ops []EpochRunner) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.byKey[key]
	if g == nil {
		return fmt.Errorf("engine: no shared-acquisition group %q to widen", key)
	}
	g.ops = ops
	return nil
}

// Remove unschedules a query; its buffered outcomes are discarded. The
// last member leaving a shared group dissolves the group — a later
// Schedule under the same key creates a fresh acquisition.
func (s *Scheduler) Remove(sq *ScheduledQuery) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sq.removed = true
	sq.pending = nil
	for i, q := range s.queries {
		if q == sq {
			s.queries = append(s.queries[:i], s.queries[i+1:]...)
			break
		}
	}
	g := sq.group
	if g == nil {
		return
	}
	for i, m := range g.members {
		if m == sq {
			g.members = append(g.members[:i], g.members[i+1:]...)
			break
		}
	}
	if len(g.members) == 0 {
		for i, gg := range s.groups {
			if gg == g {
				s.groups = append(s.groups[:i], s.groups[i+1:]...)
				break
			}
		}
		if g.key != "" {
			delete(s.byKey, g.key)
		}
	}
}

// Epoch returns the next epoch number the scheduler will run.
func (s *Scheduler) Epoch() model.Epoch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Step returns the query's next epoch outcome, advancing the shared epoch
// when nothing is buffered for it.
func (s *Scheduler) Step(sq *ScheduledQuery) (Outcome, error) {
	sq.stepMu.Lock()
	defer sq.stepMu.Unlock()
	out, _, err := s.step(sq)
	return out, err
}

// StepContext is Step with cancellation: when ctx expires while the epoch
// is in flight, the call returns ctx.Err() immediately and the epoch
// finishes in the background — its outcome is re-buffered at the front of
// the query's queue, so the next Step observes the epoch stream without a
// gap (the per-query stepMu holds later steps out until the hand-back
// lands). Nothing leaks: the in-flight epoch runs to completion on the
// scheduler's own goroutine and the substrate's workers are untouched.
func (s *Scheduler) StepContext(ctx context.Context, sq *ScheduledQuery) (Outcome, error) {
	// An already-expired context never starts work: stepping with a dead
	// ctx would run (and charge) a full epoch in the background on every
	// call, draining node budgets for a caller that consumes nothing.
	if err := ctx.Err(); err != nil {
		return Outcome{}, err
	}
	type stepRes struct {
		out Outcome
		err error
	}
	ch := make(chan stepRes)
	abandon := make(chan struct{})
	go func() {
		sq.stepMu.Lock()
		defer sq.stepMu.Unlock()
		out, popped, err := s.step(sq)
		select {
		case ch <- stepRes{out, err}:
		case <-abandon:
			if popped {
				s.pushFront(sq, out)
			}
		}
	}()
	select {
	case r := <-ch:
		return r.out, r.err
	case <-ctx.Done():
		close(abandon)
		return Outcome{}, ctx.Err()
	}
}

// step pops the query's next outcome, running an epoch if none is
// buffered. popped reports whether an outcome was actually consumed (so a
// cancelled StepContext can re-buffer it).
func (s *Scheduler) step(sq *ScheduledQuery) (Outcome, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Outcome{}, false, errClosed
	}
	if sq.removed {
		return Outcome{}, false, errRemoved
	}
	if len(sq.pending) == 0 {
		s.runEpochLocked()
	}
	out := sq.pending[0]
	sq.pending = sq.pending[1:]
	return out, true, out.Err
}

// pushFront re-buffers an outcome a cancelled StepContext abandoned, so
// the epoch stream stays gapless for the next Step. On a closed or
// removed scheduler seat the outcome is dropped instead: no Step can ever
// consume it (step refuses first), so re-buffering would only pin the
// epoch's readings map alive behind a cursor the caller still holds —
// the federated teardown path (one shard's cancelled epoch re-buffering
// while the deployment Closes) must not retain dead state.
func (s *Scheduler) pushFront(sq *ScheduledQuery, out Outcome) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sq.removed || s.closed {
		return
	}
	sq.pending = append([]Outcome{out}, sq.pending...)
}

// Close rejects further Steps. It blocks until any in-flight epoch has
// completed — including a pipelined background presample of the next
// epoch, which is drained and discarded (its charges were never
// committed) — so the transports can be torn down safely afterwards.
func (s *Scheduler) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.pre != nil {
		<-s.pre.done
		s.pre = nil
	}
}

type schedulerError string

func (e schedulerError) Error() string { return string(e) }

const (
	errRemoved = schedulerError("engine: query was removed from the scheduler")
	errClosed  = schedulerError("engine: scheduler is closed")
)

// runEpochLocked executes one shared epoch for every scheduled query in
// three stages: sensing (consuming the pipelined presample when one is in
// flight, then committing its deferred charges), acquisition (one
// per-shard transport sweep per acquisition GROUP — however many member
// queries each group serves), and merge (pure in-memory, one per member).
// Between acquisition and merge the transports are quiescent for the rest
// of the epoch, so that is where the next epoch's background presample
// launches — the cross-epoch pipeline.
func (s *Scheduler) runEpochLocked() {
	e := s.epoch
	s.epoch++

	// Sensing: a pipelined presample for exactly this epoch is consumed;
	// anything else (stale after SetPipelining toggles) is discarded — its
	// charges were never committed, so resampling is free of skew.
	var shard []map[model.NodeID]model.Reading
	if s.pre != nil {
		<-s.pre.done
		if s.pre.epoch == e {
			shard = s.pre.shard
		}
		s.pre = nil
	}
	if shard == nil {
		shard = s.coord.PresampleEpoch(e)
	}
	s.coord.CommitSenseEpoch(e, shard)
	// The union for the oracle is identical for every query without an
	// override source — compute it once, not once per query.
	union := MergeReadings(shard)

	// Acquisition: one per group. On the concurrent substrate all group
	// acquisitions run in parallel, across groups and across shards: the
	// Live transport supports any number of in-flight sweeps and floods.
	// The deterministic simulator is a single-threaded state machine per
	// shard, so there the groups run in sequence (each group still fans
	// out across shards — distinct shards are distinct state machines).
	// Decorators (fault injection) are stripped first — they forward
	// concurrency-safely.
	_, live := Baseof(s.coord.deps[0].tp).(*Live)
	acqs := make([]*acquisition, len(s.groups))
	errs := make([]error, len(s.groups))
	var wg sync.WaitGroup
	for i, g := range s.groups {
		if live {
			wg.Add(1)
			go func(i int, g *acqGroup) {
				defer wg.Done()
				acqs[i], errs[i] = s.coord.acquire(e, g.ops, shard, g.src)
			}(i, g)
		} else {
			acqs[i], errs[i] = s.coord.acquire(e, g.ops, shard, g.src)
		}
	}
	wg.Wait()

	// All transport work for epoch e is done; overlap the next epoch's
	// sensing with the merge stage.
	if s.pipeline == pipelineOn || (s.pipeline == pipelineAuto && live) {
		pre := &presample{epoch: e + 1, done: make(chan struct{})}
		s.pre = pre
		go func() {
			pre.shard = s.coord.PresampleEpoch(e + 1)
			close(pre.done)
		}()
	}

	// Merge: coordinator-tier fed rounds, no transport access. Every member
	// of a group runs its own merge/cut over the group's shared per-shard
	// rankings (fed.Merger never mutates its inputs), so M same-key tenants
	// cost M in-memory merges and ONE in-network acquisition.
	for i, g := range s.groups {
		ga := acqs[i]
		gUnion := union
		if errs[i] == nil && ga.override {
			// Derive the override union once per group, not once per member;
			// the flag is cleared so mergeAcquisition trusts the passed union.
			gUnion = MergeReadings(ga.readings)
			ga.override = false
		}
		for _, q := range g.members {
			var out Outcome
			if errs[i] != nil {
				out = Outcome{Epoch: e, Err: errs[i]}
			} else {
				out = s.coord.mergeAcquisition(e, ga, gUnion, q.merge)
				out = q.cut(out)
			}
			q.pending = append(q.pending, out)
		}
	}
}

// cut applies the member's TOP-K prefix cut to a merged outcome. The
// group's ranking may be wider than this member asked for (the group
// acquires at the widest member K); the member keeps the top cutK. The
// prefix is copied, never aliased — members of one group must not share
// answer slices across their buffered outcomes.
func (sq *ScheduledQuery) cut(out Outcome) Outcome {
	if sq.cutK > 0 && out.Err == nil && len(out.Answers) > sq.cutK {
		out.Answers = append([]model.Answer(nil), out.Answers[:sq.cutK]...)
	}
	return out
}
