package engine

import (
	"sync"

	"kspot/internal/model"
	"kspot/internal/trace"
)

// EpochRunner is the slice of an attached snapshot operator the scheduler
// drives: one acquisition round per epoch. topk.SnapshotOperator satisfies
// it after Attach.
type EpochRunner interface {
	Epoch(e model.Epoch, readings map[model.NodeID]model.Reading) ([]model.Answer, error)
}

// Outcome is one epoch's result for one scheduled query.
type Outcome struct {
	Epoch   model.Epoch
	Answers []model.Answer
	// Readings are the epoch's per-node inputs as this query saw them
	// (shared across queries unless the query declared its own source).
	// Treat as read-only.
	Readings map[model.NodeID]model.Reading
	// Err is the operator's error for this epoch, if any.
	Err error
}

// ScheduledQuery is one query's seat in the scheduler. Epoch outcomes are
// produced in lock-step for every scheduled query and buffered here until
// the query's cursor consumes them.
type ScheduledQuery struct {
	op      EpochRunner
	src     trace.Source // nil → the deployment's shared readings
	pending []Outcome
	removed bool
}

// Scheduler drives several queries over one deployment in epoch lock-step:
// each epoch is sensed once (one idle charge, one sensing sweep) and every
// scheduled operator runs its acquisition over the same readings — on the
// live substrate all acquisitions proceed concurrently, interleaving their
// view sweeps over the shared node goroutines. This is how one KSpot
// server serves many posted cursors without multiplying the per-epoch
// acquisition cost.
//
// Stepping is demand-driven: the epoch advances when a query with no
// buffered outcome is stepped, and the outcomes of the other queries are
// buffered until their cursors catch up. All methods are safe for
// concurrent use.
type Scheduler struct {
	t   Transport
	src trace.Source

	mu      sync.Mutex
	queries []*ScheduledQuery
	epoch   model.Epoch
	closed  bool
}

// NewScheduler returns a scheduler over the transport with the
// deployment's ambient trace source.
func NewScheduler(t Transport, src trace.Source) *Scheduler {
	return &Scheduler{t: t, src: src}
}

// Add schedules an attached operator. src, when non-nil, overrides the
// per-node readings for this query only (e.g. node-local window
// aggregation); sensing is still charged once, against the shared source.
// A query joins at the current epoch — earlier outcomes are not replayed.
func (s *Scheduler) Add(op EpochRunner, src trace.Source) *ScheduledQuery {
	s.mu.Lock()
	defer s.mu.Unlock()
	sq := &ScheduledQuery{op: op, src: src}
	s.queries = append(s.queries, sq)
	return sq
}

// Remove unschedules a query; its buffered outcomes are discarded.
func (s *Scheduler) Remove(sq *ScheduledQuery) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sq.removed = true
	sq.pending = nil
	for i, q := range s.queries {
		if q == sq {
			s.queries = append(s.queries[:i], s.queries[i+1:]...)
			return
		}
	}
}

// Epoch returns the next epoch number the scheduler will run.
func (s *Scheduler) Epoch() model.Epoch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Step returns the query's next epoch outcome, advancing the shared epoch
// when nothing is buffered for it.
func (s *Scheduler) Step(sq *ScheduledQuery) (Outcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Outcome{}, errClosed
	}
	if sq.removed {
		return Outcome{}, errRemoved
	}
	if len(sq.pending) == 0 {
		s.runEpochLocked()
	}
	out := sq.pending[0]
	sq.pending = sq.pending[1:]
	return out, out.Err
}

// Close rejects further Steps. It blocks until any in-flight epoch has
// completed, so the transport can be torn down safely afterwards.
func (s *Scheduler) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
}

type schedulerError string

func (e schedulerError) Error() string { return string(e) }

const (
	errRemoved = schedulerError("engine: query was removed from the scheduler")
	errClosed  = schedulerError("engine: scheduler is closed")
)

// runEpochLocked executes one shared epoch for every scheduled query.
func (s *Scheduler) runEpochLocked() {
	e := s.epoch
	s.epoch++
	s.t.ChargeIdleEpoch()
	shared := SenseEpoch(s.t, s.src, e)

	// On the concurrent substrate all acquisitions run in parallel: the
	// Live transport supports any number of in-flight sweeps and floods.
	// The deterministic simulator is a single-threaded state machine, so
	// there the operators run in sequence. Decorators (fault injection)
	// are stripped first — they forward concurrency-safely.
	_, parallel := Baseof(s.t).(*Live)
	var wg sync.WaitGroup
	for _, q := range s.queries {
		readings := shared
		if q.src != nil {
			readings = sampleReadings(s.t, q.src, e)
		}
		run := func(q *ScheduledQuery, readings map[model.NodeID]model.Reading) {
			answers, err := q.op.Epoch(e, readings)
			q.pending = append(q.pending, Outcome{Epoch: e, Answers: answers, Readings: readings, Err: err})
		}
		if parallel {
			wg.Add(1)
			go func(q *ScheduledQuery, readings map[model.NodeID]model.Reading) {
				defer wg.Done()
				run(q, readings)
			}(q, readings)
		} else {
			run(q, readings)
		}
	}
	wg.Wait()
}
