package engine

import "kspot/internal/trace"

// Deployment is the unit the public API and the Scheduler address: one
// network substrate (deterministic or live, possibly behind fault
// decorators) paired with the trace source its sensors sample. A flat
// system is a single Deployment; a federated system is N shard
// Deployments merged at a Coordinator.
//
// Every shard of a federated system shares the trace source built from
// the *flat* scenario — sampling is a pure function of (node, epoch), and
// node ids are globally unique across shards, so the sharded field senses
// exactly the world the flat field senses. That invariant is the root of
// the federation layer's identical-answer guarantee.
type Deployment struct {
	name string
	tp   Transport
	src  trace.Source
}

// NewDeployment binds a transport and its trace source under a display
// name (the shard name in panels and stats).
func NewDeployment(name string, tp Transport, src trace.Source) *Deployment {
	return &Deployment{name: name, tp: tp, src: src}
}

// Name returns the deployment's display name.
func (d *Deployment) Name() string { return d.name }

// Transport returns the deployment's substrate (behind its fault
// decorators, when armed).
func (d *Deployment) Transport() Transport { return d.tp }

// Source returns the deployment's trace source.
func (d *Deployment) Source() trace.Source { return d.src }
