package engine_test

import (
	"runtime"
	"testing"
	"time"

	"kspot/internal/config"
	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/sim"
	"kspot/internal/topk"
	"kspot/internal/topk/mint"
)

// pipelineRun drives one MINT query over the Figure-3 deployment with a
// tight energy budget (nodes die mid-run, so the deferred idle/sense
// accounting of the pipelined path is exercised against real deaths) and
// returns the outcome stream plus the network's accounting fingerprint.
func pipelineRun(t *testing.T, pipelined bool, epochs int) ([]engine.Outcome, sim.Snapshot, int) {
	t.Helper()
	scen := config.Figure3Scenario()
	scen.Budget = 0.004
	net, err := scen.Network()
	if err != nil {
		t.Fatal(err)
	}
	src, err := scen.Source()
	if err != nil {
		t.Fatal(err)
	}
	sched := engine.NewScheduler(engine.NewDeployment("figure3", net, src))
	defer sched.Close()
	sched.SetPipelining(pipelined)
	op := mint.New()
	q := topk.SnapshotQuery{K: 2, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}
	if err := op.Attach(net, q); err != nil {
		t.Fatal(err)
	}
	sq := sched.Add([]engine.EpochRunner{op}, nil, nil)
	outs := make([]engine.Outcome, 0, epochs)
	for i := 0; i < epochs; i++ {
		out, err := sched.Step(sq)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		outs = append(outs, out)
	}
	dead := 0
	for _, id := range net.Placement.SensorNodes() {
		if !net.Alive(id) {
			dead++
		}
	}
	return outs, net.Snap(), dead
}

// TestSchedulerPipeliningByteIdentity pins the cross-epoch pipeline's
// contract: presampling epoch e+1 on a background goroutine while epoch e
// merges must not move a single byte of the result — answers, counters and
// the energy ledger all match the synchronous run, because sampling is
// pure and the idle/sense charges are deferred to the epoch's consumption
// (including dropping readings of nodes the idle charge kills, see
// engine.CommitSenseEpoch).
func TestSchedulerPipeliningByteIdentity(t *testing.T) {
	const epochs = 30
	outs, snap, dead := pipelineRun(t, false, epochs)
	pOuts, pSnap, pDead := pipelineRun(t, true, epochs)
	for e := range outs {
		if outs[e].Epoch != pOuts[e].Epoch {
			t.Fatalf("step %d: epoch %d vs %d", e, outs[e].Epoch, pOuts[e].Epoch)
		}
		if !model.EqualAnswers(outs[e].Answers, pOuts[e].Answers) {
			t.Fatalf("epoch %d: answers %v (sync) vs %v (pipelined)", e, outs[e].Answers, pOuts[e].Answers)
		}
		if (outs[e].Err == nil) != (pOuts[e].Err == nil) {
			t.Fatalf("epoch %d: errors diverged: %v vs %v", e, outs[e].Err, pOuts[e].Err)
		}
	}
	// Snapshot includes the ledger total, so this is the exact-accounting
	// comparison (energy is a float sum in deterministic node order).
	if snap != pSnap {
		t.Fatalf("accounting diverged:\nsync      %+v\npipelined %+v", snap, pSnap)
	}
	if dead != pDead {
		t.Fatalf("deaths diverged: sync %d dead, pipelined %d dead", dead, pDead)
	}
	if dead == 0 {
		t.Fatal("budget never killed a node — the deferred-charge death filter was not exercised")
	}
}

// TestSchedulerCloseMidPipelineDrains is the worker-leak pin for the
// pipelined scheduler: Close lands while a background presample of the
// next epoch is still in flight (every Step relaunches one) and must drain
// it — no deadlock, no goroutine left sampling a torn-down transport, and
// no outcome delivered twice. The parallel sweep's per-level worker pool
// is armed too, so its goroutines are covered by the same drain check.
func TestSchedulerCloseMidPipelineDrains(t *testing.T) {
	before := runtime.NumGoroutine()

	scen := config.Figure3Scenario()
	net, err := scen.Network()
	if err != nil {
		t.Fatal(err)
	}
	net.SetParallel(4)
	src, err := scen.Source()
	if err != nil {
		t.Fatal(err)
	}
	sched := engine.NewScheduler(engine.NewDeployment("figure3", net, src))
	sched.SetPipelining(true)
	op := mint.New()
	q := topk.SnapshotQuery{K: 2, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}
	if err := op.Attach(net, q); err != nil {
		t.Fatal(err)
	}
	sq := sched.Add([]engine.EpochRunner{op}, nil, nil)
	for i := 0; i < 3; i++ {
		out, err := sched.Step(sq)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if out.Epoch != model.Epoch(i) {
			t.Fatalf("step %d delivered epoch %d — outcomes duplicated or skipped", i, out.Epoch)
		}
	}
	sched.Close() // epoch 3's presample is in flight right now
	if _, err := sched.Step(sq); err == nil {
		t.Fatal("step after Close succeeded")
	}
	sched.Close() // idempotent

	// The presample goroutine and the sweep's level workers are join-based,
	// not detached: shortly after Close the goroutine count must return to
	// the baseline (allow scheduling slack, and poll — the runtime needs a
	// moment to retire exited goroutines).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after Close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
