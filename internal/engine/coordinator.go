package engine

import (
	"fmt"
	"sync"

	"kspot/internal/model"
	"kspot/internal/trace"
)

// MergeFunc combines per-shard answer rankings into the global answer —
// the coordinator tier's merge step. shardAnswers[i] is shard i's local
// ranking for the epoch; internal/topk/fed provides the TPUT-style
// threshold implementation. A nil MergeFunc is legal only on single-shard
// deployments (the answers pass through).
type MergeFunc func(shardAnswers [][]model.Answer) ([]model.Answer, error)

// Coordinator drives a set of shard Deployments through lock-step epochs
// and merges their answers: the federation tier of a sharded KSpot system,
// standing in for the wired backhaul above the shard base stations. A
// single-deployment Coordinator degenerates to the flat epoch loop.
//
// The Coordinator itself is stateless apart from its deployment list; all
// methods are safe for concurrent use when every shard substrate is (the
// live substrate). The deterministic simulator is single-threaded per
// shard, but distinct shards are distinct state machines and may advance
// concurrently.
type Coordinator struct {
	deps []*Deployment
}

// NewCoordinator builds a coordinator over the shard deployments.
func NewCoordinator(deps ...*Deployment) *Coordinator {
	if len(deps) == 0 {
		panic("engine: coordinator needs at least one deployment")
	}
	return &Coordinator{deps: deps}
}

// Deployments returns the shard deployments, in shard order.
func (c *Coordinator) Deployments() []*Deployment { return c.deps }

// Shards returns the number of shard deployments.
func (c *Coordinator) Shards() int { return len(c.deps) }

// SenseEpoch idle-charges and senses every shard exactly once for the
// epoch, returning per-shard readings (index-aligned with Deployments).
// The maps are shared read-only state, like Transport sensing itself.
func (c *Coordinator) SenseEpoch(e model.Epoch) []map[model.NodeID]model.Reading {
	shard := c.PresampleEpoch(e)
	c.CommitSenseEpoch(e, shard)
	return shard
}

// PresampleEpoch samples every shard for the epoch without charging — the
// pure half of SenseEpoch, safe to run on a background goroutine while a
// previous epoch's merge stage is in flight (see engine.PresampleEpoch).
func (c *Coordinator) PresampleEpoch(e model.Epoch) []map[model.NodeID]model.Reading {
	out := make([]map[model.NodeID]model.Reading, len(c.deps))
	for i, d := range c.deps {
		out[i] = PresampleEpoch(d.tp, d.src, e)
	}
	return out
}

// CommitSenseEpoch applies the deferred idle/sensing accounting of a
// presampled epoch to every shard, index-aligned with Deployments.
func (c *Coordinator) CommitSenseEpoch(e model.Epoch, shard []map[model.NodeID]model.Reading) {
	for i, d := range c.deps {
		CommitSenseEpoch(d.tp, e, shard[i])
	}
}

// RunQuery runs one query's per-shard runners over an already-sensed
// epoch and merges the shard answers: acquire then mergeAcquisition. ops
// must be index-aligned with the deployments. src, when non-nil, overrides
// the per-node readings for this query only (node-local window
// aggregation) — re-derived per shard without re-charging the shared
// sensing. sharedUnion, when non-nil, is the precomputed union of the
// shared readings, reused for every query without an override source (the
// scheduler computes it once per epoch; pass nil to have it derived here).
//
// A shard whose acquisition fails surfaces its error on the returned
// Outcome; the remaining shards still complete their epoch, so one broken
// shard cannot wedge the lock-step of the others.
func (c *Coordinator) RunQuery(e model.Epoch, ops []EpochRunner, shared []map[model.NodeID]model.Reading, sharedUnion map[model.NodeID]model.Reading, src trace.Source, merge MergeFunc) Outcome {
	a, err := c.acquire(e, ops, shared, src)
	if err != nil {
		return Outcome{Epoch: e, Err: err}
	}
	return c.mergeAcquisition(e, a, sharedUnion, merge)
}

// acquisition carries one query's per-shard epoch results between the
// acquire and merge stages of a federated epoch — the seam the scheduler
// pipelines across: everything that touches a transport happens in
// acquire, so by the time an acquisition exists the epoch's sensing of the
// *next* epoch may safely begin.
type acquisition struct {
	perShard [][]model.Answer
	readings []map[model.NodeID]model.Reading
	errs     []error
	override bool // readings were derived from a query-local source
}

// acquire runs the per-shard epoch runners. Shard acquisitions run
// concurrently on every substrate: distinct shards are distinct state
// machines (their own network, link rng, ledger, counters and operator
// instances) on the deterministic simulator just as on the live one, so
// per-shard accounting is reproducible regardless of interleaving.
func (c *Coordinator) acquire(e model.Epoch, ops []EpochRunner, shared []map[model.NodeID]model.Reading, src trace.Source) (*acquisition, error) {
	if len(ops) != len(c.deps) {
		return nil, fmt.Errorf("engine: %d runners for %d shards", len(ops), len(c.deps))
	}
	a := &acquisition{
		perShard: make([][]model.Answer, len(c.deps)),
		readings: shared,
		errs:     make([]error, len(c.deps)),
		override: src != nil,
	}
	if src != nil {
		a.readings = make([]map[model.NodeID]model.Reading, len(c.deps))
	}
	run := func(i int) {
		if src != nil {
			// Derive over the sensed node set, not the transport's live
			// aliveness: an earlier acquisition of this epoch may already
			// have fired churn flips, and a shared epoch's queries must see
			// the same node set an independent run would.
			a.readings[i] = DeriveReadings(shared[i], src, e)
		}
		a.perShard[i], a.errs[i] = ops[i].Epoch(e, a.readings[i])
	}
	if len(c.deps) > 1 {
		var wg sync.WaitGroup
		for i := range c.deps {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				run(i)
			}(i)
		}
		wg.Wait()
	} else {
		run(0)
	}
	return a, nil
}

// mergeAcquisition runs the coordinator-tier merge over a finished
// acquisition — pure in-memory work, no transport access.
func (c *Coordinator) mergeAcquisition(e model.Epoch, a *acquisition, sharedUnion map[model.NodeID]model.Reading, merge MergeFunc) Outcome {
	union := sharedUnion
	if a.override || union == nil {
		union = MergeReadings(a.readings)
	}
	out := Outcome{Epoch: e, Readings: union}
	for i, err := range a.errs {
		if err != nil {
			out.Err = fmt.Errorf("engine: shard %s: %w", c.deps[i].name, err)
			return out
		}
	}
	if merge == nil {
		if len(c.deps) != 1 {
			out.Err = fmt.Errorf("engine: %d shards need a merge function", len(c.deps))
			return out
		}
		out.Answers = a.perShard[0]
		return out
	}
	out.Answers, out.Err = merge(a.perShard)
	return out
}

// Epoch senses and runs one full federated epoch for a single posted
// query — the deterministic cursor's step. An invoked epoch always runs
// to completion (shard fan-out goroutines are joined before returning);
// callers observe cancellation *between* epochs, before consuming an
// epoch number — otherwise a cancelled step would skip its epoch from
// the stream.
func (c *Coordinator) Epoch(e model.Epoch, ops []EpochRunner, src trace.Source, merge MergeFunc) Outcome {
	shared := c.SenseEpoch(e)
	return c.RunQuery(e, ops, shared, nil, src, merge)
}

// RunShards invokes fn once per shard deployment — concurrently when
// parallel (the live substrate, where every shard is its own goroutine-
// per-node network), in shard order otherwise — and returns the first
// error by shard order, tagged with the shard's name. It is the one-shot
// analogue of RunQuery's per-shard fan-out: the federated historic path
// uses it to run per-shard window protocols with the same shard-indexing
// discipline the epoch loop uses, so results land index-aligned with
// Deployments.
func (c *Coordinator) RunShards(parallel bool, fn func(i int, d *Deployment) error) error {
	errs := make([]error, len(c.deps))
	if parallel && len(c.deps) > 1 {
		var wg sync.WaitGroup
		for i := range c.deps {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = fn(i, c.deps[i])
			}(i)
		}
		wg.Wait()
	} else {
		for i := range c.deps {
			errs[i] = fn(i, c.deps[i])
		}
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("engine: shard %s: %w", c.deps[i].name, err)
		}
	}
	return nil
}

// MergeReadings unions per-shard readings into one map for the oracle;
// the single-shard case passes its map through without copying (the flat
// hot path stays allocation-lean).
func MergeReadings(per []map[model.NodeID]model.Reading) map[model.NodeID]model.Reading {
	if len(per) == 1 {
		return per[0]
	}
	n := 0
	for _, m := range per {
		n += len(m)
	}
	out := make(map[model.NodeID]model.Reading, n)
	for _, m := range per {
		for id, r := range m {
			out[id] = r
		}
	}
	return out
}
