package engine

// The remote substrate: a federated deployment whose shards are other
// processes behind sockets. The engine keeps the same coordinator-tier
// shape as the in-process federation (sense every shard, acquire every
// shard, union readings, merge answers) but speaks to each shard through
// the RemoteShard interface — internal/wire's Client implements it over
// the framed TCP protocol. Per-node operations never cross the wire: a
// shard's operator, routing tree and energy ledger live in the shard
// process; only shard-level results (readings, ranked answers, partial
// sums, counters) do, which is exactly the backhaul the fed layer's
// Stats account.

import (
	"fmt"
	"sync"

	"kspot/internal/model"
)

// RemoteAcquisition is one shard's epoch result for one query. Readings
// is nil for queries running on the epoch's shared sensing; for queries
// with derived per-node inputs (GROUP BY ... WITH HISTORY) it carries the
// derived readings the shard ran on, so the coordinator's oracle sees the
// same inputs the in-process coordinator would.
type RemoteAcquisition struct {
	Answers  []model.Answer
	Readings map[model.NodeID]model.Reading
}

// RemoteShard is the coordinator's surface onto one remote shard process:
// the shard-level half of the Transport contract (sensing and epoch
// acquisition), with per-node operations confined to the far side.
type RemoteShard interface {
	// Sense idle-charges and senses the shard once for the epoch,
	// returning the post-commit readings.
	Sense(e model.Epoch) (map[model.NodeID]model.Reading, error)
	// Acquire runs one epoch of the attached query on the shard.
	Acquire(query uint32, e model.Epoch) (RemoteAcquisition, error)
}

// RemoteGroupResult is one shared-acquisition group's slice of a batched
// epoch round: the group's acquisition, or its isolated failure.
type RemoteGroupResult struct {
	Acq RemoteAcquisition
	Err error
}

// RemoteRoundShard is optionally implemented by remote shards that can
// collapse a whole epoch — the sense plus every group's acquisition — into
// one round trip (wire.Client when the session negotiated CapEpochRound).
// The scheduled tier prefers it per shard and falls back to the per-call
// Sense/Acquire protocol for shards that lack it, so mixed deployments
// keep working.
type RemoteRoundShard interface {
	RemoteShard
	// SupportsEpochRound reports whether the shard's session actually
	// negotiated the batched protocol (an implementation may exist but be
	// talking to an old server).
	SupportsEpochRound() bool
	// EpochRound senses the epoch and runs one epoch of every listed
	// attached query, in order. A transport-level failure poisons the
	// whole round; a single query's failure is carried in its result.
	EpochRound(e model.Epoch, queries []uint32) (map[model.NodeID]model.Reading, []RemoteGroupResult, error)
}

// RemoteDeployment pairs a remote shard with its display name — the
// remote analogue of Deployment.
type RemoteDeployment struct {
	name  string
	shard RemoteShard
}

// NewRemoteDeployment binds a remote shard under a display name.
func NewRemoteDeployment(name string, shard RemoteShard) *RemoteDeployment {
	return &RemoteDeployment{name: name, shard: shard}
}

// Name returns the deployment's display name.
func (d *RemoteDeployment) Name() string { return d.name }

// Shard returns the remote shard handle.
func (d *RemoteDeployment) Shard() RemoteShard { return d.shard }

// RemoteCoordinator drives remote shard deployments through lock-step
// epochs, mirroring Coordinator's sense-then-acquire order. Unlike the
// in-process coordinator it serializes epochs across cursors: every
// cursor's sense/acquire pair must reach each shard's single state
// machine unbroken, or one query's acquisition would consume another's
// sensing. Shard fan-out within an epoch is concurrent — each shard is
// its own process.
type RemoteCoordinator struct {
	mu   sync.Mutex
	deps []*RemoteDeployment

	// The lock-step scheduled tier (Schedule/Step): every scheduled query
	// advances on one shared epoch clock, grouped by sensing signature so
	// one wire acquisition per group serves every member — the remote
	// analogue of Scheduler's shared-acquisition groups.
	epoch   model.Epoch
	queries []*RemoteQuery
	groups  []*remoteGroup
	byKey   map[string]*remoteGroup
}

// RemoteQuery is one scheduled query on the remote lock-step tier.
type RemoteQuery struct {
	group   *remoteGroup
	merge   MergeFunc
	cutK    int
	pending []Outcome
	removed bool
}

// remoteGroup is a shared-acquisition group on the remote tier: one
// attached wire query (the widest member's plan) acquired once per epoch,
// fanned out to every member's own merge and TOP-K cut at the coordinator.
type remoteGroup struct {
	key     string
	query   uint32 // the rqid attached on every shard for this group
	members []*RemoteQuery
}

// NewRemoteCoordinator builds a coordinator over remote shards.
func NewRemoteCoordinator(deps ...*RemoteDeployment) *RemoteCoordinator {
	if len(deps) == 0 {
		panic("engine: remote coordinator needs at least one deployment")
	}
	return &RemoteCoordinator{deps: deps, byKey: make(map[string]*remoteGroup)}
}

// Schedule registers a continuous query on the lock-step tier. Queries
// sharing a non-empty key join one acquisition group: the shards run ONE
// epoch sweep for the group's attached wire query, and each member applies
// its own merge and TOP-K cut to the shared shard rankings. An empty key
// schedules a private group. query is the rqid the caller attached on
// every shard; for a joining member it is ignored — the group keeps its
// existing attachment (the caller widens it first via WidenGroup when the
// new member needs a deeper ranking).
func (c *RemoteCoordinator) Schedule(key string, query uint32, merge MergeFunc, cutK int) *RemoteQuery {
	c.mu.Lock()
	defer c.mu.Unlock()
	q := &RemoteQuery{merge: merge, cutK: cutK}
	g := c.byKey[key]
	if g == nil {
		g = &remoteGroup{key: key, query: query}
		c.groups = append(c.groups, g)
		if key != "" {
			c.byKey[key] = g
		}
	}
	q.group = g
	g.members = append(g.members, q)
	c.queries = append(c.queries, q)
	return q
}

// GroupSize reports how many scheduled queries share the key's group (0
// when no group exists — private "" groups are never counted).
func (c *RemoteCoordinator) GroupSize(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if g := c.byKey[key]; g != nil {
		return len(g.members)
	}
	return 0
}

// WidenGroup repoints the key's group at a newly attached wire query — the
// remote analogue of Scheduler.WidenGroup, used when a joining member's K
// exceeds the group's current ranking depth. The old attachment stays
// registered on the shards but is never acquired again.
func (c *RemoteCoordinator) WidenGroup(key string, query uint32) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.byKey[key]
	if g == nil {
		return fmt.Errorf("engine: no remote acquisition group for key %q", key)
	}
	g.query = query
	return nil
}

// Step returns the query's next epoch outcome, running one shared lock-step
// epoch for every scheduled query when this one's buffer is empty. Epoch
// errors (a shard loss) surface in Outcome.Err without stalling the clock.
func (c *RemoteCoordinator) Step(q *RemoteQuery) (Outcome, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if q.removed {
		return Outcome{}, fmt.Errorf("engine: query was removed from the remote scheduler")
	}
	if len(q.pending) == 0 {
		c.runEpochLocked()
	}
	out := q.pending[0]
	q.pending = q.pending[1:]
	return out, nil
}

// Remove detaches a scheduled query; its group dissolves when the last
// member leaves. The wire attachment is the caller's to release.
func (c *RemoteCoordinator) Remove(q *RemoteQuery) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if q.removed {
		return
	}
	q.removed = true
	for i, m := range c.queries {
		if m == q {
			c.queries = append(c.queries[:i], c.queries[i+1:]...)
			break
		}
	}
	g := q.group
	for i, m := range g.members {
		if m == q {
			g.members = append(g.members[:i], g.members[i+1:]...)
			break
		}
	}
	if len(g.members) == 0 {
		for i, og := range c.groups {
			if og == g {
				c.groups = append(c.groups[:i], c.groups[i+1:]...)
				break
			}
		}
		if g.key != "" {
			delete(c.byKey, g.key)
		}
	}
}

// runEpochLocked advances the lock-step tier one epoch. Shards whose
// session speaks the batched protocol (RemoteRoundShard) run the sense
// AND every group's acquisition in ONE round trip; legacy shards sense
// first, then run their groups' acquisitions back to back on the
// pipelined connection — sequential per shard (the per-call protocol's
// exact execution order on the shard state machine) but with a single
// barrier for the whole epoch instead of one per group. Then per-member
// merge and cut at the coordinator. A sense failure poisons the whole
// epoch (every query buffers the error); an acquisition failure poisons
// only that group's members.
func (c *RemoteCoordinator) runEpochLocked() {
	e := c.epoch
	c.epoch++
	n := len(c.deps)
	qids := make([]uint32, len(c.groups))
	for gi, g := range c.groups {
		qids[gi] = g.query
	}

	senses := make([]map[model.NodeID]model.Reading, n)
	errs := make([]error, n)
	batched := make([]bool, n)
	groupAcqs := make([][]RemoteAcquisition, len(c.groups))
	groupErrs := make([][]error, len(c.groups))
	for gi := range c.groups {
		groupAcqs[gi] = make([]RemoteAcquisition, n)
		groupErrs[gi] = make([]error, n)
	}

	// Round phase: one trip for batched shards, sense-only for the rest.
	c.fanOut(func(i int) {
		if rs, ok := c.deps[i].shard.(RemoteRoundShard); ok && rs.SupportsEpochRound() {
			batched[i] = true
			readings, results, err := rs.EpochRound(e, qids)
			if err != nil {
				errs[i] = err
				return
			}
			if len(results) != len(qids) {
				errs[i] = fmt.Errorf("epoch round returned %d groups, want %d", len(results), len(qids))
				return
			}
			senses[i] = readings
			for gi := range results {
				groupAcqs[gi][i] = results[gi].Acq
				groupErrs[gi][i] = results[gi].Err
			}
			return
		}
		senses[i], errs[i] = c.deps[i].shard.Sense(e)
	})
	if err := c.firstErr(errs); err != nil {
		for _, q := range c.queries {
			q.pending = append(q.pending, Outcome{Epoch: e, Err: err})
		}
		return
	}

	// Legacy acquisition phase: each non-batched shard walks its groups in
	// group order on its own connection; shards overlap, one barrier total.
	if len(c.groups) > 0 {
		c.fanOut(func(i int) {
			if batched[i] {
				return
			}
			for gi, qid := range qids {
				groupAcqs[gi][i], groupErrs[gi][i] = c.deps[i].shard.Acquire(qid, e)
			}
		})
	}

	for gi, g := range c.groups {
		acqs := groupAcqs[gi]
		err := c.firstErr(groupErrs[gi])
		// Union the readings the group actually ran on: the shared sensing,
		// or the shards' derived readings when the query overrides them.
		per := senses
		if err == nil {
			for i := range acqs {
				if acqs[i].Readings != nil {
					per = make([]map[model.NodeID]model.Reading, n)
					for j := range acqs {
						per[j] = acqs[j].Readings
					}
					break
				}
			}
		}
		readings := MergeReadings(per)
		perShard := make([][]model.Answer, n)
		for i := range acqs {
			perShard[i] = acqs[i].Answers
		}
		for _, q := range g.members {
			out := Outcome{Epoch: e, Readings: readings}
			switch {
			case err != nil:
				out.Err = err
			case q.merge == nil:
				if n != 1 {
					out.Err = fmt.Errorf("engine: %d shards need a merge function", n)
				} else {
					out.Answers = perShard[0]
				}
			default:
				out.Answers, out.Err = q.merge(perShard)
			}
			if q.cutK > 0 && out.Err == nil && len(out.Answers) > q.cutK {
				out.Answers = append([]model.Answer(nil), out.Answers[:q.cutK]...)
			}
			q.pending = append(q.pending, out)
		}
	}
}

// Shards returns the number of shard deployments.
func (c *RemoteCoordinator) Shards() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.deps)
}

// Deployments returns the shard deployments, in shard order.
func (c *RemoteCoordinator) Deployments() []*RemoteDeployment {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*RemoteDeployment(nil), c.deps...)
}

// Install replaces the coordinator's shard deployments — the final step of
// a live re-sharding migration. Taking the epoch lock IS the drain: no
// epoch round, historic round or shard sweep can be in flight while the
// swap happens, and the next Step fans out to the new shards. The epoch
// clock and every scheduled group carry over untouched — the caller
// re-attaches each group's rqid on the new shards before installing, so
// coordinator-side group state needs no translation.
func (c *RemoteCoordinator) Install(deps []*RemoteDeployment) error {
	if len(deps) == 0 {
		return fmt.Errorf("engine: remote coordinator needs at least one deployment")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.deps = deps
	return nil
}

// GroupQueries returns the scheduled acquisition groups' attached rqids in
// group order — what a migration must re-attach on the target shards
// before Install.
func (c *RemoteCoordinator) GroupQueries() []uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]uint32, len(c.groups))
	for i, g := range c.groups {
		out[i] = g.query
	}
	return out
}

// EpochNow returns the next epoch the lock-step tier will run — migration
// bookkeeping reads it before and after to count the epochs that elapsed
// while the move was in flight.
func (c *RemoteCoordinator) EpochNow() model.Epoch {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Epoch runs one full federated epoch of a query: sense every shard,
// acquire every shard, union the readings, merge the answers. A shard
// loss (socket exhausted its retries, shard process gone) surfaces as
// Outcome.Err tagged with the shard's name — the same cursor-outcome
// pathway an in-process shard failure takes — and never wedges: the
// remaining shards' calls still complete before the outcome returns.
func (c *RemoteCoordinator) Epoch(query uint32, e model.Epoch, merge MergeFunc) Outcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.deps)

	senses := make([]map[model.NodeID]model.Reading, n)
	errs := make([]error, n)
	c.fanOut(func(i int) {
		senses[i], errs[i] = c.deps[i].shard.Sense(e)
	})
	if err := c.firstErr(errs); err != nil {
		return Outcome{Epoch: e, Err: err}
	}

	acqs := make([]RemoteAcquisition, n)
	c.fanOut(func(i int) {
		acqs[i], errs[i] = c.deps[i].shard.Acquire(query, e)
	})
	// Union the readings the query actually ran on: the shared sensing,
	// or the shards' derived readings when the query overrides them.
	per := senses
	override := false
	for i := range acqs {
		if acqs[i].Readings != nil {
			override = true
			break
		}
	}
	if override {
		per = make([]map[model.NodeID]model.Reading, n)
		for i := range acqs {
			per[i] = acqs[i].Readings
		}
	}
	out := Outcome{Epoch: e, Readings: MergeReadings(per)}
	if err := c.firstErr(errs); err != nil {
		out.Err = err
		return out
	}
	perShard := make([][]model.Answer, n)
	for i := range acqs {
		perShard[i] = acqs[i].Answers
	}
	if merge == nil {
		if n != 1 {
			out.Err = fmt.Errorf("engine: %d shards need a merge function", n)
			return out
		}
		out.Answers = perShard[0]
		return out
	}
	out.Answers, out.Err = merge(perShard)
	return out
}

// RunShards invokes fn once per shard deployment concurrently (each shard
// is its own process; socket round trips overlap) and returns the first
// error in shard order, tagged with the shard's name — the remote
// analogue of Coordinator.RunShards, serialized against epoch rounds so
// one-shot historic executions cannot interleave a cursor's sense/acquire
// pair on the shard state machines.
func (c *RemoteCoordinator) RunShards(fn func(i int, d *RemoteDeployment) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	errs := make([]error, len(c.deps))
	c.fanOut(func(i int) {
		errs[i] = fn(i, c.deps[i])
	})
	return c.firstErr(errs)
}

// Serialized runs fn while holding the coordinator's epoch lock: one-shot
// multi-call protocols (the federated historic threshold round, which
// fans its own per-shard calls out) run atomically with respect to epoch
// rounds on the shard state machines.
func (c *RemoteCoordinator) Serialized(fn func() error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fn()
}

// fanOut runs fn(i) for every shard index concurrently and joins.
func (c *RemoteCoordinator) fanOut(fn func(i int)) {
	if len(c.deps) == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	for i := range c.deps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// firstErr returns the first shard error in shard order, tagged.
func (c *RemoteCoordinator) firstErr(errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("engine: shard %s: %w", c.deps[i].name, err)
		}
	}
	return nil
}
