package engine

// The remote substrate: a federated deployment whose shards are other
// processes behind sockets. The engine keeps the same coordinator-tier
// shape as the in-process federation (sense every shard, acquire every
// shard, union readings, merge answers) but speaks to each shard through
// the RemoteShard interface — internal/wire's Client implements it over
// the framed TCP protocol. Per-node operations never cross the wire: a
// shard's operator, routing tree and energy ledger live in the shard
// process; only shard-level results (readings, ranked answers, partial
// sums, counters) do, which is exactly the backhaul the fed layer's
// Stats account.

import (
	"fmt"
	"sync"

	"kspot/internal/model"
)

// RemoteAcquisition is one shard's epoch result for one query. Readings
// is nil for queries running on the epoch's shared sensing; for queries
// with derived per-node inputs (GROUP BY ... WITH HISTORY) it carries the
// derived readings the shard ran on, so the coordinator's oracle sees the
// same inputs the in-process coordinator would.
type RemoteAcquisition struct {
	Answers  []model.Answer
	Readings map[model.NodeID]model.Reading
}

// RemoteShard is the coordinator's surface onto one remote shard process:
// the shard-level half of the Transport contract (sensing and epoch
// acquisition), with per-node operations confined to the far side.
type RemoteShard interface {
	// Sense idle-charges and senses the shard once for the epoch,
	// returning the post-commit readings.
	Sense(e model.Epoch) (map[model.NodeID]model.Reading, error)
	// Acquire runs one epoch of the attached query on the shard.
	Acquire(query uint32, e model.Epoch) (RemoteAcquisition, error)
}

// RemoteDeployment pairs a remote shard with its display name — the
// remote analogue of Deployment.
type RemoteDeployment struct {
	name  string
	shard RemoteShard
}

// NewRemoteDeployment binds a remote shard under a display name.
func NewRemoteDeployment(name string, shard RemoteShard) *RemoteDeployment {
	return &RemoteDeployment{name: name, shard: shard}
}

// Name returns the deployment's display name.
func (d *RemoteDeployment) Name() string { return d.name }

// Shard returns the remote shard handle.
func (d *RemoteDeployment) Shard() RemoteShard { return d.shard }

// RemoteCoordinator drives remote shard deployments through lock-step
// epochs, mirroring Coordinator's sense-then-acquire order. Unlike the
// in-process coordinator it serializes epochs across cursors: every
// cursor's sense/acquire pair must reach each shard's single state
// machine unbroken, or one query's acquisition would consume another's
// sensing. Shard fan-out within an epoch is concurrent — each shard is
// its own process.
type RemoteCoordinator struct {
	mu   sync.Mutex
	deps []*RemoteDeployment
}

// NewRemoteCoordinator builds a coordinator over remote shards.
func NewRemoteCoordinator(deps ...*RemoteDeployment) *RemoteCoordinator {
	if len(deps) == 0 {
		panic("engine: remote coordinator needs at least one deployment")
	}
	return &RemoteCoordinator{deps: deps}
}

// Shards returns the number of shard deployments.
func (c *RemoteCoordinator) Shards() int { return len(c.deps) }

// Deployments returns the shard deployments, in shard order.
func (c *RemoteCoordinator) Deployments() []*RemoteDeployment { return c.deps }

// Epoch runs one full federated epoch of a query: sense every shard,
// acquire every shard, union the readings, merge the answers. A shard
// loss (socket exhausted its retries, shard process gone) surfaces as
// Outcome.Err tagged with the shard's name — the same cursor-outcome
// pathway an in-process shard failure takes — and never wedges: the
// remaining shards' calls still complete before the outcome returns.
func (c *RemoteCoordinator) Epoch(query uint32, e model.Epoch, merge MergeFunc) Outcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.deps)

	senses := make([]map[model.NodeID]model.Reading, n)
	errs := make([]error, n)
	c.fanOut(func(i int) {
		senses[i], errs[i] = c.deps[i].shard.Sense(e)
	})
	if err := c.firstErr(errs); err != nil {
		return Outcome{Epoch: e, Err: err}
	}

	acqs := make([]RemoteAcquisition, n)
	c.fanOut(func(i int) {
		acqs[i], errs[i] = c.deps[i].shard.Acquire(query, e)
	})
	// Union the readings the query actually ran on: the shared sensing,
	// or the shards' derived readings when the query overrides them.
	per := senses
	override := false
	for i := range acqs {
		if acqs[i].Readings != nil {
			override = true
			break
		}
	}
	if override {
		per = make([]map[model.NodeID]model.Reading, n)
		for i := range acqs {
			per[i] = acqs[i].Readings
		}
	}
	out := Outcome{Epoch: e, Readings: MergeReadings(per)}
	if err := c.firstErr(errs); err != nil {
		out.Err = err
		return out
	}
	perShard := make([][]model.Answer, n)
	for i := range acqs {
		perShard[i] = acqs[i].Answers
	}
	if merge == nil {
		if n != 1 {
			out.Err = fmt.Errorf("engine: %d shards need a merge function", n)
			return out
		}
		out.Answers = perShard[0]
		return out
	}
	out.Answers, out.Err = merge(perShard)
	return out
}

// RunShards invokes fn once per shard deployment concurrently (each shard
// is its own process; socket round trips overlap) and returns the first
// error in shard order, tagged with the shard's name — the remote
// analogue of Coordinator.RunShards, serialized against epoch rounds so
// one-shot historic executions cannot interleave a cursor's sense/acquire
// pair on the shard state machines.
func (c *RemoteCoordinator) RunShards(fn func(i int, d *RemoteDeployment) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	errs := make([]error, len(c.deps))
	c.fanOut(func(i int) {
		errs[i] = fn(i, c.deps[i])
	})
	return c.firstErr(errs)
}

// Serialized runs fn while holding the coordinator's epoch lock: one-shot
// multi-call protocols (the federated historic threshold round, which
// fans its own per-shard calls out) run atomically with respect to epoch
// rounds on the shard state machines.
func (c *RemoteCoordinator) Serialized(fn func() error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fn()
}

// fanOut runs fn(i) for every shard index concurrently and joins.
func (c *RemoteCoordinator) fanOut(fn func(i int)) {
	if len(c.deps) == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	for i := range c.deps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// firstErr returns the first shard error in shard order, tagged.
func (c *RemoteCoordinator) firstErr(errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("engine: shard %s: %w", c.deps[i].name, err)
		}
	}
	return nil
}
