// Package engine is the transport-agnostic substrate layer between the
// top-k operators and the network they run on. The KSpot protocol is
// defined once — γ-descriptor pruning, bound tightening, recovery rounds
// all live in the operator packages under internal/topk — and the engine
// decides *where* it executes:
//
//   - the deterministic substrate is internal/sim's discrete-time
//     simulator, which satisfies Transport natively and is where the
//     benchmarks and the reproduction experiments run;
//   - the concurrent substrate (Live, in this package) runs one goroutine
//     per sensor node and passes views over channels, borrowing the same
//     link-layer and energy accounting, and is what cmd/kspotd and the
//     examples deploy.
//
// Because both substrates implement the identical Transport contract, an
// operator attached to one returns the same answers and the same message
// counts on the other (engine's equivalence test pins this, under -race).
//
// The package also provides the multi-query Scheduler: one deployment
// serving several posted cursors in epoch lock-step, sensing each epoch
// once and running every operator's acquisition concurrently.
package engine

import (
	"kspot/internal/model"
	"kspot/internal/radio"
	"kspot/internal/sim"
	"kspot/internal/topo"
	"kspot/internal/trace"
)

// PruneFunc is the per-node hook of an acquisition sweep: it receives the
// transmitting node and its full local view V_i and returns the view to
// transmit V'_i (the input unchanged, a subset, or nil for "send nothing").
// A PruneFunc may be invoked from per-node goroutines on the concurrent
// substrate, so it must not mutate operator state.
//
// Ownership: both the received view and the returned one belong to the
// transport. A PruneFunc must not retain either beyond the call; when it
// returns a new view (rather than v or nil) it should build it with
// model.AcquireView — the transport recycles it once transmitted.
type PruneFunc = func(node model.NodeID, v *model.View) *model.View

// Transport is the communication contract the operators program against:
// the primitives they previously used directly on *sim.Network (one-hop
// sends, the beacon flood, multihop relays, the epoch sweep) plus the
// per-message accounting every transmission feeds.
//
// *sim.Network satisfies Transport natively (the deterministic substrate);
// *Live implements it over goroutines and channels (the concurrent one).
type Transport interface {
	// Topology returns the node placement (positions, groups, names).
	Topology() *topo.Placement
	// Routing returns the sink-rooted routing tree every message follows.
	Routing() *topo.Tree
	// Alive reports whether a node still has energy.
	Alive(id model.NodeID) bool

	// SendUp transmits a payload one hop from a node to its tree parent.
	SendUp(from model.NodeID, kind radio.MsgKind, e model.Epoch, payload []byte) bool
	// SendDown transmits a payload one hop from a parent to a child.
	SendDown(from, to model.NodeID, kind radio.MsgKind, e model.Epoch, payload []byte) bool
	// BroadcastDown floods a per-child payload from the sink through the
	// tree (beacons, query installation), returning the nodes reached.
	// payloadFor may be called concurrently on the live substrate.
	BroadcastDown(kind radio.MsgKind, e model.Epoch, payloadFor func(child model.NodeID) []byte) map[model.NodeID]bool
	// RouteToSink relays a payload hop by hop to the sink without merging
	// (the flat pattern of TPUT and the centralized baseline).
	RouteToSink(from model.NodeID, kind radio.MsgKind, e model.Epoch, payload []byte) bool
	// RouteFromSink relays a payload hop by hop from the sink to one node
	// (FILA-style filter updates and probes).
	RouteFromSink(to model.NodeID, kind radio.MsgKind, e model.Epoch, payload []byte) bool
	// Sweep runs one TAG-style leaf-to-root acquisition: every node merges
	// its own reading with its children's views, applies prune, and ships
	// the result one hop up; empty views suppress the packet entirely. The
	// sink's merged view is returned; it is owned by the transport and
	// valid only until the next Sweep on this transport — callers must
	// extract what they keep (answers, merged partials) before sweeping
	// again.
	Sweep(e model.Epoch, kind radio.MsgKind, readings map[model.NodeID]model.Reading, prune PruneFunc) *model.View

	// ChargeSense charges one sensing operation to a node.
	ChargeSense(id model.NodeID)
	// ChargeIdleEpoch charges every live sensor the per-epoch idle baseline.
	ChargeIdleEpoch()
	// Snap captures the traffic/energy totals; Delta diffs against an
	// earlier snapshot; Reset clears accounting (budgets are preserved).
	Snap() sim.Snapshot
	Delta(s sim.Snapshot) sim.Snapshot
	Reset()
}

// ReadingsRecorder is implemented by substrates that buffer each node's
// sensed history (the live deployment's per-node windows). SenseEpoch
// feeds it the raw sensed values, exactly once per epoch — derived
// readings (sampleReadings) are never buffered. Transport decorators (the
// fault-injection layer) forward it so a wrapped live deployment keeps
// buffering.
type ReadingsRecorder interface {
	RecordReadings(e model.Epoch, readings map[model.NodeID]model.Reading)
}

// Unwrapper is implemented by Transport decorators (the fault-injection
// layer); Unwrap returns the wrapped transport. Baseof follows the chain.
type Unwrapper interface {
	Unwrap() Transport
}

// Recorded decorates a transport with an extra ReadingsRecorder — how a
// shard's durable tier (storage.Store) taps the sense commit without the
// substrate knowing it exists. The inner transport's own recorder (a live
// deployment's windows) still runs first.
type Recorded struct {
	Transport
	Rec ReadingsRecorder
}

// RecordReadings implements ReadingsRecorder by fan-out: inner first.
func (r Recorded) RecordReadings(e model.Epoch, readings map[model.NodeID]model.Reading) {
	if inner, ok := r.Transport.(ReadingsRecorder); ok {
		inner.RecordReadings(e, readings)
	}
	r.Rec.RecordReadings(e, readings)
}

// Unwrap implements Unwrapper.
func (r Recorded) Unwrap() Transport { return r.Transport }

// Baseof strips decorators off a transport, returning the innermost
// substrate.
func Baseof(t Transport) Transport {
	for {
		u, ok := t.(Unwrapper)
		if !ok {
			return t
		}
		t = u.Unwrap()
	}
}

// SenseEpoch samples every live sensor once and charges the sensing cost,
// returning the epoch's readings keyed by node. The returned map is shared
// read-only state: operators and per-node workers must not mutate it.
func SenseEpoch(t Transport, src trace.Source, e model.Epoch) map[model.NodeID]model.Reading {
	readings := sampleReadings(t, src, e)
	for id := range readings {
		t.ChargeSense(id)
	}
	if r, ok := t.(ReadingsRecorder); ok {
		r.RecordReadings(e, readings)
	}
	return readings
}

// PresampleEpoch samples an epoch's readings without charging anything:
// the pure half of SenseEpoch. It only reads transport state (topology,
// aliveness) and the trace source (a pure function of node and epoch), so
// the scheduler may run it on a background goroutine while the previous
// epoch's merge stage is still in flight — as long as nothing mutates the
// transport out-of-band in that window. Pair with CommitSenseEpoch.
func PresampleEpoch(t Transport, src trace.Source, e model.Epoch) map[model.NodeID]model.Reading {
	return sampleReadings(t, src, e)
}

// CommitSenseEpoch applies the deferred accounting of a presampled epoch:
// the per-epoch idle baseline, then the per-node sensing charge and the
// history recording. Nodes whose idle charge exhausted their budget are
// dropped from readings first — the synchronous order idle-charges before
// sampling, so such nodes never appear there; death is monotone between
// epochs (churn revivals fire on the epoch's first transmission, after
// sensing), which makes PresampleEpoch + CommitSenseEpoch byte-identical
// to SenseEpoch with a preceding ChargeIdleEpoch.
func CommitSenseEpoch(t Transport, e model.Epoch, readings map[model.NodeID]model.Reading) {
	t.ChargeIdleEpoch()
	for id := range readings {
		if !t.Alive(id) {
			delete(readings, id)
		}
	}
	for id := range readings {
		t.ChargeSense(id)
	}
	if r, ok := t.(ReadingsRecorder); ok {
		r.RecordReadings(e, readings)
	}
}

// DeriveReadings rebuilds an epoch's per-node readings from a query-local
// source over an already-sensed node set, without charging sensing. The
// sensed map pins WHICH nodes participate: aliveness was decided once, at
// the epoch's sensing point, so every acquisition of the epoch — however
// many share it, in whatever order they run — derives from the same node
// set. Sampling the transport again at acquire time would instead observe
// churn flips fired by an earlier acquisition's transmissions, making a
// query's traffic depend on which other queries share its epoch.
func DeriveReadings(sensed map[model.NodeID]model.Reading, src trace.Source, e model.Epoch) map[model.NodeID]model.Reading {
	out := make(map[model.NodeID]model.Reading, len(sensed))
	for id, r := range sensed {
		out[id] = model.Reading{
			Node:  id,
			Group: r.Group,
			Epoch: e,
			Value: model.Quantize(src.Sample(id, e)),
		}
	}
	return out
}

// sampleReadings builds an epoch's readings without charging sensing —
// used by the Scheduler for queries that derive their per-node values from
// an already-sensed attribute (e.g. node-local window aggregation), so the
// shared acquisition is charged exactly once per epoch.
func sampleReadings(t Transport, src trace.Source, e model.Epoch) map[model.NodeID]model.Reading {
	readings := make(map[model.NodeID]model.Reading)
	p := t.Topology()
	for _, id := range p.SensorNodes() {
		if !t.Alive(id) {
			continue
		}
		readings[id] = model.Reading{
			Node:  id,
			Group: p.Groups[id],
			Epoch: e,
			Value: model.Quantize(src.Sample(id, e)),
		}
	}
	return readings
}
