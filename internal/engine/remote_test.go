package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"kspot/internal/model"
)

// stubShard is a scripted RemoteShard for coordinator-path tests.
type stubShard struct {
	mu       sync.Mutex
	readings map[model.NodeID]model.Reading
	answers  []model.Answer
	override map[model.NodeID]model.Reading
	senseErr error
	acqErr   error
	senses   int
	acquires int
}

func (s *stubShard) Sense(e model.Epoch) (map[model.NodeID]model.Reading, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.senses++
	if s.senseErr != nil {
		return nil, s.senseErr
	}
	return s.readings, nil
}

func (s *stubShard) Acquire(query uint32, e model.Epoch) (RemoteAcquisition, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.acquires++
	if s.acqErr != nil {
		return RemoteAcquisition{}, s.acqErr
	}
	return RemoteAcquisition{Answers: s.answers, Readings: s.override}, nil
}

func readingsOf(ids ...model.NodeID) map[model.NodeID]model.Reading {
	out := make(map[model.NodeID]model.Reading, len(ids))
	for _, id := range ids {
		out[id] = model.Reading{Node: id, Value: model.Value(id) * 10}
	}
	return out
}

func TestRemoteCoordinatorEpochUnionAndMerge(t *testing.T) {
	a := &stubShard{readings: readingsOf(1, 2), answers: []model.Answer{{Group: 1, Score: 10}}}
	b := &stubShard{readings: readingsOf(3), answers: []model.Answer{{Group: 2, Score: 20}}}
	coord := NewRemoteCoordinator(
		NewRemoteDeployment("shard-0", a),
		NewRemoteDeployment("shard-1", b),
	)
	if coord.Shards() != 2 {
		t.Fatalf("Shards() = %d", coord.Shards())
	}
	merged := false
	out := coord.Epoch(1, 4, func(perShard [][]model.Answer) ([]model.Answer, error) {
		merged = true
		if len(perShard) != 2 {
			t.Fatalf("merge saw %d shards", len(perShard))
		}
		return append(perShard[0], perShard[1]...), nil
	})
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if !merged || len(out.Answers) != 2 {
		t.Fatalf("merge not applied: %+v", out)
	}
	if len(out.Readings) != 3 {
		t.Fatalf("union has %d readings, want 3", len(out.Readings))
	}
	if a.senses != 1 || b.senses != 1 || a.acquires != 1 || b.acquires != 1 {
		t.Fatalf("call counts: %d/%d senses, %d/%d acquires", a.senses, b.senses, a.acquires, b.acquires)
	}
}

func TestRemoteCoordinatorOverrideReadings(t *testing.T) {
	// When shards return derived readings (GROUP BY ... WITH HISTORY), the
	// outcome's union must be built from those, not the shared sensing.
	a := &stubShard{readings: readingsOf(1), override: readingsOf(7)}
	b := &stubShard{readings: readingsOf(2), override: readingsOf(8)}
	coord := NewRemoteCoordinator(
		NewRemoteDeployment("shard-0", a),
		NewRemoteDeployment("shard-1", b),
	)
	out := coord.Epoch(1, 0, func(per [][]model.Answer) ([]model.Answer, error) { return nil, nil })
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	for _, want := range []model.NodeID{7, 8} {
		if _, ok := out.Readings[want]; !ok {
			t.Fatalf("override union missing node %d: %v", want, out.Readings)
		}
	}
	for _, raw := range []model.NodeID{1, 2} {
		if _, ok := out.Readings[raw]; ok {
			t.Fatalf("raw sensing leaked into override union: %v", out.Readings)
		}
	}
}

func TestRemoteCoordinatorShardErrorTagged(t *testing.T) {
	a := &stubShard{readings: readingsOf(1)}
	bad := &stubShard{readings: readingsOf(2), acqErr: fmt.Errorf("connection refused")}
	coord := NewRemoteCoordinator(
		NewRemoteDeployment("shard-0", a),
		NewRemoteDeployment("shard-1", bad),
	)
	out := coord.Epoch(1, 0, func(per [][]model.Answer) ([]model.Answer, error) { return nil, nil })
	if out.Err == nil {
		t.Fatal("shard error swallowed")
	}
	if !strings.Contains(out.Err.Error(), "shard-1") {
		t.Fatalf("error not tagged with shard name: %v", out.Err)
	}
	// The healthy shard still completed its calls — no wedging.
	if a.acquires != 1 {
		t.Fatalf("healthy shard acquired %d times", a.acquires)
	}

	// A sense failure aborts before any acquisition.
	a2 := &stubShard{readings: readingsOf(1)}
	bad2 := &stubShard{senseErr: fmt.Errorf("shard gone")}
	coord2 := NewRemoteCoordinator(
		NewRemoteDeployment("shard-0", a2),
		NewRemoteDeployment("shard-1", bad2),
	)
	out2 := coord2.Epoch(1, 0, nil)
	if out2.Err == nil || !strings.Contains(out2.Err.Error(), "shard-1") {
		t.Fatalf("sense error: %v", out2.Err)
	}
	if a2.acquires != 0 || bad2.acquires != 0 {
		t.Fatal("acquisition ran after a failed sense")
	}
}

func TestRemoteCoordinatorMergeRequired(t *testing.T) {
	coord := NewRemoteCoordinator(
		NewRemoteDeployment("shard-0", &stubShard{readings: readingsOf(1)}),
		NewRemoteDeployment("shard-1", &stubShard{readings: readingsOf(2)}),
	)
	if out := coord.Epoch(1, 0, nil); out.Err == nil {
		t.Fatal("multi-shard epoch without a merge function succeeded")
	}
	// A single shard needs no merge: answers pass through.
	solo := NewRemoteCoordinator(NewRemoteDeployment("flat", &stubShard{
		readings: readingsOf(1),
		answers:  []model.Answer{{Group: 1, Score: 5}},
	}))
	out := solo.Epoch(1, 0, nil)
	if out.Err != nil || len(out.Answers) != 1 {
		t.Fatalf("flat pass-through: %+v", out)
	}
}

func TestRemoteCoordinatorRunShards(t *testing.T) {
	coord := NewRemoteCoordinator(
		NewRemoteDeployment("shard-0", &stubShard{}),
		NewRemoteDeployment("shard-1", &stubShard{}),
		NewRemoteDeployment("shard-2", &stubShard{}),
	)
	var mu sync.Mutex
	seen := map[string]bool{}
	if err := coord.RunShards(func(i int, d *RemoteDeployment) error {
		mu.Lock()
		seen[d.Name()] = true
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("visited %d shards", len(seen))
	}
	// First error in shard order wins, tagged.
	err := coord.RunShards(func(i int, d *RemoteDeployment) error {
		if i >= 1 {
			return fmt.Errorf("boom %d", i)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "shard-1") {
		t.Fatalf("RunShards error: %v", err)
	}
}

// roundStubShard is a scripted RemoteRoundShard: a stubShard that can also
// serve whole epochs in one call, with per-group scripted results.
type roundStubShard struct {
	stubShard
	supports   bool
	rounds     int
	lastQids   []uint32
	roundErr   error
	groupErrAt map[uint32]error // per-qid isolated failure
	shortReply bool             // return one fewer group than asked
}

func (s *roundStubShard) SupportsEpochRound() bool { return s.supports }

func (s *roundStubShard) EpochRound(e model.Epoch, queries []uint32) (map[model.NodeID]model.Reading, []RemoteGroupResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rounds++
	s.lastQids = append([]uint32(nil), queries...)
	if s.roundErr != nil {
		return nil, nil, s.roundErr
	}
	n := len(queries)
	if s.shortReply && n > 0 {
		n--
	}
	results := make([]RemoteGroupResult, n)
	for i := 0; i < n; i++ {
		if err := s.groupErrAt[queries[i]]; err != nil {
			results[i] = RemoteGroupResult{Err: err}
			continue
		}
		results[i] = RemoteGroupResult{Acq: RemoteAcquisition{Answers: s.answers, Readings: s.override}}
	}
	return s.readings, results, nil
}

func TestRemoteCoordinatorBatchedRound(t *testing.T) {
	// A round-capable shard serves the whole epoch in one call: no Sense,
	// no Acquire, every group's qid in the request, readings in the union.
	a := &roundStubShard{stubShard: stubShard{readings: readingsOf(1, 2), answers: []model.Answer{{Group: 1, Score: 10}}}, supports: true}
	coord := NewRemoteCoordinator(NewRemoteDeployment("shard-0", a))
	q1 := coord.Schedule("g1", 11, nil, 0)
	q2 := coord.Schedule("g2", 22, nil, 0)
	out1, err := coord.Step(q1)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := coord.Step(q2)
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range []Outcome{out1, out2} {
		if out.Err != nil {
			t.Fatal(out.Err)
		}
		if len(out.Answers) != 1 || len(out.Readings) != 2 {
			t.Fatalf("batched outcome: %+v", out)
		}
	}
	if a.rounds != 1 || a.senses != 0 || a.acquires != 0 {
		t.Fatalf("calls: %d rounds, %d senses, %d acquires", a.rounds, a.senses, a.acquires)
	}
	if len(a.lastQids) != 2 || a.lastQids[0] != 11 || a.lastQids[1] != 22 {
		t.Fatalf("round qids: %v", a.lastQids)
	}
}

func TestRemoteCoordinatorBatchedFallsBackWhenUnsupported(t *testing.T) {
	// A RemoteRoundShard whose session did NOT negotiate the capability
	// must be driven through the per-call protocol.
	a := &roundStubShard{stubShard: stubShard{readings: readingsOf(1)}, supports: false}
	coord := NewRemoteCoordinator(NewRemoteDeployment("shard-0", a))
	q := coord.Schedule("", 7, nil, 0)
	if out, err := coord.Step(q); err != nil || out.Err != nil {
		t.Fatalf("step: %v / %v", err, out.Err)
	}
	if a.rounds != 0 || a.senses != 1 || a.acquires != 1 {
		t.Fatalf("calls: %d rounds, %d senses, %d acquires", a.rounds, a.senses, a.acquires)
	}
}

func TestRemoteCoordinatorMixedBatchedLegacy(t *testing.T) {
	// One batched shard, one legacy shard: same epoch, merged together.
	a := &roundStubShard{stubShard: stubShard{readings: readingsOf(1), answers: []model.Answer{{Group: 1, Score: 10}}}, supports: true}
	b := &stubShard{readings: readingsOf(2), answers: []model.Answer{{Group: 2, Score: 20}}}
	coord := NewRemoteCoordinator(
		NewRemoteDeployment("shard-0", a),
		NewRemoteDeployment("shard-1", b),
	)
	merge := func(per [][]model.Answer) ([]model.Answer, error) {
		return append(append([]model.Answer(nil), per[0]...), per[1]...), nil
	}
	q := coord.Schedule("", 9, merge, 0)
	out, err := coord.Step(q)
	if err != nil || out.Err != nil {
		t.Fatalf("step: %v / %v", err, out.Err)
	}
	if len(out.Answers) != 2 || len(out.Readings) != 2 {
		t.Fatalf("mixed outcome: %+v", out)
	}
	if a.rounds != 1 || a.senses != 0 || a.acquires != 0 {
		t.Fatalf("batched shard calls: %d/%d/%d", a.rounds, a.senses, a.acquires)
	}
	if b.senses != 1 || b.acquires != 1 {
		t.Fatalf("legacy shard calls: %d senses, %d acquires", b.senses, b.acquires)
	}
}

func TestRemoteCoordinatorBatchedGroupCountMismatch(t *testing.T) {
	// A reply with the wrong group count is a transport-level failure: the
	// whole epoch is poisoned, tagged with the shard's name.
	a := &roundStubShard{stubShard: stubShard{readings: readingsOf(1)}, supports: true, shortReply: true}
	coord := NewRemoteCoordinator(NewRemoteDeployment("shard-0", a))
	q := coord.Schedule("", 5, nil, 0)
	out, err := coord.Step(q)
	if err != nil {
		t.Fatal(err)
	}
	if out.Err == nil || !strings.Contains(out.Err.Error(), "shard-0") || !strings.Contains(out.Err.Error(), "0 groups, want 1") {
		t.Fatalf("mismatch error: %v", out.Err)
	}
}

func TestRemoteCoordinatorBatchedGroupErrorIsolated(t *testing.T) {
	// One group's failure inside a round poisons only that group's members;
	// the other group still gets its answers from the same round trip.
	a := &roundStubShard{stubShard: stubShard{readings: readingsOf(1), answers: []model.Answer{{Group: 1, Score: 10}}}, supports: true,
		groupErrAt: map[uint32]error{33: fmt.Errorf("query gone")}}
	coord := NewRemoteCoordinator(NewRemoteDeployment("shard-0", a))
	ok := coord.Schedule("ok", 11, nil, 0)
	bad := coord.Schedule("bad", 33, nil, 0)
	outOK, err := coord.Step(ok)
	if err != nil {
		t.Fatal(err)
	}
	outBad, err := coord.Step(bad)
	if err != nil {
		t.Fatal(err)
	}
	if outOK.Err != nil || len(outOK.Answers) != 1 {
		t.Fatalf("healthy group: %+v", outOK)
	}
	if outBad.Err == nil || !strings.Contains(outBad.Err.Error(), "query gone") || !strings.Contains(outBad.Err.Error(), "shard-0") {
		t.Fatalf("failed group: %v", outBad.Err)
	}
	if a.rounds != 1 {
		t.Fatalf("rounds: %d", a.rounds)
	}
}

func TestRemoteCoordinatorLegacyOverlapKeepsGroupOrder(t *testing.T) {
	// The legacy fallback overlaps shards but must walk each shard's groups
	// in group order — the per-call protocol's exact execution order on the
	// shard state machine.
	a := &orderShard{stubShard: stubShard{readings: readingsOf(1)}}
	b := &orderShard{stubShard: stubShard{readings: readingsOf(2)}}
	coord := NewRemoteCoordinator(
		NewRemoteDeployment("shard-0", a),
		NewRemoteDeployment("shard-1", b),
	)
	merge := func(per [][]model.Answer) ([]model.Answer, error) { return nil, nil }
	q1 := coord.Schedule("g1", 101, merge, 0)
	coord.Schedule("g2", 102, merge, 0)
	coord.Schedule("g3", 103, merge, 0)
	if _, err := coord.Step(q1); err != nil {
		t.Fatal(err)
	}
	want := []uint32{101, 102, 103}
	for _, s := range []*orderShard{a, b} {
		if len(s.order) != len(want) {
			t.Fatalf("acquire order: %v", s.order)
		}
		for i, qid := range want {
			if s.order[i] != qid {
				t.Fatalf("acquire order: %v, want %v", s.order, want)
			}
		}
	}
}

// orderShard records the order its acquisitions arrive in.
type orderShard struct {
	stubShard
	order []uint32
}

func (s *orderShard) Acquire(query uint32, e model.Epoch) (RemoteAcquisition, error) {
	s.mu.Lock()
	s.order = append(s.order, query)
	s.mu.Unlock()
	return s.stubShard.Acquire(query, e)
}
