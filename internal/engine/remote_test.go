package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"kspot/internal/model"
)

// stubShard is a scripted RemoteShard for coordinator-path tests.
type stubShard struct {
	mu       sync.Mutex
	readings map[model.NodeID]model.Reading
	answers  []model.Answer
	override map[model.NodeID]model.Reading
	senseErr error
	acqErr   error
	senses   int
	acquires int
}

func (s *stubShard) Sense(e model.Epoch) (map[model.NodeID]model.Reading, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.senses++
	if s.senseErr != nil {
		return nil, s.senseErr
	}
	return s.readings, nil
}

func (s *stubShard) Acquire(query uint32, e model.Epoch) (RemoteAcquisition, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.acquires++
	if s.acqErr != nil {
		return RemoteAcquisition{}, s.acqErr
	}
	return RemoteAcquisition{Answers: s.answers, Readings: s.override}, nil
}

func readingsOf(ids ...model.NodeID) map[model.NodeID]model.Reading {
	out := make(map[model.NodeID]model.Reading, len(ids))
	for _, id := range ids {
		out[id] = model.Reading{Node: id, Value: model.Value(id) * 10}
	}
	return out
}

func TestRemoteCoordinatorEpochUnionAndMerge(t *testing.T) {
	a := &stubShard{readings: readingsOf(1, 2), answers: []model.Answer{{Group: 1, Score: 10}}}
	b := &stubShard{readings: readingsOf(3), answers: []model.Answer{{Group: 2, Score: 20}}}
	coord := NewRemoteCoordinator(
		NewRemoteDeployment("shard-0", a),
		NewRemoteDeployment("shard-1", b),
	)
	if coord.Shards() != 2 {
		t.Fatalf("Shards() = %d", coord.Shards())
	}
	merged := false
	out := coord.Epoch(1, 4, func(perShard [][]model.Answer) ([]model.Answer, error) {
		merged = true
		if len(perShard) != 2 {
			t.Fatalf("merge saw %d shards", len(perShard))
		}
		return append(perShard[0], perShard[1]...), nil
	})
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if !merged || len(out.Answers) != 2 {
		t.Fatalf("merge not applied: %+v", out)
	}
	if len(out.Readings) != 3 {
		t.Fatalf("union has %d readings, want 3", len(out.Readings))
	}
	if a.senses != 1 || b.senses != 1 || a.acquires != 1 || b.acquires != 1 {
		t.Fatalf("call counts: %d/%d senses, %d/%d acquires", a.senses, b.senses, a.acquires, b.acquires)
	}
}

func TestRemoteCoordinatorOverrideReadings(t *testing.T) {
	// When shards return derived readings (GROUP BY ... WITH HISTORY), the
	// outcome's union must be built from those, not the shared sensing.
	a := &stubShard{readings: readingsOf(1), override: readingsOf(7)}
	b := &stubShard{readings: readingsOf(2), override: readingsOf(8)}
	coord := NewRemoteCoordinator(
		NewRemoteDeployment("shard-0", a),
		NewRemoteDeployment("shard-1", b),
	)
	out := coord.Epoch(1, 0, func(per [][]model.Answer) ([]model.Answer, error) { return nil, nil })
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	for _, want := range []model.NodeID{7, 8} {
		if _, ok := out.Readings[want]; !ok {
			t.Fatalf("override union missing node %d: %v", want, out.Readings)
		}
	}
	for _, raw := range []model.NodeID{1, 2} {
		if _, ok := out.Readings[raw]; ok {
			t.Fatalf("raw sensing leaked into override union: %v", out.Readings)
		}
	}
}

func TestRemoteCoordinatorShardErrorTagged(t *testing.T) {
	a := &stubShard{readings: readingsOf(1)}
	bad := &stubShard{readings: readingsOf(2), acqErr: fmt.Errorf("connection refused")}
	coord := NewRemoteCoordinator(
		NewRemoteDeployment("shard-0", a),
		NewRemoteDeployment("shard-1", bad),
	)
	out := coord.Epoch(1, 0, func(per [][]model.Answer) ([]model.Answer, error) { return nil, nil })
	if out.Err == nil {
		t.Fatal("shard error swallowed")
	}
	if !strings.Contains(out.Err.Error(), "shard-1") {
		t.Fatalf("error not tagged with shard name: %v", out.Err)
	}
	// The healthy shard still completed its calls — no wedging.
	if a.acquires != 1 {
		t.Fatalf("healthy shard acquired %d times", a.acquires)
	}

	// A sense failure aborts before any acquisition.
	a2 := &stubShard{readings: readingsOf(1)}
	bad2 := &stubShard{senseErr: fmt.Errorf("shard gone")}
	coord2 := NewRemoteCoordinator(
		NewRemoteDeployment("shard-0", a2),
		NewRemoteDeployment("shard-1", bad2),
	)
	out2 := coord2.Epoch(1, 0, nil)
	if out2.Err == nil || !strings.Contains(out2.Err.Error(), "shard-1") {
		t.Fatalf("sense error: %v", out2.Err)
	}
	if a2.acquires != 0 || bad2.acquires != 0 {
		t.Fatal("acquisition ran after a failed sense")
	}
}

func TestRemoteCoordinatorMergeRequired(t *testing.T) {
	coord := NewRemoteCoordinator(
		NewRemoteDeployment("shard-0", &stubShard{readings: readingsOf(1)}),
		NewRemoteDeployment("shard-1", &stubShard{readings: readingsOf(2)}),
	)
	if out := coord.Epoch(1, 0, nil); out.Err == nil {
		t.Fatal("multi-shard epoch without a merge function succeeded")
	}
	// A single shard needs no merge: answers pass through.
	solo := NewRemoteCoordinator(NewRemoteDeployment("flat", &stubShard{
		readings: readingsOf(1),
		answers:  []model.Answer{{Group: 1, Score: 5}},
	}))
	out := solo.Epoch(1, 0, nil)
	if out.Err != nil || len(out.Answers) != 1 {
		t.Fatalf("flat pass-through: %+v", out)
	}
}

func TestRemoteCoordinatorRunShards(t *testing.T) {
	coord := NewRemoteCoordinator(
		NewRemoteDeployment("shard-0", &stubShard{}),
		NewRemoteDeployment("shard-1", &stubShard{}),
		NewRemoteDeployment("shard-2", &stubShard{}),
	)
	var mu sync.Mutex
	seen := map[string]bool{}
	if err := coord.RunShards(func(i int, d *RemoteDeployment) error {
		mu.Lock()
		seen[d.Name()] = true
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("visited %d shards", len(seen))
	}
	// First error in shard order wins, tagged.
	err := coord.RunShards(func(i int, d *RemoteDeployment) error {
		if i >= 1 {
			return fmt.Errorf("boom %d", i)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "shard-1") {
		t.Fatalf("RunShards error: %v", err)
	}
}
