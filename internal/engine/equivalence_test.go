package engine_test

import (
	"context"
	"fmt"
	"testing"

	"kspot/internal/config"
	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/topk"
	"kspot/internal/topk/mint"
	"kspot/internal/topk/tag"
)

// runOn drives an operator over a fresh scenario network on the given
// substrate and returns per-epoch answers plus the total traffic snapshot.
func runOn(t *testing.T, scen *config.Scenario, mk func() topk.SnapshotOperator, live bool, epochs int) ([][]model.Answer, interface {
	Msg() int
	Bytes() int
}, []bool) {
	t.Helper()
	net, err := scen.Network()
	if err != nil {
		t.Fatal(err)
	}
	src, err := scen.Source()
	if err != nil {
		t.Fatal(err)
	}
	var tp engine.Transport = net
	if live {
		l := engine.NewLive(net, engine.LiveOptions{Window: 8})
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		l.Start(ctx)
		defer l.Stop()
		tp = l
	}
	q := topk.SnapshotQuery{K: 2, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}
	r := &topk.Runner{Net: tp, Source: src, Op: mk(), Query: q}
	results, err := r.Run(epochs)
	if err != nil {
		t.Fatal(err)
	}
	answers := make([][]model.Answer, 0, epochs)
	correct := make([]bool, 0, epochs)
	for _, res := range results {
		answers = append(answers, res.Answers)
		correct = append(correct, res.Correct)
	}
	snap := tp.Snap()
	return answers, snapStats{snap.Messages, snap.TxBytes}, correct
}

type snapStats struct{ m, b int }

func (s snapStats) Msg() int   { return s.m }
func (s snapStats) Bytes() int { return s.b }

// TestSubstrateEquivalence pins the engine contract: the same operator
// attached to the deterministic simulator and to the concurrent goroutine
// substrate returns identical answers and identical message counts on the
// paper's scenarios. Run under -race this also exercises the live
// substrate's concurrency.
func TestSubstrateEquivalence(t *testing.T) {
	scenarios := []struct {
		name string
		mk   func() *config.Scenario
	}{
		{"figure1", config.Figure1Scenario},
		{"figure3", config.Figure3Scenario},
	}
	operators := []struct {
		name string
		mk   func() topk.SnapshotOperator
	}{
		{"mint", func() topk.SnapshotOperator { return mint.New() }},
		{"tag", func() topk.SnapshotOperator { return tag.New() }},
	}
	const epochs = 12
	for _, sc := range scenarios {
		for _, op := range operators {
			t.Run(fmt.Sprintf("%s/%s", sc.name, op.name), func(t *testing.T) {
				detAns, detTr, detOK := runOn(t, sc.mk(), op.mk, false, epochs)
				liveAns, liveTr, liveOK := runOn(t, sc.mk(), op.mk, true, epochs)
				for e := range detAns {
					if !model.EqualAnswers(detAns[e], liveAns[e]) {
						t.Fatalf("epoch %d: deterministic=%v live=%v", e, detAns[e], liveAns[e])
					}
					if detOK[e] != liveOK[e] {
						t.Fatalf("epoch %d: correctness disagrees (det %v, live %v)", e, detOK[e], liveOK[e])
					}
				}
				if detTr.Msg() != liveTr.Msg() {
					t.Errorf("messages: deterministic %d, live %d", detTr.Msg(), liveTr.Msg())
				}
				if detTr.Bytes() != liveTr.Bytes() {
					t.Errorf("tx bytes: deterministic %d, live %d", detTr.Bytes(), liveTr.Bytes())
				}
				if op.name == "mint" {
					for e, ok := range detOK {
						if !ok {
							t.Errorf("epoch %d: MINT answered incorrectly on the deterministic substrate", e)
						}
					}
				}
			})
		}
	}
}
