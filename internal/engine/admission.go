package engine

import (
	"fmt"
	"sync"
)

// AdmissionConfig bounds how many concurrent queries the serving layer
// accepts. A zero limit means unlimited on that axis, so the zero value
// admits everything — existing single-tenant deployments are unaffected.
type AdmissionConfig struct {
	// MaxQueries caps the total number of live queries across all tenants.
	MaxQueries int
	// TenantQuota caps the number of live queries any single tenant may
	// hold. Tenants are free-form strings; the empty tenant is a tenant
	// like any other.
	TenantQuota int
}

// AdmissionError is the typed rejection returned when posting a query
// would exceed an admission limit. Callers distinguish rejection from
// parse or transport errors with errors.As.
type AdmissionError struct {
	// Tenant is the tenant whose post was rejected.
	Tenant string
	// Limit is the limit that was hit.
	Limit int
	// Kind is "global" when MaxQueries was exceeded, "tenant" when the
	// per-tenant quota was.
	Kind string
}

func (e *AdmissionError) Error() string {
	if e.Kind == "tenant" {
		return fmt.Sprintf("admission: tenant %q at quota (%d live queries)", e.Tenant, e.Limit)
	}
	return fmt.Sprintf("admission: system at capacity (%d live queries)", e.Limit)
}

// Admission is the concurrency-safe admission controller. Admit reserves a
// slot before the query is prepared; Release returns it when the cursor
// closes or preparation fails. Rejection never blocks and never disturbs
// already-admitted queries.
type Admission struct {
	cfg AdmissionConfig

	mu        sync.Mutex
	total     int
	perTenant map[string]int
}

// NewAdmission builds a controller for the given limits.
func NewAdmission(cfg AdmissionConfig) *Admission {
	return &Admission{cfg: cfg, perTenant: make(map[string]int)}
}

// Admit reserves a slot for tenant, or returns *AdmissionError without
// reserving anything.
func (a *Admission) Admit(tenant string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cfg.MaxQueries > 0 && a.total >= a.cfg.MaxQueries {
		return &AdmissionError{Tenant: tenant, Limit: a.cfg.MaxQueries, Kind: "global"}
	}
	if a.cfg.TenantQuota > 0 && a.perTenant[tenant] >= a.cfg.TenantQuota {
		return &AdmissionError{Tenant: tenant, Limit: a.cfg.TenantQuota, Kind: "tenant"}
	}
	a.total++
	a.perTenant[tenant]++
	return nil
}

// Release returns tenant's slot. Releasing without a matching Admit is a
// no-op, so teardown paths may release unconditionally.
func (a *Admission) Release(tenant string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.perTenant[tenant] == 0 {
		return
	}
	a.total--
	if a.perTenant[tenant]--; a.perTenant[tenant] == 0 {
		delete(a.perTenant, tenant)
	}
}

// Load reports the current live-query count and the per-tenant breakdown
// (a copy — callers may not mutate controller state).
func (a *Admission) Load() (total int, perTenant map[string]int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	perTenant = make(map[string]int, len(a.perTenant))
	for t, n := range a.perTenant {
		perTenant[t] = n
	}
	return a.total, perTenant
}
