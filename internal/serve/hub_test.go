package serve

import (
	"reflect"
	"sync"
	"testing"

	"kspot/internal/model"
)

func res(e int) Result {
	return Result{Epoch: model.Epoch(e), Answers: []model.Answer{{Group: model.GroupID(e), Score: model.Value(e)}}, Correct: true}
}

// Every subscriber sees the identical per-epoch sequence, regardless of
// when it joined (within cache capacity) or how slowly it consumes.
func TestHubFanOutIdenticalSequences(t *testing.T) {
	h := NewHub(16)
	early := h.Subscribe()
	for e := 0; e < 5; e++ {
		h.Publish(res(e))
	}
	late := h.Subscribe() // replays the cache
	for e := 5; e < 10; e++ {
		h.Publish(res(e))
	}
	h.Close()

	drain := func(s *Subscriber) []Result {
		var out []Result
		for {
			r, ok := s.Next()
			if !ok {
				return out
			}
			out = append(out, r)
		}
	}
	a, b := drain(early), drain(late)
	if len(a) != 10 {
		t.Fatalf("early subscriber got %d results, want 10", len(a))
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("subscribers diverged:\nearly: %v\nlate:  %v", a, b)
	}
	for e, r := range a {
		if r.Epoch != model.Epoch(e) {
			t.Fatalf("result %d has epoch %d", e, r.Epoch)
		}
	}
}

// A blocked Next wakes on publish and on close; concurrent subscribers
// each get every result exactly once.
func TestHubConcurrentSubscribers(t *testing.T) {
	h := NewHub(0)
	const subs, results = 8, 50
	var wg sync.WaitGroup
	got := make([][]Result, subs)
	for i := 0; i < subs; i++ {
		s := h.Subscribe()
		wg.Add(1)
		go func(i int, s *Subscriber) {
			defer wg.Done()
			for {
				r, ok := s.Next()
				if !ok {
					return
				}
				got[i] = append(got[i], r)
			}
		}(i, s)
	}
	for e := 0; e < results; e++ {
		h.Publish(res(e))
	}
	h.Close()
	wg.Wait()
	for i := 1; i < subs; i++ {
		if !reflect.DeepEqual(got[0], got[i]) {
			t.Fatalf("subscriber %d diverged from subscriber 0", i)
		}
	}
	if len(got[0]) != results {
		t.Fatalf("got %d results, want %d", len(got[0]), results)
	}
}

// The replay cache is bounded: a very late subscriber sees only the last
// cap results, still in order.
func TestHubCacheBound(t *testing.T) {
	h := NewHub(4)
	for e := 0; e < 10; e++ {
		h.Publish(res(e))
	}
	s := h.Subscribe()
	h.Close()
	var epochs []model.Epoch
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		epochs = append(epochs, r.Epoch)
	}
	want := []model.Epoch{6, 7, 8, 9}
	if !reflect.DeepEqual(epochs, want) {
		t.Fatalf("late subscriber replayed %v, want %v", epochs, want)
	}
}

// Closing a subscriber mid-stream never deadlocks the hub or other
// subscribers, and a subscriber of a closed hub still drains the cache.
func TestHubCloseSemantics(t *testing.T) {
	h := NewHub(8)
	s1, s2 := h.Subscribe(), h.Subscribe()
	h.Publish(res(0))
	s1.Close()
	s1.Close() // idempotent
	h.Publish(res(1))
	if r, ok := s2.Next(); !ok || r.Epoch != 0 {
		t.Fatalf("s2 first = %v %v", r, ok)
	}
	if r, ok := s2.Next(); !ok || r.Epoch != 1 {
		t.Fatalf("s2 second = %v %v", r, ok)
	}
	// s1 drains what it queued before closing, then ends.
	if r, ok := s1.Next(); !ok || r.Epoch != 0 {
		t.Fatalf("closed s1 did not drain its queue: %v %v", r, ok)
	}
	if _, ok := s1.Next(); ok {
		t.Fatal("closed s1 kept streaming")
	}
	h.Close()
	post := h.Subscribe()
	if r, ok := post.Next(); !ok || r.Epoch != 0 {
		t.Fatalf("post-close subscriber lost the cache: %v %v", r, ok)
	}
	if r, ok := post.Next(); !ok || r.Epoch != 1 {
		t.Fatalf("post-close subscriber lost the cache: %v %v", r, ok)
	}
	if _, ok := post.Next(); ok {
		t.Fatal("post-close subscriber kept streaming")
	}
	if h.Subscribers() != 0 {
		t.Fatalf("closed hub reports %d subscribers", h.Subscribers())
	}
}
