// Package serve is the streaming results tier of a KSpot daemon: one Hub
// per posted cursor caches the query's per-epoch results and fans them out
// to any number of subscribers (SSE connections in cmd/kspotd). The hub
// decouples the epoch clock from the consumers — a slow subscriber buffers,
// it never back-pressures the deployment's lock-step — and replays its
// cache on subscribe, so every subscriber of one cursor observes the
// identical per-epoch sequence regardless of when it connected.
package serve

import (
	"sync"

	"kspot/internal/model"
)

// Result is one published epoch of a query.
type Result struct {
	Epoch   model.Epoch    `json:"epoch"`
	Answers []model.Answer `json:"answers"`
	Correct bool           `json:"correct"`
	// Err carries an epoch error (shard loss) as text; the stream
	// continues, mirroring the cursor's buffered-outcome semantics.
	Err string `json:"err,omitempty"`
}

// Hub caches and fans out one cursor's epoch results. All methods are safe
// for concurrent use.
type Hub struct {
	mu     sync.Mutex
	cache  []Result // last cacheCap published results, oldest first
	cap    int
	subs   map[*Subscriber]struct{}
	closed bool
}

// NewHub builds a hub whose replay cache keeps the last cacheCap results
// (0 selects the default of 64).
func NewHub(cacheCap int) *Hub {
	if cacheCap <= 0 {
		cacheCap = 64
	}
	return &Hub{cap: cacheCap, subs: make(map[*Subscriber]struct{})}
}

// Publish appends an epoch result to the cache and every subscriber's
// queue. Publishing on a closed hub is a no-op.
func (h *Hub) Publish(r Result) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	if len(h.cache) == h.cap {
		h.cache = append(h.cache[:0], h.cache[1:]...)
	}
	h.cache = append(h.cache, r)
	for s := range h.subs {
		s.queue = append(s.queue, r)
		s.cond.Signal()
	}
}

// Subscribe registers a consumer, replaying the cached results into its
// queue first: a subscriber joining at epoch e receives every cached epoch
// before e, then the live stream — the same sequence an epoch-0 subscriber
// sees (up to cache capacity). Subscribing to a closed hub returns a
// subscriber that drains the cache and then reports closed.
func (h *Hub) Subscribe() *Subscriber {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := &Subscriber{h: h}
	s.cond = sync.NewCond(&h.mu)
	s.queue = append(s.queue, h.cache...)
	if !h.closed {
		h.subs[s] = struct{}{}
	} else {
		s.done = true
	}
	return s
}

// Close ends the stream: every subscriber drains its queue and then its
// Next returns false. Safe to call multiple times.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		s.done = true
		s.cond.Broadcast()
	}
	h.subs = make(map[*Subscriber]struct{})
}

// Subscribers reports the current subscriber count.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Subscriber is one consumer's seat on a hub. Results queue unboundedly
// between Next calls, so a slow consumer loses nothing and stalls nobody.
type Subscriber struct {
	h     *Hub
	cond  *sync.Cond
	queue []Result
	done  bool
}

// Next blocks until a result is available and returns it; ok is false once
// the stream ended (hub or subscriber closed) and the queue has drained.
func (s *Subscriber) Next() (Result, bool) {
	s.h.mu.Lock()
	defer s.h.mu.Unlock()
	for len(s.queue) == 0 && !s.done {
		s.cond.Wait()
	}
	if len(s.queue) == 0 {
		return Result{}, false
	}
	r := s.queue[0]
	s.queue = s.queue[1:]
	return r, true
}

// Close unsubscribes: a blocked Next wakes and returns false after the
// queue drains. Safe to call multiple times and concurrently with Next.
func (s *Subscriber) Close() {
	s.h.mu.Lock()
	defer s.h.mu.Unlock()
	if s.done {
		return
	}
	s.done = true
	delete(s.h.subs, s)
	s.cond.Broadcast()
}
