package sim

import (
	"bytes"
	"testing"

	"kspot/internal/model"
	"kspot/internal/topo"
	"kspot/internal/trace"
)

// sweepRun drives epochs of lossy, budget-constrained sweeps at a given
// worker count and returns the concatenated encoded root views plus the
// final accounting snapshot — the byte-identity fingerprint of the run.
func sweepRun(t *testing.T, workers, epochs int, prune func(model.NodeID, *model.View) *model.View) ([]byte, Snapshot, float64) {
	t.Helper()
	p := topo.Rooms(12, 10, 12, 77)
	opts := DefaultOptions()
	opts.Radio.LossRate = 0.08 // rng draw order must survive parallelism
	opts.Radio.Seed = 42
	opts.BudgetJoules = 0.004 // tight: some nodes die mid-run
	opts.Parallel = workers
	n, err := New(p, 25, opts)
	if err != nil {
		t.Fatalf("build network: %v", err)
	}
	src := trace.NewRoomActivity(9, p.Groups, 12)
	var roots []byte
	for e := model.Epoch(0); e < model.Epoch(epochs); e++ {
		readings := make(map[model.NodeID]model.Reading)
		for _, id := range p.SensorNodes() {
			if n.Alive(id) {
				readings[id] = model.Reading{Node: id, Group: p.Groups[id], Epoch: e, Value: src.Sample(id, e)}
			}
		}
		root := n.Sweep(e, 1, readings, prune)
		roots = model.AppendView(roots, root)
	}
	return roots, n.Snap(), n.Ledger.Total()
}

// TestSweepParallelByteIdentity pins the house conformance bar for the
// level-synchronous sweep: for every worker count, answers, messages,
// frames, bytes, drops and the energy ledger are bit-for-bit identical to
// the sequential walk — including the per-frame loss draws, whose rng order
// the commit phase must preserve exactly.
func TestSweepParallelByteIdentity(t *testing.T) {
	prunes := map[string]func(model.NodeID, *model.View) *model.View{
		"tag-full-views": nil,
		"thinning": func(node model.NodeID, v *model.View) *model.View {
			out := model.AcquireView()
			v.ForEach(func(pt model.Partial) {
				if pt.Group%3 != 0 {
					out.AddPartial(pt)
				}
			})
			return out
		},
		"suppress-some": func(node model.NodeID, v *model.View) *model.View {
			if node%5 == 0 {
				return nil // packet suppression path
			}
			return v
		},
	}
	for name, prune := range prunes {
		t.Run(name, func(t *testing.T) {
			wantRoots, wantSnap, wantUJ := sweepRun(t, 1, 25, prune)
			for _, workers := range []int{2, 3, 8} {
				roots, snap, uj := sweepRun(t, workers, 25, prune)
				if !bytes.Equal(roots, wantRoots) {
					t.Errorf("workers=%d: root views diverge from sequential", workers)
				}
				if snap != wantSnap {
					t.Errorf("workers=%d: accounting %+v, want %+v", workers, snap, wantSnap)
				}
				if uj != wantUJ {
					t.Errorf("workers=%d: ledger %.6f µJ, want %.6f µJ", workers, uj, wantUJ)
				}
			}
		})
	}
}

// TestSweepParallelPrunePanicPropagates pins that a panic inside a prune
// callback surfaces on the sweeping goroutine (not a worker crash) for both
// the sequential and parallel paths.
func TestSweepParallelPrunePanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := topo.Rooms(4, 5, 12, 77)
		opts := DefaultOptions()
		opts.Parallel = workers
		n, err := New(p, 30, opts)
		if err != nil {
			t.Fatalf("build network: %v", err)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("workers=%d: prune panic did not propagate", workers)
				}
			}()
			n.Sweep(0, 1, nil, func(model.NodeID, *model.View) *model.View {
				panic("boom")
			})
		}()
	}
}
