// Package sim is the deterministic discrete-time simulator the benchmark
// harness runs on. It owns the network state — placement, links, routing
// tree, link layer, energy ledger and traffic counters — and exposes the
// communication primitives the top-k operators use:
//
//   - SendUp: one hop from a node to its tree parent (view updates);
//   - SendDown: one hop from a parent to a child (beacons, L_sink multicast);
//   - RouteToSink: multihop relay without in-network merging (the flat
//     communication pattern of TPUT and of the centralized baseline);
//   - BroadcastDown: pre-order sweep delivering a per-child payload.
//
// Every transmission is charged to the energy ledger and recorded in the
// radio counter, so after a run the System Panel simply reads this state.
// Time is epoch-structured as in TAG: a downstream beacon sweep followed by
// an upstream data sweep in post-order (children strictly before parents).
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"kspot/internal/energy"
	"kspot/internal/model"
	"kspot/internal/radio"
	"kspot/internal/topo"
)

// Network bundles the simulated deployment.
type Network struct {
	Placement *topo.Placement
	Links     *topo.Links
	Tree      *topo.Tree
	Link      *radio.Link
	Energy    energy.Model
	Ledger    *energy.Ledger
	Counter   *radio.Counter

	// Budgets, when non-nil, gives each node a finite energy budget; dead
	// nodes stop transmitting and receiving.
	Budgets map[model.NodeID]*energy.Budget

	// downed marks nodes administratively killed by fault injection
	// (internal/faults churn). A downed node is dead exactly like a
	// budget-exhausted one; revival clears the mark but never resurrects a
	// node whose energy budget ran out.
	downed map[model.NodeID]bool

	// Delivered is an optional hook invoked for every successfully
	// delivered message (the concurrent runtime and the GUI subscribe).
	// Payload buffers may be reused by the sender after the hook returns;
	// subscribers must copy what they keep.
	Delivered func(msg radio.Message)

	// parallel bounds the worker count of the level-synchronous Sweep;
	// values <= 1 select the exact legacy sequential walk. See SetParallel.
	parallel int

	// sweep holds the per-node view accumulators, the encode buffer the
	// sequential up-sweep reuses, and the per-slot scratch of the parallel
	// sweep, so that steady-state sweeps allocate nothing. Like the rest
	// of *Network, Sweep is not safe for concurrent use — the parallel
	// sweep's workers live entirely within one Sweep call.
	sweep struct {
		acc   map[model.NodeID]*model.View
		buf   []byte
		slots []sweepSlot
	}
}

// sweepSlot is the per-node scratch of the parallel sweep: the compute
// phase of a level fills slots concurrently (one per node, no sharing),
// the commit phase drains them in ascending id order.
type sweepSlot struct {
	local *model.View // the node's own accumulator
	out   *model.View // pruned view to transmit; may equal local or be nil
	enc   []byte      // encoded payload, reused across levels and sweeps
	send  bool        // out is non-empty, so a transmission is due
}

// Options configures New.
type Options struct {
	Radio       radio.Config
	EnergyModel energy.Model
	// BudgetJoules, when positive, assigns every sensor node a finite
	// budget (the sink is mains-powered, as the MIB520 gateway is).
	BudgetJoules float64
	// Parallel bounds the worker count of the level-synchronous Sweep.
	// 0 or 1 runs the exact legacy sequential walk; N > 1 computes each
	// tree level with up to N workers. Results are byte-identical for
	// every value (see SetParallel).
	Parallel int
}

// DefaultOptions returns a lossless MICA2 network with unlimited budgets.
func DefaultOptions() Options {
	return Options{Radio: radio.DefaultConfig(), EnergyModel: energy.MICA2()}
}

// New builds a network over the placement: disk links with the given radius
// and a first-heard BFS tree.
func New(p *topo.Placement, radius float64, opts Options) (*Network, error) {
	links := topo.DiskLinks(p, radius)
	tree, err := topo.BuildTree(p, links)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	return FromTree(p, links, tree, opts), nil
}

// FromTree builds a network over an explicit topology (used by the Figure 1
// fixture, whose tree the paper draws literally).
func FromTree(p *topo.Placement, links *topo.Links, tree *topo.Tree, opts Options) *Network {
	n := &Network{
		Placement: p,
		Links:     links,
		Tree:      tree,
		Link:      radio.NewLink(opts.Radio),
		Energy:    opts.EnergyModel,
		Ledger:    energy.NewLedger(),
		Counter:   radio.NewCounter(),
		parallel:  opts.Parallel,
	}
	if opts.BudgetJoules > 0 {
		n.Budgets = make(map[model.NodeID]*energy.Budget)
		for _, id := range p.SensorNodes() {
			n.Budgets[id] = energy.NewBudget(opts.BudgetJoules)
		}
	}
	return n
}

// Topology returns the node placement. Together with Routing, Sweep and
// the send primitives it makes *Network satisfy engine.Transport — the
// deterministic substrate of the engine layer.
func (n *Network) Topology() *topo.Placement { return n.Placement }

// Routing returns the sink-rooted routing tree.
func (n *Network) Routing() *topo.Tree { return n.Tree }

// Alive reports whether a node still has energy and has not been struck
// down by fault injection (the sink is mains-powered and always alive).
func (n *Network) Alive(id model.NodeID) bool {
	if id == model.Sink {
		return true
	}
	if n.downed[id] {
		return false
	}
	if n.Budgets == nil {
		return true
	}
	b, ok := n.Budgets[id]
	return !ok || !b.Dead()
}

// SetNodeDown administratively kills or revives a node — the churn
// primitive of the fault-injection layer. It rides the same Alive pathway
// as energy death: a downed node neither transmits, receives, nor senses.
// The sink cannot be downed, and reviving a node whose energy budget is
// exhausted leaves it dead.
func (n *Network) SetNodeDown(id model.NodeID, down bool) {
	if id == model.Sink {
		return
	}
	if n.downed == nil {
		n.downed = make(map[model.NodeID]bool)
	}
	if down {
		n.downed[id] = true
	} else {
		delete(n.downed, id)
	}
}

// SetFault installs (or clears) a deterministic link-layer fault model —
// the loss/duplication/delay primitive of the fault-injection layer. Must
// be called before traffic flows.
func (n *Network) SetFault(m radio.FaultModel) { n.Link.SetFault(m) }

// SetParallel bounds the worker count of the level-synchronous Sweep.
// workers <= 1 selects the exact legacy sequential walk; workers > 1 fans
// the per-level merge/prune/encode work over a bounded pool while the
// transmissions and parent merges still commit in the sequential post-order
// position, so answers, messages, frames, bytes, loss draws and the energy
// ledger are byte-identical for every value. Not safe to call while a
// Sweep is in flight.
func (n *Network) SetParallel(workers int) { n.parallel = workers }

// Parallel reports the configured sweep worker bound (0 and 1 both mean
// sequential).
func (n *Network) Parallel() int { return n.parallel }

// chargeTx charges a transmission to a node, returning false if the node is
// dead. The sink draws mains power and is never charged.
func (n *Network) chargeTx(id model.NodeID, microjoules float64) bool {
	if !n.Alive(id) {
		return false
	}
	if id != model.Sink {
		if n.Budgets != nil {
			n.Budgets[id].Spend(microjoules)
		}
		n.Ledger.Charge(int(id), microjoules)
	}
	return true
}

func (n *Network) chargeRx(id model.NodeID, microjoules float64) {
	if id == model.Sink || !n.Alive(id) {
		return
	}
	if n.Budgets != nil {
		n.Budgets[id].Spend(microjoules)
	}
	n.Ledger.Charge(int(id), microjoules)
}

// transmit performs one single-hop transmission with full accounting.
func (n *Network) transmit(msg radio.Message) bool {
	if !n.Alive(msg.From) {
		return false
	}
	acc := n.Link.Transmit(msg)
	n.Counter.Record(msg, acc)
	frames := acc.Frames
	if frames > 0 {
		txCost := float64(frames)*n.Energy.TxPerPacket + n.Energy.TxPerByte*float64(acc.TxBytes)
		n.chargeTx(msg.From, txCost)
	}
	receiverAlive := n.Alive(msg.To)
	if acc.RxFrames > 0 && receiverAlive {
		rxCost := float64(acc.RxFrames)*n.Energy.RxPerPacket + n.Energy.RxPerByte*float64(acc.RxBytes)
		n.chargeRx(msg.To, rxCost)
	}
	// A node that dies receiving this very message still received it: the
	// budget check, like the hardware brown-out, happens afterwards.
	delivered := acc.Delivered && receiverAlive
	if delivered && n.Delivered != nil {
		n.Delivered(msg)
	}
	return delivered
}

// SendUp transmits a payload from a node to its tree parent. Returns false
// if the node is the root, is dead, or the link loses the message.
func (n *Network) SendUp(from model.NodeID, kind radio.MsgKind, e model.Epoch, payload []byte) bool {
	parent, ok := n.Tree.Parent[from]
	if !ok {
		return false
	}
	return n.transmit(radio.Message{From: from, To: parent, Kind: kind, Epoch: e, Payload: payload})
}

// SendDown transmits a payload from a node to one of its children.
func (n *Network) SendDown(from, to model.NodeID, kind radio.MsgKind, e model.Epoch, payload []byte) bool {
	return n.transmit(radio.Message{From: from, To: to, Kind: kind, Epoch: e, Payload: payload})
}

// BroadcastDown delivers a payload from the sink to every node via a
// pre-order sweep: each parent forwards to each child (TinyOS has no
// reliable broadcast; TAG re-broadcasts per hop and we charge per child
// link, the conservative model TinyDB uses for tree maintenance).
// payloadFor lets the caller shrink or specialize the payload per child;
// passing nil sends an empty beacon. Returns the set of nodes reached.
func (n *Network) BroadcastDown(kind radio.MsgKind, e model.Epoch, payloadFor func(child model.NodeID) []byte) map[model.NodeID]bool {
	reached := map[model.NodeID]bool{model.Sink: true}
	for _, parent := range n.Tree.PreOrder() {
		if !reached[parent] {
			continue // parent never got the beacon; subtree dark this epoch
		}
		for _, child := range n.Tree.Children[parent] {
			var pl []byte
			if payloadFor != nil {
				pl = payloadFor(child)
			}
			if n.SendDown(parent, child, kind, e, pl) {
				reached[child] = true
			}
		}
	}
	return reached
}

// RouteToSink relays a payload from a node to the sink hop by hop WITHOUT
// merging — every intermediate node retransmits the same bytes. This is the
// communication pattern of flat algorithms (TPUT, centralized shipping) and
// is what in-network aggregation saves over. Returns true if the payload
// reached the sink.
func (n *Network) RouteToSink(from model.NodeID, kind radio.MsgKind, e model.Epoch, payload []byte) bool {
	cur := from
	for cur != model.Sink {
		parent, ok := n.Tree.Parent[cur]
		if !ok {
			return false
		}
		if !n.transmit(radio.Message{From: cur, To: parent, Kind: kind, Epoch: e, Payload: payload}) {
			return false
		}
		cur = parent
	}
	return true
}

// RouteFromSink relays a payload from the sink to one node hop by hop down
// the tree (the unicast pattern of filter updates and probes in
// FILA-style protocols). Returns true if the payload arrived.
func (n *Network) RouteFromSink(to model.NodeID, kind radio.MsgKind, e model.Epoch, payload []byte) bool {
	path := n.Tree.PathToRoot(to) // to ... sink
	if len(path) == 0 || path[len(path)-1] != model.Sink {
		return false
	}
	for i := len(path) - 1; i > 0; i-- {
		if !n.transmit(radio.Message{From: path[i], To: path[i-1], Kind: kind, Epoch: e, Payload: payload}) {
			return false
		}
	}
	return true
}

// Sweep runs one TAG-style leaf-to-root acquisition sweep: in post-order,
// every node merges its own reading (if any) with the views received from
// its children, applies prune to obtain the view it will transmit, and
// sends the encoded result one hop up. Nodes whose pruned view is empty
// suppress their packet entirely — that suppression is where in-network
// top-k saves messages, not just bytes.
//
// prune receives the transmitting node and its full local view V_i and
// returns the view to transmit V'_i (it may return the input unchanged, a
// subset built with model.AcquireView, or nil for "send nothing"); views it
// returns that differ from the input are recycled by the transport once
// transmitted. The sink's merged view is returned; it is owned by the
// transport and valid only until the next Sweep (see engine.Transport).
func (n *Network) Sweep(e model.Epoch, kind radio.MsgKind,
	readings map[model.NodeID]model.Reading,
	prune func(node model.NodeID, v *model.View) *model.View) *model.View {

	if n.parallel > 1 {
		return n.sweepParallel(e, kind, readings, prune)
	}
	order := n.Tree.PostOrder()
	n.resetAccumulators(order)
	for _, node := range order {
		v := n.sweep.acc[node] // children's contributions already merged
		if r, ok := readings[node]; ok {
			v.Add(r)
		}
		if node == n.Tree.Root {
			return v
		}
		out := v
		if prune != nil {
			out = prune(node, v)
		}
		if out != nil && out.Len() > 0 && n.Alive(node) {
			n.sweep.buf = model.AppendView(n.sweep.buf[:0], out)
			if n.SendUp(node, kind, e, n.sweep.buf) {
				n.sweep.acc[n.Tree.Parent[node]].MergeView(out)
			}
		}
		if out != v {
			model.ReleaseView(out)
		}
	}
	panic("sim: post-order traversal did not end at the root")
}

// resetAccumulators readies the per-node view accumulators: children merge
// into their parent's accumulator before the parent's own turn comes.
func (n *Network) resetAccumulators(order []model.NodeID) {
	if n.sweep.acc == nil {
		n.sweep.acc = make(map[model.NodeID]*model.View, len(order))
	}
	for _, node := range order {
		if v := n.sweep.acc[node]; v != nil {
			v.Reset()
		} else {
			n.sweep.acc[node] = model.NewView()
		}
	}
}

// sweepParallel is the level-synchronous form of Sweep. Per tree level,
// deepest first, it runs two phases:
//
//   - compute: up to n.parallel workers steal nodes off the level and, for
//     each, merge the node's reading into its accumulator, apply prune and
//     encode the resulting view into the node's private scratch slot. No
//     two workers touch the same node, and accumulators of shallower
//     levels are only read during commits, so the phase is data-race free.
//   - commit: a single goroutine replays the transmissions and parent-
//     accumulator merges in ascending node id — exactly the position the
//     sequential post-order walk would run them in, since PostOrder is
//     depth-descending with ids ascending within a level.
//
// All order-sensitive state (link loss draws, fault-model evaluation,
// energy charges, counters, the Delivered hook) is touched only during
// commits, and a level's transmissions can only charge that level and its
// parents — never a deeper node — so aliveness at each commit matches the
// sequential run. The result is byte-identical to the sequential sweep for
// every worker count.
func (n *Network) sweepParallel(e model.Epoch, kind radio.MsgKind,
	readings map[model.NodeID]model.Reading,
	prune func(node model.NodeID, v *model.View) *model.View) *model.View {

	n.resetAccumulators(n.Tree.PostOrder())
	levels := n.Tree.Levels()
	widest := 0
	for _, lv := range levels {
		if len(lv) > widest {
			widest = len(lv)
		}
	}
	if len(n.sweep.slots) < widest {
		slots := make([]sweepSlot, widest)
		copy(slots, n.sweep.slots) // keep already-grown encode buffers
		n.sweep.slots = slots
	}
	slots := n.sweep.slots

	// One worker pool per Sweep: workers park on the level channel between
	// levels and exit when it closes. The sweeping goroutine steals work
	// too, so n.parallel is the total compute concurrency.
	type level struct {
		nodes []model.NodeID
		next  *int64 // shared steal cursor
	}
	compute := func(lv level) {
		for {
			j := atomic.AddInt64(lv.next, 1) - 1
			if j >= int64(len(lv.nodes)) {
				return
			}
			node := lv.nodes[j]
			s := &slots[j]
			v := n.sweep.acc[node]
			if r, ok := readings[node]; ok {
				v.Add(r)
			}
			out := v
			if prune != nil {
				out = prune(node, v)
			}
			s.local, s.out = v, out
			s.send = out != nil && out.Len() > 0
			if s.send {
				s.enc = model.AppendView(s.enc[:0], out)
			}
		}
	}
	spares := n.parallel - 1
	var (
		wg        sync.WaitGroup
		levelCh   chan level
		panicMu   sync.Mutex
		panicked  bool
		panicVal  any
		notePanic = func(r any) {
			panicMu.Lock()
			if !panicked {
				panicked, panicVal = true, r
			}
			panicMu.Unlock()
		}
	)
	if spares > 0 {
		levelCh = make(chan level)
		defer close(levelCh)
		for w := 0; w < spares; w++ {
			go func() {
				for lv := range levelCh {
					func() {
						defer func() {
							if r := recover(); r != nil {
								notePanic(r)
							}
						}()
						compute(lv)
					}()
					wg.Done()
				}
			}()
		}
	}

	for d := len(levels) - 1; d >= 1; d-- {
		nodes := levels[d]
		// Compute phase. Tiny levels (the funnel near the root) skip the
		// pool: dispatch costs more than the work.
		var next int64
		lv := level{nodes: nodes, next: &next}
		fan := spares
		if max := len(nodes) - 1; fan > max {
			fan = max
		}
		if fan > 0 {
			wg.Add(fan)
			for w := 0; w < fan; w++ {
				levelCh <- lv
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					notePanic(r)
				}
			}()
			compute(lv)
		}()
		wg.Wait()
		if panicked {
			panic(panicVal)
		}
		// Commit phase: sequential, in ascending id = post-order position.
		// Consecutive nodes often share a parent, so the parent-accumulator
		// lookup is batched across the run of siblings.
		var lastParent model.NodeID
		var lastAcc *model.View
		for j, node := range nodes {
			s := &slots[j]
			if s.send && n.Alive(node) {
				if n.SendUp(node, kind, e, s.enc) {
					parent := n.Tree.Parent[node]
					if lastAcc == nil || parent != lastParent {
						lastParent, lastAcc = parent, n.sweep.acc[parent]
					}
					lastAcc.MergeView(s.out)
				}
			}
			if s.out != nil && s.out != s.local {
				model.ReleaseView(s.out)
			}
			s.local, s.out, s.send = nil, nil, false
		}
	}
	// Level 0 is the root alone: merge its own reading and hand the merged
	// view to the caller, as the sequential walk's final iteration does.
	if len(levels) == 0 || len(levels[0]) != 1 || levels[0][0] != n.Tree.Root {
		panic("sim: level index does not end at the root")
	}
	v := n.sweep.acc[n.Tree.Root]
	if r, ok := readings[n.Tree.Root]; ok {
		v.Add(r)
	}
	return v
}

// ChargeSense charges one sensing operation to a node.
func (n *Network) ChargeSense(id model.NodeID) {
	if id != model.Sink && n.Alive(id) {
		if n.Budgets != nil {
			n.Budgets[id].Spend(n.Energy.SenseCost)
		}
		n.Ledger.Charge(int(id), n.Energy.SenseCost)
	}
}

// ChargeIdleEpoch charges every live sensor the per-epoch idle baseline.
func (n *Network) ChargeIdleEpoch() {
	for _, id := range n.Placement.SensorNodes() {
		if n.Alive(id) {
			if n.Budgets != nil {
				n.Budgets[id].Spend(n.Energy.IdlePerEpoch)
			}
			n.Ledger.Charge(int(id), n.Energy.IdlePerEpoch)
		}
	}
}

// Reset clears traffic and energy accounting (budgets are preserved) so a
// caller can measure a steady-state window separately from a warm-up.
func (n *Network) Reset() {
	n.Ledger = energy.NewLedger()
	n.Counter = radio.NewCounter()
}

// Snapshot copies the current counters — used to compute per-phase deltas.
type Snapshot struct {
	Messages int
	Frames   int
	TxBytes  int
	Drops    int
	EnergyUJ float64
}

// Snap captures current totals.
func (n *Network) Snap() Snapshot {
	return Snapshot{
		Messages: n.Counter.TotalMessages(),
		Frames:   n.Counter.TotalFrames(),
		TxBytes:  n.Counter.TotalTxBytes(),
		Drops:    n.Counter.Drops,
		EnergyUJ: n.Ledger.Total(),
	}
}

// Delta returns the difference between the current totals and an earlier
// snapshot.
func (n *Network) Delta(s Snapshot) Snapshot {
	now := n.Snap()
	return Snapshot{
		Messages: now.Messages - s.Messages,
		Frames:   now.Frames - s.Frames,
		TxBytes:  now.TxBytes - s.TxBytes,
		Drops:    now.Drops - s.Drops,
		EnergyUJ: now.EnergyUJ - s.EnergyUJ,
	}
}
