package sim

import (
	"testing"

	"kspot/internal/model"
	"kspot/internal/radio"
	"kspot/internal/topo"
	"kspot/internal/trace"
)

func fig1Network(t *testing.T) *Network {
	t.Helper()
	p := trace.Figure1Placement()
	tree := trace.Figure1Tree()
	links := topo.NewLinks()
	for child, parent := range tree.Parent {
		links.Connect(child, parent)
	}
	return FromTree(p, links, tree, DefaultOptions())
}

func TestNewBuildsConnectedNetwork(t *testing.T) {
	p := topo.Rooms(4, 3, 12, 3)
	n, err := New(p, 20, DefaultOptions())
	if err != nil {
		t.Skipf("topology disconnected: %v", err)
	}
	if err := n.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewDisconnectedFails(t *testing.T) {
	p := topo.NewPlacement()
	p.Positions[model.Sink] = topo.Point{}
	p.Positions[1] = topo.Point{X: 1e6}
	p.Groups[1] = 1
	if _, err := New(p, 10, DefaultOptions()); err == nil {
		t.Fatal("expected error for disconnected placement")
	}
}

func TestSendUpAccounting(t *testing.T) {
	n := fig1Network(t)
	payload := make([]byte, 16)
	if !n.SendUp(3, radio.KindData, 0, payload) {
		t.Fatal("SendUp failed on lossless link")
	}
	if got := n.Counter.TotalMessages(); got != 1 {
		t.Errorf("messages = %d", got)
	}
	wantBytes := 16 + radio.DefaultHeaderSize
	if got := n.Counter.TotalTxBytes(); got != wantBytes {
		t.Errorf("tx bytes = %d, want %d", got, wantBytes)
	}
	// Sender s3 pays tx, receiver s1 pays rx; sink pays nothing.
	if n.Ledger.Node(3) <= 0 {
		t.Error("sender not charged")
	}
	if n.Ledger.Node(1) <= 0 {
		t.Error("receiver not charged")
	}
}

func TestSendUpFromRootFails(t *testing.T) {
	n := fig1Network(t)
	if n.SendUp(model.Sink, radio.KindData, 0, nil) {
		t.Fatal("sink has no parent; SendUp must fail")
	}
}

func TestSinkNeverCharged(t *testing.T) {
	n := fig1Network(t)
	n.SendDown(model.Sink, 1, radio.KindBeacon, 0, []byte{1, 2, 3})
	if got := n.Ledger.Node(int(model.Sink)); got != 0 {
		t.Errorf("sink charged %v µJ; it is mains powered", got)
	}
	if n.Ledger.Node(1) <= 0 {
		t.Error("child receiver not charged for rx")
	}
}

func TestBroadcastDownReachesAll(t *testing.T) {
	n := fig1Network(t)
	reached := n.BroadcastDown(radio.KindBeacon, 0, nil)
	if len(reached) != 10 {
		t.Fatalf("reached %d nodes, want 10", len(reached))
	}
	// 9 edges -> 9 beacon messages.
	if got := n.Counter.Messages[radio.KindBeacon]; got != 9 {
		t.Errorf("beacon messages = %d, want 9", got)
	}
}

func TestBroadcastDownPerChildPayload(t *testing.T) {
	n := fig1Network(t)
	n.BroadcastDown(radio.KindBeacon, 0, func(c model.NodeID) []byte {
		return make([]byte, int(c)) // child i gets an i-byte payload
	})
	total := 0
	for c := model.NodeID(1); c <= 9; c++ {
		total += int(c) + radio.DefaultHeaderSize
	}
	if got := n.Counter.TxBytes[radio.KindBeacon]; got != total {
		t.Errorf("beacon bytes = %d, want %d", got, total)
	}
}

func TestRouteToSinkMultihop(t *testing.T) {
	n := fig1Network(t)
	// s6 is at depth 4 (6->5->4->1->0): 4 hops.
	if !n.RouteToSink(6, radio.KindData, 0, make([]byte, 8)) {
		t.Fatal("RouteToSink failed")
	}
	if got := n.Counter.TotalMessages(); got != 4 {
		t.Errorf("messages = %d, want 4 (one per hop)", got)
	}
	// Every hop retransmits the same 8+7 bytes.
	if got := n.Counter.TotalTxBytes(); got != 4*(8+radio.DefaultHeaderSize) {
		t.Errorf("tx bytes = %d", got)
	}
}

func TestBudgetsKillNodes(t *testing.T) {
	p := trace.Figure1Placement()
	tree := trace.Figure1Tree()
	links := topo.NewLinks()
	for child, parent := range tree.Parent {
		links.Connect(child, parent)
	}
	opts := DefaultOptions()
	opts.BudgetJoules = 1e-6 // 1 µJ: dies on first transmission
	n := FromTree(p, links, tree, opts)
	if !n.SendUp(3, radio.KindData, 0, make([]byte, 8)) {
		t.Fatal("first send should succeed (budget spends into the red)")
	}
	if n.Alive(3) {
		t.Fatal("node 3 should be dead after exceeding its 1 µJ budget")
	}
	if n.SendUp(3, radio.KindData, 1, make([]byte, 8)) {
		t.Fatal("dead node transmitted")
	}
}

func TestDeadReceiverDropsMessage(t *testing.T) {
	p := trace.Figure1Placement()
	tree := trace.Figure1Tree()
	links := topo.NewLinks()
	for child, parent := range tree.Parent {
		links.Connect(child, parent)
	}
	opts := DefaultOptions()
	opts.BudgetJoules = 2e-5
	n := FromTree(p, links, tree, opts)
	n.Budgets[1].Spend(1e9) // kill s1
	if n.SendUp(3, radio.KindData, 0, make([]byte, 4)) {
		t.Fatal("message delivered to a dead parent")
	}
}

func TestChargeSenseAndIdle(t *testing.T) {
	n := fig1Network(t)
	n.ChargeSense(5)
	if n.Ledger.Node(5) != n.Energy.SenseCost {
		t.Errorf("sense charge = %v", n.Ledger.Node(5))
	}
	before := n.Ledger.Total()
	n.ChargeIdleEpoch()
	want := before + 9*n.Energy.IdlePerEpoch
	if got := n.Ledger.Total(); got != want {
		t.Errorf("after idle: %v, want %v", got, want)
	}
	// Sink is not idle-charged.
	if n.Ledger.Node(0) != 0 {
		t.Error("sink idle-charged")
	}
}

func TestSnapshotDelta(t *testing.T) {
	n := fig1Network(t)
	s0 := n.Snap()
	n.SendUp(3, radio.KindData, 0, make([]byte, 10))
	d := n.Delta(s0)
	if d.Messages != 1 || d.TxBytes != 10+radio.DefaultHeaderSize {
		t.Errorf("delta = %+v", d)
	}
	if d.EnergyUJ <= 0 {
		t.Error("delta energy not positive")
	}
}

func TestReset(t *testing.T) {
	n := fig1Network(t)
	n.SendUp(3, radio.KindData, 0, make([]byte, 10))
	n.Reset()
	if n.Counter.TotalMessages() != 0 || n.Ledger.Total() != 0 {
		t.Error("Reset did not clear accounting")
	}
}

func TestDeliveredHook(t *testing.T) {
	n := fig1Network(t)
	var got []radio.Message
	n.Delivered = func(m radio.Message) { got = append(got, m) }
	n.SendUp(3, radio.KindData, 7, []byte{1})
	if len(got) != 1 || got[0].From != 3 || got[0].Epoch != 7 {
		t.Errorf("hook saw %v", got)
	}
}

func TestLossyBroadcastDarkSubtree(t *testing.T) {
	p := trace.Figure1Placement()
	tree := trace.Figure1Tree()
	links := topo.NewLinks()
	for child, parent := range tree.Parent {
		links.Connect(child, parent)
	}
	opts := DefaultOptions()
	opts.Radio.LossRate = 0.995
	opts.Radio.MaxRetries = 0
	opts.Radio.Seed = 3
	n := FromTree(p, links, tree, opts)
	reached := n.BroadcastDown(radio.KindBeacon, 0, nil)
	if len(reached) >= 10 {
		t.Fatalf("a 99.5%% lossy beacon reached everyone (%d)", len(reached))
	}
	// A node can only be reached if its parent was.
	for id := range reached {
		if id == model.Sink {
			continue
		}
		if !reached[tree.Parent[id]] {
			t.Fatalf("node %d reached but parent %d was not", id, tree.Parent[id])
		}
	}
}
