package topo

import (
	"math"
	"testing"

	"kspot/internal/model"
)

func TestPointDist(t *testing.T) {
	if d := (Point{0, 0}).Dist(Point{3, 4}); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := (Point{1, 1}).Dist(Point{1, 1}); d != 0 {
		t.Errorf("Dist = %v, want 0", d)
	}
}

func TestGrid(t *testing.T) {
	p, err := Grid(9, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.SensorNodes()); got != 9 {
		t.Fatalf("sensors = %d, want 9", got)
	}
	if _, ok := p.Positions[model.Sink]; !ok {
		t.Fatal("sink not placed")
	}
	if _, err := Grid(10, 1); err == nil {
		t.Error("Grid(10) should fail: not a perfect square")
	}
}

func TestUniformRandomDeterministic(t *testing.T) {
	a := UniformRandom(20, 100, 7)
	b := UniformRandom(20, 100, 7)
	for _, id := range a.Nodes() {
		if a.Positions[id] != b.Positions[id] {
			t.Fatalf("node %d position differs across same-seed runs", id)
		}
	}
	c := UniformRandom(20, 100, 8)
	same := true
	for _, id := range a.SensorNodes() {
		if a.Positions[id] != c.Positions[id] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical placements")
	}
}

func TestRooms(t *testing.T) {
	p := Rooms(4, 3, 20, 1)
	if got := len(p.SensorNodes()); got != 12 {
		t.Fatalf("sensors = %d, want 12", got)
	}
	sizes := p.GroupSize()
	if len(sizes) != 4 {
		t.Fatalf("groups = %d, want 4", len(sizes))
	}
	for g, n := range sizes {
		if n != 3 {
			t.Errorf("group %d size = %d, want 3", g, n)
		}
	}
	if p.Names[1] != "Room A" {
		t.Errorf("group 1 name = %q", p.Names[1])
	}
	// Sensors of room 1 must be inside room 1's square.
	for _, id := range p.GroupMembers()[1] {
		pos := p.Positions[id]
		if pos.X < 0 || pos.X > 20 || pos.Y < 0 || pos.Y > 20 {
			t.Errorf("node %d of room 1 at %+v outside its room", id, pos)
		}
	}
}

func TestRegroup(t *testing.T) {
	p := UniformRandom(10, 100, 1)
	p.RegroupRoundRobin(3)
	sizes := p.GroupSize()
	if len(sizes) != 3 {
		t.Fatalf("round robin groups = %d", len(sizes))
	}
	p.RegroupContiguous(5)
	if got := len(p.GroupSize()); got != 5 {
		t.Fatalf("contiguous groups = %d", got)
	}
	ids := p.GroupIDs()
	if len(ids) != 5 || ids[0] != 1 {
		t.Errorf("GroupIDs = %v", ids)
	}
}

func TestDiskLinksSymmetric(t *testing.T) {
	p := UniformRandom(30, 100, 3)
	l := DiskLinks(p, 30)
	for _, a := range p.Nodes() {
		for _, b := range l.Neighbors(a) {
			if !l.Connected(b, a) {
				t.Fatalf("link %d-%d not symmetric", a, b)
			}
			if p.Positions[a].Dist(p.Positions[b]) > 30 {
				t.Fatalf("link %d-%d exceeds radius", a, b)
			}
		}
	}
	if l.Connected(1, 1) {
		t.Error("self link")
	}
}

func buildConnected(t *testing.T, n int, seed int64) (*Placement, *Links, *Tree) {
	t.Helper()
	p := UniformRandom(n, 100, seed)
	l := DiskLinks(p, 35)
	tree, err := BuildTree(p, l)
	if err != nil {
		t.Skipf("random topology disconnected (seed %d): %v", seed, err)
	}
	return p, l, tree
}

func TestBuildTreeInvariants(t *testing.T) {
	p, _, tree := buildConnected(t, 40, 11)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.Size() != len(p.Nodes()) {
		t.Fatalf("tree size %d, nodes %d", tree.Size(), len(p.Nodes()))
	}
	if tree.Depth[model.Sink] != 0 {
		t.Fatal("sink depth nonzero")
	}
}

func TestBuildTreeDisconnected(t *testing.T) {
	p := NewPlacement()
	p.Positions[model.Sink] = Point{0, 0}
	p.Positions[1] = Point{1000, 1000}
	p.Groups[1] = 1
	l := DiskLinks(p, 10)
	if _, err := BuildTree(p, l); err == nil {
		t.Fatal("disconnected topology must fail tree construction")
	}
}

func TestPostPreOrder(t *testing.T) {
	_, _, tree := buildConnected(t, 40, 11)
	post := tree.PostOrder()
	seen := map[model.NodeID]bool{}
	for _, n := range post {
		for _, c := range tree.Children[n] {
			if !seen[c] {
				t.Fatalf("post-order: child %d of %d not yet seen", c, n)
			}
		}
		seen[n] = true
	}
	pre := tree.PreOrder()
	if pre[0] != model.Sink {
		t.Fatal("pre-order must start at sink")
	}
	if post[len(post)-1] != model.Sink {
		t.Fatal("post-order must end at sink")
	}
}

func TestLevelsMatchPostOrder(t *testing.T) {
	_, l, tree := buildConnected(t, 40, 11)
	check := func() {
		levels := tree.Levels()
		if len(levels) != tree.MaxDepth()+1 {
			t.Fatalf("levels = %d, want %d", len(levels), tree.MaxDepth()+1)
		}
		// Concatenating deepest→shallowest must reproduce PostOrder exactly:
		// that identity is what lets the parallel sweep commit level by level
		// in id order and still match the sequential run byte for byte.
		var cat []model.NodeID
		for d := len(levels) - 1; d >= 0; d-- {
			for i, id := range levels[d] {
				if tree.Depth[id] != d {
					t.Fatalf("node %d in level %d has depth %d", id, d, tree.Depth[id])
				}
				if i > 0 && levels[d][i-1] >= id {
					t.Fatalf("level %d not id-sorted at %d", d, i)
				}
			}
			cat = append(cat, levels[d]...)
		}
		post := tree.PostOrder()
		if len(cat) != len(post) {
			t.Fatalf("levels hold %d nodes, post-order %d", len(cat), len(post))
		}
		for i := range cat {
			if cat[i] != post[i] {
				t.Fatalf("levels concat diverges from post-order at %d: %d vs %d", i, cat[i], post[i])
			}
		}
	}
	check()
	// Structural mutation must invalidate the cache, like post/pre.
	var victim model.NodeID
	for n := range tree.Parent {
		if len(tree.Children[n]) == 0 {
			victim = n
			break
		}
	}
	tree.RemoveNode(victim, l)
	check()
}

func TestSubtreeAndPath(t *testing.T) {
	_, _, tree := buildConnected(t, 40, 11)
	whole := tree.Subtree(model.Sink)
	if len(whole) != tree.Size() {
		t.Fatalf("sink subtree = %d, want %d", len(whole), tree.Size())
	}
	for n := range tree.Depth {
		path := tree.PathToRoot(n)
		if path[len(path)-1] != model.Sink {
			t.Fatalf("path from %d does not reach sink: %v", n, path)
		}
		if len(path) != tree.Depth[n]+1 {
			t.Fatalf("path length %d, depth %d", len(path), tree.Depth[n])
		}
	}
}

func TestRemoveNodeReparents(t *testing.T) {
	p, l, tree := buildConnected(t, 40, 11)
	// Pick an internal node with children.
	var victim model.NodeID
	for n, cs := range tree.Children {
		if n != model.Sink && len(cs) > 0 {
			victim = n
			break
		}
	}
	if victim == 0 {
		t.Skip("no internal node to remove")
	}
	before := tree.Size()
	orphans := tree.RemoveNode(victim, l)
	if err := tree.Validate(); err != nil {
		t.Fatalf("after removal: %v", err)
	}
	// Exact accounting: every node that left the tree is either the victim
	// or a reported orphan — nothing vanishes silently.
	if tree.Size()+1+len(orphans) != before {
		t.Fatalf("size %d + victim + %d orphans != %d before (unreported detachment)",
			tree.Size(), len(orphans), before)
	}
	if _, ok := tree.Depth[victim]; ok {
		t.Fatal("victim still in tree")
	}
	_ = p
}

func TestRemoveSinkPanics(t *testing.T) {
	_, l, tree := buildConnected(t, 20, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("removing the sink must panic")
		}
	}()
	tree.RemoveNode(model.Sink, l)
}

func TestGroupMasterFigure1(t *testing.T) {
	// Build the Figure 1 tree by hand:
	// sink -> s1, s2; s1 -> s3(?); use a simple chain-ish topology instead:
	// sink(0) -- 1 -- {3,4}; sink -- 2 -- {5}; groups: g1={3,4}, g2={5},
	// g3={1,2}. Master of g1 is 1; master of g2 is 5's LCA = 5... LCA of a
	// single-member group is the member itself.
	p := NewPlacement()
	pts := map[model.NodeID]Point{0: {0, 0}, 1: {10, 0}, 2: {0, 10}, 3: {20, 0}, 4: {10, 10}, 5: {0, 20}}
	for id, pt := range pts {
		p.Positions[id] = pt
	}
	p.Groups[3] = 1
	p.Groups[4] = 1
	p.Groups[5] = 2
	p.Groups[1] = 3
	p.Groups[2] = 3
	l := NewLinks()
	l.Connect(0, 1)
	l.Connect(0, 2)
	l.Connect(1, 3)
	l.Connect(1, 4)
	l.Connect(2, 5)
	tree, err := BuildTree(p, l)
	if err != nil {
		t.Fatal(err)
	}
	masters := GroupMaster(tree, p)
	if masters[1] != 1 {
		t.Errorf("master of g1 = %d, want 1", masters[1])
	}
	if masters[2] != 5 {
		t.Errorf("master of g2 = %d, want 5", masters[2])
	}
	if masters[3] != 0 {
		t.Errorf("master of g3 = %d, want sink (LCA of 1 and 2)", masters[3])
	}
}

func TestMaxDepth(t *testing.T) {
	_, _, tree := buildConnected(t, 40, 11)
	md := tree.MaxDepth()
	for _, d := range tree.Depth {
		if d > md {
			t.Fatalf("depth %d exceeds MaxDepth %d", d, md)
		}
	}
	if md <= 0 {
		t.Fatalf("MaxDepth = %d", md)
	}
}

func TestGroupMasterAboveCompletesValues(t *testing.T) {
	p := Rooms(4, 2, 15, 9)
	l := DiskLinks(p, 25)
	tree, err := BuildTree(p, l)
	if err != nil {
		t.Skip("rooms topology disconnected at this radius")
	}
	masters := GroupMaster(tree, p)
	members := p.GroupMembers()
	for g, m := range masters {
		sub := tree.Subtree(m)
		for _, member := range members[g] {
			if !sub[member] {
				t.Errorf("group %d master %d does not cover member %d", g, m, member)
			}
		}
	}
}

func TestLifetimeHelperNaN(t *testing.T) {
	// Guard: Dist of identical points is exactly 0, never NaN.
	if v := (Point{3, 3}).Dist(Point{3, 3}); math.IsNaN(v) {
		t.Fatal("Dist produced NaN")
	}
}

// TestRemoveNodeReportsSweptSiblings pins the orphan-accounting fix: a
// sibling that re-parents INTO a subtree that later strands is swept away
// with it and must be reported, not silently vanish. Node 2 dies; child 3
// re-parents under 5 (its only surviving neighbor, inside 4's subtree);
// child 4 then finds no parent and strands — taking 5 AND the re-parented
// 3 with it. The report must name all three.
func TestRemoveNodeReportsSweptSiblings(t *testing.T) {
	tree := &Tree{
		Parent:   map[model.NodeID]model.NodeID{2: 0, 3: 2, 4: 2, 5: 4},
		Children: map[model.NodeID][]model.NodeID{0: {2}, 2: {3, 4}, 4: {5}},
		Depth:    map[model.NodeID]int{0: 0, 2: 1, 3: 2, 4: 2, 5: 3},
		Root:     model.Sink,
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	links := NewLinks()
	links.Connect(0, 2)
	links.Connect(2, 3)
	links.Connect(2, 4)
	links.Connect(4, 5)
	links.Connect(3, 5)

	orphans := tree.RemoveNode(2, links)
	want := []model.NodeID{3, 4, 5}
	if len(orphans) != len(want) {
		t.Fatalf("orphans = %v, want %v (swept sibling must be reported)", orphans, want)
	}
	for i := range want {
		if orphans[i] != want[i] {
			t.Fatalf("orphans = %v, want %v", orphans, want)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("tree invalid after removal: %v", err)
	}
	if tree.Size() != 1 {
		t.Fatalf("tree size = %d, want 1 (sink only)", tree.Size())
	}
}
