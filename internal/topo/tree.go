package topo

import (
	"fmt"
	"math"
	"sort"

	"kspot/internal/model"
)

// Links is the symmetric connectivity relation: which pairs of nodes can
// hear each other.
type Links struct {
	adj map[model.NodeID]map[model.NodeID]bool
}

// NewLinks returns an empty link set.
func NewLinks() *Links { return &Links{adj: make(map[model.NodeID]map[model.NodeID]bool)} }

// Connect adds a bidirectional link.
func (l *Links) Connect(a, b model.NodeID) {
	if a == b {
		return
	}
	if l.adj[a] == nil {
		l.adj[a] = make(map[model.NodeID]bool)
	}
	if l.adj[b] == nil {
		l.adj[b] = make(map[model.NodeID]bool)
	}
	l.adj[a][b] = true
	l.adj[b][a] = true
}

// Connected reports whether a and b share a link.
func (l *Links) Connected(a, b model.NodeID) bool { return l.adj[a][b] }

// Neighbors returns a node's neighbors, sorted for determinism.
func (l *Links) Neighbors(a model.NodeID) []model.NodeID {
	ns := make([]model.NodeID, 0, len(l.adj[a]))
	for n := range l.adj[a] {
		ns = append(ns, n)
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return ns
}

// DiskLinks builds unit-disk connectivity: two nodes are linked iff their
// distance is at most radius (the MICA2's usable indoor range for a given
// power setting).
func DiskLinks(p *Placement, radius float64) *Links {
	l := NewLinks()
	ids := p.Nodes()
	for i, a := range ids {
		for _, b := range ids[i+1:] {
			if p.Positions[a].Dist(p.Positions[b]) <= radius {
				l.Connect(a, b)
			}
		}
	}
	return l
}

// Tree is the TAG-style routing tree rooted at the sink. Every KSpot message
// travels along tree edges: views and answers up, queries and γ beacons down.
type Tree struct {
	Parent   map[model.NodeID]model.NodeID
	Children map[model.NodeID][]model.NodeID
	Depth    map[model.NodeID]int
	Root     model.NodeID

	// post/pre cache the traversal orders: the epoch hot path walks the
	// tree once per sweep and must not re-sort the node set every time.
	// Structural mutation (RemoveNode) invalidates them.
	post, pre []model.NodeID

	// levels caches the per-depth slices of PostOrder (levels[d] holds the
	// depth-d nodes in ascending id order) for the level-synchronous sweep.
	// Invalidated together with post/pre.
	levels [][]model.NodeID
}

// BuildTree runs the first-heard BFS tree construction of TAG: the sink
// broadcasts a beacon; each node adopts as parent the first (lowest-id at
// equal depth) neighbor it hears the beacon from. Nodes unreachable from the
// sink are reported as an error — a deployment bug the Configuration Panel
// would surface.
func BuildTree(p *Placement, links *Links) (*Tree, error) {
	t := &Tree{
		Parent:   make(map[model.NodeID]model.NodeID),
		Children: make(map[model.NodeID][]model.NodeID),
		Depth:    make(map[model.NodeID]int),
		Root:     model.Sink,
	}
	t.Depth[model.Sink] = 0
	frontier := []model.NodeID{model.Sink}
	visited := map[model.NodeID]bool{model.Sink: true}
	for len(frontier) > 0 {
		var next []model.NodeID
		// Deterministic order: lower-id nodes claim children first, which is
		// the "first heard" rule with ties broken by id.
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
		for _, u := range frontier {
			for _, v := range links.Neighbors(u) {
				if visited[v] {
					continue
				}
				visited[v] = true
				t.Parent[v] = u
				t.Depth[v] = t.Depth[u] + 1
				t.Children[u] = append(t.Children[u], v)
				next = append(next, v)
			}
		}
		frontier = next
	}
	for _, id := range p.Nodes() {
		if !visited[id] {
			return nil, fmt.Errorf("topo: node %d unreachable from sink", id)
		}
	}
	for _, cs := range t.Children {
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	}
	return t, nil
}

// Size returns the number of nodes in the tree.
func (t *Tree) Size() int { return len(t.Depth) }

// MaxDepth returns the height of the tree.
func (t *Tree) MaxDepth() int {
	m := 0
	for _, d := range t.Depth {
		if d > m {
			m = d
		}
	}
	return m
}

// PostOrder returns nodes deepest-first (children strictly before parents):
// the order in which the epoch up-sweep processes transmissions, mirroring
// TAG's depth-indexed TDMA schedule. The slice is cached and shared —
// callers must not modify it.
func (t *Tree) PostOrder() []model.NodeID {
	if t.post == nil {
		ids := make([]model.NodeID, 0, len(t.Depth))
		for id := range t.Depth {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			if t.Depth[ids[i]] != t.Depth[ids[j]] {
				return t.Depth[ids[i]] > t.Depth[ids[j]]
			}
			return ids[i] < ids[j]
		})
		t.post = ids
	}
	return t.post
}

// PreOrder returns nodes shallowest-first (parents before children): the
// order of the downstream beacon sweep. The slice is cached and shared —
// callers must not modify it.
func (t *Tree) PreOrder() []model.NodeID {
	if t.pre == nil {
		post := t.PostOrder()
		ids := make([]model.NodeID, len(post))
		for i, id := range post {
			ids[len(ids)-1-i] = id
		}
		t.pre = ids
	}
	return t.pre
}

// Levels returns the nodes grouped by depth: Levels()[d] holds every
// depth-d node in ascending id order, so concatenating the levels from
// deepest to shallowest reproduces PostOrder exactly. This is the unit of
// work of the level-synchronous sweep: all nodes within one level are
// independent (their receivers live one level up), so they may be computed
// concurrently as long as their transmissions commit in PostOrder position.
// The slices are cached and shared — callers must not modify them.
func (t *Tree) Levels() [][]model.NodeID {
	if t.levels == nil {
		post := t.PostOrder()
		levels := make([][]model.NodeID, t.MaxDepth()+1)
		for _, id := range post {
			d := t.Depth[id]
			levels[d] = append(levels[d], id)
		}
		t.levels = levels
	}
	return t.levels
}

// invalidateOrders drops the cached traversals after structural mutation.
func (t *Tree) invalidateOrders() { t.post, t.pre, t.levels = nil, nil, nil }

// Subtree returns the set of nodes in the subtree rooted at n (inclusive).
func (t *Tree) Subtree(n model.NodeID) map[model.NodeID]bool {
	out := map[model.NodeID]bool{n: true}
	stack := []model.NodeID{n}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range t.Children[u] {
			out[c] = true
			stack = append(stack, c)
		}
	}
	return out
}

// PathToRoot returns the nodes from n up to the root, inclusive of both.
func (t *Tree) PathToRoot(n model.NodeID) []model.NodeID {
	path := []model.NodeID{n}
	for n != t.Root {
		p, ok := t.Parent[n]
		if !ok {
			break
		}
		path = append(path, p)
		n = p
	}
	return path
}

// Validate checks structural invariants: single root, acyclic parent chains,
// child depth = parent depth + 1, children lists consistent with parents.
func (t *Tree) Validate() error {
	for n, p := range t.Parent {
		if t.Depth[n] != t.Depth[p]+1 {
			return fmt.Errorf("topo: node %d depth %d but parent %d depth %d", n, t.Depth[n], p, t.Depth[p])
		}
		found := false
		for _, c := range t.Children[p] {
			if c == n {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("topo: node %d missing from parent %d children", n, p)
		}
	}
	for n := range t.Depth {
		seen := map[model.NodeID]bool{}
		for cur := n; cur != t.Root; {
			if seen[cur] {
				return fmt.Errorf("topo: cycle through node %d", cur)
			}
			seen[cur] = true
			p, ok := t.Parent[cur]
			if !ok {
				return fmt.Errorf("topo: node %d has no path to root", n)
			}
			cur = p
		}
	}
	return nil
}

// RemoveNode detaches a failed node, re-parenting its children to the best
// surviving linked neighbor (smallest depth, then smallest id). Every node
// that ends up outside the tree — a child with no surviving neighbor, its
// entire subtree, and any sibling that re-parented INTO a subtree that
// later stranded — is reported as an orphan, sorted by id. This is the
// failure-injection hook for experiment E13-style runs.
//
// Callers must feed the report into recall accounting rather than just
// shrinking the deployment: an orphaned subtree keeps sensing (its nodes
// are alive) but its readings can no longer reach the sink, so from the
// next epoch on the answer set silently loses those readings while the
// oracle keeps seeing them — the gap is exactly what stats.Score's recall
// column measures (pinned by mint's TestOrphanRecallAccounting).
func (t *Tree) RemoveNode(dead model.NodeID, links *Links) (orphans []model.NodeID) {
	if dead == t.Root {
		panic("topo: cannot remove the sink")
	}
	t.invalidateOrders()
	children := append([]model.NodeID(nil), t.Children[dead]...)
	parent := t.Parent[dead]
	// Detach dead from its parent.
	t.Children[parent] = removeID(t.Children[parent], dead)
	delete(t.Parent, dead)
	delete(t.Depth, dead)
	delete(t.Children, dead)
	detached := map[model.NodeID]bool{}
	for _, c := range children {
		if detached[c] {
			// Defensive: a child swept away by an earlier sibling's detach
			// must not be re-attached — that would resurrect half-deleted
			// state. (Unreachable today: an unprocessed child still hangs
			// off dead, never inside a sibling's subtree.)
			continue
		}
		best := model.NodeID(0)
		bestDepth := math.MaxInt
		found := false
		for _, nb := range links.Neighbors(c) {
			if nb == dead {
				continue
			}
			d, alive := t.Depth[nb]
			if !alive || inSubtreeOf(t, nb, c) {
				continue
			}
			if d < bestDepth || (d == bestDepth && nb < best) {
				best, bestDepth, found = nb, d, true
			}
		}
		if !found {
			// The whole subtree strands — including any earlier sibling
			// that re-parented into it. Before this reported only c, and a
			// sibling swept away here vanished from the tree unreported,
			// silently shrinking every later answer set.
			detachSubtree(t, c, detached)
			continue
		}
		t.Parent[c] = best
		t.Children[best] = append(t.Children[best], c)
		sort.Slice(t.Children[best], func(i, j int) bool { return t.Children[best][i] < t.Children[best][j] })
		refreshDepths(t, c, bestDepth+1)
	}
	orphans = make([]model.NodeID, 0, len(detached))
	for id := range detached {
		orphans = append(orphans, id)
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i] < orphans[j] })
	return orphans
}

func inSubtreeOf(t *Tree, candidate, root model.NodeID) bool {
	return t.Subtree(root)[candidate]
}

func detachSubtree(t *Tree, n model.NodeID, detached map[model.NodeID]bool) {
	for id := range t.Subtree(n) {
		delete(t.Parent, id)
		delete(t.Depth, id)
		delete(t.Children, id)
		detached[id] = true
	}
}

func refreshDepths(t *Tree, n model.NodeID, depth int) {
	t.Depth[n] = depth
	for _, c := range t.Children[n] {
		refreshDepths(t, c, depth+1)
	}
}

func removeID(s []model.NodeID, id model.NodeID) []model.NodeID {
	out := s[:0]
	for _, v := range s {
		if v != id {
			out = append(out, v)
		}
	}
	return out
}

// GroupMaster returns, for each group, the lowest node in the tree that has
// the entire group in its subtree (the group's LCA). MINT's completeness
// pruning activates at and above this node.
func GroupMaster(t *Tree, p *Placement) map[model.GroupID]model.NodeID {
	members := p.GroupMembers()
	masters := make(map[model.GroupID]model.NodeID, len(members))
	for g, ms := range members {
		if len(ms) == 0 {
			continue
		}
		lca := ms[0]
		for _, m := range ms[1:] {
			lca = lowestCommonAncestor(t, lca, m)
		}
		masters[g] = lca
	}
	return masters
}

func lowestCommonAncestor(t *Tree, a, b model.NodeID) model.NodeID {
	da, db := t.Depth[a], t.Depth[b]
	for da > db {
		a = t.Parent[a]
		da--
	}
	for db > da {
		b = t.Parent[b]
		db--
	}
	for a != b {
		a = t.Parent[a]
		b = t.Parent[b]
	}
	return a
}
