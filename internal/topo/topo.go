// Package topo provides the physical-layout and routing substrate of the
// simulated sensor network: node placements (grid, uniform random, clustered
// rooms), unit-disk connectivity, and the TAG-style first-heard BFS routing
// tree along which all KSpot communication flows.
package topo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"kspot/internal/model"
)

// Point is a 2-D position in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Placement positions every node (including the sink, node 0) on the plane
// and assigns each non-sink node to a group (the paper's clusters / rooms).
// The sink carries no group.
type Placement struct {
	Positions map[model.NodeID]Point
	Groups    map[model.NodeID]model.GroupID
	// Names optionally labels groups for display ("Auditorium", "Room A").
	Names map[model.GroupID]string
}

// NewPlacement returns an empty placement.
func NewPlacement() *Placement {
	return &Placement{
		Positions: make(map[model.NodeID]Point),
		Groups:    make(map[model.NodeID]model.GroupID),
		Names:     make(map[model.GroupID]string),
	}
}

// Nodes returns all node ids, sorted, sink first.
func (p *Placement) Nodes() []model.NodeID {
	ids := make([]model.NodeID, 0, len(p.Positions))
	for id := range p.Positions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// SensorNodes returns all non-sink node ids, sorted.
func (p *Placement) SensorNodes() []model.NodeID {
	var out []model.NodeID
	for _, id := range p.Nodes() {
		if id != model.Sink {
			out = append(out, id)
		}
	}
	return out
}

// GroupSize returns the number of sensors assigned to each group. MINT's
// completeness detection (group-master pruning) reads these from the
// scenario configuration, exactly as the paper's Configuration Panel
// declares cluster membership up front.
func (p *Placement) GroupSize() map[model.GroupID]int {
	sizes := make(map[model.GroupID]int)
	for id, g := range p.Groups {
		if id == model.Sink {
			continue
		}
		sizes[g]++
	}
	return sizes
}

// GroupMembers returns the sensors in each group, sorted.
func (p *Placement) GroupMembers() map[model.GroupID][]model.NodeID {
	m := make(map[model.GroupID][]model.NodeID)
	for _, id := range p.SensorNodes() {
		g := p.Groups[id]
		m[g] = append(m[g], id)
	}
	return m
}

// GroupIDs returns the distinct group ids, sorted.
func (p *Placement) GroupIDs() []model.GroupID {
	seen := make(map[model.GroupID]bool)
	for _, id := range p.SensorNodes() {
		seen[p.Groups[id]] = true
	}
	gs := make([]model.GroupID, 0, len(seen))
	for g := range seen {
		gs = append(gs, g)
	}
	sort.Slice(gs, func(i, j int) bool { return gs[i] < gs[j] })
	return gs
}

// Grid places n sensors on a √n x √n grid with the given spacing, the sink
// at the origin corner. n must be a perfect square.
func Grid(n int, spacing float64) (*Placement, error) {
	side := int(math.Round(math.Sqrt(float64(n))))
	if side*side != n {
		return nil, fmt.Errorf("topo: Grid needs a perfect square, got %d", n)
	}
	p := NewPlacement()
	p.Positions[model.Sink] = Point{0, 0}
	id := model.NodeID(1)
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			p.Positions[id] = Point{X: float64(c+1) * spacing, Y: float64(r) * spacing}
			p.Groups[id] = model.GroupID(1) // caller regroups as needed
			id++
		}
	}
	return p, nil
}

// UniformRandom scatters n sensors uniformly over a side x side field, sink
// at the center. Deterministic for a given seed.
func UniformRandom(n int, side float64, seed int64) *Placement {
	rng := rand.New(rand.NewSource(seed))
	p := NewPlacement()
	p.Positions[model.Sink] = Point{side / 2, side / 2}
	for i := 1; i <= n; i++ {
		p.Positions[model.NodeID(i)] = Point{rng.Float64() * side, rng.Float64() * side}
		p.Groups[model.NodeID(i)] = model.GroupID(1)
	}
	return p
}

// Rooms lays out g rooms on a ceil(√g) grid of roomSide-sized rooms, placing
// perRoom sensors uniformly inside each room; room r is group r+1. The sink
// sits at the building's entrance (origin). This is the paper's 4-room
// building generalized.
func Rooms(g, perRoom int, roomSide float64, seed int64) *Placement {
	rng := rand.New(rand.NewSource(seed))
	p := NewPlacement()
	p.Positions[model.Sink] = Point{0, 0}
	cols := int(math.Ceil(math.Sqrt(float64(g))))
	id := model.NodeID(1)
	for room := 0; room < g; room++ {
		gx := float64(room%cols) * roomSide
		gy := float64(room/cols) * roomSide
		group := model.GroupID(room + 1)
		p.Names[group] = fmt.Sprintf("Room %c", 'A'+room%26)
		for s := 0; s < perRoom; s++ {
			p.Positions[id] = Point{
				X: gx + 0.1*roomSide + 0.8*roomSide*rng.Float64(),
				Y: gy + 0.1*roomSide + 0.8*roomSide*rng.Float64(),
			}
			p.Groups[id] = group
			id++
		}
	}
	return p
}

// RegroupRoundRobin reassigns sensors to g groups in node-id order. Useful
// for grid/random placements where groups are logical, not spatial.
func (p *Placement) RegroupRoundRobin(g int) {
	if g < 1 {
		g = 1
	}
	for i, id := range p.SensorNodes() {
		p.Groups[id] = model.GroupID(i%g + 1)
	}
}

// RegroupContiguous assigns sensors to g groups in contiguous id blocks, so
// that groups tend to be spatially coherent on grid layouts.
func (p *Placement) RegroupContiguous(g int) {
	ids := p.SensorNodes()
	if g < 1 {
		g = 1
	}
	per := (len(ids) + g - 1) / g
	for i, id := range ids {
		p.Groups[id] = model.GroupID(i/per + 1)
	}
}
