package trace

import (
	"math"
	"testing"

	"kspot/internal/model"
	"kspot/internal/topo"
)

func TestFixtureReplay(t *testing.T) {
	f := NewFixture(map[model.NodeID][]model.Value{
		1: {10, 20, 30},
		2: {5},
	})
	if got := f.Sample(1, 0); got != 10 {
		t.Errorf("Sample(1,0) = %v", got)
	}
	if got := f.Sample(1, 2); got != 30 {
		t.Errorf("Sample(1,2) = %v", got)
	}
	if got := f.Sample(1, 99); got != 30 {
		t.Errorf("epochs beyond table must repeat last, got %v", got)
	}
	if got := f.Sample(2, 5); got != 5 {
		t.Errorf("Sample(2,5) = %v", got)
	}
	if got := f.Sample(3, 0); got != 0 {
		t.Errorf("missing node must read 0, got %v", got)
	}
}

func TestFixtureIsolatedFromCaller(t *testing.T) {
	src := map[model.NodeID][]model.Value{1: {10}}
	f := NewFixture(src)
	src[1][0] = 99
	if got := f.Sample(1, 0); got != 10 {
		t.Errorf("fixture shares memory with caller: %v", got)
	}
}

func TestRoomActivityDeterministic(t *testing.T) {
	groups := map[model.NodeID]model.GroupID{1: 1, 2: 1, 3: 2}
	a := NewRoomActivity(7, groups, 2)
	b := NewRoomActivity(7, groups, 2)
	for e := model.Epoch(0); e < 50; e++ {
		for n := model.NodeID(1); n <= 3; n++ {
			if a.Sample(n, e) != b.Sample(n, e) {
				t.Fatalf("non-deterministic at node %d epoch %d", n, e)
			}
		}
	}
}

func TestRoomActivityBounds(t *testing.T) {
	groups := map[model.NodeID]model.GroupID{}
	for i := model.NodeID(1); i <= 20; i++ {
		groups[i] = model.GroupID(i%5 + 1)
	}
	src := NewRoomActivity(3, groups, 5)
	for e := model.Epoch(0); e < 200; e++ {
		for n := model.NodeID(1); n <= 20; n++ {
			v := float64(src.Sample(n, e))
			if v < 0 || v > 100 {
				t.Fatalf("sound level %v out of [0,100]", v)
			}
		}
	}
}

func TestRoomActivityNodesShareRoomBase(t *testing.T) {
	groups := map[model.NodeID]model.GroupID{1: 1, 2: 1, 3: 2}
	src := NewRoomActivity(11, groups, 2)
	// Two sensors in the same room must read similar values (within jitter).
	diffSame, diffOther := 0.0, 0.0
	for e := model.Epoch(0); e < 100; e++ {
		diffSame += math.Abs(float64(src.Sample(1, e) - src.Sample(2, e)))
		diffOther += math.Abs(float64(src.Sample(1, e) - src.Sample(3, e)))
	}
	if diffSame >= diffOther {
		t.Errorf("same-room divergence %v >= cross-room %v", diffSame, diffOther)
	}
}

func TestDiurnalCycle(t *testing.T) {
	d := NewDiurnal(5)
	d.Noise = 0
	d.NodeSpread = 0
	coolest := d.Sample(1, d.EpochsPerDay/4*0) // epoch 0: sin(-pi/2) = -1
	warmest := d.Sample(1, d.EpochsPerDay/2)   // midday
	if coolest >= warmest {
		t.Errorf("diurnal cycle inverted: %v >= %v", coolest, warmest)
	}
	// Periodicity.
	if d.Sample(1, 0) != d.Sample(1, d.EpochsPerDay) {
		t.Error("diurnal not periodic")
	}
}

func TestRandomWalkBounds(t *testing.T) {
	w := NewRandomWalk(9, 0, 100)
	for e := model.Epoch(0); e < 300; e++ {
		v := float64(w.Sample(3, e))
		if v < 0 || v > 100 {
			t.Fatalf("walk out of bounds: %v", v)
		}
	}
}

func TestRandomWalkContinuity(t *testing.T) {
	w := NewRandomWalk(9, 0, 100)
	for e := model.Epoch(1); e < 100; e++ {
		delta := math.Abs(float64(w.Sample(3, e) - w.Sample(3, e-1)))
		if delta > 2*w.StepSize+1e-9 {
			t.Fatalf("walk jumped %v at epoch %d (step %v)", delta, e, w.StepSize)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	groups := map[model.NodeID]model.GroupID{1: 1, 2: 2, 3: 4, 4: 8}
	z := NewZipf(3, groups, 1.5, 1000)
	v1 := float64(z.Sample(1, 0))
	v4 := float64(z.Sample(4, 0))
	if v1 <= v4 {
		t.Errorf("group 1 (%v) must dominate group 8 (%v)", v1, v4)
	}
}

func TestZipfClampsExponent(t *testing.T) {
	z := NewZipf(1, map[model.NodeID]model.GroupID{1: 1}, 0.5, 100)
	if z.S <= 1 {
		t.Errorf("exponent not clamped: %v", z.S)
	}
}

func TestUniformRange(t *testing.T) {
	u := &Uniform{Seed: 2, Min: 10, Max: 20}
	for e := model.Epoch(0); e < 500; e++ {
		v := float64(u.Sample(1, e))
		if v < 10 || v >= 20 {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
}

func TestSeries(t *testing.T) {
	u := &Uniform{Seed: 2, Min: 0, Max: 1}
	s := Series(u, []model.NodeID{1, 2}, 10)
	if len(s) != 2 || len(s[1]) != 10 {
		t.Fatalf("series shape: %d nodes, %d epochs", len(s), len(s[1]))
	}
	if s[1][3] != u.Sample(1, 3) {
		t.Error("series disagrees with source")
	}
}

func TestFigure1Fixture(t *testing.T) {
	p := Figure1Placement()
	if got := len(p.SensorNodes()); got != 9 {
		t.Fatalf("sensors = %d, want 9", got)
	}
	sizes := p.GroupSize()
	if sizes[Fig1RoomA] != 2 || sizes[Fig1RoomB] != 2 || sizes[Fig1RoomC] != 2 || sizes[Fig1RoomD] != 3 {
		t.Fatalf("room sizes = %v", sizes)
	}
	vals := Figure1Values()
	v := model.NewView()
	for n, val := range vals {
		v.Add(model.Reading{Node: n, Group: p.Groups[n], Value: val})
	}
	if got, want := v.TopK(model.AggAvg, 4), Figure1Answers(); !model.EqualAnswers(got, want) {
		t.Fatalf("Figure 1 ranking = %v, want %v", got, want)
	}
}

func TestFigure1TreeMatchesFigure(t *testing.T) {
	tree := Figure1Tree()
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.Parent[9] != 4 {
		t.Errorf("s9's parent = %d, want s4 (the figure's crucial edge)", tree.Parent[9])
	}
	if tree.Parent[1] != 0 || tree.Parent[2] != 0 {
		t.Error("s1 and s2 must be the sink's children")
	}
	if tree.Size() != 10 {
		t.Errorf("tree size = %d, want 10", tree.Size())
	}
}

func TestFigure1GroupMasters(t *testing.T) {
	p := Figure1Placement()
	tree := Figure1Tree()
	masters := topo.GroupMaster(tree, p)
	// Room D = {7,8,9}: s7,s8 under s2; s9 under s1 -> master is the sink.
	if masters[Fig1RoomD] != model.Sink {
		t.Errorf("room D master = %d, want sink", masters[Fig1RoomD])
	}
	// Room C = {5,6}: both under s5 -> master s5.
	if masters[Fig1RoomC] != 5 {
		t.Errorf("room C master = %d, want 5", masters[Fig1RoomC])
	}
}

func TestFigure3Fixture(t *testing.T) {
	p := Figure3Placement()
	if got := len(p.SensorNodes()); got != 14 {
		t.Fatalf("sensors = %d, want 14", got)
	}
	if got := len(p.GroupIDs()); got != 6 {
		t.Fatalf("clusters = %d, want 6", got)
	}
	if p.Names[1] != "Auditorium" {
		t.Errorf("cluster 1 = %q", p.Names[1])
	}
	src := Figure3Source(1)
	v := src.Sample(1, 0)
	if v < 0 || v > 100 {
		t.Errorf("figure-3 source out of range: %v", v)
	}
}

func TestPerm(t *testing.T) {
	a, b := Perm(5, 10), Perm(5, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Perm not deterministic")
		}
	}
	seen := map[int]bool{}
	for _, v := range a {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatal("Perm not a permutation")
	}
}
