package trace

import "kspot/internal/model"

// WindowAgg derives a source whose "reading" for a node at epoch e is the
// aggregate of the node's trailing base-source window ending at e — the
// node-local "search and filtering in the respective history window" of
// the paper's §III-B (GROUP BY ... WITH HISTORY queries filter locally
// before the in-network top-k runs). The derivation is a pure function of
// (node, epoch), so every substrate — deterministic, live, and a remote
// shard across a socket — derives bit-identical override readings.
func WindowAgg(base Source, window int, agg model.AggKind) Source {
	return &windowAggSource{base: base, window: window, agg: agg}
}

type windowAggSource struct {
	base   Source
	window int
	agg    model.AggKind
}

// Sample implements Source.
func (w *windowAggSource) Sample(node model.NodeID, e model.Epoch) model.Value {
	lo := 0
	if int(e) >= w.window {
		lo = int(e) - w.window + 1
	}
	p := model.Partial{}
	first := true
	for i := lo; i <= int(e); i++ {
		v := model.NewPartial(0, model.Quantize(w.base.Sample(node, model.Epoch(i))))
		if first {
			p = v
			first = false
		} else {
			p = p.Merge(v)
		}
	}
	return model.Quantize(p.Eval(w.agg))
}
