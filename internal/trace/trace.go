// Package trace generates synthetic sensor data. The paper's demo senses
// conference-room sound levels with MTS310 boards; we substitute seedable
// generators that exercise the same code paths: a room-occupancy sound
// model (active rooms are loud, empty rooms hum), a diurnal temperature
// field, a bounded random walk, Zipf-distributed hot spots, and exact
// fixtures for the paper's Figure 1 and Figure 3 scenarios.
//
// All generators are deterministic functions of (seed, node, epoch), so the
// concurrent runtime and the sequential simulator observe identical worlds.
package trace

import (
	"math"
	"math/rand"

	"kspot/internal/model"
)

// Source produces a reading value for a node at an epoch.
type Source interface {
	// Sample returns node's sensed value at epoch e.
	Sample(node model.NodeID, e model.Epoch) model.Value
}

// hash64 mixes a seed, node and epoch into a pseudo-random 64-bit value.
// SplitMix64 finalizer: cheap, stateless, and good enough for simulation.
func hash64(seed int64, node model.NodeID, e model.Epoch) uint64 {
	x := uint64(seed) ^ (uint64(node) << 32) ^ uint64(e)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// unit returns a uniform float in [0,1) from (seed,node,epoch).
func unit(seed int64, node model.NodeID, e model.Epoch) float64 {
	return float64(hash64(seed, node, e)>>11) / float64(1<<53)
}

// gauss returns an approximately standard normal deviate (sum of 4 uniforms,
// Irwin–Hall) — stateless, deterministic per (seed,node,epoch,salt).
func gauss(seed int64, node model.NodeID, e model.Epoch) float64 {
	s := 0.0
	for i := 0; i < 4; i++ {
		s += unit(seed+int64(i)*7919, node, e)
	}
	return (s - 2) * math.Sqrt(3) // variance of Irwin-Hall(4) is 4/12
}

// Fixture replays an explicit table of values: values[node][epoch]. Epochs
// beyond the table repeat the last column; nodes absent from the table read
// zero. Used for the paper's worked examples.
type Fixture struct {
	values map[model.NodeID][]model.Value
}

// NewFixture builds a fixture from explicit per-node series.
func NewFixture(values map[model.NodeID][]model.Value) *Fixture {
	cp := make(map[model.NodeID][]model.Value, len(values))
	for n, vs := range values {
		cp[n] = append([]model.Value(nil), vs...)
	}
	return &Fixture{values: cp}
}

// Sample implements Source.
func (f *Fixture) Sample(node model.NodeID, e model.Epoch) model.Value {
	vs := f.values[node]
	if len(vs) == 0 {
		return 0
	}
	if int(e) >= len(vs) {
		return vs[len(vs)-1]
	}
	return vs[e]
}

// RoomActivity models conference-room sound levels: each epoch a subset of
// rooms is "active" (a talk in progress) and reads loud (70–85%), the rest
// read ambient (35–45%). Activity changes every Period epochs, so the Top-K
// answer set migrates — the workload that exercises MINT's γ-violation
// reporting. Groups map rooms; node jitter differentiates sensors within a
// room.
type RoomActivity struct {
	Seed       int64
	Groups     map[model.NodeID]model.GroupID
	NumGroups  int
	ActiveFrac float64 // fraction of rooms active at a time (default 0.25)
	Period     model.Epoch
}

// NewRoomActivity constructs the generator. groups maps node → room; g is
// the room count.
func NewRoomActivity(seed int64, groups map[model.NodeID]model.GroupID, g int) *RoomActivity {
	return &RoomActivity{Seed: seed, Groups: groups, NumGroups: g, ActiveFrac: 0.25, Period: 10}
}

// Sample implements Source.
func (r *RoomActivity) Sample(node model.NodeID, e model.Epoch) model.Value {
	g := r.Groups[node]
	period := r.Period
	if period == 0 {
		period = 10
	}
	phase := e / period
	// Room activity: deterministic per (seed, group, phase).
	active := unit(r.Seed*31+int64(g)*17, model.NodeID(g), model.Epoch(phase)) < r.ActiveFrac
	var base float64
	if active {
		base = 70 + 15*unit(r.Seed+101, model.NodeID(g), model.Epoch(phase))
	} else {
		base = 35 + 10*unit(r.Seed+211, model.NodeID(g), model.Epoch(phase))
	}
	jitter := 2 * gauss(r.Seed+307, node, e)
	v := base + jitter
	if v < 0 {
		v = 0
	}
	if v > 100 {
		v = 100
	}
	return model.Value(v)
}

// Diurnal models a temperature field with a daily sine cycle plus a per-node
// spatial offset and measurement noise — the habitat-monitoring workload.
type Diurnal struct {
	Seed         int64
	Mean         float64 // e.g. 70 °F
	Amplitude    float64 // e.g. 15 °F
	EpochsPerDay model.Epoch
	NodeSpread   float64 // per-node constant offset stddev
	Noise        float64 // per-sample noise stddev
}

// NewDiurnal returns a generator with sensible habitat defaults.
func NewDiurnal(seed int64) *Diurnal {
	return &Diurnal{Seed: seed, Mean: 70, Amplitude: 15, EpochsPerDay: 96, NodeSpread: 3, Noise: 0.5}
}

// Sample implements Source.
func (d *Diurnal) Sample(node model.NodeID, e model.Epoch) model.Value {
	day := float64(e%d.EpochsPerDay) / float64(d.EpochsPerDay)
	cycle := d.Amplitude * math.Sin(2*math.Pi*(day-0.25)) // coolest at 6am
	offset := d.NodeSpread * gauss(d.Seed+1, node, 0)
	noise := d.Noise * gauss(d.Seed+2, node, e)
	return model.Value(d.Mean + cycle + offset + noise)
}

// RandomWalk is a bounded random walk per node: value(e) = clamp(value(e-1)
// + step). It is computed in closed form over the epoch prefix so sampling
// stays stateless; Steps bounds how far back it integrates (windowed walk).
type RandomWalk struct {
	Seed     int64
	Start    float64
	StepSize float64
	Min, Max float64
	Window   int // how many past steps shape the value (default 64)
}

// NewRandomWalk returns a walk over [min,max] starting at the midpoint.
func NewRandomWalk(seed int64, min, max float64) *RandomWalk {
	return &RandomWalk{Seed: seed, Start: (min + max) / 2, StepSize: (max - min) / 50, Min: min, Max: max, Window: 64}
}

// Sample implements Source.
func (w *RandomWalk) Sample(node model.NodeID, e model.Epoch) model.Value {
	window := w.Window
	if window <= 0 {
		window = 64
	}
	v := w.Start
	lo := 0
	if int(e) >= window {
		lo = int(e) - window + 1
	}
	for i := lo; i <= int(e); i++ {
		step := (unit(w.Seed, node, model.Epoch(i)) - 0.5) * 2 * w.StepSize
		v += step
		if v < w.Min {
			v = w.Min
		}
		if v > w.Max {
			v = w.Max
		}
	}
	return model.Value(v)
}

// Zipf produces values whose per-group popularity follows a Zipf law: a few
// groups are consistently hot. Used for skew-sensitivity sweeps (E8).
type Zipf struct {
	Seed   int64
	Groups map[model.NodeID]model.GroupID
	S      float64 // Zipf exponent, > 1
	Scale  float64 // hottest group's base value
	Noise  float64
}

// NewZipf returns a Zipf source with exponent s over the given grouping.
func NewZipf(seed int64, groups map[model.NodeID]model.GroupID, s, scale float64) *Zipf {
	if s <= 1 {
		s = 1.1
	}
	return &Zipf{Seed: seed, Groups: groups, S: s, Scale: scale, Noise: scale / 50}
}

// Sample implements Source.
func (z *Zipf) Sample(node model.NodeID, e model.Epoch) model.Value {
	g := float64(z.Groups[node])
	if g < 1 {
		g = 1
	}
	base := z.Scale / math.Pow(g, z.S)
	return model.Value(base + z.Noise*gauss(z.Seed, node, e))
}

// Uniform draws i.i.d. uniform values in [Min,Max) — the adversarial case
// for threshold algorithms (no skew to exploit).
type Uniform struct {
	Seed     int64
	Min, Max float64
}

// Sample implements Source.
func (u *Uniform) Sample(node model.NodeID, e model.Epoch) model.Value {
	return model.Value(u.Min + (u.Max-u.Min)*unit(u.Seed, node, e))
}

// Series materializes a source into per-node slices over [0, epochs) — the
// sliding-window history that historic operators query.
func Series(src Source, nodes []model.NodeID, epochs int) map[model.NodeID][]model.Value {
	out := make(map[model.NodeID][]model.Value, len(nodes))
	for _, n := range nodes {
		vs := make([]model.Value, epochs)
		for e := 0; e < epochs; e++ {
			vs[e] = src.Sample(n, model.Epoch(e))
		}
		out[n] = vs
	}
	return out
}

// Perm returns a deterministic permutation of [0,n) for the given seed —
// shared helper for workload shuffling.
func Perm(seed int64, n int) []int {
	return rand.New(rand.NewSource(seed)).Perm(n)
}
