package trace

import (
	"kspot/internal/model"
	"kspot/internal/topo"
)

// This file pins down the paper's two worked scenarios as executable
// fixtures: Figure 1 (9 sensors, 4 rooms, the §III-A counterexample) and
// Figure 3 (the 14-node, 6-cluster conference demo).

// Figure-1 room groups.
const (
	Fig1RoomA model.GroupID = 1
	Fig1RoomB model.GroupID = 2
	Fig1RoomC model.GroupID = 3
	Fig1RoomD model.GroupID = 4
)

// Figure1Placement reconstructs the deployment of the paper's Figure 1:
// nine sensors s1..s9 in four rooms A..D of a 2x2-room building, sink s0 at
// the building entrance. Room assignment follows the figure's labels:
// A={s2,s3}, B={s1,s4}, C={s5,s6}, D={s7,s8,s9}.
func Figure1Placement() *topo.Placement {
	p := topo.NewPlacement()
	// 2x2 rooms of 10x10 m: A top-left, B top-right, C bottom-left,
	// D bottom-right. Positions chosen so the disk graph (radius 7 m)
	// yields the in-network tree drawn in the figure.
	p.Positions[model.Sink] = topo.Point{X: 10, Y: -2}
	pos := map[model.NodeID]topo.Point{
		1: {X: 6, Y: 2},   // B
		2: {X: 14, Y: 2},  // A
		3: {X: 16, Y: 7},  // A
		4: {X: 4, Y: 7},   // B
		5: {X: 3, Y: 12},  // C
		6: {X: 6, Y: 16},  // C
		7: {X: 16, Y: 12}, // D
		8: {X: 17, Y: 17}, // D
		9: {X: 12, Y: 12}, // D (routes via s4's side in the figure)
	}
	for id, pt := range pos {
		p.Positions[id] = pt
	}
	groups := map[model.NodeID]model.GroupID{
		1: Fig1RoomB, 2: Fig1RoomA, 3: Fig1RoomA, 4: Fig1RoomB,
		5: Fig1RoomC, 6: Fig1RoomC, 7: Fig1RoomD, 8: Fig1RoomD, 9: Fig1RoomD,
	}
	for id, g := range groups {
		p.Groups[id] = g
	}
	p.Names[Fig1RoomA] = "Room A"
	p.Names[Fig1RoomB] = "Room B"
	p.Names[Fig1RoomC] = "Room C"
	p.Names[Fig1RoomD] = "Room D"
	return p
}

// Figure1Tree builds the exact routing tree drawn in Figure 1's right-hand
// side: s0←{s1,s2}; s1←{s3?}. The figure's view tree is:
//
//	     s0
//	    /  \
//	  s1    s2
//	 /  \     \
//	s3   s4    s7
//	    /  \     \
//	  s5    s9    s8
//	  |
//	  s6
//
// reproduced here literally so tests can assert against the paper's own
// aggregation structure (s4 hears s9's (D,39) — the tuple the naive
// strategy wrongly discards).
func Figure1Tree() *topo.Tree {
	t := &topo.Tree{
		Parent:   make(map[model.NodeID]model.NodeID),
		Children: make(map[model.NodeID][]model.NodeID),
		Depth:    make(map[model.NodeID]int),
		Root:     model.Sink,
	}
	edges := []struct{ child, parent model.NodeID }{
		{1, 0}, {2, 0}, {3, 1}, {4, 1}, {5, 4}, {9, 4}, {6, 5}, {7, 2}, {8, 7},
	}
	t.Depth[model.Sink] = 0
	for _, e := range edges {
		t.Parent[e.child] = e.parent
		t.Children[e.parent] = append(t.Children[e.parent], e.child)
	}
	var fill func(n model.NodeID, d int)
	fill = func(n model.NodeID, d int) {
		t.Depth[n] = d
		for _, c := range t.Children[n] {
			fill(c, d+1)
		}
	}
	fill(model.Sink, 0)
	return t
}

// Figure1Values returns the exact sound levels from the figure's labels.
func Figure1Values() map[model.NodeID]model.Value {
	return map[model.NodeID]model.Value{
		1: 40, 2: 74, 3: 75, 4: 42, 5: 75, 6: 75, 7: 78, 8: 75, 9: 39,
	}
}

// Figure1Source is a fixture replaying Figure1Values at every epoch.
func Figure1Source() *Fixture {
	vals := Figure1Values()
	m := make(map[model.NodeID][]model.Value, len(vals))
	for n, v := range vals {
		m[n] = []model.Value{v}
	}
	return NewFixture(m)
}

// Figure1Answers returns the correct ranking from the figure's sink view:
// (C,75), (A,74.5), (D,64), (B,41).
func Figure1Answers() []model.Answer {
	return []model.Answer{
		{Group: Fig1RoomC, Score: 75},
		{Group: Fig1RoomA, Score: 74.5},
		{Group: Fig1RoomD, Score: 64},
		{Group: Fig1RoomB, Score: 41},
	}
}

// Figure3Placement reconstructs the demo scenario of Figure 3: a Top-3
// query over a 14-node network organized in 6 clusters (Auditorium,
// Conference Rooms 1-2, Coffee Stations 1-2, Lobby). The clusters line a
// conference-center corridor away from the registration desk (the sink),
// so the routing tree is several hops deep — the multihop regime where
// in-network pruning pays.
func Figure3Placement() *topo.Placement {
	p := topo.NewPlacement()
	p.Positions[model.Sink] = topo.Point{X: 0, Y: 0}
	clusters := []struct {
		name    string
		members int
		origin  topo.Point
	}{
		{"Auditorium", 4, topo.Point{X: 9, Y: 1}},
		{"Conference Room 1", 3, topo.Point{X: 18, Y: 5}},
		{"Conference Room 2", 2, topo.Point{X: 27, Y: 9}},
		{"Coffee Station 1", 2, topo.Point{X: 36, Y: 13}},
		{"Coffee Station 2", 2, topo.Point{X: 45, Y: 17}},
		{"Lobby", 1, topo.Point{X: 54, Y: 21}},
	}
	id := model.NodeID(1)
	for ci, c := range clusters {
		g := model.GroupID(ci + 1)
		p.Names[g] = c.name
		for m := 0; m < c.members; m++ {
			p.Positions[id] = topo.Point{X: c.origin.X + float64(m)*3, Y: c.origin.Y + float64(m%2)*2}
			p.Groups[id] = g
			id++
		}
	}
	return p
}

// Figure3Source returns a room-activity source over the Figure-3 clusters.
// Half the venue is active at a time, so a Top-3 answer is substantive.
func Figure3Source(seed int64) *RoomActivity {
	p := Figure3Placement()
	src := NewRoomActivity(seed, p.Groups, 6)
	src.ActiveFrac = 0.5
	return src
}
