package stats

import (
	"strings"
	"testing"

	"kspot/internal/radio"
	"kspot/internal/sim"
	"kspot/internal/topo"
	"kspot/internal/trace"
)

func testNet(t *testing.T) *sim.Network {
	t.Helper()
	p := trace.Figure1Placement()
	tree := trace.Figure1Tree()
	links := topo.NewLinks()
	for c, par := range tree.Parent {
		links.Connect(c, par)
	}
	return sim.FromTree(p, links, tree, sim.DefaultOptions())
}

func TestCollect(t *testing.T) {
	net := testNet(t)
	net.SendUp(3, radio.KindData, 0, make([]byte, 10))
	net.SendUp(5, radio.KindLB, 0, make([]byte, 4))
	r := Collect("mint", net, 2)
	if r.Messages != 2 || r.Algorithm != "mint" || r.Epochs != 2 {
		t.Fatalf("collect = %+v", r)
	}
	if r.PerKind[radio.KindData] != 10+radio.DefaultHeaderSize {
		t.Errorf("per-kind data bytes = %d", r.PerKind[radio.KindData])
	}
	if r.EnergyUJ <= 0 || r.EnergyMax <= 0 {
		t.Error("energy not collected")
	}
	if r.PerEpochBytes() != float64(r.TxBytes)/2 {
		t.Error("PerEpochBytes")
	}
	if r.PerEpochEnergy() != r.EnergyUJ/2 {
		t.Error("PerEpochEnergy")
	}
}

func TestPerEpochZeroEpochs(t *testing.T) {
	var r RunStats
	if r.PerEpochBytes() != 0 || r.PerEpochEnergy() != 0 {
		t.Error("zero-epoch stats must not divide by zero")
	}
}

func TestCompare(t *testing.T) {
	run := RunStats{Algorithm: "mint", Messages: 50, Frames: 60, TxBytes: 500, EnergyUJ: 1000}
	base := RunStats{Algorithm: "tag", Messages: 100, Frames: 120, TxBytes: 2000, EnergyUJ: 4000}
	s := Compare(run, base)
	if s.Messages != 50 || s.Bytes != 75 || s.Energy != 75 || s.Frames != 50 {
		t.Fatalf("savings = %+v", s)
	}
	if !strings.Contains(s.String(), "mint vs tag") {
		t.Errorf("String = %q", s.String())
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	s := Compare(RunStats{Messages: 5}, RunStats{})
	if s.Messages != 0 {
		t.Error("zero baseline must not divide by zero")
	}
}

func TestTableRendering(t *testing.T) {
	rows := []RunStats{
		{Algorithm: "mint", Epochs: 10, Messages: 100, TxBytes: 1234, EnergyUJ: 5678, Correct: 100, Recall: 1},
		{Algorithm: "tag", Epochs: 10, Messages: 300, TxBytes: 9999, EnergyUJ: 20000, Correct: 100, Recall: 1},
	}
	out := Table("E3 snapshot savings", rows)
	if !strings.Contains(out, "E3 snapshot savings") || !strings.Contains(out, "mint") || !strings.Contains(out, "tag") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
}

func TestCSV(t *testing.T) {
	out := CSV([]RunStats{{Algorithm: "tja", Epochs: 1, TxBytes: 42}})
	if !strings.HasPrefix(out, "algorithm,") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "tja,1,0,0,42") {
		t.Errorf("csv = %q", out)
	}
}

func TestPhaseTable(t *testing.T) {
	rows := []RunStats{{
		Algorithm: "tja",
		PerKind:   map[radio.MsgKind]int{radio.KindLB: 10, radio.KindHJ: 200, radio.KindCL: 5},
	}}
	out := PhaseTable("E8 phases", rows)
	for _, want := range []string{"lb", "hj", "cl", "200"} {
		if !strings.Contains(out, want) {
			t.Errorf("phase table missing %q:\n%s", want, out)
		}
	}
}

func TestSweepTable(t *testing.T) {
	series := []Series{
		{X: 1, Rows: []RunStats{{Algorithm: "mint", TxBytes: 10}}},
		{X: 2, Rows: []RunStats{{Algorithm: "mint", TxBytes: 20}}},
	}
	out := SweepTable("E6 k sweep", "k", series)
	if !strings.Contains(out, "k ") && !strings.Contains(out, " k") {
		t.Errorf("sweep table missing x column:\n%s", out)
	}
	if strings.Count(out, "mint") != 2 {
		t.Errorf("sweep rows missing:\n%s", out)
	}
}
