package stats

import (
	"math"
	"testing"

	"kspot/internal/model"
)

func ans(pairs ...float64) []model.Answer {
	out := make([]model.Answer, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, model.Answer{Group: model.GroupID(pairs[i]), Score: model.Value(pairs[i+1])})
	}
	return out
}

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestScore(t *testing.T) {
	cases := []struct {
		name      string
		got, want []model.Answer
		recall    float64
		precision float64
		f1        float64
		exact     bool
	}{
		{"identical", ans(1, 10, 2, 9), ans(1, 10, 2, 9), 1, 1, 1, true},
		{"same set, swapped order", ans(2, 9, 1, 10), ans(1, 10, 2, 9), 1, 1, 1, false},
		{"same set, drifted score", ans(1, 10, 2, 8.5), ans(1, 10, 2, 9), 1, 1, 1, false},
		{"half hit", ans(1, 10, 3, 7), ans(1, 10, 2, 9), 0.5, 0.5, 0.5, false},
		{"all miss", ans(3, 7, 4, 6), ans(1, 10, 2, 9), 0, 0, 0, false},
		{"short answer", ans(1, 10), ans(1, 10, 2, 9), 0.5, 1, 2.0 / 3.0, false},
		{"long answer", ans(1, 10, 2, 9, 3, 7), ans(1, 10, 2, 9), 1, 2.0 / 3.0, 0.8, false},
		{"empty answer", nil, ans(1, 10), 0, 0, 0, false},
		{"empty oracle", ans(1, 10), nil, 1, 0, 0, false},
		{"both empty", nil, nil, 1, 1, 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := Score(tc.got, tc.want)
			if !near(m.Recall, tc.recall) || !near(m.Precision, tc.precision) || !near(m.F1, tc.f1) || m.Exact != tc.exact {
				t.Errorf("Score = %+v, want recall=%v precision=%v f1=%v exact=%v",
					m, tc.recall, tc.precision, tc.f1, tc.exact)
			}
			// Recall must agree with the model package's metric.
			if !near(m.Recall, model.Recall(tc.got, tc.want)) {
				t.Errorf("Recall %v disagrees with model.Recall %v", m.Recall, model.Recall(tc.got, tc.want))
			}
		})
	}
}

func TestMetricsAccumulator(t *testing.T) {
	var a MetricsAccumulator
	if got := a.Mean(); got != (Metrics{}) {
		t.Errorf("empty accumulator mean = %+v, want zero", got)
	}
	if a.MinRecall() != 0 || a.ExactPct() != 0 || a.N() != 0 {
		t.Error("empty accumulator must report zeros")
	}

	a.Add(Metrics{Recall: 1, Precision: 1, F1: 1, Exact: true})
	a.Add(Metrics{Recall: 0.5, Precision: 1, F1: 2.0 / 3.0})
	a.Add(Metrics{Recall: 0.75, Precision: 0.75, F1: 0.75})

	if a.N() != 3 {
		t.Errorf("N = %d, want 3", a.N())
	}
	m := a.Mean()
	if !near(m.Recall, 0.75) || !near(m.Precision, 11.0/12.0) {
		t.Errorf("mean = %+v, want recall 0.75 precision 11/12", m)
	}
	if m.Exact {
		t.Error("mean.Exact must be false when any observation was inexact")
	}
	if !near(a.MinRecall(), 0.5) {
		t.Errorf("min recall = %v, want 0.5", a.MinRecall())
	}
	if !near(a.ExactPct(), 100.0/3.0) {
		t.Errorf("exact%% = %v, want 33.3", a.ExactPct())
	}
}
