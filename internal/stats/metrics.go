package stats

import (
	"fmt"

	"kspot/internal/model"
)

// Metrics quantifies one epoch's (or one run's) answer set against the
// exact oracle. Membership is judged on group identity — the set the user
// sees ranked — matching model.Recall; Exact additionally demands the
// paper's strict criterion (order and quantized scores).
type Metrics struct {
	Recall    float64 // |got ∩ want| / |want|
	Precision float64 // |got ∩ want| / |got|
	F1        float64 // harmonic mean of the two
	Exact     bool    // order- and score-exact (model.EqualAnswers)
}

// Score computes the metrics of got against the oracle want. Degenerate
// sets follow the usual conventions: an empty oracle is perfectly
// recalled; an empty answer against a non-empty oracle has zero precision.
func Score(got, want []model.Answer) Metrics {
	m := Metrics{Exact: model.EqualAnswers(got, want)}
	ws := model.AnswerSet(want)
	hit := 0
	for _, a := range got {
		if ws[a.Group] {
			hit++
		}
	}
	if len(want) == 0 {
		m.Recall = 1
	} else {
		m.Recall = float64(hit) / float64(len(want))
	}
	if len(got) == 0 {
		m.Precision = 0
		if len(want) == 0 {
			m.Precision = 1
		}
	} else {
		m.Precision = float64(hit) / float64(len(got))
	}
	if m.Recall+m.Precision > 0 {
		m.F1 = 2 * m.Recall * m.Precision / (m.Recall + m.Precision)
	}
	return m
}

// MetricsAccumulator folds per-epoch Metrics into run-level aggregates —
// what the conformance suite and the bench reports tabulate.
type MetricsAccumulator struct {
	n         int
	recall    float64
	precision float64
	f1        float64
	exact     int
	minRecall float64
}

// Add folds one observation.
func (a *MetricsAccumulator) Add(m Metrics) {
	if a.n == 0 || m.Recall < a.minRecall {
		a.minRecall = m.Recall
	}
	a.n++
	a.recall += m.Recall
	a.precision += m.Precision
	a.f1 += m.F1
	if m.Exact {
		a.exact++
	}
}

// N returns the number of observations folded in.
func (a *MetricsAccumulator) N() int { return a.n }

// Mean returns the averaged metrics; Exact is true only when every
// observation was exact. An empty accumulator is all zeros.
func (a *MetricsAccumulator) Mean() Metrics {
	if a.n == 0 {
		return Metrics{}
	}
	return Metrics{
		Recall:    a.recall / float64(a.n),
		Precision: a.precision / float64(a.n),
		F1:        a.f1 / float64(a.n),
		Exact:     a.exact == a.n,
	}
}

// MinRecall returns the worst observed recall (0 for an empty accumulator).
func (a *MetricsAccumulator) MinRecall() float64 {
	if a.n == 0 {
		return 0
	}
	return a.minRecall
}

// ExactPct returns the percentage of exact observations.
func (a *MetricsAccumulator) ExactPct() float64 {
	if a.n == 0 {
		return 0
	}
	return 100 * float64(a.exact) / float64(a.n)
}

// String summarizes the aggregate for reports.
func (a *MetricsAccumulator) String() string {
	m := a.Mean()
	return fmt.Sprintf("n=%d recall=%.3f (min %.3f) precision=%.3f f1=%.3f exact=%.1f%%",
		a.n, m.Recall, a.MinRecall(), m.Precision, m.F1, a.ExactPct())
}
