// Package stats implements KSpot's System Panel: the component that
// "continuously displays the savings in energy and messages that our system
// yields". It reads the simulator's radio counters and energy ledger,
// compares an algorithm's run against a baseline, and renders the
// comparison as fixed-width tables and CSV for the benchmark harness.
package stats

import (
	"fmt"
	"sort"
	"strings"

	"kspot/internal/radio"
	"kspot/internal/sim"
)

// RunStats summarizes one algorithm's run for the panel.
type RunStats struct {
	Algorithm string
	Epochs    int
	Messages  int
	Frames    int
	TxBytes   int
	RxBytes   int
	Drops     int
	EnergyUJ  float64
	EnergyMax float64               // hottest node, µJ
	PerKind   map[radio.MsgKind]int // tx bytes per message kind
	Correct   float64               // percent of epochs exact
	Recall    float64
}

// Collect reads a network's counters into a RunStats.
func Collect(name string, net *sim.Network, epochs int) RunStats {
	perKind := make(map[radio.MsgKind]int, len(net.Counter.TxBytes))
	for k, v := range net.Counter.TxBytes {
		perKind[k] = v
	}
	return RunStats{
		Algorithm: name,
		Epochs:    epochs,
		Messages:  net.Counter.TotalMessages(),
		Frames:    net.Counter.TotalFrames(),
		TxBytes:   net.Counter.TotalTxBytes(),
		RxBytes:   net.Counter.TotalRxBytes(),
		Drops:     net.Counter.Drops,
		EnergyUJ:  net.Ledger.Total(),
		EnergyMax: net.Ledger.Max(),
		PerKind:   perKind,
	}
}

// Merge sums shard rows into one aggregate row under a new label — how a
// federated deployment's System Panel totals its per-shard traffic.
// Counters add; EnergyMax keeps the hottest node anywhere; Epochs takes
// the maximum (shards advance in lock-step, so their epoch counts agree);
// the quality columns (Correct, Recall) are left zero — they belong to a
// query, not to a traffic aggregate.
func Merge(name string, rows ...RunStats) RunStats {
	out := RunStats{Algorithm: name, PerKind: map[radio.MsgKind]int{}}
	for _, r := range rows {
		if r.Epochs > out.Epochs {
			out.Epochs = r.Epochs
		}
		out.Messages += r.Messages
		out.Frames += r.Frames
		out.TxBytes += r.TxBytes
		out.RxBytes += r.RxBytes
		out.Drops += r.Drops
		out.EnergyUJ += r.EnergyUJ
		if r.EnergyMax > out.EnergyMax {
			out.EnergyMax = r.EnergyMax
		}
		for k, v := range r.PerKind {
			out.PerKind[k] += v
		}
	}
	return out
}

// PerEpochBytes returns average transmitted bytes per epoch.
func (r RunStats) PerEpochBytes() float64 {
	if r.Epochs == 0 {
		return 0
	}
	return float64(r.TxBytes) / float64(r.Epochs)
}

// PerEpochEnergy returns average consumed energy per epoch in µJ.
func (r RunStats) PerEpochEnergy() float64 {
	if r.Epochs == 0 {
		return 0
	}
	return r.EnergyUJ / float64(r.Epochs)
}

// Savings quantifies a run against a baseline, as the System Panel shows:
// positive percentages mean the run consumed less.
type Savings struct {
	Algorithm string
	Baseline  string
	Messages  float64 // percent saved
	Frames    float64
	Bytes     float64
	Energy    float64
}

// Compare computes savings of run over baseline.
func Compare(run, baseline RunStats) Savings {
	pct := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return 100 * (1 - a/b)
	}
	return Savings{
		Algorithm: run.Algorithm,
		Baseline:  baseline.Algorithm,
		Messages:  pct(float64(run.Messages), float64(baseline.Messages)),
		Frames:    pct(float64(run.Frames), float64(baseline.Frames)),
		Bytes:     pct(float64(run.TxBytes), float64(baseline.TxBytes)),
		Energy:    pct(run.EnergyUJ, baseline.EnergyUJ),
	}
}

func (s Savings) String() string {
	return fmt.Sprintf("%s vs %s: msgs %+.1f%%, frames %+.1f%%, bytes %+.1f%%, energy %+.1f%%",
		s.Algorithm, s.Baseline, s.Messages, s.Frames, s.Bytes, s.Energy)
}

// Table renders rows of RunStats as a fixed-width comparison table — the
// format cmd/kspot-bench prints for every experiment.
func Table(title string, rows []RunStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	fmt.Fprintf(&b, "%-16s %8s %10s %10s %12s %12s %9s %8s\n",
		"algorithm", "epochs", "messages", "frames", "tx-bytes", "energy(mJ)", "correct%", "recall")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %8d %10d %10d %12d %12.2f %9.1f %8.3f\n",
			r.Algorithm, r.Epochs, r.Messages, r.Frames, r.TxBytes, r.EnergyUJ/1000, r.Correct, r.Recall)
	}
	return b.String()
}

// CSV renders rows as comma-separated values with a header, for plotting.
func CSV(rows []RunStats) string {
	var b strings.Builder
	b.WriteString("algorithm,epochs,messages,frames,tx_bytes,energy_uj,correct_pct,recall\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%.1f,%.2f,%.4f\n",
			r.Algorithm, r.Epochs, r.Messages, r.Frames, r.TxBytes, r.EnergyUJ, r.Correct, r.Recall)
	}
	return b.String()
}

// PhaseTable renders per-message-kind byte breakdowns (TJA's LB/HJ/CL
// anatomy, experiment E8).
func PhaseTable(title string, rows []RunStats) string {
	kinds := map[radio.MsgKind]bool{}
	for _, r := range rows {
		for k := range r.PerKind {
			kinds[k] = true
		}
	}
	ordered := make([]radio.MsgKind, 0, len(kinds))
	for k := range kinds {
		ordered = append(ordered, k)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })

	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	fmt.Fprintf(&b, "%-16s", "algorithm")
	for _, k := range ordered {
		fmt.Fprintf(&b, " %10s", k)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s", r.Algorithm)
		for _, k := range ordered {
			fmt.Fprintf(&b, " %10d", r.PerKind[k])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Series is one line of a sweep experiment: an x value (e.g. K or network
// size) and the metric rows measured there.
type Series struct {
	X    float64
	Rows []RunStats
}

// SweepTable renders a parameter sweep with one row per (x, algorithm).
func SweepTable(title, xName string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	fmt.Fprintf(&b, "%8s %-16s %10s %10s %12s %12s %9s\n",
		xName, "algorithm", "messages", "frames", "tx-bytes", "energy(mJ)", "correct%")
	for _, s := range series {
		for _, r := range s.Rows {
			fmt.Fprintf(&b, "%8.0f %-16s %10d %10d %12d %12.2f %9.1f\n",
				s.X, r.Algorithm, r.Messages, r.Frames, r.TxBytes, r.EnergyUJ/1000, r.Correct)
		}
	}
	return b.String()
}
