package query

import (
	"fmt"
	"strings"
	"time"
)

// The sensing signature: the part of a query that determines what the
// network must acquire each epoch. Two queries with the same SenseKey can
// share one in-network acquisition — the same partials climb the routing
// tree once — and differ only in work that happens at the base station:
// how many of the ranked groups each tenant keeps (TOP K) and which
// columns it projects. K and the SELECT shape are therefore deliberately
// excluded from the key; top-k cutting happens above the shared view, so
// including K would split tenants that the network cannot tell apart.

// SenseKey returns the canonical sensing signature of the query: the
// relation, the aggregate over its attribute, the GROUP BY attribute, the
// epoch duration and the history window. The parser already folds case,
// whitespace and duration units, so every spelling of the same sensing
// plan yields byte-identical keys.
func (a *AST) SenseKey() string {
	var b strings.Builder
	b.WriteString("from=")
	b.WriteString(a.From)
	if agg, ok := a.Aggregate(); ok {
		fmt.Fprintf(&b, "|agg=%s(%s)", agg.Agg, agg.Attr)
	}
	if a.GroupBy != "" {
		b.WriteString("|group=")
		b.WriteString(a.GroupBy)
	}
	if a.Epoch > 0 {
		fmt.Fprintf(&b, "|epoch=%dms", a.Epoch/time.Millisecond)
	}
	if a.History > 0 {
		fmt.Fprintf(&b, "|history=%d", a.History)
	}
	return b.String()
}

// Normalize parses a query and returns its canonical spelling — the form
// AST.String emits, with keyword case, whitespace and duration units
// folded. Equivalent spellings normalize to byte-identical text (and thus
// byte-identical SenseKeys); the canonical form always reparses to the
// identical AST.
func Normalize(src string) (string, error) {
	ast, err := Parse(src)
	if err != nil {
		return "", err
	}
	return ast.String(), nil
}
