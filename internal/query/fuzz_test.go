package query

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text through the lexer and parser. Properties:
// no panic on any input, and accepted queries are printable-and-reparsable
// — the AST's canonical String() must itself parse, to an AST with the
// identical canonical form (a parse/print fixpoint).
//
// Seed corpus: every query shape the paper shows plus the syntax corners
// (committed under testdata/fuzz/FuzzParse; go test -fuzz=FuzzParse
// explores further).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid EPOCH DURATION 1 min",
		"SELECT TOP 1 roomid, MAX(sound) FROM sensors GROUP BY roomid",
		"SELECT TOP 4 timeinstant, SUM(temp) FROM sensors WITH HISTORY 32",
		"SELECT sound FROM sensors",
		"SELECT sound, temp FROM sensors EPOCH DURATION 500 ms",
		"select top 2 roomid , avg ( sound ) from sensors group by roomid",
		"SELECT * FROM sensors",
		"SELECT TOP 0 roomid, AVG(sound) FROM sensors GROUP BY roomid",
		"SELECT TOP -1 x, MIN(y) FROM sensors GROUP BY x",
		"SELECT TOP 3 roomid AVG(sound) FROM sensors",
		"SELECT TOP 99999999999999999999 a, COUNT(b) FROM sensors GROUP BY a",
		"SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid WITH HISTORY 1.5",
		"(((((",
		"",
		"\x00\x01\x02",
		"SELECT",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		ast, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are the bug
		}
		canon := ast.String()
		re, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form of %q failed to reparse: %q: %v", src, canon, err)
		}
		if re.String() != canon {
			t.Fatalf("canonical form is not a fixpoint: %q -> %q -> %q", src, canon, re.String())
		}
	})
}

// FuzzLex checks the lexer in isolation: it must never panic, and every
// token it emits must carry a position inside the input with non-empty
// text (except EOF).
func FuzzLex(f *testing.F) {
	for _, s := range []string{
		"SELECT TOP 3 roomid, AVG(sound) FROM sensors",
		"a_b2 -3 3.5 , ( ) *",
		"3..5 -.5 -", "日本語 id", "\tx\n\ry",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatalf("token stream must end with EOF: %v", toks)
		}
		for _, tok := range toks[:len(toks)-1] {
			if tok.Text == "" {
				t.Fatalf("non-EOF token with empty text at %d in %q", tok.Pos, src)
			}
			if tok.Pos < 0 || tok.Pos >= len(src) {
				t.Fatalf("token position %d outside input %q", tok.Pos, src)
			}
			if !strings.HasPrefix(src[tok.Pos:], tok.Text) {
				t.Fatalf("token %q does not appear at its position %d in %q", tok.Text, tok.Pos, src)
			}
		}
	})
}
