package query

import (
	"strings"
	"testing"
	"time"

	"kspot/internal/model"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT TOP 3 roomid, AVG(sound) FROM sensors")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{TokIdent, TokIdent, TokNumber, TokIdent, TokComma, TokIdent, TokLParen, TokIdent, TokRParen, TokIdent, TokIdent, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count = %d, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex("12 3.5 -7")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"12", "3.5", "-7"} {
		if toks[i].Text != want {
			t.Errorf("number %d = %q", i, toks[i].Text)
		}
	}
}

func TestLexError(t *testing.T) {
	if _, err := Lex("SELECT @"); err == nil {
		t.Fatal("bad character accepted")
	} else if !strings.Contains(err.Error(), "offset 7") {
		t.Errorf("error lacks position: %v", err)
	}
}

// TestParsePaperQueries parses every query the paper's text shows.
func TestParsePaperQueries(t *testing.T) {
	queries := []string{
		"SELECT TOP 1 roomid, AVERAGE(sound) FROM sensors GROUP BY roomid EPOCH DURATION 1 min",
		"SELECT TOP K roomid, AVERAGE(sound) FROM sensors GROUP BY roomid",
		"SELECT TOP K roomid, AVERAGE(sound) FROM sensors GROUP BY roomid WITH HISTORY 100",
	}
	// The paper writes a literal K; substitute 3.
	for _, q := range queries {
		q = strings.Replace(q, "TOP K", "TOP 3", 1)
		ast, err := Parse(q)
		if err != nil {
			t.Errorf("%q: %v", q, err)
			continue
		}
		if !ast.HasTop() {
			t.Errorf("%q: no TOP clause parsed", q)
		}
		if agg, ok := ast.Aggregate(); !ok || agg.Agg != model.AggAvg {
			t.Errorf("%q: aggregate = %v", q, agg)
		}
	}
}

func TestParseFull(t *testing.T) {
	ast, err := Parse("select top 2 roomid, avg(sound) from sensors group by roomid epoch duration 30 s with history 50")
	if err != nil {
		t.Fatal(err)
	}
	if ast.TopK != 2 || ast.GroupBy != "ROOMID" || ast.Epoch != 30*time.Second || ast.History != 50 {
		t.Fatalf("ast = %+v", ast)
	}
}

func TestParseEpochUnits(t *testing.T) {
	cases := map[string]time.Duration{
		"EPOCH DURATION 5":     5 * time.Second,
		"EPOCH DURATION 5 s":   5 * time.Second,
		"EPOCH DURATION 5 min": 5 * time.Minute,
		"EPOCH DURATION 5 ms":  5 * time.Millisecond,
	}
	for clause, want := range cases {
		ast, err := Parse("SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid " + clause)
		if err != nil {
			t.Fatalf("%s: %v", clause, err)
		}
		if ast.Epoch != want {
			t.Errorf("%s -> %v, want %v", clause, ast.Epoch, want)
		}
	}
}

func TestParseBasicSelect(t *testing.T) {
	ast, err := Parse("SELECT sound, temp FROM sensors EPOCH DURATION 1 min")
	if err != nil {
		t.Fatal(err)
	}
	if ast.HasTop() || len(ast.Items) != 2 {
		t.Fatalf("ast = %+v", ast)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM sensors",
		"SELECT TOP 0 roomid, AVG(sound) FROM sensors GROUP BY roomid",
		"SELECT TOP 2 roomid FROM sensors GROUP BY roomid",             // no aggregate
		"SELECT TOP 2 roomid, AVG(sound) FROM sensors",                 // no group by / history
		"SELECT TOP 2 roomid, AVG(sound) FROM motes GROUP BY roomid",   // bad relation
		"SELECT TOP 2 x, AVG(sound) FROM sensors GROUP BY roomid",      // stray column
		"SELECT TOP 2 roomid, AVG(sound FROM sensors GROUP BY roomid",  // unclosed paren
		"SELECT roomid, AVG(sound) FROM sensors GROUP BY roomid EXTRA", // trailing junk
		"SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid GROUP BY roomid",
		"SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid WITH HISTORY 0",
		"SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid EPOCH DURATION 0",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("accepted bad query %q", q)
		}
	}
}

func TestASTString(t *testing.T) {
	src := "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid WITH HISTORY 10"
	ast, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	round, err := Parse(ast.String())
	if err != nil {
		t.Fatalf("canonical form does not re-parse: %v\n%s", err, ast.String())
	}
	if round.String() != ast.String() {
		t.Errorf("canonical form unstable: %q vs %q", round.String(), ast.String())
	}
}

func TestPlanRouting(t *testing.T) {
	schema := DefaultSchema()
	cases := []struct {
		q    string
		kind PlanKind
	}{
		{"SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid", PlanSnapshotTopK},
		{"SELECT TOP 3 timeinstant, AVG(temp) FROM sensors WITH HISTORY 64", PlanHistoricTopK},
		{"SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid WITH HISTORY 64", PlanHistoricGroupTopK},
		{"SELECT sound FROM sensors", PlanBasic},
		{"SELECT roomid, AVG(sound) FROM sensors GROUP BY roomid", PlanBasic},
	}
	for _, c := range cases {
		p, err := PlanText(c.q, schema)
		if err != nil {
			t.Errorf("%q: %v", c.q, err)
			continue
		}
		if p.Kind != c.kind {
			t.Errorf("%q routed to %v, want %v", c.q, p.Kind, c.kind)
		}
	}
}

func TestPlanCarriesRange(t *testing.T) {
	p, err := PlanText("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid", DefaultSchema())
	if err != nil {
		t.Fatal(err)
	}
	if p.Snapshot.Range == nil || p.Snapshot.Range.Max != 100 {
		t.Fatalf("plan range = %+v", p.Snapshot.Range)
	}
	if p.Snapshot.K != 2 || p.Snapshot.Agg != model.AggAvg {
		t.Fatalf("plan snapshot = %+v", p.Snapshot)
	}
}

func TestPlanHistoric(t *testing.T) {
	p, err := PlanText("SELECT TOP 5 timeinstant, AVG(temp) FROM sensors WITH HISTORY 128", DefaultSchema())
	if err != nil {
		t.Fatal(err)
	}
	if p.Historic.K != 5 || p.Historic.Window != 128 {
		t.Fatalf("plan historic = %+v", p.Historic)
	}
}

func TestPlanRejectsUnknownAttr(t *testing.T) {
	if _, err := PlanText("SELECT TOP 1 roomid, AVG(radiation) FROM sensors GROUP BY roomid", DefaultSchema()); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	if _, err := PlanText("SELECT TOP 1 shelf, AVG(sound) FROM sensors GROUP BY shelf", DefaultSchema()); err == nil {
		t.Fatal("unknown group attribute accepted")
	}
}

func TestPlanEpochs(t *testing.T) {
	p, err := PlanText("SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid EPOCH DURATION 2 s", DefaultSchema())
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Epochs(10 * time.Second); got != 5 {
		t.Errorf("Epochs = %d, want 5", got)
	}
	if got := p.Epochs(time.Millisecond); got != 1 {
		t.Errorf("Epochs floor = %d, want 1", got)
	}
}

func TestPlanKindString(t *testing.T) {
	for k, want := range map[PlanKind]string{
		PlanBasic: "basic/tag", PlanSnapshotTopK: "snapshot/mint",
		PlanHistoricTopK: "historic/tja", PlanHistoricGroupTopK: "historic-group/mint",
	} {
		if k.String() != want {
			t.Errorf("%d = %q", k, k.String())
		}
	}
}
