package query

import (
	"fmt"
	"time"

	"kspot/internal/topk"
)

// PlanKind is the operator class the router dispatches a query to — the
// paper's §II query router: basic SELECT / GROUP BY to the plain
// acquisition engine, snapshot TOP-K to MINT, historic TOP-K to TJA.
type PlanKind uint8

const (
	// PlanBasic is a non-TOP query served by TAG-style acquisition.
	PlanBasic PlanKind = iota
	// PlanSnapshotTopK is a TOP-K GROUP BY query served by MINT.
	PlanSnapshotTopK
	// PlanHistoricTopK is a TOP-K WITH HISTORY query over vertically
	// fragmented data (ranking time instants), served by TJA.
	PlanHistoricTopK
	// PlanHistoricGroupTopK is a TOP-K GROUP BY ... WITH HISTORY query
	// over horizontally fragmented data: each node filters its local
	// window first, then the snapshot pipeline prunes in-network (§III-B's
	// first case). Served by MINT over window aggregates.
	PlanHistoricGroupTopK
)

func (k PlanKind) String() string {
	switch k {
	case PlanBasic:
		return "basic/tag"
	case PlanSnapshotTopK:
		return "snapshot/mint"
	case PlanHistoricTopK:
		return "historic/tja"
	case PlanHistoricGroupTopK:
		return "historic-group/mint"
	default:
		return fmt.Sprintf("plan(%d)", uint8(k))
	}
}

// AttrInfo is the schema metadata the Configuration Panel declares for a
// sensed attribute: its calibrated range (MINT's γ descriptors need it).
type AttrInfo struct {
	Name  string
	Range topk.ValueRange
}

// Schema is the deployment's attribute and grouping metadata.
type Schema struct {
	// Attrs maps sensed attribute names (upper-cased) to their metadata.
	Attrs map[string]AttrInfo
	// GroupAttrs is the set of valid GROUP BY attributes (upper-cased),
	// e.g. ROOMID, CLUSTERID.
	GroupAttrs map[string]bool
}

// DefaultSchema covers the paper's demo deployment: MTS310 modalities and
// room/cluster grouping.
func DefaultSchema() Schema {
	return Schema{
		Attrs: map[string]AttrInfo{
			"SOUND": {Name: "SOUND", Range: topk.ValueRange{Min: 0, Max: 100}},
			"TEMP":  {Name: "TEMP", Range: topk.ValueRange{Min: -40, Max: 250}},
			"LIGHT": {Name: "LIGHT", Range: topk.ValueRange{Min: 0, Max: 1000}},
			"ACCEL": {Name: "ACCEL", Range: topk.ValueRange{Min: -200, Max: 200}},
			"MAG":   {Name: "MAG", Range: topk.ValueRange{Min: -100, Max: 100}},
		},
		GroupAttrs: map[string]bool{"ROOMID": true, "CLUSTERID": true, "REGION": true},
	}
}

// Plan is the executable form of a query.
type Plan struct {
	Kind     PlanKind
	Query    string // canonical text
	SenseKey string // canonical sensing signature (see AST.SenseKey)
	Attr     AttrInfo
	GroupBy  string
	Epoch    time.Duration
	History  int
	Snapshot topk.SnapshotQuery // valid for PlanSnapshotTopK / PlanHistoricGroupTopK / PlanBasic
	Historic topk.HistoricQuery // valid for PlanHistoricTopK
}

// PlanAST routes a parsed query against a schema.
func PlanAST(ast *AST, schema Schema) (*Plan, error) {
	plan := &Plan{Query: ast.String(), SenseKey: ast.SenseKey(), GroupBy: ast.GroupBy, Epoch: ast.Epoch, History: ast.History}

	agg, hasAgg := ast.Aggregate()
	if hasAgg {
		info, ok := schema.Attrs[agg.Attr]
		if !ok {
			return nil, fmt.Errorf("query: unknown attribute %q", agg.Attr)
		}
		plan.Attr = info
	}
	if ast.GroupBy != "" && !schema.GroupAttrs[ast.GroupBy] {
		return nil, fmt.Errorf("query: unknown grouping attribute %q", ast.GroupBy)
	}

	switch {
	case !ast.HasTop():
		plan.Kind = PlanBasic
		if hasAgg {
			rng := plan.Attr.Range
			plan.Snapshot = topk.SnapshotQuery{K: 1 << 15, Agg: agg.Agg, Range: &rng}
		}
		return plan, nil
	case ast.History > 0 && ast.GroupBy == "":
		plan.Kind = PlanHistoricTopK
		plan.Historic = topk.HistoricQuery{K: ast.TopK, Agg: agg.Agg, Window: ast.History}
		if err := plan.Historic.Validate(); err != nil {
			return nil, err
		}
		return plan, nil
	case ast.History > 0:
		plan.Kind = PlanHistoricGroupTopK
		rng := plan.Attr.Range
		plan.Snapshot = topk.SnapshotQuery{K: ast.TopK, Agg: agg.Agg, Range: &rng}
		return plan, nil
	default:
		plan.Kind = PlanSnapshotTopK
		rng := plan.Attr.Range
		plan.Snapshot = topk.SnapshotQuery{K: ast.TopK, Agg: agg.Agg, Range: &rng}
		return plan, nil
	}
}

// PlanText parses and routes a query string in one step.
func PlanText(src string, schema Schema) (*Plan, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return PlanAST(ast, schema)
}

// Epochs converts the plan's EPOCH DURATION to an epoch count for a run of
// the given wall-clock length, defaulting to one epoch per second.
func (p *Plan) Epochs(runFor time.Duration) int {
	d := p.Epoch
	if d <= 0 {
		d = time.Second
	}
	n := int(runFor / d)
	if n < 1 {
		n = 1
	}
	return n
}
