package query

import (
	"fmt"
	"strconv"
	"time"

	"kspot/internal/model"
)

// Parse turns a query string into an AST.
func Parse(src string) (*AST, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	ast, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return ast, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(t Token, format string, args ...interface{}) error {
	return &SyntaxError{Pos: t.Pos, Msg: fmt.Sprintf(format, args...)}
}

// expectKeyword consumes an identifier token matching kw (case-insensitive).
func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.Kind != TokIdent || t.Keyword() != kw {
		return p.errf(t, "expected %s, got %q", kw, t.Text)
	}
	return nil
}

// acceptKeyword consumes the keyword if present.
func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.Kind == TokIdent && t.Keyword() == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectInt() (int, error) {
	t := p.next()
	if t.Kind != TokNumber {
		return 0, p.errf(t, "expected number, got %q", t.Text)
	}
	n, err := strconv.Atoi(t.Text)
	if err != nil {
		return 0, p.errf(t, "expected integer, got %q", t.Text)
	}
	return n, nil
}

func (p *parser) expectIdent() (Token, error) {
	t := p.next()
	if t.Kind != TokIdent {
		return t, p.errf(t, "expected identifier, got %s", t.Kind)
	}
	return t, nil
}

func (p *parser) parseQuery() (*AST, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	ast := &AST{}
	if p.acceptKeyword("TOP") {
		k, err := p.expectInt()
		if err != nil {
			return nil, err
		}
		if k < 1 {
			return nil, p.errf(p.peek(), "TOP K must be >= 1, got %d", k)
		}
		ast.TopK = k
	}
	items, err := p.parseSelectList()
	if err != nil {
		return nil, err
	}
	ast.Items = items
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ast.From = from.Keyword()

	for {
		switch {
		case p.acceptKeyword("GROUP"):
			if err := p.expectKeyword("BY"); err != nil {
				return nil, err
			}
			g, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if ast.GroupBy != "" {
				return nil, p.errf(g, "duplicate GROUP BY")
			}
			ast.GroupBy = g.Keyword()
		case p.acceptKeyword("EPOCH"):
			if err := p.expectKeyword("DURATION"); err != nil {
				return nil, err
			}
			n, err := p.expectInt()
			if err != nil {
				return nil, err
			}
			if n < 1 {
				return nil, p.errf(p.peek(), "EPOCH DURATION must be >= 1")
			}
			unit := time.Second
			if t := p.peek(); t.Kind == TokIdent {
				switch t.Keyword() {
				case "MS", "MILLISECOND", "MILLISECONDS":
					unit = time.Millisecond
					p.next()
				case "S", "SEC", "SECOND", "SECONDS":
					unit = time.Second
					p.next()
				case "MIN", "MINUTE", "MINUTES":
					unit = time.Minute
					p.next()
				}
			}
			if ast.Epoch != 0 {
				return nil, p.errf(p.peek(), "duplicate EPOCH DURATION")
			}
			ast.Epoch = time.Duration(n) * unit
		case p.acceptKeyword("WITH"):
			if err := p.expectKeyword("HISTORY"); err != nil {
				return nil, err
			}
			n, err := p.expectInt()
			if err != nil {
				return nil, err
			}
			if n < 1 {
				return nil, p.errf(p.peek(), "WITH HISTORY must be >= 1")
			}
			if ast.History != 0 {
				return nil, p.errf(p.peek(), "duplicate WITH HISTORY")
			}
			ast.History = n
		default:
			t := p.peek()
			if t.Kind != TokEOF {
				return nil, p.errf(t, "unexpected %q", t.Text)
			}
			return ast, p.validate(ast)
		}
	}
}

func (p *parser) parseSelectList() ([]SelectItem, error) {
	var items []SelectItem
	for {
		t, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		// Probe the folded keyword form, not the raw text: the dialect is
		// case-insensitive everywhere, and "Avg(sound)" must parse like
		// "AVG(sound)" or equivalent spellings would not share a SenseKey.
		if agg, isAgg := model.ParseAggKind(t.Keyword()); isAgg && p.peek().Kind == TokLParen {
			p.next() // consume '('
			attr, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if tok := p.next(); tok.Kind != TokRParen {
				return nil, p.errf(tok, "expected ')', got %q", tok.Text)
			}
			items = append(items, SelectItem{Attr: attr.Keyword(), Agg: agg, IsAgg: true})
		} else {
			items = append(items, SelectItem{Attr: t.Keyword()})
		}
		if p.peek().Kind != TokComma {
			return items, nil
		}
		p.next()
	}
}

// validate applies the dialect's semantic rules.
func (p *parser) validate(ast *AST) error {
	if ast.From != "SENSORS" {
		return &SyntaxError{Msg: fmt.Sprintf("unknown relation %q (only SENSORS exists)", ast.From)}
	}
	if len(ast.Items) == 0 {
		return &SyntaxError{Msg: "empty select list"}
	}
	aggCount := 0
	for _, it := range ast.Items {
		if it.IsAgg {
			aggCount++
		}
	}
	if ast.HasTop() {
		if aggCount != 1 {
			return &SyntaxError{Msg: "TOP-K queries need exactly one aggregate in the select list"}
		}
		if ast.GroupBy == "" && ast.History == 0 {
			return &SyntaxError{Msg: "TOP-K queries need GROUP BY (snapshot) or WITH HISTORY (historic)"}
		}
		for _, it := range ast.Items {
			if !it.IsAgg && ast.GroupBy != "" && it.Attr != ast.GroupBy {
				return &SyntaxError{Msg: fmt.Sprintf("non-aggregate column %s must be the GROUP BY attribute", it.Attr)}
			}
		}
	}
	if aggCount > 0 && ast.GroupBy == "" && !ast.HasTop() && ast.History == 0 {
		// plain network-wide aggregate: allowed (single implicit group)
		return nil
	}
	return nil
}
