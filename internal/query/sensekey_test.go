package query

import (
	"testing"
	"time"
)

// Equivalent spellings — case, whitespace, duration units, K and SELECT
// shape — must share one SenseKey, so the scheduler folds them into one
// shared acquisition. Distinct sensing plans must not.
func TestSenseKeyEquivalentSpellings(t *testing.T) {
	groups := [][]string{
		// One sensing plan, many spellings: case, whitespace, K, projection.
		{
			"SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid",
			"select top 3 roomid, avg(sound) from sensors group by roomid",
			"SELECT   TOP 7   AVG( SOUND )  FROM  SENSORS   GROUP BY ROOMID",
			"select top 1 Avg(Sound) from Sensors group by RoomId",
		},
		// Duration-unit folding: 60 s == 1 min.
		{
			"SELECT TOP 2 roomid, MAX(temp) FROM sensors GROUP BY roomid EPOCH DURATION 60 s",
			"select top 5 max(temp) from sensors group by roomid epoch duration 1 min",
			"SELECT TOP 5 MAX(TEMP) FROM SENSORS GROUP BY ROOMID EPOCH DURATION 60 SECONDS",
		},
		// History window participates in the key.
		{
			"SELECT TOP 4 roomid, AVG(sound) FROM sensors GROUP BY roomid WITH HISTORY 8",
			"select top 9 avg(sound) from sensors with history 8 group by roomid",
		},
		// Basic (no TOP) queries key on the same signature fields.
		{
			"SELECT roomid, AVG(light) FROM sensors GROUP BY roomid",
			"select Avg(LIGHT), roomid from sensors group by roomid",
		},
	}
	seen := map[string]int{}
	for gi, g := range groups {
		var key string
		for i, sql := range g {
			ast, err := Parse(sql)
			if err != nil {
				t.Fatalf("group %d %q: %v", gi, sql, err)
			}
			k := ast.SenseKey()
			if i == 0 {
				key = k
				if prev, dup := seen[k]; dup {
					t.Fatalf("groups %d and %d collide on SenseKey %q", prev, gi, k)
				}
				seen[k] = gi
				continue
			}
			if k != key {
				t.Fatalf("group %d: %q keyed %q, want %q", gi, sql, k, key)
			}
		}
	}
}

// Distinct sensing plans — different aggregate, attribute, grouping,
// epoch duration or history — must produce distinct keys.
func TestSenseKeyDistinguishes(t *testing.T) {
	distinct := []string{
		"SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid",
		"SELECT TOP 3 roomid, MAX(sound) FROM sensors GROUP BY roomid",
		"SELECT TOP 3 roomid, AVG(temp) FROM sensors GROUP BY roomid",
		"SELECT TOP 3 clusterid, AVG(sound) FROM sensors GROUP BY clusterid",
		"SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid EPOCH DURATION 2 s",
		"SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid WITH HISTORY 4",
		"SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid WITH HISTORY 8",
	}
	seen := map[string]string{}
	for _, sql := range distinct {
		ast, err := Parse(sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		k := ast.SenseKey()
		if prev, dup := seen[k]; dup {
			t.Fatalf("%q and %q collide on SenseKey %q", prev, sql, k)
		}
		seen[k] = sql
	}
}

// Normalize folds every accepted spelling to one canonical form, and the
// canonical form is a fixed point: it reparses to the identical AST and
// renormalizes to itself (the String round-trip the normalizer relies on).
func TestNormalizeRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{
			"select top 3 roomid, avg(sound) from sensors group by roomid",
			"SELECT TOP 3 ROOMID, AVG(SOUND) FROM SENSORS GROUP BY ROOMID",
		},
		{
			"SELECT TOP 2 MAX(temp) FROM sensors GROUP BY roomid EPOCH DURATION 60 seconds",
			"SELECT TOP 2 MAX(TEMP) FROM SENSORS GROUP BY ROOMID EPOCH DURATION 1 min",
		},
		{
			"select top 4 epoch, avg(sound) from sensors with history 16 epoch duration 1500 ms",
			"SELECT TOP 4 EPOCH, AVG(SOUND) FROM SENSORS EPOCH DURATION 1500 ms WITH HISTORY 16",
		},
		{
			"select   sound , roomid   from sensors",
			"SELECT SOUND, ROOMID FROM SENSORS",
		},
	}
	for _, c := range cases {
		got, err := Normalize(c.in)
		if err != nil {
			t.Fatalf("Normalize(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
		// Fixed point: the canonical form reparses and renormalizes to itself.
		again, err := Normalize(got)
		if err != nil {
			t.Fatalf("canonical form %q does not reparse: %v", got, err)
		}
		if again != got {
			t.Fatalf("canonical form is not a fixed point: %q -> %q", got, again)
		}
		// And equivalent spellings share one SenseKey through the plan layer.
		p1, err := PlanText(c.in, DefaultSchema())
		if err != nil {
			t.Fatalf("PlanText(%q): %v", c.in, err)
		}
		p2, err := PlanText(got, DefaultSchema())
		if err != nil {
			t.Fatalf("PlanText(%q): %v", got, err)
		}
		if p1.SenseKey == "" || p1.SenseKey != p2.SenseKey {
			t.Fatalf("plan SenseKeys diverge: %q vs %q", p1.SenseKey, p2.SenseKey)
		}
	}
}

// Every duration unit String can emit must reparse to the same AST.
func TestStringDurationRoundTrip(t *testing.T) {
	for _, d := range []time.Duration{
		time.Millisecond, 1500 * time.Millisecond, time.Second,
		90 * time.Second, time.Minute, 5 * time.Minute,
	} {
		a := &AST{
			TopK:    2,
			Items:   []SelectItem{{Attr: "SOUND", Agg: 0, IsAgg: true}},
			From:    "SENSORS",
			GroupBy: "ROOMID",
			Epoch:   d,
		}
		out, err := Parse(a.String())
		if err != nil {
			t.Fatalf("String() with epoch %v emits unparseable %q: %v", d, a.String(), err)
		}
		if out.Epoch != d {
			t.Fatalf("epoch %v round-tripped to %v via %q", d, out.Epoch, a.String())
		}
		if out.SenseKey() != a.SenseKey() {
			t.Fatalf("SenseKey diverged across round-trip: %q vs %q", a.SenseKey(), out.SenseKey())
		}
	}
}
