// Package query implements KSpot's declarative query surface: a lexer and
// recursive-descent parser for the paper's SQL-like dialect, and the
// planner/router that the KSpot client runs — basic SELECT and GROUP BY
// queries go to the plain acquisition engine (TAG), TOP-K snapshot queries
// to MINT, and TOP-K historic queries to TJA, exactly the dispatch §II
// describes.
//
// The dialect, covering every query the paper shows:
//
//	SELECT TOP k <group>, AGG(<attr>) FROM sensors
//	    GROUP BY <group>
//	    [EPOCH DURATION n [ms|s|min]]
//	    [WITH HISTORY n]
//
//	SELECT <attr>[, ...] FROM sensors [EPOCH DURATION n [unit]]
package query

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// TokenKind classifies lexemes.
type TokenKind uint8

const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokComma
	TokLParen
	TokRParen
	TokStar
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "end of query"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokComma:
		return "','"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokStar:
		return "'*'"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

// Token is one lexeme with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

// Keyword reports the token's upper-cased text when it is an identifier —
// the dialect's keywords are case-insensitive, as in the paper's examples.
func (t Token) Keyword() string { return strings.ToUpper(t.Text) }

// SyntaxError is a lexing or parsing failure with position context.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("query: syntax error at offset %d: %s", e.Pos, e.Msg)
}

// isASCIIDigit gates number literals to ASCII: other Unicode digit runes
// would survive the lexer only to fail strconv with a worse message.
func isASCIIDigit(b byte) bool { return b >= '0' && b <= '9' }

// Lex tokenizes a query string. Input must be valid UTF-8: identifiers are
// decoded rune-wise (a stray high byte is a syntax error, not a Latin-1
// letter — case-folding an invalid-UTF-8 identifier would corrupt it).
func Lex(src string) ([]Token, error) {
	var out []Token
	i := 0
	for i < len(src) {
		c, size := utf8.DecodeRuneInString(src[i:])
		if c == utf8.RuneError && size == 1 {
			return nil, &SyntaxError{Pos: i, Msg: fmt.Sprintf("invalid UTF-8 byte 0x%02x", src[i])}
		}
		switch {
		case unicode.IsSpace(c):
			i += size
		case c == ',':
			out = append(out, Token{TokComma, ",", i})
			i++
		case c == '(':
			out = append(out, Token{TokLParen, "(", i})
			i++
		case c == ')':
			out = append(out, Token{TokRParen, ")", i})
			i++
		case c == '*':
			out = append(out, Token{TokStar, "*", i})
			i++
		case (c < utf8.RuneSelf && isASCIIDigit(byte(c))) || (c == '-' && i+1 < len(src) && isASCIIDigit(src[i+1])):
			start := i
			i++
			seenDot := false
			for i < len(src) && (isASCIIDigit(src[i]) || (!seenDot && src[i] == '.')) {
				if src[i] == '.' {
					seenDot = true
				}
				i++
			}
			out = append(out, Token{TokNumber, src[start:i], start})
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < len(src) {
				r, sz := utf8.DecodeRuneInString(src[i:])
				if !(unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_') {
					break
				}
				i += sz
			}
			out = append(out, Token{TokIdent, src[start:i], start})
		default:
			return nil, &SyntaxError{Pos: i, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	out = append(out, Token{TokEOF, "", len(src)})
	return out, nil
}
