package query

import (
	"fmt"
	"strings"
	"time"

	"kspot/internal/model"
)

// SelectItem is one projected column: either a bare attribute or an
// aggregate over one.
type SelectItem struct {
	Attr  string
	Agg   model.AggKind
	IsAgg bool
}

func (s SelectItem) String() string {
	if s.IsAgg {
		return fmt.Sprintf("%s(%s)", s.Agg, s.Attr)
	}
	return s.Attr
}

// AST is the parsed form of a KSpot query.
type AST struct {
	TopK    int // 0 when no TOP clause
	Items   []SelectItem
	From    string
	GroupBy string // empty when absent
	// Epoch is the EPOCH DURATION, zero when absent (one-shot query).
	Epoch time.Duration
	// History is the WITH HISTORY window length in epochs, 0 when absent.
	History int
}

// HasTop reports whether the query carries a TOP K clause.
func (a *AST) HasTop() bool { return a.TopK > 0 }

// Aggregate returns the single aggregate item of a TOP-K query.
func (a *AST) Aggregate() (SelectItem, bool) {
	for _, it := range a.Items {
		if it.IsAgg {
			return it, true
		}
	}
	return SelectItem{}, false
}

// String reassembles a canonical form of the query.
func (a *AST) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if a.HasTop() {
		fmt.Fprintf(&b, "TOP %d ", a.TopK)
	}
	parts := make([]string, len(a.Items))
	for i, it := range a.Items {
		parts[i] = it.String()
	}
	b.WriteString(strings.Join(parts, ", "))
	fmt.Fprintf(&b, " FROM %s", a.From)
	if a.GroupBy != "" {
		fmt.Fprintf(&b, " GROUP BY %s", a.GroupBy)
	}
	if a.Epoch > 0 {
		// Emit the dialect's "n unit" syntax (not Go's "1m0s" form, which
		// the parser rejects), choosing the largest unit that divides
		// evenly so the canonical form reparses to the identical AST.
		switch {
		case a.Epoch%time.Minute == 0:
			fmt.Fprintf(&b, " EPOCH DURATION %d min", a.Epoch/time.Minute)
		case a.Epoch%time.Second == 0:
			fmt.Fprintf(&b, " EPOCH DURATION %d s", a.Epoch/time.Second)
		default:
			// The dialect's smallest unit is a millisecond; clamp hand-built
			// sub-millisecond durations up to 1 ms so the canonical form
			// always reparses (parsed ASTs are whole-ms by construction).
			ms := a.Epoch / time.Millisecond
			if ms < 1 {
				ms = 1
			}
			fmt.Fprintf(&b, " EPOCH DURATION %d ms", ms)
		}
	}
	if a.History > 0 {
		fmt.Fprintf(&b, " WITH HISTORY %d", a.History)
	}
	return b.String()
}
