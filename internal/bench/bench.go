// Package bench is the experiment harness that regenerates every table and
// figure of the reproduction (the experiment index in DESIGN.md, E1–E14).
// cmd/kspot-bench runs experiments by id and prints their tables; the
// module-root bench_test.go wraps the same runs as testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"sort"

	"kspot/internal/model"
	"kspot/internal/sim"
	"kspot/internal/stats"
	"kspot/internal/topk"
	"kspot/internal/topk/central"
	"kspot/internal/topk/mint"
	"kspot/internal/topk/naive"
	"kspot/internal/topk/tag"
	"kspot/internal/topo"
	"kspot/internal/trace"
)

// RunConfig parameterizes one experiment execution. It is passed by value
// through Experiment.Run, so concurrent runs (parallel benchmarks, -cpu
// sweeps) can use different scales without sharing any mutable state — the
// predecessor, a package-global scale set and restored around each run, was
// racy and leaked a dirty scale when a run aborted.
type RunConfig struct {
	// Scale shrinks experiment sizes by the factor (0 < Scale ≤ 1); zero
	// or out-of-range values mean full scale. It also gates the big
	// entries of the scale series (see ScaleSeriesSizes).
	Scale float64
	// Parallel bounds the epoch-sweep workers of the parallel benchmark
	// leg (see sim.Network.SetParallel); 0 or 1 keeps every measurement
	// on the sequential path and skips the speedup entry.
	Parallel int
}

// scaled applies the configured scale to a size, with a floor of 2 so that
// warm-up + measurement epochs always exist.
func (c RunConfig) scaled(n int) int {
	s := c.Scale
	if s <= 0 || s > 1 {
		s = 1
	}
	v := int(float64(n) * s)
	if v < 2 {
		v = 2
	}
	return v
}

// Experiment is one reproducible experiment.
type Experiment struct {
	ID    string
	Title string
	// Run executes the experiment at the configured scale and writes its
	// tables.
	Run func(w io.Writer, cfg RunConfig) error
}

var registry = map[string]Experiment{}

func register(e Experiment) { registry[e.ID] = e }

// Get returns an experiment by id ("e1".."e14").
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment, ordered by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].ID) != len(out[j].ID) {
			return len(out[i].ID) < len(out[j].ID)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// soundRange is the MTS310 acoustic range used across the experiments.
func soundRange() *topk.ValueRange { return &topk.ValueRange{Min: 0, Max: 100} }

// gridNetwork builds an n-node grid (n must be a perfect square) with g
// contiguous groups and the given radio/link options.
func gridNetwork(n, g int, opts sim.Options) (*sim.Network, error) {
	p, err := topo.Grid(n, 10)
	if err != nil {
		return nil, err
	}
	p.RegroupContiguous(g)
	return sim.New(p, 15, opts)
}

// StandardDeployment builds the canonical hot-path measurement workload —
// the 64-node / 16-cluster grid with the seeded room-activity trace and a
// TOP-2 AVG query — shared by the module-root operator benchmarks, the
// allocation regression tests and the -json trajectory emitter, so all
// three always measure the identical deployment.
func StandardDeployment() (*sim.Network, trace.Source, topk.SnapshotQuery, error) {
	net, err := gridNetwork(64, 16, sim.DefaultOptions())
	if err != nil {
		return nil, nil, topk.SnapshotQuery{}, err
	}
	src := trace.NewRoomActivity(7, net.Placement.Groups, 16)
	q := topk.SnapshotQuery{K: 2, Agg: model.AggAvg, Range: soundRange()}
	return net, src, q, nil
}

// snapshotRun drives one operator over a workload and collects steady-state
// stats: the first epoch (query install + MINT's creation phase) is a
// warm-up excluded from accounting, matching what the System Panel shows
// during continuous operation.
func snapshotRun(name string, op topk.SnapshotOperator, net *sim.Network, src trace.Source, q topk.SnapshotQuery, epochs int) (stats.RunStats, error) {
	net.Reset()
	r := &topk.Runner{Net: net, Source: src, Op: op, Query: q}
	results, err := r.RunWarm(1, epochs)
	if err != nil {
		return stats.RunStats{}, err
	}
	sum := topk.Summarize(results)
	rs := stats.Collect(name, net, epochs)
	rs.Correct = sum.CorrectPct
	rs.Recall = sum.MeanRecall
	return rs, nil
}

// snapshotSuite runs the standard operator set (MINT, TAG, naive,
// centralized) on identical fresh networks.
func snapshotSuite(mkNet func() (*sim.Network, error), src trace.Source, q topk.SnapshotQuery, epochs int) ([]stats.RunStats, error) {
	ops := []struct {
		name string
		op   topk.SnapshotOperator
	}{
		{"mint", mint.New()},
		{"tag", tag.New()},
		{"naive", naive.New()},
		{"central", central.NewSnapshot()},
	}
	rows := make([]stats.RunStats, 0, len(ops))
	for _, o := range ops {
		net, err := mkNet()
		if err != nil {
			return nil, err
		}
		rs, err := snapshotRun(o.name, o.op, net, src, q, epochs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, rs)
	}
	return rows, nil
}

// checkShape validates the reproduction bar for a snapshot suite: the exact
// algorithms are exact, and MINT undercuts TAG on bytes. Violations are
// reported in the output rather than silently ignored.
func checkShape(w io.Writer, rows []stats.RunStats) { checkShapeTol(w, rows, 1.0) }

// checkShapeTol is checkShape with a byte-ratio tolerance: MINT's bytes
// must stay below tol × TAG's. Cluster-AVG queries near k ≈ G use a small
// tolerance (suppression has little room there, see E6's trend); per-node
// top-k uses a hard expectation instead (checkBigSavings).
func checkShapeTol(w io.Writer, rows []stats.RunStats, tol float64) {
	byName := map[string]stats.RunStats{}
	for _, r := range rows {
		byName[r.Algorithm] = r
	}
	for _, name := range []string{"mint", "tag", "central"} {
		if r, ok := byName[name]; ok && r.Correct < 100 {
			fmt.Fprintf(w, "!! SHAPE VIOLATION: %s correct %.1f%% (expected 100%%)\n", name, r.Correct)
		}
	}
	m, okM := byName["mint"]
	t, okT := byName["tag"]
	if okM && okT && float64(m.TxBytes) >= float64(t.TxBytes)*tol {
		fmt.Fprintf(w, "!! SHAPE VIOLATION: mint bytes %d not below tag %d (tol %.2f)\n", m.TxBytes, t.TxBytes, tol)
	}
}

// checkBigSavings asserts the paper's "enormous savings" regime: MINT must
// save at least minSavePct percent of TAG's bytes.
func checkBigSavings(w io.Writer, rows []stats.RunStats, minSavePct float64) {
	byName := map[string]stats.RunStats{}
	for _, r := range rows {
		byName[r.Algorithm] = r
	}
	m, okM := byName["mint"]
	t, okT := byName["tag"]
	if !okM || !okT || t.TxBytes == 0 {
		return
	}
	save := 100 * (1 - float64(m.TxBytes)/float64(t.TxBytes))
	if save < minSavePct {
		fmt.Fprintf(w, "!! SHAPE VIOLATION: mint saves only %.1f%% of tag bytes (expected >= %.0f%%)\n", save, minSavePct)
	}
}
