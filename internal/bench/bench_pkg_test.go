package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("registered %d experiments, want 14", len(all))
	}
	if all[0].ID != "e1" || all[len(all)-1].ID != "e14" {
		t.Fatalf("ordering: first=%s last=%s", all[0].ID, all[len(all)-1].ID)
	}
	for _, e := range all {
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if _, ok := Get("e1"); !ok {
		t.Error("Get(e1) failed")
	}
	if _, ok := Get("e99"); ok {
		t.Error("Get(e99) succeeded")
	}
}

// TestAllExperimentsRunClean executes every experiment at reduced scale and
// fails on any error or shape violation — the whole reproduction in one
// test.
func TestAllExperimentsRunClean(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments in -short mode")
	}
	cfg := RunConfig{Scale: 0.2}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, cfg); err != nil {
				t.Fatalf("%s: %v\noutput so far:\n%s", e.ID, err, buf.String())
			}
			if out := buf.String(); strings.Contains(out, "SHAPE VIOLATION") {
				t.Errorf("%s reported a shape violation:\n%s", e.ID, out)
			}
			if buf.Len() == 0 {
				t.Errorf("%s produced no output", e.ID)
			}
		})
	}
}

func TestRunConfigClamps(t *testing.T) {
	if got := (RunConfig{Scale: -3}).scaled(100); got != 100 {
		t.Errorf("invalid scale: scaled(100) = %d, want 100", got)
	}
	if got := (RunConfig{}).scaled(100); got != 100 {
		t.Errorf("zero-value config: scaled(100) = %d, want 100", got)
	}
	if got := (RunConfig{Scale: 0.5}).scaled(100); got != 50 {
		t.Errorf("scaled(100) = %d", got)
	}
	if got := (RunConfig{Scale: 0.5}).scaled(1); got != 2 {
		t.Errorf("scaled floor = %d", got)
	}
}
